#!/usr/bin/env bash
# Regenerate the golden files under tests/golden/ from the current
# build's output. Run this when an intentional change moves one of
# the byte-stable surfaces (campaign CSV export, trace CSV write,
# summary table), then review the diff before committing — a golden
# update is a contract change for downstream tooling.
#
# Usage: scripts/regen_golden.sh [build-dir]   (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

cmake -B "$build_dir" -S . >/dev/null
cmake --build "$build_dir" -j "$(nproc)" --target test_golden

PDNSPOT_REGEN_GOLDEN=1 "$build_dir"/tests/test_golden

git --no-pager diff --stat -- tests/golden || true
echo "regen_golden.sh: golden files rewritten; review the diff"
