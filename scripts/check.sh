#!/usr/bin/env bash
# Full verification pass: configure, build with warnings-as-errors,
# and run every registered test in parallel. This is the tier-1 gate
# (ROADMAP.md) and is ready to drop into CI as-is.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build-check}"

generator=()
if command -v ninja >/dev/null 2>&1; then
    generator=(-G Ninja)
fi

cmake -B "$build_dir" -S . "${generator[@]}" \
    -DPDNSPOT_WARNINGS=ON \
    -DPDNSPOT_WERROR=ON

cmake --build "$build_dir" -j "$(nproc)"

ctest --test-dir "$build_dir" -j "$(nproc)" --output-on-failure

echo "check.sh: build and all tests green"
