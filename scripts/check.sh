#!/usr/bin/env bash
# Full verification pass: configure, build with warnings-as-errors,
# run every registered test in parallel, snapshot + diff the
# benchmark trajectory (scripts/bench.sh), then repeat the test
# suite under AddressSanitizer + UBSan (the threaded campaign/sweep
# paths are sanitizer-gated). This is the tier-1 gate (ROADMAP.md)
# and is ready to drop into CI as-is.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check; the
# sanitizer pass uses <build-dir>-asan)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build-check}"

generator=()
if command -v ninja >/dev/null 2>&1; then
    generator=(-G Ninja)
fi

cmake -B "$build_dir" -S . "${generator[@]}" \
    -DPDNSPOT_WARNINGS=ON \
    -DPDNSPOT_WERROR=ON

cmake --build "$build_dir" -j "$(nproc)"

ctest --test-dir "$build_dir" -j "$(nproc)" --output-on-failure

# Spec-file CLI smoke: pdnspot_campaign on the checked-in example
# spec must reproduce the C++-built acceptance campaign byte for
# byte, serial and parallel (the streaming-export determinism
# contract at the binary surface).
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
"$build_dir"/examples/campaign_study "$smoke_dir/cpp.csv" >/dev/null
PDNSPOT_THREADS=1 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/paper_campaign.json -o "$smoke_dir/spec1.csv"
PDNSPOT_THREADS=8 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/paper_campaign.json -o "$smoke_dir/spec8.csv"
cmp "$smoke_dir/cpp.csv" "$smoke_dir/spec1.csv"
cmp "$smoke_dir/cpp.csv" "$smoke_dir/spec8.csv"
echo "check.sh: pdnspot_campaign spec-file smoke green"

# Trace-source smoke: the measured-workload spec exercises all four
# TraceSpec kinds (library, generator, battery profile, file-backed
# CSV). Lazy per-worker resolution must be byte-identical serial vs
# 8 threads and with the memo off.
PDNSPOT_THREADS=1 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/measured_campaign.json -o "$smoke_dir/meas1.csv"
PDNSPOT_THREADS=8 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/measured_campaign.json -o "$smoke_dir/meas8.csv"
PDNSPOT_THREADS=8 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/measured_campaign.json --no-memo \
    -o "$smoke_dir/measnm.csv"
cmp "$smoke_dir/meas1.csv" "$smoke_dir/meas8.csv"
cmp "$smoke_dir/meas1.csv" "$smoke_dir/measnm.csv"

# Sharding smoke: a 2-way sharded run concatenates to exactly the
# unsharded CSV (shard 1 carries the header, shard 2 does not).
PDNSPOT_THREADS=8 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/measured_campaign.json --shard 1/2 \
    -o "$smoke_dir/shard1.csv"
PDNSPOT_THREADS=8 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/measured_campaign.json --shard 2/2 \
    -o "$smoke_dir/shard2.csv"
cat "$smoke_dir/shard1.csv" "$smoke_dir/shard2.csv" \
    > "$smoke_dir/shardcat.csv"
cmp "$smoke_dir/meas1.csv" "$smoke_dir/shardcat.csv"
echo "check.sh: trace-source + sharding smoke green"

# Trace-transform smoke: the sensitivity spec derives perturbed
# variants (time-scale, AR-perturb, repeat+truncate, concat) of the
# checked-in measured trace; transformed campaigns must stay
# byte-identical at any thread count, and the transform chains must
# surface in --dry-run provenance.
PDNSPOT_THREADS=1 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/sensitivity_campaign.json -o "$smoke_dir/sens1.csv"
PDNSPOT_THREADS=8 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/sensitivity_campaign.json -o "$smoke_dir/sens8.csv"
cmp "$smoke_dir/sens1.csv" "$smoke_dir/sens8.csv"
# Capture, then grep: grep -q on a live pipe closes it at the first
# match and SIGPIPEs the tool mid-provenance (pipefail turns that
# into exit 141).
"$build_dir"/tools/pdnspot_campaign \
    examples/specs/sensitivity_campaign.json --dry-run \
    >"$smoke_dir/dryrun.txt" 2>&1
grep -q "ar-perturb(0.1, seed 7)" "$smoke_dir/dryrun.txt"
echo "check.sh: trace-transform sensitivity smoke green"

# Observability smoke: the exporters must not perturb the campaign
# — CSVs stay byte-identical with --report/--trace-events/--progress
# at 1 and 8 threads — and the paper campaign's report + span trace
# land in the build dir for CI to upload next to BENCH_*.json.
PDNSPOT_THREADS=1 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/paper_campaign.json -o "$smoke_dir/obs1.csv" \
    --report "$smoke_dir/obs1_report.json" \
    --trace-events "$smoke_dir/obs1_trace.json" --progress
PDNSPOT_THREADS=8 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/paper_campaign.json -o "$smoke_dir/obs8.csv" \
    --report "$build_dir/paper_report.json" \
    --trace-events "$build_dir/paper_trace.json" --progress
cmp "$smoke_dir/cpp.csv" "$smoke_dir/obs1.csv"
cmp "$smoke_dir/cpp.csv" "$smoke_dir/obs8.csv"
grep -q '"schema": "pdnspot-report-1"' "$build_dir/paper_report.json"
begins=$(grep -c '"ph": "B"' "$build_dir/paper_trace.json")
ends=$(grep -c '"ph": "E"' "$build_dir/paper_trace.json")
test "$begins" -gt 0 && test "$begins" -eq "$ends"
echo "check.sh: observability smoke green" \
    "($begins spans, report + trace in $build_dir)"

# Probe smoke: waveform capture must not perturb the campaign either
# — the CSV stays byte-identical with --probe-out on vs off — and the
# waveform directory itself is deterministic, byte for byte, at 1 vs
# 8 threads. The paper campaign's waveforms land in the build dir for
# CI to upload next to the report and span trace.
PDNSPOT_THREADS=1 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/paper_campaign.json -o "$smoke_dir/probe1.csv" \
    --probe-out "$smoke_dir/probes1"
PDNSPOT_THREADS=8 "$build_dir"/tools/pdnspot_campaign \
    examples/specs/paper_campaign.json -o "$smoke_dir/probe8.csv" \
    --probe-out "$build_dir/paper_probes"
cmp "$smoke_dir/cpp.csv" "$smoke_dir/probe1.csv"
cmp "$smoke_dir/cpp.csv" "$smoke_dir/probe8.csv"
diff -r "$smoke_dir/probes1" "$build_dir/paper_probes"
waveforms=$(ls "$build_dir"/paper_probes/*.csv | wc -l)
test "$waveforms" -gt 0
echo "check.sh: probe smoke green" \
    "($waveforms waveforms in $build_dir/paper_probes)"

# Launcher + archive smoke: pdnspot_launch fans the paper campaign
# across 4 shard subprocesses with one injected shard failure; the
# launcher must retry the sabotaged shard and still concatenate a
# CSV byte-identical to the unsharded acceptance run. The shard
# reports ingest into a result archive, which pdnspot_query must
# resolve by the spec's content hash — listing all 4 shards and
# reassembling the same bytes. The archive index lands in the build
# dir for CI to upload next to the report and span trace.
rm -rf "$build_dir/paper_archive"
PDNSPOT_LAUNCH_INJECT=fail:2:1 "$build_dir"/tools/pdnspot_launch \
    examples/specs/paper_campaign.json -n 4 --jobs 2 \
    --backoff-ms 0 -o "$smoke_dir/launched.csv" \
    --archive "$build_dir/paper_archive" \
    2>"$smoke_dir/launch_err.txt"
grep -q "shard 2/4 attempt 1/3 failed" "$smoke_dir/launch_err.txt"
grep -q "retrying in 0 ms" "$smoke_dir/launch_err.txt"
cmp "$smoke_dir/cpp.csv" "$smoke_dir/launched.csv"
spec_hash=$("$build_dir"/tools/pdnspot_query hash \
    examples/specs/paper_campaign.json)
"$build_dir"/tools/pdnspot_query "$build_dir/paper_archive" list \
    --spec-hash "$spec_hash" --format csv \
    >"$smoke_dir/archive_list.csv"
runs=$(grep -c "pdnspot_campaign" "$smoke_dir/archive_list.csv")
test "$runs" -eq 4
"$build_dir"/tools/pdnspot_query "$build_dir/paper_archive" csv \
    --spec-hash "$spec_hash" -o "$smoke_dir/archived.csv"
cmp "$smoke_dir/cpp.csv" "$smoke_dir/archived.csv"
echo "check.sh: launcher + archive smoke green" \
    "(retried 1 injected failure; index in $build_dir/paper_archive)"

# Fleet smoke: the population simulator's determinism contract at
# the binary surface — the example study's aggregate CSV must be
# byte-identical at 1 and 8 threads — plus the million-session spec
# as a scale check. The summary and aggregates land in the build dir
# for CI to upload next to the campaign report.
"$build_dir"/tools/pdnspot_fleet examples/specs/fleet_study.json \
    --threads 1 -o "$smoke_dir/fleet1.csv"
"$build_dir"/tools/pdnspot_fleet examples/specs/fleet_study.json \
    --threads 8 -o "$build_dir/fleet_aggregates.csv" --summary \
    2>"$build_dir/fleet_summary.txt"
cmp "$smoke_dir/fleet1.csv" "$build_dir/fleet_aggregates.csv"
grep -q "fleet: 4000 sessions in 2 cohorts" \
    "$build_dir/fleet_summary.txt"
"$build_dir"/tools/pdnspot_fleet examples/specs/fleet_million.json \
    --threads 8 -o /dev/null --summary 2>"$smoke_dir/million.txt"
grep -q "fleet: 1000000 sessions" "$smoke_dir/million.txt"
echo "check.sh: fleet smoke green" \
    "(summary + aggregates in $build_dir)"

# Benchmark trajectory: run the campaign/sweep benches in --json
# mode, merge the next BENCH_<n>.json snapshot at the repo root, and
# diff it against the previous one — a >20% regression on cells/sec,
# ns/phase or the memo hit rate fails this script like a test
# failure (thresholds: PDNSPOT_BENCH_WARN_PCT/PDNSPOT_BENCH_FAIL_PCT;
# first run just records the baseline). No-op on hosts without
# google-benchmark.
scripts/bench.sh "$build_dir"
echo "check.sh: bench trajectory green"

# Second pass: the whole test suite under ASan+UBSan. Bench binaries
# add nothing here (they are not registered tests), so skip them to
# halve the sanitized build.
asan_dir="${build_dir}-asan"

cmake -B "$asan_dir" -S . "${generator[@]}" \
    -DPDNSPOT_WARNINGS=ON \
    -DPDNSPOT_WERROR=ON \
    -DPDNSPOT_SANITIZE=ON \
    -DPDNSPOT_BUILD_BENCH=OFF

cmake --build "$asan_dir" -j "$(nproc)"

ctest --test-dir "$asan_dir" -j "$(nproc)" --output-on-failure

echo "check.sh: build, tests and sanitizer pass green"
