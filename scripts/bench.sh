#!/usr/bin/env bash
# Benchmark-trajectory driver: run the campaign / parallel-sweep /
# memo / observability benches in --json mode, merge their records into the next
# BENCH_<n>.json snapshot at the repo root, and diff it against the
# previous snapshot with tools/bench_diff (warn >5%, fail >20%
# regression) — so the perf trajectory of the inner loop (cells/sec,
# ns/phase, memo hit rate) is tracked per PR exactly like test
# results.
#
# Usage: scripts/bench.sh [build-dir]   (default: build)
#
# Environment:
#   PDNSPOT_GIT_REV         revision stamp for the records
#                           (default: git rev-parse --short HEAD)
#   PDNSPOT_BENCH_MIN_TIME  google-benchmark min time per benchmark,
#                           seconds (default 0.1)
#   PDNSPOT_BENCH_FAIL_PCT  bench_diff fail threshold (default 20)
#   PDNSPOT_BENCH_WARN_PCT  bench_diff warn threshold (default 5)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    generator=()
    if command -v ninja >/dev/null 2>&1; then
        generator=(-G Ninja)
    fi
    cmake -B "$build_dir" -S . "${generator[@]}"
fi
# The bench tree is optional (bench/CMakeLists.txt skips it when
# google-benchmark is absent); degrade to a no-op rather than fail
# the caller (scripts/check.sh) on hosts without the library.
if ! grep -q '^benchmark_DIR:PATH=/' "$build_dir/CMakeCache.txt"; then
    echo "bench.sh: google-benchmark not available; skipping" >&2
    exit 0
fi

cmake --build "$build_dir" -j "$(nproc)" \
    --target bench_campaign bench_fleet bench_obs bench_parallel_sweep \
    bench_diff

export PDNSPOT_GIT_REV="${PDNSPOT_GIT_REV:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}"
min_time="${PDNSPOT_BENCH_MIN_TIME:-0.1}"
fail_pct="${PDNSPOT_BENCH_FAIL_PCT:-20}"
warn_pct="${PDNSPOT_BENCH_WARN_PCT:-5}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The trajectory benches: campaign throughput (cells/sec, ns/phase,
# memo hit rate), the memo on/off timing pair, fleet stepping
# throughput (sessions/sec, ns/session-bucket at 10k-1M populations),
# the sweep fan-out, and the observability overhead pairs
# (metricAdd/SpanScope disabled vs enabled, simulator probed vs
# unbound).
"$build_dir"/bench/bench_campaign --json "$tmp/campaign.json" \
    --benchmark_filter='campaignThroughput|campaignMemo' \
    --benchmark_min_time="$min_time" >/dev/null
"$build_dir"/bench/bench_fleet --json "$tmp/fleet.json" \
    --benchmark_filter='fleetThroughput' \
    --benchmark_min_time="$min_time" >/dev/null
"$build_dir"/bench/bench_parallel_sweep --json "$tmp/sweep.json" \
    --benchmark_filter='sweepSerial|sweepParallel/threads:8' \
    --benchmark_min_time="$min_time" >/dev/null
"$build_dir"/bench/bench_obs --json "$tmp/obs.json" \
    --benchmark_filter='obsMetricAdd|obsSpanScope|obsSimProbed' \
    --benchmark_min_time="$min_time" >/dev/null

# Next snapshot index: one past the highest existing BENCH_<n>.json.
next=1
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n="${f#BENCH_}"
    n="${n%.json}"
    case "$n" in *[!0-9]* | '') continue ;; esac
    if [ "$n" -ge "$next" ]; then
        next=$((n + 1))
    fi
done

"$build_dir"/tools/bench_diff --merge "BENCH_${next}.json" \
    "$tmp/campaign.json" "$tmp/fleet.json" "$tmp/sweep.json" \
    "$tmp/obs.json"
echo "bench.sh: wrote BENCH_${next}.json"

prev="BENCH_$((next - 1)).json"
if [ "$next" -gt 1 ] && [ -e "$prev" ]; then
    "$build_dir"/tools/bench_diff "$prev" "BENCH_${next}.json" \
        --warn "$warn_pct" --fail "$fail_pct"
else
    echo "bench.sh: no previous snapshot; BENCH_${next}.json is the baseline"
fi
