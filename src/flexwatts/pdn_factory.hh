/**
 * @file
 * Factory for the five PDN architectures the paper evaluates.
 */

#ifndef PDNSPOT_FLEXWATTS_PDN_FACTORY_HH
#define PDNSPOT_FLEXWATTS_PDN_FACTORY_HH

#include <memory>

#include "pdn/pdn_model.hh"

namespace pdnspot
{

/** Construct any of the five PDN topologies with default parameters. */
std::unique_ptr<PdnModel> makePdn(PdnKind kind,
                                  PdnPlatformParams platform = {});

} // namespace pdnspot

#endif // PDNSPOT_FLEXWATTS_PDN_FACTORY_HH
