#include "flexwatts/mode_predictor.hh"

#include "common/logging.hh"

namespace pdnspot
{

ModePredictor::ModePredictor(const EteeTable &table, double hysteresis)
    : _table(table), _hysteresis(hysteresis)
{
    if (hysteresis < 0.0 || hysteresis >= 1.0)
        fatal("ModePredictor: hysteresis must be in [0, 1)");
}

double
ModePredictor::predictedEtee(const PredictorInputs &in,
                             HybridMode mode) const
{
    if (in.powerState == PackageCState::C0) {
        return _table.lookupActive(mode, in.workloadType, in.tdp,
                                   in.ar);
    }
    return _table.lookupCState(mode, in.powerState);
}

HybridMode
ModePredictor::predict(const PredictorInputs &in) const
{
    // Algorithm 1: IVR_ETEE >= LDO_ETEE ? IVR-Mode : LDO-Mode.
    double ivr = predictedEtee(in, HybridMode::IvrMode);
    double ldo = predictedEtee(in, HybridMode::LdoMode);
    return ivr >= ldo ? HybridMode::IvrMode : HybridMode::LdoMode;
}

HybridMode
ModePredictor::decide(const PredictorInputs &in, HybridMode current) const
{
    HybridMode other = current == HybridMode::IvrMode
                           ? HybridMode::LdoMode
                           : HybridMode::IvrMode;
    double etee_current = predictedEtee(in, current);
    double etee_other = predictedEtee(in, other);
    return etee_other > etee_current + _hysteresis ? other : current;
}

} // namespace pdnspot
