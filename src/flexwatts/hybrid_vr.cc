#include "flexwatts/hybrid_vr.hh"

#include "common/logging.hh"

namespace pdnspot
{

HybridVr::HybridVr(std::string name, IvrParams ivr_params,
                   LdoParams ldo_params, HybridMode initial)
    : _name(std::move(name)),
      _ivr(std::move(ivr_params)),
      _ldo(std::move(ldo_params)),
      _mode(initial)
{}

void
HybridVr::setMode(HybridMode mode, bool domain_active)
{
    if (mode == _mode)
        return;
    if (domain_active) {
        panic(strprintf("HybridVr %s: mode switch requested while the "
                        "domain is active; the C6 flow must gate the "
                        "domain first (voltage-noise-free invariant)",
                        _name.c_str()));
    }
    _mode = mode;
}

Power
HybridVr::inputPower(Voltage vin, Voltage vout, Power pout) const
{
    if (_mode == HybridMode::IvrMode)
        return _ivr.inputPower(vin, vout, pout);
    return _ldo.inputPower(vin, vout, pout);
}

double
HybridVr::efficiency(Voltage vin, Voltage vout, Power pout) const
{
    if (pout <= watts(0.0))
        return 0.0;
    return pout / inputPower(vin, vout, pout);
}

} // namespace pdnspot
