/**
 * @file
 * The FlexWatts hybrid voltage regulator (Sec. 6, Fig. 6 right side).
 *
 * A hybrid VR extends a baseline on-die IVR with an LDO mode that
 * reuses the IVR's high-side NMOS power switch, following Luria et
 * al.'s dual-mode LDO/power-gate (JSSC 2016). Sharing the switch,
 * the decoupling capacitors and the board/package/die routing keeps
 * the added die area at ~0.041 mm^2 per rail at 14 nm -- 0.03-0.04%
 * of a client die.
 *
 * The class enforces the voltage-noise-free invariant: the mode may
 * only change while the attached domain is inactive (the paper's
 * package-C6 mode-switching flow guarantees this).
 */

#ifndef PDNSPOT_FLEXWATTS_HYBRID_VR_HH
#define PDNSPOT_FLEXWATTS_HYBRID_VR_HH

#include <string>

#include "common/units.hh"
#include "flexwatts/hybrid_mode.hh"
#include "vr/ivr.hh"
#include "vr/ldo_vr.hh"

namespace pdnspot
{

/** One hybrid (IVR/LDO) on-die regulator. */
class HybridVr
{
  public:
    /** Extra die area of the LDO mode at 14 nm (Luria et al.). */
    static Area ldoModeAreaOverhead()
    {
        return squareMillimetres(0.041);
    }

    HybridVr(std::string name, IvrParams ivr_params,
             LdoParams ldo_params,
             HybridMode initial = HybridMode::IvrMode);

    const std::string &name() const { return _name; }
    HybridMode mode() const { return _mode; }

    /**
     * Reconfigure the regulator. The attached domain must be inactive
     * (voltage removed by the C6 flow); switching under load would
     * inject voltage noise, so it is rejected as a caller bug.
     */
    void setMode(HybridMode mode, bool domain_active);

    /** Input power for pout in the current mode. */
    Power inputPower(Voltage vin, Voltage vout, Power pout) const;

    /** Conversion efficiency in the current mode. */
    double efficiency(Voltage vin, Voltage vout, Power pout) const;

    const Ivr &ivr() const { return _ivr; }
    const LdoVr &ldo() const { return _ldo; }

  private:
    std::string _name;
    Ivr _ivr;
    LdoVr _ldo;
    HybridMode _mode;
};

} // namespace pdnspot

#endif // PDNSPOT_FLEXWATTS_HYBRID_VR_HH
