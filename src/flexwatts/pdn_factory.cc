#include "flexwatts/pdn_factory.hh"

#include "common/logging.hh"
#include "flexwatts/flexwatts_pdn.hh"
#include "pdn/imbvr_pdn.hh"
#include "pdn/ivr_pdn.hh"
#include "pdn/ldo_pdn.hh"
#include "pdn/mbvr_pdn.hh"

namespace pdnspot
{

std::unique_ptr<PdnModel>
makePdn(PdnKind kind, PdnPlatformParams platform)
{
    switch (kind) {
      case PdnKind::IVR:
        return std::make_unique<IvrPdn>(platform);
      case PdnKind::MBVR:
        return std::make_unique<MbvrPdn>(platform);
      case PdnKind::LDO:
        return std::make_unique<LdoPdn>(platform);
      case PdnKind::IplusMBVR:
        return std::make_unique<ImbvrPdn>(platform);
      case PdnKind::FlexWatts:
        return std::make_unique<FlexWattsPdn>(platform);
    }
    panic("makePdn: invalid PdnKind");
}

} // namespace pdnspot
