#include "flexwatts/mode_switch.hh"

#include "common/logging.hh"

namespace pdnspot
{

ModeSwitchFlow::ModeSwitchFlow(HybridMode initial,
                               ModeSwitchParams params)
    : _params(params), _mode(initial), _busyUntil(seconds(0.0)),
      _totalOverhead(seconds(0.0))
{
    if (_params.totalLatency() <= seconds(0.0))
        fatal("ModeSwitchFlow: non-positive switch latency");
}

bool
ModeSwitchFlow::requestSwitch(Time now, HybridMode target)
{
    if (target == _mode || switching(now))
        return false;
    _mode = target;
    _busyUntil = now + _params.totalLatency();
    _totalOverhead += _params.totalLatency();
    ++_switchCount;
    if (_observer)
        _observer(now, target);
    return true;
}

Energy
ModeSwitchFlow::totalOverheadEnergy() const
{
    return _params.flowPower * _totalOverhead;
}

} // namespace pdnspot
