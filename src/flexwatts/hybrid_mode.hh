/**
 * @file
 * FlexWatts hybrid-PDN operating modes.
 */

#ifndef PDNSPOT_FLEXWATTS_HYBRID_MODE_HH
#define PDNSPOT_FLEXWATTS_HYBRID_MODE_HH

#include <array>
#include <string>

namespace pdnspot
{

/** The two modes of the FlexWatts hybrid compute rail (Sec. 6). */
enum class HybridMode
{
    IvrMode, ///< V_IN at 1.8 V, on-die buck converters regulate
    LdoMode, ///< V_IN at the max domain voltage, on-die LDOs regulate
};

inline constexpr std::array<HybridMode, 2> allHybridModes = {
    HybridMode::IvrMode, HybridMode::LdoMode,
};

std::string toString(HybridMode mode);

} // namespace pdnspot

#endif // PDNSPOT_FLEXWATTS_HYBRID_MODE_HH
