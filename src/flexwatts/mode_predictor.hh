/**
 * @file
 * FlexWatts runtime mode-prediction algorithm (paper Algorithm 1).
 *
 * Every evaluation interval (e.g. 10 ms) the PMU estimates the
 * platform inputs -- configured TDP, AR (from activity sensors),
 * workload type (from active domains) and package power state -- and
 * looks up the stored ETEE curves for both hybrid modes, choosing the
 * one with the higher predicted ETEE. A small hysteresis margin (an
 * engineering extension over the paper's bare comparison) prevents
 * mode thrashing when the two curves cross shallowly, since every
 * switch costs a ~94 us idle window.
 */

#ifndef PDNSPOT_FLEXWATTS_MODE_PREDICTOR_HH
#define PDNSPOT_FLEXWATTS_MODE_PREDICTOR_HH

#include <optional>

#include "flexwatts/etee_table.hh"
#include "flexwatts/hybrid_mode.hh"

namespace pdnspot
{

/** Inputs Algorithm 1 consumes (estimated at runtime by the PMU). */
struct PredictorInputs
{
    Power tdp;
    double ar = 0.56;
    WorkloadType workloadType = WorkloadType::MultiThread;
    PackageCState powerState = PackageCState::C0;
};

/** Algorithm 1 with optional switch hysteresis. */
class ModePredictor
{
  public:
    /**
     * @param table pre-characterized ETEE curves
     * @param hysteresis minimum absolute ETEE advantage the
     *        non-current mode must show before a switch is advised;
     *        0 reproduces the paper's bare argmax
     */
    explicit ModePredictor(const EteeTable &table,
                           double hysteresis = 0.0);

    /**
     * The paper's Algorithm 1: the mode with the higher predicted
     * ETEE (ties go to IVR-Mode).
     */
    HybridMode predict(const PredictorInputs &in) const;

    /**
     * Hysteresis-aware decision: returns the mode to use given the
     * currently configured mode; only advises a switch when the other
     * mode's predicted ETEE advantage exceeds the margin.
     */
    HybridMode decide(const PredictorInputs &in,
                      HybridMode current) const;

    /** Predicted ETEE of one mode for these inputs. */
    double predictedEtee(const PredictorInputs &in,
                         HybridMode mode) const;

    double hysteresis() const { return _hysteresis; }

  private:
    const EteeTable &_table;
    double _hysteresis;
};

} // namespace pdnspot

#endif // PDNSPOT_FLEXWATTS_MODE_PREDICTOR_HH
