/**
 * @file
 * Voltage-noise-free mode-switching flow (paper Sec. 6).
 *
 * FlexWatts reconfigures the hybrid rail only while the compute
 * domains are idle. The flow leverages the package-C6 firmware path:
 *
 *   1. enter package C6 (context save, clocks/voltage off) ... 45 us
 *   2. retarget V_IN and reconfigure the hybrid VRs .......... 19 us
 *   3. exit package C6 and resume execution .................. 30 us
 *
 * for a total of ~94 us -- comfortably within the up-to-500 us DVFS
 * transitions client processors already absorb. The state machine
 * tracks in-flight switches, accumulates overhead statistics, and
 * models the energy spent idling through the flow.
 */

#ifndef PDNSPOT_FLEXWATTS_MODE_SWITCH_HH
#define PDNSPOT_FLEXWATTS_MODE_SWITCH_HH

#include <cstdint>
#include <functional>

#include "common/units.hh"
#include "flexwatts/hybrid_mode.hh"

namespace pdnspot
{

/** Latencies and energy of one mode switch. */
struct ModeSwitchParams
{
    Time enterC6 = microseconds(45.0);
    Time retargetVrs = microseconds(19.0);
    Time exitC6 = microseconds(30.0);

    /** Platform draw while idling through the flow (C6-like). */
    Power flowPower = milliwatts(600.0);

    Time
    totalLatency() const
    {
        return enterC6 + retargetVrs + exitC6;
    }
};

/** The mode-switch state machine used by the PMU/simulator. */
class ModeSwitchFlow
{
  public:
    explicit ModeSwitchFlow(HybridMode initial = HybridMode::IvrMode,
                            ModeSwitchParams params = {});

    /** Mode the rail is configured for (the target while switching). */
    HybridMode mode() const { return _mode; }

    /** True while the C6 flow is still in flight at `now`. */
    bool switching(Time now) const { return now < _busyUntil; }

    /**
     * Begin a switch at time `now`. Returns false (and does nothing)
     * if a switch is already in flight or the target equals the
     * current mode. The compute domains are implicitly gated by the
     * flow, so the switch is always voltage-noise-free.
     */
    bool requestSwitch(Time now, HybridMode target);

    /** Completion time of the most recent switch. */
    Time busyUntil() const { return _busyUntil; }

    /** Number of completed/in-flight switches so far. */
    uint64_t switchCount() const { return _switchCount; }

    /** Total time spent inside switch flows. */
    Time totalOverheadTime() const { return _totalOverhead; }

    /** Total energy spent idling through switch flows. */
    Energy totalOverheadEnergy() const;

    const ModeSwitchParams &params() const { return _params; }

    /**
     * Observe accepted switches: called from requestSwitch's success
     * path with (start time, target mode). Strictly observational —
     * the waveform probe (obs/probe.hh) hangs off this; pass an
     * empty function to detach.
     */
    void
    setObserver(std::function<void(Time, HybridMode)> observer)
    {
        _observer = std::move(observer);
    }

  private:
    ModeSwitchParams _params;
    HybridMode _mode;
    Time _busyUntil;
    uint64_t _switchCount = 0;
    Time _totalOverhead;
    std::function<void(Time, HybridMode)> _observer;
};

} // namespace pdnspot

#endif // PDNSPOT_FLEXWATTS_MODE_SWITCH_HH
