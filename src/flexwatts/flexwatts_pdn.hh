/**
 * @file
 * The FlexWatts hybrid adaptive PDN (paper Sec. 6, Fig. 6).
 *
 * Topology: the compute domains (cores, LLC, GFX) sit on a hybrid
 * rail that operates either as an IVR chain (V_IN at 1.8 V, on-die
 * buck second stage) or as an LDO chain (V_IN at the max compute
 * voltage, on-die LDO second stage); SA and IO get dedicated one-stage
 * off-chip VRs behind power gates. Resource sharing between the two
 * modes slightly raises the compute load-line relative to the pure
 * IVR (1.1 vs 1.0 mOhm) and pure LDO (1.4 vs 1.25 mOhm) PDNs, which
 * is why FlexWatts trails the per-TDP best static PDN by <1% (Sec. 7).
 *
 * The off-chip rail set is sized for IVR-Mode: whenever a high-current
 * workload arrives the predictor switches to IVR-Mode, so the shared
 * V_IN never needs LDO-Mode-level current (Sec. 7, "Why does FlexWatts
 * have better BOM and board area than LDO and MBVR?").
 */

#ifndef PDNSPOT_FLEXWATTS_FLEXWATTS_PDN_HH
#define PDNSPOT_FLEXWATTS_FLEXWATTS_PDN_HH

#include <vector>

#include "flexwatts/hybrid_mode.hh"
#include "pdn/load_line.hh"
#include "pdn/pdn_model.hh"
#include "vr/buck_vr.hh"
#include "vr/ivr.hh"
#include "vr/ldo_vr.hh"

namespace pdnspot
{

/** Topology parameters of the FlexWatts PDN. */
struct FlexWattsParams
{
    Voltage tobIvrMode = millivolts(21.0); ///< slightly above pure IVR
    Voltage tobLdoMode = millivolts(18.0); ///< slightly above pure LDO
    Resistance rllInIvrMode = milliohms(1.1);  ///< vs 1.0 for pure IVR
    Resistance rllInLdoMode = milliohms(1.4);  ///< vs 1.25 for pure LDO
    Resistance rllSa = milliohms(7.0);
    Resistance rllIo = milliohms(4.0);
};

/** The hybrid adaptive PDN. */
class FlexWattsPdn : public PdnModel
{
  public:
    explicit FlexWattsPdn(PdnPlatformParams platform = {},
                          FlexWattsParams params = {});

    std::string name() const override { return "FlexWatts"; }
    PdnKind kind() const override { return PdnKind::FlexWatts; }

    /**
     * Oracle evaluation: the hybrid rail uses whichever mode yields
     * the higher ETEE at this operating point (what the paper's
     * evaluation assumes the predictor achieves at steady state).
     */
    EteeResult evaluate(const PlatformState &state) const override;

    /** Evaluation pinned to one mode. */
    EteeResult evaluate(const PlatformState &state,
                        HybridMode mode) const;

    /** The oracle-best mode at this operating point. */
    HybridMode bestMode(const PlatformState &state) const;

    std::vector<OffChipRail>
    offChipRails(const PlatformState &peak) const override;

    const FlexWattsParams &params() const { return _params; }

  private:
    FlexWattsParams _params;
    Ivr _ivr;
    LdoVr _ldo;
    BuckVr _vrIn;
    BuckVr _vrSa;
    BuckVr _vrIo;
    LoadLine _llInIvrMode;
    LoadLine _llInLdoMode;
    LoadLine _llSa;
    LoadLine _llIo;
};

} // namespace pdnspot

#endif // PDNSPOT_FLEXWATTS_FLEXWATTS_PDN_HH
