#include "flexwatts/flexwatts_pdn.hh"

#include "pdn/rail_chains.hh"

namespace pdnspot
{

namespace
{

constexpr std::array<DomainId, 1> saRailDomains = {DomainId::SA};
constexpr std::array<DomainId, 1> ioRailDomains = {DomainId::IO};

} // anonymous namespace

FlexWattsPdn::FlexWattsPdn(PdnPlatformParams platform,
                           FlexWattsParams params)
    : PdnModel(platform),
      _params(params),
      _ivr(IvrParams{.name = "HybridVR(IVR)"}),
      _ldo(LdoParams{.name = "HybridVR(LDO)"}),
      _vrIn(BuckParams::motherboard("V_IN")),
      _vrSa(BuckParams::motherboard("V_SA")),
      _vrIo(BuckParams::motherboard("V_IO")),
      _llInIvrMode(params.rllInIvrMode),
      _llInLdoMode(params.rllInLdoMode),
      _llSa(params.rllSa),
      _llIo(params.rllIo)
{}

EteeResult
FlexWattsPdn::evaluate(const PlatformState &state, HybridMode mode) const
{
    ChainContext ctx{_platform, _guardband};

    ChainResult compute =
        mode == HybridMode::IvrMode
            ? evalIvrChain(ctx, state, computeDomains, _ivr, _vrIn,
                           _params.tobIvrMode, _llInIvrMode)
            : evalLdoChain(ctx, state, computeDomains, _ldo, _vrIn,
                           _params.tobLdoMode, _llInLdoMode);

    Voltage uncore_tob = mode == HybridMode::IvrMode
                             ? _params.tobIvrMode
                             : _params.tobLdoMode;
    ChainResult sa = evalSharedBoardRail(
        ctx, state, saRailDomains, _vrSa, uncore_tob, _llSa, true);
    ChainResult io = evalSharedBoardRail(
        ctx, state, ioRailDomains, _vrIo, uncore_tob, _llIo, true);
    ChainResult uncore = sa;
    uncore.accumulate(io);

    EteeResult r;
    r.nominalPower = compute.nominalPower + uncore.nominalPower;
    r.inputPower = compute.inputPower + uncore.inputPower;
    r.loss.vrLoss = compute.vrLoss + uncore.vrLoss;
    r.loss.conductionCompute = compute.conduction;
    r.loss.conductionUncore = uncore.conduction;
    r.loss.other = compute.guardExcess + uncore.guardExcess;
    r.chipInputCurrent = compute.chipCurrent + uncore.chipCurrent;
    r.computeLoadLine = mode == HybridMode::IvrMode
                            ? _params.rllInIvrMode
                            : _params.rllInLdoMode;
    return r;
}

HybridMode
FlexWattsPdn::bestMode(const PlatformState &state) const
{
    EteeResult ivr = evaluate(state, HybridMode::IvrMode);
    EteeResult ldo = evaluate(state, HybridMode::LdoMode);
    // Tie-break toward IVR-Mode, mirroring Algorithm 1's ">=".
    return ivr.etee() >= ldo.etee() ? HybridMode::IvrMode
                                    : HybridMode::LdoMode;
}

EteeResult
FlexWattsPdn::evaluate(const PlatformState &state) const
{
    return evaluate(state, bestMode(state));
}

std::vector<OffChipRail>
FlexWattsPdn::offChipRails(const PlatformState &peak) const
{
    ChainContext ctx{_platform, _guardband};
    // V_IN is sized for IVR-Mode current: high-power workloads always
    // run in IVR-Mode, so LDO-Mode never sees more current than the
    // IVR-Mode Iccmax (Sec. 7).
    return {
        sizeIvrInputRail(ctx, peak, computeDomains, _ivr, "V_IN",
                         _params.tobIvrMode),
        sizeSharedBoardRail(ctx, peak, saRailDomains, "V_SA",
                            _params.tobIvrMode, true),
        sizeSharedBoardRail(ctx, peak, ioRailDomains, "V_IO",
                            _params.tobIvrMode, true),
    };
}

} // namespace pdnspot
