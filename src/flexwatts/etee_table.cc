#include "flexwatts/etee_table.hh"

#include "common/logging.hh"

namespace pdnspot
{

size_t
EteeTable::modeIndex(HybridMode m)
{
    return static_cast<size_t>(m);
}

EteeTable::EteeTable(const FlexWattsPdn &pdn,
                     const OperatingPointModel &opm)
    : EteeTable(pdn, opm, GridSpec())
{}

EteeTable::EteeTable(const FlexWattsPdn &pdn,
                     const OperatingPointModel &opm, GridSpec grid,
                     const ParallelRunner &runner)
{
    if (grid.tdpsW.empty() || grid.ars.empty())
        fatal("EteeTable: empty characterization grid");

    // Active-state (C0) curves: one (TDP x AR) grid per mode and
    // workload type. Cells are independent, so each grid is sampled
    // in parallel with every cell stored at its own index.
    static constexpr std::array<WorkloadType, 3> activeTypes = {
        WorkloadType::SingleThread, WorkloadType::MultiThread,
        WorkloadType::Graphics,
    };
    size_t na = grid.ars.size();
    for (HybridMode mode : allHybridModes) {
        for (WorkloadType type : activeTypes) {
            std::vector<double> values = runner.map<double>(
                grid.tdpsW.size() * na, [&](size_t cell) {
                    OperatingPointModel::Query q;
                    q.tdp = watts(grid.tdpsW[cell / na]);
                    q.type = type;
                    q.ar = grid.ars[cell % na];
                    return pdn.evaluate(opm.build(q), mode).etee();
                });
            _active.emplace(
                std::make_pair(modeIndex(mode), type),
                BilinearGrid(grid.tdpsW, grid.ars,
                             std::move(values)));
        }
        // The battery-life type reuses the multi-thread curves when
        // momentarily active (the PMU classifies by active domains).
        _active.emplace(
            std::make_pair(modeIndex(mode), WorkloadType::BatteryLife),
            _active.at(std::make_pair(modeIndex(mode),
                                      WorkloadType::MultiThread)));

        // Package C-state rows (TDP-independent, Sec. 5 Observation 3).
        for (PackageCState state : batteryLifeCStates) {
            OperatingPointModel::Query q;
            q.tdp = watts(15.0);
            q.cstate = state;
            _cstates.emplace(std::make_pair(modeIndex(mode), state),
                             pdn.evaluate(opm.build(q), mode).etee());
        }
    }
}

double
EteeTable::lookupActive(HybridMode mode, WorkloadType type, Power tdp,
                        double ar) const
{
    auto it = _active.find(std::make_pair(modeIndex(mode), type));
    if (it == _active.end())
        panic("EteeTable: missing active curve");
    return it->second.at(inWatts(tdp), ar);
}

double
EteeTable::lookupCState(HybridMode mode, PackageCState state) const
{
    if (state == PackageCState::C0)
        panic("EteeTable: C0 has no C-state row; use lookupActive");
    auto it = _cstates.find(std::make_pair(modeIndex(mode), state));
    if (it == _cstates.end())
        panic("EteeTable: missing C-state row");
    return it->second;
}

} // namespace pdnspot
