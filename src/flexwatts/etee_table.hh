/**
 * @file
 * PMU-firmware ETEE curve tables (paper Sec. 6, Algorithm 1).
 *
 * FlexWatts's mode predictor does not evaluate the full PDN model at
 * runtime; like every other PMU algorithm it consults pre-characterized
 * firmware tables (footnote 11). EteeTable holds, for each hybrid mode
 * and workload type, a (TDP x AR) grid of ETEE values, plus one row of
 * ETEE per package C-state; lookups interpolate bilinearly. The tables
 * are generated offline by sampling the FlexWattsPdn model, exactly as
 * a vendor would fuse post-silicon characterization data.
 */

#ifndef PDNSPOT_FLEXWATTS_ETEE_TABLE_HH
#define PDNSPOT_FLEXWATTS_ETEE_TABLE_HH

#include <map>

#include "common/interp.hh"
#include "common/parallel.hh"
#include "common/units.hh"
#include "flexwatts/flexwatts_pdn.hh"
#include "flexwatts/hybrid_mode.hh"
#include "power/operating_point.hh"

namespace pdnspot
{

/** Characterization grid (the paper's Fig. 4 axes). */
struct EteeGridSpec
{
    std::vector<double> tdpsW = {4.0, 8.0, 10.0, 18.0, 25.0, 36.0,
                                 50.0};
    std::vector<double> ars = {0.30, 0.40, 0.50, 0.60, 0.70, 0.80,
                               0.90};
};

/** Pre-characterized ETEE curves for both hybrid modes. */
class EteeTable
{
  public:
    using GridSpec = EteeGridSpec;

    /** Characterize a FlexWatts PDN over the default grid. */
    EteeTable(const FlexWattsPdn &pdn, const OperatingPointModel &opm);

    /**
     * Characterize a FlexWatts PDN over a custom grid. Grid cells
     * are sampled in parallel across `runner`; each cell lands at
     * its own grid index, so the table is independent of thread
     * count.
     */
    EteeTable(const FlexWattsPdn &pdn, const OperatingPointModel &opm,
              GridSpec grid,
              const ParallelRunner &runner = ParallelRunner::global());

    /** ETEE of one mode in an active (C0) state. */
    double lookupActive(HybridMode mode, WorkloadType type, Power tdp,
                        double ar) const;

    /** ETEE of one mode in a package C-state (Fig. 4j row). */
    double lookupCState(HybridMode mode, PackageCState state) const;

  private:
    static size_t modeIndex(HybridMode m);

    std::map<std::pair<size_t, WorkloadType>, BilinearGrid> _active;
    std::map<std::pair<size_t, PackageCState>, double> _cstates;
};

} // namespace pdnspot

#endif // PDNSPOT_FLEXWATTS_ETEE_TABLE_HH
