#include "flexwatts/hybrid_mode.hh"

#include "common/logging.hh"

namespace pdnspot
{

std::string
toString(HybridMode mode)
{
    switch (mode) {
      case HybridMode::IvrMode:
        return "IVR-Mode";
      case HybridMode::LdoMode:
        return "LDO-Mode";
    }
    panic("toString: invalid HybridMode");
}

} // namespace pdnspot
