#include "cost/vr_cost_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace pdnspot
{

VrCostModel::VrCostModel(VrCostParams params)
    : _params(params)
{
    if (_params.costSlopeUsd < 0.0 || _params.areaSlopeMm2 < 0.0)
        fatal("VrCostModel: negative slope");
}

double
VrCostModel::railCost(Current icc_max) const
{
    if (icc_max < amps(0.0))
        fatal("VrCostModel: negative Iccmax");
    if (icc_max == amps(0.0))
        return 0.0;
    return _params.costBaseUsd +
           _params.costSlopeUsd *
               std::pow(inAmps(icc_max), _params.costExponent);
}

Area
VrCostModel::railArea(Current icc_max) const
{
    if (icc_max < amps(0.0))
        fatal("VrCostModel: negative Iccmax");
    if (icc_max == amps(0.0))
        return Area();
    return squareMillimetres(
        _params.areaBaseMm2 +
        _params.areaSlopeMm2 *
            std::pow(inAmps(icc_max), _params.areaExponent));
}

} // namespace pdnspot
