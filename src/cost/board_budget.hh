/**
 * @file
 * Whole-PDN bill-of-materials and board-area calculator (Fig. 8d/8e).
 *
 * For each PDN and TDP, the calculator sizes every off-chip rail for
 * the worst current it must deliver: the CPU-intensive and
 * graphics-intensive operating points, each with Turbo headroom (a
 * low-TDP part can run heavy workloads via Turbo Boost, Sec. 1) and
 * worst-case (power-virus) peak via the load-line AR division. Rails
 * are merged by name taking the per-rail maximum. Platforms up to
 * 18 W TDP use a PMIC that consolidates controllers (Sec. 3.2);
 * larger platforms use discrete VRM rails.
 */

#ifndef PDNSPOT_COST_BOARD_BUDGET_HH
#define PDNSPOT_COST_BOARD_BUDGET_HH

#include <vector>

#include "common/units.hh"
#include "cost/vr_cost_model.hh"
#include "pdn/pdn_model.hh"
#include "power/operating_point.hh"

namespace pdnspot
{

/** BOM and area of one PDN's off-chip delivery at one TDP. */
struct BoardBudget
{
    double bomCostUsd = 0.0;
    Area boardArea;
    bool usesPmic = false;
    std::vector<OffChipRail> rails; ///< merged worst-case rails
};

/** Sizing/consolidation parameters. */
struct BoardCostParams
{
    Power pmicMaxTdp = watts(18.0);  ///< PMIC up to here, VRM above
    double pmicBaseUsd = 0.45;       ///< PMIC package + controller
    double pmicRailCostFactor = 0.5; ///< consolidation discount
    Area pmicBaseArea = squareMillimetres(35.0);
    double pmicRailAreaFactor = 0.6; ///< inductors stay discrete
    double vrmPerRailUsd = 0.10;     ///< per-rail periphery (VRM)
    Area vrmPerRailArea = squareMillimetres(8.0);
    double turboCeiling = 2.0;       ///< max Turbo frequency multiple
};

/** Computes BoardBudgets for any PdnModel. */
class BoardCostCalculator
{
  public:
    explicit BoardCostCalculator(const OperatingPointModel &opm,
                                 VrCostModel cost_model = VrCostModel(),
                                 BoardCostParams params = {});

    /** Size, price and measure one PDN at one TDP. */
    BoardBudget evaluate(const PdnModel &pdn, Power tdp) const;

    /**
     * The merged worst-case rail set a PDN needs at a TDP (CPU and
     * graphics peaks with Turbo headroom).
     */
    std::vector<OffChipRail> worstCaseRails(const PdnModel &pdn,
                                            Power tdp) const;

  private:
    double turboMultiplier(Power tdp, bool graphics) const;

    const OperatingPointModel &_opm;
    VrCostModel _costModel;
    BoardCostParams _params;
};

} // namespace pdnspot

#endif // PDNSPOT_COST_BOARD_BUDGET_HH
