#include "cost/board_budget.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace pdnspot
{

BoardCostCalculator::BoardCostCalculator(const OperatingPointModel &opm,
                                         VrCostModel cost_model,
                                         BoardCostParams params)
    : _opm(opm), _costModel(cost_model), _params(params)
{}

double
BoardCostCalculator::turboMultiplier(Power tdp, bool graphics) const
{
    // Turbo can push the clock to the domain's Fmax regardless of the
    // configured TDP (cTDP makes the silicon identical across
    // segments), bounded by the electrical design ceiling.
    Frequency base = graphics ? _opm.gfxBaseFrequency(tdp)
                              : _opm.coreBaseFrequency(tdp);
    Frequency fmax = graphics ? _opm.gfxVf().fmax()
                              : _opm.coreVf().fmax();
    double headroom = fmax / base;
    return std::clamp(headroom, 1.0, _params.turboCeiling);
}

std::vector<OffChipRail>
BoardCostCalculator::worstCaseRails(const PdnModel &pdn, Power tdp) const
{
    // Two sizing corners: CPU-intensive and graphics-intensive, each
    // at the Turbo frequency ceiling for this TDP.
    OperatingPointModel::Query cpu;
    cpu.tdp = tdp;
    cpu.type = WorkloadType::MultiThread;
    cpu.freqMultiplier = turboMultiplier(tdp, false);

    OperatingPointModel::Query gfx;
    gfx.tdp = tdp;
    gfx.type = WorkloadType::Graphics;
    gfx.freqMultiplier = turboMultiplier(tdp, true);

    std::map<std::string, OffChipRail> merged;
    for (const auto &q : {cpu, gfx}) {
        for (const OffChipRail &rail :
             pdn.offChipRails(_opm.build(q))) {
            auto [it, inserted] = merged.emplace(rail.name, rail);
            if (!inserted) {
                it->second.iccMax =
                    std::max(it->second.iccMax, rail.iccMax);
                it->second.outputVoltage = std::max(
                    it->second.outputVoltage, rail.outputVoltage);
            }
        }
    }

    std::vector<OffChipRail> rails;
    rails.reserve(merged.size());
    for (auto &[name, rail] : merged)
        rails.push_back(std::move(rail));
    return rails;
}

BoardBudget
BoardCostCalculator::evaluate(const PdnModel &pdn, Power tdp) const
{
    BoardBudget budget;
    budget.rails = worstCaseRails(pdn, tdp);
    budget.usesPmic = tdp <= _params.pmicMaxTdp;

    double rail_cost_sum = 0.0;
    double rail_area_sum = 0.0;
    for (const OffChipRail &rail : budget.rails) {
        rail_cost_sum += _costModel.railCost(rail.iccMax);
        rail_area_sum +=
            inSquareMillimetres(_costModel.railArea(rail.iccMax));
    }

    double nrails = static_cast<double>(budget.rails.size());
    if (budget.usesPmic) {
        budget.bomCostUsd = _params.pmicBaseUsd +
                            _params.pmicRailCostFactor * rail_cost_sum;
        budget.boardArea =
            _params.pmicBaseArea +
            squareMillimetres(_params.pmicRailAreaFactor *
                              rail_area_sum);
    } else {
        budget.bomCostUsd =
            rail_cost_sum + _params.vrmPerRailUsd * nrails;
        budget.boardArea =
            squareMillimetres(rail_area_sum) +
            _params.vrmPerRailArea * nrails;
    }
    return budget;
}

} // namespace pdnspot
