/**
 * @file
 * Per-rail VR cost and board-area models.
 *
 * The paper maps each off-chip rail's maximum design current (Iccmax)
 * to dollars and square millimetres using a Texas Instruments vendor
 * table (Sec. 3.2). The vendor table is not redistributable, so this
 * model uses the monotone power-law fit such tables follow: a small
 * per-rail floor (controller, feedback network) plus a term that
 * grows slightly super-linearly with current for cost (more phases,
 * bigger FETs) and slightly sub-linearly for area (inductor volume
 * amortizes). Only the monotone mapping matters for the paper's
 * normalized BOM/area ratios.
 */

#ifndef PDNSPOT_COST_VR_COST_MODEL_HH
#define PDNSPOT_COST_VR_COST_MODEL_HH

#include "common/units.hh"

namespace pdnspot
{

/** Coefficients of the Iccmax -> cost/area fits. */
struct VrCostParams
{
    double costBaseUsd = 0.06;   ///< per-rail floor
    double costSlopeUsd = 0.11;  ///< dollars per A^costExponent
    double costExponent = 1.22;

    double areaBaseMm2 = 10.0;
    double areaSlopeMm2 = 9.0;   ///< mm^2 per A^areaExponent
    double areaExponent = 0.9;
};

/** Maps a rail's Iccmax to its bill-of-materials cost and area. */
class VrCostModel
{
  public:
    explicit VrCostModel(VrCostParams params = {});

    /** Discrete-VR cost of one rail in USD. */
    double railCost(Current icc_max) const;

    /** Board area of one rail (power stage + inductor + caps). */
    Area railArea(Current icc_max) const;

    const VrCostParams &params() const { return _params; }

  private:
    VrCostParams _params;
};

} // namespace pdnspot

#endif // PDNSPOT_COST_VR_COST_MODEL_HH
