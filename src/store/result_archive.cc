#include "store/result_archive.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace fs = std::filesystem;

namespace pdnspot
{

namespace
{

JsonValue
num(double v)
{
    return JsonValue::makeNumber(v);
}

JsonValue
str(std::string v)
{
    return JsonValue::makeString(std::move(v));
}

JsonValue
stringArray(const std::vector<std::string> &values)
{
    std::vector<JsonValue> items;
    items.reserve(values.size());
    for (const std::string &v : values)
        items.push_back(str(v));
    return JsonValue::makeArray(std::move(items));
}

std::string
readFileOrFatal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal(strprintf("cannot read \"%s\"", path.c_str()));
    std::ostringstream out;
    out << in.rdbuf();
    return std::move(out).str();
}

/** Typed reads mirroring run_report.cc's tolerant accessors. */
std::string
lineString(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind() != JsonValue::Kind::String)
        return "";
    return v->asString();
}

double
lineNumber(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind() != JsonValue::Kind::Number)
        return 0.0;
    return v->asNumber();
}

uint64_t
lineCount(const JsonValue &obj, const char *key)
{
    double v = lineNumber(obj, key);
    return v >= 0.0 ? static_cast<uint64_t>(v) : 0;
}

std::vector<std::string>
lineStrings(const JsonValue &obj, const char *key)
{
    std::vector<std::string> out;
    const JsonValue *v = obj.find(key);
    if (!v || v->kind() != JsonValue::Kind::Array)
        return out;
    for (const JsonValue &item : v->items()) {
        if (item.kind() == JsonValue::Kind::String)
            out.push_back(item.asString());
    }
    return out;
}

} // namespace

std::string
traceChainHash(const RunReportView &view)
{
    std::string joined;
    for (size_t i = 0; i < view.traceNames.size(); ++i) {
        joined += view.traceNames[i];
        joined += '=';
        if (i < view.traceProvenance.size())
            joined += view.traceProvenance[i];
        joined += '\n';
    }
    return fnv1a64Hex(joined);
}

std::vector<ArchiveEntry>
orderShardSet(std::vector<ArchiveEntry> entries)
{
    if (entries.empty())
        fatal("no archived runs with CSV payloads match");
    size_t count = entries.front().shardCount;
    for (const ArchiveEntry &e : entries) {
        if (e.csvHash.empty())
            fatal(strprintf("run %s carries no CSV payload",
                            e.id.c_str()));
        if (e.shardCount != count)
            fatal(strprintf(
                "mixed shard counts in the matched set: run %s has "
                "%zu shards, run %s has %zu (narrow the filters)",
                entries.front().id.c_str(), count, e.id.c_str(),
                e.shardCount));
    }
    if (entries.size() != count) {
        std::vector<std::string> have;
        for (const ArchiveEntry &e : entries)
            have.push_back(strprintf("%zu", e.shardIndex));
        fatal(strprintf("matched %zu runs of a %zu-shard set "
                        "(shards present: %s)",
                        entries.size(), count,
                        joinStrings(have).c_str()));
    }
    std::sort(entries.begin(), entries.end(),
              [](const ArchiveEntry &a, const ArchiveEntry &b) {
                  return a.shardIndex < b.shardIndex;
              });
    for (size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].shardIndex == i + 1)
            continue;
        bool duplicate =
            i > 0 && entries[i].shardIndex ==
                         entries[i - 1].shardIndex;
        fatal(strprintf("shard %zu/%zu is %s in the matched set "
                        "(narrow the filters)",
                        duplicate ? entries[i].shardIndex : i + 1,
                        count,
                        duplicate ? "duplicated" : "missing"));
    }
    return entries;
}

ResultArchive::ResultArchive(std::string root)
    : _root(std::move(root))
{
    if (_root.empty())
        fatal("archive root must be non-empty");
    std::error_code ec;
    for (const char *sub : {"", "/runs", "/payloads", "/tmp"}) {
        fs::create_directories(_root + sub, ec);
        if (ec)
            fatal(strprintf("cannot create archive directory "
                            "\"%s%s\": %s",
                            _root.c_str(), sub,
                            ec.message().c_str()));
    }
}

std::string
ResultArchive::indexPath() const
{
    return _root + "/index.jsonl";
}

std::string
ResultArchive::reportPath(const std::string &id) const
{
    return _root + "/runs/" + id + ".report.json";
}

std::string
ResultArchive::refPath(const std::string &id) const
{
    return _root + "/runs/" + id + ".csv.ref";
}

std::string
ResultArchive::payloadPath(const std::string &hash) const
{
    return _root + "/payloads/" + hash + ".csv";
}

void
ResultArchive::writeAtomically(const std::string &path,
                               const std::string &bytes) const
{
    // Staged under the archive root so the rename never crosses a
    // filesystem boundary; the name is unique enough for concurrent
    // ingesters (same content renames onto the same target anyway).
    std::string tmp = _root + "/tmp/" +
                      fnv1a64Hex(path + "\n" + bytes) + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            fatal(strprintf("cannot open \"%s\"", tmp.c_str()));
        out << bytes;
        out.close();
        if (!out)
            fatal(strprintf("error writing \"%s\"", tmp.c_str()));
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        fatal(strprintf("cannot rename \"%s\" to \"%s\": %s",
                        tmp.c_str(), path.c_str(),
                        ec.message().c_str()));
}

void
ResultArchive::appendIndexLine(const ArchiveEntry &entry) const
{
    std::ofstream out(indexPath(),
                      std::ios::binary | std::ios::app);
    if (!out)
        fatal(strprintf("cannot open \"%s\"",
                        indexPath().c_str()));
    out << writeJsonCompact(entryToJson(entry)) << "\n";
    out.close();
    if (!out)
        fatal(strprintf("error appending to \"%s\"",
                        indexPath().c_str()));
}

std::string
ResultArchive::ingest(const std::string &reportText,
                      const std::string &csvBytes)
{
    JsonValue report = parseJson(reportText, "<report>");
    viewRunReport(report); // schema check before any write
    std::string id = fnv1a64Hex(reportText);

    // Same report bytes => same run: the archive is append-only and
    // the first ingest wins (a differing payload on a re-ingest
    // would mean the caller re-ran a provenance-identical study and
    // got different bytes — the report, not the archive, is the
    // identity).
    if (fs::exists(reportPath(id)))
        return id;

    std::string csvHash;
    if (!csvBytes.empty()) {
        csvHash = fnv1a64Hex(csvBytes);
        if (!fs::exists(payloadPath(csvHash)))
            writeAtomically(payloadPath(csvHash), csvBytes);
        writeAtomically(refPath(id), csvHash + "\n");
    }
    // The report lands last: a run is archived iff its report file
    // exists, and by then its payload + ref are already durable.
    writeAtomically(reportPath(id), reportText);
    appendIndexLine(entryFromReport(report, id, csvHash));
    return id;
}

std::vector<ArchiveEntry>
ResultArchive::entries() const
{
    std::vector<ArchiveEntry> out;
    std::ifstream in(indexPath(), std::ios::binary);
    if (!in)
        return out;
    std::string line;
    size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::optional<ArchiveEntry> entry;
        try {
            entry = entryFromJson(
                parseJson(line, strprintf("%s:%zu",
                                          indexPath().c_str(),
                                          lineNo)));
        } catch (const ConfigError &) {
            // A torn append (crash mid-line) or hand-edited damage:
            // the store is the source of truth, so skip and let
            // rebuild-index repair.
            continue;
        }
        if (!entry)
            continue;
        bool seen = false;
        for (const ArchiveEntry &e : out)
            seen = seen || e.id == entry->id;
        if (!seen)
            out.push_back(std::move(*entry));
    }
    return out;
}

std::optional<ArchiveEntry>
ResultArchive::findRun(const std::string &idPrefix) const
{
    if (idPrefix.empty())
        return std::nullopt;
    for (ArchiveEntry &entry : entries()) {
        if (entry.id.rfind(idPrefix, 0) == 0)
            return std::move(entry);
    }
    return std::nullopt;
}

JsonValue
ResultArchive::readReport(const std::string &id) const
{
    return parseJsonFile(reportPath(id));
}

std::string
ResultArchive::readReportText(const std::string &id) const
{
    return readFileOrFatal(reportPath(id));
}

std::string
ResultArchive::readCsv(const ArchiveEntry &entry) const
{
    if (entry.csvHash.empty())
        fatal(strprintf("run %s carries no CSV payload",
                        entry.id.c_str()));
    return readFileOrFatal(payloadPath(entry.csvHash));
}

void
ResultArchive::rebuildIndex()
{
    // Collect run ids from the store; sorted for a deterministic
    // rebuilt index (ingestion order lives only in the index file).
    std::vector<std::string> ids;
    const std::string suffix = ".report.json";
    std::error_code ec;
    for (const fs::directory_entry &e :
         fs::directory_iterator(_root + "/runs", ec)) {
        std::string name = e.path().filename().string();
        if (name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(),
                         suffix.size(), suffix) == 0)
            ids.push_back(
                name.substr(0, name.size() - suffix.size()));
    }
    if (ec)
        fatal(strprintf("cannot scan \"%s/runs\": %s",
                        _root.c_str(), ec.message().c_str()));
    std::sort(ids.begin(), ids.end());

    std::string lines;
    for (const std::string &id : ids) {
        std::string text = readFileOrFatal(reportPath(id));
        std::string csvHash;
        if (fs::exists(refPath(id))) {
            csvHash = readFileOrFatal(refPath(id));
            while (!csvHash.empty() &&
                   (csvHash.back() == '\n' ||
                    csvHash.back() == '\r'))
                csvHash.pop_back();
        }
        JsonValue report = parseJson(text, reportPath(id));
        lines += writeJsonCompact(entryToJson(
            entryFromReport(report, id, csvHash)));
        lines += '\n';
    }
    writeAtomically(indexPath(), lines);
}

ArchiveEntry
ResultArchive::entryFromReport(const JsonValue &report,
                               const std::string &id,
                               const std::string &csvHash)
{
    RunReportView view = viewRunReport(report);
    ArchiveEntry entry;
    entry.id = id;
    entry.tool = view.tool;
    entry.gitRev = view.gitRev;
    entry.specHash = view.specHash;
    entry.traceChain = traceChainHash(view);
    entry.traces = view.traceNames;
    entry.platforms = view.platforms;
    entry.threads = view.threads;
    entry.shardIndex = view.shardIndex;
    entry.shardCount = view.shardCount;
    entry.rows = view.rows;
    entry.wallSeconds = view.wallSeconds;
    entry.csvHash = csvHash;
    for (const RunReportView::Summary &s : view.summaries) {
        ArchivePdnSummary row;
        row.pdn = s.pdn;
        row.cells = s.cells;
        row.supplyEnergyJ = s.supplyEnergyJ;
        row.meanEtee = s.meanEtee;
        row.modeSwitches = s.modeSwitches;
        row.meanPowerW = s.meanPowerW;
        row.batteryLifeHours = s.batteryLifeHours;
        entry.summaries.push_back(std::move(row));
    }
    return entry;
}

JsonValue
ResultArchive::entryToJson(const ArchiveEntry &entry)
{
    std::vector<JsonValue::Member> doc;
    doc.reserve(14);
    doc.emplace_back("id", str(entry.id));
    doc.emplace_back("tool", str(entry.tool));
    doc.emplace_back("git_rev", str(entry.gitRev));
    doc.emplace_back("spec_hash", str(entry.specHash));
    doc.emplace_back("trace_chain", str(entry.traceChain));
    doc.emplace_back("traces", stringArray(entry.traces));
    doc.emplace_back("platforms", stringArray(entry.platforms));
    doc.emplace_back("threads", num(entry.threads));
    doc.emplace_back("shard_index",
                     num(static_cast<double>(entry.shardIndex)));
    doc.emplace_back("shard_count",
                     num(static_cast<double>(entry.shardCount)));
    doc.emplace_back("rows",
                     num(static_cast<double>(entry.rows)));
    doc.emplace_back("wall_time_s", num(entry.wallSeconds));
    doc.emplace_back("csv", str(entry.csvHash));
    std::vector<JsonValue> summaries;
    summaries.reserve(entry.summaries.size());
    for (const ArchivePdnSummary &s : entry.summaries) {
        std::vector<JsonValue::Member> row;
        row.reserve(7);
        row.emplace_back("pdn", str(s.pdn));
        row.emplace_back("cells",
                         num(static_cast<double>(s.cells)));
        row.emplace_back("supply_energy_j", num(s.supplyEnergyJ));
        row.emplace_back("mean_etee", num(s.meanEtee));
        row.emplace_back(
            "mode_switches",
            num(static_cast<double>(s.modeSwitches)));
        row.emplace_back("mean_power_w", num(s.meanPowerW));
        row.emplace_back("battery_life_h",
                         num(s.batteryLifeHours));
        summaries.push_back(
            JsonValue::makeObject(std::move(row)));
    }
    doc.emplace_back("summaries",
                     JsonValue::makeArray(std::move(summaries)));
    return JsonValue::makeObject(std::move(doc));
}

std::optional<ArchiveEntry>
ResultArchive::entryFromJson(const JsonValue &value)
{
    if (value.kind() != JsonValue::Kind::Object)
        return std::nullopt;
    ArchiveEntry entry;
    entry.id = lineString(value, "id");
    if (entry.id.empty())
        return std::nullopt;
    entry.tool = lineString(value, "tool");
    entry.gitRev = lineString(value, "git_rev");
    entry.specHash = lineString(value, "spec_hash");
    entry.traceChain = lineString(value, "trace_chain");
    entry.traces = lineStrings(value, "traces");
    entry.platforms = lineStrings(value, "platforms");
    entry.threads =
        static_cast<unsigned>(lineCount(value, "threads"));
    entry.shardIndex = lineCount(value, "shard_index");
    entry.shardCount = lineCount(value, "shard_count");
    entry.rows = lineCount(value, "rows");
    entry.wallSeconds = lineNumber(value, "wall_time_s");
    entry.csvHash = lineString(value, "csv");
    if (const JsonValue *summaries = value.find("summaries");
        summaries &&
        summaries->kind() == JsonValue::Kind::Array) {
        for (const JsonValue &s : summaries->items()) {
            if (s.kind() != JsonValue::Kind::Object)
                continue;
            ArchivePdnSummary row;
            row.pdn = lineString(s, "pdn");
            row.cells = lineCount(s, "cells");
            row.supplyEnergyJ = lineNumber(s, "supply_energy_j");
            row.meanEtee = lineNumber(s, "mean_etee");
            row.modeSwitches = lineCount(s, "mode_switches");
            row.meanPowerW = lineNumber(s, "mean_power_w");
            row.batteryLifeHours =
                lineNumber(s, "battery_life_h");
            entry.summaries.push_back(std::move(row));
        }
    }
    return entry;
}

} // namespace pdnspot
