/**
 * @file
 * Append-only indexed result archive for campaign runs.
 *
 * The archive is the durable half of the distributed campaign
 * service (ROADMAP "Campaign service"): pdnspot_launch (or any
 * caller holding a pdnspot-report-1 document) ingests runs, and
 * pdnspot_query answers cross-study questions ("battery life of
 * every 4 W spec ever run") with one index scan instead of a
 * directory crawl.
 *
 * On-disk layout under one root directory:
 *
 *   index.jsonl                 one compact JSON object per line,
 *                               appended at ingest time
 *   runs/<id>.report.json       the report document, byte-verbatim
 *   runs/<id>.csv.ref           payload hash (present iff the run
 *                               carried a CSV payload)
 *   payloads/<hash>.csv         content-addressed CSV payloads
 *                               (identical payloads stored once)
 *   tmp/                        staging for atomic writes
 *
 * `id` is the fnv1a64 hex of the report's bytes, so ingesting the
 * same report twice is a no-op and ids are stable across machines.
 * Every index entry carries the provenance key the ROADMAP asks for
 * — spec content hash, trace-transform chain digest, shard k/n,
 * thread count, git revision — plus the per-PDN summary metrics, so
 * filters and metric predicates run off the index alone.
 *
 * Crash safety: payloads, refs and report documents are written to
 * tmp/ and renamed into place (payload, then ref, then report — an
 * interrupted ingest leaves at worst an orphaned payload/ref, never
 * a report without its payload); the index line is appended last.
 * Readers skip torn or malformed index lines, and rebuildIndex()
 * regenerates the whole index from runs/, so the index is a cache
 * of the store, never the source of truth.
 */

#ifndef PDNSPOT_STORE_RESULT_ARCHIVE_HH
#define PDNSPOT_STORE_RESULT_ARCHIVE_HH

#include <optional>
#include <string>
#include <vector>

#include "config/json.hh"
#include "obs/run_report.hh"

namespace pdnspot
{

/** One per-PDN summary row carried by an index entry. */
struct ArchivePdnSummary
{
    std::string pdn;
    uint64_t cells = 0;
    double supplyEnergyJ = 0.0;
    double meanEtee = 0.0;
    uint64_t modeSwitches = 0;
    double meanPowerW = 0.0;
    double batteryLifeHours = 0.0;
};

/** One archived run, as recorded in the index. */
struct ArchiveEntry
{
    std::string id;      ///< fnv1a64 hex of the report bytes
    std::string tool;    ///< emitting binary ("pdnspot_campaign")
    std::string gitRev;
    std::string specHash;   ///< "fnv1a64:<16 hex>" spec content hash
    std::string traceChain; ///< digest of the trace provenance chain
    std::vector<std::string> traces;    ///< trace names, spec order
    std::vector<std::string> platforms; ///< platform/preset names
    unsigned threads = 1;
    size_t shardIndex = 1;
    size_t shardCount = 1;
    size_t rows = 0;
    double wallSeconds = 0.0;
    std::string csvHash; ///< payload content hash; "" = no payload
    std::vector<ArchivePdnSummary> summaries;
};

/**
 * fnv1a64 digest of a run's trace provenance chain ("name=chain"
 * lines joined): two runs share it iff they ran the same named
 * traces through the same transform chains.
 */
std::string traceChainHash(const RunReportView &view);

/**
 * Order `entries` as one complete shard set: every entry must carry
 * a payload and the same shard count n, and the shard indices must
 * be exactly {1..n}. Returns the entries sorted by shard index;
 * fatal() (ConfigError) naming duplicates/missing shards otherwise.
 * A single unsharded run (1/1) is the trivial set.
 */
std::vector<ArchiveEntry>
orderShardSet(std::vector<ArchiveEntry> entries);

/** The append-only indexed result archive. */
class ResultArchive
{
  public:
    /**
     * Open (creating directories as needed) the archive at `root`.
     * fatal() when the layout cannot be created.
     */
    explicit ResultArchive(std::string root);

    const std::string &root() const { return _root; }

    /**
     * Ingest one run: the raw pdnspot-report-1 bytes plus an
     * optional CSV payload ("" = none). Returns the run id.
     * Idempotent on report bytes — re-ingesting an archived run
     * changes nothing (including its payload association). fatal()
     * when `reportText` is not a pdnspot-report-1 document or a
     * write fails.
     */
    std::string ingest(const std::string &reportText,
                       const std::string &csvBytes);

    /**
     * All index entries, ingestion order, deduplicated by id.
     * Malformed lines (a torn append) are skipped, not fatal.
     * An absent index reads as empty — rebuildIndex() restores it.
     */
    std::vector<ArchiveEntry> entries() const;

    /** The first entry whose id starts with `idPrefix`, if any. */
    std::optional<ArchiveEntry>
    findRun(const std::string &idPrefix) const;

    /** The stored report document for `id`; fatal() when absent. */
    JsonValue readReport(const std::string &id) const;

    /** Raw report bytes for `id`; fatal() when absent. */
    std::string readReportText(const std::string &id) const;

    /**
     * The CSV payload for `entry`; fatal() when the run carries
     * none or the payload file is missing.
     */
    std::string readCsv(const ArchiveEntry &entry) const;

    /**
     * Regenerate index.jsonl from runs/ (written atomically via
     * tmp + rename). Entries come back in run-id order — ingestion
     * order is not recorded in the store itself.
     */
    void rebuildIndex();

    /** Layout paths (exposed for tools and tests). */
    std::string indexPath() const;
    std::string reportPath(const std::string &id) const;
    std::string payloadPath(const std::string &hash) const;

    /** The index projection of one report (+ payload hash). */
    static ArchiveEntry entryFromReport(const JsonValue &report,
                                        const std::string &id,
                                        const std::string &csvHash);

    /** Index-line (de)serialization; nullopt on a malformed line. */
    static JsonValue entryToJson(const ArchiveEntry &entry);
    static std::optional<ArchiveEntry>
    entryFromJson(const JsonValue &value);

  private:
    std::string refPath(const std::string &id) const;

    /** Write bytes to tmp/ and rename onto `path` (atomic). */
    void writeAtomically(const std::string &path,
                         const std::string &bytes) const;

    void appendIndexLine(const ArchiveEntry &entry) const;

    std::string _root;
};

} // namespace pdnspot

#endif // PDNSPOT_STORE_RESULT_ARCHIVE_HH
