/**
 * @file
 * Battery-life projection from average platform power.
 */

#ifndef PDNSPOT_SIM_BATTERY_MODEL_HH
#define PDNSPOT_SIM_BATTERY_MODEL_HH

#include "common/units.hh"

namespace pdnspot
{

/** A simple capacity/average-power battery-life model. */
class BatteryModel
{
  public:
    /** @param capacity usable battery energy (e.g. 50 Wh) */
    explicit BatteryModel(Energy capacity);

    Energy capacity() const { return _capacity; }

    /** Runtime until empty at a constant average draw. */
    Time life(Power average_power) const;

    /** Runtime in hours, for reporting. */
    double lifeHours(Power average_power) const;

  private:
    Energy _capacity;
};

} // namespace pdnspot

#endif // PDNSPOT_SIM_BATTERY_MODEL_HH
