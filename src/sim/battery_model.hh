/**
 * @file
 * Battery-life projection from average platform power.
 */

#ifndef PDNSPOT_SIM_BATTERY_MODEL_HH
#define PDNSPOT_SIM_BATTERY_MODEL_HH

#include "common/units.hh"

namespace pdnspot
{

/**
 * Runtime until a store of `remaining` joules is exhausted by a
 * constant `draw` — the SoC-integration step shared by
 * BatteryModel::life (full capacity, campaign summaries) and the
 * fleet engine's per-bucket time-to-empty accounting (partial SoC).
 * fatal() on non-positive draw: callers gate zero-power phases
 * before asking for a drain time.
 */
Time drainTime(Energy remaining, Power draw);

/** drainTime in hours, for reporting. */
double drainHours(Energy remaining, Power draw);

/** A simple capacity/average-power battery-life model. */
class BatteryModel
{
  public:
    /** @param capacity usable battery energy (e.g. 50 Wh) */
    explicit BatteryModel(Energy capacity);

    Energy capacity() const { return _capacity; }

    /** Runtime until empty at a constant average draw. */
    Time life(Power average_power) const;

    /** Runtime in hours, for reporting. */
    double lifeHours(Power average_power) const;

  private:
    Energy _capacity;
};

} // namespace pdnspot

#endif // PDNSPOT_SIM_BATTERY_MODEL_HH
