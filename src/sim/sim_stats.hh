/**
 * @file
 * Aggregated statistics of one interval-simulation run.
 */

#ifndef PDNSPOT_SIM_SIM_STATS_HH
#define PDNSPOT_SIM_SIM_STATS_HH

#include <array>
#include <cstdint>

#include "common/units.hh"
#include "flexwatts/hybrid_mode.hh"

namespace pdnspot
{

/** Outcome of simulating one trace on one PDN. */
struct SimResult
{
    Time duration;
    Energy supplyEnergy;    ///< integral of supply power
    Energy nominalEnergy;   ///< integral of load nominal power

    /** Time spent in each hybrid mode (FlexWatts runs only). */
    std::array<Time, 2> modeResidency{};

    uint64_t modeSwitches = 0;
    Time switchOverheadTime;
    Energy switchOverheadEnergy;

    /** Average supply power over the run. */
    Power
    averagePower() const
    {
        if (duration <= seconds(0.0))
            return Power();
        return supplyEnergy / duration;
    }

    /** Energy-weighted average ETEE over the run. */
    double
    averageEtee() const
    {
        if (supplyEnergy <= joules(0.0))
            return 0.0;
        return nominalEnergy / supplyEnergy;
    }

    Time
    residency(HybridMode mode) const
    {
        return modeResidency[static_cast<size_t>(mode)];
    }

    /**
     * Exact (bit-level) comparison, used by the campaign determinism
     * and CSV round-trip guarantees.
     */
    bool operator==(const SimResult &) const = default;
};

} // namespace pdnspot

#endif // PDNSPOT_SIM_SIM_STATS_HH
