/**
 * @file
 * EteeMemo: a cross-trace memo of operating-point builds and PDN
 * evaluations.
 *
 * Campaign cells revisit the same handful of operating points over
 * and over — a battery-profile trace repeats its residency states
 * every frame, and every PDN kind of one platform sees the same
 * phases — yet the interval simulator's per-trace caching recomputes
 * them for each cell. An EteeMemo keys PlatformState construction by
 * a phase's (cstate, type, ar) and PdnModel evaluations by (pdn kind,
 * mode, phase state), so each distinct state is built and evaluated
 * once per (platform, PDN) for an entire campaign.
 *
 * Both memoized functions are pure, so a memoized run is
 * bit-identical to an unmemoized one — the campaign determinism
 * contract is unaffected.
 *
 * One memo is valid for exactly one (OperatingPointModel, tdp) pair
 * and at most one PdnModel instance per kind (the CampaignEngine
 * keeps one memo per worker alongside its thread-local Platform);
 * mixing in a different model is a caller bug and panics. Not thread
 * safe — use one instance per thread.
 */

#ifndef PDNSPOT_SIM_ETEE_MEMO_HH
#define PDNSPOT_SIM_ETEE_MEMO_HH

#include <array>
#include <cstdint>
#include <map>

#include "flexwatts/flexwatts_pdn.hh"
#include "pdn/pdn_model.hh"
#include "power/operating_point.hh"
#include "workload/trace.hh"

namespace pdnspot
{

/** Memoizes stateFor/evaluate pairs across traces of one platform. */
class EteeMemo
{
  public:
    EteeMemo(const OperatingPointModel &opm, Power tdp);

    /** Memoized OperatingPointModel::build for a phase. */
    const PlatformState &state(const TracePhase &phase);

    /** Memoized pdn.evaluate(state(phase)) (default mode logic). */
    const EteeResult &evaluate(const PdnModel &pdn,
                               const TracePhase &phase);

    /** Memoized pinned-mode FlexWatts evaluation. */
    const EteeResult &evaluate(const FlexWattsPdn &pdn,
                               const TracePhase &phase,
                               HybridMode mode);

    /** Memoized pdn.bestMode(state(phase)). */
    HybridMode bestMode(const FlexWattsPdn &pdn,
                        const TracePhase &phase);

    const OperatingPointModel &opm() const { return _opm; }
    Power tdp() const { return _tdp; }

    /** Underlying computations performed on misses. */
    size_t stateBuilds() const { return _stateBuilds; }
    size_t pdnEvaluations() const { return _pdnEvaluations; }

    /**
     * Lookup counters: every state()/evaluate()/bestMode() call is
     * one probe (including the nested state lookup an evaluation
     * miss performs), answered either from the memo (a hit) or by
     * computing (a miss). probes() == hits() + misses() always; the
     * campaign engine aggregates these per run so memo effectiveness
     * is a tracked metric (CampaignRunStats, bench trajectory).
     */
    size_t probes() const { return _probes; }
    size_t hits() const { return _hits; }
    size_t misses() const { return _probes - _hits; }

  private:
    /**
     * The phase fields PlatformState construction depends on. The AR
     * is stored as the bit pattern of its canonical form
     * (canonicalActivityRatio): -0.0 and +0.0 share one entry built
     * from +0.0 regardless of arrival order, and NaN keys still get
     * a total order (raw double comparison would break strict weak
     * ordering and with it the map).
     */
    struct StateKey
    {
        int cstate;
        int type;
        uint64_t arBits;

        auto operator<=>(const StateKey &) const = default;
    };

    /** Mode slot per PdnKind: the two pinned hybrid modes + default. */
    static constexpr size_t defaultModeSlot = 2;
    static constexpr size_t modeSlots = 3;

    struct EvalKey
    {
        int pdn;
        int mode;
        StateKey state;

        auto operator<=>(const EvalKey &) const = default;
    };

    static StateKey keyFor(const TracePhase &phase);
    void checkInstance(const PdnModel &pdn);
    const EteeResult &evaluateSlot(const PdnModel &pdn,
                                   const TracePhase &phase,
                                   size_t mode_slot);

    const OperatingPointModel &_opm;
    Power _tdp;

    /** First PdnModel seen per kind; aliasing guard. */
    std::array<const PdnModel *, allPdnKinds.size()> _models{};

    std::map<StateKey, PlatformState> _states;
    std::map<EvalKey, EteeResult> _evals;
    std::map<StateKey, HybridMode> _bestModes;

    size_t _stateBuilds = 0;
    size_t _pdnEvaluations = 0;
    size_t _probes = 0;
    size_t _hits = 0;
};

} // namespace pdnspot

#endif // PDNSPOT_SIM_ETEE_MEMO_HH
