#include "sim/interval_simulator.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/probe.hh"

namespace pdnspot
{

namespace
{

/** Feed one static/oracle phase evaluation to the probe. */
void
probePhase(SignalProbe *probe, uint64_t phase, Time start,
           Time duration, const EteeResult &e, int mode)
{
    ProbeFrame f;
    f.phase = phase;
    f.start = start;
    f.duration = duration;
    f.supplyPowerW = inWatts(e.inputPower);
    f.nominalPowerW = inWatts(e.nominalPower);
    f.loss = &e.loss;
    f.mode = mode;
    probe->samplePhase(f);
}

} // namespace

IntervalSimulator::IntervalSimulator(const OperatingPointModel &opm,
                                     Power tdp, Time tick)
    : _opm(opm), _tdp(tdp), _tick(tick)
{
    if (tick <= seconds(0.0))
        fatal("IntervalSimulator: non-positive tick");
}

PlatformState
IntervalSimulator::stateFor(const TracePhase &phase) const
{
    OperatingPointModel::Query q;
    q.tdp = _tdp;
    q.cstate = phase.cstate;
    q.type = phase.type;
    // Canonical AR keeps unmemoized runs bit-identical to memoized
    // ones (EteeMemo builds from the canonical form) for -0.0/NaN
    // inputs.
    q.ar = canonicalActivityRatio(phase.ar);
    return _opm.build(q);
}

void
IntervalSimulator::checkMemo(const EteeMemo *memo) const
{
    if (memo && (&memo->opm() != &_opm || memo->tdp() != _tdp))
        panic("IntervalSimulator: EteeMemo built for a different "
              "(operating-point model, TDP) pair");
}

SimResult
IntervalSimulator::run(const PhaseTrace &trace, const PdnModel &pdn,
                       EteeMemo *memo, SignalProbe *probe) const
{
    checkMemo(memo);
    metricAdd(Metric::SimRunsStatic);
    SimResult result;
    for (size_t p = 0; p < trace.phases().size(); ++p) {
        const TracePhase &phase = trace.phases()[p];
        EteeResult e = memo ? memo->evaluate(pdn, phase)
                            : pdn.evaluate(stateFor(phase));
        if (probe)
            probePhase(probe, p, result.duration, phase.duration, e,
                       -1);
        result.duration += phase.duration;
        result.supplyEnergy += e.inputPower * phase.duration;
        result.nominalEnergy += e.nominalPower * phase.duration;
    }
    return result;
}

SimResult
IntervalSimulator::run(const PhaseSoA &soa, const PdnModel &pdn,
                       EteeMemo *memo, SignalProbe *probe) const
{
    checkMemo(memo);
    metricAdd(Metric::SimRunsStatic);

    // One pass of operating-point + ETEE math over the unique
    // states (first-appearance order — exactly the order the
    // phase-by-phase loop would first evaluate them in, so a shared
    // memo ends up with identical contents).
    const std::vector<TracePhase> &unique = soa.uniquePhases();
    std::vector<EteeResult> etee(unique.size());
    for (size_t u = 0; u < unique.size(); ++u)
        etee[u] = memo ? memo->evaluate(pdn, unique[u])
                       : pdn.evaluate(stateFor(unique[u]));

    // Dense accumulation over the per-phase arrays: the same
    // additions in the same order as the phase-by-phase loop.
    SimResult result;
    const std::vector<Time> &durations = soa.durations();
    const std::vector<uint32_t> &index = soa.uniqueIndex();
    for (size_t p = 0; p < durations.size(); ++p) {
        const EteeResult &e = etee[index[p]];
        if (probe)
            probePhase(probe, p, result.duration, durations[p], e,
                       -1);
        result.duration += durations[p];
        result.supplyEnergy += e.inputPower * durations[p];
        result.nominalEnergy += e.nominalPower * durations[p];
    }
    return result;
}

SimResult
IntervalSimulator::runOracle(const PhaseTrace &trace,
                             const FlexWattsPdn &pdn,
                             EteeMemo *memo, SignalProbe *probe) const
{
    checkMemo(memo);
    metricAdd(Metric::SimRunsOracle);
    SimResult result;
    for (size_t p = 0; p < trace.phases().size(); ++p) {
        const TracePhase &phase = trace.phases()[p];
        HybridMode mode;
        EteeResult e;
        if (memo) {
            mode = memo->bestMode(pdn, phase);
            e = memo->evaluate(pdn, phase, mode);
        } else {
            PlatformState s = stateFor(phase);
            mode = pdn.bestMode(s);
            e = pdn.evaluate(s, mode);
        }
        if (probe)
            probePhase(probe, p, result.duration, phase.duration, e,
                       static_cast<int>(mode));
        result.duration += phase.duration;
        result.supplyEnergy += e.inputPower * phase.duration;
        result.nominalEnergy += e.nominalPower * phase.duration;
        result.modeResidency[static_cast<size_t>(mode)] +=
            phase.duration;
    }
    return result;
}

SimResult
IntervalSimulator::runOracle(const PhaseSoA &soa,
                             const FlexWattsPdn &pdn,
                             EteeMemo *memo, SignalProbe *probe) const
{
    checkMemo(memo);
    metricAdd(Metric::SimRunsOracle);

    const std::vector<TracePhase> &unique = soa.uniquePhases();
    std::vector<HybridMode> modes(unique.size());
    std::vector<EteeResult> etee(unique.size());
    for (size_t u = 0; u < unique.size(); ++u) {
        if (memo) {
            modes[u] = memo->bestMode(pdn, unique[u]);
            etee[u] = memo->evaluate(pdn, unique[u], modes[u]);
        } else {
            PlatformState s = stateFor(unique[u]);
            modes[u] = pdn.bestMode(s);
            etee[u] = pdn.evaluate(s, modes[u]);
        }
    }

    SimResult result;
    const std::vector<Time> &durations = soa.durations();
    const std::vector<uint32_t> &index = soa.uniqueIndex();
    for (size_t p = 0; p < durations.size(); ++p) {
        const EteeResult &e = etee[index[p]];
        if (probe)
            probePhase(probe, p, result.duration, durations[p], e,
                       static_cast<int>(modes[index[p]]));
        result.duration += durations[p];
        result.supplyEnergy += e.inputPower * durations[p];
        result.nominalEnergy += e.nominalPower * durations[p];
        result.modeResidency[static_cast<size_t>(modes[index[p]])] +=
            durations[p];
    }
    return result;
}

SimResult
IntervalSimulator::run(const PhaseTrace &trace, const FlexWattsPdn &pdn,
                       Pmu &pmu, EteeMemo *memo,
                       SignalProbe *probe) const
{
    checkMemo(memo);
    metricAdd(Metric::SimRunsPmu);
    SimResult result;

    // The probe's per-phase frame averages over the phase's ticks
    // (supply/nominal energy deltas divided by the duration), keeps
    // the loss breakdown of the phase's last PDN evaluation (absent
    // if the whole phase sat inside a C6 switch flow), and reports
    // the mode configured at phase end. Mode-switch events arrive
    // through the switch-flow observer as they happen.
    size_t pi = 0;
    Energy phaseSupplyStart;
    Energy phaseNominalStart;
    EteeResult lastEval;
    bool hasEval = false;
    if (probe) {
        pmu.setSwitchObserver(
            [probe, &pi](Time t, HybridMode target) {
                probe->modeSwitch(pi, t, target);
            });
    }

    // Per-(phase, mode) evaluation cache: the platform state is
    // constant within a phase, so only 2 evaluations per phase are
    // ever needed regardless of tick resolution. A supplied EteeMemo
    // subsumes it (and additionally shares evaluations across
    // repeated phases and traces).
    struct PhaseEval
    {
        PlatformState state;
        std::array<bool, 2> valid{};
        std::array<EteeResult, 2> etee;
    };
    std::vector<PhaseEval> cache(
        memo ? 0 : trace.phases().size());

    auto evaluate = [&](size_t phase_idx, HybridMode mode)
        -> const EteeResult & {
        if (memo)
            return memo->evaluate(pdn, trace.phases()[phase_idx],
                                  mode);
        PhaseEval &pe = cache[phase_idx];
        size_t m = static_cast<size_t>(mode);
        if (!pe.valid[m]) {
            if (!pe.valid[0] && !pe.valid[1])
                pe.state = stateFor(trace.phases()[phase_idx]);
            pe.etee[m] = pdn.evaluate(pe.state, mode);
            pe.valid[m] = true;
        }
        return pe.etee[m];
    };

    Time now;
    uint64_t switches_before = 0;
    for (pi = 0; pi < trace.phases().size(); ++pi) {
        const TracePhase &phase = trace.phases()[pi];
        Time phase_start = now;
        Time phase_end = now + phase.duration;
        if (probe) {
            phaseSupplyStart = result.supplyEnergy;
            phaseNominalStart = result.nominalEnergy;
            hasEval = false;
        }

        // Step times are derived from the phase start and an integer
        // tick count (one rounding each) rather than accumulated, so
        // `now` does not drift from the nominal boundaries and the
        // PMU sees cadence ticks at the same times for any tick size.
        uint64_t tick_idx = 0;
        while (now < phase_end) {
            Time next = std::min(
                phase_start +
                    _tick * static_cast<double>(tick_idx + 1),
                phase_end);
            Time step = next - now;
            pmu.advanceTo(now, phase);

            HybridMode mode = pmu.configuredMode();
            if (pmu.switching(now)) {
                // Compute domains idle through the C6 flow; the
                // platform draws the flow power instead of the
                // workload power. Nominal (useful) energy is zero.
                Time overlap = std::min(
                    step, pmu.switchFlow().busyUntil() - now);
                Power flow_power =
                    pmu.switchFlow().params().flowPower;
                result.supplyEnergy += flow_power * overlap;
                Time rest = step - overlap;
                if (rest > seconds(0.0)) {
                    const EteeResult &e = evaluate(pi, mode);
                    result.supplyEnergy += e.inputPower * rest;
                    result.nominalEnergy += e.nominalPower * rest;
                    if (probe) {
                        lastEval = e;
                        hasEval = true;
                    }
                }
            } else {
                const EteeResult &e = evaluate(pi, mode);
                result.supplyEnergy += e.inputPower * step;
                result.nominalEnergy += e.nominalPower * step;
                if (probe) {
                    lastEval = e;
                    hasEval = true;
                }
            }
            result.modeResidency[static_cast<size_t>(mode)] += step;
            now = next;
            ++tick_idx;
        }
        if (probe) {
            ProbeFrame f;
            f.phase = pi;
            f.start = phase_start;
            f.duration = phase.duration;
            f.supplyPowerW = inWatts(
                (result.supplyEnergy - phaseSupplyStart) /
                phase.duration);
            f.nominalPowerW = inWatts(
                (result.nominalEnergy - phaseNominalStart) /
                phase.duration);
            f.loss = hasEval ? &lastEval.loss : nullptr;
            f.mode = static_cast<int>(pmu.configuredMode());
            probe->samplePhase(f);
        }
    }
    if (probe)
        pmu.setSwitchObserver({});

    result.duration = now;
    result.modeSwitches = pmu.switchFlow().switchCount() -
                          switches_before;
    result.switchOverheadTime = pmu.switchFlow().totalOverheadTime();
    result.switchOverheadEnergy =
        pmu.switchFlow().totalOverheadEnergy();
    return result;
}

} // namespace pdnspot
