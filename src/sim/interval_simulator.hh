/**
 * @file
 * Interval simulator: drives PDNs (and the FlexWatts PMU) through
 * phase traces.
 *
 * PDNspot's models predict average behaviour over an interval (paper
 * Sec. 3.4); the simulator automates the "run the model per interval"
 * loop the paper describes, stepping a trace phase by phase, letting
 * the PMU observe the workload through its sensors, and accounting
 * supply energy -- including the idle windows and energy of FlexWatts
 * mode-switch flows.
 */

#ifndef PDNSPOT_SIM_INTERVAL_SIMULATOR_HH
#define PDNSPOT_SIM_INTERVAL_SIMULATOR_HH

#include "common/units.hh"
#include "flexwatts/flexwatts_pdn.hh"
#include "pdn/pdn_model.hh"
#include "pmu/pmu.hh"
#include "power/operating_point.hh"
#include "sim/etee_memo.hh"
#include "sim/sim_stats.hh"
#include "workload/phase_soa.hh"
#include "workload/trace.hh"

namespace pdnspot
{

class SignalProbe;

/**
 * Steps traces through PDN models with configurable resolution.
 *
 * Every run method takes an optional EteeMemo: when supplied, state
 * construction and PDN evaluations are looked up there, sharing work
 * across traces and PDN kinds of the same platform (the campaign
 * engine passes one memo per worker). The memo must have been built
 * for this simulator's (operating-point model, TDP) pair; results
 * are bit-identical with and without it.
 *
 * Every run method also takes an optional SignalProbe (obs/probe.hh)
 * fed one frame per trace phase — average supply/nominal power, the
 * loss breakdown, the active hybrid mode — plus mode-switch events
 * on the PMU path. The probe is strictly observational: results are
 * bit-identical probed and unprobed, the per-phase and SoA paths
 * deliver identical frames, and an unbound probe costs one null
 * check per phase.
 */
class IntervalSimulator
{
  public:
    /**
     * @param opm operating-point builder
     * @param tdp platform TDP
     * @param tick simulation step (bounds switch-flow resolution)
     */
    IntervalSimulator(const OperatingPointModel &opm, Power tdp,
                      Time tick = microseconds(50.0));

    /** Simulate a static PDN (no mode logic). */
    SimResult run(const PhaseTrace &trace, const PdnModel &pdn,
                  EteeMemo *memo = nullptr,
                  SignalProbe *probe = nullptr) const;

    /**
     * Batched counterpart of the static run: each of the SoA's
     * unique states is resolved exactly once (one tight pass of
     * operating-point + ETEE math), then supply/nominal energy is
     * accumulated over the dense per-phase arrays. Bit-identical to
     * run() over the trace the SoA was built from — the same
     * floating-point operations execute in the same order — while
     * replacing the per-phase map lookups of the memoized path (and
     * the per-duplicate state rebuilds of the unmemoized path) with
     * array indexing. The campaign engine uses this for every
     * non-PMU cell.
     */
    SimResult run(const PhaseSoA &soa, const PdnModel &pdn,
                  EteeMemo *memo = nullptr,
                  SignalProbe *probe = nullptr) const;

    /**
     * Simulate FlexWatts under PMU control: the predictor sees the
     * workload only through the sensors, pays the 94 us C6 flow per
     * switch, and may lag or mispredict -- this is the realistic
     * counterpart of the oracle evaluation.
     */
    SimResult run(const PhaseTrace &trace, const FlexWattsPdn &pdn,
                  Pmu &pmu, EteeMemo *memo = nullptr,
                  SignalProbe *probe = nullptr) const;

    /**
     * Simulate FlexWatts with an oracle that knows each phase's best
     * mode instantly and switches for free. Upper bound used by the
     * predictor-ablation bench.
     */
    SimResult runOracle(const PhaseTrace &trace,
                        const FlexWattsPdn &pdn,
                        EteeMemo *memo = nullptr,
                        SignalProbe *probe = nullptr) const;

    /**
     * Batched oracle run: best mode and pinned-mode evaluation are
     * resolved once per unique state, then accumulated over the
     * per-phase arrays. Bit-identical to runOracle() over the source
     * trace (see the static batched overload).
     */
    SimResult runOracle(const PhaseSoA &soa, const FlexWattsPdn &pdn,
                        EteeMemo *memo = nullptr,
                        SignalProbe *probe = nullptr) const;

  private:
    PlatformState stateFor(const TracePhase &phase) const;
    void checkMemo(const EteeMemo *memo) const;

    const OperatingPointModel &_opm;
    Power _tdp;
    Time _tick;
};

} // namespace pdnspot

#endif // PDNSPOT_SIM_INTERVAL_SIMULATOR_HH
