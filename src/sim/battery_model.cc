#include "sim/battery_model.hh"

#include "common/logging.hh"

namespace pdnspot
{

BatteryModel::BatteryModel(Energy capacity)
    : _capacity(capacity)
{
    if (capacity <= joules(0.0))
        fatal("BatteryModel: non-positive capacity");
}

Time
BatteryModel::life(Power average_power) const
{
    if (average_power <= watts(0.0))
        fatal("BatteryModel: non-positive average power");
    return _capacity / average_power;
}

double
BatteryModel::lifeHours(Power average_power) const
{
    return inSeconds(life(average_power)) / 3600.0;
}

} // namespace pdnspot
