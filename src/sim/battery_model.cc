#include "sim/battery_model.hh"

#include "common/logging.hh"

namespace pdnspot
{

Time
drainTime(Energy remaining, Power draw)
{
    if (draw <= watts(0.0))
        fatal("drainTime: non-positive draw");
    return remaining / draw;
}

double
drainHours(Energy remaining, Power draw)
{
    return inSeconds(drainTime(remaining, draw)) / 3600.0;
}

BatteryModel::BatteryModel(Energy capacity)
    : _capacity(capacity)
{
    if (capacity <= joules(0.0))
        fatal("BatteryModel: non-positive capacity");
}

Time
BatteryModel::life(Power average_power) const
{
    return drainTime(_capacity, average_power);
}

double
BatteryModel::lifeHours(Power average_power) const
{
    return inSeconds(life(average_power)) / 3600.0;
}

} // namespace pdnspot
