#include "sim/etee_memo.hh"

#include <bit>

#include "common/logging.hh"
#include "obs/span_trace.hh"

namespace pdnspot
{

EteeMemo::EteeMemo(const OperatingPointModel &opm, Power tdp)
    : _opm(opm), _tdp(tdp)
{}

EteeMemo::StateKey
EteeMemo::keyFor(const TracePhase &phase)
{
    return {static_cast<int>(phase.cstate),
            static_cast<int>(phase.type),
            std::bit_cast<uint64_t>(
                canonicalActivityRatio(phase.ar))};
}

void
EteeMemo::checkInstance(const PdnModel &pdn)
{
    const PdnModel *&slot =
        _models[static_cast<size_t>(pdn.kind())];
    if (!slot) {
        slot = &pdn;
    } else if (slot != &pdn) {
        panic(strprintf("EteeMemo: two distinct %s instances in one "
                        "memo",
                        pdnKindToString(pdn.kind()).c_str()));
    }
}

const PlatformState &
EteeMemo::state(const TracePhase &phase)
{
    ++_probes;
    StateKey key = keyFor(phase);
    auto it = _states.find(key);
    if (it != _states.end()) {
        ++_hits;
        return it->second;
    }
    OperatingPointModel::Query q;
    q.tdp = _tdp;
    q.cstate = phase.cstate;
    q.type = phase.type;
    // Build from the canonical AR so the cached state never depends
    // on which -0.0/+0.0 variant arrived first (the key has already
    // collapsed them into one entry).
    q.ar = canonicalActivityRatio(phase.ar);
    ++_stateBuilds;
    SpanScope span("memo.state_build", "memo");
    return _states.emplace(key, _opm.build(q)).first->second;
}

const EteeResult &
EteeMemo::evaluateSlot(const PdnModel &pdn, const TracePhase &phase,
                       size_t mode_slot)
{
    checkInstance(pdn);
    ++_probes;
    EvalKey key{static_cast<int>(pdn.kind()),
                static_cast<int>(mode_slot), keyFor(phase)};
    auto it = _evals.find(key);
    if (it != _evals.end()) {
        ++_hits;
        return it->second;
    }
    const PlatformState &s = state(phase);
    ++_pdnEvaluations;
    EteeResult e;
    if (mode_slot == defaultModeSlot) {
        e = pdn.evaluate(s);
    } else {
        e = static_cast<const FlexWattsPdn &>(pdn).evaluate(
            s, static_cast<HybridMode>(mode_slot));
    }
    return _evals.emplace(key, e).first->second;
}

const EteeResult &
EteeMemo::evaluate(const PdnModel &pdn, const TracePhase &phase)
{
    return evaluateSlot(pdn, phase, defaultModeSlot);
}

const EteeResult &
EteeMemo::evaluate(const FlexWattsPdn &pdn, const TracePhase &phase,
                   HybridMode mode)
{
    return evaluateSlot(pdn, phase, static_cast<size_t>(mode));
}

HybridMode
EteeMemo::bestMode(const FlexWattsPdn &pdn, const TracePhase &phase)
{
    checkInstance(pdn);
    ++_probes;
    StateKey key = keyFor(phase);
    auto it = _bestModes.find(key);
    if (it != _bestModes.end()) {
        ++_hits;
        return it->second;
    }
    HybridMode mode = pdn.bestMode(state(phase));
    _bestModes.emplace(key, mode);
    return mode;
}

} // namespace pdnspot
