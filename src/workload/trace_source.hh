/**
 * @file
 * Declarative trace provenance: where a campaign trace comes from.
 *
 * The campaign API (src/campaign/) used to consume eagerly-built
 * PhaseTrace lists, which made trace provenance invisible to spec
 * files, shards and caches. A TraceSpec is a small value object that
 * *describes* a trace instead — a library reference, generator
 * parameters, a battery-profile expansion, a trace file on disk, or
 * an inline PhaseTrace for compatibility — and resolve() materializes
 * the PhaseTrace on demand. Resolution is a pure function of the
 * spec (plus, for file-backed traces, the file contents), so the
 * campaign engine can resolve lazily per worker thread and stay
 * bit-identical at any thread count.
 */

#ifndef PDNSPOT_WORKLOAD_TRACE_SOURCE_HH
#define PDNSPOT_WORKLOAD_TRACE_SOURCE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hh"
#include "workload/trace.hh"
#include "workload/trace_transform.hh"

namespace pdnspot
{

/**
 * Parameters for one synthetic-generator trace
 * (workload/trace_generator.hh). `kind` selects the generator
 * ("bursty-compute", "day-in-the-life" or "random-mix"); the other
 * fields parameterize the kinds that take them and default to the
 * standard-corpus values.
 */
/**
 * The generator kinds TraceGeneratorSpec::kind accepts
 * ("bursty-compute", "day-in-the-life", "random-mix") — the single
 * source of truth shared by validation and the config bindings.
 */
const std::vector<std::string> &traceGeneratorKinds();

struct TraceGeneratorSpec
{
    std::string kind = "bursty-compute";
    uint64_t seed = 42;

    size_t bursts = 6;                      ///< bursty-compute
    Time burstLen = milliseconds(20.0);     ///< bursty-compute
    Time idleLen = milliseconds(60.0);      ///< bursty-compute

    size_t phases = 24;                     ///< random-mix
    Time meanPhaseLen = milliseconds(15.0); ///< random-mix

    /** AR range for bursty-compute and random-mix active phases. */
    double arMin = 0.4;
    double arMax = 0.8;

    bool operator==(const TraceGeneratorSpec &) const = default;
};

/**
 * One trace of a campaign, by provenance. Construct through the
 * factories; resolve() materializes the PhaseTrace. The spec's
 * name() is known without resolving (campaign validation and cell
 * addressing need it), and resolve() always returns a trace carrying
 * exactly that name.
 */
class TraceSpec
{
  public:
    enum class Kind
    {
        Inline,    ///< wraps a materialized PhaseTrace
        Library,   ///< standardCampaignTraces(seed) entry by name
        Generator, ///< synthesized from TraceGeneratorSpec
        Profile,   ///< battery-profile frame expansion
        File,      ///< CSV/JSON trace file (workload/trace_io.hh)
    };

    TraceSpec() = default;

    /**
     * Compatibility: a PhaseTrace converts implicitly, so code that
     * pushed eager traces into CampaignSpec::traces keeps working.
     */
    TraceSpec(PhaseTrace trace);

    /** A standardCampaignTraces(seed) trace, referenced by name. */
    static TraceSpec library(std::string traceName,
                             uint64_t seed = 42);

    /** A synthetic trace described by generator parameters. */
    static TraceSpec generator(TraceGeneratorSpec params);

    /**
     * A battery-life residency profile (by name, see
     * workload/battery_profiles.hh) expanded to `frames` frames of
     * `framePeriod` each.
     */
    static TraceSpec profile(std::string profileName,
                             Time framePeriod = milliseconds(33.3),
                             size_t frames = 4);

    /**
     * A trace file (.csv or .json, workload/trace_io.hh). The trace
     * is named after the file stem unless rename() overrides it;
     * resolution reads the file, so resolve() errors name the path.
     */
    static TraceSpec file(std::string path);

    /** Override the resolved trace's name (campaign cell address). */
    TraceSpec &rename(std::string name);

    /**
     * Per-cell tick override: cells of this trace simulate at this
     * tick instead of the campaign-wide CampaignSpec::tick.
     */
    TraceSpec &tick(Time tick);

    /**
     * Append a derivation step (workload/trace_transform.hh) to the
     * spec's transform chain. resolve() applies the chain in append
     * order after the base trace materializes, so any provenance
     * kind can carry repeat/time-scale/truncate/ar-perturb/concat
     * steps — the declarative form of a sensitivity-study variant.
     */
    TraceSpec &transform(TraceTransform step);

    Kind kind() const { return _kind; }

    /** The trace name cells of this spec are addressed by. */
    const std::string &name() const { return _name; }

    const std::optional<Time> &tickOverride() const { return _tick; }

    /** The transform chain, in application order. */
    const std::vector<TraceTransform> &
    transforms() const
    {
        return _transforms;
    }

    /**
     * Materialize the trace: resolve the base provenance, then apply
     * the transform chain in order. Deterministic: equal specs
     * resolve to equal traces (file-backed specs additionally depend
     * on the file contents). fatal() on unresolvable specs — an
     * unknown library trace or profile name, bad generator or
     * transform parameters, or an unreadable/invalid trace file.
     */
    PhaseTrace resolve() const;

    /**
     * One-line provenance description ("library \"bursty-compute\"
     * (seed 42)", "file \"traces/office.csv\" | ar-perturb(0.1,
     * seed 7)", ...) for listings and error messages; transform
     * chains appear as "| step" suffixes in application order.
     */
    std::string describe() const;

    /**
     * fatal() unless the spec is well-formed without resolving it:
     * a non-empty CSV-safe name, known generator kind, valid AR
     * range and counts, valid transform parameters, and a positive
     * tick override if any. File existence/content errors surface
     * at resolve() time.
     */
    void validate() const;

    bool operator==(const TraceSpec &) const = default;

  private:
    Kind _kind = Kind::Inline;
    std::string _name;

    PhaseTrace _inline;           ///< Inline
    std::string _ref;             ///< Library trace / Profile name
    uint64_t _seed = 42;          ///< Library
    TraceGeneratorSpec _params;   ///< Generator
    Time _framePeriod;            ///< Profile
    size_t _frames = 0;           ///< Profile
    std::string _path;            ///< File

    std::vector<TraceTransform> _transforms;
    std::optional<Time> _tick;
};

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_TRACE_SOURCE_HH
