#include "workload/trace_transform.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/noise.hh"
#include "workload/trace_source.hh"

namespace pdnspot
{

TraceTransform
TraceTransform::repeat(size_t count)
{
    TraceTransform t;
    t._kind = Kind::Repeat;
    t._count = count;
    return t;
}

TraceTransform
TraceTransform::timeScale(double factor)
{
    TraceTransform t;
    t._kind = Kind::TimeScale;
    t._factor = factor;
    return t;
}

TraceTransform
TraceTransform::truncate(Time duration)
{
    TraceTransform t;
    t._kind = Kind::Truncate;
    t._duration = duration;
    return t;
}

TraceTransform
TraceTransform::arPerturb(double delta, uint64_t seed)
{
    TraceTransform t;
    t._kind = Kind::ArPerturb;
    t._factor = delta;
    t._seed = seed;
    return t;
}

TraceTransform
TraceTransform::concat(TraceSpec tail)
{
    TraceTransform t;
    t._kind = Kind::Concat;
    t._tail = std::make_shared<const TraceSpec>(std::move(tail));
    return t;
}

PhaseTrace
TraceTransform::apply(const PhaseTrace &trace) const
{
    std::vector<TracePhase> phases;
    switch (_kind) {
      case Kind::Repeat:
        phases.reserve(trace.phases().size() * _count);
        for (size_t i = 0; i < _count; ++i)
            phases.insert(phases.end(), trace.phases().begin(),
                          trace.phases().end());
        break;
      case Kind::TimeScale:
        phases = trace.phases();
        for (TracePhase &p : phases)
            p.duration = p.duration * _factor;
        break;
      case Kind::Truncate: {
        Time elapsed;
        for (const TracePhase &p : trace.phases()) {
            if (elapsed + p.duration <= _duration) {
                phases.push_back(p);
                elapsed += p.duration;
                if (elapsed == _duration)
                    break;
                continue;
            }
            // The phase spanning the cut survives as its prefix;
            // _duration > elapsed here, so the prefix is non-empty.
            TracePhase partial = p;
            partial.duration = _duration - elapsed;
            phases.push_back(partial);
            break;
        }
        break;
      }
      case Kind::ArPerturb: {
        HashNoise noise(_seed);
        phases = trace.phases();
        for (size_t i = 0; i < phases.size(); ++i) {
            if (phases[i].cstate != PackageCState::C0)
                continue;
            double ar = phases[i].ar +
                        _factor * noise.signedUnit(i);
            phases[i].ar = std::min(1.0, std::max(0.0, ar));
        }
        break;
      }
      case Kind::Concat: {
        PhaseTrace tail = _tail->resolve();
        phases.reserve(trace.phases().size() +
                       tail.phases().size());
        phases = trace.phases();
        phases.insert(phases.end(), tail.phases().begin(),
                      tail.phases().end());
        break;
      }
    }
    // The PhaseTrace constructor re-validates every phase, so a
    // transform can never hand the simulator an unsimulatable trace.
    return PhaseTrace(trace.name(), std::move(phases));
}

std::string
TraceTransform::describe() const
{
    switch (_kind) {
      case Kind::Repeat:
        return strprintf("repeat(%zu)", _count);
      case Kind::TimeScale:
        return strprintf("time-scale(x%g)", _factor);
      case Kind::Truncate:
        return strprintf("truncate(%g ms)",
                         inMilliseconds(_duration));
      case Kind::ArPerturb:
        return strprintf("ar-perturb(%g, seed %llu)", _factor,
                         static_cast<unsigned long long>(_seed));
      case Kind::Concat:
        return "concat(" + _tail->describe() + ")";
    }
    panic("TraceTransform::describe: unreachable kind");
}

void
TraceTransform::validate(const std::string &traceName) const
{
    switch (_kind) {
      case Kind::Repeat:
        if (_count == 0)
            fatal(strprintf("TraceSpec \"%s\": repeat count must be "
                            "at least 1",
                            traceName.c_str()));
        break;
      case Kind::TimeScale:
        if (!std::isfinite(_factor) || !(_factor > 0.0))
            fatal(strprintf("TraceSpec \"%s\": time-scale factor "
                            "must be positive and finite, got %g",
                            traceName.c_str(), _factor));
        break;
      case Kind::Truncate:
        if (!std::isfinite(inSeconds(_duration)) ||
            _duration <= seconds(0.0))
            fatal(strprintf("TraceSpec \"%s\": truncate duration "
                            "must be positive and finite, got %g s",
                            traceName.c_str(),
                            inSeconds(_duration)));
        break;
      case Kind::ArPerturb:
        if (!(_factor >= 0.0 && _factor <= 1.0))
            fatal(strprintf("TraceSpec \"%s\": ar-perturb delta "
                            "must be in [0, 1], got %g",
                            traceName.c_str(), _factor));
        break;
      case Kind::Concat:
        _tail->validate();
        break;
    }
}

bool
TraceTransform::operator==(const TraceTransform &other) const
{
    if (_kind != other._kind)
        return false;
    switch (_kind) {
      case Kind::Repeat:
        return _count == other._count;
      case Kind::TimeScale:
        return _factor == other._factor;
      case Kind::Truncate:
        return _duration == other._duration;
      case Kind::ArPerturb:
        return _factor == other._factor && _seed == other._seed;
      case Kind::Concat:
        return *_tail == *other._tail;
    }
    return false;
}

} // namespace pdnspot
