/**
 * @file
 * SPEC CPU2006 benchmark characterizations.
 *
 * The paper evaluates all 29 SPEC CPU2006 benchmarks of its Fig. 7,
 * sorted by measured performance-scalability. The real per-trace
 * characterizations are proprietary; this catalog reconstructs them
 * from the published structure: the Fig. 7 ascending-scalability
 * ordering, scalability spanning roughly 0.3 (memory-bound 433.milc)
 * to 1.0 (compute-bound 416.gamess), and ARs in the 40-80% band used
 * throughout the paper's ETEE sweeps (memory-bound benchmarks stall
 * more and hence switch less).
 */

#ifndef PDNSPOT_WORKLOAD_SPEC_CPU2006_HH
#define PDNSPOT_WORKLOAD_SPEC_CPU2006_HH

#include <vector>

#include "workload/workload.hh"

namespace pdnspot
{

/**
 * All 29 SPEC CPU2006 benchmarks of the paper's Fig. 7, in the
 * figure's ascending performance-scalability order.
 */
const std::vector<Workload> &specCpu2006();

/** Mean performance-scalability across the suite. */
double specCpu2006MeanScalability();

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_SPEC_CPU2006_HH
