/**
 * @file
 * PhaseSoA: a phase trace resolved into structure-of-arrays form for
 * batch evaluation.
 *
 * The campaign inner loop evaluates operating-point and PDN (ETEE)
 * math per phase per cell, yet traces revisit the same few platform
 * states over and over — a battery-profile frame trace repeats its
 * residency states every frame. A PhaseSoA splits a PhaseTrace into
 * (a) the deduplicated list of distinct state inputs ("unique
 * phases", keyed on (cstate, type, canonical AR) and kept in
 * first-appearance order) and (b) dense per-phase arrays of
 * durations and unique-state indices. Batch consumers (the
 * IntervalSimulator SoA overloads) resolve each unique state once
 * and then accumulate over the per-phase arrays — the same
 * floating-point operations in the same order as the phase-by-phase
 * path, so results stay bit-identical.
 *
 * AR values are canonicalized (canonicalActivityRatio) both in the
 * key and in the stored representative phase, so -0.0/NaN inputs
 * cannot split one logical state into several entries or make the
 * dedup order-dependent.
 */

#ifndef PDNSPOT_WORKLOAD_PHASE_SOA_HH
#define PDNSPOT_WORKLOAD_PHASE_SOA_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "workload/trace.hh"

namespace pdnspot
{

/** A trace's phases, split for one-pass batch evaluation. */
class PhaseSoA
{
  public:
    PhaseSoA() = default;

    /** Resolve a trace; phase order is preserved. */
    explicit PhaseSoA(const PhaseTrace &trace);

    /** Phases in the source trace (== durations().size()). */
    size_t phaseCount() const { return _durations.size(); }

    /** Distinct (cstate, type, canonical AR) states in the trace. */
    size_t uniqueCount() const { return _uniquePhases.size(); }

    /** Per-phase durations, in trace order. */
    const std::vector<Time> &durations() const { return _durations; }

    /** Per-phase index into uniquePhases(), in trace order. */
    const std::vector<uint32_t> &
    uniqueIndex() const
    {
        return _uniqueIndex;
    }

    /**
     * One representative phase per distinct state, in first-
     * appearance order, with the AR canonicalized. Durations of
     * these representatives are meaningless to batch consumers —
     * per-phase time lives in durations().
     */
    const std::vector<TracePhase> &
    uniquePhases() const
    {
        return _uniquePhases;
    }

  private:
    std::vector<Time> _durations;
    std::vector<uint32_t> _uniqueIndex;
    std::vector<TracePhase> _uniquePhases;
};

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_PHASE_SOA_HH
