/**
 * @file
 * Synthetic phase-trace generation.
 *
 * The paper's validation corpus (~5000 proprietary traces spanning
 * SPEC, graphics, productivity and idle behaviour, Sec. 4.1) is not
 * redistributable; TraceGenerator synthesizes deterministic stand-ins
 * with the same structure: bursts of CPU work at varying AR,
 * graphics scenes, and idle gaps, all reproducible from a seed.
 */

#ifndef PDNSPOT_WORKLOAD_TRACE_GENERATOR_HH
#define PDNSPOT_WORKLOAD_TRACE_GENERATOR_HH

#include <cstdint>

#include "common/noise.hh"
#include "workload/trace.hh"

namespace pdnspot
{

/** Deterministic synthetic trace builder. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(uint64_t seed) : _noise(seed), _seed(seed) {}

    /**
     * A bursty interactive trace alternating compute bursts (mixed
     * single/multi-thread, AR 0.4-0.8) with idle periods in deep
     * C-states. Exercises FlexWatts's mode predictor in both
     * directions.
     */
    PhaseTrace burstyCompute(size_t bursts, Time burst_len,
                             Time idle_len) const;

    /**
     * A "day-in-the-life" client trace: office-style light work,
     * a compile-like multi-thread stretch, a gaming (graphics)
     * session, video playback, and standby.
     */
    PhaseTrace dayInTheLife() const;

    /**
     * A uniform random phase mix for property-style fuzzing: each
     * phase independently draws a state, type and AR.
     */
    PhaseTrace randomMix(size_t phases, Time mean_phase_len) const;

  private:
    double unit(uint64_t k) const { return _noise.unit(k); }

    HashNoise _noise;
    uint64_t _seed;
};

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_TRACE_GENERATOR_HH
