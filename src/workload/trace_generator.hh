/**
 * @file
 * Synthetic phase-trace generation.
 *
 * The paper's validation corpus (~5000 proprietary traces spanning
 * SPEC, graphics, productivity and idle behaviour, Sec. 4.1) is not
 * redistributable; TraceGenerator synthesizes deterministic stand-ins
 * with the same structure: bursts of CPU work at varying AR,
 * graphics scenes, and idle gaps, all reproducible from a seed.
 */

#ifndef PDNSPOT_WORKLOAD_TRACE_GENERATOR_HH
#define PDNSPOT_WORKLOAD_TRACE_GENERATOR_HH

#include <cstdint>

#include "common/noise.hh"
#include "workload/trace.hh"

namespace pdnspot
{

/** Deterministic synthetic trace builder. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(uint64_t seed) : _noise(seed), _seed(seed) {}

    /**
     * A bursty interactive trace alternating compute bursts (mixed
     * single/multi-thread, AR drawn from [ar_min, ar_max]) with idle
     * periods in deep C-states. Exercises FlexWatts's mode predictor
     * in both directions.
     */
    PhaseTrace burstyCompute(size_t bursts, Time burst_len,
                             Time idle_len, double ar_min = 0.4,
                             double ar_max = 0.8) const;

    /**
     * A "day-in-the-life" client trace: office-style light work,
     * a compile-like multi-thread stretch, a gaming (graphics)
     * session, video playback, and standby.
     */
    PhaseTrace dayInTheLife() const;

    /**
     * A uniform random phase mix for property-style fuzzing: each
     * phase independently draws a state, type and an AR from
     * [ar_min, ar_max].
     */
    PhaseTrace randomMix(size_t phases, Time mean_phase_len,
                         double ar_min = 0.4,
                         double ar_max = 0.8) const;

  private:
    double unit(uint64_t k) const { return _noise.unit(k); }

    HashNoise _noise;
    uint64_t _seed;
};

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_TRACE_GENERATOR_HH
