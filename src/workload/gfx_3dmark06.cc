#include "workload/gfx_3dmark06.hh"

namespace pdnspot
{

namespace
{

Workload
gfx(const char *name, double scalability, double ar)
{
    Workload w;
    w.name = name;
    w.type = WorkloadType::Graphics;
    w.scalability = scalability;
    w.ar = ar;
    return w;
}

} // anonymous namespace

const std::vector<Workload> &
gfx3dmark06()
{
    static const std::vector<Workload> suite = {
        gfx("GT1-ReturnToProxycon", 0.90, 0.60),
        gfx("GT2-FireflyForest", 0.92, 0.63),
        gfx("HDR1-CanyonFlight", 0.88, 0.58),
        gfx("HDR2-DeepFreeze", 0.94, 0.66),
        gfx("CPU1-RedValley", 0.55, 0.52),
        gfx("CPU2-RedValley", 0.58, 0.54),
    };
    return suite;
}

double
gfx3dmark06MeanScalability()
{
    double sum = 0.0;
    for (const Workload &w : gfx3dmark06())
        sum += w.scalability;
    return sum / static_cast<double>(gfx3dmark06().size());
}

} // namespace pdnspot
