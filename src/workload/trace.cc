#include "workload/trace.hh"

#include <cmath>

#include "common/logging.hh"

namespace pdnspot
{

std::string
checkTracePhase(const TracePhase &phase)
{
    if (!std::isfinite(inSeconds(phase.duration)))
        return "phase duration must be finite";
    if (phase.duration <= seconds(0.0))
        return strprintf("phase duration must be positive, got %g s",
                         inSeconds(phase.duration));
    if (!std::isfinite(phase.ar) || phase.ar < 0.0 || phase.ar > 1.0)
        return strprintf("activity ratio must be in [0, 1], got %g",
                         phase.ar);
    return "";
}

PhaseTrace::PhaseTrace(std::string name, std::vector<TracePhase> phases)
    : _name(std::move(name)), _phases(std::move(phases))
{
    for (const TracePhase &p : _phases) {
        std::string problem = checkTracePhase(p);
        if (!problem.empty())
            fatal(strprintf("PhaseTrace \"%s\": %s", _name.c_str(),
                            problem.c_str()));
    }
}

Time
PhaseTrace::totalDuration() const
{
    Time total;
    for (const TracePhase &p : _phases)
        total += p.duration;
    return total;
}

PhaseTrace
traceFromBatteryProfile(const BatteryProfile &profile, Time frame_period,
                        size_t frames)
{
    if (!profile.valid())
        fatal("traceFromBatteryProfile: residencies must sum to 1");
    if (frame_period <= seconds(0.0) || frames == 0)
        fatal("traceFromBatteryProfile: empty trace requested");

    std::vector<TracePhase> phases;
    phases.reserve(frames * profile.residencies.size());
    for (size_t f = 0; f < frames; ++f) {
        for (const auto &[state, share] : profile.residencies) {
            if (share <= 0.0)
                continue;
            TracePhase p;
            p.duration = frame_period * share;
            p.cstate = state;
            p.type = WorkloadType::BatteryLife;
            p.ar = 0.30;
            phases.push_back(p);
        }
    }
    return PhaseTrace(profile.name + "-trace", std::move(phases));
}

} // namespace pdnspot
