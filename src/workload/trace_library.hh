/**
 * @file
 * Named trace registry for batch simulation.
 *
 * Campaign cells are addressed by trace name (src/campaign/), so the
 * traces fed into one campaign must carry unique, CSV-safe names.
 * TraceLibrary enforces that at insertion time; standardCampaignTraces
 * packages the synthetic corpus (generator traces + the four
 * battery-life profiles) used by the example studies and benches.
 */

#ifndef PDNSPOT_WORKLOAD_TRACE_LIBRARY_HH
#define PDNSPOT_WORKLOAD_TRACE_LIBRARY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace pdnspot
{

/** An ordered collection of uniquely-named traces. */
class TraceLibrary
{
  public:
    /**
     * Register a trace. fatal() if the name is empty, contains CSV
     * metacharacters (commas/newlines), or is already registered.
     */
    void add(PhaseTrace trace);

    const std::vector<PhaseTrace> &traces() const { return _traces; }

    /** The registered trace names, in insertion order. */
    std::vector<std::string> names() const;

    /** Lookup by name; nullptr when absent. */
    const PhaseTrace *find(const std::string &name) const;

    /**
     * Lookup by name; fatal() when absent, naming the missing trace
     * and listing what the library holds.
     */
    const PhaseTrace &get(const std::string &name) const;

    size_t size() const { return _traces.size(); }
    bool empty() const { return _traces.empty(); }

  private:
    std::vector<PhaseTrace> _traces;
};

/**
 * The standard nine-trace campaign corpus, reproducible from `seed`:
 * a bursty-compute trace, the day-in-the-life trace, three
 * random-mix traces (seeds seed, seed+1, seed+2), and the four
 * battery-life residency profiles expanded to frame traces.
 */
TraceLibrary standardCampaignTraces(uint64_t seed);

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_TRACE_LIBRARY_HH
