#include "workload/trace_io.hh"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <system_error>

#include "common/csv.hh"
#include "common/logging.hh"
#include "config/json.hh"

namespace pdnspot
{

const char *const traceCsvHeader = "duration_s,cstate,type,ar";

namespace
{

constexpr size_t traceCsvColumns = 4;

/** fatal() a "source:line: message" error. */
[[noreturn]] void
failAt(const std::string &source, size_t line,
       const std::string &message)
{
    fatal(strprintf("%s:%zu: %s", source.c_str(), line,
                    message.c_str()));
}

double
csvNumberAt(const std::string &field, const char *what,
            const std::string &source, size_t line)
{
    double v = 0.0;
    const char *begin = field.data();
    const char *end = begin + field.size();
    auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc() || ptr != end)
        failAt(source, line,
               strprintf("%s: malformed number \"%s\"", what,
                         field.c_str()));
    return v;
}

} // namespace

PhaseTrace
readTraceCsv(std::istream &is, const std::string &name,
             const std::string &sourceName)
{
    std::string line;
    if (!std::getline(is, line) || line != traceCsvHeader)
        failAt(sourceName, 1,
               strprintf("missing or unrecognized trace header "
                         "(expected \"%s\")",
                         traceCsvHeader));

    std::vector<TracePhase> phases;
    size_t lineNo = 1;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::vector<std::string> f = splitCsvLine(line);
        if (f.size() != traceCsvColumns)
            failAt(sourceName, lineNo,
                   strprintf("expected %zu columns "
                             "(duration_s,cstate,type,ar), got %zu",
                             traceCsvColumns, f.size()));

        TracePhase p;
        p.duration = seconds(
            csvNumberAt(f[0], "duration_s", sourceName, lineNo));
        try {
            p.cstate = packageCStateFromString(f[1]);
            p.type = workloadTypeFromString(f[2]);
        } catch (const ConfigError &e) {
            failAt(sourceName, lineNo, e.what());
        }
        p.ar = csvNumberAt(f[3], "ar", sourceName, lineNo);

        std::string problem = checkTracePhase(p);
        if (!problem.empty())
            failAt(sourceName, lineNo, problem);
        phases.push_back(p);
    }
    if (phases.empty())
        failAt(sourceName, lineNo,
               "trace has no phases (at least one row required)");
    return PhaseTrace(name, std::move(phases));
}

PhaseTrace
readTraceCsvFile(const std::string &path, const std::string &name)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        fatal(strprintf("cannot open trace file \"%s\"",
                        path.c_str()));
    return readTraceCsv(file, name, path);
}

void
writeTraceCsv(std::ostream &os, const PhaseTrace &trace)
{
    std::string buf = traceCsvHeader;
    buf += "\n";
    for (const TracePhase &p : trace.phases()) {
        buf += csvExactDouble(inSeconds(p.duration));
        buf += ",";
        buf += toString(p.cstate);
        buf += ",";
        buf += toString(p.type);
        buf += ",";
        buf += csvExactDouble(p.ar);
        buf += "\n";
    }
    os << buf;
}

PhaseTrace
traceFromJson(const JsonValue &root, const std::string &name)
{
    for (const JsonValue::Member &m : root.members()) {
        if (m.first != "phases")
            m.second.fail(strprintf("unknown trace key \"%s\" (a "
                                    "trace document has exactly one "
                                    "key, \"phases\")",
                                    m.first.c_str()));
    }
    const JsonValue *phasesValue = root.find("phases");
    if (!phasesValue)
        root.fail("missing required key \"phases\"");
    if (phasesValue->items().empty())
        phasesValue->fail("\"phases\" must hold at least one phase");

    std::vector<TracePhase> phases;
    for (const JsonValue &item : phasesValue->items()) {
        for (const JsonValue::Member &m : item.members()) {
            if (m.first != "duration_ms" && m.first != "cstate" &&
                m.first != "type" && m.first != "ar") {
                m.second.fail(strprintf(
                    "unknown phase key \"%s\" (valid keys: "
                    "duration_ms, cstate, type, ar)",
                    m.first.c_str()));
            }
        }
        for (const char *required : {"duration_ms", "cstate"}) {
            if (!item.find(required))
                item.fail(strprintf("missing required phase key "
                                    "\"%s\"",
                                    required));
        }

        TracePhase p;
        const JsonValue &duration = *item.find("duration_ms");
        p.duration = milliseconds(duration.asNumber());

        const JsonValue &cstate = *item.find("cstate");
        try {
            p.cstate = packageCStateFromString(cstate.asString());
        } catch (const ConfigError &e) {
            cstate.fail(e.what());
        }

        // "type" and "ar" describe what the compute domains run, so
        // they only make sense while the package is in C0; idle
        // phases follow the battery-life convention the synthetic
        // corpus uses everywhere.
        const JsonValue *type = item.find("type");
        const JsonValue *ar = item.find("ar");
        if (p.cstate == PackageCState::C0) {
            if (type) {
                try {
                    p.type =
                        workloadTypeFromString(type->asString());
                } catch (const ConfigError &e) {
                    type->fail(e.what());
                }
            }
            if (ar)
                p.ar = ar->asNumber();
        } else {
            const JsonValue *stray = type ? type : ar;
            if (stray)
                stray->fail(strprintf(
                    "\"%s\" is a C0-only field; %s phases take "
                    "neither \"type\" nor \"ar\"",
                    type ? "type" : "ar",
                    toString(p.cstate).c_str()));
            p.type = WorkloadType::BatteryLife;
            p.ar = 0.3;
        }

        std::string problem = checkTracePhase(p);
        if (!problem.empty())
            item.fail(problem);
        phases.push_back(p);
    }
    return PhaseTrace(name, std::move(phases));
}

PhaseTrace
readTraceJsonFile(const std::string &path, const std::string &name)
{
    return traceFromJson(parseJsonFile(path), name);
}

PhaseTrace
readTraceFile(const std::string &path, const std::string &name)
{
    // Bound the extension search to the basename: a dotted
    // directory component ("runs.2026/office") is not an extension.
    size_t slash = path.find_last_of("/\\");
    size_t dot = path.rfind('.');
    std::string ext;
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
        ext = path.substr(dot);
    }
    if (ext == ".csv")
        return readTraceCsvFile(path, name);
    if (ext == ".json")
        return readTraceJsonFile(path, name);
    fatal(strprintf("trace file \"%s\": unsupported extension "
                    "\"%s\" (expected .csv or .json)",
                    path.c_str(), ext.c_str()));
}

std::string
traceFileStem(const std::string &path)
{
    size_t slash = path.find_last_of("/\\");
    size_t start = slash == std::string::npos ? 0 : slash + 1;
    size_t dot = path.rfind('.');
    if (dot == std::string::npos || dot <= start)
        dot = path.size();
    return path.substr(start, dot - start);
}

} // namespace pdnspot
