#include "workload/trace_library.hh"

#include "common/csv.hh"
#include "common/logging.hh"
#include "workload/trace_generator.hh"

namespace pdnspot
{

void
TraceLibrary::add(PhaseTrace trace)
{
    if (trace.name().empty())
        fatal("TraceLibrary: traces must be named");
    if (!csvFieldSafe(trace.name()))
        fatal(strprintf("TraceLibrary: name \"%s\" contains CSV "
                        "metacharacters",
                        trace.name().c_str()));
    if (find(trace.name()))
        fatal(strprintf("TraceLibrary: duplicate trace name \"%s\"",
                        trace.name().c_str()));
    _traces.push_back(std::move(trace));
}

std::vector<std::string>
TraceLibrary::names() const
{
    std::vector<std::string> out;
    out.reserve(_traces.size());
    for (const PhaseTrace &t : _traces)
        out.push_back(t.name());
    return out;
}

const PhaseTrace *
TraceLibrary::find(const std::string &name) const
{
    for (const PhaseTrace &t : _traces) {
        if (t.name() == name)
            return &t;
    }
    return nullptr;
}

const PhaseTrace &
TraceLibrary::get(const std::string &name) const
{
    if (const PhaseTrace *t = find(name))
        return *t;
    std::string available = joinStrings(names());
    fatal(strprintf("TraceLibrary: no trace \"%s\" (available: %s)",
                    name.c_str(),
                    available.empty() ? "none" : available.c_str()));
}

TraceLibrary
standardCampaignTraces(uint64_t seed)
{
    TraceLibrary lib;

    TraceGenerator bursty(seed);
    lib.add(bursty.burstyCompute(6, milliseconds(20.0),
                                 milliseconds(60.0)));
    lib.add(bursty.dayInTheLife());

    // Three random mixes from consecutive seeds; randomMix bakes its
    // seed into the trace name, keeping the three distinct.
    for (uint64_t s = 0; s < 3; ++s)
        lib.add(TraceGenerator(seed + s)
                    .randomMix(24, milliseconds(15.0)));

    for (const BatteryProfile &profile : batteryLifeWorkloads())
        lib.add(traceFromBatteryProfile(profile, milliseconds(33.3),
                                        4));

    return lib;
}

} // namespace pdnspot
