/**
 * @file
 * 3DMark06 graphics benchmark characterizations.
 *
 * The paper's graphics evaluation (Fig. 8b) uses the 3DMark06 suite:
 * two shader-model-2 graphics tests, two HDR/SM3 tests, and two CPU
 * tests. During the graphics tests 80-90% of the compute budget goes
 * to the graphics engines (Sec. 7.1) and performance scales with the
 * GFX clock; scalability is high because the tests are GPU-bound.
 */

#ifndef PDNSPOT_WORKLOAD_GFX_3DMARK06_HH
#define PDNSPOT_WORKLOAD_GFX_3DMARK06_HH

#include <vector>

#include "workload/workload.hh"

namespace pdnspot
{

/** The 3DMark06 graphics sub-tests used for Fig. 8b. */
const std::vector<Workload> &gfx3dmark06();

/** Mean performance-scalability across the graphics sub-tests. */
double gfx3dmark06MeanScalability();

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_GFX_3DMARK06_HH
