#include "workload/trace_source.hh"

#include <chrono>
#include <map>

#include "common/csv.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/span_trace.hh"
#include "workload/battery_profiles.hh"
#include "workload/trace_generator.hh"
#include "workload/trace_io.hh"
#include "workload/trace_library.hh"

namespace pdnspot
{

const std::vector<std::string> &
traceGeneratorKinds()
{
    static const std::vector<std::string> kinds = {
        "bursty-compute", "day-in-the-life", "random-mix"};
    return kinds;
}

namespace
{

bool
knownGeneratorKind(const std::string &kind)
{
    for (const std::string &k : traceGeneratorKinds()) {
        if (kind == k)
            return true;
    }
    return false;
}

/**
 * Library references rebuild the whole standard corpus to extract
 * one trace; workers resolve several per run, so cache the built
 * library per (thread, seed) instead of paying O(corpus) per
 * reference. Thread-local keeps it lock-free; the handful of seeds
 * a process ever uses bounds the size.
 */
const TraceLibrary &
cachedStandardLibrary(uint64_t seed)
{
    thread_local std::map<uint64_t, TraceLibrary> cache;
    auto it = cache.find(seed);
    if (it == cache.end())
        it = cache.emplace(seed, standardCampaignTraces(seed)).first;
    return it->second;
}

/** The name a generator spec's trace will carry (before rename). */
std::string
generatorTraceName(const TraceGeneratorSpec &params)
{
    if (params.kind == "random-mix")
        return strprintf("random-mix-%llu",
                         static_cast<unsigned long long>(
                             params.seed));
    return params.kind;
}

} // namespace

TraceSpec::TraceSpec(PhaseTrace trace)
    : _kind(Kind::Inline), _name(trace.name()),
      _inline(std::move(trace))
{}

TraceSpec
TraceSpec::library(std::string traceName, uint64_t seed)
{
    TraceSpec spec;
    spec._kind = Kind::Library;
    spec._name = traceName;
    spec._ref = std::move(traceName);
    spec._seed = seed;
    return spec;
}

TraceSpec
TraceSpec::generator(TraceGeneratorSpec params)
{
    TraceSpec spec;
    spec._kind = Kind::Generator;
    spec._name = generatorTraceName(params);
    spec._params = std::move(params);
    return spec;
}

TraceSpec
TraceSpec::profile(std::string profileName, Time framePeriod,
                   size_t frames)
{
    TraceSpec spec;
    spec._kind = Kind::Profile;
    spec._name = profileName + "-trace";
    spec._ref = std::move(profileName);
    spec._framePeriod = framePeriod;
    spec._frames = frames;
    return spec;
}

TraceSpec
TraceSpec::file(std::string path)
{
    TraceSpec spec;
    spec._kind = Kind::File;
    spec._name = traceFileStem(path);
    spec._path = std::move(path);
    return spec;
}

TraceSpec &
TraceSpec::rename(std::string name)
{
    _name = std::move(name);
    return *this;
}

TraceSpec &
TraceSpec::tick(Time tick)
{
    _tick = tick;
    return *this;
}

TraceSpec &
TraceSpec::transform(TraceTransform step)
{
    _transforms.push_back(std::move(step));
    return *this;
}

PhaseTrace
TraceSpec::resolve() const
{
    SpanScope span("trace.resolve", "trace");
    // The resolve timer costs two clock reads; pay them only while
    // a registry is collecting.
    const bool timed = MetricsRegistry::current() != nullptr;
    std::chrono::steady_clock::time_point start;
    if (timed)
        start = std::chrono::steady_clock::now();

    validate();

    PhaseTrace t;
    switch (_kind) {
      case Kind::Inline:
        t = _inline;
        break;
      case Kind::Library:
        t = cachedStandardLibrary(_seed).get(_ref);
        break;
      case Kind::Generator: {
        TraceGenerator gen(_params.seed);
        if (_params.kind == "bursty-compute") {
            t = gen.burstyCompute(_params.bursts, _params.burstLen,
                                  _params.idleLen, _params.arMin,
                                  _params.arMax);
        } else if (_params.kind == "day-in-the-life") {
            t = gen.dayInTheLife();
        } else {
            t = gen.randomMix(_params.phases, _params.meanPhaseLen,
                              _params.arMin, _params.arMax);
        }
        break;
      }
      case Kind::Profile:
        t = traceFromBatteryProfile(batteryProfileByName(_ref),
                                    _framePeriod, _frames);
        break;
      case Kind::File:
        t = readTraceFile(_path, _name);
        break;
    }
    for (const TraceTransform &step : _transforms)
        t = step.apply(t);
    // The resolved trace must answer to the declared cell address,
    // whatever name its source baked in.
    if (t.name() != _name)
        t = PhaseTrace(_name, t.phases());

    metricAdd(Metric::TraceResolves);
    if (timed) {
        std::chrono::duration<double, std::micro> us =
            std::chrono::steady_clock::now() - start;
        metricObserve(Metric::TraceResolveMicros, us.count());
    }
    return t;
}

std::string
TraceSpec::describe() const
{
    std::string d;
    switch (_kind) {
      case Kind::Inline:
        d = strprintf("inline (%zu phases)",
                      _inline.phases().size());
        break;
      case Kind::Library:
        d = strprintf("library \"%s\" (seed %llu)", _ref.c_str(),
                      static_cast<unsigned long long>(_seed));
        break;
      case Kind::Generator:
        d = strprintf("generator \"%s\" (seed %llu)",
                      _params.kind.c_str(),
                      static_cast<unsigned long long>(_params.seed));
        break;
      case Kind::Profile:
        d = strprintf("profile \"%s\" (%zu frames of %g ms)",
                      _ref.c_str(), _frames,
                      inMilliseconds(_framePeriod));
        break;
      case Kind::File:
        d = strprintf("file \"%s\"", _path.c_str());
        break;
    }
    for (const TraceTransform &step : _transforms)
        d += " | " + step.describe();
    if (_tick)
        d += strprintf(", tick %g us", inMicroseconds(*_tick));
    return d;
}

void
TraceSpec::validate() const
{
    if (_name.empty())
        fatal("TraceSpec: unnamed trace");
    if (!csvFieldSafe(_name))
        fatal(strprintf("TraceSpec: name \"%s\" contains CSV "
                        "metacharacters",
                        _name.c_str()));
    if (_tick && *_tick <= seconds(0.0))
        fatal(strprintf("TraceSpec \"%s\": non-positive tick "
                        "override",
                        _name.c_str()));

    switch (_kind) {
      case Kind::Inline:
        if (_inline.phases().empty())
            fatal(strprintf("TraceSpec \"%s\": inline trace has no "
                            "phases",
                            _name.c_str()));
        break;
      case Kind::Library:
        break;
      case Kind::Generator:
        if (!knownGeneratorKind(_params.kind)) {
            fatal(strprintf(
                "TraceSpec \"%s\": unknown generator kind \"%s\" "
                "(expected one of %s)",
                _name.c_str(), _params.kind.c_str(),
                joinStrings(traceGeneratorKinds()).c_str()));
        }
        if (!(_params.arMin >= 0.0 &&
              _params.arMin <= _params.arMax &&
              _params.arMax <= 1.0))
            fatal(strprintf("TraceSpec \"%s\": AR range [%g, %g] "
                            "must satisfy 0 <= ar_min <= ar_max "
                            "<= 1",
                            _name.c_str(), _params.arMin,
                            _params.arMax));
        if (_params.kind == "bursty-compute" &&
            (_params.bursts == 0 ||
             _params.burstLen <= seconds(0.0) ||
             _params.idleLen <= seconds(0.0)))
            fatal(strprintf("TraceSpec \"%s\": bursty-compute needs "
                            "a positive burst count and positive "
                            "burst/idle lengths",
                            _name.c_str()));
        if (_params.kind == "random-mix" &&
            (_params.phases == 0 ||
             _params.meanPhaseLen <= seconds(0.0)))
            fatal(strprintf("TraceSpec \"%s\": random-mix needs a "
                            "positive phase count and mean phase "
                            "length",
                            _name.c_str()));
        break;
      case Kind::Profile:
        if (_frames == 0 || _framePeriod <= seconds(0.0))
            fatal(strprintf("TraceSpec \"%s\": profile expansion "
                            "needs a positive frame count and frame "
                            "period",
                            _name.c_str()));
        break;
      case Kind::File:
        if (_path.empty())
            fatal(strprintf("TraceSpec \"%s\": empty trace file "
                            "path",
                            _name.c_str()));
        break;
    }

    for (const TraceTransform &step : _transforms)
        step.validate(_name);
}

} // namespace pdnspot
