/**
 * @file
 * Workload descriptors consumed by the PDN and performance models.
 *
 * PDNspot characterizes a workload by exactly the quantities the
 * paper's models consume: its type (single-thread / multi-thread /
 * graphics / battery-life), its application ratio (AR, the switching
 * intensity relative to the power-virus, Sec. 2.4), and its
 * performance-scalability (the fractional speedup per fractional
 * clock increase, Sec. 3.3).
 */

#ifndef PDNSPOT_WORKLOAD_WORKLOAD_HH
#define PDNSPOT_WORKLOAD_WORKLOAD_HH

#include <string>

#include "power/workload_type.hh"

namespace pdnspot
{

/** One benchmark's model-facing characterization. */
struct Workload
{
    std::string name;
    WorkloadType type = WorkloadType::SingleThread;
    double ar = 0.56;          ///< application ratio in (0, 1]
    double scalability = 1.0;  ///< perf gain per unit clock gain [0, 1]
};

/**
 * The synthetic power-virus: the most computationally intensive
 * pattern possible, which by definition has AR = 1 (Sec. 2.4). Used
 * to size load-line guardbands and rail Iccmax.
 */
Workload powerVirus(WorkloadType type);

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_WORKLOAD_HH
