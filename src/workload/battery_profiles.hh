/**
 * @file
 * Battery-life workload residency profiles.
 *
 * Battery-life workloads (paper Sec. 5 and Fig. 8c) duty-cycle the
 * processor between a minimum-frequency active state (C0MIN) and
 * package C-states. The paper's video playback profile is explicit:
 * C0MIN for 10% of the frame time, C2 for 5%, C8 for 85%, with
 * nominal powers 2.5/1.2/0.13 W; the other profiles have 20/30/40%
 * C0MIN residency for video conferencing / web browsing / light
 * gaming respectively (Sec. 7.1). The workloads' average power is
 * nearly TDP-independent.
 */

#ifndef PDNSPOT_WORKLOAD_BATTERY_PROFILES_HH
#define PDNSPOT_WORKLOAD_BATTERY_PROFILES_HH

#include <string>
#include <vector>

#include "power/package_cstate.hh"

namespace pdnspot
{

/** One battery-life workload's C-state residency mix. */
struct BatteryProfile
{
    std::string name;

    /** (state, fraction-of-time) entries; fractions sum to 1. */
    std::vector<std::pair<PackageCState, double>> residencies;

    /** Residency of one state (0 if absent). */
    double residency(PackageCState state) const;

    /** True iff residencies are non-negative and sum to ~1. */
    bool valid() const;
};

/** The paper's video playback profile (10% C0MIN / 5% C2 / 85% C8). */
BatteryProfile videoPlayback();

/** Video conferencing: 20% C0MIN. */
BatteryProfile videoConferencing();

/** Web browsing: 30% C0MIN. */
BatteryProfile webBrowsing();

/** Light gaming: 40% C0MIN. */
BatteryProfile lightGaming();

/** All four battery-life workloads of Fig. 8c. */
const std::vector<BatteryProfile> &batteryLifeWorkloads();

/**
 * Look a battery-life workload up by its profile name; fatal()
 * naming the alternatives on an unknown name.
 */
const BatteryProfile &batteryProfileByName(const std::string &name);

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_BATTERY_PROFILES_HH
