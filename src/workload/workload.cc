#include "workload/workload.hh"

namespace pdnspot
{

Workload
powerVirus(WorkloadType type)
{
    Workload w;
    w.name = "power-virus-" + toString(type);
    w.type = type;
    w.ar = 1.0;
    w.scalability = 1.0;
    return w;
}

} // namespace pdnspot
