#include "workload/phase_soa.hh"

#include <bit>
#include <map>
#include <tuple>

namespace pdnspot
{

PhaseSoA::PhaseSoA(const PhaseTrace &trace)
{
    const std::vector<TracePhase> &phases = trace.phases();
    _durations.reserve(phases.size());
    _uniqueIndex.reserve(phases.size());

    // Key on the canonical AR bit pattern: bit-level keying gives a
    // total order even for NaN inputs (double comparison would
    // violate strict weak ordering there), and canonicalization has
    // already collapsed -0.0/+0.0 and NaN payload variants.
    using Key = std::tuple<int, int, uint64_t>;
    std::map<Key, uint32_t> index;

    for (const TracePhase &phase : phases) {
        double ar = canonicalActivityRatio(phase.ar);
        Key key{static_cast<int>(phase.cstate),
                static_cast<int>(phase.type),
                std::bit_cast<uint64_t>(ar)};
        auto [it, inserted] = index.emplace(
            key, static_cast<uint32_t>(_uniquePhases.size()));
        if (inserted) {
            TracePhase rep = phase;
            rep.ar = ar;
            _uniquePhases.push_back(rep);
        }
        _durations.push_back(phase.duration);
        _uniqueIndex.push_back(it->second);
    }
}

} // namespace pdnspot
