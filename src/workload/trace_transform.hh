/**
 * @file
 * Declarative trace transforms: derive perturbed trace variants.
 *
 * The paper's sensitivity results hinge on how power-management
 * behavior shifts as workloads stretch, repeat and jitter. A
 * TraceTransform is a small value object describing one such
 * derivation step — repeat the trace, scale its time axis, truncate
 * it, perturb its activity ratios, or concatenate another trace —
 * and a TraceSpec (workload/trace_source.hh) can carry a chain of
 * them, applied in order after the base trace materializes. Every
 * transform is a pure function of its parameters (AR perturbation
 * draws from a seeded hash noise), so transformed traces resolve
 * deterministically: campaigns stay bit-identical at any thread
 * count and remain memo- and shard-compatible.
 */

#ifndef PDNSPOT_WORKLOAD_TRACE_TRANSFORM_HH
#define PDNSPOT_WORKLOAD_TRACE_TRANSFORM_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/units.hh"
#include "workload/trace.hh"

namespace pdnspot
{

class TraceSpec;

/**
 * One trace-derivation step. Construct through the factories, chain
 * via TraceSpec::transform(); apply() maps an input trace to the
 * derived one, keeping the input's name (TraceSpec::resolve() owns
 * naming).
 */
class TraceTransform
{
  public:
    enum class Kind
    {
        Repeat,    ///< phases repeated n times back to back
        TimeScale, ///< every phase duration multiplied by a factor
        Truncate,  ///< prefix up to a total duration (splits a phase)
        ArPerturb, ///< C0 activity ratios jittered by seeded noise
        Concat,    ///< another TraceSpec's phases appended
    };

    /** Repeat the whole trace `count` times (1 = no-op). */
    static TraceTransform repeat(size_t count);

    /**
     * Multiply every phase duration by `factor` (> 0): stretch the
     * workload (factor > 1) or compress it (factor < 1) without
     * changing its shape.
     */
    static TraceTransform timeScale(double factor);

    /**
     * Keep only the prefix of the trace up to `duration`, splitting
     * the phase spanning the cut. A duration at or past the trace's
     * total is a no-op, so one cut length can sweep a trace family.
     */
    static TraceTransform truncate(Time duration);

    /**
     * Jitter each C0 phase's activity ratio by a deterministic
     * per-phase draw from [-delta, +delta] (HashNoise(seed) keyed by
     * phase index), clamped to [0, 1]. Idle phases keep their
     * battery-life convention AR untouched.
     */
    static TraceTransform arPerturb(double delta, uint64_t seed);

    /** Append `tail`'s resolved phases after the trace's own. */
    static TraceTransform concat(TraceSpec tail);

    Kind kind() const { return _kind; }

    /**
     * Apply the (validated) transform to `trace`. The result carries
     * `trace`'s name and is phase-valid by construction.
     */
    PhaseTrace apply(const PhaseTrace &trace) const;

    /**
     * One-line description ("repeat(3)", "time-scale(x1.5)",
     * "ar-perturb(0.1, seed 7)", ...) for provenance listings.
     */
    std::string describe() const;

    /**
     * fatal() unless the transform's parameters are usable: a
     * positive repeat count, a positive finite scale factor and
     * truncation length, an AR delta in [0, 1], a valid concat
     * operand. `traceName` labels the error with the carrying spec.
     */
    void validate(const std::string &traceName) const;

    bool operator==(const TraceTransform &other) const;

  private:
    TraceTransform() = default;

    Kind _kind = Kind::Repeat;
    size_t _count = 1;    ///< Repeat
    double _factor = 1.0; ///< TimeScale factor / ArPerturb delta
    Time _duration;       ///< Truncate
    uint64_t _seed = 0;   ///< ArPerturb

    /**
     * Concat operand. Shared immutable ownership breaks the value
     * cycle with TraceSpec (which holds a vector of transforms);
     * equality compares the pointee.
     */
    std::shared_ptr<const TraceSpec> _tail;
};

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_TRACE_TRANSFORM_HH
