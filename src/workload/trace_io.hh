/**
 * @file
 * File-backed phase traces: CSV and JSON import/export.
 *
 * Campaigns can run on measured workloads by loading recorded phase
 * traces from disk (workload/trace_source.hh dispatches here for
 * file-kind TraceSpecs). Two formats are supported, both validated
 * phase by phase at the import boundary with positional errors:
 *
 * CSV — one phase per row, exact round trip with writeTraceCsv:
 *
 *   duration_s,cstate,type,ar
 *   0.04,C0,single-thread,0.45
 *   0.12,C8,battery-life,0.3
 *
 * Errors carry "source:line" positions. Numbers use the shortest
 * exact form (common/csv.hh), so write -> read -> write is a byte
 * fixpoint.
 *
 * JSON — a {"phases": [...]} document parsed with src/config/json,
 * so every error carries a "file:line:col" position:
 *
 *   {"phases": [
 *     {"duration_ms": 40.0, "cstate": "C0",
 *      "type": "single-thread", "ar": 0.45},
 *     {"duration_ms": 120.0, "cstate": "C8"}
 *   ]}
 *
 * "type" and "ar" are C0-only fields: active phases default to the
 * TracePhase defaults, idle phases are pinned to the battery-life
 * convention (type battery-life, AR 0.3) and reject explicit
 * overrides instead of silently simulating garbage.
 */

#ifndef PDNSPOT_WORKLOAD_TRACE_IO_HH
#define PDNSPOT_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "workload/trace.hh"

namespace pdnspot
{

class JsonValue;

/** The CSV header row written and required by the CSV trace format. */
extern const char *const traceCsvHeader;

/**
 * Read a CSV phase trace. `name` becomes the trace's name (trace CSV
 * files carry no name; callers derive one from the file stem or a
 * spec-level override); `sourceName` labels error positions.
 * fatal() (ConfigError) with "sourceName:line: message" on any
 * malformed or invalid row.
 */
PhaseTrace readTraceCsv(std::istream &is, const std::string &name,
                        const std::string &sourceName);

/** readTraceCsv over a file; the file path labels error positions. */
PhaseTrace readTraceCsvFile(const std::string &path,
                            const std::string &name);

/**
 * Write a trace in the CSV format readTraceCsv accepts. Numbers use
 * shortest-round-trip formatting: write -> read -> write is a byte
 * fixpoint and read(write(t)) reproduces t's phases exactly.
 */
void writeTraceCsv(std::ostream &os, const PhaseTrace &trace);

/**
 * Bind a parsed {"phases": [...]} JSON document to a PhaseTrace
 * named `name`. Every binding error is a positional ConfigError.
 */
PhaseTrace traceFromJson(const JsonValue &root,
                         const std::string &name);

/** traceFromJson over a parsed file. */
PhaseTrace readTraceJsonFile(const std::string &path,
                             const std::string &name);

/**
 * Load a trace file, dispatching on the extension: ".csv" ->
 * readTraceCsvFile, ".json" -> readTraceJsonFile; fatal() on any
 * other extension.
 */
PhaseTrace readTraceFile(const std::string &path,
                         const std::string &name);

/**
 * The file stem ("traces/office.csv" -> "office"): the default name
 * for file-backed traces.
 */
std::string traceFileStem(const std::string &path);

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_TRACE_IO_HH
