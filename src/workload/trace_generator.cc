#include "workload/trace_generator.hh"

#include "common/logging.hh"

namespace pdnspot
{

namespace
{

void
checkArRange(double ar_min, double ar_max)
{
    if (!(ar_min >= 0.0 && ar_min <= ar_max && ar_max <= 1.0))
        fatal(strprintf("TraceGenerator: AR range [%g, %g] must "
                        "satisfy 0 <= ar_min <= ar_max <= 1",
                        ar_min, ar_max));
}

} // namespace

PhaseTrace
TraceGenerator::burstyCompute(size_t bursts, Time burst_len,
                              Time idle_len, double ar_min,
                              double ar_max) const
{
    if (bursts == 0)
        fatal("TraceGenerator: at least one burst required");
    checkArRange(ar_min, ar_max);

    std::vector<TracePhase> phases;
    phases.reserve(bursts * 2);
    for (size_t i = 0; i < bursts; ++i) {
        TracePhase work;
        work.duration = burst_len * (0.5 + unit(i * 4 + 0));
        work.cstate = PackageCState::C0;
        work.type = unit(i * 4 + 1) < 0.5 ? WorkloadType::SingleThread
                                          : WorkloadType::MultiThread;
        work.ar = ar_min + (ar_max - ar_min) * unit(i * 4 + 2);
        phases.push_back(work);

        TracePhase idle;
        idle.duration = idle_len * (0.5 + unit(i * 4 + 3));
        idle.cstate = unit(i * 4 + 3) < 0.3 ? PackageCState::C2
                                            : PackageCState::C8;
        idle.type = WorkloadType::BatteryLife;
        idle.ar = 0.3;
        phases.push_back(idle);
    }
    return PhaseTrace("bursty-compute", std::move(phases));
}

PhaseTrace
TraceGenerator::dayInTheLife() const
{
    std::vector<TracePhase> phases;
    auto active = [&](Time d, WorkloadType t, double ar) {
        TracePhase p;
        p.duration = d;
        p.cstate = PackageCState::C0;
        p.type = t;
        p.ar = ar;
        phases.push_back(p);
    };
    auto idle = [&](Time d, PackageCState s) {
        TracePhase p;
        p.duration = d;
        p.cstate = s;
        p.type = WorkloadType::BatteryLife;
        p.ar = 0.3;
        phases.push_back(p);
    };

    // Morning email/browsing: light single-thread bursts with idles.
    for (int i = 0; i < 4; ++i) {
        active(milliseconds(40.0), WorkloadType::SingleThread,
               0.42 + 0.1 * unit(100 + i));
        idle(milliseconds(120.0), PackageCState::C8);
    }
    // A compile: sustained multi-thread at high AR.
    active(milliseconds(400.0), WorkloadType::MultiThread, 0.74);
    // Lunch-break standby.
    idle(milliseconds(300.0), PackageCState::C8);
    // Gaming session: graphics-heavy with brief CPU interludes.
    for (int i = 0; i < 3; ++i) {
        active(milliseconds(150.0), WorkloadType::Graphics,
               0.55 + 0.15 * unit(200 + i));
        active(milliseconds(30.0), WorkloadType::MultiThread, 0.6);
    }
    // Evening video playback frames: short active, long display-only.
    for (int i = 0; i < 6; ++i) {
        active(milliseconds(3.3), WorkloadType::BatteryLife, 0.3);
        idle(milliseconds(1.7), PackageCState::C2);
        idle(milliseconds(28.0), PackageCState::C8);
    }
    // Overnight standby.
    idle(milliseconds(500.0), PackageCState::C8);

    return PhaseTrace("day-in-the-life", std::move(phases));
}

PhaseTrace
TraceGenerator::randomMix(size_t phases_count, Time mean_phase_len,
                          double ar_min, double ar_max) const
{
    if (phases_count == 0)
        fatal("TraceGenerator: at least one phase required");
    checkArRange(ar_min, ar_max);

    std::vector<TracePhase> phases;
    phases.reserve(phases_count);
    for (size_t i = 0; i < phases_count; ++i) {
        TracePhase p;
        p.duration = mean_phase_len * (0.25 + 1.5 * unit(i * 8 + 0));
        double kind = unit(i * 8 + 1);
        if (kind < 0.5) {
            p.cstate = PackageCState::C0;
            double t = unit(i * 8 + 2);
            p.type = t < 0.4   ? WorkloadType::SingleThread
                     : t < 0.8 ? WorkloadType::MultiThread
                               : WorkloadType::Graphics;
            p.ar = ar_min + (ar_max - ar_min) * unit(i * 8 + 3);
        } else {
            static constexpr PackageCState idle_states[] = {
                PackageCState::C0Min, PackageCState::C2,
                PackageCState::C3, PackageCState::C6,
                PackageCState::C7, PackageCState::C8,
            };
            p.cstate = idle_states[static_cast<size_t>(
                unit(i * 8 + 4) * 5.999)];
            p.type = WorkloadType::BatteryLife;
            p.ar = 0.3;
        }
        phases.push_back(p);
    }
    return PhaseTrace(strprintf("random-mix-%llu",
                                static_cast<unsigned long long>(_seed)),
                      std::move(phases));
}

} // namespace pdnspot
