#include "workload/spec_cpu2006.hh"

namespace pdnspot
{

namespace
{

Workload
spec(const char *name, double scalability, double ar)
{
    Workload w;
    w.name = name;
    w.type = WorkloadType::SingleThread;
    w.scalability = scalability;
    w.ar = ar;
    return w;
}

} // anonymous namespace

const std::vector<Workload> &
specCpu2006()
{
    // Ordered as in Fig. 7 (ascending scalability). Memory-bound
    // benchmarks (milc, bwaves, mcf, lbm, libquantum ...) scale poorly
    // with clock and have lower ARs; compute-bound ones (gamess,
    // hmmer, povray ...) approach scalability 1 with high ARs.
    static const std::vector<Workload> suite = {
        spec("433.milc", 0.33, 0.47),
        spec("410.bwaves", 0.37, 0.49),
        spec("459.GemsFDTD", 0.41, 0.50),
        spec("450.soplex", 0.46, 0.48),
        spec("434.zeusmp", 0.51, 0.53),
        spec("437.leslie3d", 0.55, 0.52),
        spec("471.omnetpp", 0.59, 0.46),
        spec("429.mcf", 0.62, 0.44),
        spec("481.wrf", 0.65, 0.56),
        spec("403.gcc", 0.68, 0.54),
        spec("470.lbm", 0.71, 0.51),
        spec("436.cactusADM", 0.74, 0.58),
        spec("482.sphinx3", 0.77, 0.57),
        spec("462.libquantum", 0.79, 0.45),
        spec("447.dealII", 0.82, 0.62),
        spec("483.xalancbmk", 0.84, 0.55),
        spec("454.calculix", 0.86, 0.66),
        spec("473.astar", 0.88, 0.54),
        spec("435.gromacs", 0.90, 0.68),
        spec("401.bzip2", 0.91, 0.60),
        spec("465.tonto", 0.92, 0.67),
        spec("444.namd", 0.93, 0.71),
        spec("458.sjeng", 0.94, 0.63),
        spec("464.h264ref", 0.95, 0.72),
        spec("445.gobmk", 0.96, 0.61),
        spec("453.povray", 0.97, 0.74),
        spec("400.perlbench", 0.98, 0.65),
        spec("456.hmmer", 0.99, 0.76),
        spec("416.gamess", 1.00, 0.78),
    };
    return suite;
}

double
specCpu2006MeanScalability()
{
    double sum = 0.0;
    for (const Workload &w : specCpu2006())
        sum += w.scalability;
    return sum / static_cast<double>(specCpu2006().size());
}

} // namespace pdnspot
