/**
 * @file
 * Phase traces: time-varying workload descriptions for the simulator.
 *
 * The interval simulator (src/sim) drives the PMU and the PDN through
 * a sequence of phases. Each phase pins the platform in one package
 * power state and (for active phases) one workload type and AR for a
 * duration; the PMU observes the phases through its activity sensors
 * and decides FlexWatts mode switches.
 */

#ifndef PDNSPOT_WORKLOAD_TRACE_HH
#define PDNSPOT_WORKLOAD_TRACE_HH

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/units.hh"
#include "power/package_cstate.hh"
#include "power/workload_type.hh"
#include "workload/battery_profiles.hh"

namespace pdnspot
{

/** One homogeneous stretch of execution. */
struct TracePhase
{
    Time duration;
    PackageCState cstate = PackageCState::C0;
    WorkloadType type = WorkloadType::MultiThread; ///< for C0 phases
    double ar = 0.56;                              ///< for C0 phases

    bool operator==(const TracePhase &) const = default;
};

/**
 * Canonical form of an activity-ratio value for state construction
 * and keying: collapses -0.0 into +0.0 and every NaN payload into
 * the canonical quiet NaN, so inputs that behave identically share
 * one bit pattern. Deterministic memoization (EteeMemo, PhaseSoA)
 * keys on the canonical bits — without this, a -0.0 phase racing a
 * +0.0 phase could make memo contents depend on which worker
 * evaluated first and silently diverge between serial and threaded
 * runs.
 */
inline double
canonicalActivityRatio(double ar)
{
    if (std::isnan(ar))
        return std::numeric_limits<double>::quiet_NaN();
    // `ar == 0.0` holds for both signed zeros; return the positive
    // one so the sign bit never reaches a key or a model query.
    return ar == 0.0 ? 0.0 : ar;
}

/**
 * Validity check shared by every import boundary (PhaseTrace
 * construction, trace CSV/JSON readers): empty string when the phase
 * is simulatable, otherwise a description of the first problem — a
 * non-positive or non-finite duration, or an AR outside [0, 1].
 * Importers prefix the returned message with their own position.
 */
std::string checkTracePhase(const TracePhase &phase);

/** A named sequence of phases. */
class PhaseTrace
{
  public:
    PhaseTrace() = default;
    PhaseTrace(std::string name, std::vector<TracePhase> phases);

    const std::string &name() const { return _name; }
    const std::vector<TracePhase> &phases() const { return _phases; }

    Time totalDuration() const;

    void append(TracePhase phase) { _phases.push_back(phase); }

    bool operator==(const PhaseTrace &) const = default;

  private:
    std::string _name;
    std::vector<TracePhase> _phases;
};

/**
 * Expand a battery-life residency profile into a repeating frame
 * trace: each frame of the given period visits the profile's states
 * in order, holding each for its residency share.
 */
PhaseTrace traceFromBatteryProfile(const BatteryProfile &profile,
                                   Time frame_period, size_t frames);

} // namespace pdnspot

#endif // PDNSPOT_WORKLOAD_TRACE_HH
