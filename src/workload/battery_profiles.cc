#include "workload/battery_profiles.hh"

#include <cmath>

#include "common/logging.hh"

namespace pdnspot
{

double
BatteryProfile::residency(PackageCState state) const
{
    for (const auto &[s, r] : residencies) {
        if (s == state)
            return r;
    }
    return 0.0;
}

bool
BatteryProfile::valid() const
{
    double sum = 0.0;
    for (const auto &[s, r] : residencies) {
        if (r < 0.0)
            return false;
        sum += r;
    }
    return std::abs(sum - 1.0) < 1e-9;
}

BatteryProfile
videoPlayback()
{
    // Exactly the paper's Sec. 5 numbers.
    return BatteryProfile{
        "video-playback",
        {{PackageCState::C0Min, 0.10},
         {PackageCState::C2, 0.05},
         {PackageCState::C8, 0.85}},
    };
}

BatteryProfile
videoConferencing()
{
    return BatteryProfile{
        "video-conferencing",
        {{PackageCState::C0Min, 0.20},
         {PackageCState::C2, 0.08},
         {PackageCState::C8, 0.72}},
    };
}

BatteryProfile
webBrowsing()
{
    return BatteryProfile{
        "web-browsing",
        {{PackageCState::C0Min, 0.30},
         {PackageCState::C2, 0.10},
         {PackageCState::C6, 0.10},
         {PackageCState::C8, 0.50}},
    };
}

BatteryProfile
lightGaming()
{
    return BatteryProfile{
        "light-gaming",
        {{PackageCState::C0Min, 0.40},
         {PackageCState::C2, 0.12},
         {PackageCState::C6, 0.13},
         {PackageCState::C8, 0.35}},
    };
}

const std::vector<BatteryProfile> &
batteryLifeWorkloads()
{
    static const std::vector<BatteryProfile> workloads = {
        videoPlayback(),
        videoConferencing(),
        webBrowsing(),
        lightGaming(),
    };
    return workloads;
}

const BatteryProfile &
batteryProfileByName(const std::string &name)
{
    for (const BatteryProfile &profile : batteryLifeWorkloads()) {
        if (profile.name == name)
            return profile;
    }
    std::vector<std::string> names;
    for (const BatteryProfile &profile : batteryLifeWorkloads())
        names.push_back(profile.name);
    fatal(strprintf("batteryProfileByName: unknown profile \"%s\" "
                    "(available: %s)",
                    name.c_str(), joinStrings(names).c_str()));
}

} // namespace pdnspot
