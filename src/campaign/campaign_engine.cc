#include "campaign/campaign_engine.hh"

#include <atomic>
#include <memory>

#include "common/logging.hh"
#include "pmu/pmu.hh"
#include "sim/interval_simulator.hh"

namespace pdnspot
{

namespace
{

/**
 * One worker thread's current Platform. Campaign runs are stamped
 * with a process-unique id so a slot left over from an earlier
 * campaign (worker threads outlive runs) is never mistaken for this
 * run's platform. At most one Platform is retained per worker; it is
 * replaced on the next rebuild and reclaimed at thread exit.
 */
struct ThreadPlatformSlot
{
    uint64_t runId = 0;
    size_t configIdx = 0;
    std::unique_ptr<Platform> platform;
};

const Platform &
threadPlatform(uint64_t run_id, const CampaignSpec &spec,
               size_t config_idx)
{
    thread_local ThreadPlatformSlot slot;
    if (!slot.platform || slot.runId != run_id ||
        slot.configIdx != config_idx) {
        slot.platform =
            std::make_unique<Platform>(spec.platforms[config_idx]);
        slot.runId = run_id;
        slot.configIdx = config_idx;
    }
    return *slot.platform;
}

SimResult
simulateCell(const Platform &platform, const PhaseTrace &trace,
             PdnKind kind, const CampaignSpec &spec)
{
    IntervalSimulator sim(platform.operatingPoints(),
                          platform.config().tdp, spec.tick);
    if (kind == PdnKind::FlexWatts) {
        if (spec.mode == SimMode::Oracle)
            return sim.runOracle(trace, platform.flexWatts());
        if (spec.mode == SimMode::Pmu) {
            PmuConfig cfg;
            cfg.tdp = platform.config().tdp;
            Pmu pmu(cfg, platform.predictor());
            return sim.run(trace, platform.flexWatts(), pmu);
        }
    }
    // Non-hybrid PDNs have no mode logic: every mode simulates them
    // statically.
    return sim.run(trace, platform.pdn(kind));
}

} // namespace

CampaignEngine::CampaignEngine(const ParallelRunner &runner)
    : _runner(runner)
{}

CampaignResult
CampaignEngine::run(const CampaignSpec &spec) const
{
    spec.validate();

    size_t nTraces = spec.traces.size();
    size_t nPdns = spec.pdns.size();
    size_t cellsPerPlatform = nTraces * nPdns;
    size_t n = spec.cellCount();

    static std::atomic<uint64_t> runCounter{0};
    uint64_t runId = ++runCounter;

    // Platform-major flattening keeps each worker's platform axis
    // non-decreasing under monotonic range claims, bounding Platform
    // rebuilds; each SimResult lands at its own index, making the
    // assembled result independent of scheduling.
    std::vector<SimResult> sims(n);
    _runner.forEachChunked(
        n, _runner.suggestedGrain(n), [&](size_t begin, size_t end) {
            for (size_t t = begin; t < end; ++t) {
                size_t p = t / cellsPerPlatform;
                size_t rest = t % cellsPerPlatform;
                const Platform &platform =
                    threadPlatform(runId, spec, p);
                sims[t] = simulateCell(platform,
                                       spec.traces[rest / nPdns],
                                       spec.pdns[rest % nPdns],
                                       spec);
            }
        });

    CampaignResult result;
    result.cells.reserve(n);
    for (size_t t = 0; t < n; ++t) {
        size_t p = t / cellsPerPlatform;
        size_t rest = t % cellsPerPlatform;
        CampaignCellResult c;
        c.trace = spec.traces[rest / nPdns].name();
        c.platform = spec.platforms[p].name;
        c.pdn = spec.pdns[rest % nPdns];
        c.mode = spec.mode;
        c.sim = sims[t];
        result.cells.push_back(std::move(c));
    }
    return result;
}

} // namespace pdnspot
