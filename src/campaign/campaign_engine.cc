#include "campaign/campaign_engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/span_trace.hh"
#include "pmu/pmu.hh"
#include "sim/etee_memo.hh"
#include "sim/interval_simulator.hh"

namespace pdnspot
{

namespace
{

/**
 * One worker thread's current Platform plus its evaluation memo.
 * Campaign runs are stamped with a process-unique id so a slot left
 * over from an earlier campaign (worker threads outlive runs) is
 * never mistaken for this run's platform. At most one Platform is
 * retained per worker; it is replaced on the next rebuild and
 * reclaimed at thread exit. The memo shares the slot's lifetime: it
 * is only ever valid for the slot's (platform, run) pair.
 *
 * The seen* cursors track how much of the memo's counters has been
 * banked into the metrics registry (deltas flush at the end of every
 * chunk and before a same-run platform rebuild), so each counter
 * increment is attributed exactly once.
 */
struct ThreadPlatformSlot
{
    uint64_t runId = 0;
    size_t configIdx = 0;
    std::unique_ptr<Platform> platform;
    std::unique_ptr<EteeMemo> memo;
    uint64_t seenProbes = 0;
    uint64_t seenHits = 0;
    uint64_t seenBuilds = 0;
    uint64_t seenEvals = 0;
};

/** Bank the slot memo's counter growth since the last harvest. */
void
harvestMemoStats(ThreadPlatformSlot &slot)
{
    if (!slot.memo)
        return;
    const EteeMemo &memo = *slot.memo;
    metricAdd(Metric::MemoProbes, memo.probes() - slot.seenProbes);
    metricAdd(Metric::MemoHits, memo.hits() - slot.seenHits);
    metricAdd(Metric::MemoStateBuilds,
              memo.stateBuilds() - slot.seenBuilds);
    metricAdd(Metric::MemoPdnEvaluations,
              memo.pdnEvaluations() - slot.seenEvals);
    slot.seenProbes = memo.probes();
    slot.seenHits = memo.hits();
    slot.seenBuilds = memo.stateBuilds();
    slot.seenEvals = memo.pdnEvaluations();
}

ThreadPlatformSlot &
threadSlot(uint64_t run_id, const CampaignSpec &spec,
           size_t config_idx, bool memoize)
{
    thread_local ThreadPlatformSlot slot;
    if (!slot.platform || slot.runId != run_id ||
        slot.configIdx != config_idx) {
        // A same-run platform change retires this memo before the
        // chunk-end harvest; bank its remaining deltas first. Slots
        // left over from *other* runs were fully harvested at their
        // last chunk end and must not leak into this run's counters.
        if (slot.runId == run_id)
            harvestMemoStats(slot);
        {
            SpanScope span("campaign.platform_build", "campaign");
            slot.platform = std::make_unique<Platform>(
                spec.platforms[config_idx]);
        }
        metricAdd(Metric::CampaignPlatformBuilds);
        slot.memo =
            memoize ? std::make_unique<EteeMemo>(
                          slot.platform->operatingPoints(),
                          slot.platform->config().tdp)
                    : nullptr;
        slot.runId = run_id;
        slot.configIdx = config_idx;
        slot.seenProbes = slot.seenHits = 0;
        slot.seenBuilds = slot.seenEvals = 0;
    }
    return slot;
}

/**
 * A trace materialized for simulation: the phase-by-phase form (the
 * PMU path steps it) plus its batch-evaluation SoA form (every other
 * path). Both derive deterministically from the TraceSpec.
 */
struct ResolvedTrace
{
    PhaseTrace trace;
    PhaseSoA soa;

    explicit ResolvedTrace(PhaseTrace t)
        : trace(std::move(t)), soa(trace)
    {}
};

/**
 * One worker thread's lazily-resolved traces for the current run.
 * TraceSpec resolution (library rebuilds, generator runs, trace-file
 * reads) happens at most once per trace per worker; the cache is
 * invalidated by run id exactly like ThreadPlatformSlot. Resolution
 * is deterministic, so worker-private copies cannot perturb results.
 */
struct ThreadTraceCache
{
    uint64_t runId = 0;
    std::vector<std::unique_ptr<const ResolvedTrace>> traces;
};

const ResolvedTrace &
resolvedTrace(uint64_t run_id, const CampaignSpec &spec,
              size_t trace_idx)
{
    thread_local ThreadTraceCache cache;
    if (cache.runId != run_id) {
        cache.traces.clear();
        cache.traces.resize(spec.traces.size());
        cache.runId = run_id;
    }
    std::unique_ptr<const ResolvedTrace> &slot =
        cache.traces[trace_idx];
    if (!slot)
        slot = std::make_unique<const ResolvedTrace>(
            spec.traces[trace_idx].resolve());
    return *slot;
}

SimResult
simulateCell(const Platform &platform, const ResolvedTrace &rt,
             PdnKind kind, const CampaignSpec &spec, Time tick,
             EteeMemo *memo, SignalProbe *probe)
{
    IntervalSimulator sim(platform.operatingPoints(),
                          platform.config().tdp, tick);
    if (kind == PdnKind::FlexWatts) {
        if (spec.mode == SimMode::Oracle)
            return sim.runOracle(rt.soa, platform.flexWatts(), memo,
                                 probe);
        if (spec.mode == SimMode::Pmu) {
            PmuConfig cfg;
            cfg.tdp = platform.config().tdp;
            Pmu pmu(cfg, platform.predictor());
            return sim.run(rt.trace, platform.flexWatts(), pmu,
                           memo, probe);
        }
    }
    // Non-hybrid PDNs have no mode logic: every mode simulates them
    // statically — through the batched SoA path.
    return sim.run(rt.soa, platform.pdn(kind), memo, probe);
}

/** Collects streamed cells back into an in-memory CampaignResult. */
class CollectSink : public CampaignSink
{
  public:
    explicit CollectSink(std::vector<CampaignCellResult> &cells)
        : _cells(cells)
    {}

    void
    consume(CampaignCellResult cell) override
    {
        _cells.push_back(std::move(cell));
    }

  private:
    std::vector<CampaignCellResult> &_cells;
};

} // namespace

CampaignRunStats
campaignStatsSnapshot(const MetricsRegistry &registry)
{
    CampaignRunStats s;
    s.cells = registry.counterValue(Metric::CampaignCells);
    s.phases = registry.counterValue(Metric::CampaignPhases);
    s.memoProbes = registry.counterValue(Metric::MemoProbes);
    s.memoHits = registry.counterValue(Metric::MemoHits);
    s.stateBuilds = registry.counterValue(Metric::MemoStateBuilds);
    s.pdnEvaluations =
        registry.counterValue(Metric::MemoPdnEvaluations);
    return s;
}

CampaignEngine::CampaignEngine(const ParallelRunner &runner)
    : _runner(runner)
{}

CampaignEngine &
CampaignEngine::memoize(bool on)
{
    _memoize = on;
    return *this;
}

CampaignResult
CampaignEngine::run(const CampaignSpec &spec) const
{
    CampaignResult result;
    result.cells.reserve(spec.cellCount());
    CollectSink sink(result.cells);
    run(spec, sink);
    return result;
}

void
CampaignEngine::run(const CampaignSpec &spec, CampaignSink &sink,
                    CampaignRunStats *stats) const
{
    run(spec, sink, 0, spec.cellCount(), stats);
}

void
CampaignEngine::run(const CampaignSpec &spec, CampaignSink &sink,
                    size_t firstCell, size_t endCell,
                    CampaignRunStats *stats) const
{
    spec.validate();
    if (firstCell > endCell || endCell > spec.cellCount())
        fatal(strprintf("CampaignEngine: cell range [%zu, %zu) "
                        "outside the campaign's %zu cells",
                        firstCell, endCell, spec.cellCount()));

    size_t nPdns = spec.pdns.size();
    size_t cellsPerPlatform = spec.traces.size() * nPdns;
    size_t n = endCell - firstCell;

    static std::atomic<uint64_t> runCounter{0};
    uint64_t runId = ++runCounter;

    // Execution statistics flow through the metrics registry. When
    // the caller wants stats and no registry is installed (the
    // common library-use case), install a run-private one; when one
    // is already installed (pdnspot_campaign --report), report into
    // it and attribute this run's share by baseline subtraction.
    // Concurrent runs in one process share the installed registry,
    // so their per-run stats would mix — one campaign at a time is
    // the supported shape.
    std::optional<MetricsRegistry> localRegistry;
    std::optional<MetricsInstallation> localInstall;
    MetricsRegistry *registry = MetricsRegistry::current();
    if (stats && !registry) {
        localRegistry.emplace();
        localInstall.emplace(*localRegistry);
        registry = &*localRegistry;
    }
    CampaignRunStats baseline;
    if (stats)
        baseline = campaignStatsSnapshot(*registry);

    // Platform-major flattening keeps each worker's platform axis
    // non-decreasing under monotonic range claims, bounding Platform
    // rebuilds. Each completed chunk lands in `pending` as a shard
    // keyed by its begin index; the flush cursor drains the
    // contiguous prefix into the sink, so delivery order depends
    // only on (n, grain) — never on scheduling — and a shard's
    // memory is reclaimed as soon as every earlier cell is done.
    //
    // Backpressure: a worker whose shard is not next in line waits
    // while `pending` is full instead of parking it, so one slow
    // early chunk cannot make the reorder buffer grow toward the
    // campaign size. The worker holding the cursor chunk never
    // waits, and one chunk is processed per claim, so the cursor
    // always advances: no deadlock. `failed` releases every waiter
    // once any chunk or the sink has thrown (the campaign is
    // unwinding; shards are dropped).
    std::mutex flushMutex;
    std::condition_variable space;
    std::map<size_t, std::vector<CampaignCellResult>> pending;
    const size_t maxPending =
        4 * std::max<size_t>(1, _runner.threadCount());
    size_t cursor = 0;
    bool failed = false;

    auto markFailed = [&] {
        std::lock_guard<std::mutex> lock(flushMutex);
        failed = true;
        pending.clear();
        space.notify_all();
    };

    _runner.forEachChunked(
        n, _runner.suggestedGrain(n), [&](size_t begin, size_t end) {
            {
                // Once failing, surface the error instead of
                // spending the rest of the campaign's CPU time on
                // cells that will be dropped anyway.
                std::lock_guard<std::mutex> lock(flushMutex);
                if (failed)
                    return;
            }
            SpanScope chunkSpan("campaign.chunk", "campaign");
            // Cell timing costs two clock reads per cell; pay them
            // only while a registry is collecting.
            const bool timeCells =
                MetricsRegistry::current() != nullptr;
            std::vector<CampaignCellResult> shard;
            shard.reserve(end - begin);
            ThreadPlatformSlot *lastSlot = nullptr;
            uint64_t chunkPhases = 0;
            try {
                for (size_t t = begin; t < end; ++t) {
                    SpanScope cellSpan("campaign.cell", "campaign");
                    std::chrono::steady_clock::time_point cellStart;
                    if (timeCells)
                        cellStart = std::chrono::steady_clock::now();
                    size_t cell = firstCell + t;
                    size_t p = cell / cellsPerPlatform;
                    size_t rest = cell % cellsPerPlatform;
                    size_t traceIdx = rest / nPdns;
                    const TraceSpec &traceSpec =
                        spec.traces[traceIdx];
                    ThreadPlatformSlot &slot =
                        threadSlot(runId, spec, p, _memoize);
                    lastSlot = &slot;
                    const ResolvedTrace &rt =
                        resolvedTrace(runId, spec, traceIdx);
                    CampaignCellResult c;
                    c.trace = traceSpec.name();
                    c.platform = spec.platforms[p].name;
                    c.pdn = spec.pdns[rest % nPdns];
                    c.mode = spec.mode;
                    // Probe binding is per cell and worker-private;
                    // the empty-probes check keeps unprobed
                    // campaigns on the exact PR-7 fast path.
                    std::unique_ptr<SignalProbe> probe;
                    if (!spec.probes.empty()) {
                        std::string pdnName = toString(c.pdn);
                        std::string modeName = toString(c.mode);
                        for (const ProbeSpec &ps : spec.probes) {
                            if (ps.matches(c.trace, c.platform,
                                           pdnName, modeName)) {
                                probe = std::make_unique<SignalProbe>(
                                    ps, spec.platforms[p].tdp);
                                break;
                            }
                        }
                    }
                    c.sim = simulateCell(
                        *slot.platform, rt, c.pdn, spec,
                        traceSpec.tickOverride().value_or(spec.tick),
                        slot.memo.get(), probe.get());
                    if (probe) {
                        Waveform w = probe->take();
                        w.trace = c.trace;
                        w.platform = c.platform;
                        w.pdn = toString(c.pdn);
                        w.mode = toString(c.mode);
                        w.cellIndex = cell;
                        c.waveform =
                            std::make_shared<const Waveform>(
                                std::move(w));
                    }
                    chunkPhases += rt.soa.phaseCount();
                    shard.push_back(std::move(c));
                    if (timeCells) {
                        std::chrono::duration<double, std::micro>
                            us = std::chrono::steady_clock::now() -
                                 cellStart;
                        metricObserve(Metric::CampaignCellMicros,
                                      us.count());
                    }
                }
                metricAdd(Metric::CampaignCells, end - begin);
                metricAdd(Metric::CampaignChunks);
                metricAdd(Metric::CampaignPhases, chunkPhases);
                if (lastSlot)
                    harvestMemoStats(*lastSlot);
                // The chunk boundary is the merge point: bank this
                // thread's buffered deltas so a snapshot taken
                // between chunks is at most one chunk stale.
                MetricsRegistry::flushThread();
            } catch (...) {
                // A stuck cursor must not strand waiting workers.
                markFailed();
                throw;
            }

            std::unique_lock<std::mutex> lock(flushMutex);
            space.wait(lock, [&] {
                return failed || begin == cursor ||
                       pending.size() < maxPending;
            });
            if (failed)
                return; // campaign is already failing; drop the rows
            pending.emplace(begin, std::move(shard));
            while (!pending.empty() &&
                   pending.begin()->first == cursor) {
                auto node = pending.extract(pending.begin());
                cursor += node.mapped().size();
                for (CampaignCellResult &cell : node.mapped()) {
                    try {
                        sink.consume(std::move(cell));
                    } catch (...) {
                        // Deliver nothing further after a sink
                        // error; the runner rethrows this to the
                        // caller once the job drains.
                        failed = true;
                        pending.clear();
                        space.notify_all();
                        throw;
                    }
                }
            }
            space.notify_all();
        });

    if (cursor != n || !pending.empty())
        panic("CampaignEngine: streamed cell count does not cover "
              "the campaign");

    if (stats) {
        // Every worker flushed at its last chunk boundary and again
        // after the runner drain (parallel.cc), so the registry
        // holds this run's complete totals.
        CampaignRunStats total = campaignStatsSnapshot(*registry);
        stats->cells = total.cells - baseline.cells;
        stats->phases = total.phases - baseline.phases;
        stats->memoProbes = total.memoProbes - baseline.memoProbes;
        stats->memoHits = total.memoHits - baseline.memoHits;
        stats->stateBuilds =
            total.stateBuilds - baseline.stateBuilds;
        stats->pdnEvaluations =
            total.pdnEvaluations - baseline.pdnEvaluations;
    }
}

} // namespace pdnspot
