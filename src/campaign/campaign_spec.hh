/**
 * @file
 * Declarative description of one batch-simulation campaign.
 *
 * The paper's evaluation is a cross-product: many workload traces,
 * run on platforms of several power classes, across the five PDN
 * architectures (Figs. 7/8). A CampaignSpec names exactly that
 * product — traces × platform configs × PDN kinds — plus the
 * simulation mode, and CampaignEngine (campaign_engine.hh) executes
 * every cell in parallel.
 */

#ifndef PDNSPOT_CAMPAIGN_CAMPAIGN_SPEC_HH
#define PDNSPOT_CAMPAIGN_CAMPAIGN_SPEC_HH

#include <string>
#include <vector>

#include "obs/probe.hh"
#include "pdn/pdn_model.hh"
#include "pdnspot/platform.hh"
#include "workload/trace.hh"
#include "workload/trace_library.hh"
#include "workload/trace_source.hh"

namespace pdnspot
{

/** How each (trace, platform, pdn) cell is simulated. */
enum class SimMode
{
    /**
     * Every PDN evaluated statically, FlexWatts pinned to its
     * default mode logic (no PMU, no switch overheads).
     */
    Static,

    /**
     * FlexWatts cells run under realistic PMU control: the predictor
     * sees the workload only through sensors and pays the C6 switch
     * flow. Non-hybrid PDNs have no mode logic and run statically.
     */
    Pmu,

    /**
     * FlexWatts cells use the oracle (instant, free, always-right
     * mode choice) — the predictor-quality upper bound.
     */
    Oracle,
};

std::string toString(SimMode mode);

/** Inverse of toString(SimMode); fatal() on an unknown name. */
SimMode simModeFromString(const std::string &name);

/**
 * One campaign: the cell cross-product and how to simulate it.
 *
 * The trace axis is declarative: each entry is a TraceSpec
 * (workload/trace_source.hh) describing where the trace comes from,
 * and the engine materializes it lazily per worker. A PhaseTrace
 * converts implicitly to an inline TraceSpec, so eager callers keep
 * working unchanged.
 */
struct CampaignSpec
{
    std::vector<TraceSpec> traces;
    std::vector<PlatformConfig> platforms;
    std::vector<PdnKind> pdns;
    SimMode mode = SimMode::Static;

    /**
     * Waveform probes (obs/probe.hh): cells matching a probe's
     * selectors capture a per-phase waveform delivered on
     * CampaignCellResult::waveform (first matching probe wins).
     * Empty = no capture, and the simulators run entirely unprobed
     * (the zero-overhead contract).
     */
    std::vector<ProbeSpec> probes;

    /**
     * Interval-simulator step (bounds switch-flow resolution).
     * Individual traces may carry a per-cell override
     * (TraceSpec::tick); cells of such traces simulate at that tick
     * instead.
     */
    Time tick = microseconds(50.0);

    /** Wrap every trace of a library into the spec (inline kind). */
    void addTraces(const TraceLibrary &library);

    /** Total number of (trace, platform, pdn) cells. */
    size_t
    cellCount() const
    {
        return traces.size() * platforms.size() * pdns.size();
    }

    /**
     * fatal() unless the spec is runnable: non-empty axes, a
     * positive tick, well-formed trace specs (TraceSpec::validate)
     * with unique CSV-safe names, unique platform names, and every
     * platform TDP within the operating-point model's span. Trace
     * specs are not resolved: file-backed trace errors surface at
     * resolution time. Probe specs must be intrinsically sane and
     * their non-empty selectors must name values the spec's axes
     * actually carry (a silently-never-matching probe is a config
     * error).
     */
    void validate() const;
};

} // namespace pdnspot

#endif // PDNSPOT_CAMPAIGN_CAMPAIGN_SPEC_HH
