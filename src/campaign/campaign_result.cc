#include "campaign/campaign_result.hh"

#include <charconv>
#include <istream>
#include <ostream>
#include <system_error>

#include "common/csv.hh"
#include "common/logging.hh"

namespace pdnspot
{

namespace
{

const char *const csvHeader =
    "trace,platform,pdn,mode,duration_s,supply_energy_j,"
    "nominal_energy_j,ivr_mode_s,ldo_mode_s,mode_switches,"
    "switch_time_s,switch_energy_j";

constexpr size_t csvColumns = 12;

/** One cell as one CSV row; shared by writeCsv and CampaignCsvSink
 * so batch and streaming exports are byte-identical. */
void
appendCsvRow(std::string &buf, const CampaignCellResult &c)
{
    if (!csvFieldSafe(c.trace) || !csvFieldSafe(c.platform))
        fatal("CampaignResult: cell names contain CSV "
              "metacharacters");
    buf += c.trace;
    buf += ",";
    buf += c.platform;
    buf += ",";
    buf += pdnKindToString(c.pdn);
    buf += ",";
    buf += toString(c.mode);
    buf += ",";
    buf += csvExactDouble(inSeconds(c.sim.duration));
    buf += ",";
    buf += csvExactDouble(inJoules(c.sim.supplyEnergy));
    buf += ",";
    buf += csvExactDouble(inJoules(c.sim.nominalEnergy));
    buf += ",";
    buf += csvExactDouble(
        inSeconds(c.sim.residency(HybridMode::IvrMode)));
    buf += ",";
    buf += csvExactDouble(
        inSeconds(c.sim.residency(HybridMode::LdoMode)));
    buf += ",";
    buf += std::to_string(c.sim.modeSwitches);
    buf += ",";
    buf += csvExactDouble(inSeconds(c.sim.switchOverheadTime));
    buf += ",";
    buf += csvExactDouble(inJoules(c.sim.switchOverheadEnergy));
    buf += "\n";
}

} // namespace

CampaignCsvSink::CampaignCsvSink(std::ostream &os, bool header)
    : _os(os)
{
    if (header)
        _os << csvHeader << "\n";
}

void
CampaignCsvSink::consume(CampaignCellResult cell)
{
    std::string row;
    appendCsvRow(row, cell);
    _os << row;
    if (!_os)
        fatal("CampaignCsvSink: error writing CSV row");
    ++_rows;
}

void
CampaignSummaryBuilder::add(const CampaignCellResult &cell)
{
    Totals &t = _totals[static_cast<size_t>(cell.pdn)];
    ++t.cells;
    t.supplyEnergy += cell.sim.supplyEnergy;
    t.nominalEnergy += cell.sim.nominalEnergy;
    t.modeSwitches += cell.sim.modeSwitches;
    t.powerSum += cell.sim.averagePower();
}

std::vector<CampaignPdnSummary>
CampaignSummaryBuilder::summaries(const BatteryModel &battery) const
{
    std::vector<CampaignPdnSummary> out;
    for (PdnKind kind : allPdnKinds) {
        const Totals &t = _totals[static_cast<size_t>(kind)];
        if (t.cells == 0)
            continue;
        CampaignPdnSummary s;
        s.pdn = kind;
        s.cells = t.cells;
        s.supplyEnergy = t.supplyEnergy;
        s.nominalEnergy = t.nominalEnergy;
        s.modeSwitches = t.modeSwitches;
        s.meanAveragePower =
            t.powerSum / static_cast<double>(t.cells);
        s.batteryLifeHours = battery.lifeHours(s.meanAveragePower);
        out.push_back(s);
    }
    return out;
}

const CampaignCellResult &
CampaignResult::cell(const std::string &trace,
                     const std::string &platform, PdnKind pdn) const
{
    for (const CampaignCellResult &c : cells) {
        if (c.pdn == pdn && c.trace == trace &&
            c.platform == platform) {
            return c;
        }
    }
    fatal(strprintf("CampaignResult: no cell (%s, %s, %s)",
                    trace.c_str(), platform.c_str(),
                    pdnKindToString(pdn).c_str()));
}

std::vector<CampaignPdnSummary>
CampaignResult::summarizeByPdn(const BatteryModel &battery) const
{
    CampaignSummaryBuilder builder;
    for (const CampaignCellResult &c : cells)
        builder.add(c);
    return builder.summaries(battery);
}

void
CampaignResult::writeCsv(std::ostream &os) const
{
    // Assemble in a plain buffer: every number is formatted by
    // csvExactDouble (locale-independent, shortest round-trip), so
    // no stream formatting state can leak into the output.
    std::string buf = csvHeader;
    buf += "\n";
    for (const CampaignCellResult &c : cells)
        appendCsvRow(buf, c);
    os << buf;
}

CampaignResult
CampaignResult::readCsv(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != csvHeader)
        fatal("CampaignResult::readCsv: missing or unrecognized "
              "header row");

    CampaignResult r;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> f = splitCsvLine(line);
        if (f.size() != csvColumns)
            fatal(strprintf("CampaignResult::readCsv: expected %zu "
                            "columns, got %zu",
                            csvColumns, f.size()));

        CampaignCellResult c;
        c.trace = f[0];
        c.platform = f[1];
        c.pdn = pdnKindFromString(f[2]);
        c.mode = simModeFromString(f[3]);
        c.sim.duration = seconds(csvToDouble(f[4]));
        c.sim.supplyEnergy = joules(csvToDouble(f[5]));
        c.sim.nominalEnergy = joules(csvToDouble(f[6]));
        c.sim.modeResidency[static_cast<size_t>(
            HybridMode::IvrMode)] = seconds(csvToDouble(f[7]));
        c.sim.modeResidency[static_cast<size_t>(
            HybridMode::LdoMode)] = seconds(csvToDouble(f[8]));
        uint64_t switches = 0;
        auto [ptr, ec] = std::from_chars(
            f[9].data(), f[9].data() + f[9].size(), switches);
        if (ec != std::errc() || ptr != f[9].data() + f[9].size())
            fatal("CampaignResult::readCsv: mode_switches must be a "
                  "non-negative integer");
        c.sim.modeSwitches = switches;
        c.sim.switchOverheadTime = seconds(csvToDouble(f[10]));
        c.sim.switchOverheadEnergy = joules(csvToDouble(f[11]));

        r.cells.push_back(std::move(c));
    }
    return r;
}

} // namespace pdnspot
