#include "campaign/campaign_result.hh"

#include <charconv>
#include <istream>
#include <ostream>
#include <system_error>

#include "common/csv.hh"
#include "common/logging.hh"

namespace pdnspot
{

namespace
{

const char *const csvHeader =
    "trace,platform,pdn,mode,duration_s,supply_energy_j,"
    "nominal_energy_j,ivr_mode_s,ldo_mode_s,mode_switches,"
    "switch_time_s,switch_energy_j";

constexpr size_t csvColumns = 12;

} // namespace

const CampaignCellResult &
CampaignResult::cell(const std::string &trace,
                     const std::string &platform, PdnKind pdn) const
{
    for (const CampaignCellResult &c : cells) {
        if (c.pdn == pdn && c.trace == trace &&
            c.platform == platform) {
            return c;
        }
    }
    fatal(strprintf("CampaignResult: no cell (%s, %s, %s)",
                    trace.c_str(), platform.c_str(),
                    toString(pdn).c_str()));
}

std::vector<CampaignPdnSummary>
CampaignResult::summarizeByPdn(const BatteryModel &battery) const
{
    std::vector<CampaignPdnSummary> out;
    for (PdnKind kind : allPdnKinds) {
        CampaignPdnSummary s;
        s.pdn = kind;
        Power powerSum;
        for (const CampaignCellResult &c : cells) {
            if (c.pdn != kind)
                continue;
            ++s.cells;
            s.supplyEnergy += c.sim.supplyEnergy;
            s.nominalEnergy += c.sim.nominalEnergy;
            s.modeSwitches += c.sim.modeSwitches;
            powerSum += c.sim.averagePower();
        }
        if (s.cells == 0)
            continue;
        s.meanAveragePower =
            powerSum / static_cast<double>(s.cells);
        s.batteryLifeHours = battery.lifeHours(s.meanAveragePower);
        out.push_back(s);
    }
    return out;
}

void
CampaignResult::writeCsv(std::ostream &os) const
{
    // Assemble in a plain buffer: every number is formatted by
    // csvExactDouble (locale-independent, shortest round-trip), so
    // no stream formatting state can leak into the output.
    std::string buf = csvHeader;
    buf += "\n";
    for (const CampaignCellResult &c : cells) {
        if (!csvFieldSafe(c.trace) || !csvFieldSafe(c.platform))
            fatal("CampaignResult: cell names contain CSV "
                  "metacharacters");
        buf += c.trace;
        buf += ",";
        buf += c.platform;
        buf += ",";
        buf += toString(c.pdn);
        buf += ",";
        buf += toString(c.mode);
        buf += ",";
        buf += csvExactDouble(inSeconds(c.sim.duration));
        buf += ",";
        buf += csvExactDouble(inJoules(c.sim.supplyEnergy));
        buf += ",";
        buf += csvExactDouble(inJoules(c.sim.nominalEnergy));
        buf += ",";
        buf += csvExactDouble(
            inSeconds(c.sim.residency(HybridMode::IvrMode)));
        buf += ",";
        buf += csvExactDouble(
            inSeconds(c.sim.residency(HybridMode::LdoMode)));
        buf += ",";
        buf += std::to_string(c.sim.modeSwitches);
        buf += ",";
        buf += csvExactDouble(inSeconds(c.sim.switchOverheadTime));
        buf += ",";
        buf += csvExactDouble(inJoules(c.sim.switchOverheadEnergy));
        buf += "\n";
    }
    os << buf;
}

CampaignResult
CampaignResult::readCsv(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != csvHeader)
        fatal("CampaignResult::readCsv: missing or unrecognized "
              "header row");

    CampaignResult r;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> f = splitCsvLine(line);
        if (f.size() != csvColumns)
            fatal(strprintf("CampaignResult::readCsv: expected %zu "
                            "columns, got %zu",
                            csvColumns, f.size()));

        CampaignCellResult c;
        c.trace = f[0];
        c.platform = f[1];
        c.pdn = pdnKindFromString(f[2]);
        c.mode = simModeFromString(f[3]);
        c.sim.duration = seconds(csvToDouble(f[4]));
        c.sim.supplyEnergy = joules(csvToDouble(f[5]));
        c.sim.nominalEnergy = joules(csvToDouble(f[6]));
        c.sim.modeResidency[static_cast<size_t>(
            HybridMode::IvrMode)] = seconds(csvToDouble(f[7]));
        c.sim.modeResidency[static_cast<size_t>(
            HybridMode::LdoMode)] = seconds(csvToDouble(f[8]));
        uint64_t switches = 0;
        auto [ptr, ec] = std::from_chars(
            f[9].data(), f[9].data() + f[9].size(), switches);
        if (ec != std::errc() || ptr != f[9].data() + f[9].size())
            fatal("CampaignResult::readCsv: mode_switches must be a "
                  "non-negative integer");
        c.sim.modeSwitches = switches;
        c.sim.switchOverheadTime = seconds(csvToDouble(f[10]));
        c.sim.switchOverheadEnergy = joules(csvToDouble(f[11]));

        r.cells.push_back(std::move(c));
    }
    return r;
}

} // namespace pdnspot
