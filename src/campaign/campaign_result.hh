/**
 * @file
 * Results of one batch-simulation campaign: per-cell SimResults keyed
 * by (trace, platform, pdn), per-PDN summary statistics, and a CSV
 * export that round-trips bit-exactly through readCsv.
 *
 * Besides the in-memory CampaignResult, this header defines the
 * streaming consumption path: a CampaignSink receives cells in
 * canonical order as the engine completes them, so million-cell
 * campaigns can be exported (CampaignCsvSink) and summarized
 * (CampaignSummaryBuilder) without ever materializing every
 * SimResult at once.
 */

#ifndef PDNSPOT_CAMPAIGN_CAMPAIGN_RESULT_HH
#define PDNSPOT_CAMPAIGN_CAMPAIGN_RESULT_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign_spec.hh"
#include "pdn/pdn_model.hh"
#include "sim/battery_model.hh"
#include "sim/sim_stats.hh"

namespace pdnspot
{

/** Identity and outcome of one (trace, platform, pdn) cell. */
struct CampaignCellResult
{
    std::string trace;
    std::string platform;
    PdnKind pdn = PdnKind::IVR;
    SimMode mode = SimMode::Static;
    SimResult sim;

    /**
     * The captured waveform when a probe (CampaignSpec::probes)
     * matched this cell; null otherwise. Rides the streaming
     * delivery in canonical cell order, and is deliberately outside
     * the CSV surface: writeCsv ignores it and readCsv leaves it
     * null, so campaign CSVs are byte-identical probe-on vs
     * probe-off. operator== compares the pointer (identity), which
     * keeps the unprobed determinism contracts (null == null) exact.
     */
    std::shared_ptr<const Waveform> waveform;

    bool operator==(const CampaignCellResult &) const = default;
};

/** Campaign-wide aggregates for one PDN architecture. */
struct CampaignPdnSummary
{
    PdnKind pdn = PdnKind::IVR;
    size_t cells = 0;
    Energy supplyEnergy;      ///< total over all cells
    Energy nominalEnergy;     ///< total over all cells
    uint64_t modeSwitches = 0;
    Power meanAveragePower;   ///< mean of per-cell average power
    double batteryLifeHours = 0.0; ///< at meanAveragePower

    /** Energy-weighted ETEE across the PDN's cells. */
    double
    meanEtee() const
    {
        if (supplyEnergy <= joules(0.0))
            return 0.0;
        return nominalEnergy / supplyEnergy;
    }
};

/**
 * Streaming consumer of campaign cells.
 *
 * CampaignEngine::run(spec, sink) delivers every cell exactly once,
 * in the canonical platform-major spec order, as soon as all earlier
 * cells have completed. Calls are serialized (never concurrent) but
 * may arrive from different worker threads; an exception thrown by
 * consume() aborts the campaign and is rethrown to the caller.
 */
class CampaignSink
{
  public:
    virtual ~CampaignSink() = default;

    virtual void consume(CampaignCellResult cell) = 0;
};

/**
 * Sink that streams cells to an ostream in CSV form. The header row
 * is written on construction; the accumulated output is byte-
 * identical to CampaignResult::writeCsv over the same cells, so the
 * streamed file re-imports through CampaignResult::readCsv.
 *
 * Sharded runs (CampaignEngine::run over a cell range) suppress the
 * header on every shard but the first, so concatenating the shard
 * files in order reproduces the unsharded CSV byte for byte.
 */
class CampaignCsvSink : public CampaignSink
{
  public:
    explicit CampaignCsvSink(std::ostream &os, bool header = true);

    void consume(CampaignCellResult cell) override;

    /** Data rows written so far (header excluded). */
    size_t rows() const { return _rows; }

  private:
    std::ostream &_os;
    size_t _rows = 0;
};

/**
 * Incremental per-PDN aggregation: feed cells in any order, then
 * project the summaries. CampaignResult::summarizeByPdn is this
 * builder over all cells; streaming consumers (the pdnspot_campaign
 * CLI) run it cell by cell instead of retaining them.
 */
class CampaignSummaryBuilder
{
  public:
    void add(const CampaignCellResult &cell);

    /**
     * Summaries of the cells added so far, in allPdnKinds order
     * (kinds with no cells omitted); battery life projected at each
     * PDN's mean average power.
     */
    std::vector<CampaignPdnSummary>
    summaries(const BatteryModel &battery) const;

  private:
    struct Totals
    {
        size_t cells = 0;
        Energy supplyEnergy;
        Energy nominalEnergy;
        uint64_t modeSwitches = 0;
        Power powerSum;
    };

    std::array<Totals, allPdnKinds.size()> _totals{};
};

/**
 * Every cell of one campaign, in platform-major spec order. The
 * simulation mode travels per cell (CampaignCellResult::mode), so a
 * result is exactly its cells — no state outside the CSV.
 */
struct CampaignResult
{
    std::vector<CampaignCellResult> cells;

    /** Lookup one cell; fatal() when absent. */
    const CampaignCellResult &cell(const std::string &trace,
                                   const std::string &platform,
                                   PdnKind pdn) const;

    /**
     * Per-PDN aggregates in allPdnKinds order (PDNs with no cells
     * omitted); battery life projected from the battery model at
     * each PDN's mean average power.
     */
    std::vector<CampaignPdnSummary>
    summarizeByPdn(const BatteryModel &battery) const;

    /**
     * One row per cell:
     * trace,platform,pdn,mode,duration_s,supply_energy_j,
     * nominal_energy_j,ivr_mode_s,ldo_mode_s,mode_switches,
     * switch_time_s,switch_energy_j
     * Numbers use shortest-round-trip formatting, so readCsv
     * reconstructs the exact in-memory result.
     */
    void writeCsv(std::ostream &os) const;

    /** Inverse of writeCsv; fatal() on malformed input. */
    static CampaignResult readCsv(std::istream &is);

    bool operator==(const CampaignResult &) const = default;
};

} // namespace pdnspot

#endif // PDNSPOT_CAMPAIGN_CAMPAIGN_RESULT_HH
