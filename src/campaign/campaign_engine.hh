/**
 * @file
 * CampaignEngine: executes a CampaignSpec's trace × platform × PDN
 * cross-product across the ParallelRunner thread pool.
 *
 * Cells are flattened platform-major and claimed in chunked ranges
 * (ParallelRunner::forEachChunked). Each worker lazily constructs a
 * private Platform for the config it is currently simulating —
 * Platform construction (ETEE characterization) is the expensive
 * step, and the monotonic range claims mean each worker sees the
 * platform axis in non-decreasing order, so it rebuilds at most once
 * per platform config per campaign. Trace specs resolve lazily too:
 * each worker materializes a TraceSpec the first time one of its
 * cells needs it and caches the PhaseTrace — together with its
 * batch-evaluation PhaseSoA form (workload/phase_soa.hh) — for the
 * rest of the run. Non-PMU cells simulate through the batched
 * IntervalSimulator overloads: unique states resolve once, then
 * energy accumulates over dense per-phase arrays.
 *
 * Determinism contract: every cell's SimResult depends only on its
 * (trace spec, platform config, pdn, mode, tick) inputs and lands at
 * its own index, so a CampaignResult is bit-identical to the serial
 * run at any thread count — TraceSpec::resolve() is deterministic,
 * so per-worker resolution cannot perturb results.
 */

#ifndef PDNSPOT_CAMPAIGN_CAMPAIGN_ENGINE_HH
#define PDNSPOT_CAMPAIGN_CAMPAIGN_ENGINE_HH

#include "campaign/campaign_result.hh"
#include "campaign/campaign_spec.hh"
#include "common/parallel.hh"
#include "obs/metrics.hh"

namespace pdnspot
{

/**
 * Aggregate execution statistics of one CampaignEngine run, summed
 * across worker threads: the denominator metrics of the benchmark
 * trajectory (cells and phases simulated) and the EteeMemo counters
 * that make memo effectiveness a tracked metric rather than
 * folklore. Purely observational — filling them never perturbs
 * results. Memo counters stay zero when memoization is off.
 *
 * Since the observability layer landed this is a thin view over the
 * well-known campaign metrics (obs/metrics.hh): the engine reports
 * into the installed MetricsRegistry (installing a run-private one
 * when the caller wants stats and none is active) and fills this
 * struct from counter deltas — see campaignStatsSnapshot().
 */
struct CampaignRunStats
{
    size_t cells = 0;     ///< cells simulated by this run
    uint64_t phases = 0;  ///< trace phases stepped, over all cells

    uint64_t memoProbes = 0; ///< memo lookups (hits + misses)
    uint64_t memoHits = 0;
    uint64_t stateBuilds = 0;     ///< operating-point builds (misses)
    uint64_t pdnEvaluations = 0;  ///< PDN evaluations (misses)

    uint64_t memoMisses() const { return memoProbes - memoHits; }

    /** Fraction of lookups served from the memo; 0 with no probes. */
    double
    memoHitRate() const
    {
        if (memoProbes == 0)
            return 0.0;
        return static_cast<double>(memoHits) /
               static_cast<double>(memoProbes);
    }
};

/**
 * Project a registry's well-known campaign counters into a
 * CampaignRunStats. Totals since the registry's construction; the
 * engine attributes a single run by subtracting a baseline snapshot
 * taken at run start.
 */
CampaignRunStats campaignStatsSnapshot(
    const MetricsRegistry &registry);

/** Runs campaigns; stateless apart from the pool binding + knobs. */
class CampaignEngine
{
  public:
    /**
     * @param runner thread pool to fan cells across; defaults to the
     * process-wide pool. Pass a ParallelRunner(1) for a serial run.
     */
    explicit CampaignEngine(const ParallelRunner &runner =
                                ParallelRunner::global());

    /** Binding a temporary runner would dangle; see SweepEngine. */
    explicit CampaignEngine(const ParallelRunner &&runner) = delete;

    /**
     * Simulate every (trace, platform, pdn) cell of the spec.
     * Results are ordered platform-major, then trace, then pdn —
     * the same order at any thread count.
     */
    CampaignResult run(const CampaignSpec &spec) const;

    /**
     * Streaming variant: cells are delivered to the sink in the same
     * canonical order, each as soon as every earlier cell has
     * completed. Workers emit finished chunks into per-thread shards
     * and a single flush cursor drains the contiguous prefix;
     * workers that run far ahead of the cursor wait for it, so the
     * reorder buffer is bounded by a small multiple of the thread
     * count — never the campaign size.
     *
     * When `stats` is non-null it is overwritten with this run's
     * aggregate execution statistics.
     */
    void run(const CampaignSpec &spec, CampaignSink &sink,
             CampaignRunStats *stats = nullptr) const;

    /**
     * Stream one contiguous range [firstCell, endCell) of the
     * spec's canonical cell order — the sharding primitive: n
     * processes running disjoint covering ranges produce outputs
     * whose concatenation is byte-identical to the full run (each
     * cell's result is independent of which range computes it).
     * fatal() unless firstCell <= endCell <= cellCount().
     */
    void run(const CampaignSpec &spec, CampaignSink &sink,
             size_t firstCell, size_t endCell,
             CampaignRunStats *stats = nullptr) const;

    /**
     * Enable/disable the per-worker (platform, phase, PDN)
     * evaluation memo (EteeMemo, on by default). Purely a
     * performance knob: results are bit-identical either way; off
     * exists for benchmarking and debugging.
     */
    CampaignEngine &memoize(bool on);

    bool memoize() const { return _memoize; }

  private:
    const ParallelRunner &_runner;
    bool _memoize = true;
};

} // namespace pdnspot

#endif // PDNSPOT_CAMPAIGN_CAMPAIGN_ENGINE_HH
