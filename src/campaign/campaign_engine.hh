/**
 * @file
 * CampaignEngine: executes a CampaignSpec's trace × platform × PDN
 * cross-product across the ParallelRunner thread pool.
 *
 * Cells are flattened platform-major and claimed in chunked ranges
 * (ParallelRunner::forEachChunked). Each worker lazily constructs a
 * private Platform for the config it is currently simulating —
 * Platform construction (ETEE characterization) is the expensive
 * step, and the monotonic range claims mean each worker sees the
 * platform axis in non-decreasing order, so it rebuilds at most once
 * per platform config per campaign.
 *
 * Determinism contract: every cell's SimResult depends only on its
 * (trace, platform config, pdn, mode, tick) inputs and lands at its
 * own index, so a CampaignResult is bit-identical to the serial run
 * at any thread count.
 */

#ifndef PDNSPOT_CAMPAIGN_CAMPAIGN_ENGINE_HH
#define PDNSPOT_CAMPAIGN_CAMPAIGN_ENGINE_HH

#include "campaign/campaign_result.hh"
#include "campaign/campaign_spec.hh"
#include "common/parallel.hh"

namespace pdnspot
{

/** Runs campaigns; stateless apart from the thread pool binding. */
class CampaignEngine
{
  public:
    /**
     * @param runner thread pool to fan cells across; defaults to the
     * process-wide pool. Pass a ParallelRunner(1) for a serial run.
     */
    explicit CampaignEngine(const ParallelRunner &runner =
                                ParallelRunner::global());

    /** Binding a temporary runner would dangle; see SweepEngine. */
    explicit CampaignEngine(const ParallelRunner &&runner) = delete;

    /**
     * Simulate every (trace, platform, pdn) cell of the spec.
     * Results are ordered platform-major, then trace, then pdn —
     * the same order at any thread count.
     */
    CampaignResult run(const CampaignSpec &spec) const;

  private:
    const ParallelRunner &_runner;
};

} // namespace pdnspot

#endif // PDNSPOT_CAMPAIGN_CAMPAIGN_ENGINE_HH
