#include "campaign/campaign_spec.hh"

#include "common/csv.hh"
#include "common/logging.hh"
#include "power/operating_point.hh"

namespace pdnspot
{

std::string
toString(SimMode mode)
{
    switch (mode) {
      case SimMode::Static:
        return "static";
      case SimMode::Pmu:
        return "pmu";
      case SimMode::Oracle:
        return "oracle";
    }
    panic("toString: invalid SimMode");
}

SimMode
simModeFromString(const std::string &name)
{
    for (SimMode mode :
         {SimMode::Static, SimMode::Pmu, SimMode::Oracle}) {
        if (toString(mode) == name)
            return mode;
    }
    fatal(strprintf("simModeFromString: unknown mode \"%s\"",
                    name.c_str()));
}

void
CampaignSpec::addTraces(const TraceLibrary &library)
{
    for (const PhaseTrace &t : library.traces())
        traces.push_back(t);
}

namespace
{

void
checkName(const char *what, const std::string &name)
{
    if (name.empty())
        fatal(strprintf("CampaignSpec: unnamed %s", what));
    if (!csvFieldSafe(name))
        fatal(strprintf("CampaignSpec: %s name \"%s\" contains CSV "
                        "metacharacters",
                        what, name.c_str()));
}

} // namespace

void
CampaignSpec::validate() const
{
    if (traces.empty() || platforms.empty() || pdns.empty())
        fatal("CampaignSpec: traces, platforms and pdns must all be "
              "non-empty");
    if (tick <= seconds(0.0))
        fatal("CampaignSpec: non-positive tick");

    for (size_t i = 0; i < traces.size(); ++i) {
        traces[i].validate();
        checkName("trace", traces[i].name());
        for (size_t j = i + 1; j < traces.size(); ++j) {
            if (traces[i].name() == traces[j].name())
                fatal(strprintf("CampaignSpec: duplicate trace name "
                                "\"%s\"",
                                traces[i].name().c_str()));
        }
    }
    for (size_t i = 0; i < platforms.size(); ++i) {
        checkName("platform", platforms[i].name);
        for (size_t j = i + 1; j < platforms.size(); ++j) {
            if (platforms[i].name == platforms[j].name)
                fatal(strprintf("CampaignSpec: duplicate platform "
                                "name \"%s\"",
                                platforms[i].name.c_str()));
        }
        if (platforms[i].tdp < OperatingPointModel::minTdp() ||
            platforms[i].tdp > OperatingPointModel::maxTdp()) {
            fatal(strprintf("CampaignSpec: platform \"%s\" TDP "
                            "%.1f W outside the supported 4-50 W "
                            "span",
                            platforms[i].name.c_str(),
                            inWatts(platforms[i].tdp)));
        }
    }
    for (size_t i = 0; i < pdns.size(); ++i) {
        for (size_t j = i + 1; j < pdns.size(); ++j) {
            if (pdns[i] == pdns[j])
                fatal(strprintf("CampaignSpec: duplicate PDN kind "
                                "\"%s\"",
                                toString(pdns[i]).c_str()));
        }
    }

    for (const ProbeSpec &probe : probes) {
        probe.validate();
        // A selector naming nothing in the spec would silently
        // capture nothing; fail it like any other config error.
        if (!probe.trace.empty()) {
            bool found = false;
            for (const TraceSpec &t : traces)
                found = found || t.name() == probe.trace;
            if (!found)
                fatal(strprintf("CampaignSpec: probe trace selector "
                                "\"%s\" matches no trace",
                                probe.trace.c_str()));
        }
        if (!probe.platform.empty()) {
            bool found = false;
            for (const PlatformConfig &p : platforms)
                found = found || p.name == probe.platform;
            if (!found)
                fatal(strprintf("CampaignSpec: probe platform "
                                "selector \"%s\" matches no "
                                "platform",
                                probe.platform.c_str()));
        }
        if (!probe.pdn.empty()) {
            bool found = false;
            for (PdnKind kind : pdns)
                found = found || toString(kind) == probe.pdn;
            if (!found)
                fatal(strprintf("CampaignSpec: probe pdn selector "
                                "\"%s\" matches no PDN in the spec",
                                probe.pdn.c_str()));
        }
        if (!probe.mode.empty() && probe.mode != toString(mode))
            fatal(strprintf("CampaignSpec: probe mode selector "
                            "\"%s\" does not match the campaign "
                            "mode \"%s\"",
                            probe.mode.c_str(),
                            toString(mode).c_str()));
    }
}

} // namespace pdnspot
