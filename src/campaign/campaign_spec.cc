#include "campaign/campaign_spec.hh"

#include "common/csv.hh"
#include "common/logging.hh"
#include "power/operating_point.hh"

namespace pdnspot
{

std::string
toString(SimMode mode)
{
    switch (mode) {
      case SimMode::Static:
        return "static";
      case SimMode::Pmu:
        return "pmu";
      case SimMode::Oracle:
        return "oracle";
    }
    panic("toString: invalid SimMode");
}

SimMode
simModeFromString(const std::string &name)
{
    for (SimMode mode :
         {SimMode::Static, SimMode::Pmu, SimMode::Oracle}) {
        if (toString(mode) == name)
            return mode;
    }
    fatal(strprintf("simModeFromString: unknown mode \"%s\"",
                    name.c_str()));
}

void
CampaignSpec::addTraces(const TraceLibrary &library)
{
    for (const PhaseTrace &t : library.traces())
        traces.push_back(t);
}

namespace
{

void
checkName(const char *what, const std::string &name)
{
    if (name.empty())
        fatal(strprintf("CampaignSpec: unnamed %s", what));
    if (!csvFieldSafe(name))
        fatal(strprintf("CampaignSpec: %s name \"%s\" contains CSV "
                        "metacharacters",
                        what, name.c_str()));
}

} // namespace

void
CampaignSpec::validate() const
{
    if (traces.empty() || platforms.empty() || pdns.empty())
        fatal("CampaignSpec: traces, platforms and pdns must all be "
              "non-empty");
    if (tick <= seconds(0.0))
        fatal("CampaignSpec: non-positive tick");

    for (size_t i = 0; i < traces.size(); ++i) {
        traces[i].validate();
        checkName("trace", traces[i].name());
        for (size_t j = i + 1; j < traces.size(); ++j) {
            if (traces[i].name() == traces[j].name())
                fatal(strprintf("CampaignSpec: duplicate trace name "
                                "\"%s\"",
                                traces[i].name().c_str()));
        }
    }
    for (size_t i = 0; i < platforms.size(); ++i) {
        checkName("platform", platforms[i].name);
        for (size_t j = i + 1; j < platforms.size(); ++j) {
            if (platforms[i].name == platforms[j].name)
                fatal(strprintf("CampaignSpec: duplicate platform "
                                "name \"%s\"",
                                platforms[i].name.c_str()));
        }
        if (platforms[i].tdp < OperatingPointModel::minTdp() ||
            platforms[i].tdp > OperatingPointModel::maxTdp()) {
            fatal(strprintf("CampaignSpec: platform \"%s\" TDP "
                            "%.1f W outside the supported 4-50 W "
                            "span",
                            platforms[i].name.c_str(),
                            inWatts(platforms[i].tdp)));
        }
    }
    for (size_t i = 0; i < pdns.size(); ++i) {
        for (size_t j = i + 1; j < pdns.size(); ++j) {
            if (pdns[i] == pdns[j])
                fatal(strprintf("CampaignSpec: duplicate PDN kind "
                                "\"%s\"",
                                toString(pdns[i]).c_str()));
        }
    }
}

} // namespace pdnspot
