/**
 * @file
 * SpanRecorder: per-thread begin/end span recording with Chrome
 * trace-event JSON export.
 *
 * Instrumented subsystems mark regions with SpanScope (chunk claims,
 * per-worker trace resolution, cell evaluation, memo state-builds);
 * each thread appends to its own preallocated bounded buffer, so the
 * hot path is two branch-guarded stores and never takes a lock. The
 * recorder serializes everything to the Chrome/Perfetto trace-event
 * format ({"traceEvents": [{"ph": "B"/"E", ...}]}) via src/config/
 * json — open the file in https://ui.perfetto.dev or
 * chrome://tracing.
 *
 * Buffers are bounded, not growable: accepting a begin reserves the
 * slot for its matching end, so a full buffer drops whole spans
 * (counted in droppedSpans()) and the emitted stream always has
 * balanced B/E pairs with monotonic per-thread timestamps.
 *
 * Like MetricsRegistry, installation is process-wide and RAII
 * (SpanInstallation); spanBegin/spanEnd reduce to one relaxed atomic
 * load and a branch while no recorder is installed.
 */

#ifndef PDNSPOT_OBS_SPAN_TRACE_HH
#define PDNSPOT_OBS_SPAN_TRACE_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "config/json.hh"

namespace pdnspot
{

/**
 * Options for the identity-stamped trace-event export. Sharded
 * campaign runs (--shard k/n) each serialize their own timeline;
 * stamping the shard index as the pid and into the process name
 * keeps concatenated/merged timelines from colliding on (pid, tid)
 * in the Perfetto UI. `extraEvents` (e.g. probe counter tracks from
 * obs/waveform_io.hh, which carry their own pids) are appended after
 * the span events.
 */
struct TraceEventExport
{
    size_t shardIndex = 1;
    size_t shardCount = 1;

    /**
     * Process name for the "M" process_name metadata event; when
     * shardCount > 1 the serializer appends " shard k/n". Empty
     * suppresses the metadata event.
     */
    std::string processName = "pdnspot_campaign";

    std::vector<JsonValue> extraEvents;
};

/**
 * Collects spans from every thread that touches it while installed.
 * Serialize (traceEventsJson/writeTraceEvents) only after the
 * producing threads have quiesced — typically after the campaign
 * run's ParallelRunner drain.
 */
class SpanRecorder
{
  public:
    /** Per-thread event capacity; ~24 bytes per event. */
    static constexpr size_t defaultEventsPerThread = 1 << 16;

    explicit SpanRecorder(
        size_t eventsPerThread = defaultEventsPerThread);
    ~SpanRecorder();

    SpanRecorder(const SpanRecorder &) = delete;
    SpanRecorder &operator=(const SpanRecorder &) = delete;

    /**
     * The installed recorder, or nullptr when span tracing is off.
     * One relaxed atomic load — the disabled fast path.
     */
    static SpanRecorder *current();

    /**
     * Open a span on the calling thread. `name` and `category` must
     * be string literals (or otherwise outlive the recorder); they
     * are stored by pointer, not copied.
     */
    void begin(const char *name, const char *category);

    /** Close the calling thread's innermost open span. */
    void end();

    /** Events recorded so far, across all threads. */
    size_t eventCount() const;

    /** Spans dropped because a thread's buffer filled up. */
    uint64_t droppedSpans() const;

    /**
     * The recorded spans as a Chrome trace-event document:
     * {"traceEvents": [{"name", "cat", "ph", "ts", "pid", "tid"},
     * ...]}. Timestamps are microseconds from the recorder's
     * construction; tids are dense per-thread ids in first-use order.
     */
    JsonValue traceEventsJson() const;

    /**
     * Identity-stamped export: spans carry pid = options.shardIndex
     * (not getpid()), a process_name metadata event labels the
     * timeline (shard-suffixed when shardCount > 1), and
     * options.extraEvents ride along at the end of traceEvents. The
     * zero-argument overload above keeps the historical unstamped
     * shape.
     */
    JsonValue traceEventsJson(const TraceEventExport &options) const;

    /** writeJson(traceEventsJson()). */
    std::string writeTraceEvents() const;

  private:
    friend class SpanScope;
    struct Event
    {
        const char *name;
        const char *category;
        double tsMicros;
        char phase; ///< 'B' or 'E'
    };

    struct ThreadLog
    {
        int tid = 0;           ///< dense id, first-use order
        size_t open = 0;       ///< accepted begins awaiting end
        uint64_t dropDepth = 0; ///< open *dropped* begins
        uint64_t dropped = 0;  ///< spans lost to a full buffer
        std::vector<Event> events;
    };

    ThreadLog &threadLog();
    double nowMicros() const;

    std::chrono::steady_clock::time_point _origin;
    size_t _eventsPerThread;

    mutable std::mutex _mutex;
    std::vector<std::unique_ptr<ThreadLog>> _logs;
};

/**
 * RAII process-wide installation: while alive, current() returns the
 * recorder and SpanScope records. Quiesce producing threads before
 * destroying it.
 */
class SpanInstallation
{
  public:
    explicit SpanInstallation(SpanRecorder &recorder);
    ~SpanInstallation();

    SpanInstallation(const SpanInstallation &) = delete;
    SpanInstallation &operator=(const SpanInstallation &) = delete;

  private:
    SpanRecorder *_previous;
};

/**
 * Scope guard for one span. The recorder is resolved once at
 * construction, so a scope that straddles an (un)installation stays
 * internally balanced.
 */
class SpanScope
{
  public:
    SpanScope(const char *name, const char *category)
        : _recorder(SpanRecorder::current())
    {
        if (_recorder)
            _recorder->begin(name, category);
    }

    ~SpanScope()
    {
        if (_recorder)
            _recorder->end();
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    SpanRecorder *_recorder;
};

} // namespace pdnspot

#endif // PDNSPOT_OBS_SPAN_TRACE_HH
