/**
 * @file
 * SignalProbe: per-phase waveform capture of the *simulated* system.
 *
 * The metrics/span layer (obs/metrics.hh, obs/span_trace.hh) makes
 * the tool observable; this layer makes the simulation observable. A
 * SignalProbe is a passive sink the IntervalSimulator feeds with one
 * ProbeFrame per trace phase — supply and nominal power, loss
 * breakdown, the active hybrid mode — plus discrete events: hybrid
 * mode switches (flexwatts/mode_switch.hh) and power-budget clips
 * from a shadow PowerBudgetManager (pmu/power_budget.hh) the probe
 * drives with the sampled supply power. The probe derives ETEE,
 * budget state, and a battery state-of-charge from each frame, so
 * "what did the PDN look like around that mode switch?" is a
 * waveform query instead of printf archaeology.
 *
 * The probe is strictly observational: it never feeds anything back
 * into the simulation, so a probed run produces bit-identical
 * SimResults to an unprobed one. Simulator run methods take the
 * probe as an optional trailing pointer (like EteeMemo); the only
 * cost when unbound is one null check per phase.
 *
 * Memory stays bounded on million-phase traces via decimation (keep
 * every Nth phase) and trigger windows ("±N phases around each mode
 * switch / budget clip"): candidate rows sit in a ring buffer until
 * a trigger fires, which admits the lookback window and arms a
 * lookahead window. Events are always recorded (they are sparse).
 *
 * Serialization (columnar CSV, Perfetto counter tracks) lives in
 * obs/waveform_io.hh.
 */

#ifndef PDNSPOT_OBS_PROBE_HH
#define PDNSPOT_OBS_PROBE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hh"
#include "flexwatts/hybrid_mode.hh"
#include "pdn/etee_result.hh"
#include "pmu/power_budget.hh"

namespace pdnspot
{

/**
 * The signals a probe can capture, in canonical (column) order.
 * toString() spellings are the waveform CSV column names.
 */
enum class ProbeSignal
{
    SupplyPowerW,        ///< supply (wall) power over the phase
    NominalPowerW,       ///< load nominal power over the phase
    Etee,                ///< nominal / supply (EteeResult::etee)
    Mode,                ///< active HybridMode (-1 static, 0 IVR, 1 LDO)
    VrLossW,             ///< per-rail VR conversion loss
    ConductionComputeW,  ///< compute-rail conduction loss
    ConductionUncoreW,   ///< uncore-rail conduction loss
    OtherLossW,          ///< remaining loss terms
    BudgetAvgPowerW,     ///< shadow RAPL governor's EWMA power
    BudgetMultiplier,    ///< shadow governor's clock multiplier
    BatterySoc,          ///< 1.0 - supply energy / battery capacity
};

inline constexpr size_t probeSignalCount = 11;

inline constexpr std::array<ProbeSignal, probeSignalCount>
    allProbeSignals = {
        ProbeSignal::SupplyPowerW,
        ProbeSignal::NominalPowerW,
        ProbeSignal::Etee,
        ProbeSignal::Mode,
        ProbeSignal::VrLossW,
        ProbeSignal::ConductionComputeW,
        ProbeSignal::ConductionUncoreW,
        ProbeSignal::OtherLossW,
        ProbeSignal::BudgetAvgPowerW,
        ProbeSignal::BudgetMultiplier,
        ProbeSignal::BatterySoc,
};

std::string toString(ProbeSignal signal);

/** Inverse of toString(ProbeSignal); fatal() on an unknown name. */
ProbeSignal probeSignalFromString(const std::string &name);

/**
 * Bounds capture to "±window phases around each trigger". Without a
 * trigger spec the probe keeps every (decimated) phase.
 */
struct ProbeTriggerSpec
{
    /** Which discrete events arm the window. */
    enum class On
    {
        ModeSwitch,
        BudgetClip,
        Any,
    };

    On on = On::Any;

    /** Phases kept before and after each trigger. */
    uint64_t window = 8;

    bool operator==(const ProbeTriggerSpec &) const = default;
};

std::string toString(ProbeTriggerSpec::On on);

/** Inverse of toString(ProbeTriggerSpec::On); fatal() on unknown. */
ProbeTriggerSpec::On probeTriggerOnFromString(const std::string &name);

/**
 * One declaratively-bound probe: which campaign cells it attaches to
 * and what it keeps. Selectors are names (empty = match any value on
 * that axis); CampaignSpec::validate cross-checks them against the
 * spec's axes so a typo fails loudly instead of capturing nothing.
 */
struct ProbeSpec
{
    std::string trace;    ///< trace-name selector ("" = any)
    std::string platform; ///< platform-name selector ("" = any)
    std::string pdn;      ///< PdnKind name selector ("" = any)
    std::string mode;     ///< SimMode name selector ("" = any)

    /** Signals to keep, any order; empty = all of them. */
    std::vector<ProbeSignal> signals;

    /** Keep every Nth phase (1 = all). */
    uint64_t decimate = 1;

    std::optional<ProbeTriggerSpec> trigger;

    /** Battery capacity backing the battery_soc signal. */
    double batteryWh = 50.0;

    /** True when this probe attaches to the named cell. */
    bool matches(const std::string &traceName,
                 const std::string &platformName,
                 const std::string &pdnName,
                 const std::string &modeName) const;

    /** The signal list normalized: canonical order, deduplicated. */
    std::vector<ProbeSignal> selectedSignals() const;

    /** fatal() unless the intrinsic fields are sane. */
    void validate() const;
};

/** One discrete event on a waveform timeline. */
struct WaveformEvent
{
    std::string kind;   ///< "mode_switch" or "budget_clip"
    uint64_t phase = 0; ///< trace phase index the event fell in
    Time t;             ///< simulated time of the event
    std::string detail; ///< target mode / clip multiplier

    bool operator==(const WaveformEvent &) const = default;
};

/** One admitted sample: the selected signals at one trace phase. */
struct WaveformRow
{
    uint64_t phase = 0;
    Time start;    ///< simulated start time of the phase
    Time duration; ///< phase duration

    /** One value per Waveform::signals entry, same order. */
    std::vector<double> values;

    bool operator==(const WaveformRow &) const = default;
};

/**
 * A captured per-cell waveform: cell identity, the signal columns,
 * admitted sample rows (phase order), and discrete events.
 */
struct Waveform
{
    std::string trace;
    std::string platform;
    std::string pdn;  ///< pdnKindToString spelling
    std::string mode; ///< toString(SimMode) spelling

    /** Global (unsharded) campaign cell index; keys counter pids. */
    uint64_t cellIndex = 0;

    std::vector<ProbeSignal> signals;
    std::vector<WaveformRow> rows;
    std::vector<WaveformEvent> events;

    bool operator==(const Waveform &) const = default;

    /**
     * "trace__platform__pdn__mode" with characters outside
     * [A-Za-z0-9._-] replaced by '_' (cell names may contain '+',
     * '(' etc.) — the per-cell file stem under --probe-out.
     */
    std::string cellName() const;
};

/**
 * What the simulator hands the probe once per trace phase. Powers
 * are phase averages (the PMU path averages over its ticks); loss is
 * null when no PDN evaluation happened inside the phase (a phase
 * spent entirely inside a mode-switch C6 flow).
 */
struct ProbeFrame
{
    uint64_t phase = 0;
    Time start;
    Time duration;
    double supplyPowerW = 0.0;
    double nominalPowerW = 0.0;
    const LossBreakdown *loss = nullptr;
    int mode = -1; ///< -1 none/static, else static_cast<HybridMode>
};

/**
 * The capture state machine for one (probe spec, cell) pair. Not
 * thread-safe; the campaign engine creates one per matching cell on
 * the worker simulating it.
 */
class SignalProbe
{
  public:
    /** @param tdp the probed platform's TDP (shadow budget governor) */
    SignalProbe(const ProbeSpec &spec, Power tdp);

    /** Ingest one phase sample (call once per phase, in order). */
    void samplePhase(const ProbeFrame &frame);

    /** Record a hybrid mode switch starting at `t` in `phase`. */
    void modeSwitch(uint64_t phase, Time t, HybridMode target);

    /**
     * The captured waveform; rows still in the trigger ring (no
     * trigger fired near them) are discarded. Cell identity fields
     * are left for the caller to stamp.
     */
    Waveform take();

  private:
    void buildRow(const ProbeFrame &frame);
    void fireTrigger(ProbeTriggerSpec::On cause, uint64_t phase);

    ProbeSpec _spec;
    std::vector<ProbeSignal> _signals;
    PowerBudgetManager _budget;
    bool _wasClamped = false;
    Energy _capacity;
    Energy _consumed;

    bool _triggered = false;     ///< a trigger window is armed
    uint64_t _admitThrough = 0;  ///< last phase the window admits
    std::deque<WaveformRow> _ring;

    std::vector<WaveformRow> _rows;
    std::vector<WaveformEvent> _events;
};

} // namespace pdnspot

#endif // PDNSPOT_OBS_PROBE_HH
