#include "obs/probe.hh"

#include <algorithm>

#include "common/csv.hh"
#include "common/logging.hh"

namespace pdnspot
{

std::string
toString(ProbeSignal signal)
{
    switch (signal) {
      case ProbeSignal::SupplyPowerW:
        return "supply_power_w";
      case ProbeSignal::NominalPowerW:
        return "nominal_power_w";
      case ProbeSignal::Etee:
        return "etee";
      case ProbeSignal::Mode:
        return "mode";
      case ProbeSignal::VrLossW:
        return "vr_loss_w";
      case ProbeSignal::ConductionComputeW:
        return "conduction_compute_w";
      case ProbeSignal::ConductionUncoreW:
        return "conduction_uncore_w";
      case ProbeSignal::OtherLossW:
        return "other_loss_w";
      case ProbeSignal::BudgetAvgPowerW:
        return "budget_avg_power_w";
      case ProbeSignal::BudgetMultiplier:
        return "budget_multiplier";
      case ProbeSignal::BatterySoc:
        return "battery_soc";
    }
    panic("toString: invalid ProbeSignal");
}

ProbeSignal
probeSignalFromString(const std::string &name)
{
    for (ProbeSignal s : allProbeSignals) {
        if (toString(s) == name)
            return s;
    }
    fatal(strprintf("probeSignalFromString: unknown signal \"%s\"",
                    name.c_str()));
}

std::string
toString(ProbeTriggerSpec::On on)
{
    switch (on) {
      case ProbeTriggerSpec::On::ModeSwitch:
        return "mode_switch";
      case ProbeTriggerSpec::On::BudgetClip:
        return "budget_clip";
      case ProbeTriggerSpec::On::Any:
        return "any";
    }
    panic("toString: invalid ProbeTriggerSpec::On");
}

ProbeTriggerSpec::On
probeTriggerOnFromString(const std::string &name)
{
    for (ProbeTriggerSpec::On on :
         {ProbeTriggerSpec::On::ModeSwitch,
          ProbeTriggerSpec::On::BudgetClip,
          ProbeTriggerSpec::On::Any}) {
        if (toString(on) == name)
            return on;
    }
    fatal(strprintf("probeTriggerOnFromString: unknown trigger "
                    "\"%s\"",
                    name.c_str()));
}

bool
ProbeSpec::matches(const std::string &traceName,
                   const std::string &platformName,
                   const std::string &pdnName,
                   const std::string &modeName) const
{
    return (trace.empty() || trace == traceName) &&
           (platform.empty() || platform == platformName) &&
           (pdn.empty() || pdn == pdnName) &&
           (mode.empty() || mode == modeName);
}

std::vector<ProbeSignal>
ProbeSpec::selectedSignals() const
{
    if (signals.empty()) {
        return std::vector<ProbeSignal>(allProbeSignals.begin(),
                                        allProbeSignals.end());
    }
    std::vector<ProbeSignal> out;
    for (ProbeSignal s : allProbeSignals) {
        if (std::find(signals.begin(), signals.end(), s) !=
            signals.end()) {
            out.push_back(s);
        }
    }
    return out;
}

void
ProbeSpec::validate() const
{
    if (decimate == 0)
        fatal("ProbeSpec: decimate must be >= 1");
    if (trigger && trigger->window == 0)
        fatal("ProbeSpec: trigger window must be >= 1");
    if (!(batteryWh > 0.0))
        fatal("ProbeSpec: battery capacity must be positive");
}

std::string
Waveform::cellName() const
{
    std::string name =
        trace + "__" + platform + "__" + pdn + "__" + mode;
    for (char &c : name) {
        bool safe = (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
        if (!safe)
            c = '_';
    }
    return name;
}

SignalProbe::SignalProbe(const ProbeSpec &spec, Power tdp)
    : _spec(spec), _signals(spec.selectedSignals()), _budget(tdp),
      _capacity(wattHours(spec.batteryWh))
{
    _spec.validate();
}

void
SignalProbe::buildRow(const ProbeFrame &frame)
{
    WaveformRow row;
    row.phase = frame.phase;
    row.start = frame.start;
    row.duration = frame.duration;
    row.values.reserve(_signals.size());
    for (ProbeSignal s : _signals) {
        double v = 0.0;
        switch (s) {
          case ProbeSignal::SupplyPowerW:
            v = frame.supplyPowerW;
            break;
          case ProbeSignal::NominalPowerW:
            v = frame.nominalPowerW;
            break;
          case ProbeSignal::Etee:
            // Same guarded ratio as EteeResult::etee().
            v = frame.supplyPowerW <= 0.0
                    ? 0.0
                    : frame.nominalPowerW / frame.supplyPowerW;
            break;
          case ProbeSignal::Mode:
            v = static_cast<double>(frame.mode);
            break;
          case ProbeSignal::VrLossW:
            v = frame.loss ? inWatts(frame.loss->vrLoss) : 0.0;
            break;
          case ProbeSignal::ConductionComputeW:
            v = frame.loss ? inWatts(frame.loss->conductionCompute)
                           : 0.0;
            break;
          case ProbeSignal::ConductionUncoreW:
            v = frame.loss ? inWatts(frame.loss->conductionUncore)
                           : 0.0;
            break;
          case ProbeSignal::OtherLossW:
            v = frame.loss ? inWatts(frame.loss->other) : 0.0;
            break;
          case ProbeSignal::BudgetAvgPowerW:
            v = inWatts(_budget.averagePower());
            break;
          case ProbeSignal::BudgetMultiplier:
            v = _budget.recommendedMultiplier();
            break;
          case ProbeSignal::BatterySoc:
            v = std::max(0.0, 1.0 - _consumed / _capacity);
            break;
        }
        row.values.push_back(v);
    }

    if (!_spec.trigger) {
        _rows.push_back(std::move(row));
        return;
    }
    if (_triggered && frame.phase <= _admitThrough) {
        _rows.push_back(std::move(row));
        return;
    }
    // Candidate for a future trigger's lookback window: hold it in
    // the ring, evicting everything already out of reach.
    _ring.push_back(std::move(row));
    uint64_t window = _spec.trigger->window;
    while (!_ring.empty() &&
           _ring.front().phase + window < frame.phase) {
        _ring.pop_front();
    }
}

void
SignalProbe::fireTrigger(ProbeTriggerSpec::On cause, uint64_t phase)
{
    if (!_spec.trigger)
        return;
    ProbeTriggerSpec::On want = _spec.trigger->on;
    if (want != ProbeTriggerSpec::On::Any && want != cause)
        return;
    uint64_t window = _spec.trigger->window;
    uint64_t lo = phase >= window ? phase - window : 0;
    while (!_ring.empty() && _ring.front().phase < lo)
        _ring.pop_front();
    for (WaveformRow &row : _ring)
        _rows.push_back(std::move(row));
    _ring.clear();
    _triggered = true;
    _admitThrough = std::max(_admitThrough, phase + window);
}

void
SignalProbe::samplePhase(const ProbeFrame &frame)
{
    // Derived state advances on every phase regardless of decimation
    // or trigger admission, so the shadow governor and battery see
    // the full timeline.
    _budget.observe(watts(frame.supplyPowerW), frame.duration);
    _consumed += watts(frame.supplyPowerW) * frame.duration;

    bool clamped = _budget.clamped();
    if (clamped && !_wasClamped) {
        WaveformEvent e;
        e.kind = "budget_clip";
        e.phase = frame.phase;
        e.t = frame.start + frame.duration;
        e.detail = csvExactDouble(_budget.recommendedMultiplier());
        _events.push_back(std::move(e));
        fireTrigger(ProbeTriggerSpec::On::BudgetClip, frame.phase);
    }
    _wasClamped = clamped;

    if (frame.phase % _spec.decimate != 0)
        return;
    buildRow(frame);
}

void
SignalProbe::modeSwitch(uint64_t phase, Time t, HybridMode target)
{
    WaveformEvent e;
    e.kind = "mode_switch";
    e.phase = phase;
    e.t = t;
    e.detail = toString(target);
    _events.push_back(std::move(e));
    fireTrigger(ProbeTriggerSpec::On::ModeSwitch, phase);
}

Waveform
SignalProbe::take()
{
    Waveform w;
    w.signals = _signals;
    w.rows = std::move(_rows);
    w.events = std::move(_events);
    _rows.clear();
    _events.clear();
    _ring.clear();
    return w;
}

} // namespace pdnspot
