#include "obs/waveform_io.hh"

#include <istream>

#include "common/csv.hh"
#include "common/logging.hh"

namespace pdnspot
{

namespace
{

constexpr size_t fixedColumns = 4; ///< record, phase, t_s, duration_s

/** fatal() a "source:line: message" error. */
[[noreturn]] void
failAt(const std::string &source, size_t line,
       const std::string &message)
{
    fatal(strprintf("%s:%zu: %s", source.c_str(), line,
                    message.c_str()));
}

std::string
headerFor(const std::vector<ProbeSignal> &signals)
{
    std::string header = "record,phase,t_s,duration_s";
    for (ProbeSignal s : signals) {
        header += ",";
        header += toString(s);
    }
    header += ",detail";
    return header;
}

} // namespace

std::string
writeWaveformCsv(const Waveform &waveform)
{
    std::string buf = headerFor(waveform.signals);
    buf += "\n";
    for (const WaveformRow &row : waveform.rows) {
        buf += "sample,";
        buf += std::to_string(row.phase);
        buf += ",";
        buf += csvExactDouble(inSeconds(row.start));
        buf += ",";
        buf += csvExactDouble(inSeconds(row.duration));
        for (double v : row.values) {
            buf += ",";
            buf += csvExactDouble(v);
        }
        buf += ",\n"; // empty detail
    }
    for (const WaveformEvent &e : waveform.events) {
        buf += e.kind;
        buf += ",";
        buf += std::to_string(e.phase);
        buf += ",";
        buf += csvExactDouble(inSeconds(e.t));
        // Empty duration and signal fields.
        buf.append(waveform.signals.size() + 1, ',');
        buf += ",";
        buf += e.detail;
        buf += "\n";
    }
    return buf;
}

Waveform
readWaveformCsv(std::istream &is, const std::string &sourceName)
{
    std::string line;
    if (!std::getline(is, line))
        failAt(sourceName, 1, "missing waveform header");
    std::vector<std::string> head = splitCsvLine(line);
    if (head.size() < fixedColumns + 1 || head[0] != "record" ||
        head[1] != "phase" || head[2] != "t_s" ||
        head[3] != "duration_s" || head.back() != "detail") {
        failAt(sourceName, 1,
               "unrecognized waveform header (expected "
               "\"record,phase,t_s,duration_s,<signals>,detail\")");
    }

    Waveform w;
    for (size_t i = fixedColumns; i + 1 < head.size(); ++i) {
        try {
            w.signals.push_back(probeSignalFromString(head[i]));
        } catch (const ConfigError &e) {
            failAt(sourceName, 1, e.what());
        }
    }

    size_t columns = fixedColumns + w.signals.size() + 1;
    size_t lineNo = 1;
    bool sawEvent = false;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::vector<std::string> f = splitCsvLine(line);
        if (f.size() != columns)
            failAt(sourceName, lineNo,
                   strprintf("expected %zu columns, got %zu",
                             columns, f.size()));

        uint64_t phase = 0;
        try {
            phase = static_cast<uint64_t>(csvToDouble(f[1]));
        } catch (const ConfigError &e) {
            failAt(sourceName, lineNo, e.what());
        }

        if (f[0] == "sample") {
            if (sawEvent)
                failAt(sourceName, lineNo,
                       "sample row after an event row (samples "
                       "precede events)");
            WaveformRow row;
            row.phase = phase;
            try {
                row.start = seconds(csvToDouble(f[2]));
                row.duration = seconds(csvToDouble(f[3]));
                for (size_t i = 0; i < w.signals.size(); ++i)
                    row.values.push_back(
                        csvToDouble(f[fixedColumns + i]));
            } catch (const ConfigError &e) {
                failAt(sourceName, lineNo, e.what());
            }
            if (!f.back().empty())
                failAt(sourceName, lineNo,
                       "sample row with a non-empty detail field");
            w.rows.push_back(std::move(row));
        } else if (f[0] == "mode_switch" || f[0] == "budget_clip") {
            sawEvent = true;
            WaveformEvent e;
            e.kind = f[0];
            e.phase = phase;
            try {
                e.t = seconds(csvToDouble(f[2]));
            } catch (const ConfigError &err) {
                failAt(sourceName, lineNo, err.what());
            }
            for (size_t i = 3; i + 1 < f.size(); ++i) {
                if (!f[i].empty())
                    failAt(sourceName, lineNo,
                           "event row with non-empty signal fields");
            }
            e.detail = f.back();
            w.events.push_back(std::move(e));
        } else {
            failAt(sourceName, lineNo,
                   strprintf("unknown record kind \"%s\"",
                             f[0].c_str()));
        }
    }
    return w;
}

std::vector<JsonValue>
waveformCounterEvents(const Waveform &waveform)
{
    double pid = static_cast<double>(probeCounterPidBase +
                                     waveform.cellIndex);
    std::vector<JsonValue> events;
    events.reserve(1 + waveform.rows.size() * waveform.signals.size() +
                   waveform.events.size());

    {
        std::vector<JsonValue::Member> args;
        args.emplace_back(
            "name", JsonValue::makeString(
                        "probe " + waveform.trace + "/" +
                        waveform.platform + "/" + waveform.pdn + "/" +
                        waveform.mode));
        std::vector<JsonValue::Member> fields;
        fields.emplace_back("name",
                            JsonValue::makeString("process_name"));
        fields.emplace_back("ph", JsonValue::makeString("M"));
        fields.emplace_back("pid", JsonValue::makeNumber(pid));
        fields.emplace_back("tid", JsonValue::makeNumber(0.0));
        fields.emplace_back(
            "args", JsonValue::makeObject(std::move(args)));
        events.push_back(JsonValue::makeObject(std::move(fields)));
    }

    for (const WaveformRow &row : waveform.rows) {
        for (size_t i = 0; i < waveform.signals.size(); ++i) {
            std::vector<JsonValue::Member> args;
            args.emplace_back(
                "value", JsonValue::makeNumber(row.values[i]));
            std::vector<JsonValue::Member> fields;
            fields.emplace_back(
                "name", JsonValue::makeString(
                            toString(waveform.signals[i])));
            fields.emplace_back("ph", JsonValue::makeString("C"));
            fields.emplace_back(
                "ts", JsonValue::makeNumber(
                          inMicroseconds(row.start)));
            fields.emplace_back("pid", JsonValue::makeNumber(pid));
            fields.emplace_back("tid", JsonValue::makeNumber(0.0));
            fields.emplace_back(
                "args", JsonValue::makeObject(std::move(args)));
            events.push_back(
                JsonValue::makeObject(std::move(fields)));
        }
    }

    for (const WaveformEvent &e : waveform.events) {
        std::vector<JsonValue::Member> args;
        args.emplace_back("detail",
                          JsonValue::makeString(e.detail));
        std::vector<JsonValue::Member> fields;
        fields.emplace_back("name", JsonValue::makeString(e.kind));
        fields.emplace_back("ph", JsonValue::makeString("i"));
        fields.emplace_back("s", JsonValue::makeString("p"));
        fields.emplace_back(
            "ts", JsonValue::makeNumber(inMicroseconds(e.t)));
        fields.emplace_back("pid", JsonValue::makeNumber(pid));
        fields.emplace_back("tid", JsonValue::makeNumber(0.0));
        fields.emplace_back("args",
                            JsonValue::makeObject(std::move(args)));
        events.push_back(JsonValue::makeObject(std::move(fields)));
    }
    return events;
}

JsonValue
counterTrackDocument(std::vector<JsonValue> events)
{
    std::vector<JsonValue::Member> doc;
    doc.emplace_back("traceEvents",
                     JsonValue::makeArray(std::move(events)));
    doc.emplace_back("displayTimeUnit",
                     JsonValue::makeString("ms"));
    return JsonValue::makeObject(std::move(doc));
}

} // namespace pdnspot
