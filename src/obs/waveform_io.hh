/**
 * @file
 * Waveform serialization: columnar CSV with an exact read-back
 * fixpoint, and Chrome/Perfetto counter tracks.
 *
 * The CSV layout is one file per probed cell (the cell identity
 * lives in the file name, Waveform::cellName):
 *
 *   record,phase,t_s,duration_s,<signal columns...>,detail
 *   sample,0,0,0.02,14.2,12.1,...,
 *   mode_switch,37,0.74,,,,...,LDO-Mode
 *
 * "sample" rows carry one value per signal column and an empty
 * detail; event rows ("mode_switch", "budget_clip") carry empty
 * signal/duration fields and the event detail. All samples precede
 * all events. Numbers use csvExactDouble, so write -> read -> write
 * is byte-identical (the trace_io contract).
 *
 * Counter tracks reuse the trace-event JSON the span recorder
 * already emits: one "C" event per sample per signal plus an instant
 * ("i") event per waveform event, timestamped in *simulated*
 * microseconds, under a per-cell synthetic pid
 * (probeCounterPidBase + global cell index) with a process_name
 * metadata record — so waveforms from different shards, thread
 * counts, or runs concatenate without pid collisions, and simulated
 * signals render next to tool spans on one Perfetto timeline.
 */

#ifndef PDNSPOT_OBS_WAVEFORM_IO_HH
#define PDNSPOT_OBS_WAVEFORM_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "config/json.hh"
#include "obs/probe.hh"

namespace pdnspot
{

/**
 * Counter-track pids start here; adding the global campaign cell
 * index keeps them unique across shards (tool spans use the shard
 * index as pid — see SpanRecorder::TraceEventExport).
 */
inline constexpr uint64_t probeCounterPidBase = 1000000;

/** Serialize one waveform as columnar CSV (see the file comment). */
std::string writeWaveformCsv(const Waveform &waveform);

/**
 * Parse writeWaveformCsv output. `sourceName` positions error
 * messages ("file.csv:3: ..."). Cell identity is not stored in the
 * CSV; the returned waveform's trace/platform/pdn/mode are empty.
 */
Waveform readWaveformCsv(std::istream &is,
                         const std::string &sourceName);

/**
 * The waveform as Chrome trace events: a process_name "M" metadata
 * record, one "C" counter event per sample per signal, and one "i"
 * instant event per waveform event, all under the cell's synthetic
 * pid. Append these to a span recorder's export or wrap them with
 * counterTrackDocument().
 */
std::vector<JsonValue> waveformCounterEvents(const Waveform &waveform);

/** Wrap trace events as {"traceEvents": [...]} (span-export shape). */
JsonValue counterTrackDocument(std::vector<JsonValue> events);

} // namespace pdnspot

#endif // PDNSPOT_OBS_WAVEFORM_IO_HH
