#include "obs/metrics.hh"

#include <atomic>
#include <cmath>

#include "common/logging.hh"

namespace pdnspot
{

namespace
{

/**
 * Process-wide installation state. The epoch increments on every
 * install/uninstall, so a thread buffer bound to an earlier epoch
 * detects staleness with one comparison — no dangling pointer is
 * ever dereferenced, because the buffer rebinding discards stale
 * contents before touching the (new) registry.
 */
std::atomic<MetricsRegistry *> g_installed{nullptr};
std::atomic<uint64_t> g_epoch{0};

struct WellKnownDef
{
    const char *name;
    MetricKind kind;
};

constexpr std::array<WellKnownDef,
                     static_cast<size_t>(Metric::Count)>
    wellKnown{{
        {"campaign.cells", MetricKind::Counter},
        {"campaign.chunks", MetricKind::Counter},
        {"campaign.phases", MetricKind::Counter},
        {"campaign.platform_builds", MetricKind::Counter},
        {"campaign.cell_us", MetricKind::Histogram},
        {"trace.resolves", MetricKind::Counter},
        {"trace.resolve_us", MetricKind::Histogram},
        {"memo.probes", MetricKind::Counter},
        {"memo.hits", MetricKind::Counter},
        {"memo.state_builds", MetricKind::Counter},
        {"memo.pdn_evaluations", MetricKind::Counter},
        {"sim.runs_static", MetricKind::Counter},
        {"sim.runs_pmu", MetricKind::Counter},
        {"sim.runs_oracle", MetricKind::Counter},
        {"runner.jobs", MetricKind::Counter},
        {"runner.chunks_claimed", MetricKind::Counter},
        {"runner.threads", MetricKind::Gauge},
    }};

} // namespace

const char *
toString(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    panic("toString: invalid MetricKind");
}

const char *
metricName(Metric metric)
{
    return wellKnown[static_cast<size_t>(metric)].name;
}

MetricKind
metricKind(Metric metric)
{
    return wellKnown[static_cast<size_t>(metric)].kind;
}

/**
 * One thread's accumulation buffer: counter and histogram deltas
 * since the last flush, plus a copy of the id -> (kind, slot) map so
 * the hot add/observe path never takes the registry mutex. Bound to
 * one (registry, epoch) pair; a stale binding resets on next use.
 */
struct MetricsRegistry::ThreadBuffer
{
    MetricsRegistry *registry = nullptr;
    uint64_t epoch = 0;
    bool dirty = false;

    /** (kind, slot) per metric id, copied from the registry. */
    std::vector<std::pair<MetricKind, size_t>> defs;
    std::vector<uint64_t> counters;
    std::vector<HistogramCell> histograms;
};

size_t
histogramBucketIndex(double value)
{
    if (!(value >= 1.0))
        return 0;
    int exp = std::ilogb(value);
    return std::min(MetricsRegistry::histogramBuckets - 1,
                    static_cast<size_t>(exp) + 1);
}

void
histogramObserve(MetricSnapshot &snapshot, double value)
{
    snapshot.kind = MetricKind::Histogram;
    if (snapshot.count == 0) {
        snapshot.min = snapshot.max = value;
    } else {
        if (value < snapshot.min)
            snapshot.min = value;
        if (value > snapshot.max)
            snapshot.max = value;
    }
    ++snapshot.count;
    snapshot.value += value;

    size_t bucket = histogramBucketIndex(value);
    if (snapshot.buckets.size() <= bucket)
        snapshot.buckets.resize(bucket + 1, 0);
    ++snapshot.buckets[bucket];
}

void
MetricsRegistry::HistogramCell::observe(double value)
{
    if (count == 0) {
        min = max = value;
    } else {
        if (value < min)
            min = value;
        if (value > max)
            max = value;
    }
    ++count;
    sum += value;
    ++buckets[histogramBucketIndex(value)];
}

void
MetricsRegistry::HistogramCell::merge(const HistogramCell &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        if (other.min < min)
            min = other.min;
        if (other.max > max)
            max = other.max;
    }
    count += other.count;
    sum += other.sum;
    for (size_t b = 0; b < histogramBuckets; ++b)
        buckets[b] += other.buckets[b];
}

MetricsRegistry::MetricsRegistry()
{
    for (const WellKnownDef &def : wellKnown)
        registerMetric(def.name, def.kind);
}

MetricsRegistry::~MetricsRegistry()
{
    // Thread buffers never dereference a registry whose epoch they
    // were not bound under, so a registry may die while buffers
    // still name it — but dying while *installed* would leave
    // current() dangling for concurrent threads.
    if (g_installed.load(std::memory_order_relaxed) == this)
        panic("MetricsRegistry destroyed while installed");
}

size_t
MetricsRegistry::registerMetric(const std::string &name,
                                MetricKind kind)
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (size_t id = 0; id < _defs.size(); ++id) {
        if (_defs[id].name != name)
            continue;
        if (_defs[id].kind != kind)
            panic(strprintf("MetricsRegistry: metric \"%s\" "
                            "re-registered as %s (was %s)",
                            name.c_str(), toString(kind),
                            toString(_defs[id].kind)));
        return id;
    }

    MetricDef def;
    def.name = name;
    def.kind = kind;
    switch (kind) {
      case MetricKind::Counter:
        def.slot = _counters.size();
        _counters.push_back(0);
        break;
      case MetricKind::Gauge:
        def.slot = _gauges.size();
        _gauges.push_back(0.0);
        break;
      case MetricKind::Histogram:
        def.slot = _histograms.size();
        _histograms.emplace_back();
        break;
    }
    _defs.push_back(std::move(def));
    return _defs.size() - 1;
}

size_t
MetricsRegistry::metricCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _defs.size();
}

MetricsRegistry::ThreadBuffer &
MetricsRegistry::threadBuffer()
{
    thread_local ThreadBuffer buffer;
    return buffer;
}

void
MetricsRegistry::bind(ThreadBuffer &buffer, uint64_t epoch)
{
    // Stale contents belong to a detached installation (or an older
    // def map) and were either flushed already or are best-effort
    // losses; never merge them across epochs.
    buffer.registry = this;
    buffer.epoch = epoch;
    buffer.dirty = false;

    std::lock_guard<std::mutex> lock(_mutex);
    buffer.defs.clear();
    buffer.defs.reserve(_defs.size());
    for (const MetricDef &def : _defs)
        buffer.defs.emplace_back(def.kind, def.slot);
    buffer.counters.assign(_counters.size(), 0);
    buffer.histograms.assign(_histograms.size(), HistogramCell{});
}

void
MetricsRegistry::add(size_t id, uint64_t n)
{
    ThreadBuffer &buffer = threadBuffer();
    uint64_t epoch = g_epoch.load(std::memory_order_acquire);
    if (buffer.registry != this || buffer.epoch != epoch ||
        id >= buffer.defs.size())
        bind(buffer, epoch);
    if (id >= buffer.defs.size() ||
        buffer.defs[id].first != MetricKind::Counter)
        panic("MetricsRegistry::add: not a counter id");
    buffer.counters[buffer.defs[id].second] += n;
    buffer.dirty = true;
}

void
MetricsRegistry::observe(size_t id, double value)
{
    ThreadBuffer &buffer = threadBuffer();
    uint64_t epoch = g_epoch.load(std::memory_order_acquire);
    if (buffer.registry != this || buffer.epoch != epoch ||
        id >= buffer.defs.size())
        bind(buffer, epoch);
    if (id >= buffer.defs.size() ||
        buffer.defs[id].first != MetricKind::Histogram)
        panic("MetricsRegistry::observe: not a histogram id");
    buffer.histograms[buffer.defs[id].second].observe(value);
    buffer.dirty = true;
}

void
MetricsRegistry::set(size_t id, double value)
{
    // Gauges are set rarely (run shape, not per-cell activity):
    // write through so the value is visible without a flush.
    std::lock_guard<std::mutex> lock(_mutex);
    if (id >= _defs.size() || _defs[id].kind != MetricKind::Gauge)
        panic("MetricsRegistry::set: not a gauge id");
    _gauges[_defs[id].slot] = value;
}

MetricsRegistry *
MetricsRegistry::current()
{
    return g_installed.load(std::memory_order_relaxed);
}

void
MetricsRegistry::flushThread()
{
    MetricsRegistry *registry = current();
    if (!registry)
        return;
    ThreadBuffer &buffer = threadBuffer();
    if (!buffer.dirty || buffer.registry != registry ||
        buffer.epoch != g_epoch.load(std::memory_order_acquire))
        return;
    registry->mergeBuffer(buffer);
}

void
MetricsRegistry::mergeBuffer(ThreadBuffer &buffer)
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (size_t s = 0; s < buffer.counters.size(); ++s)
        _counters[s] += buffer.counters[s];
    for (size_t s = 0; s < buffer.histograms.size(); ++s)
        _histograms[s].merge(buffer.histograms[s]);
    buffer.counters.assign(buffer.counters.size(), 0);
    buffer.histograms.assign(buffer.histograms.size(),
                             HistogramCell{});
    buffer.dirty = false;
}

std::vector<MetricSnapshot>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<MetricSnapshot> out;
    out.reserve(_defs.size());
    for (const MetricDef &def : _defs) {
        MetricSnapshot s;
        s.name = def.name;
        s.kind = def.kind;
        switch (def.kind) {
          case MetricKind::Counter:
            s.count = _counters[def.slot];
            break;
          case MetricKind::Gauge:
            s.value = _gauges[def.slot];
            break;
          case MetricKind::Histogram: {
            const HistogramCell &h = _histograms[def.slot];
            s.count = h.count;
            s.value = h.sum;
            s.min = h.min;
            s.max = h.max;
            size_t last = histogramBuckets;
            while (last > 0 && h.buckets[last - 1] == 0)
                --last;
            s.buckets.assign(h.buckets.begin(),
                             h.buckets.begin() +
                                 static_cast<ptrdiff_t>(last));
            break;
          }
        }
        out.push_back(std::move(s));
    }
    return out;
}

double
histogramQuantile(const MetricSnapshot &snapshot, double q)
{
    if (snapshot.kind != MetricKind::Histogram ||
        snapshot.count == 0 || snapshot.buckets.empty())
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;

    double target = q * static_cast<double>(snapshot.count);
    uint64_t cumulative = 0;
    for (size_t b = 0; b < snapshot.buckets.size(); ++b) {
        uint64_t n = snapshot.buckets[b];
        if (n == 0)
            continue;
        if (static_cast<double>(cumulative + n) < target) {
            cumulative += n;
            continue;
        }
        double lo = b == 0 ? snapshot.min
                           : std::ldexp(1.0, static_cast<int>(b) - 1);
        double hi = b == 0 ? 1.0
                           : std::ldexp(1.0, static_cast<int>(b));
        double frac = (target - static_cast<double>(cumulative)) /
                      static_cast<double>(n);
        double value = lo + frac * (hi - lo);
        if (value < snapshot.min)
            return snapshot.min;
        if (value > snapshot.max)
            return snapshot.max;
        return value;
    }
    return snapshot.max;
}

uint64_t
MetricsRegistry::counterValue(size_t id) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (id >= _defs.size() || _defs[id].kind != MetricKind::Counter)
        panic("MetricsRegistry::counterValue: not a counter id");
    return _counters[_defs[id].slot];
}

MetricsInstallation::MetricsInstallation(MetricsRegistry &registry)
    : _previous(g_installed.load(std::memory_order_relaxed))
{
    g_installed.store(&registry, std::memory_order_relaxed);
    _epoch = g_epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
}

MetricsInstallation::~MetricsInstallation()
{
    g_installed.store(_previous, std::memory_order_relaxed);
    g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

} // namespace pdnspot
