#include "obs/span_trace.hh"

#include <atomic>
#include <unistd.h>

#include "common/logging.hh"

namespace pdnspot
{

namespace
{

/**
 * Installation state, same idiom as obs/metrics.cc: the epoch
 * increments on every install/uninstall so a thread's cached log
 * pointer detects staleness with one comparison and never aliases a
 * recorder reallocated at the same address.
 */
std::atomic<SpanRecorder *> g_installed{nullptr};
std::atomic<uint64_t> g_epoch{0};

struct ThreadSlot
{
    SpanRecorder *recorder = nullptr;
    uint64_t epoch = 0;
    void *log = nullptr;
};

ThreadSlot &
threadSlot()
{
    thread_local ThreadSlot slot;
    return slot;
}

} // namespace

SpanRecorder::SpanRecorder(size_t eventsPerThread)
    : _origin(std::chrono::steady_clock::now()),
      _eventsPerThread(eventsPerThread)
{
    if (eventsPerThread < 2)
        panic("SpanRecorder: eventsPerThread must be >= 2");
}

SpanRecorder::~SpanRecorder()
{
    if (g_installed.load(std::memory_order_relaxed) == this)
        panic("SpanRecorder destroyed while installed");
}

SpanRecorder *
SpanRecorder::current()
{
    return g_installed.load(std::memory_order_relaxed);
}

SpanRecorder::ThreadLog &
SpanRecorder::threadLog()
{
    ThreadSlot &slot = threadSlot();
    uint64_t epoch = g_epoch.load(std::memory_order_acquire);
    if (slot.recorder != this || slot.epoch != epoch) {
        std::lock_guard<std::mutex> lock(_mutex);
        auto log = std::make_unique<ThreadLog>();
        log->tid = static_cast<int>(_logs.size()) + 1;
        log->events.reserve(_eventsPerThread);
        slot.log = log.get();
        slot.recorder = this;
        slot.epoch = epoch;
        _logs.push_back(std::move(log));
    }
    return *static_cast<ThreadLog *>(slot.log);
}

double
SpanRecorder::nowMicros() const
{
    std::chrono::duration<double, std::micro> since =
        std::chrono::steady_clock::now() - _origin;
    return since.count();
}

void
SpanRecorder::begin(const char *name, const char *category)
{
    ThreadLog &log = threadLog();
    // Admitting a begin reserves the slot for its end (`open` counts
    // outstanding reservations), so ends always fit and the stream
    // stays balanced; a full buffer drops the whole span instead.
    if (log.events.size() + log.open + 2 > _eventsPerThread) {
        ++log.dropDepth;
        ++log.dropped;
        return;
    }
    log.events.push_back(Event{name, category, nowMicros(), 'B'});
    ++log.open;
}

void
SpanRecorder::end()
{
    ThreadLog &log = threadLog();
    if (log.dropDepth > 0) {
        --log.dropDepth;
        return;
    }
    if (log.open == 0)
        return; // unmatched end (begin predates this installation)
    log.events.push_back(
        Event{nullptr, nullptr, nowMicros(), 'E'});
    --log.open;
}

size_t
SpanRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    size_t n = 0;
    for (const auto &log : _logs)
        n += log->events.size();
    return n;
}

uint64_t
SpanRecorder::droppedSpans() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    uint64_t n = 0;
    for (const auto &log : _logs)
        n += log->dropped;
    return n;
}

JsonValue
SpanRecorder::traceEventsJson() const
{
    TraceEventExport unstamped;
    unstamped.shardIndex = static_cast<size_t>(getpid());
    unstamped.processName.clear();
    return traceEventsJson(unstamped);
}

JsonValue
SpanRecorder::traceEventsJson(const TraceEventExport &options) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    double pid = static_cast<double>(options.shardIndex);

    std::vector<JsonValue> events;
    if (!options.processName.empty()) {
        std::string label = options.processName;
        if (options.shardCount > 1)
            label += strprintf(" shard %zu/%zu", options.shardIndex,
                               options.shardCount);
        std::vector<JsonValue::Member> args;
        args.emplace_back("name",
                          JsonValue::makeString(std::move(label)));
        std::vector<JsonValue::Member> fields;
        fields.emplace_back(
            "name", JsonValue::makeString("process_name"));
        fields.emplace_back("ph", JsonValue::makeString("M"));
        fields.emplace_back("pid", JsonValue::makeNumber(pid));
        fields.emplace_back("tid", JsonValue::makeNumber(0.0));
        fields.emplace_back(
            "args", JsonValue::makeObject(std::move(args)));
        events.push_back(JsonValue::makeObject(std::move(fields)));
    }
    for (const auto &log : _logs) {
        // A span still open at serialization time (its scope is
        // live) would unbalance the stream; skip exactly those
        // begins. Ends always close the innermost open begin, so the
        // unmatched ones are whatever is left on the stack.
        std::vector<size_t> stack;
        std::vector<bool> skip(log->events.size(), false);
        for (size_t i = 0; i < log->events.size(); ++i) {
            if (log->events[i].phase == 'B')
                stack.push_back(i);
            else
                stack.pop_back();
        }
        for (size_t i : stack)
            skip[i] = true;
        for (size_t i = 0; i < log->events.size(); ++i) {
            if (skip[i])
                continue;
            const Event &e = log->events[i];
            std::vector<JsonValue::Member> fields;
            if (e.phase == 'B') {
                fields.emplace_back(
                    "name", JsonValue::makeString(e.name));
                fields.emplace_back(
                    "cat", JsonValue::makeString(e.category));
            }
            fields.emplace_back(
                "ph", JsonValue::makeString(
                          std::string(1, e.phase)));
            fields.emplace_back(
                "ts", JsonValue::makeNumber(e.tsMicros));
            fields.emplace_back("pid", JsonValue::makeNumber(pid));
            fields.emplace_back(
                "tid", JsonValue::makeNumber(
                           static_cast<double>(log->tid)));
            events.push_back(
                JsonValue::makeObject(std::move(fields)));
        }
    }

    for (const JsonValue &extra : options.extraEvents)
        events.push_back(extra);

    std::vector<JsonValue::Member> doc;
    doc.emplace_back("traceEvents",
                     JsonValue::makeArray(std::move(events)));
    doc.emplace_back("displayTimeUnit",
                     JsonValue::makeString("ms"));
    return JsonValue::makeObject(std::move(doc));
}

std::string
SpanRecorder::writeTraceEvents() const
{
    return writeJson(traceEventsJson());
}

SpanInstallation::SpanInstallation(SpanRecorder &recorder)
    : _previous(g_installed.load(std::memory_order_relaxed))
{
    g_installed.store(&recorder, std::memory_order_relaxed);
    g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

SpanInstallation::~SpanInstallation()
{
    g_installed.store(_previous, std::memory_order_relaxed);
    g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

} // namespace pdnspot
