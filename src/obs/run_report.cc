#include "obs/run_report.hh"

#include <cstdlib>
#include <unistd.h>

#include "common/logging.hh"
#include "common/units.hh"

namespace pdnspot
{

std::string
gitRevision()
{
    // Runtime env wins (the bench-JSON convention: CI stamps the rev
    // it checked out), then the configure-time stamp.
    if (const char *env = std::getenv("PDNSPOT_GIT_REV");
        env && *env)
        return env;
#ifdef PDNSPOT_BUILD_GIT_REV
    return PDNSPOT_BUILD_GIT_REV;
#else
    return "unknown";
#endif
}

std::string
toolVersion()
{
#ifdef PDNSPOT_VERSION
    return PDNSPOT_VERSION;
#else
    return "0.0.0";
#endif
}

std::string
hostName()
{
    char buf[256];
    if (gethostname(buf, sizeof(buf)) != 0)
        return "unknown";
    buf[sizeof(buf) - 1] = '\0';
    return buf;
}

std::string
fnv1a64Hex(const std::string &text)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    char out[17];
    static const char digits[] = "0123456789abcdef";
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[hash & 0xf];
        hash >>= 4;
    }
    out[16] = '\0';
    return out;
}

namespace
{

using Member = JsonValue::Member;

JsonValue
num(double v)
{
    return JsonValue::makeNumber(v);
}

JsonValue
num(uint64_t v)
{
    return JsonValue::makeNumber(static_cast<double>(v));
}

JsonValue
str(std::string v)
{
    return JsonValue::makeString(std::move(v));
}

JsonValue
metricJson(const MetricSnapshot &m)
{
    std::vector<Member> fields;
    fields.emplace_back("name", str(m.name));
    fields.emplace_back("kind", str(toString(m.kind)));
    switch (m.kind) {
      case MetricKind::Counter:
        fields.emplace_back("count", num(m.count));
        break;
      case MetricKind::Gauge:
        fields.emplace_back("value", num(m.value));
        break;
      case MetricKind::Histogram: {
        fields.emplace_back("count", num(m.count));
        fields.emplace_back("sum", num(m.value));
        fields.emplace_back("min", num(m.min));
        fields.emplace_back("max", num(m.max));
        fields.emplace_back("p50", num(histogramQuantile(m, 0.50)));
        fields.emplace_back("p95", num(histogramQuantile(m, 0.95)));
        fields.emplace_back("p99", num(histogramQuantile(m, 0.99)));
        std::vector<JsonValue> buckets;
        buckets.reserve(m.buckets.size());
        for (uint64_t b : m.buckets)
            buckets.push_back(num(b));
        fields.emplace_back(
            "buckets", JsonValue::makeArray(std::move(buckets)));
        break;
      }
    }
    return JsonValue::makeObject(std::move(fields));
}

JsonValue
summaryJson(const CampaignPdnSummary &s)
{
    std::vector<Member> fields;
    fields.emplace_back("pdn", str(pdnKindToString(s.pdn)));
    fields.emplace_back("cells", num(s.cells));
    fields.emplace_back("supply_energy_j",
                        num(inJoules(s.supplyEnergy)));
    fields.emplace_back("nominal_energy_j",
                        num(inJoules(s.nominalEnergy)));
    fields.emplace_back("mean_etee", num(s.meanEtee()));
    fields.emplace_back("mode_switches", num(s.modeSwitches));
    fields.emplace_back("mean_power_w",
                        num(inWatts(s.meanAveragePower)));
    fields.emplace_back("battery_life_h", num(s.batteryLifeHours));
    return JsonValue::makeObject(std::move(fields));
}

} // namespace

JsonValue
buildRunReport(const RunReportInputs &in)
{
    std::vector<Member> doc;
    doc.emplace_back("schema", str(runReportSchema));

    std::vector<Member> tool;
    tool.emplace_back("name", str(in.toolName));
    tool.emplace_back("version", str(toolVersion()));
    tool.emplace_back("git_rev", str(gitRevision()));
    doc.emplace_back("tool", JsonValue::makeObject(std::move(tool)));

    doc.emplace_back("host", str(hostName()));
    doc.emplace_back("wall_time_s", num(in.wallSeconds));

    std::vector<Member> run;
    run.emplace_back("threads", num(size_t{in.threads}));
    run.emplace_back("shard_index", num(in.shardIndex));
    run.emplace_back("shard_count", num(in.shardCount));
    run.emplace_back("first_cell", num(in.firstCell));
    run.emplace_back("end_cell", num(in.endCell));
    run.emplace_back("rows", num(in.rows));
    run.emplace_back("memo", JsonValue::makeBool(in.memoize));
    doc.emplace_back("run", JsonValue::makeObject(std::move(run)));

    std::vector<Member> spec;
    spec.emplace_back("path", str(in.specPath));
    spec.emplace_back("content_hash",
                      str("fnv1a64:" + fnv1a64Hex(in.specText)));
    spec.emplace_back("echo", in.specEcho);
    doc.emplace_back("spec", JsonValue::makeObject(std::move(spec)));

    if (in.spec) {
        std::vector<JsonValue> traces;
        traces.reserve(in.spec->traces.size());
        for (const TraceSpec &t : in.spec->traces) {
            std::vector<Member> fields;
            fields.emplace_back("name", str(t.name()));
            fields.emplace_back("provenance", str(t.describe()));
            traces.push_back(
                JsonValue::makeObject(std::move(fields)));
        }
        doc.emplace_back("traces",
                         JsonValue::makeArray(std::move(traces)));
    }

    if (in.metrics) {
        std::vector<JsonValue> metrics;
        for (const MetricSnapshot &m : in.metrics->snapshot())
            metrics.push_back(metricJson(m));
        doc.emplace_back("metrics",
                         JsonValue::makeArray(std::move(metrics)));
    }

    if (!in.summaries.empty()) {
        std::vector<Member> block;
        block.emplace_back("battery_wh", num(in.batteryWh));
        std::vector<JsonValue> per;
        per.reserve(in.summaries.size());
        for (const CampaignPdnSummary &s : in.summaries)
            per.push_back(summaryJson(s));
        block.emplace_back("per_pdn",
                           JsonValue::makeArray(std::move(per)));
        doc.emplace_back("summaries",
                         JsonValue::makeObject(std::move(block)));
    }

    for (const Member &m : in.extra)
        doc.push_back(m);

    return JsonValue::makeObject(std::move(doc));
}

namespace
{

/** Typed member reads with defaults for absent/mistyped values. */
std::string
memberString(const JsonValue *obj, const char *key,
             const std::string &fallback = "")
{
    if (!obj)
        return fallback;
    const JsonValue *v = obj->find(key);
    if (!v || v->kind() != JsonValue::Kind::String)
        return fallback;
    return v->asString();
}

double
memberNumber(const JsonValue *obj, const char *key,
             double fallback = 0.0)
{
    if (!obj)
        return fallback;
    const JsonValue *v = obj->find(key);
    if (!v || v->kind() != JsonValue::Kind::Number)
        return fallback;
    return v->asNumber();
}

uint64_t
memberCount(const JsonValue *obj, const char *key,
            uint64_t fallback = 0)
{
    double v = memberNumber(obj, key,
                            static_cast<double>(fallback));
    if (!(v >= 0.0))
        return fallback;
    return static_cast<uint64_t>(v);
}

} // namespace

RunReportView
viewRunReport(const JsonValue &report)
{
    if (report.kind() != JsonValue::Kind::Object)
        fatal("run report is not a JSON object");
    const JsonValue *schema = report.find("schema");
    if (!schema || schema->kind() != JsonValue::Kind::String ||
        schema->asString() != runReportSchema)
        fatal(strprintf("not a %s document (schema member missing "
                        "or mismatched)",
                        runReportSchema));

    RunReportView view;
    const JsonValue *tool = report.find("tool");
    view.tool = memberString(tool, "name");
    view.version = memberString(tool, "version");
    view.gitRev = memberString(tool, "git_rev");
    view.host = memberString(&report, "host");
    view.wallSeconds = memberNumber(&report, "wall_time_s");

    const JsonValue *run = report.find("run");
    view.threads = static_cast<unsigned>(
        memberCount(run, "threads", 1));
    view.shardIndex = memberCount(run, "shard_index", 1);
    view.shardCount = memberCount(run, "shard_count", 1);
    view.firstCell = memberCount(run, "first_cell");
    view.endCell = memberCount(run, "end_cell");
    view.rows = memberCount(run, "rows");
    if (run) {
        if (const JsonValue *memo = run->find("memo");
            memo && memo->kind() == JsonValue::Kind::Bool)
            view.memo = memo->asBool();
    }

    const JsonValue *spec = report.find("spec");
    view.specPath = memberString(spec, "path");
    view.specHash = memberString(spec, "content_hash");

    if (const JsonValue *traces = report.find("traces");
        traces && traces->kind() == JsonValue::Kind::Array) {
        for (const JsonValue &t : traces->items()) {
            if (t.kind() != JsonValue::Kind::Object)
                continue;
            view.traceNames.push_back(memberString(&t, "name"));
            view.traceProvenance.push_back(
                memberString(&t, "provenance"));
        }
    }

    const JsonValue *echo = spec ? spec->find("echo") : nullptr;
    const JsonValue *platforms =
        echo && echo->kind() == JsonValue::Kind::Object
            ? echo->find("platforms")
            : nullptr;
    if (platforms && platforms->kind() == JsonValue::Kind::Array) {
        for (const JsonValue &p : platforms->items()) {
            if (p.kind() == JsonValue::Kind::String)
                view.platforms.push_back(p.asString());
            else if (p.kind() == JsonValue::Kind::Object) {
                std::string name = memberString(&p, "name");
                if (name.empty())
                    name = memberString(&p, "preset");
                if (!name.empty())
                    view.platforms.push_back(std::move(name));
            }
        }
    }

    if (const JsonValue *block = report.find("summaries");
        block && block->kind() == JsonValue::Kind::Object) {
        view.batteryWh = memberNumber(block, "battery_wh");
        const JsonValue *per = block->find("per_pdn");
        if (per && per->kind() == JsonValue::Kind::Array) {
            for (const JsonValue &s : per->items()) {
                if (s.kind() != JsonValue::Kind::Object)
                    continue;
                RunReportView::Summary row;
                row.pdn = memberString(&s, "pdn");
                row.cells = memberCount(&s, "cells");
                row.supplyEnergyJ =
                    memberNumber(&s, "supply_energy_j");
                row.meanEtee = memberNumber(&s, "mean_etee");
                row.modeSwitches = memberCount(&s, "mode_switches");
                row.meanPowerW = memberNumber(&s, "mean_power_w");
                row.batteryLifeHours =
                    memberNumber(&s, "battery_life_h");
                view.summaries.push_back(std::move(row));
            }
        }
    }
    return view;
}

namespace
{

/** Replace object member `key` (if present) with `value`. */
JsonValue
withMember(const JsonValue &object, const std::string &key,
           JsonValue value)
{
    std::vector<Member> out;
    for (const Member &m : object.members()) {
        if (m.first == key)
            out.emplace_back(m.first, std::move(value));
        else
            out.push_back(m);
    }
    return JsonValue::makeObject(std::move(out));
}

JsonValue
canonicalMetric(const JsonValue &metric)
{
    const JsonValue *kind = metric.find("kind");
    if (!kind || kind->asString() != "histogram")
        return metric;
    JsonValue out = metric;
    out = withMember(out, "sum", JsonValue::makeNumber(0.0));
    out = withMember(out, "min", JsonValue::makeNumber(0.0));
    out = withMember(out, "max", JsonValue::makeNumber(0.0));
    out = withMember(out, "p50", JsonValue::makeNumber(0.0));
    out = withMember(out, "p95", JsonValue::makeNumber(0.0));
    out = withMember(out, "p99", JsonValue::makeNumber(0.0));
    out = withMember(out, "buckets", JsonValue::makeArray({}));
    return out;
}

} // namespace

JsonValue
canonicalizeRunReport(const JsonValue &report)
{
    JsonValue out = report;
    out = withMember(out, "host", JsonValue::makeString("HOST"));
    out = withMember(out, "wall_time_s",
                     JsonValue::makeNumber(0.0));

    if (const JsonValue *tool = report.find("tool")) {
        JsonValue t = *tool;
        t = withMember(t, "version",
                       JsonValue::makeString("VERSION"));
        t = withMember(t, "git_rev",
                       JsonValue::makeString("GITREV"));
        out = withMember(out, "tool", std::move(t));
    }

    if (const JsonValue *spec = report.find("spec"))
        out = withMember(
            out, "spec",
            withMember(*spec, "path",
                       JsonValue::makeString("SPEC")));

    if (const JsonValue *metrics = report.find("metrics")) {
        std::vector<JsonValue> canon;
        canon.reserve(metrics->items().size());
        for (const JsonValue &m : metrics->items())
            canon.push_back(canonicalMetric(m));
        out = withMember(out, "metrics",
                         JsonValue::makeArray(std::move(canon)));
    }

    return out;
}

} // namespace pdnspot
