/**
 * @file
 * Provenance-stamped campaign run reports (schema pdnspot-report-1).
 *
 * A run report is the machine-readable record of one
 * pdnspot_campaign invocation: what was run (spec echo + content
 * hash, trace provenance, shard k/n, thread count, memo setting),
 * with what build (tool version, git revision, host), what happened
 * (wall time, row count, the full metric snapshot from
 * obs/metrics.hh), and what came out (per-PDN summaries). This is
 * exactly the record the ROADMAP's indexed result archive ingests —
 * keying runs by provenance makes cross-study queries a lookup, not
 * a directory crawl.
 *
 * The schema is versioned like pdnspot-bench-1 (src/bench/
 * trajectory.hh): consumers check the "schema" member and reject
 * documents they do not understand. Histogram metrics serialize
 * count/sum/min/max, the log2 bucket counts, and p50/p95/p99
 * percentile estimates (histogramQuantile — bucket-interpolated, so
 * order-of-magnitude resolution, same numbers --summary prints).
 *
 * canonicalizeRunReport() rewrites the volatile members (wall time,
 * git rev, host, durations) to fixed placeholders so golden-file
 * tests can byte-diff everything else.
 */

#ifndef PDNSPOT_OBS_RUN_REPORT_HH
#define PDNSPOT_OBS_RUN_REPORT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/campaign_result.hh"
#include "config/json.hh"
#include "obs/metrics.hh"

namespace pdnspot
{

/** Current run-report schema name. */
inline constexpr const char *runReportSchema = "pdnspot-report-1";

/**
 * Build stamp: the PDNSPOT_GIT_REV environment variable when set
 * (the bench-JSON convention, bench/bench_util.hh), else the
 * revision baked in at configure time, else "unknown".
 */
std::string gitRevision();

/** Project version baked in at configure time ("0.1.0"). */
std::string toolVersion();

/** gethostname(), or "unknown" if the call fails. */
std::string hostName();

/**
 * FNV-1a 64-bit hash of `text` as 16 lowercase hex digits — the
 * spec content hash. Stable across platforms; collision-resistance
 * is not a goal (this keys an archive, it does not authenticate).
 */
std::string fnv1a64Hex(const std::string &text);

/** Everything one tool run feeds into its report. */
struct RunReportInputs
{
    /** Emitting binary's name (the "tool.name" member). */
    std::string toolName = "pdnspot_campaign";

    std::string specPath;  ///< as given on the command line
    std::string specText;  ///< raw spec file bytes (hashed)
    JsonValue specEcho;    ///< parsed spec document

    const CampaignSpec *spec = nullptr; ///< for trace provenance

    unsigned threads = 1;
    size_t shardIndex = 1;
    size_t shardCount = 1;
    size_t firstCell = 0;
    size_t endCell = 0;
    bool memoize = true;

    double wallSeconds = 0.0;
    size_t rows = 0;

    /** Summary block; empty vector => member omitted. */
    std::vector<CampaignPdnSummary> summaries;
    double batteryWh = 0.0;

    const MetricsRegistry *metrics = nullptr;

    /**
     * Tool-specific top-level members appended after the standard
     * ones (e.g. pdnspot_fleet's "fleet" aggregate block). Pass
     * through canonicalizeRunReport unchanged.
     */
    std::vector<JsonValue::Member> extra;
};

/** Assemble the pdnspot-report-1 document. */
JsonValue buildRunReport(const RunReportInputs &inputs);

/**
 * The archive-facing projection of one pdnspot-report-1 document:
 * every field the result archive (src/store/result_archive.hh) keys
 * or filters on, pulled out of the JSON with defaults for absent
 * optional members. This is the read-side contract of the schema —
 * the writer above and this view are maintained together.
 */
struct RunReportView
{
    std::string tool;    ///< tool.name
    std::string version; ///< tool.version
    std::string gitRev;  ///< tool.git_rev
    std::string host;
    double wallSeconds = 0.0;

    unsigned threads = 1;
    size_t shardIndex = 1;
    size_t shardCount = 1;
    size_t firstCell = 0;
    size_t endCell = 0;
    size_t rows = 0;
    bool memo = true;

    std::string specPath;
    std::string specHash; ///< "fnv1a64:<16 hex>" as stamped

    /** Per-trace name + provenance description, in spec order. */
    std::vector<std::string> traceNames;
    std::vector<std::string> traceProvenance;

    /**
     * Platform names from the spec echo's "platforms" axis: preset
     * strings verbatim, inline objects by their "name" (or "preset")
     * member. Best-effort — echoes of hand-built specs may yield
     * fewer names than platforms.
     */
    std::vector<std::string> platforms;

    /** One per-PDN summary row (the report's "summaries.per_pdn"). */
    struct Summary
    {
        std::string pdn;
        uint64_t cells = 0;
        double supplyEnergyJ = 0.0;
        double meanEtee = 0.0;
        uint64_t modeSwitches = 0;
        double meanPowerW = 0.0;
        double batteryLifeHours = 0.0;
    };
    std::vector<Summary> summaries;
    double batteryWh = 0.0;
};

/**
 * Extract the archive-facing view. fatal() (ConfigError) when the
 * document is not a pdnspot-report-1 object — the schema member is
 * the consumer contract; everything else degrades to defaults.
 */
RunReportView viewRunReport(const JsonValue &report);

/**
 * The golden-file projection: tool.version -> "VERSION",
 * tool.git_rev -> "GITREV", host -> "HOST", wall_time_s -> 0,
 * spec.path -> "SPEC", and every histogram metric's
 * value/min/max/p50/p95/p99 zeroed with its buckets emptied (sample
 * *counts* are deterministic at one thread; durations are not).
 * Unknown members pass through unchanged.
 */
JsonValue canonicalizeRunReport(const JsonValue &report);

} // namespace pdnspot

#endif // PDNSPOT_OBS_RUN_REPORT_HH
