/**
 * @file
 * MetricsRegistry: a registry of named counters, gauges and
 * histograms — the campaign observability substrate.
 *
 * The campaign engine, interval simulator, EteeMemo, ParallelRunner
 * and TraceSpec resolution all report into one registry through
 * thread-local accumulation buffers that merge at chunk boundaries
 * (the same seen-cursor idiom CampaignRunStats introduced), so hot
 * paths never contend on shared counters. CampaignRunStats is now a
 * thin snapshot view over the well-known campaign metrics
 * (campaignStatsSnapshot in campaign_engine.hh), and the run report
 * (obs/run_report.hh) serializes the full snapshot.
 *
 * Zero-overhead-when-disabled contract: instrumentation sites call
 * the metricAdd/metricSet/metricObserve helpers, which reduce to one
 * relaxed atomic load and a branch while no registry is installed —
 * and instrumentation is purely observational either way, so
 * campaign results are bit-identical with metrics on or off.
 *
 * Installation is process-wide (MetricsInstallation): one campaign
 * at a time is the supported shape. Installing a second registry
 * retargets new increments at it; the previous registry keeps the
 * totals merged so far.
 */

#ifndef PDNSPOT_OBS_METRICS_HH
#define PDNSPOT_OBS_METRICS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pdnspot
{

/** The three metric shapes a registry aggregates. */
enum class MetricKind
{
    Counter,   ///< monotonically increasing uint64 sum
    Gauge,     ///< last-set double value
    Histogram, ///< log2-bucketed double samples + count/sum/min/max
};

const char *toString(MetricKind kind);

/**
 * The metrics the instrumented subsystems report, pre-registered in
 * every registry in this order (so the enum value is the metric id).
 * Naming convention: "<subsystem>.<metric>", lowercase snake case,
 * with time-valued histograms suffixed "_us" (see the README's
 * Observability section).
 */
enum class Metric : size_t
{
    CampaignCells,          ///< counter: cells simulated
    CampaignChunks,         ///< counter: engine chunks completed
    CampaignPhases,         ///< counter: trace phases stepped
    CampaignPlatformBuilds, ///< counter: worker Platform rebuilds
    CampaignCellMicros,     ///< histogram: per-cell simulation time
    TraceResolves,          ///< counter: TraceSpec::resolve calls
    TraceResolveMicros,     ///< histogram: per-resolve time
    MemoProbes,             ///< counter: EteeMemo lookups
    MemoHits,               ///< counter: EteeMemo hits
    MemoStateBuilds,        ///< counter: operating-point builds
    MemoPdnEvaluations,     ///< counter: PDN evaluations
    SimRunsStatic,          ///< counter: static simulator runs
    SimRunsPmu,             ///< counter: PMU-controlled runs
    SimRunsOracle,          ///< counter: oracle runs
    RunnerJobs,             ///< counter: ParallelRunner jobs
    RunnerChunksClaimed,    ///< counter: chunked range claims
    RunnerThreads,          ///< gauge: pool width of the last run

    Count, ///< number of well-known metrics (not a metric)
};

/** Schema name of a well-known metric ("campaign.cells", ...). */
const char *metricName(Metric metric);

/** Kind of a well-known metric. */
MetricKind metricKind(Metric metric);

/** One metric's aggregated value, as projected by snapshot(). */
struct MetricSnapshot
{
    std::string name;
    MetricKind kind = MetricKind::Counter;

    uint64_t count = 0; ///< counter value / histogram sample count
    double value = 0.0; ///< gauge value / histogram sum

    /** Histogram shape; empty for counters and gauges. */
    double min = 0.0;
    double max = 0.0;
    std::vector<uint64_t> buckets; ///< log2 buckets, trailing-trimmed

    bool operator==(const MetricSnapshot &) const = default;
};

/**
 * Quantile estimate (q clamped to [0, 1]) from a histogram
 * snapshot's log2 buckets: the bucket containing the q-th sample is
 * located by cumulative count, then the value is linearly
 * interpolated across the bucket's value span (bucket 0 spans
 * [min, 1), bucket i spans [2^(i-1), 2^i)) and clamped to
 * [min, max]. Resolution is therefore one log2 bucket — good enough
 * for the order-of-magnitude tail latencies the run report and
 * --summary print as p50/p95/p99. Returns 0.0 for empty histograms
 * and non-histogram snapshots.
 */
double histogramQuantile(const MetricSnapshot &snapshot, double q);

/**
 * Log2 bucket index for a histogram sample: bucket 0 holds values
 * below 1.0, bucket i covers [2^(i-1), 2^i), the last bucket is
 * open-ended. This is the exact bucketing the registry applies, so
 * standalone snapshots built with histogramObserve interoperate with
 * histogramQuantile and the run-report serialization.
 */
size_t histogramBucketIndex(double value);

/**
 * Accumulate one sample into a standalone histogram snapshot:
 * count/sum/min/max plus the log2 bucket counts, matching what a
 * registry-held histogram would produce for the same samples. Lets
 * subsystems (the fleet aggregator's battery-life distributions)
 * build distribution snapshots outside a registry and still print
 * them via histogramQuantile. Sets the snapshot's kind to Histogram
 * and grows its buckets vector as needed (trailing zero buckets stay
 * trimmed, matching MetricsRegistry::snapshot()).
 */
void histogramObserve(MetricSnapshot &snapshot, double value);

/**
 * A registry instance. The well-known Metric enum is pre-registered;
 * further metrics can be registered by name at any time (ids are
 * dense and stable for the registry's lifetime). Thread-side
 * mutation goes through per-thread buffers; snapshot() sees
 * everything merged by the most recent flush of each thread
 * (flushThread — the engine flushes at chunk boundaries and the
 * ParallelRunner after every drain, so a joined run is fully
 * merged).
 */
class MetricsRegistry
{
  public:
    /** Log2 histogram buckets: bucket 0 is (-inf, 1), bucket i
     * covers [2^(i-1), 2^i), the last bucket is open-ended. */
    static constexpr size_t histogramBuckets = 48;

    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Register a metric (or fetch the id it already has). Re-using a
     * name with a different kind is a caller bug and panics.
     */
    size_t registerMetric(const std::string &name, MetricKind kind);

    size_t metricCount() const;

    /** Thread-side ops, accumulated in this thread's buffer. */
    void add(size_t id, uint64_t n = 1);
    void observe(size_t id, double value);

    /** Gauges write through immediately (no buffering). */
    void set(size_t id, double value);

    /**
     * The installed registry, or nullptr when metrics collection is
     * off. One relaxed atomic load — the disabled fast path.
     */
    static MetricsRegistry *current();

    /**
     * Merge the calling thread's buffer into the installed registry
     * and reset it. A no-op when no registry is installed or the
     * buffer is empty. Instrumented subsystems call this at their
     * natural merge points (chunk boundaries, job drains).
     */
    static void flushThread();

    /**
     * Everything merged so far, in registration order (well-known
     * metrics first). Call after the producing threads have joined
     * or flushed; concurrent flushes are safe but make the snapshot
     * a point-in-time cut.
     */
    std::vector<MetricSnapshot> snapshot() const;

    /** One counter's merged value; fatal() unless id is a counter. */
    uint64_t counterValue(size_t id) const;
    uint64_t counterValue(Metric m) const
    {
        return counterValue(static_cast<size_t>(m));
    }

  private:
    friend class MetricsInstallation;
    struct ThreadBuffer;

    struct MetricDef
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        size_t slot = 0; ///< dense per-kind storage index
    };

    struct HistogramCell
    {
        uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        std::array<uint64_t, histogramBuckets> buckets{};

        void observe(double value);
        void merge(const HistogramCell &other);
    };

    static ThreadBuffer &threadBuffer();
    void bind(ThreadBuffer &buffer, uint64_t epoch);
    void mergeBuffer(ThreadBuffer &buffer);

    mutable std::mutex _mutex;
    std::vector<MetricDef> _defs;
    std::vector<uint64_t> _counters;
    std::vector<double> _gauges;
    std::vector<HistogramCell> _histograms;
};

/**
 * RAII process-wide installation: while alive, current() returns the
 * registry and instrumentation is live. Destruction (or a newer
 * installation) detaches it; thread buffers bound to a detached
 * epoch are discarded on their next use, so flush everything that
 * matters (join the run) before uninstalling.
 */
class MetricsInstallation
{
  public:
    explicit MetricsInstallation(MetricsRegistry &registry);
    ~MetricsInstallation();

    MetricsInstallation(const MetricsInstallation &) = delete;
    MetricsInstallation &operator=(const MetricsInstallation &) =
        delete;

  private:
    MetricsRegistry *_previous;
    uint64_t _epoch;
};

/** Instrumentation-site helpers: no-ops while no registry is
 * installed (one relaxed load + branch). */
inline void
metricAdd(Metric m, uint64_t n = 1)
{
    if (MetricsRegistry *r = MetricsRegistry::current())
        r->add(static_cast<size_t>(m), n);
}

inline void
metricObserve(Metric m, double value)
{
    if (MetricsRegistry *r = MetricsRegistry::current())
        r->observe(static_cast<size_t>(m), value);
}

inline void
metricSet(Metric m, double value)
{
    if (MetricsRegistry *r = MetricsRegistry::current())
        r->set(static_cast<size_t>(m), value);
}

} // namespace pdnspot

#endif // PDNSPOT_OBS_METRICS_HH
