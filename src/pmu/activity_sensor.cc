#include "pmu/activity_sensor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pdnspot
{

ActivitySensor::ActivitySensor(uint64_t seed, double alpha,
                               double noise_amplitude)
    : _noise(seed), _alpha(alpha), _noiseAmplitude(noise_amplitude)
{
    if (alpha <= 0.0 || alpha > 1.0)
        fatal("ActivitySensor: alpha must be in (0, 1]");
    if (noise_amplitude < 0.0 || noise_amplitude >= 0.5)
        fatal("ActivitySensor: noise amplitude must be in [0, 0.5)");
}

void
ActivitySensor::observe(double true_ar)
{
    if (true_ar <= 0.0 || true_ar > 1.0)
        fatal("ActivitySensor: AR sample outside (0, 1]");
    double proxy =
        true_ar + _noiseAmplitude * _noise.signedUnit(_samples);
    proxy = std::clamp(proxy, 0.01, 1.0);
    _estimate = _alpha * proxy + (1.0 - _alpha) * _estimate;
    _estimate = std::clamp(_estimate, 0.01, 1.0);
    ++_samples;
}

void
ActivitySensor::reset(double value)
{
    _estimate = std::clamp(value, 0.01, 1.0);
}

} // namespace pdnspot
