#include "pmu/workload_detector.hh"

namespace pdnspot
{

WorkloadType
detectWorkloadType(bool gfx_active, int active_cores)
{
    if (gfx_active)
        return WorkloadType::Graphics;
    if (active_cores > 1)
        return WorkloadType::MultiThread;
    if (active_cores == 1)
        return WorkloadType::SingleThread;
    return WorkloadType::BatteryLife;
}

WorkloadType
detectWorkloadType(const PlatformState &state)
{
    int cores = 0;
    if (state.domain(DomainId::Core0).active)
        ++cores;
    if (state.domain(DomainId::Core1).active)
        ++cores;
    return detectWorkloadType(state.domain(DomainId::GFX).active,
                              cores);
}

} // namespace pdnspot
