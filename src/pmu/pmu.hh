/**
 * @file
 * The power-management-unit firmware loop driving FlexWatts.
 *
 * The PMU ties the runtime pieces of Sec. 6 together: every sensor
 * period (1 ms) it ingests activity-sensor samples; every evaluation
 * interval (10 ms) it estimates Algorithm 1's inputs (TDP, AR,
 * workload type, package power state) and, if the predictor picks the
 * other hybrid mode, launches the voltage-noise-free C6 switch flow.
 */

#ifndef PDNSPOT_PMU_PMU_HH
#define PDNSPOT_PMU_PMU_HH

#include <cstdint>

#include "common/units.hh"
#include "flexwatts/mode_predictor.hh"
#include "flexwatts/mode_switch.hh"
#include "pmu/activity_sensor.hh"
#include "pmu/workload_detector.hh"
#include "workload/trace.hh"

namespace pdnspot
{

/** PMU firmware configuration. */
struct PmuConfig
{
    Power tdp = watts(15.0);
    Time sensorPeriod = milliseconds(1.0);
    Time evalInterval = milliseconds(10.0);  ///< Algorithm 1 cadence
    uint64_t sensorSeed = 1;
    HybridMode initialMode = HybridMode::IvrMode;
};

/** The FlexWatts-aware PMU. */
class Pmu
{
  public:
    Pmu(PmuConfig config, const ModePredictor &predictor);

    /**
     * Advance the firmware to time `now` given the ground truth the
     * sensors observe (the current trace phase). Call with
     * monotonically non-decreasing `now`; the PMU internally ticks
     * its sensor and evaluation cadences.
     */
    void advanceTo(Time now, const TracePhase &phase);

    /**
     * Reconfigure the TDP at runtime (configurable TDP / cTDP,
     * Sec. 1): system manufacturers raise or lower the budget with
     * the available cooling capacity, and the mode predictor adapts
     * at its next evaluation.
     */
    void setTdp(Power tdp);

    /** Mode the hybrid rail is configured for (target if switching). */
    HybridMode configuredMode() const { return _flow.mode(); }

    /** True while a mode-switch C6 flow is in flight. */
    bool switching(Time now) const { return _flow.switching(now); }

    const ModeSwitchFlow &switchFlow() const { return _flow; }

    /** Forward to ModeSwitchFlow::setObserver (waveform probes). */
    void
    setSwitchObserver(std::function<void(Time, HybridMode)> observer)
    {
        _flow.setObserver(std::move(observer));
    }
    double arEstimate() const { return _sensor.estimate(); }
    uint64_t evaluations() const { return _evaluations; }

    const PmuConfig &config() const { return _config; }

  private:
    /** Algorithm 1 inputs from the current sensor state. */
    PredictorInputs estimateInputs(const TracePhase &phase) const;

    PmuConfig _config;
    const ModePredictor &_predictor;
    ActivitySensor _sensor;
    ModeSwitchFlow _flow;
    Time _nextSensorTick;
    Time _nextEval;
    uint64_t _sensorTicks = 0;   ///< sensor periods processed so far
    uint64_t _evaluations = 0;
};

} // namespace pdnspot

#endif // PDNSPOT_PMU_PMU_HH
