#include "pmu/pmu.hh"

#include "common/logging.hh"

namespace pdnspot
{

Pmu::Pmu(PmuConfig config, const ModePredictor &predictor)
    : _config(config), _predictor(predictor),
      _sensor(config.sensorSeed),
      _flow(config.initialMode),
      _nextSensorTick(seconds(0.0)),
      _nextEval(config.evalInterval)
{
    if (config.evalInterval < config.sensorPeriod)
        fatal("Pmu: evaluation interval below the sensor period");
}

void
Pmu::setTdp(Power tdp)
{
    if (tdp <= watts(0.0))
        fatal("Pmu: non-positive cTDP");
    _config.tdp = tdp;
}

PredictorInputs
Pmu::estimateInputs(const TracePhase &phase) const
{
    PredictorInputs in;
    in.tdp = _config.tdp;
    in.powerState = phase.cstate;
    if (phase.cstate == PackageCState::C0) {
        in.ar = _sensor.estimate();
        // The PMU infers the type from which domains are awake.
        bool gfx = phase.type == WorkloadType::Graphics;
        int cores = phase.type == WorkloadType::SingleThread ? 1 : 2;
        in.workloadType = detectWorkloadType(gfx, cores);
    } else {
        in.ar = 0.3;
        in.workloadType = WorkloadType::BatteryLife;
    }
    return in;
}

void
Pmu::advanceTo(Time now, const TracePhase &phase)
{
    // Simulators reach `now` by summing step times, so a step start
    // nominally on a cadence boundary can arrive a few ulps early.
    // Cadence times below are derived multiplicatively from integer
    // tick counts (one rounding each, never accumulated), so a
    // nanosecond of slack -- orders of magnitude above residual
    // drift, orders below the microsecond-scale cadences -- keeps
    // tick processing independent of the caller's step size.
    const Time slack = seconds(1e-9);
    now += slack;

    // Sensor cadence: sample the AR proxy while the platform is
    // active; sensors idle in package C-states.
    while (_nextSensorTick <= now) {
        if (phase.cstate == PackageCState::C0)
            _sensor.observe(phase.ar);
        ++_sensorTicks;
        _nextSensorTick =
            _config.sensorPeriod * static_cast<double>(_sensorTicks);
    }

    // Algorithm 1 cadence.
    while (_nextEval <= now) {
        ++_evaluations;
        PredictorInputs in = estimateInputs(phase);
        HybridMode decision =
            _predictor.decide(in, _flow.mode());
        if (decision != _flow.mode())
            _flow.requestSwitch(_nextEval, decision);
        _nextEval = _config.evalInterval *
                    static_cast<double>(_evaluations + 1);
    }
}

} // namespace pdnspot
