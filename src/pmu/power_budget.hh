/**
 * @file
 * RAPL-style power-budget manager.
 *
 * Modern PMUs keep the running-average platform power within the
 * configured TDP by adjusting the compute clock (paper Sec. 3.4
 * assumption; cf. RAPL, David et al., ISLPED 2010). This manager
 * tracks an exponentially-weighted average of the supply power and
 * recommends a multiplicative clock adjustment: throttle when over
 * budget, release (up to a ceiling) when under.
 */

#ifndef PDNSPOT_PMU_POWER_BUDGET_HH
#define PDNSPOT_PMU_POWER_BUDGET_HH

#include "common/units.hh"

namespace pdnspot
{

/** Closed-loop TDP governor. */
class PowerBudgetManager
{
  public:
    /** Throttle floor on the clock adjustment. */
    static constexpr double minMultiplier = 0.25;

    /**
     * @param tdp the budget the average power must respect
     * @param window EWMA time constant of the power average
     * @param max_multiplier Turbo ceiling on the clock adjustment
     */
    PowerBudgetManager(Power tdp, Time window = milliseconds(28.0),
                       double max_multiplier = 2.0);

    /** Ingest one interval's measured supply power. */
    void observe(Power supply_power, Time interval);

    /** Smoothed supply power. */
    Power averagePower() const { return _average; }

    /**
     * Recommended clock multiplier relative to the TDP baseline:
     * proportional control toward average == TDP.
     */
    double recommendedMultiplier() const;

    /**
     * True while the recommendation sits pinned at the throttle
     * floor — the governor is actively clipping performance and the
     * proportional control has run out of downward authority.
     * Transitions into this state are the "budget_clip" events the
     * waveform probe (obs/probe.hh) records. (Sitting at the Turbo
     * ceiling is the opposite condition — maximal headroom — and is
     * visible through recommendedMultiplier()/maxMultiplier().)
     */
    bool
    clamped() const
    {
        return _multiplier <= minMultiplier;
    }

    Power tdp() const { return _tdp; }

    double maxMultiplier() const { return _maxMultiplier; }

  private:
    Power _tdp;
    Time _window;
    double _maxMultiplier;
    Power _average;
    double _multiplier = 1.0;
};

} // namespace pdnspot

#endif // PDNSPOT_PMU_POWER_BUDGET_HH
