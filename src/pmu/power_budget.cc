#include "pmu/power_budget.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pdnspot
{

PowerBudgetManager::PowerBudgetManager(Power tdp, Time window,
                                       double max_multiplier)
    : _tdp(tdp), _window(window), _maxMultiplier(max_multiplier),
      _average(tdp)
{
    if (tdp <= watts(0.0))
        fatal("PowerBudgetManager: non-positive TDP");
    if (window <= seconds(0.0))
        fatal("PowerBudgetManager: non-positive window");
    if (max_multiplier < 1.0)
        fatal("PowerBudgetManager: Turbo ceiling below 1.0");
}

void
PowerBudgetManager::observe(Power supply_power, Time interval)
{
    if (interval <= seconds(0.0))
        fatal("PowerBudgetManager: non-positive interval");
    double alpha = 1.0 - std::exp(-(interval / _window));
    _average = _average + (supply_power - _average) * alpha;

    // Proportional control: scale the clock by the remaining headroom.
    double headroom = _tdp / _average;
    _multiplier = std::clamp(_multiplier * std::pow(headroom, 0.25),
                             minMultiplier, _maxMultiplier);
}

double
PowerBudgetManager::recommendedMultiplier() const
{
    return _multiplier;
}

} // namespace pdnspot
