/**
 * @file
 * PMU workload-type detection (paper Sec. 6).
 *
 * The PMU classifies the running workload from domain power states:
 * graphics if the graphics engines are active, multi-threaded if more
 * than one core is active, single-threaded if exactly one is, and
 * battery-life (idle-dominated) if the compute domains are gated.
 */

#ifndef PDNSPOT_PMU_WORKLOAD_DETECTOR_HH
#define PDNSPOT_PMU_WORKLOAD_DETECTOR_HH

#include "power/platform_state.hh"
#include "power/workload_type.hh"

namespace pdnspot
{

/** Classify from raw domain activity. */
WorkloadType detectWorkloadType(bool gfx_active, int active_cores);

/** Classify from a full platform snapshot. */
WorkloadType detectWorkloadType(const PlatformState &state);

} // namespace pdnspot

#endif // PDNSPOT_PMU_WORKLOAD_DETECTOR_HH
