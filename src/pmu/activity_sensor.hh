/**
 * @file
 * Activity-sensor AR estimation (paper Sec. 6, "Runtime Estimation").
 *
 * Modern client processors embed activity sensors in each domain:
 * weighted sums of internal events (active execution ports, memory
 * stalls, vector-instruction widths) are sent to the PMU every
 * millisecond as a calibrated proxy of the application ratio. This
 * model abstracts the event plumbing into a per-sample proxy reading
 * (the true AR plus bounded sensor error) and the PMU-side
 * exponentially-weighted filter that smooths it.
 */

#ifndef PDNSPOT_PMU_ACTIVITY_SENSOR_HH
#define PDNSPOT_PMU_ACTIVITY_SENSOR_HH

#include <cstdint>

#include "common/noise.hh"

namespace pdnspot
{

/** Millisecond-granularity AR proxy with EWMA smoothing. */
class ActivitySensor
{
  public:
    /**
     * @param seed deterministic sensor-noise seed
     * @param alpha EWMA weight of the newest sample
     * @param noise_amplitude bound of the per-sample proxy error
     */
    explicit ActivitySensor(uint64_t seed, double alpha = 0.25,
                            double noise_amplitude = 0.04);

    /** Ingest one sample of the true AR (one sensor period). */
    void observe(double true_ar);

    /** Current filtered AR estimate, clamped to (0, 1]. */
    double estimate() const { return _estimate; }

    /** Reset the filter (e.g. on power-state exit). */
    void reset(double value);

    uint64_t samples() const { return _samples; }

  private:
    HashNoise _noise;
    double _alpha;
    double _noiseAmplitude;
    double _estimate = 0.5;
    uint64_t _samples = 0;
};

} // namespace pdnspot

#endif // PDNSPOT_PMU_ACTIVITY_SENSOR_HH
