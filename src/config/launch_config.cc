#include "config/launch_config.hh"

#include "common/logging.hh"

namespace pdnspot
{

namespace
{

/** Mirrors campaign_config.cc's unknown-key policy. */
void
rejectUnknownLaunchKeys(const JsonValue &obj)
{
    static const char *valid[] = {"shards",  "jobs",
                                  "timeout_s", "retries",
                                  "backoff_ms", "seed"};
    for (const JsonValue::Member &m : obj.members()) {
        bool known = false;
        for (const char *key : valid)
            known = known || m.first == key;
        if (!known) {
            std::vector<std::string> names(std::begin(valid),
                                           std::end(valid));
            m.second.fail(strprintf(
                "unknown \"launch\" key \"%s\" (valid keys: %s)",
                m.first.c_str(), joinStrings(names).c_str()));
        }
    }
}

} // namespace

void
LaunchSpec::validate() const
{
    if (shards < 1)
        fatal("launch shards must be at least 1");
    if (!(timeoutS >= 0.0))
        fatal(strprintf("launch timeout must be non-negative, got "
                        "%g s",
                        timeoutS));
    if (!(backoffMs >= 0.0))
        fatal(strprintf("launch backoff must be non-negative, got "
                        "%g ms",
                        backoffMs));
}

LaunchSpec
launchSpecFromJson(const JsonValue &root)
{
    LaunchSpec spec;
    if (root.kind() != JsonValue::Kind::Object)
        return spec;
    const JsonValue *launch = root.find("launch");
    if (!launch)
        return spec;
    rejectUnknownLaunchKeys(*launch);

    if (const JsonValue *shards = launch->find("shards"))
        spec.shards = static_cast<size_t>(
            shards->asInteger("\"shards\"", 1, 100000L));
    if (const JsonValue *jobs = launch->find("jobs"))
        spec.jobs = static_cast<size_t>(
            jobs->asInteger("\"jobs\"", 0, 100000L));
    if (const JsonValue *timeout = launch->find("timeout_s")) {
        double s = timeout->asNumber();
        if (!(s >= 0.0))
            timeout->fail(strprintf("\"timeout_s\" must be "
                                    "non-negative, got %g",
                                    s));
        spec.timeoutS = s;
    }
    if (const JsonValue *retries = launch->find("retries"))
        spec.retries = static_cast<unsigned>(
            retries->asInteger("\"retries\"", 0, 1000L));
    if (const JsonValue *backoff = launch->find("backoff_ms")) {
        double ms = backoff->asNumber();
        if (!(ms >= 0.0))
            backoff->fail(strprintf("\"backoff_ms\" must be "
                                    "non-negative, got %g",
                                    ms));
        spec.backoffMs = ms;
    }
    if (const JsonValue *seed = launch->find("seed"))
        spec.seed = static_cast<uint64_t>(
            seed->asInteger("\"seed\"", 0, 1000000000L));

    spec.validate();
    return spec;
}

LaunchSpec
loadLaunchSpecFile(const std::string &path)
{
    return launchSpecFromJson(parseJsonFile(path));
}

} // namespace pdnspot
