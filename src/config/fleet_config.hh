/**
 * @file
 * Load-and-validate bindings from spec-file JSON to FleetSpec.
 *
 * A fleet spec file describes a population study for the
 * pdnspot_fleet CLI (tools/): cohorts of identically-configured
 * device sessions plus the shared-clock parameters:
 *
 * {
 *   "bucket_ms":  1000.0,
 *   "horizon_s":  3600.0,
 *   "tick_us":    50.0,
 *   "seed":       1,
 *   "storm_k":    4.0,
 *   "cohorts": [
 *     {"name": "tablets",
 *      "count": 250000,
 *      "platform": "fanless-tablet-4w",
 *      "pdn": "FlexWatts",
 *      "mode": "oracle",
 *      "trace": {"library": "web-browsing", "seed": 42},
 *      "start_jitter_ms": 30000.0,
 *      "battery_wh": 28.0,
 *      "battery_spread": 0.15}
 *   ]
 * }
 *
 * - "cohorts" is the only required key; each entry needs "name",
 *   "count", "platform" and "trace".
 * - "platform" takes the campaign grammar (a preset name or an
 *   override object — platformConfigFromJson); "trace" takes one
 *   declarative trace entry (traceSpecFromJson), transforms and
 *   "tick_us" overrides included. Relative "file" trace paths
 *   resolve against the spec file's directory unless a trace
 *   directory is passed explicitly (the CLI's --trace-dir).
 * - "pdn" is one PDN kind name (default FlexWatts); "mode" is
 *   "static" (default), "pmu" or "oracle". Non-FlexWatts cohorts
 *   always profile statically (campaign semantics).
 * - "start_jitter_ms" (default 0) bounds the seeded per-session
 *   start offset into the cyclic trace; "battery_wh" (default 50)
 *   and "battery_spread" (default 0, in [0, 1)) shape the capacity
 *   distribution.
 * - Top-level "bucket_ms" (default 1000), "horizon_s" (default
 *   3600), "tick_us" (default 50), "seed" (default 1) and "storm_k"
 *   (default 4) tune the shared clock and the storm detector.
 *
 * Every binding error — unknown key, bad enum value, missing preset
 * or trace — is a single-line ConfigError carrying the offending
 * value's file:line:col position.
 */

#ifndef PDNSPOT_CONFIG_FLEET_CONFIG_HH
#define PDNSPOT_CONFIG_FLEET_CONFIG_HH

#include <string>

#include "config/json.hh"
#include "fleet/fleet_spec.hh"

namespace pdnspot
{

/**
 * Bind a parsed spec document to a validated FleetSpec (the result
 * has passed FleetSpec::validate()). `traceDir` anchors relative
 * "file" trace paths ("" = the process working directory).
 */
FleetSpec fleetSpecFromJson(const JsonValue &root,
                            const std::string &traceDir = "");

/** Parse and bind spec text; `sourceName` labels error positions. */
FleetSpec loadFleetSpec(const std::string &text,
                        const std::string &sourceName,
                        const std::string &traceDir = "");

/**
 * Parse and bind a spec file. Relative "file" trace paths resolve
 * against `traceDir` when given, else against the spec file's own
 * directory.
 */
FleetSpec loadFleetSpecFile(const std::string &path,
                            const std::string &traceDir = "");

} // namespace pdnspot

#endif // PDNSPOT_CONFIG_FLEET_CONFIG_HH
