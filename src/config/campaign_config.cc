#include "config/campaign_config.hh"

#include <initializer_list>

#include "common/logging.hh"
#include "power/operating_point.hh"
#include "workload/battery_profiles.hh"

namespace pdnspot
{

namespace
{

/**
 * Reject members outside the schema, pointing at the stray value and
 * listing what the object accepts.
 */
void
rejectUnknownKeys(const JsonValue &obj, const char *what,
                  std::initializer_list<const char *> valid)
{
    for (const JsonValue::Member &m : obj.members()) {
        bool known = false;
        for (const char *key : valid)
            known = known || m.first == key;
        if (!known) {
            std::vector<std::string> names(valid.begin(),
                                           valid.end());
            m.second.fail(strprintf(
                "unknown %s key \"%s\" (valid keys: %s)", what,
                m.first.c_str(), joinStrings(names).c_str()));
        }
    }
}

SimMode
simModeFromJson(const JsonValue &v)
{
    const std::string &name = v.asString();
    for (SimMode mode :
         {SimMode::Static, SimMode::Pmu, SimMode::Oracle}) {
        if (toString(mode) == name)
            return mode;
    }
    v.fail(strprintf("unknown simulation mode \"%s\" (expected "
                     "static, pmu or oracle)",
                     name.c_str()));
}

PdnKind
pdnKindFromJson(const JsonValue &v)
{
    const std::string &name = v.asString();
    for (PdnKind kind : allPdnKinds) {
        if (pdnKindToString(kind) == name)
            return kind;
    }
    std::vector<std::string> names;
    for (PdnKind kind : allPdnKinds)
        names.push_back(pdnKindToString(kind));
    v.fail(strprintf("unknown PDN kind \"%s\" (expected one of %s)",
                     name.c_str(), joinStrings(names).c_str()));
}

std::vector<PdnKind>
pdnsFromJson(const JsonValue &v)
{
    if (v.kind() == JsonValue::Kind::String) {
        if (v.asString() == "all")
            return {allPdnKinds.begin(), allPdnKinds.end()};
        v.fail(strprintf("\"pdns\" must be \"all\" or an array of "
                         "PDN kind names, got \"%s\"",
                         v.asString().c_str()));
    }
    std::vector<PdnKind> out;
    for (const JsonValue &item : v.items()) {
        PdnKind kind = pdnKindFromJson(item);
        for (PdnKind seen : out) {
            if (seen == kind)
                item.fail(strprintf("duplicate PDN kind \"%s\"",
                                    pdnKindToString(kind).c_str()));
        }
        out.push_back(kind);
    }
    if (out.empty())
        v.fail("\"pdns\" must name at least one PDN kind");
    return out;
}

uint64_t
seedFromJson(const JsonValue &v)
{
    return static_cast<uint64_t>(
        v.asInteger("\"seed\"", 0, 1000000000L));
}

/** Whole-library object form: {"library": "standard", ...}. */
std::vector<TraceSpec>
libraryTracesFromJson(const JsonValue &v)
{
    rejectUnknownKeys(v, "\"traces\"", {"library", "seed", "names"});

    uint64_t seed = 42;
    if (const JsonValue *s = v.find("seed"))
        seed = seedFromJson(*s);

    if (const JsonValue *lib = v.find("library")) {
        if (lib->asString() != "standard")
            lib->fail(strprintf("unknown trace library \"%s\" (the "
                                "only library is \"standard\")",
                                lib->asString().c_str()));
    }
    TraceLibrary library = standardCampaignTraces(seed);

    std::vector<TraceSpec> out;
    const JsonValue *names = v.find("names");
    if (!names) {
        for (const std::string &name : library.names())
            out.push_back(TraceSpec::library(name, seed));
        return out;
    }

    for (const JsonValue &item : names->items()) {
        const std::string &name = item.asString();
        if (!library.find(name))
            item.fail(strprintf(
                "no trace \"%s\" in the standard library (available: "
                "%s)",
                name.c_str(), joinStrings(library.names()).c_str()));
        for (const TraceSpec &seen : out) {
            if (seen.name() == name)
                item.fail(strprintf("trace \"%s\" selected twice",
                                    name.c_str()));
        }
        out.push_back(TraceSpec::library(name, seed));
    }
    if (out.empty())
        names->fail("\"names\" must select at least one trace");
    return out;
}

TraceGeneratorSpec
generatorSpecFromJson(const JsonValue &v)
{
    rejectUnknownKeys(v, "generator",
                      {"kind", "seed", "bursts", "burst_ms",
                       "idle_ms", "phases", "mean_phase_ms",
                       "ar_min", "ar_max"});

    const JsonValue *kind = v.find("kind");
    if (!kind)
        v.fail("missing required generator key \"kind\"");

    TraceGeneratorSpec params;
    params.kind = kind->asString();
    bool known = false;
    for (const std::string &k : traceGeneratorKinds())
        known = known || params.kind == k;
    if (!known)
        kind->fail(strprintf(
            "unknown generator kind \"%s\" (expected one of %s)",
            params.kind.c_str(),
            joinStrings(traceGeneratorKinds()).c_str()));
    bool bursty = params.kind == "bursty-compute";
    bool mix = params.kind == "random-mix";

    // Parameters that do not apply to the chosen kind are rejected
    // rather than silently ignored.
    auto rejectForKind = [&](const char *key) {
        if (const JsonValue *stray = v.find(key))
            stray->fail(strprintf("\"%s\" does not apply to "
                                  "generator kind \"%s\"",
                                  key, params.kind.c_str()));
    };
    if (!bursty) {
        rejectForKind("bursts");
        rejectForKind("burst_ms");
        rejectForKind("idle_ms");
    }
    if (!mix) {
        rejectForKind("phases");
        rejectForKind("mean_phase_ms");
    }
    if (!bursty && !mix) {
        rejectForKind("ar_min");
        rejectForKind("ar_max");
    }

    if (const JsonValue *s = v.find("seed"))
        params.seed = seedFromJson(*s);

    auto positiveMs = [](const JsonValue &value, const char *what) {
        double ms = value.asNumber();
        if (!(ms > 0.0))
            value.fail(strprintf("\"%s\" must be positive, got %g",
                                 what, ms));
        return milliseconds(ms);
    };
    if (const JsonValue *b = v.find("bursts"))
        params.bursts = static_cast<size_t>(
            b->asInteger("\"bursts\"", 1, 1000000L));
    if (const JsonValue *len = v.find("burst_ms"))
        params.burstLen = positiveMs(*len, "burst_ms");
    if (const JsonValue *len = v.find("idle_ms"))
        params.idleLen = positiveMs(*len, "idle_ms");
    if (const JsonValue *p = v.find("phases"))
        params.phases = static_cast<size_t>(
            p->asInteger("\"phases\"", 1, 1000000L));
    if (const JsonValue *len = v.find("mean_phase_ms"))
        params.meanPhaseLen = positiveMs(*len, "mean_phase_ms");

    auto arBound = [](const JsonValue &value, const char *what) {
        double ar = value.asNumber();
        if (!(ar >= 0.0 && ar <= 1.0))
            value.fail(strprintf("\"%s\" must be in [0, 1], got %g",
                                 what, ar));
        return ar;
    };
    if (const JsonValue *ar = v.find("ar_min"))
        params.arMin = arBound(*ar, "ar_min");
    if (const JsonValue *ar = v.find("ar_max"))
        params.arMax = arBound(*ar, "ar_max");
    if (params.arMin > params.arMax)
        v.fail(strprintf("\"ar_min\" %g exceeds \"ar_max\" %g",
                         params.arMin, params.arMax));

    return params;
}

/**
 * One "transforms" array element: an object holding exactly one
 * transform key. Scalar-parameter transforms bind the key's value
 * directly ({"repeat": 3}); ar_perturb takes a parameter object and
 * concat nests a whole trace entry.
 */
TraceTransform
transformFromJson(const JsonValue &v, const std::string &traceDir)
{
    rejectUnknownKeys(v, "transform",
                      {"repeat", "time_scale", "truncate_ms",
                       "ar_perturb", "concat"});
    if (v.members().size() != 1)
        v.fail("a transform entry holds exactly one of \"repeat\", "
               "\"time_scale\", \"truncate_ms\", \"ar_perturb\" or "
               "\"concat\"");

    if (const JsonValue *n = v.find("repeat")) {
        return TraceTransform::repeat(static_cast<size_t>(
            n->asInteger("\"repeat\"", 1, 100000L)));
    }
    if (const JsonValue *f = v.find("time_scale")) {
        double factor = f->asNumber();
        if (!(factor > 0.0))
            f->fail(strprintf("\"time_scale\" must be positive, got "
                              "%g",
                              factor));
        return TraceTransform::timeScale(factor);
    }
    if (const JsonValue *d = v.find("truncate_ms")) {
        double ms = d->asNumber();
        if (!(ms > 0.0))
            d->fail(strprintf("\"truncate_ms\" must be positive, "
                              "got %g",
                              ms));
        return TraceTransform::truncate(milliseconds(ms));
    }
    if (const JsonValue *p = v.find("ar_perturb")) {
        rejectUnknownKeys(*p, "ar_perturb", {"delta", "seed"});
        const JsonValue *delta = p->find("delta");
        if (!delta)
            p->fail("missing required ar_perturb key \"delta\"");
        double d = delta->asNumber();
        if (!(d >= 0.0 && d <= 1.0))
            delta->fail(strprintf("\"delta\" must be in [0, 1], got "
                                  "%g",
                                  d));
        uint64_t seed = 0;
        if (const JsonValue *s = p->find("seed"))
            seed = seedFromJson(*s);
        return TraceTransform::arPerturb(d, seed);
    }
    // rejectUnknownKeys left only "concat" possible; a bare "{}"
    // entry fell through the exactly-one check above.
    const JsonValue &tail = *v.find("concat");
    return TraceTransform::concat(traceSpecFromJson(tail, traceDir));
}

std::vector<std::string>
profileNames()
{
    std::vector<std::string> out;
    for (const BatteryProfile &profile : batteryLifeWorkloads())
        out.push_back(profile.name);
    return out;
}

std::vector<TraceSpec>
tracesFromJson(const JsonValue &v, const std::string &traceDir)
{
    if (v.kind() != JsonValue::Kind::Array)
        return libraryTracesFromJson(v);

    std::vector<TraceSpec> out;
    for (const JsonValue &item : v.items()) {
        TraceSpec spec = traceSpecFromJson(item, traceDir);
        for (const TraceSpec &seen : out) {
            if (seen.name() == spec.name())
                item.fail(strprintf("duplicate trace name \"%s\" "
                                    "(use \"name\" to "
                                    "disambiguate)",
                                    spec.name().c_str()));
        }
        out.push_back(std::move(spec));
    }
    if (out.empty())
        v.fail("\"traces\" must hold at least one trace entry");
    return out;
}

ProbeSpec
probeFromJson(const JsonValue &v)
{
    rejectUnknownKeys(v, "probe",
                      {"trace", "platform", "pdn", "mode", "signals",
                       "decimate", "trigger", "battery_wh"});

    ProbeSpec probe;
    if (const JsonValue *t = v.find("trace"))
        probe.trace = t->asString();
    if (const JsonValue *p = v.find("platform"))
        probe.platform = p->asString();
    // Selector spellings are validated here (canonicalized through
    // the enum), existence in the spec's axes in
    // CampaignSpec::validate.
    if (const JsonValue *p = v.find("pdn"))
        probe.pdn = pdnKindToString(pdnKindFromJson(*p));
    if (const JsonValue *m = v.find("mode"))
        probe.mode = toString(simModeFromJson(*m));

    if (const JsonValue *signals = v.find("signals")) {
        if (signals->items().empty())
            signals->fail("\"signals\" must name at least one "
                          "signal (omit the key to capture all)");
        for (const JsonValue &item : signals->items()) {
            const std::string &name = item.asString();
            bool known = false;
            ProbeSignal signal = ProbeSignal::SupplyPowerW;
            for (ProbeSignal s : allProbeSignals) {
                if (toString(s) == name) {
                    signal = s;
                    known = true;
                }
            }
            if (!known) {
                std::vector<std::string> names;
                for (ProbeSignal s : allProbeSignals)
                    names.push_back(toString(s));
                item.fail(strprintf(
                    "unknown probe signal \"%s\" (expected one of "
                    "%s)",
                    name.c_str(), joinStrings(names).c_str()));
            }
            for (ProbeSignal seen : probe.signals) {
                if (seen == signal)
                    item.fail(strprintf("duplicate probe signal "
                                        "\"%s\"",
                                        name.c_str()));
            }
            probe.signals.push_back(signal);
        }
    }

    if (const JsonValue *d = v.find("decimate"))
        probe.decimate = static_cast<uint64_t>(
            d->asInteger("\"decimate\"", 1, 1000000000L));

    if (const JsonValue *trigger = v.find("trigger")) {
        rejectUnknownKeys(*trigger, "trigger", {"on", "window"});
        ProbeTriggerSpec t;
        if (const JsonValue *on = trigger->find("on")) {
            const std::string &name = on->asString();
            bool known = false;
            for (ProbeTriggerSpec::On o :
                 {ProbeTriggerSpec::On::ModeSwitch,
                  ProbeTriggerSpec::On::BudgetClip,
                  ProbeTriggerSpec::On::Any}) {
                if (toString(o) == name) {
                    t.on = o;
                    known = true;
                }
            }
            if (!known)
                on->fail(strprintf(
                    "unknown trigger \"%s\" (expected mode_switch, "
                    "budget_clip or any)",
                    name.c_str()));
        }
        const JsonValue *window = trigger->find("window");
        if (!window)
            trigger->fail("missing required trigger key \"window\"");
        t.window = static_cast<uint64_t>(
            window->asInteger("\"window\"", 1, 1000000000L));
        probe.trigger = t;
    }

    if (const JsonValue *wh = v.find("battery_wh")) {
        double capacity = wh->asNumber();
        if (!(capacity > 0.0))
            wh->fail(strprintf("\"battery_wh\" must be positive, "
                               "got %g",
                               capacity));
        probe.batteryWh = capacity;
    }
    return probe;
}

std::vector<std::string>
presetNames()
{
    std::vector<std::string> out;
    for (const PlatformConfig &cfg : allPlatformPresets())
        out.push_back(cfg.name);
    return out;
}

PlatformConfig
presetFromJson(const JsonValue &v)
{
    const std::string &name = v.asString();
    for (const PlatformConfig &cfg : allPlatformPresets()) {
        if (cfg.name == name)
            return cfg;
    }
    v.fail(strprintf("unknown platform preset \"%s\" (available: "
                     "%s)",
                     name.c_str(),
                     joinStrings(presetNames()).c_str()));
}

} // namespace

TraceSpec
traceSpecFromJson(const JsonValue &value, const std::string &traceDir)
{
    rejectUnknownKeys(value, "trace",
                      {"library", "generator", "profile", "file",
                       "seed", "frame_ms", "frames", "name",
                       "tick_us", "transforms"});

    const JsonValue *library = value.find("library");
    const JsonValue *generator = value.find("generator");
    const JsonValue *profile = value.find("profile");
    const JsonValue *file = value.find("file");
    int sources = (library ? 1 : 0) + (generator ? 1 : 0) +
                  (profile ? 1 : 0) + (file ? 1 : 0);
    if (sources != 1)
        value.fail("a trace entry needs exactly one source key: "
                   "\"library\", \"generator\", \"profile\" or "
                   "\"file\"");

    // Source-specific keys on the wrong source kind are mistakes,
    // not extensions.
    if (!library && !generator) {
        if (const JsonValue *stray = value.find("seed"))
            stray->fail("\"seed\" only applies to \"library\" "
                        "entries (generators take a nested "
                        "\"seed\")");
    }
    if (generator) {
        if (const JsonValue *stray = value.find("seed"))
            stray->fail("put \"seed\" inside the \"generator\" "
                        "object");
    }
    if (!profile) {
        for (const char *key : {"frame_ms", "frames"}) {
            if (const JsonValue *stray = value.find(key))
                stray->fail(strprintf("\"%s\" only applies to "
                                      "\"profile\" entries",
                                      key));
        }
    }

    TraceSpec spec;
    if (library) {
        uint64_t seed = 42;
        if (const JsonValue *s = value.find("seed"))
            seed = seedFromJson(*s);
        TraceLibrary lib = standardCampaignTraces(seed);
        if (!lib.find(library->asString()))
            library->fail(strprintf(
                "no trace \"%s\" in the standard library "
                "(available: %s)",
                library->asString().c_str(),
                joinStrings(lib.names()).c_str()));
        spec = TraceSpec::library(library->asString(), seed);
    } else if (generator) {
        spec = TraceSpec::generator(generatorSpecFromJson(*generator));
    } else if (profile) {
        bool known = false;
        for (const BatteryProfile &p : batteryLifeWorkloads())
            known = known || p.name == profile->asString();
        if (!known)
            profile->fail(strprintf(
                "unknown battery profile \"%s\" (available: %s)",
                profile->asString().c_str(),
                joinStrings(profileNames()).c_str()));
        Time framePeriod = milliseconds(33.3);
        size_t frames = 4;
        if (const JsonValue *ms = value.find("frame_ms")) {
            double v = ms->asNumber();
            if (!(v > 0.0))
                ms->fail(strprintf("\"frame_ms\" must be positive, "
                                   "got %g",
                                   v));
            framePeriod = milliseconds(v);
        }
        if (const JsonValue *f = value.find("frames"))
            frames = static_cast<size_t>(
                f->asInteger("\"frames\"", 1, 1000000L));
        spec = TraceSpec::profile(profile->asString(), framePeriod,
                                  frames);
    } else {
        std::string path = file->asString();
        if (path.empty())
            file->fail("\"file\" must name a trace file");
        if (path[0] != '/' && !traceDir.empty())
            path = traceDir + "/" + path;
        spec = TraceSpec::file(std::move(path));
    }

    // Apply the common overrides before the eager file check below,
    // so a "name" can rescue a file whose stem is CSV-unsafe.
    if (const JsonValue *name = value.find("name")) {
        if (name->asString().empty())
            name->fail("\"name\" must be non-empty");
        spec.rename(name->asString());
    }
    if (const JsonValue *tick = value.find("tick_us")) {
        double us = tick->asNumber();
        if (!(us > 0.0))
            tick->fail(strprintf("\"tick_us\" must be positive, got "
                                 "%g",
                                 us));
        spec.tick(microseconds(us));
    }
    if (const JsonValue *chain = value.find("transforms")) {
        if (chain->items().empty())
            chain->fail("\"transforms\" must hold at least one "
                        "transform entry");
        for (const JsonValue &step : chain->items())
            spec.transform(transformFromJson(step, traceDir));
    }

    if (file) {
        // Load the file once now so a missing or invalid trace fails
        // at this spec value with the nested positional error; the
        // engine still resolves lazily at run time.
        try {
            spec.resolve();
        } catch (const ConfigError &e) {
            file->fail(e.what());
        }
    }

    // Anything the targeted checks above missed (a CSV-unsafe
    // "name", ...) still fails at this entry's position.
    try {
        spec.validate();
    } catch (const ConfigError &e) {
        value.fail(e.what());
    }
    return spec;
}

PlatformConfig
platformConfigFromJson(const JsonValue &value)
{
    if (value.kind() == JsonValue::Kind::String)
        return presetFromJson(value);

    rejectUnknownKeys(value, "platform",
                      {"preset", "name", "tdp_w", "supply_v",
                       "predictor_hysteresis"});

    PlatformConfig cfg;
    const JsonValue *preset = value.find("preset");
    if (preset)
        cfg = presetFromJson(*preset);
    else if (!value.find("name"))
        value.fail("inline platforms need a \"name\" (or start from "
                   "a \"preset\")");

    if (const JsonValue *name = value.find("name"))
        cfg.name = name->asString();
    if (const JsonValue *tdp = value.find("tdp_w")) {
        double w = tdp->asNumber();
        if (watts(w) < OperatingPointModel::minTdp() ||
            watts(w) > OperatingPointModel::maxTdp()) {
            tdp->fail(strprintf(
                "\"tdp_w\" must be within the supported %g-%g W "
                "span, got %g",
                inWatts(OperatingPointModel::minTdp()),
                inWatts(OperatingPointModel::maxTdp()), w));
        }
        cfg.tdp = watts(w);
    }
    if (const JsonValue *supply = value.find("supply_v")) {
        double v = supply->asNumber();
        if (!(v > 0.0))
            supply->fail(strprintf("\"supply_v\" must be positive, "
                                   "got %g",
                                   v));
        cfg.pdnParams.supplyVoltage = volts(v);
    }
    if (const JsonValue *h = value.find("predictor_hysteresis")) {
        double margin = h->asNumber();
        // An absolute ETEE margin: a full unit would mean "never
        // switch"; anything at or past it is a typo.
        if (!(margin >= 0.0 && margin < 1.0))
            h->fail(strprintf("\"predictor_hysteresis\" must be in "
                              "[0, 1), got %g",
                              margin));
        cfg.predictorHysteresis = margin;
    }
    return cfg;
}

CampaignSpec
campaignSpecFromJson(const JsonValue &root,
                     const std::string &traceDir)
{
    // "launch" belongs to pdnspot_launch (launch_config.hh); the
    // campaign itself ignores it so a spec with fan-out knobs still
    // runs unchanged under plain pdnspot_campaign.
    rejectUnknownKeys(root, "spec",
                      {"traces", "platforms", "pdns", "mode",
                       "tick_us", "probes", "launch"});
    for (const char *required : {"traces", "platforms", "pdns"}) {
        if (!root.find(required))
            root.fail(strprintf("missing required key \"%s\"",
                                required));
    }

    CampaignSpec spec;
    spec.traces = tracesFromJson(*root.find("traces"), traceDir);
    for (const JsonValue &item : root.find("platforms")->items()) {
        PlatformConfig cfg = platformConfigFromJson(item);
        for (const PlatformConfig &seen : spec.platforms) {
            if (seen.name == cfg.name)
                item.fail(strprintf(
                    "duplicate platform name \"%s\"",
                    cfg.name.c_str()));
        }
        spec.platforms.push_back(std::move(cfg));
    }
    spec.pdns = pdnsFromJson(*root.find("pdns"));
    if (const JsonValue *mode = root.find("mode"))
        spec.mode = simModeFromJson(*mode);
    if (const JsonValue *tick = root.find("tick_us")) {
        double us = tick->asNumber();
        if (!(us > 0.0))
            tick->fail(strprintf("\"tick_us\" must be positive, got "
                                 "%g",
                                 us));
        spec.tick = microseconds(us);
    }
    if (const JsonValue *probes = root.find("probes")) {
        if (probes->items().empty())
            probes->fail("\"probes\" must hold at least one probe "
                         "entry (omit the key for no capture)");
        for (const JsonValue &item : probes->items()) {
            ProbeSpec probe = probeFromJson(item);
            // Cross-check the selectors against the axes parsed
            // above, here, so the error carries this entry's
            // position (CampaignSpec::validate repeats the check
            // with a plain fatal() for programmatic callers).
            if (!probe.trace.empty()) {
                bool found = false;
                for (const TraceSpec &t : spec.traces)
                    found = found || t.name() == probe.trace;
                if (!found)
                    item.fail(strprintf(
                        "probe trace selector \"%s\" matches no "
                        "trace in the spec",
                        probe.trace.c_str()));
            }
            if (!probe.platform.empty()) {
                bool found = false;
                for (const PlatformConfig &p : spec.platforms)
                    found = found || p.name == probe.platform;
                if (!found)
                    item.fail(strprintf(
                        "probe platform selector \"%s\" matches no "
                        "platform in the spec",
                        probe.platform.c_str()));
            }
            if (!probe.pdn.empty()) {
                bool found = false;
                for (PdnKind kind : spec.pdns)
                    found = found || toString(kind) == probe.pdn;
                if (!found)
                    item.fail(strprintf(
                        "probe pdn selector \"%s\" matches no PDN "
                        "in the spec",
                        probe.pdn.c_str()));
            }
            if (!probe.mode.empty() &&
                probe.mode != toString(spec.mode)) {
                item.fail(strprintf(
                    "probe mode selector \"%s\" does not match the "
                    "campaign mode \"%s\"",
                    probe.mode.c_str(),
                    toString(spec.mode).c_str()));
            }
            spec.probes.push_back(std::move(probe));
        }
    }

    spec.validate();
    return spec;
}

CampaignSpec
loadCampaignSpec(const std::string &text,
                 const std::string &sourceName,
                 const std::string &traceDir)
{
    return campaignSpecFromJson(parseJson(text, sourceName),
                                traceDir);
}

CampaignSpec
loadCampaignSpecFile(const std::string &path,
                     const std::string &traceDir)
{
    std::string dir = traceDir;
    if (dir.empty()) {
        size_t slash = path.find_last_of("/\\");
        if (slash != std::string::npos)
            dir = path.substr(0, slash);
    }
    return campaignSpecFromJson(parseJsonFile(path), dir);
}

} // namespace pdnspot
