#include "config/campaign_config.hh"

#include <initializer_list>

#include "common/logging.hh"
#include "power/operating_point.hh"

namespace pdnspot
{

namespace
{

/**
 * Reject members outside the schema, pointing at the stray value and
 * listing what the object accepts.
 */
void
rejectUnknownKeys(const JsonValue &obj, const char *what,
                  std::initializer_list<const char *> valid)
{
    for (const JsonValue::Member &m : obj.members()) {
        bool known = false;
        for (const char *key : valid)
            known = known || m.first == key;
        if (!known) {
            std::vector<std::string> names(valid.begin(),
                                           valid.end());
            m.second.fail(strprintf(
                "unknown %s key \"%s\" (valid keys: %s)", what,
                m.first.c_str(), joinStrings(names).c_str()));
        }
    }
}

SimMode
simModeFromJson(const JsonValue &v)
{
    const std::string &name = v.asString();
    for (SimMode mode :
         {SimMode::Static, SimMode::Pmu, SimMode::Oracle}) {
        if (toString(mode) == name)
            return mode;
    }
    v.fail(strprintf("unknown simulation mode \"%s\" (expected "
                     "static, pmu or oracle)",
                     name.c_str()));
}

PdnKind
pdnKindFromJson(const JsonValue &v)
{
    const std::string &name = v.asString();
    for (PdnKind kind : allPdnKinds) {
        if (pdnKindToString(kind) == name)
            return kind;
    }
    std::vector<std::string> names;
    for (PdnKind kind : allPdnKinds)
        names.push_back(pdnKindToString(kind));
    v.fail(strprintf("unknown PDN kind \"%s\" (expected one of %s)",
                     name.c_str(), joinStrings(names).c_str()));
}

std::vector<PdnKind>
pdnsFromJson(const JsonValue &v)
{
    if (v.kind() == JsonValue::Kind::String) {
        if (v.asString() == "all")
            return {allPdnKinds.begin(), allPdnKinds.end()};
        v.fail(strprintf("\"pdns\" must be \"all\" or an array of "
                         "PDN kind names, got \"%s\"",
                         v.asString().c_str()));
    }
    std::vector<PdnKind> out;
    for (const JsonValue &item : v.items()) {
        PdnKind kind = pdnKindFromJson(item);
        for (PdnKind seen : out) {
            if (seen == kind)
                item.fail(strprintf("duplicate PDN kind \"%s\"",
                                    pdnKindToString(kind).c_str()));
        }
        out.push_back(kind);
    }
    if (out.empty())
        v.fail("\"pdns\" must name at least one PDN kind");
    return out;
}

std::vector<PhaseTrace>
tracesFromJson(const JsonValue &v)
{
    rejectUnknownKeys(v, "\"traces\"", {"library", "seed", "names"});

    uint64_t seed = 42;
    if (const JsonValue *s = v.find("seed"))
        seed = static_cast<uint64_t>(
            s->asInteger("\"seed\"", 0, 1000000000L));

    if (const JsonValue *lib = v.find("library")) {
        if (lib->asString() != "standard")
            lib->fail(strprintf("unknown trace library \"%s\" (the "
                                "only library is \"standard\")",
                                lib->asString().c_str()));
    }
    TraceLibrary library = standardCampaignTraces(seed);

    const JsonValue *names = v.find("names");
    if (!names)
        return library.traces();

    std::vector<PhaseTrace> out;
    for (const JsonValue &item : names->items()) {
        const PhaseTrace *trace = library.find(item.asString());
        if (!trace)
            item.fail(strprintf(
                "no trace \"%s\" in the standard library (available: "
                "%s)",
                item.asString().c_str(),
                joinStrings(library.names()).c_str()));
        for (const PhaseTrace &seen : out) {
            if (seen.name() == trace->name())
                item.fail(strprintf("trace \"%s\" selected twice",
                                    trace->name().c_str()));
        }
        out.push_back(*trace);
    }
    if (out.empty())
        names->fail("\"names\" must select at least one trace");
    return out;
}

std::vector<std::string>
presetNames()
{
    std::vector<std::string> out;
    for (const PlatformConfig &cfg : allPlatformPresets())
        out.push_back(cfg.name);
    return out;
}

PlatformConfig
presetFromJson(const JsonValue &v)
{
    const std::string &name = v.asString();
    for (const PlatformConfig &cfg : allPlatformPresets()) {
        if (cfg.name == name)
            return cfg;
    }
    v.fail(strprintf("unknown platform preset \"%s\" (available: "
                     "%s)",
                     name.c_str(),
                     joinStrings(presetNames()).c_str()));
}

} // namespace

PlatformConfig
platformConfigFromJson(const JsonValue &value)
{
    if (value.kind() == JsonValue::Kind::String)
        return presetFromJson(value);

    rejectUnknownKeys(value, "platform",
                      {"preset", "name", "tdp_w", "supply_v",
                       "predictor_hysteresis"});

    PlatformConfig cfg;
    const JsonValue *preset = value.find("preset");
    if (preset)
        cfg = presetFromJson(*preset);
    else if (!value.find("name"))
        value.fail("inline platforms need a \"name\" (or start from "
                   "a \"preset\")");

    if (const JsonValue *name = value.find("name"))
        cfg.name = name->asString();
    if (const JsonValue *tdp = value.find("tdp_w")) {
        double w = tdp->asNumber();
        if (watts(w) < OperatingPointModel::minTdp() ||
            watts(w) > OperatingPointModel::maxTdp()) {
            tdp->fail(strprintf(
                "\"tdp_w\" must be within the supported %g-%g W "
                "span, got %g",
                inWatts(OperatingPointModel::minTdp()),
                inWatts(OperatingPointModel::maxTdp()), w));
        }
        cfg.tdp = watts(w);
    }
    if (const JsonValue *supply = value.find("supply_v")) {
        double v = supply->asNumber();
        if (!(v > 0.0))
            supply->fail(strprintf("\"supply_v\" must be positive, "
                                   "got %g",
                                   v));
        cfg.pdnParams.supplyVoltage = volts(v);
    }
    if (const JsonValue *h = value.find("predictor_hysteresis")) {
        double margin = h->asNumber();
        // An absolute ETEE margin: a full unit would mean "never
        // switch"; anything at or past it is a typo.
        if (!(margin >= 0.0 && margin < 1.0))
            h->fail(strprintf("\"predictor_hysteresis\" must be in "
                              "[0, 1), got %g",
                              margin));
        cfg.predictorHysteresis = margin;
    }
    return cfg;
}

CampaignSpec
campaignSpecFromJson(const JsonValue &root)
{
    rejectUnknownKeys(root, "spec",
                      {"traces", "platforms", "pdns", "mode",
                       "tick_us"});
    for (const char *required : {"traces", "platforms", "pdns"}) {
        if (!root.find(required))
            root.fail(strprintf("missing required key \"%s\"",
                                required));
    }

    CampaignSpec spec;
    spec.traces = tracesFromJson(*root.find("traces"));
    for (const JsonValue &item : root.find("platforms")->items()) {
        PlatformConfig cfg = platformConfigFromJson(item);
        for (const PlatformConfig &seen : spec.platforms) {
            if (seen.name == cfg.name)
                item.fail(strprintf(
                    "duplicate platform name \"%s\"",
                    cfg.name.c_str()));
        }
        spec.platforms.push_back(std::move(cfg));
    }
    spec.pdns = pdnsFromJson(*root.find("pdns"));
    if (const JsonValue *mode = root.find("mode"))
        spec.mode = simModeFromJson(*mode);
    if (const JsonValue *tick = root.find("tick_us")) {
        double us = tick->asNumber();
        if (!(us > 0.0))
            tick->fail(strprintf("\"tick_us\" must be positive, got "
                                 "%g",
                                 us));
        spec.tick = microseconds(us);
    }

    spec.validate();
    return spec;
}

CampaignSpec
loadCampaignSpec(const std::string &text,
                 const std::string &sourceName)
{
    return campaignSpecFromJson(parseJson(text, sourceName));
}

CampaignSpec
loadCampaignSpecFile(const std::string &path)
{
    return campaignSpecFromJson(parseJsonFile(path));
}

} // namespace pdnspot
