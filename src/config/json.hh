/**
 * @file
 * A small dependency-free JSON-subset parser and serializer.
 *
 * Campaign spec files (campaign_config.hh) are plain JSON documents;
 * this parser covers the subset they need — objects, arrays, strings,
 * numbers, booleans, null — and concentrates on error quality: every
 * parse or type error is a single-line ConfigError of the form
 * "file:line:col: message", so a misplaced comma in a million-cell
 * campaign spec points at the offending character, not at the whole
 * file.
 *
 * Deliberate subset restrictions (each rejected with a clear error):
 * no duplicate object keys, no comments, no trailing commas, and no
 * \u escapes for surrogate pairs (BMP code points are supported).
 */

#ifndef PDNSPOT_CONFIG_JSON_HH
#define PDNSPOT_CONFIG_JSON_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pdnspot
{

/** A parsed JSON value, annotated with its source position. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** One object member; insertion order is preserved. */
    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    Kind kind() const { return _kind; }

    /** Human-readable kind name ("object", "number", ...). */
    static const char *kindName(Kind kind);

    bool isNull() const { return _kind == Kind::Null; }

    /** Typed accessors; fatal() with this value's position on a
     * kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /**
     * asNumber() restricted to integers in [min, max]; fatal() on a
     * fractional or out-of-range value. `what` names the field in
     * the error message.
     */
    long asInteger(const char *what, long min, long max) const;

    /** Array elements; fatal() unless this is an array. */
    const std::vector<JsonValue> &items() const;

    /** Object members in insertion order; fatal() unless object. */
    const std::vector<Member> &members() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /**
     * "file:line:col" of this value's first character — the prefix
     * every error about this value should carry.
     */
    std::string where() const;

    /** fatal() a single-line "file:line:col: message" error. */
    [[noreturn]] void fail(const std::string &message) const;

    /** Value factories (used by tests and spec writers). */
    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(std::vector<Member> members);

  private:
    friend class JsonParser;

    Kind _kind = Kind::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<JsonValue> _items;
    std::vector<Member> _members;

    /** Shared by every value of one document. */
    std::shared_ptr<const std::string> _source;
    int _line = 0;
    int _column = 0;
};

/**
 * Parse one JSON document. `sourceName` labels error messages (a file
 * path, or something like "<string>" for inline text). fatal() with
 * "sourceName:line:col: message" on any syntax error, including
 * trailing garbage after the top-level value.
 */
JsonValue parseJson(const std::string &text,
                    const std::string &sourceName);

/** parseJson over a file's contents; fatal() if unreadable. */
JsonValue parseJsonFile(const std::string &path);

/**
 * Serialize a value as pretty-printed JSON (2-space indent, members
 * in stored order, numbers in shortest-round-trip form). The output
 * re-parses to an equivalent document.
 */
std::string writeJson(const JsonValue &value);

/**
 * Serialize a value as a single line (no newlines, ", "/": "
 * separators) — the result-archive index format, where one line is
 * one record and a torn trailing line must not corrupt its
 * predecessors. Same number/string grammar as writeJson; no trailing
 * newline.
 */
std::string writeJsonCompact(const JsonValue &value);

} // namespace pdnspot

#endif // PDNSPOT_CONFIG_JSON_HH
