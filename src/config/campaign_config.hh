/**
 * @file
 * Load-and-validate bindings from spec-file JSON to CampaignSpec.
 *
 * A campaign spec file describes the same cross-product a C++ caller
 * would build by hand (campaign_spec.hh) — traces × platforms × PDN
 * kinds plus a simulation mode — as one JSON object, so studies can
 * be driven by the pdnspot_campaign CLI (tools/) without writing C++:
 *
 * {
 *   "traces":    {"library": "standard", "seed": 42},
 *   "platforms": ["fanless-tablet-4w", "ultraportable-15w"],
 *   "pdns":      "all",
 *   "mode":      "pmu",
 *   "tick_us":   50.0
 * }
 *
 * - "traces" is either the whole-library object above ("standard" =
 *   standardCampaignTraces(seed), an optional "names" array selects
 *   a subset by trace name), or an array of declarative trace-source
 *   entries (workload/trace_source.hh), one object per trace:
 *
 *     {"library": "bursty-compute", "seed": 42}
 *     {"generator": {"kind": "random-mix", "seed": 7, "phases": 24,
 *                    "mean_phase_ms": 15.0, "ar_min": 0.4,
 *                    "ar_max": 0.8}}
 *     {"profile": "video-playback", "frame_ms": 33.3, "frames": 4}
 *     {"file": "traces/office.csv"}
 *
 *   Every entry also accepts "name" (rename the trace — the campaign
 *   cell address), "tick_us" (per-cell simulator-tick override), and
 *   a "transforms" array of derivation steps
 *   (workload/trace_transform.hh) applied in order after the base
 *   trace materializes:
 *
 *     "transforms": [{"repeat": 3},
 *                    {"time_scale": 1.5},
 *                    {"truncate_ms": 500.0},
 *                    {"ar_perturb": {"delta": 0.1, "seed": 7}},
 *                    {"concat": {"file": "traces/tail.csv"}}]
 *
 *   Each step is an object holding exactly one transform key;
 *   "concat" nests a full trace entry (any source kind, transforms
 *   included). "file" paths are resolved against the spec file's
 *   directory unless a trace directory is passed explicitly (the
 *   CLI's --trace-dir).
 * - "platforms" entries are either preset names
 *   (platformPresetByName) or objects: {"preset": ..., "name": ...,
 *   "tdp_w": ..., "supply_v": ..., "predictor_hysteresis": ...},
 *   starting from the named preset (or defaults) and overriding the
 *   given fields.
 * - "pdns" is "all" or an array of PDN kind names (pdnKindToString
 *   spelling: IVR, MBVR, LDO, I+MBVR, FlexWatts).
 * - "mode" is "static" (default), "pmu" or "oracle"; "tick_us" is
 *   the simulator step in microseconds (default 50).
 * - "probes" (optional) binds waveform probes (obs/probe.hh) to
 *   matching cells; each entry is an object of cell selectors and
 *   capture parameters, all optional:
 *
 *     {"trace": "day-in-the-life", "platform": "ultraportable-15w",
 *      "pdn": "FlexWatts", "mode": "pmu",
 *      "signals": ["supply_power_w", "etee", "mode"],
 *      "decimate": 4,
 *      "trigger": {"on": "mode_switch", "window": 16},
 *      "battery_wh": 50.0}
 *
 *   Omitted selectors match every value on that axis (but non-empty
 *   selectors must name something the spec's axes carry); omitted
 *   "signals" captures all signals; "decimate" keeps every Nth
 *   phase; "trigger" bounds capture to ±window phases around each
 *   "mode_switch", "budget_clip" or "any" (default) event. The
 *   first matching probe binds to a cell. Probes only produce
 *   output through surfaces that ask for it (the CLI's
 *   --probe-out); see docs/observability.md for the full grammar.
 *
 * Every binding error — unknown key, bad enum value, missing trace
 * or preset — is a single-line ConfigError carrying the offending
 * value's file:line:col position.
 */

#ifndef PDNSPOT_CONFIG_CAMPAIGN_CONFIG_HH
#define PDNSPOT_CONFIG_CAMPAIGN_CONFIG_HH

#include <string>

#include "campaign/campaign_spec.hh"
#include "config/json.hh"

namespace pdnspot
{

/**
 * Bind a parsed spec document to a validated CampaignSpec (the
 * result has passed CampaignSpec::validate()). `traceDir` anchors
 * relative "file" trace paths ("" = the process working directory).
 */
CampaignSpec campaignSpecFromJson(const JsonValue &root,
                                  const std::string &traceDir = "");

/** Parse and bind spec text; `sourceName` labels error positions. */
CampaignSpec loadCampaignSpec(const std::string &text,
                              const std::string &sourceName,
                              const std::string &traceDir = "");

/**
 * Parse and bind a spec file. Relative "file" trace paths resolve
 * against `traceDir` when given, else against the spec file's own
 * directory.
 */
CampaignSpec loadCampaignSpecFile(const std::string &path,
                                  const std::string &traceDir = "");

/**
 * Bind one declarative trace entry (array-form "traces" element) to
 * a TraceSpec. File-backed entries are loaded once here so a broken
 * trace file fails at the spec value's position with the nested
 * trace error; the engine still resolves lazily at run time.
 */
TraceSpec traceSpecFromJson(const JsonValue &value,
                            const std::string &traceDir = "");

/**
 * Bind one "platforms" entry: a preset-name string, or an object
 * starting from {"preset": name} (or PlatformConfig defaults) with
 * field overrides. Exposed for reuse by future tool surfaces.
 */
PlatformConfig platformConfigFromJson(const JsonValue &value);

} // namespace pdnspot

#endif // PDNSPOT_CONFIG_CAMPAIGN_CONFIG_HH
