/**
 * @file
 * Load-and-validate bindings from spec-file JSON to CampaignSpec.
 *
 * A campaign spec file describes the same cross-product a C++ caller
 * would build by hand (campaign_spec.hh) — traces × platforms × PDN
 * kinds plus a simulation mode — as one JSON object, so studies can
 * be driven by the pdnspot_campaign CLI (tools/) without writing C++:
 *
 * {
 *   "traces":    {"library": "standard", "seed": 42},
 *   "platforms": ["fanless-tablet-4w", "ultraportable-15w"],
 *   "pdns":      "all",
 *   "mode":      "pmu",
 *   "tick_us":   50.0
 * }
 *
 * - "traces" names a trace library ("standard" =
 *   standardCampaignTraces(seed)); an optional "names" array selects
 *   a subset of it by trace name.
 * - "platforms" entries are either preset names
 *   (platformPresetByName) or objects: {"preset": ..., "name": ...,
 *   "tdp_w": ..., "supply_v": ..., "predictor_hysteresis": ...},
 *   starting from the named preset (or defaults) and overriding the
 *   given fields.
 * - "pdns" is "all" or an array of PDN kind names (pdnKindToString
 *   spelling: IVR, MBVR, LDO, I+MBVR, FlexWatts).
 * - "mode" is "static" (default), "pmu" or "oracle"; "tick_us" is
 *   the simulator step in microseconds (default 50).
 *
 * Every binding error — unknown key, bad enum value, missing trace
 * or preset — is a single-line ConfigError carrying the offending
 * value's file:line:col position.
 */

#ifndef PDNSPOT_CONFIG_CAMPAIGN_CONFIG_HH
#define PDNSPOT_CONFIG_CAMPAIGN_CONFIG_HH

#include <string>

#include "campaign/campaign_spec.hh"
#include "config/json.hh"

namespace pdnspot
{

/**
 * Bind a parsed spec document to a validated CampaignSpec (the
 * result has passed CampaignSpec::validate()).
 */
CampaignSpec campaignSpecFromJson(const JsonValue &root);

/** Parse and bind spec text; `sourceName` labels error positions. */
CampaignSpec loadCampaignSpec(const std::string &text,
                              const std::string &sourceName);

/** Parse and bind a spec file. */
CampaignSpec loadCampaignSpecFile(const std::string &path);

/**
 * Bind one "platforms" entry: a preset-name string, or an object
 * starting from {"preset": name} (or PlatformConfig defaults) with
 * field overrides. Exposed for reuse by future tool surfaces.
 */
PlatformConfig platformConfigFromJson(const JsonValue &value);

} // namespace pdnspot

#endif // PDNSPOT_CONFIG_CAMPAIGN_CONFIG_HH
