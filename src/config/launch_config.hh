/**
 * @file
 * Launcher knobs for distributed campaign runs (pdnspot_launch).
 *
 * A campaign spec file may carry an optional top-level "launch"
 * object declaring how the study wants to be fanned out:
 *
 *   "launch": {
 *     "shards": 8,        // shard count (pdnspot_campaign --shard)
 *     "jobs": 4,          // concurrent shard processes (0 = auto)
 *     "timeout_s": 300,   // per-attempt wall clock (0 = none)
 *     "retries": 2,       // retries per shard after the 1st attempt
 *     "backoff_ms": 200,  // retry backoff base (0 = immediate)
 *     "seed": 7           // seeds the deterministic backoff jitter
 *   }
 *
 * The campaign parser itself ignores the section (a spec with a
 * "launch" block still runs unchanged under plain pdnspot_campaign);
 * pdnspot_launch binds it here and lets command-line flags override
 * individual knobs.
 */

#ifndef PDNSPOT_CONFIG_LAUNCH_CONFIG_HH
#define PDNSPOT_CONFIG_LAUNCH_CONFIG_HH

#include <cstdint>
#include <string>

#include "config/json.hh"

namespace pdnspot
{

/** Launcher parameters (spec defaults; CLI flags override). */
struct LaunchSpec
{
    size_t shards = 4;       ///< shard subprocess count
    size_t jobs = 0;         ///< concurrency cap; 0 = auto
    double timeoutS = 0.0;   ///< per-attempt timeout; 0 = none
    unsigned retries = 2;    ///< retries after the first attempt
    double backoffMs = 200.0; ///< backoff base; 0 = immediate
    uint64_t seed = 0;       ///< backoff jitter seed

    /** fatal() (ConfigError) on out-of-range values. */
    void validate() const;
};

/**
 * Bind the optional "launch" member of a parsed spec document;
 * absent members keep their defaults, unknown keys and out-of-range
 * values fail with the value's file:line:col position.
 */
LaunchSpec launchSpecFromJson(const JsonValue &root);

/** launchSpecFromJson over a spec file's parsed contents. */
LaunchSpec loadLaunchSpecFile(const std::string &path);

} // namespace pdnspot

#endif // PDNSPOT_CONFIG_LAUNCH_CONFIG_HH
