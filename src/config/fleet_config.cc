#include "config/fleet_config.hh"

#include <initializer_list>

#include "common/logging.hh"
#include "config/campaign_config.hh"

namespace pdnspot
{

namespace
{

/**
 * Reject members outside the schema, pointing at the stray value and
 * listing what the object accepts.
 */
void
rejectUnknownKeys(const JsonValue &obj, const char *what,
                  std::initializer_list<const char *> valid)
{
    for (const JsonValue::Member &m : obj.members()) {
        bool known = false;
        for (const char *key : valid)
            known = known || m.first == key;
        if (!known) {
            std::vector<std::string> names(valid.begin(),
                                           valid.end());
            m.second.fail(strprintf(
                "unknown %s key \"%s\" (valid keys: %s)", what,
                m.first.c_str(), joinStrings(names).c_str()));
        }
    }
}

SimMode
simModeFromJson(const JsonValue &v)
{
    const std::string &name = v.asString();
    for (SimMode mode :
         {SimMode::Static, SimMode::Pmu, SimMode::Oracle}) {
        if (toString(mode) == name)
            return mode;
    }
    v.fail(strprintf("unknown simulation mode \"%s\" (expected "
                     "static, pmu or oracle)",
                     name.c_str()));
}

PdnKind
pdnKindFromJson(const JsonValue &v)
{
    const std::string &name = v.asString();
    for (PdnKind kind : allPdnKinds) {
        if (pdnKindToString(kind) == name)
            return kind;
    }
    std::vector<std::string> names;
    for (PdnKind kind : allPdnKinds)
        names.push_back(pdnKindToString(kind));
    v.fail(strprintf("unknown PDN kind \"%s\" (expected one of %s)",
                     name.c_str(), joinStrings(names).c_str()));
}

/** A positive finite number bound as a duration of `unit` scale. */
double
positiveNumber(const JsonValue &v, const char *what)
{
    double value = v.asNumber();
    if (!(value > 0.0))
        v.fail(strprintf("\"%s\" must be positive, got %g", what,
                         value));
    return value;
}

FleetCohort
cohortFromJson(const JsonValue &v, const std::string &traceDir)
{
    rejectUnknownKeys(v, "cohort",
                      {"name", "count", "platform", "pdn", "mode",
                       "trace", "start_jitter_ms", "battery_wh",
                       "battery_spread"});
    for (const char *required :
         {"name", "count", "platform", "trace"}) {
        if (!v.find(required))
            v.fail(strprintf("missing required cohort key \"%s\"",
                             required));
    }

    FleetCohort cohort;
    cohort.name = v.find("name")->asString();
    if (cohort.name.empty())
        v.find("name")->fail("\"name\" must be non-empty");
    cohort.count = static_cast<uint64_t>(v.find("count")->asInteger(
        "\"count\"", 1, 100000000L));
    cohort.platform = platformConfigFromJson(*v.find("platform"));
    if (const JsonValue *pdn = v.find("pdn"))
        cohort.pdn = pdnKindFromJson(*pdn);
    if (const JsonValue *mode = v.find("mode"))
        cohort.mode = simModeFromJson(*mode);
    cohort.trace = traceSpecFromJson(*v.find("trace"), traceDir);

    if (const JsonValue *jitter = v.find("start_jitter_ms")) {
        double ms = jitter->asNumber();
        if (!(ms >= 0.0))
            jitter->fail(strprintf("\"start_jitter_ms\" must be "
                                   "non-negative, got %g",
                                   ms));
        cohort.startJitter = milliseconds(ms);
    }
    if (const JsonValue *wh = v.find("battery_wh"))
        cohort.batteryWh = positiveNumber(*wh, "battery_wh");
    if (const JsonValue *spread = v.find("battery_spread")) {
        double s = spread->asNumber();
        if (!(s >= 0.0 && s < 1.0))
            spread->fail(strprintf("\"battery_spread\" must be in "
                                   "[0, 1), got %g",
                                   s));
        cohort.batterySpread = s;
    }
    return cohort;
}

} // namespace

FleetSpec
fleetSpecFromJson(const JsonValue &root, const std::string &traceDir)
{
    rejectUnknownKeys(root, "fleet spec",
                      {"cohorts", "bucket_ms", "horizon_s", "tick_us",
                       "seed", "storm_k"});
    const JsonValue *cohorts = root.find("cohorts");
    if (!cohorts)
        root.fail("missing required key \"cohorts\"");
    if (cohorts->items().empty())
        cohorts->fail("\"cohorts\" must hold at least one cohort");

    FleetSpec spec;
    for (const JsonValue &item : cohorts->items()) {
        FleetCohort cohort = cohortFromJson(item, traceDir);
        for (const FleetCohort &seen : spec.cohorts) {
            if (seen.name == cohort.name)
                item.fail(strprintf("duplicate cohort name \"%s\"",
                                    cohort.name.c_str()));
        }
        spec.cohorts.push_back(std::move(cohort));
    }

    if (const JsonValue *bucket = root.find("bucket_ms"))
        spec.bucket =
            milliseconds(positiveNumber(*bucket, "bucket_ms"));
    if (const JsonValue *horizon = root.find("horizon_s"))
        spec.horizon =
            seconds(positiveNumber(*horizon, "horizon_s"));
    if (const JsonValue *tick = root.find("tick_us"))
        spec.tick = microseconds(positiveNumber(*tick, "tick_us"));
    if (const JsonValue *seed = root.find("seed"))
        spec.seed = static_cast<uint64_t>(
            seed->asInteger("\"seed\"", 0, 1000000000L));
    if (const JsonValue *k = root.find("storm_k"))
        spec.stormK = positiveNumber(*k, "storm_k");

    // Cross-field checks (horizon vs bucket, bucket-count cap, ...)
    // fail at the document root with the FleetSpec message.
    try {
        spec.validate();
    } catch (const ConfigError &e) {
        root.fail(e.what());
    }
    return spec;
}

FleetSpec
loadFleetSpec(const std::string &text, const std::string &sourceName,
              const std::string &traceDir)
{
    return fleetSpecFromJson(parseJson(text, sourceName), traceDir);
}

FleetSpec
loadFleetSpecFile(const std::string &path,
                  const std::string &traceDir)
{
    std::string dir = traceDir;
    if (dir.empty()) {
        size_t slash = path.find_last_of("/\\");
        if (slash != std::string::npos)
            dir = path.substr(0, slash);
    }
    return fleetSpecFromJson(parseJsonFile(path), dir);
}

} // namespace pdnspot
