#include "config/json.hh"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/csv.hh"
#include "common/logging.hh"

namespace pdnspot
{

const char *
JsonValue::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return "boolean";
      case Kind::Number:
        return "number";
      case Kind::String:
        return "string";
      case Kind::Array:
        return "array";
      case Kind::Object:
        return "object";
    }
    panic("JsonValue::kindName: invalid kind");
}

std::string
JsonValue::where() const
{
    const char *source = _source ? _source->c_str() : "<json>";
    return strprintf("%s:%d:%d", source, _line, _column);
}

void
JsonValue::fail(const std::string &message) const
{
    fatal(where() + ": " + message);
}

namespace
{

[[noreturn]] void
wrongKind(const JsonValue &v, JsonValue::Kind wanted)
{
    v.fail(strprintf("expected %s, got %s",
                     JsonValue::kindName(wanted),
                     JsonValue::kindName(v.kind())));
}

} // namespace

bool
JsonValue::asBool() const
{
    if (_kind != Kind::Bool)
        wrongKind(*this, Kind::Bool);
    return _bool;
}

double
JsonValue::asNumber() const
{
    if (_kind != Kind::Number)
        wrongKind(*this, Kind::Number);
    return _number;
}

const std::string &
JsonValue::asString() const
{
    if (_kind != Kind::String)
        wrongKind(*this, Kind::String);
    return _string;
}

long
JsonValue::asInteger(const char *what, long min, long max) const
{
    double v = asNumber();
    double integral;
    if (std::modf(v, &integral) != 0.0)
        fail(strprintf("%s must be an integer, got %g", what, v));
    if (integral < static_cast<double>(min) ||
        integral > static_cast<double>(max)) {
        fail(strprintf("%s must be in [%ld, %ld], got %g", what, min,
                       max, v));
    }
    return static_cast<long>(integral);
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (_kind != Kind::Array)
        wrongKind(*this, Kind::Array);
    return _items;
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    if (_kind != Kind::Object)
        wrongKind(*this, Kind::Object);
    return _members;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (_kind != Kind::Object)
        return nullptr;
    for (const Member &m : _members) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue out;
    out._kind = Kind::Bool;
    out._bool = v;
    return out;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue out;
    out._kind = Kind::Number;
    out._number = v;
    return out;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue out;
    out._kind = Kind::String;
    out._string = std::move(v);
    return out;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue out;
    out._kind = Kind::Array;
    out._items = std::move(items);
    return out;
}

JsonValue
JsonValue::makeObject(std::vector<Member> members)
{
    JsonValue out;
    out._kind = Kind::Object;
    out._members = std::move(members);
    return out;
}

/** Recursive-descent parser tracking line/column as it scans. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string sourceName)
        : _text(text),
          _source(std::make_shared<const std::string>(
              std::move(sourceName)))
    {}

    JsonValue
    parseDocument()
    {
        skipWhitespace();
        JsonValue root = parseValue(0);
        skipWhitespace();
        if (_pos != _text.size())
            fail("trailing characters after the top-level value");
        return root;
    }

  private:
    // Nesting deeper than this is a runaway input, not a campaign
    // spec; bail before the recursion can exhaust the stack.
    static constexpr int maxDepth = 64;

    [[noreturn]] void
    fail(const std::string &message) const
    {
        fatal(strprintf("%s:%d:%d: %s", _source->c_str(), _line,
                        _column, message.c_str()));
    }

    bool atEnd() const { return _pos == _text.size(); }
    char peek() const { return _text[_pos]; }

    char
    advance()
    {
        char c = _text[_pos++];
        if (c == '\n') {
            ++_line;
            _column = 1;
        } else {
            ++_column;
        }
        return c;
    }

    void
    skipWhitespace()
    {
        while (!atEnd()) {
            char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            advance();
        }
    }

    void
    expect(char wanted, const char *context)
    {
        if (atEnd())
            fail(strprintf("unexpected end of input, expected '%c' "
                           "%s",
                           wanted, context));
        if (peek() != wanted)
            fail(strprintf("expected '%c' %s, got '%c'", wanted,
                           context, peek()));
        advance();
    }

    /** Stamp a value with the document source and a start position. */
    JsonValue
    stamp(JsonValue v, int line, int column) const
    {
        v._source = _source;
        v._line = line;
        v._column = column;
        return v;
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > maxDepth)
            fail(strprintf("nesting deeper than %d levels",
                           maxDepth));
        if (atEnd())
            fail("unexpected end of input, expected a value");

        int line = _line, column = _column;
        char c = peek();
        JsonValue v;
        if (c == '{')
            v = parseObject(depth);
        else if (c == '[')
            v = parseArray(depth);
        else if (c == '"')
            v = JsonValue::makeString(parseString());
        else if (c == 't' || c == 'f' || c == 'n')
            v = parseKeyword();
        else if (c == '-' || (c >= '0' && c <= '9'))
            v = JsonValue::makeNumber(parseNumber());
        else
            fail(strprintf("unexpected character '%c'", c));
        return stamp(std::move(v), line, column);
    }

    JsonValue
    parseObject(int depth)
    {
        advance(); // '{'
        std::vector<JsonValue::Member> members;
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            advance();
            return JsonValue::makeObject(std::move(members));
        }
        for (;;) {
            skipWhitespace();
            if (atEnd())
                fail("unexpected end of input inside an object");
            if (peek() != '"')
                fail("expected a string object key");
            int keyLine = _line, keyColumn = _column;
            std::string key = parseString();
            for (const JsonValue::Member &m : members) {
                if (m.first == key) {
                    fatal(strprintf("%s:%d:%d: duplicate object key "
                                    "\"%s\"",
                                    _source->c_str(), keyLine,
                                    keyColumn, key.c_str()));
                }
            }
            skipWhitespace();
            expect(':', "after an object key");
            skipWhitespace();
            members.emplace_back(std::move(key),
                                 parseValue(depth + 1));
            skipWhitespace();
            if (atEnd())
                fail("unexpected end of input inside an object");
            if (peek() == ',') {
                advance();
                continue;
            }
            expect('}', "to close an object");
            return JsonValue::makeObject(std::move(members));
        }
    }

    JsonValue
    parseArray(int depth)
    {
        advance(); // '['
        std::vector<JsonValue> items;
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            advance();
            return JsonValue::makeArray(std::move(items));
        }
        for (;;) {
            skipWhitespace();
            items.push_back(parseValue(depth + 1));
            skipWhitespace();
            if (atEnd())
                fail("unexpected end of input inside an array");
            if (peek() == ',') {
                advance();
                continue;
            }
            expect(']', "to close an array");
            return JsonValue::makeArray(std::move(items));
        }
    }

    std::string
    parseString()
    {
        advance(); // opening '"'
        std::string out;
        for (;;) {
            if (atEnd())
                fail("unterminated string");
            char c = advance();
            if (c == '"')
                return out;
            if (c == '\n')
                fail("raw newline inside a string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd())
                fail("unterminated escape sequence");
            char e = advance();
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u':
                appendUnicodeEscape(out);
                break;
              default:
                fail(strprintf("unknown escape sequence '\\%c'", e));
            }
        }
    }

    void
    appendUnicodeEscape(std::string &out)
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                fail("unterminated \\u escape");
            char c = advance();
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail(strprintf("bad hex digit '%c' in \\u escape",
                               c));
        }
        if (code >= 0xd800 && code <= 0xdfff)
            fail("\\u surrogate pairs are not supported");
        // UTF-8 encode the BMP code point.
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    bool
    consumeWord(const char *word)
    {
        size_t len = std::char_traits<char>::length(word);
        if (_text.compare(_pos, len, word) != 0)
            return false;
        for (size_t i = 0; i < len; ++i)
            advance();
        return true;
    }

    JsonValue
    parseKeyword()
    {
        if (consumeWord("true"))
            return JsonValue::makeBool(true);
        if (consumeWord("false"))
            return JsonValue::makeBool(false);
        if (consumeWord("null"))
            return JsonValue::makeNull();
        fail("unexpected keyword (expected true, false or null)");
    }

    double
    parseNumber()
    {
        size_t start = _pos;
        if (!atEnd() && peek() == '-')
            advance();
        auto digits = [&] {
            size_t before = _pos;
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
            if (_pos == before)
                fail("malformed number");
        };
        digits();
        // JSON forbids leading zeros ("01"); keep that rule so specs
        // stay portable to stricter parsers.
        size_t intStart = _text[start] == '-' ? start + 1 : start;
        if (_text[intStart] == '0' && _pos > intStart + 1)
            fail("numbers may not have leading zeros");
        if (!atEnd() && peek() == '.') {
            advance();
            digits();
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            advance();
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                advance();
            digits();
        }
        double value = 0.0;
        auto [ptr, ec] = std::from_chars(_text.data() + start,
                                         _text.data() + _pos, value);
        if (ec != std::errc() || ptr != _text.data() + _pos)
            fail("malformed number");
        return value;
    }

    const std::string &_text;
    std::shared_ptr<const std::string> _source;
    size_t _pos = 0;
    int _line = 1;
    int _column = 1;
};

JsonValue
parseJson(const std::string &text, const std::string &sourceName)
{
    return JsonParser(text, sourceName).parseDocument();
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal(strprintf("cannot open spec file \"%s\"",
                        path.c_str()));
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        fatal(strprintf("error reading spec file \"%s\"",
                        path.c_str()));
    return parseJson(text.str(), path);
}

namespace
{

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x",
                                 static_cast<unsigned>(
                                     static_cast<unsigned char>(c)));
            else
                out += c;
        }
    }
    out += '"';
}

void
appendJson(std::string &out, const JsonValue &v, int depth)
{
    std::string indent(static_cast<size_t>(depth) * 2, ' ');
    std::string inner(static_cast<size_t>(depth + 1) * 2, ' ');
    switch (v.kind()) {
      case JsonValue::Kind::Null:
        out += "null";
        return;
      case JsonValue::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        return;
      case JsonValue::Kind::Number:
        out += csvExactDouble(v.asNumber());
        return;
      case JsonValue::Kind::String:
        appendJsonString(out, v.asString());
        return;
      case JsonValue::Kind::Array: {
        const std::vector<JsonValue> &items = v.items();
        if (items.empty()) {
            out += "[]";
            return;
        }
        out += "[\n";
        for (size_t i = 0; i < items.size(); ++i) {
            out += inner;
            appendJson(out, items[i], depth + 1);
            if (i + 1 < items.size())
                out += ',';
            out += '\n';
        }
        out += indent;
        out += ']';
        return;
      }
      case JsonValue::Kind::Object: {
        const std::vector<JsonValue::Member> &members = v.members();
        if (members.empty()) {
            out += "{}";
            return;
        }
        out += "{\n";
        for (size_t i = 0; i < members.size(); ++i) {
            out += inner;
            appendJsonString(out, members[i].first);
            out += ": ";
            appendJson(out, members[i].second, depth + 1);
            if (i + 1 < members.size())
                out += ',';
            out += '\n';
        }
        out += indent;
        out += '}';
        return;
      }
    }
    panic("writeJson: invalid JSON kind");
}

void
appendJsonCompact(std::string &out, const JsonValue &v)
{
    switch (v.kind()) {
      case JsonValue::Kind::Null:
        out += "null";
        return;
      case JsonValue::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        return;
      case JsonValue::Kind::Number:
        out += csvExactDouble(v.asNumber());
        return;
      case JsonValue::Kind::String:
        appendJsonString(out, v.asString());
        return;
      case JsonValue::Kind::Array: {
        out += '[';
        const std::vector<JsonValue> &items = v.items();
        for (size_t i = 0; i < items.size(); ++i) {
            if (i)
                out += ", ";
            appendJsonCompact(out, items[i]);
        }
        out += ']';
        return;
      }
      case JsonValue::Kind::Object: {
        out += '{';
        const std::vector<JsonValue::Member> &members = v.members();
        for (size_t i = 0; i < members.size(); ++i) {
            if (i)
                out += ", ";
            appendJsonString(out, members[i].first);
            out += ": ";
            appendJsonCompact(out, members[i].second);
        }
        out += '}';
        return;
      }
    }
    panic("writeJsonCompact: invalid JSON kind");
}

} // namespace

std::string
writeJson(const JsonValue &value)
{
    std::string out;
    appendJson(out, value, 0);
    out += '\n';
    return out;
}

std::string
writeJsonCompact(const JsonValue &value)
{
    std::string out;
    appendJsonCompact(out, value);
    return out;
}

} // namespace pdnspot
