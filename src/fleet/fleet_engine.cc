#include "fleet/fleet_engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "common/noise.hh"
#include "obs/probe.hh"
#include "obs/span_trace.hh"
#include "pmu/pmu.hh"
#include "sim/battery_model.hh"
#include "sim/etee_memo.hh"
#include "sim/interval_simulator.hh"
#include "workload/phase_soa.hh"

namespace pdnspot
{

namespace
{

/**
 * One cohort's immutable replay profile: dense per-phase arrays the
 * session inner loop indexes, built once through the full simulator
 * stack. A whole trace cycle from *any* starting position consumes
 * cycleEnergyJ over cycleS with cycleSwitches switches (the sums are
 * position-independent), which the bucket stepper exploits to jump
 * whole cycles without walking phases.
 */
struct CohortProfile
{
    std::vector<double> powerW; ///< mean supply power per phase
    std::vector<double> durS;   ///< phase durations
    std::vector<uint32_t> switchesIn; ///< switches on entering phase
    std::vector<double> prefixS;      ///< duration prefix sums, n+1

    double cycleS = 0.0;
    double cycleEnergyJ = 0.0;
    uint64_t cycleSwitches = 0;

    double capacityJ = 0.0; ///< nominal battery capacity
    double spread = 0.0;
    double jitterS = 0.0;
};

/** True when the cohort's mode logic actually runs (campaign rule:
 * only FlexWatts has modes; other PDNs simulate statically). */
bool
dynamicModes(const FleetCohort &cohort)
{
    return cohort.pdn == PdnKind::FlexWatts &&
           cohort.mode != SimMode::Static;
}

CohortProfile
buildProfile(const FleetCohort &cohort, Time tick)
{
    SpanScope span("fleet.profile", "fleet");
    CohortProfile profile;

    Platform platform(cohort.platform);
    EteeMemo memo(platform.operatingPoints(), platform.config().tdp);
    PhaseTrace trace = cohort.trace.resolve();
    PhaseSoA soa(trace);
    size_t phases = soa.phaseCount();
    if (phases == 0)
        fatal(strprintf("FleetEngine: cohort \"%s\" trace \"%s\" "
                        "resolved to zero phases",
                        cohort.name.c_str(),
                        cohort.trace.name().c_str()));

    profile.powerW.resize(phases);
    profile.durS.resize(phases);
    profile.switchesIn.assign(phases, 0);
    for (size_t p = 0; p < phases; ++p)
        profile.durS[p] = inSeconds(soa.durations()[p]);

    if (!dynamicModes(cohort)) {
        // Static profile: one memoized PDN evaluation per unique
        // state, fanned out over the per-phase index (the SoA
        // discipline — population size never multiplies this work).
        std::vector<double> uniqueW(soa.uniqueCount());
        for (size_t u = 0; u < soa.uniqueCount(); ++u)
            uniqueW[u] = inWatts(
                memo.evaluate(platform.pdn(cohort.pdn),
                              soa.uniquePhases()[u])
                    .inputPower);
        for (size_t p = 0; p < phases; ++p)
            profile.powerW[p] = uniqueW[soa.uniqueIndex()[p]];
    } else if (cohort.mode == SimMode::Oracle) {
        // Oracle profile: best mode + pinned evaluation per unique
        // state; switches fall wherever consecutive phases (cyclic)
        // want different modes, instant and free (runOracle
        // semantics).
        std::vector<double> uniqueW(soa.uniqueCount());
        std::vector<HybridMode> uniqueMode(soa.uniqueCount());
        for (size_t u = 0; u < soa.uniqueCount(); ++u) {
            const TracePhase &phase = soa.uniquePhases()[u];
            uniqueMode[u] = memo.bestMode(platform.flexWatts(),
                                          phase);
            uniqueW[u] = inWatts(memo.evaluate(platform.flexWatts(),
                                               phase, uniqueMode[u])
                                     .inputPower);
        }
        for (size_t p = 0; p < phases; ++p) {
            size_t u = soa.uniqueIndex()[p];
            profile.powerW[p] = uniqueW[u];
            size_t prev =
                soa.uniqueIndex()[p == 0 ? phases - 1 : p - 1];
            if (phases > 1 && uniqueMode[u] != uniqueMode[prev])
                profile.switchesIn[p] = 1;
        }
    } else {
        // PMU profile: run the cohort trace once under realistic
        // PMU control with a signal probe capturing per-phase supply
        // power, mode, and mode-switch events; every session replays
        // this waveform cyclically from its own offset.
        ProbeSpec ps;
        ps.signals = {ProbeSignal::SupplyPowerW, ProbeSignal::Mode};
        SignalProbe probe(ps, platform.config().tdp);
        IntervalSimulator sim(platform.operatingPoints(),
                              platform.config().tdp,
                              cohort.trace.tickOverride().value_or(
                                  tick));
        PmuConfig cfg;
        cfg.tdp = platform.config().tdp;
        Pmu pmu(cfg, platform.predictor());
        sim.run(trace, platform.flexWatts(), pmu, &memo, &probe);
        Waveform w = probe.take();

        size_t powerCol = 0, modeCol = 0;
        for (size_t s = 0; s < w.signals.size(); ++s) {
            if (w.signals[s] == ProbeSignal::SupplyPowerW)
                powerCol = s;
            if (w.signals[s] == ProbeSignal::Mode)
                modeCol = s;
        }
        if (w.rows.size() != phases)
            panic(strprintf("FleetEngine: PMU profile captured %zu "
                            "rows for %zu phases",
                            w.rows.size(), phases));
        for (size_t p = 0; p < phases; ++p)
            profile.powerW[p] = w.rows[p].values[powerCol];
        for (const WaveformEvent &event : w.events) {
            if (event.kind == "mode_switch" && event.phase < phases)
                ++profile.switchesIn[event.phase];
        }
        // Cyclic wrap: replaying the waveform back-to-back incurs
        // one more switch when it ends in the other mode than it
        // began in.
        double first = w.rows.front().values[modeCol];
        double last = w.rows.back().values[modeCol];
        if (phases > 1 && first >= 0.0 && last >= 0.0 &&
            first != last)
            ++profile.switchesIn[0];
    }

    profile.prefixS.resize(phases + 1);
    profile.prefixS[0] = 0.0;
    for (size_t p = 0; p < phases; ++p) {
        profile.prefixS[p + 1] =
            profile.prefixS[p] + profile.durS[p];
        profile.cycleEnergyJ +=
            profile.powerW[p] * profile.durS[p];
        profile.cycleSwitches += profile.switchesIn[p];
    }
    profile.cycleS = profile.prefixS[phases];
    if (profile.cycleS <= 0.0)
        fatal(strprintf("FleetEngine: cohort \"%s\" trace has a "
                        "zero-length cycle",
                        cohort.name.c_str()));

    profile.capacityJ = cohort.batteryWh * 3600.0;
    profile.spread = cohort.batterySpread;
    profile.jitterS = inSeconds(cohort.startJitter);
    return profile;
}

/** Per-session mutable state, structure-of-arrays. ~44 bytes per
 * session all told — the only allocation that scales with the
 * population. */
struct SessionSoA
{
    std::vector<uint32_t> cohort;  ///< owning cohort index
    std::vector<uint32_t> cursor;  ///< current phase in the cycle
    std::vector<double> residueS;  ///< time left in current phase
    std::vector<double> socJ;      ///< remaining battery charge
    std::vector<double> energyJ;   ///< supply energy drawn so far
    std::vector<double> emptyAtS;  ///< death time; < 0 while alive

    void
    resize(size_t n)
    {
        cohort.resize(n);
        cursor.resize(n);
        residueS.resize(n);
        socJ.resize(n);
        energyJ.resize(n);
        emptyAtS.resize(n);
    }
};

/** One chunk's bucket-local aggregate contribution. */
struct BucketPartial
{
    double energyJ = 0.0;
    uint64_t switches = 0;
    uint64_t deaths = 0;
    uint64_t alive = 0;
};

/** Dynamically-registered fleet.* metric ids (obs/metrics.hh). */
struct FleetMetrics
{
    bool active = false;
    size_t sessions = 0;
    size_t bucketsDone = 0;
    size_t deaths = 0;
    size_t switches = 0;
    size_t stormBuckets = 0;
    size_t bucketUs = 0;

    static FleetMetrics
    install()
    {
        FleetMetrics m;
        MetricsRegistry *r = MetricsRegistry::current();
        if (!r)
            return m;
        m.active = true;
        m.sessions =
            r->registerMetric("fleet.sessions", MetricKind::Counter);
        m.bucketsDone =
            r->registerMetric("fleet.buckets", MetricKind::Counter);
        m.deaths =
            r->registerMetric("fleet.deaths", MetricKind::Counter);
        m.switches = r->registerMetric("fleet.mode_switches",
                                       MetricKind::Counter);
        m.stormBuckets = r->registerMetric("fleet.storm_buckets",
                                           MetricKind::Counter);
        m.bucketUs = r->registerMetric("fleet.bucket_us",
                                       MetricKind::Histogram);
        return m;
    }
};

/**
 * Advance one session across one bucket of `dtS` starting at
 * `startS` on the virtual clock, accumulating into the chunk
 * partial. Pure per-session math: identical at any thread count.
 */
void
advanceSession(const CohortProfile &cp, size_t s, SessionSoA &state,
               double startS, double dtS, BucketPartial &partial)
{
    if (state.emptyAtS[s] >= 0.0)
        return;

    double remaining = dtS;
    double elapsed = 0.0;
    uint32_t cur = state.cursor[s];
    double rem = state.residueS[s];
    double soc = state.socJ[s];
    double energy = 0.0;
    uint64_t switches = 0;
    bool died = false;

    // Whole-cycle fast path: a full cycle from any phase position
    // returns to that position having consumed the cycle totals, so
    // all complete cycles inside the bucket are jumped in one step —
    // capped below the charge actually left, so any death still
    // falls to the exact-phase walk below.
    if (remaining >= cp.cycleS) {
        double n = std::floor(remaining / cp.cycleS);
        if (cp.cycleEnergyJ > 0.0) {
            double byCharge = std::floor(soc / cp.cycleEnergyJ);
            while (byCharge > 0.0 &&
                   byCharge * cp.cycleEnergyJ >= soc)
                byCharge -= 1.0;
            n = std::min(n, byCharge);
        }
        if (n > 0.0) {
            double spent = n * cp.cycleEnergyJ;
            soc -= spent;
            energy += spent;
            switches +=
                static_cast<uint64_t>(n) * cp.cycleSwitches;
            remaining -= n * cp.cycleS;
            elapsed += n * cp.cycleS;
        }
    }

    size_t phases = cp.powerW.size();
    while (remaining > 0.0) {
        double step = rem < remaining ? rem : remaining;
        double power = cp.powerW[cur];
        double stepEnergy = power * step;
        if (power > 0.0 && stepEnergy >= soc) {
            // The battery empties inside this step; the death time
            // comes from the shared SoC-integration helper (the
            // same math BatteryModel::life runs over a full
            // capacity).
            elapsed += inSeconds(
                drainTime(joules(soc), watts(power)));
            energy += soc;
            soc = 0.0;
            state.emptyAtS[s] = startS + elapsed;
            ++partial.deaths;
            died = true;
            break;
        }
        soc -= stepEnergy;
        energy += stepEnergy;
        remaining -= step;
        elapsed += step;
        rem -= step;
        if (rem <= 0.0) {
            cur = cur + 1 == phases ? 0 : cur + 1;
            rem = cp.durS[cur];
            switches += cp.switchesIn[cur];
        }
    }

    state.cursor[s] = cur;
    state.residueS[s] = rem;
    state.socJ[s] = soc;
    state.energyJ[s] += energy;
    partial.energyJ += energy;
    partial.switches += switches;
    if (!died)
        ++partial.alive;
}

} // namespace

FleetEngine::FleetEngine()
    : _runner(ParallelRunner::global())
{}

FleetEngine::FleetEngine(const ParallelRunner &runner)
    : _runner(runner)
{}

FleetResult
FleetEngine::run(const FleetSpec &spec,
                 const Progress &progress) const
{
    spec.validate();
    SpanScope runSpan("fleet.run", "fleet");
    FleetMetrics metrics = FleetMetrics::install();

    // Phase 1: cohort profiles — the only place Platform objects and
    // simulator runs exist, one per cohort regardless of population.
    std::vector<CohortProfile> profiles(spec.cohorts.size());
    _runner.forEach(spec.cohorts.size(), [&](size_t c) {
        profiles[c] = buildProfile(spec.cohorts[c], spec.tick);
    });

    size_t nSessions = static_cast<size_t>(spec.sessionCount());
    std::vector<size_t> cohortStart(spec.cohorts.size() + 1, 0);
    for (size_t c = 0; c < spec.cohorts.size(); ++c)
        cohortStart[c + 1] =
            cohortStart[c] +
            static_cast<size_t>(spec.cohorts[c].count);

    // Phase 2: seed the session SoA. Jitter and capacity keys are
    // the *global* session index, so the population is reproducible
    // independent of chunking, threads, or cohort order changes that
    // preserve index ranges.
    SessionSoA state;
    state.resize(nSessions);
    HashNoise noise(spec.seed);
    for (size_t c = 0; c < spec.cohorts.size(); ++c) {
        for (size_t s = cohortStart[c]; s < cohortStart[c + 1]; ++s)
            state.cohort[s] = static_cast<uint32_t>(c);
    }
    _runner.forEachChunked(
        nSessions, sessionGrain, [&](size_t begin, size_t end) {
            for (size_t s = begin; s < end; ++s) {
                const CohortProfile &cp = profiles[state.cohort[s]];
                uint64_t g = static_cast<uint64_t>(s);
                double pos = 0.0;
                if (cp.jitterS > 0.0) {
                    pos = std::fmod(noise.unit(2 * g) * cp.jitterS,
                                    cp.cycleS);
                    if (!(pos >= 0.0) || pos >= cp.cycleS)
                        pos = 0.0;
                }
                // First phase whose end lies past pos.
                size_t idx = static_cast<size_t>(
                    std::upper_bound(cp.prefixS.begin() + 1,
                                     cp.prefixS.end(), pos) -
                    (cp.prefixS.begin() + 1));
                if (idx >= cp.durS.size())
                    idx = cp.durS.size() - 1;
                state.cursor[s] = static_cast<uint32_t>(idx);
                state.residueS[s] = cp.prefixS[idx + 1] - pos;
                double capacity =
                    cp.capacityJ *
                    (1.0 + cp.spread * noise.signedUnit(2 * g + 1));
                state.socJ[s] = capacity;
                state.energyJ[s] = 0.0;
                state.emptyAtS[s] = -1.0;
            }
        });

    // Phase 3: the shared-clock bucket loop. Partials land in slots
    // keyed by chunk index (begin / grain) and reduce in canonical
    // chunk order — bit-identical aggregates at any thread count.
    FleetResult result;
    result.sessions = nSessions;
    result.bucketS = inSeconds(spec.bucket);
    result.horizonS = inSeconds(spec.horizon);
    result.stormK = spec.stormK;
    uint64_t nBuckets = spec.bucketCount();
    size_t nChunks = nSessions == 0
                         ? 0
                         : (nSessions + sessionGrain - 1) /
                               sessionGrain;
    std::vector<BucketPartial> partials(nChunks);
    result.buckets.reserve(
        std::min<uint64_t>(nBuckets, 1 << 20));

    for (uint64_t b = 0; b < nBuckets; ++b) {
        SpanScope bucketSpan("fleet.bucket", "fleet");
        std::chrono::steady_clock::time_point wallStart;
        if (metrics.active)
            wallStart = std::chrono::steady_clock::now();

        double startS =
            static_cast<double>(b) * result.bucketS;
        double dtS =
            std::min(result.bucketS, result.horizonS - startS);
        partials.assign(nChunks, BucketPartial{});
        _runner.forEachChunked(
            nSessions, sessionGrain,
            [&](size_t begin, size_t end) {
                BucketPartial partial;
                for (size_t s = begin; s < end; ++s)
                    advanceSession(profiles[state.cohort[s]], s,
                                   state, startS, dtS, partial);
                partials[begin / sessionGrain] = partial;
            });

        FleetBucketRow row;
        row.index = b;
        row.tEndS = startS + dtS;
        for (const BucketPartial &partial : partials) {
            row.energyJ += partial.energyJ;
            row.modeSwitches += partial.switches;
            row.deaths += partial.deaths;
            row.alive += partial.alive;
        }
        row.powerW = dtS > 0.0 ? row.energyJ / dtS : 0.0;
        result.totalEnergyJ += row.energyJ;
        result.totalSwitches += row.modeSwitches;
        result.deaths += row.deaths;
        result.simulatedS = row.tEndS;
        result.buckets.push_back(row);

        if (metrics.active) {
            MetricsRegistry *r = MetricsRegistry::current();
            if (r) {
                r->add(metrics.bucketsDone);
                double us =
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() -
                        wallStart)
                        .count();
                r->observe(metrics.bucketUs, us);
            }
        }

        if (progress)
            progress(b + 1, nBuckets);

        // The whole fleet is dark; further buckets are all zeros.
        if (row.alive == 0)
            break;
    }

    // Storm verdict: a bucket switches more than stormK × the mean.
    if (!result.buckets.empty())
        result.stormBaseline =
            static_cast<double>(result.totalSwitches) /
            static_cast<double>(result.buckets.size());
    for (FleetBucketRow &row : result.buckets) {
        row.storm =
            row.modeSwitches > 0 &&
            static_cast<double>(row.modeSwitches) >
                spec.stormK * result.stormBaseline;
        if (row.storm)
            ++result.stormBuckets;
    }

    // Distributions, built serially in global session order (thread
    // count can't reorder histogram accumulation). Battery life
    // records actual deaths; time-to-empty projects survivors from
    // their mean draw via the shared drainTime helper.
    result.batteryLifeH.name = "fleet.battery_life_h";
    result.batteryLifeH.kind = MetricKind::Histogram;
    result.timeToEmptyH.name = "fleet.time_to_empty_h";
    result.timeToEmptyH.kind = MetricKind::Histogram;
    for (size_t s = 0; s < nSessions; ++s) {
        if (state.emptyAtS[s] >= 0.0) {
            double hours = state.emptyAtS[s] / 3600.0;
            histogramObserve(result.batteryLifeH, hours);
            histogramObserve(result.timeToEmptyH, hours);
        } else if (state.energyJ[s] > 0.0 &&
                   result.simulatedS > 0.0) {
            double meanW =
                state.energyJ[s] / result.simulatedS;
            double hours =
                (result.simulatedS +
                 inSeconds(drainTime(joules(state.socJ[s]),
                                     watts(meanW)))) /
                3600.0;
            histogramObserve(result.timeToEmptyH, hours);
        }
    }

    for (size_t c = 0; c < spec.cohorts.size(); ++c) {
        const FleetCohort &cohort = spec.cohorts[c];
        FleetCohortInfo info;
        info.name = cohort.name;
        info.count = cohort.count;
        info.platform = cohort.platform.name;
        info.pdn = pdnKindToString(cohort.pdn);
        info.mode = toString(dynamicModes(cohort) ? cohort.mode
                                                  : SimMode::Static);
        info.trace = cohort.trace.name();
        info.phases = profiles[c].powerW.size();
        info.cycleS = profiles[c].cycleS;
        result.cohorts.push_back(std::move(info));
    }

    if (metrics.active) {
        MetricsRegistry *r = MetricsRegistry::current();
        if (r) {
            r->add(metrics.sessions, result.sessions);
            r->add(metrics.deaths, result.deaths);
            r->add(metrics.switches, result.totalSwitches);
            r->add(metrics.stormBuckets, result.stormBuckets);
            MetricsRegistry::flushThread();
        }
    }

    return result;
}

} // namespace pdnspot
