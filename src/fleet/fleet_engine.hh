/**
 * @file
 * FleetEngine: event-stepped population simulation over the batched
 * inner loop.
 *
 * The engine advances millions of lightweight device sessions on a
 * shared virtual clock in fixed time buckets. The expensive physics
 * runs once per *cohort*, not per session: each cohort's trace is
 * resolved into PhaseSoA form and profiled into dense per-phase
 * supply-power / mode-switch arrays through the existing simulator
 * stack (EteeMemo-memoized static/oracle evaluation, or one probed
 * PMU run whose waveform the cohort replays). Per-session mutable
 * state is packed structure-of-arrays — phase cursor, intra-phase
 * residue, battery charge, accumulated energy, death time — a few
 * tens of bytes per session, no per-session Platform objects.
 *
 * Parallelism follows the campaign discipline: sessions are chunked
 * with a *fixed* grain (thread-count independent), per-chunk partial
 * aggregates land in a slot keyed by chunk index, and the per-bucket
 * reduction walks chunks in canonical order — so the aggregate CSV
 * is byte-identical at any thread count.
 */

#ifndef PDNSPOT_FLEET_FLEET_ENGINE_HH
#define PDNSPOT_FLEET_FLEET_ENGINE_HH

#include <functional>

#include "common/parallel.hh"
#include "fleet/fleet_result.hh"
#include "fleet/fleet_spec.hh"

namespace pdnspot
{

/** Executes fleet specs; see the file comment for the model. */
class FleetEngine
{
  public:
    /** Uses the process-wide shared pool. */
    FleetEngine();

    /** Uses the given pool (1 thread = fully serial). */
    explicit FleetEngine(const ParallelRunner &runner);

    /**
     * Sessions are claimed in fixed-size ranges of this many
     * indices; the chunk partition depends only on the session
     * count, never on the thread count (the determinism contract).
     */
    static constexpr size_t sessionGrain = 1024;

    /**
     * Called after each completed bucket with (buckets done, buckets
     * total) — the CLI progress heartbeat. Purely observational and
     * invoked on the calling thread, in bucket order.
     */
    using Progress = std::function<void(uint64_t, uint64_t)>;

    /**
     * Run the spec (validated first) to its horizon, or until every
     * session's battery is empty, whichever comes first.
     */
    FleetResult run(const FleetSpec &spec,
                    const Progress &progress = {}) const;

  private:
    const ParallelRunner &_runner;
};

} // namespace pdnspot

#endif // PDNSPOT_FLEET_FLEET_ENGINE_HH
