/**
 * @file
 * Declarative description of one fleet-population simulation.
 *
 * The campaign subsystem evaluates one device per cell; a fleet spec
 * describes a *population*: cohorts of identically-configured device
 * sessions (count × platform × PDN kind × sim mode × trace), each
 * session an independent position in its cohort's cyclic trace with
 * a seeded start-offset jitter and battery-capacity spread. The
 * FleetEngine (fleet_engine.hh) advances every session on a shared
 * virtual clock in fixed time buckets and reports fleet aggregates —
 * power-draw time series, battery-life distributions, sessions-alive
 * curve, mode-switch storms.
 */

#ifndef PDNSPOT_FLEET_FLEET_SPEC_HH
#define PDNSPOT_FLEET_FLEET_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign_spec.hh"
#include "pdn/pdn_model.hh"
#include "pdnspot/platform.hh"
#include "workload/trace_source.hh"

namespace pdnspot
{

/**
 * One cohort: `count` sessions sharing a platform configuration, PDN
 * kind, simulation mode and trace. Sessions differ only in their
 * seeded start offset into the cyclic trace and their battery
 * capacity draw from the spread.
 */
struct FleetCohort
{
    /** Identifies the cohort in summaries and error messages. */
    std::string name;

    /** Sessions in this cohort. */
    uint64_t count = 0;

    PlatformConfig platform;
    PdnKind pdn = PdnKind::FlexWatts;

    /**
     * How the cohort's trace profile is built (campaign semantics):
     * Static evaluates every phase under the PDN's default mode
     * logic; Pmu runs the cohort trace once under realistic PMU
     * control and sessions replay the captured waveform at their own
     * offsets; Oracle picks each phase's best hybrid mode instantly.
     * Non-FlexWatts PDNs always profile statically.
     */
    SimMode mode = SimMode::Static;

    /** The cohort's workload, replayed cyclically by every session. */
    TraceSpec trace;

    /**
     * Maximum start offset into the cyclic trace. Each session i
     * starts at unit-noise(i) × startJitter (mod the cycle length),
     * desynchronizing governor decisions across the cohort. Zero
     * starts every session at phase 0.
     */
    Time startJitter;

    /** Nominal usable battery capacity per session. */
    double batteryWh = 50.0;

    /**
     * Relative capacity spread in [0, 1): session capacities are
     * batteryWh × (1 + spread × signed-noise(i)), modelling cell
     * aging and SKU variation across the fleet.
     */
    double batterySpread = 0.0;
};

/** One fleet study: the cohorts plus the shared-clock parameters. */
struct FleetSpec
{
    std::vector<FleetCohort> cohorts;

    /** Aggregation bucket on the shared virtual clock. */
    Time bucket = seconds(1.0);

    /** Simulated horizon; the last bucket may be partial. */
    Time horizon = seconds(3600.0);

    /**
     * Interval-simulator step for PMU-mode cohort profiling (bounds
     * switch-flow resolution, the CampaignSpec::tick analogue).
     * Cohort traces may carry a per-trace override (TraceSpec::tick).
     */
    Time tick = microseconds(50.0);

    /** Seeds the per-session jitter and capacity-spread noise. */
    uint64_t seed = 1;

    /**
     * Storm-detector threshold: a bucket is a mode-switch storm when
     * its switch count exceeds stormK × the run's mean switches per
     * bucket (and is non-zero).
     */
    double stormK = 4.0;

    /** Total sessions across all cohorts. */
    uint64_t sessionCount() const;

    /** Buckets the horizon spans (last one possibly partial). */
    uint64_t bucketCount() const;

    /**
     * fatal() unless the spec is runnable: at least one cohort, each
     * with a unique CSV-safe name, a positive count, a well-formed
     * trace (TraceSpec::validate), a positive finite battery
     * capacity, a spread in [0, 1) and a non-negative jitter; a
     * positive bucket no longer than the horizon, a positive tick, a
     * positive finite stormK, and a bucket count small enough to
     * aggregate (≤ 10^7).
     */
    void validate() const;
};

} // namespace pdnspot

#endif // PDNSPOT_FLEET_FLEET_SPEC_HH
