#include "fleet/fleet_result.hh"

#include <ostream>

#include "common/csv.hh"
#include "common/logging.hh"

namespace pdnspot
{

double
FleetResult::meanPowerW() const
{
    // Sessions stop drawing when they die, so normalize by the
    // aggregate session-time actually powered, approximated by the
    // simulated span (exact while every session lives).
    if (simulatedS <= 0.0 || sessions == 0)
        return 0.0;
    return totalEnergyJ /
           (simulatedS * static_cast<double>(sessions));
}

void
FleetResult::writeCsv(std::ostream &os) const
{
    os << "bucket,t_s,sessions_alive,supply_power_w,energy_j,"
          "mode_switches,deaths,storm\n";
    for (const FleetBucketRow &row : buckets) {
        os << row.index << ',' << csvExactDouble(row.tEndS) << ','
           << row.alive << ',' << csvExactDouble(row.powerW) << ','
           << csvExactDouble(row.energyJ) << ',' << row.modeSwitches
           << ',' << row.deaths << ',' << (row.storm ? 1 : 0)
           << '\n';
    }
}

namespace
{

/** "p50 x, p95 y, p99 z over n samples" for a histogram snapshot. */
std::string
quantileLine(const MetricSnapshot &h)
{
    if (h.count == 0)
        return "no samples";
    return strprintf(
        "p50 %.6g, p95 %.6g, p99 %.6g, min %.6g, max %.6g over "
        "%llu samples",
        histogramQuantile(h, 0.50), histogramQuantile(h, 0.95),
        histogramQuantile(h, 0.99), h.min, h.max,
        static_cast<unsigned long long>(h.count));
}

} // namespace

void
FleetResult::writeSummary(std::ostream &os) const
{
    os << strprintf(
        "fleet: %llu sessions in %zu cohorts, %zu buckets of %.6g s "
        "(horizon %.6g s, simulated %.6g s)\n",
        static_cast<unsigned long long>(sessions), cohorts.size(),
        buckets.size(), bucketS, horizonS, simulatedS);
    for (const FleetCohortInfo &c : cohorts) {
        os << strprintf(
            "cohort \"%s\": %llu sessions, %s, %s, %s mode, trace "
            "\"%s\" (%llu phases, %.6g s cycle)\n",
            c.name.c_str(),
            static_cast<unsigned long long>(c.count),
            c.platform.c_str(), c.pdn.c_str(), c.mode.c_str(),
            c.trace.c_str(),
            static_cast<unsigned long long>(c.phases), c.cycleS);
    }
    os << strprintf(
        "energy: %.6g J supplied, mean per-session power %.6g W\n",
        totalEnergyJ, meanPowerW());
    os << strprintf(
        "switches: %llu total, baseline %.6g/bucket, %llu storm "
        "buckets (k = %.6g)\n",
        static_cast<unsigned long long>(totalSwitches),
        stormBaseline,
        static_cast<unsigned long long>(stormBuckets), stormK);
    os << strprintf(
        "deaths: %llu/%llu sessions empty within the horizon\n",
        static_cast<unsigned long long>(deaths),
        static_cast<unsigned long long>(sessions));
    os << "battery life (h): " << quantileLine(batteryLifeH) << "\n";
    os << "time to empty (h): " << quantileLine(timeToEmptyH)
       << "\n";
}

} // namespace pdnspot
