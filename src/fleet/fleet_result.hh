/**
 * @file
 * Aggregate outputs of one fleet simulation.
 *
 * Fleet runs never materialize per-session rows — a million-session
 * population would dwarf any useful output. The result is the set of
 * fleet-wide aggregates the population-scale questions need: a
 * per-bucket time series (sessions alive, supply power, energy, mode
 * switches, battery deaths, storm flag), battery-life and
 * time-to-empty distributions as log2-bucket histogram snapshots
 * (obs/metrics.hh — histogramQuantile works on them directly), and
 * the storm-detector verdict. The CSV and summary writers are
 * deterministic: byte-identical at any thread count (the engine
 * merges partial aggregates in canonical chunk order).
 */

#ifndef PDNSPOT_FLEET_FLEET_RESULT_HH
#define PDNSPOT_FLEET_FLEET_RESULT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace pdnspot
{

/** One bucket of the fleet time series. */
struct FleetBucketRow
{
    uint64_t index = 0;  ///< bucket number, 0-based
    double tEndS = 0.0;  ///< virtual-clock time at the bucket's end
    uint64_t alive = 0;  ///< sessions with charge left at tEndS
    double powerW = 0.0; ///< fleet-wide mean supply power over bucket
    double energyJ = 0.0;      ///< fleet supply energy this bucket
    uint64_t modeSwitches = 0; ///< hybrid mode switches this bucket
    uint64_t deaths = 0;       ///< sessions that emptied this bucket
    bool storm = false;        ///< switch rate above baseline × k

    bool operator==(const FleetBucketRow &) const = default;
};

/** Echo of one cohort's shape, for summaries and reports. */
struct FleetCohortInfo
{
    std::string name;
    uint64_t count = 0;
    std::string platform;
    std::string pdn;   ///< pdnKindToString spelling
    std::string mode;  ///< toString(SimMode) spelling
    std::string trace; ///< trace name
    uint64_t phases = 0;  ///< phases per trace cycle
    double cycleS = 0.0;  ///< trace cycle period
};

/** Everything one FleetEngine::run produces. */
struct FleetResult
{
    uint64_t sessions = 0;
    uint64_t deaths = 0; ///< sessions that emptied within the run

    double bucketS = 0.0;
    double horizonS = 0.0;

    /**
     * Virtual time actually simulated: the horizon, or the end of
     * the bucket in which the last session died (the engine stops
     * early once the whole fleet is dark).
     */
    double simulatedS = 0.0;

    double totalEnergyJ = 0.0;
    uint64_t totalSwitches = 0;

    /** Mean switches per bucket (the storm-detector baseline). */
    double stormBaseline = 0.0;
    double stormK = 0.0;
    uint64_t stormBuckets = 0;

    std::vector<FleetCohortInfo> cohorts;
    std::vector<FleetBucketRow> buckets;

    /**
     * Battery life in hours of the sessions that emptied within the
     * run (empty when none did). Log2-bucketed like every registry
     * histogram; quantiles via histogramQuantile.
     */
    MetricSnapshot batteryLifeH;

    /**
     * Time to empty in hours across *all* sessions: actual for dead
     * sessions, projected for survivors (simulated time plus
     * drainTime of the remaining charge at the session's mean draw).
     */
    MetricSnapshot timeToEmptyH;

    /** Fleet-wide mean supply power over the simulated span. */
    double meanPowerW() const;

    /**
     * The aggregate time series as CSV (csvExactDouble numbers, so
     * the byte-identity contracts are exact):
     * bucket,t_s,sessions_alive,supply_power_w,energy_j,
     * mode_switches,deaths,storm
     */
    void writeCsv(std::ostream &os) const;

    /**
     * Deterministic human-readable run summary: population and
     * cohort shapes, energy/power totals, switch + storm verdicts,
     * death counts and the distribution quantiles. Byte-identical at
     * any thread count (golden-file material).
     */
    void writeSummary(std::ostream &os) const;
};

} // namespace pdnspot

#endif // PDNSPOT_FLEET_FLEET_RESULT_HH
