#include "fleet/fleet_spec.hh"

#include <cmath>

#include "common/csv.hh"
#include "common/logging.hh"

namespace pdnspot
{

uint64_t
FleetSpec::sessionCount() const
{
    uint64_t total = 0;
    for (const FleetCohort &cohort : cohorts)
        total += cohort.count;
    return total;
}

uint64_t
FleetSpec::bucketCount() const
{
    double buckets = std::ceil(inSeconds(horizon) / inSeconds(bucket));
    return buckets > 0.0 ? static_cast<uint64_t>(buckets) : 0;
}

void
FleetSpec::validate() const
{
    if (cohorts.empty())
        fatal("FleetSpec: at least one cohort required");
    if (bucket <= seconds(0.0))
        fatal("FleetSpec: non-positive bucket");
    if (horizon < bucket)
        fatal("FleetSpec: horizon shorter than one bucket");
    if (tick <= seconds(0.0))
        fatal("FleetSpec: non-positive tick");
    if (!std::isfinite(stormK) || stormK <= 0.0)
        fatal("FleetSpec: storm_k must be positive and finite");
    if (bucketCount() > 10000000)
        fatal(strprintf("FleetSpec: horizon spans %llu buckets "
                        "(limit 10000000); coarsen the bucket",
                        static_cast<unsigned long long>(
                            bucketCount())));

    for (size_t i = 0; i < cohorts.size(); ++i) {
        const FleetCohort &c = cohorts[i];
        if (c.name.empty())
            fatal("FleetSpec: unnamed cohort");
        if (!csvFieldSafe(c.name))
            fatal(strprintf("FleetSpec: cohort name \"%s\" contains "
                            "CSV metacharacters",
                            c.name.c_str()));
        for (size_t j = i + 1; j < cohorts.size(); ++j) {
            if (c.name == cohorts[j].name)
                fatal(strprintf("FleetSpec: duplicate cohort name "
                                "\"%s\"",
                                c.name.c_str()));
        }
        if (c.count < 1)
            fatal(strprintf("FleetSpec: cohort \"%s\" has zero "
                            "sessions",
                            c.name.c_str()));
        c.trace.validate();
        if (!std::isfinite(c.batteryWh) || c.batteryWh <= 0.0)
            fatal(strprintf("FleetSpec: cohort \"%s\" battery_wh "
                            "must be positive and finite",
                            c.name.c_str()));
        if (!std::isfinite(c.batterySpread) || c.batterySpread < 0.0 ||
            c.batterySpread >= 1.0)
            fatal(strprintf("FleetSpec: cohort \"%s\" battery_spread "
                            "must lie in [0, 1)",
                            c.name.c_str()));
        if (c.startJitter < seconds(0.0))
            fatal(strprintf("FleetSpec: cohort \"%s\" has a negative "
                            "start jitter",
                            c.name.c_str()));
    }
}

} // namespace pdnspot
