/**
 * @file
 * Per-TDP operating-point construction.
 *
 * The paper's PDNspot takes each domain's nominal power, voltage and
 * activity as inputs measured on real silicon (Sec. 4.2, Table 2).
 * OperatingPointModel reconstructs those inputs from the published
 * calibration anchors:
 *
 *  - nominal power ranges per domain over the 4-50 W TDP span
 *    (Table 2: cores 0.6-30 W, LLC 0.5-4 W, GFX 0.58-29.4 W),
 *  - baseline compute frequency per TDP (e.g. 0.9 GHz cores at 4 W,
 *    Sec. 7.1),
 *  - the battery-life power-state anchors (C0MIN 2.5 W, C2 1.2 W,
 *    C8 0.13 W, Sec. 5),
 *  - leakage fractions (GFX 45%, others 22%) and the V^2.8 leakage
 *    exponent,
 *  - the fan-less junction-temperature policy (80 C at 4-8 W TDP,
 *    100 C above, 50 C for battery-life workloads).
 *
 * Dynamic power scales with the workload's application ratio (AR)
 * relative to the AR=56% reference used throughout the paper (Fig. 5);
 * leakage scales with temperature, not AR. A frequency multiplier
 * supports the performance model's what-if question: what does the
 * platform draw if the compute clock moves off the TDP baseline?
 */

#ifndef PDNSPOT_POWER_OPERATING_POINT_HH
#define PDNSPOT_POWER_OPERATING_POINT_HH

#include <optional>

#include "common/interp.hh"
#include "common/units.hh"
#include "power/leakage.hh"
#include "power/platform_state.hh"
#include "power/vf_curve.hh"

namespace pdnspot
{

/** Builds PlatformState snapshots for any supported operating point. */
class OperatingPointModel
{
  public:
    /** The AR at which the Table 2 nominal powers are anchored. */
    static constexpr double referenceAr = 0.56;

    /** One operating-point request. */
    struct Query
    {
        Power tdp = watts(15.0);
        WorkloadType type = WorkloadType::MultiThread;
        double ar = referenceAr;
        PackageCState cstate = PackageCState::C0;
        std::optional<Celsius> tj;    ///< default: TDP/C-state policy
        double freqMultiplier = 1.0;  ///< compute-clock scaling
    };

    OperatingPointModel();

    /** Construct the full platform snapshot for a query. */
    PlatformState build(const Query &q) const;

    /** Baseline core frequency sustained at this TDP (CPU loads). */
    Frequency coreBaseFrequency(Power tdp) const;

    /** Baseline graphics frequency at this TDP (graphics loads). */
    Frequency gfxBaseFrequency(Power tdp) const;

    /** Fan-less junction-temperature policy for active workloads. */
    Celsius defaultTj(Power tdp) const;

    /** Both-cores nominal power at the TDP baseline (Table 2 row). */
    Power coresNominal(Power tdp) const;

    /** LLC nominal power at the TDP baseline (Table 2 row). */
    Power llcNominal(Power tdp) const;

    /** GFX nominal power at the TDP baseline (Table 2 row). */
    Power gfxNominal(Power tdp) const;

    const VfCurve &coreVf() const { return _coreVf; }
    const VfCurve &gfxVf() const { return _gfxVf; }
    const LeakageModel &leakage() const { return _leakage; }

    /** Supported TDP range (4-50 W). */
    static Power minTdp() { return watts(4.0); }
    static Power maxTdp() { return watts(50.0); }

  private:
    /** Fill one compute-domain state with AR/temperature scaling. */
    DomainState makeDomain(Power base_power, Voltage voltage,
                           double leak_fraction, double ar,
                           double thermal_scale, Frequency freq) const;

    /** Rescale a domain for a compute-clock multiplier. */
    void scaleFrequency(DomainState &d, const VfCurve &vf,
                        double multiplier) const;

    PlatformState buildActive(const Query &q) const;
    PlatformState buildCState(const Query &q) const;

    VfCurve _coreVf;
    VfCurve _gfxVf;
    LeakageModel _leakage;
    LinearTable _coresNom;   ///< both cores, multi-thread, W vs TDP(W)
    LinearTable _llcNom;     ///< W vs TDP(W)
    LinearTable _gfxNom;     ///< W vs TDP(W), graphics workload
    LinearTable _coreFreq;   ///< GHz vs TDP(W)
    LinearTable _gfxFreq;    ///< GHz vs TDP(W)
};

} // namespace pdnspot

#endif // PDNSPOT_POWER_OPERATING_POINT_HH
