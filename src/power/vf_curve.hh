/**
 * @file
 * Voltage-frequency curves for the compute domains.
 *
 * Modern PMUs store voltage-as-a-function-of-frequency tables fused
 * post-silicon (paper Sec. 6, footnote 11). We model the curve as a
 * quadratic V(f) = v0 + a*f + b*f^2, which captures the super-linear
 * voltage demand toward a domain's Fmax, and clamp it to the domain's
 * legal frequency range (Table 1: cores 0.8-4 GHz, GFX 0.1-1.2 GHz).
 */

#ifndef PDNSPOT_POWER_VF_CURVE_HH
#define PDNSPOT_POWER_VF_CURVE_HH

#include "common/units.hh"

namespace pdnspot
{

/** A quadratic voltage-frequency curve with a legal frequency range. */
class VfCurve
{
  public:
    /**
     * @param v0 voltage intercept
     * @param lin linear coefficient (volts per GHz)
     * @param quad quadratic coefficient (volts per GHz^2)
     */
    VfCurve(Voltage v0, double lin, double quad, Frequency fmin,
            Frequency fmax);

    /** Supply voltage required at frequency f (f clamped to range). */
    Voltage voltageAt(Frequency f) const;

    /** Local slope dV/df in volts per GHz at f. */
    double slopeAt(Frequency f) const;

    Frequency fmin() const { return _fmin; }
    Frequency fmax() const { return _fmax; }

    /** Clamp a frequency into the legal range. */
    Frequency clamp(Frequency f) const;

    /** Curve for the CPU-core clock domain (0.8-4 GHz). */
    static VfCurve cores();

    /** Curve for the graphics engines (0.1-1.2 GHz). */
    static VfCurve graphics();

  private:
    Voltage _v0;
    double _lin;
    double _quad;
    Frequency _fmin;
    Frequency _fmax;
};

} // namespace pdnspot

#endif // PDNSPOT_POWER_VF_CURVE_HH
