#include "power/operating_point.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pdnspot
{

namespace
{

// Leakage fractions at the reference operating point (paper Sec. 3.1,
// following Rusu et al., ISSCC 2014).
constexpr double flGfx = 0.45;
constexpr double flOther = 0.22;

// Uncore rails: fixed-frequency domains with narrow power ranges.
constexpr double saVoltageV = 0.85;
constexpr double ioVoltageV = 1.05;
constexpr double saActivePowerW = 0.55;
constexpr double ioActivePowerW = 0.45;
constexpr double uncoreAr = 0.8;

// Share of the multi-thread cores budget a single-thread workload
// burns (one core at turbo frequency, the sibling gated).
constexpr double singleThreadShare = 0.62;
constexpr double singleThreadTurbo = 1.15;

// Share of the cores budget CPU cores keep during graphics workloads
// (paper Sec. 7.1: 10-20% of the budget goes to the cores).
constexpr double graphicsCoreShare = 0.15;

// Cores run at a low-but-nonzero clock while feeding the GFX pipeline.
constexpr double graphicsCoreFreqGhz = 1.2;

// The LLC serves high-bandwidth GFX traffic during graphics workloads
// and so runs at an elevated frequency/voltage tied to the GFX rail
// (paper Sec. 7.1), never below the core voltage plane it shares.
constexpr double graphicsLlcGfxVoltageRatio = 0.9;

// Battery-life C-state anchor loads (paper Sec. 5, Observation 3),
// characterized at Tj = 50 C.
struct CStateLoads
{
    double coresW;
    double llcW;
    double gfxW;
    double saW;
    double ioW;
};

const CStateLoads &
cstateLoads(PackageCState state)
{
    // Totals: C0MIN 2.5 W, C2 1.2 W, C3 0.8 W, C6 0.4 W, C7 0.25 W,
    // C8 0.13 W, matching the paper's video-playback example and the
    // Fig. 4j power-state ladder.
    static const CStateLoads c0min{0.90, 0.25, 0.35, 0.55, 0.45};
    static const CStateLoads c2{0.0, 0.08, 0.0, 0.66, 0.46};
    static const CStateLoads c3{0.0, 0.0, 0.0, 0.47, 0.33};
    static const CStateLoads c6{0.0, 0.0, 0.0, 0.26, 0.14};
    static const CStateLoads c7{0.0, 0.0, 0.0, 0.165, 0.085};
    static const CStateLoads c8{0.0, 0.0, 0.0, 0.095, 0.035};
    switch (state) {
      case PackageCState::C0Min:
        return c0min;
      case PackageCState::C2:
        return c2;
      case PackageCState::C3:
        return c3;
      case PackageCState::C6:
        return c6;
      case PackageCState::C7:
        return c7;
      case PackageCState::C8:
        return c8;
      case PackageCState::C0:
        break;
    }
    panic("cstateLoads: C0 has no C-state load table");
}

constexpr double batteryTjC = 50.0;
constexpr double cstateAr = 0.30;

} // anonymous namespace

OperatingPointModel::OperatingPointModel()
    : _coreVf(VfCurve::cores()),
      _gfxVf(VfCurve::graphics()),
      _leakage(),
      // Table 2 nominal-power anchors across the 4-50 W TDP range.
      _coresNom({{4.0, 0.60}, {8.0, 1.80}, {10.0, 2.50}, {18.0, 7.00},
                 {25.0, 12.0}, {36.0, 20.0}, {50.0, 30.0}}),
      _llcNom({{4.0, 0.50}, {8.0, 0.80}, {10.0, 1.00}, {18.0, 1.80},
               {25.0, 2.40}, {36.0, 3.20}, {50.0, 4.00}}),
      _gfxNom({{4.0, 0.58}, {8.0, 1.90}, {10.0, 2.60}, {18.0, 7.20},
               {25.0, 12.3}, {36.0, 20.3}, {50.0, 29.4}}),
      // Baseline sustained frequencies per TDP (Sec. 7.1: 0.9 GHz
      // cores at 4 W; Table 1 ranges).
      _coreFreq({{4.0, 0.9}, {8.0, 1.6}, {10.0, 1.9}, {18.0, 2.7},
                 {25.0, 3.1}, {36.0, 3.6}, {50.0, 4.0}}),
      _gfxFreq({{4.0, 0.40}, {8.0, 0.55}, {10.0, 0.65}, {18.0, 0.85},
                {25.0, 0.95}, {36.0, 1.10}, {50.0, 1.20}})
{}

Frequency
OperatingPointModel::coreBaseFrequency(Power tdp) const
{
    return gigahertz(_coreFreq.at(inWatts(tdp)));
}

Frequency
OperatingPointModel::gfxBaseFrequency(Power tdp) const
{
    return gigahertz(_gfxFreq.at(inWatts(tdp)));
}

Celsius
OperatingPointModel::defaultTj(Power tdp) const
{
    // Fan-less policy of Sec. 7.1: Tj 80 C for 4-8 W, 100 C above.
    return tdp <= watts(8.0) ? Celsius(80.0) : Celsius(100.0);
}

Power
OperatingPointModel::coresNominal(Power tdp) const
{
    return watts(_coresNom.at(inWatts(tdp)));
}

Power
OperatingPointModel::llcNominal(Power tdp) const
{
    return watts(_llcNom.at(inWatts(tdp)));
}

Power
OperatingPointModel::gfxNominal(Power tdp) const
{
    return watts(_gfxNom.at(inWatts(tdp)));
}

DomainState
OperatingPointModel::makeDomain(Power base_power, Voltage voltage,
                                double leak_fraction, double ar,
                                double thermal_scale,
                                Frequency freq) const
{
    DomainState d;
    d.active = true;
    d.voltage = voltage;
    d.ar = ar;
    d.frequency = freq;

    // The power-budget governor keeps a domain near its TDP-anchored
    // envelope regardless of the workload's AR (a low-AR workload just
    // sustains a higher clock), so PNOM does not scale with AR; the AR
    // enters the PDN model only through the load-line peak power
    // Ppeak = PD / AR (Eq. 3). Leakage does follow temperature.
    double leak = leak_fraction * thermal_scale;
    double dyn = 1.0 - leak_fraction;
    d.nominalPower = base_power * (leak + dyn);
    d.leakageFraction = (leak + dyn) > 0.0 ? leak / (leak + dyn) : 0.0;
    return d;
}

void
OperatingPointModel::scaleFrequency(DomainState &d, const VfCurve &vf,
                                    double multiplier) const
{
    if (multiplier == 1.0 || !d.active)
        return;
    Frequency f0 = d.frequency;
    Frequency f1 = vf.clamp(f0 * multiplier);
    Voltage v0 = d.voltage;
    Voltage v1 = vf.voltageAt(f1);

    double dyn0 = (1.0 - d.leakageFraction);
    double leak0 = d.leakageFraction;
    double dyn1 = dyn0 * (f1 / f0) *
                  LeakageModel::dynamicVoltageScale(v0, v1);
    double leak1 = leak0 * _leakage.voltageScale(v0, v1);

    d.nominalPower = d.nominalPower * (dyn1 + leak1);
    d.leakageFraction = leak1 / (dyn1 + leak1);
    d.voltage = v1;
    d.frequency = f1;
}

PlatformState
OperatingPointModel::build(const Query &q) const
{
    if (q.tdp < minTdp() || q.tdp > maxTdp()) {
        fatal(strprintf("OperatingPointModel: TDP %.1fW outside the "
                        "supported 4-50W range", inWatts(q.tdp)));
    }
    if (q.freqMultiplier <= 0.0)
        fatal("OperatingPointModel: frequency multiplier must be > 0");

    if (q.cstate == PackageCState::C0) {
        // Only active states consume the workload AR; gated states
        // pin their own (cstateAr), so an idle phase may carry any
        // AR a trace importer put in its column — including an
        // exact 0.
        if (q.ar <= 0.0 || q.ar > 1.0)
            fatal("OperatingPointModel: AR must be in (0, 1]");
        return buildActive(q);
    }
    return buildCState(q);
}

PlatformState
OperatingPointModel::buildActive(const Query &q) const
{
    PlatformState s;
    s.tdp = q.tdp;
    s.workloadType = q.type;
    s.ar = q.ar;
    s.cstate = PackageCState::C0;
    s.tj = q.tj.value_or(defaultTj(q.tdp));

    double thermal =
        _leakage.thermalScale(defaultTj(q.tdp), s.tj);

    Power cores_nom = coresNominal(q.tdp);
    Power llc_nom = llcNominal(q.tdp);
    Frequency fcore = coreBaseFrequency(q.tdp);
    Voltage vcore = _coreVf.voltageAt(fcore);

    switch (q.type) {
      case WorkloadType::SingleThread: {
        Frequency f = _coreVf.clamp(fcore * singleThreadTurbo);
        Voltage v = _coreVf.voltageAt(f);
        s.domain(DomainId::Core0) =
            makeDomain(cores_nom * singleThreadShare, v, flOther, q.ar,
                       thermal, f);
        s.domain(DomainId::Core1).active = false;
        s.domain(DomainId::LLC) =
            makeDomain(llc_nom, v, flOther, q.ar, thermal, Frequency());
        s.domain(DomainId::GFX).active = false;
        break;
      }
      case WorkloadType::MultiThread:
      case WorkloadType::BatteryLife: {
        s.domain(DomainId::Core0) =
            makeDomain(cores_nom * 0.5, vcore, flOther, q.ar, thermal,
                       fcore);
        s.domain(DomainId::Core1) =
            makeDomain(cores_nom * 0.5, vcore, flOther, q.ar, thermal,
                       fcore);
        s.domain(DomainId::LLC) =
            makeDomain(llc_nom, vcore, flOther, q.ar, thermal,
                       Frequency());
        s.domain(DomainId::GFX).active = false;
        break;
      }
      case WorkloadType::Graphics: {
        Frequency fcore_gfx = _coreVf.clamp(gigahertz(graphicsCoreFreqGhz));
        Voltage vcore_gfx = _coreVf.voltageAt(fcore_gfx);
        Power core_part = cores_nom * graphicsCoreShare;
        s.domain(DomainId::Core0) =
            makeDomain(core_part * 0.5, vcore_gfx, flOther, q.ar,
                       thermal, fcore_gfx);
        s.domain(DomainId::Core1) =
            makeDomain(core_part * 0.5, vcore_gfx, flOther, q.ar,
                       thermal, fcore_gfx);
        Frequency fgfx = gfxBaseFrequency(q.tdp);
        Voltage vgfx = _gfxVf.voltageAt(fgfx);
        Voltage vllc =
            std::max(vcore_gfx, vgfx * graphicsLlcGfxVoltageRatio);
        s.domain(DomainId::LLC) =
            makeDomain(llc_nom, vllc, flOther, q.ar, thermal,
                       Frequency());
        s.domain(DomainId::GFX) =
            makeDomain(gfxNominal(q.tdp), vgfx, flGfx, q.ar, thermal,
                       fgfx);
        break;
      }
    }

    s.domain(DomainId::SA) =
        makeDomain(watts(saActivePowerW), volts(saVoltageV), flOther,
                   uncoreAr, thermal, Frequency());
    s.domain(DomainId::IO) =
        makeDomain(watts(ioActivePowerW), volts(ioVoltageV), flOther,
                   uncoreAr, thermal, Frequency());
    // SA/IO power does not scale with the workload's AR (Sec. 6);
    // makeDomain already used the fixed uncore AR.

    if (q.freqMultiplier != 1.0) {
        if (q.type == WorkloadType::Graphics) {
            scaleFrequency(s.domain(DomainId::GFX), _gfxVf,
                           q.freqMultiplier);
        } else {
            scaleFrequency(s.domain(DomainId::Core0), _coreVf,
                           q.freqMultiplier);
            scaleFrequency(s.domain(DomainId::Core1), _coreVf,
                           q.freqMultiplier);
            // The LLC design point tracks the core voltage domain
            // (Rotem et al., MICRO 2009).
            DomainState &llc = s.domain(DomainId::LLC);
            const DomainState &c0 = s.domain(DomainId::Core0);
            if (llc.active && c0.active &&
                q.type != WorkloadType::Graphics) {
                Voltage v0 = llc.voltage;
                Voltage v1 = c0.voltage;
                double dyn = (1.0 - llc.leakageFraction) *
                             LeakageModel::dynamicVoltageScale(v0, v1);
                double leak = llc.leakageFraction *
                              _leakage.voltageScale(v0, v1);
                llc.nominalPower = llc.nominalPower * (dyn + leak);
                llc.leakageFraction = leak / (dyn + leak);
                llc.voltage = v1;
            }
        }
    }
    return s;
}

PlatformState
OperatingPointModel::buildCState(const Query &q) const
{
    PlatformState s;
    s.tdp = q.tdp;
    s.workloadType = WorkloadType::BatteryLife;
    s.ar = cstateAr;
    s.cstate = q.cstate;
    s.tj = q.tj.value_or(Celsius(batteryTjC));

    double thermal = _leakage.thermalScale(Celsius(batteryTjC), s.tj);
    const CStateLoads &loads = cstateLoads(q.cstate);

    Frequency fmin = _coreVf.fmin();
    Voltage vcore_min = _coreVf.voltageAt(fmin);
    Frequency gmin = _gfxVf.fmin();
    Voltage vgfx_min = _gfxVf.voltageAt(gmin);

    auto fill = [&](DomainId id, double power_w, Voltage v, double fl,
                    Frequency f) {
        if (power_w <= 0.0) {
            s.domain(id).active = false;
            return;
        }
        s.domain(id) = makeDomain(watts(power_w), v, fl, cstateAr,
                                  thermal, f);
    };

    fill(DomainId::Core0, loads.coresW * 0.5, vcore_min, flOther, fmin);
    fill(DomainId::Core1, loads.coresW * 0.5, vcore_min, flOther, fmin);
    fill(DomainId::LLC, loads.llcW, vcore_min, flOther, Frequency());
    fill(DomainId::GFX, loads.gfxW, vgfx_min, flGfx, gmin);
    fill(DomainId::SA, loads.saW, volts(0.75), flOther, Frequency());
    fill(DomainId::IO, loads.ioW, volts(ioVoltageV), flOther,
         Frequency());
    return s;
}

} // namespace pdnspot
