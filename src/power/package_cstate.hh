/**
 * @file
 * Package power states (C-states).
 *
 * Battery-life workloads duty-cycle the processor between a
 * minimum-frequency active state (C0MIN) and package C-states
 * (C2...C8) in which progressively more of the SoC is clock- and
 * power-gated (paper Sec. 5, Observation 3). The paper's video
 * playback example: C0MIN 2.5 W for 10% of frame time, C2 1.2 W for
 * 5%, C8 0.13 W for 85%.
 */

#ifndef PDNSPOT_POWER_PACKAGE_CSTATE_HH
#define PDNSPOT_POWER_PACKAGE_CSTATE_HH

#include <array>
#include <string>

namespace pdnspot
{

/** Package-level power state. */
enum class PackageCState
{
    C0,    ///< fully active at the workload's operating frequency
    C0Min, ///< active at minimum frequency (battery-life active state)
    C2,    ///< compute gated; display controller fetches from memory
    C3,    ///< LLC flushed and gated
    C6,    ///< compute context saved to SRAM, voltage removed
    C7,    ///< deeper C6 variant
    C8,    ///< display refresh from local buffer; memory self-refresh
};

inline constexpr std::array<PackageCState, 7> allPackageCStates = {
    PackageCState::C0, PackageCState::C0Min, PackageCState::C2,
    PackageCState::C3, PackageCState::C6, PackageCState::C7,
    PackageCState::C8,
};

/** Idle C-states used by battery-life residency profiles (Fig. 4j). */
inline constexpr std::array<PackageCState, 6> batteryLifeCStates = {
    PackageCState::C0Min, PackageCState::C2, PackageCState::C3,
    PackageCState::C6, PackageCState::C7, PackageCState::C8,
};

std::string toString(PackageCState state);

/** Inverse of toString(PackageCState); fatal() on an unknown name. */
PackageCState packageCStateFromString(const std::string &name);

/** True if the compute domains (cores, LLC, GFX) are power-gated. */
constexpr bool
computeGated(PackageCState state)
{
    return state != PackageCState::C0 && state != PackageCState::C0Min;
}

} // namespace pdnspot

#endif // PDNSPOT_POWER_PACKAGE_CSTATE_HH
