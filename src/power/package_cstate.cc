#include "power/package_cstate.hh"

#include "common/logging.hh"

namespace pdnspot
{

std::string
toString(PackageCState state)
{
    switch (state) {
      case PackageCState::C0:
        return "C0";
      case PackageCState::C0Min:
        return "C0MIN";
      case PackageCState::C2:
        return "C2";
      case PackageCState::C3:
        return "C3";
      case PackageCState::C6:
        return "C6";
      case PackageCState::C7:
        return "C7";
      case PackageCState::C8:
        return "C8";
    }
    panic("toString: invalid PackageCState");
}

PackageCState
packageCStateFromString(const std::string &name)
{
    for (PackageCState state : allPackageCStates) {
        if (toString(state) == name)
            return state;
    }
    std::vector<std::string> names;
    for (PackageCState state : allPackageCStates)
        names.push_back(toString(state));
    fatal(strprintf("packageCStateFromString: unknown C-state \"%s\" "
                    "(expected one of %s)",
                    name.c_str(), joinStrings(names).c_str()));
}

} // namespace pdnspot
