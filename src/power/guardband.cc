#include "power/guardband.hh"

#include "common/logging.hh"

namespace pdnspot
{

GuardbandModel::GuardbandModel(LeakageModel leakage)
    : _leakage(leakage)
{}

Power
GuardbandModel::apply(Power pnom, Voltage vnom, Voltage vgb,
                      double leakage_fraction) const
{
    if (pnom < watts(0.0))
        fatal("GuardbandModel: negative nominal power");
    if (vnom <= volts(0.0))
        fatal("GuardbandModel: non-positive nominal voltage");
    if (vgb < volts(0.0))
        fatal("GuardbandModel: negative guardband");
    if (leakage_fraction < 0.0 || leakage_fraction > 1.0)
        fatal("GuardbandModel: leakage fraction outside [0, 1]");

    Voltage vgb_total = vnom + vgb;
    double leak_scale = _leakage.voltageScale(vnom, vgb_total);
    double dyn_scale = LeakageModel::dynamicVoltageScale(vnom, vgb_total);
    return pnom * (leakage_fraction * leak_scale +
                   (1.0 - leakage_fraction) * dyn_scale);
}

} // namespace pdnspot
