/**
 * @file
 * Voltage-guardband power model (paper Eq. 2).
 *
 * The supply voltage is held above the nominal voltage required by a
 * load to ride out the VR tolerance band (TOB) and, for gated domains,
 * the power-gate drop. The excess voltage costs power that the load
 * cannot use: dynamic power grows with (V'/V)^2 and leakage with
 * (V'/V)^delta:
 *
 *   PGB = PNOM * [ FL * ((V+VGB)/V)^delta + (1-FL) * ((V+VGB)/V)^2 ]
 */

#ifndef PDNSPOT_POWER_GUARDBAND_HH
#define PDNSPOT_POWER_GUARDBAND_HH

#include "common/units.hh"
#include "power/leakage.hh"

namespace pdnspot
{

/** Applies Eq. 2 guardband power scaling. */
class GuardbandModel
{
  public:
    explicit GuardbandModel(LeakageModel leakage = LeakageModel());

    /**
     * Power after raising the supply by a guardband (Eq. 2).
     *
     * @param pnom power at the nominal voltage
     * @param vnom nominal voltage
     * @param vgb additional guardband voltage
     * @param leakage_fraction FL: leakage share of pnom
     */
    Power apply(Power pnom, Voltage vnom, Voltage vgb,
                double leakage_fraction) const;

    const LeakageModel &leakage() const { return _leakage; }

  private:
    LeakageModel _leakage;
};

} // namespace pdnspot

#endif // PDNSPOT_POWER_GUARDBAND_HH
