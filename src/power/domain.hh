/**
 * @file
 * Processor power domains of the modeled client SoC.
 *
 * The platform follows the paper's Table 1: two CPU cores on one clock
 * domain, graphics engines (GFX), a last-level cache (LLC), the
 * system-agent (SA: memory controller, display controller, IO fabric),
 * and the IO domain (DDRIO, display IO). Each domain is an independent
 * voltage load on the PDN.
 */

#ifndef PDNSPOT_POWER_DOMAIN_HH
#define PDNSPOT_POWER_DOMAIN_HH

#include <array>
#include <cstddef>
#include <string>

#include "common/units.hh"

namespace pdnspot
{

/** The six voltage loads of the modeled processor (paper Fig. 1). */
enum class DomainId : size_t
{
    Core0 = 0,
    Core1,
    LLC,
    GFX,
    SA,
    IO,
};

inline constexpr size_t numDomains = 6;

inline constexpr std::array<DomainId, numDomains> allDomains = {
    DomainId::Core0, DomainId::Core1, DomainId::LLC,
    DomainId::GFX, DomainId::SA, DomainId::IO,
};

/** Domains with a wide power range (hybrid-PDN candidates in Sec. 6). */
inline constexpr std::array<DomainId, 4> computeDomains = {
    DomainId::Core0, DomainId::Core1, DomainId::LLC, DomainId::GFX,
};

/** Domains with a low, narrow power range (off-chip VRs in FlexWatts). */
inline constexpr std::array<DomainId, 2> uncoreDomains = {
    DomainId::SA, DomainId::IO,
};

std::string toString(DomainId id);

constexpr size_t
domainIndex(DomainId id)
{
    return static_cast<size_t>(id);
}

constexpr bool
isComputeDomain(DomainId id)
{
    return id == DomainId::Core0 || id == DomainId::Core1 ||
           id == DomainId::LLC || id == DomainId::GFX;
}

/**
 * Electrical operating point of one domain at one instant: the inputs
 * each PDN model consumes (paper Sec. 3.1: a load's nominal power is a
 * function of power state, activity, frequency, voltage, temperature).
 */
struct DomainState
{
    bool active = false;           ///< powered (false = power-gated)
    Voltage voltage;               ///< nominal supply voltage VNOM
    Power nominalPower;            ///< PNOM at this operating point
    double leakageFraction = 0.22; ///< FL: leakage share of PNOM
    double ar = 1.0;               ///< domain application ratio
    Frequency frequency;           ///< clock (zero for fixed-freq doms)
};

} // namespace pdnspot

#endif // PDNSPOT_POWER_DOMAIN_HH
