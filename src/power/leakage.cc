#include "power/leakage.hh"

#include <cmath>

#include "common/logging.hh"

namespace pdnspot
{

LeakageModel::LeakageModel(double voltage_exponent, double thermal_tau)
    : _voltageExponent(voltage_exponent), _thermalTau(thermal_tau)
{
    if (voltage_exponent <= 0.0)
        fatal("LeakageModel: voltage exponent must be positive");
    if (thermal_tau <= 0.0)
        fatal("LeakageModel: thermal tau must be positive");
}

double
LeakageModel::voltageScale(Voltage vfrom, Voltage vto) const
{
    if (vfrom <= volts(0.0))
        fatal("LeakageModel: non-positive reference voltage");
    return std::pow(vto / vfrom, _voltageExponent);
}

double
LeakageModel::thermalScale(Celsius tfrom, Celsius tto) const
{
    return std::exp((tto - tfrom) / _thermalTau);
}

double
LeakageModel::dynamicVoltageScale(Voltage vfrom, Voltage vto)
{
    if (vfrom <= volts(0.0))
        fatal("LeakageModel: non-positive reference voltage");
    double r = vto / vfrom;
    return r * r;
}

} // namespace pdnspot
