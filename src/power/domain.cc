#include "power/domain.hh"

#include "common/logging.hh"

namespace pdnspot
{

std::string
toString(DomainId id)
{
    switch (id) {
      case DomainId::Core0:
        return "Core0";
      case DomainId::Core1:
        return "Core1";
      case DomainId::LLC:
        return "LLC";
      case DomainId::GFX:
        return "GFX";
      case DomainId::SA:
        return "SA";
      case DomainId::IO:
        return "IO";
    }
    panic("toString: invalid DomainId");
}

} // namespace pdnspot
