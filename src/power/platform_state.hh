/**
 * @file
 * Snapshot of the whole platform's electrical operating point.
 *
 * A PlatformState is the complete input a PDN model needs to compute
 * end-to-end power-conversion efficiency: the per-domain loads plus
 * the platform-level context (TDP, workload type, application ratio,
 * package power state, junction temperature).
 */

#ifndef PDNSPOT_POWER_PLATFORM_STATE_HH
#define PDNSPOT_POWER_PLATFORM_STATE_HH

#include <array>

#include "common/units.hh"
#include "power/domain.hh"
#include "power/package_cstate.hh"
#include "power/workload_type.hh"

namespace pdnspot
{

/** Full platform operating point consumed by the PDN models. */
struct PlatformState
{
    Power tdp;                                   ///< configured TDP
    WorkloadType workloadType = WorkloadType::MultiThread;
    double ar = 0.56;                            ///< group-level AR
    PackageCState cstate = PackageCState::C0;
    Celsius tj = Celsius(80.0);                  ///< junction temp

    std::array<DomainState, numDomains> domains;

    DomainState &
    domain(DomainId id)
    {
        return domains[domainIndex(id)];
    }

    const DomainState &
    domain(DomainId id) const
    {
        return domains[domainIndex(id)];
    }

    /** Sum of nominal power over all active domains. */
    Power
    totalNominalPower() const
    {
        Power total;
        for (const auto &d : domains) {
            if (d.active)
                total += d.nominalPower;
        }
        return total;
    }

    /** Highest supply voltage among a set of active domains. */
    template <typename Range>
    Voltage
    maxVoltage(const Range &ids) const
    {
        Voltage vmax;
        for (DomainId id : ids) {
            const DomainState &d = domain(id);
            if (d.active && d.voltage > vmax)
                vmax = d.voltage;
        }
        return vmax;
    }
};

} // namespace pdnspot

#endif // PDNSPOT_POWER_PLATFORM_STATE_HH
