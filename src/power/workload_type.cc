#include "power/workload_type.hh"

#include "common/logging.hh"

namespace pdnspot
{

std::string
toString(WorkloadType type)
{
    switch (type) {
      case WorkloadType::SingleThread:
        return "single-thread";
      case WorkloadType::MultiThread:
        return "multi-thread";
      case WorkloadType::Graphics:
        return "graphics";
      case WorkloadType::BatteryLife:
        return "battery-life";
    }
    panic("toString: invalid WorkloadType");
}

} // namespace pdnspot
