#include "power/workload_type.hh"

#include "common/logging.hh"

namespace pdnspot
{

std::string
toString(WorkloadType type)
{
    switch (type) {
      case WorkloadType::SingleThread:
        return "single-thread";
      case WorkloadType::MultiThread:
        return "multi-thread";
      case WorkloadType::Graphics:
        return "graphics";
      case WorkloadType::BatteryLife:
        return "battery-life";
    }
    panic("toString: invalid WorkloadType");
}

WorkloadType
workloadTypeFromString(const std::string &name)
{
    for (WorkloadType type : allWorkloadTypes) {
        if (toString(type) == name)
            return type;
    }
    std::vector<std::string> names;
    for (WorkloadType type : allWorkloadTypes)
        names.push_back(toString(type));
    fatal(strprintf("workloadTypeFromString: unknown workload type "
                    "\"%s\" (expected one of %s)",
                    name.c_str(), joinStrings(names).c_str()));
}

} // namespace pdnspot
