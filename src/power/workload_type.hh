/**
 * @file
 * Workload-type classification used by the PMU and the ETEE models.
 *
 * The paper's ETEE curves (Fig. 4) and FlexWatts's mode-prediction
 * algorithm are keyed by workload type: single-threaded CPU,
 * multi-threaded CPU, graphics, or a battery-life (mostly idle)
 * workload. The PMU estimates the type at runtime from which domains
 * are active (paper Sec. 6).
 */

#ifndef PDNSPOT_POWER_WORKLOAD_TYPE_HH
#define PDNSPOT_POWER_WORKLOAD_TYPE_HH

#include <array>
#include <string>

namespace pdnspot
{

/** High-level workload class, as classified by the PMU. */
enum class WorkloadType
{
    SingleThread, ///< one core active, graphics idle
    MultiThread,  ///< more than one core active, graphics idle
    Graphics,     ///< graphics engines active
    BatteryLife,  ///< mostly-idle duty-cycled workload
};

inline constexpr std::array<WorkloadType, 4> allWorkloadTypes = {
    WorkloadType::SingleThread, WorkloadType::MultiThread,
    WorkloadType::Graphics, WorkloadType::BatteryLife,
};

std::string toString(WorkloadType type);

/** Inverse of toString(WorkloadType); fatal() on an unknown name. */
WorkloadType workloadTypeFromString(const std::string &name);

} // namespace pdnspot

#endif // PDNSPOT_POWER_WORKLOAD_TYPE_HH
