/**
 * @file
 * Leakage-power scaling model.
 *
 * The paper validates (on an Intel Core i7-6600U) that leakage power
 * scales polynomially with supply voltage with exponent delta ~= 2.8,
 * and exponentially with junction temperature (Sec. 3.1, Sec. 4.2
 * "thermal conditioning"). Dynamic power scales with V^2 and is
 * temperature-independent.
 */

#ifndef PDNSPOT_POWER_LEAKAGE_HH
#define PDNSPOT_POWER_LEAKAGE_HH

#include "common/units.hh"

namespace pdnspot
{

/** Voltage and temperature scaling of leakage power. */
class LeakageModel
{
  public:
    /**
     * @param voltage_exponent delta in (V'/V)^delta (paper: ~2.8)
     * @param thermal_tau e-folding temperature difference in kelvin
     */
    explicit LeakageModel(double voltage_exponent = 2.8,
                          double thermal_tau = 30.0);

    double voltageExponent() const { return _voltageExponent; }

    /** Leakage multiplier when the supply moves from vfrom to vto. */
    double voltageScale(Voltage vfrom, Voltage vto) const;

    /** Leakage multiplier when Tj moves from tfrom to tto. */
    double thermalScale(Celsius tfrom, Celsius tto) const;

    /** Dynamic-power multiplier for the same voltage move: (V'/V)^2. */
    static double dynamicVoltageScale(Voltage vfrom, Voltage vto);

  private:
    double _voltageExponent;
    double _thermalTau;
};

} // namespace pdnspot

#endif // PDNSPOT_POWER_LEAKAGE_HH
