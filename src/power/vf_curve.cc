#include "power/vf_curve.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pdnspot
{

VfCurve::VfCurve(Voltage v0, double lin, double quad, Frequency fmin,
                 Frequency fmax)
    : _v0(v0), _lin(lin), _quad(quad), _fmin(fmin), _fmax(fmax)
{
    if (fmin >= fmax)
        fatal("VfCurve: fmin must be below fmax");
    if (v0 <= volts(0.0))
        fatal("VfCurve: non-positive voltage intercept");
}

Frequency
VfCurve::clamp(Frequency f) const
{
    return std::clamp(f, _fmin, _fmax);
}

Voltage
VfCurve::voltageAt(Frequency f) const
{
    double ghz = inGigahertz(clamp(f));
    return _v0 + volts(_lin * ghz + _quad * ghz * ghz);
}

double
VfCurve::slopeAt(Frequency f) const
{
    double ghz = inGigahertz(clamp(f));
    return _lin + 2.0 * _quad * ghz;
}

VfCurve
VfCurve::cores()
{
    // 0.8 GHz -> ~0.54 V, 4.0 GHz -> ~1.08 V, matching the paper's
    // "typically 0.5-1.1 V" operational band (Sec. 2.1).
    return VfCurve(volts(0.45), 0.105, 0.013, gigahertz(0.8),
                   gigahertz(4.0));
}

VfCurve
VfCurve::graphics()
{
    // 0.1 GHz -> ~0.51 V, 1.2 GHz -> ~0.87 V.
    return VfCurve(volts(0.48), 0.28, 0.04, gigahertz(0.1),
                   gigahertz(1.2));
}

} // namespace pdnspot
