/**
 * @file
 * Interpolation tables used by the PDN models.
 *
 * A modern power-management unit (PMU) stores most model relationships
 * as firmware tables: VR efficiency as a function of output current,
 * leakage as a function of temperature, voltage as a function of
 * frequency (FlexWatts paper, Sec. 6, footnote 11). LinearTable and
 * BilinearGrid are the two table shapes PDNspot needs: a 1-D
 * piecewise-linear curve and a 2-D grid, both with clamping at the
 * domain edges (a PMU never extrapolates beyond characterized silicon).
 */

#ifndef PDNSPOT_COMMON_INTERP_HH
#define PDNSPOT_COMMON_INTERP_HH

#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

namespace pdnspot
{

/**
 * 1-D piecewise-linear lookup table y = f(x) with strictly increasing
 * x breakpoints and edge clamping.
 */
class LinearTable
{
  public:
    LinearTable() = default;

    /** Build from (x, y) pairs; x must be strictly increasing. */
    explicit LinearTable(std::vector<std::pair<double, double>> points);

    LinearTable(std::initializer_list<std::pair<double, double>> points)
        : LinearTable(std::vector<std::pair<double, double>>(points))
    {}

    /** Interpolated value, clamped to the first/last breakpoint. */
    double at(double x) const;

    /** Local slope dy/dx at x (clamped regions have slope 0). */
    double slopeAt(double x) const;

    bool empty() const { return _points.empty(); }
    size_t size() const { return _points.size(); }

    double minX() const;
    double maxX() const;

    const std::vector<std::pair<double, double>> &points() const
    {
        return _points;
    }

  private:
    std::vector<std::pair<double, double>> _points;
};

/**
 * 2-D bilinear lookup z = f(x, y) over a rectangular grid with edge
 * clamping on both axes.
 */
class BilinearGrid
{
  public:
    BilinearGrid() = default;

    /**
     * @param xs strictly increasing x breakpoints (size nx)
     * @param ys strictly increasing y breakpoints (size ny)
     * @param zs row-major values, zs[ix * ny + iy] (size nx * ny)
     */
    BilinearGrid(std::vector<double> xs, std::vector<double> ys,
                 std::vector<double> zs);

    /** Bilinearly interpolated value, clamped at grid edges. */
    double at(double x, double y) const;

    bool empty() const { return _zs.empty(); }

  private:
    /** Index of the left breakpoint bracketing v in axis. */
    static size_t bracket(const std::vector<double> &axis, double v,
                          double &frac);

    std::vector<double> _xs;
    std::vector<double> _ys;
    std::vector<double> _zs;
};

} // namespace pdnspot

#endif // PDNSPOT_COMMON_INTERP_HH
