#include "common/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <vector>

namespace pdnspot
{

namespace
{

/** Guards the sink, the threshold, and emission itself, so swapped
 * sinks never observe a half-written message. */
std::mutex g_logMutex;
LogLevel g_threshold = LogLevel::Info;
LogSink g_sink; ///< empty = default stderr sink

void
defaultSink(LogLevel severity, const std::string &msg)
{
    const char *prefix =
        severity == LogLevel::Warn ? "warn: " : "info: ";
    std::cerr << prefix << msg << "\n";
}

void
emit(LogLevel severity, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(g_logMutex);
    if (static_cast<int>(severity) < static_cast<int>(g_threshold))
        return;
    if (g_sink)
        g_sink(severity, msg);
    else
        defaultSink(severity, msg);
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
joinStrings(const std::vector<std::string> &parts,
            const char *separator)
{
    std::string out;
    for (const std::string &part : parts) {
        if (!out.empty())
            out += separator;
        out += part;
    }
    return out;
}

void
fatal(const std::string &msg)
{
    throw ConfigError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw ModelError("panic: " + msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, msg);
}

const char *
toString(LogLevel level)
{
    switch (level) {
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Silent:
        return "silent";
    }
    panic("toString: invalid LogLevel");
}

LogLevel
logLevelFromString(const std::string &name)
{
    if (name == "info")
        return LogLevel::Info;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "silent")
        return LogLevel::Silent;
    fatal(strprintf("unknown log level \"%s\" (expected info, warn "
                    "or silent)",
                    name.c_str()));
}

LogLevel
setLogThreshold(LogLevel level)
{
    std::lock_guard<std::mutex> lock(g_logMutex);
    LogLevel previous = g_threshold;
    g_threshold = level;
    return previous;
}

LogLevel
logThreshold()
{
    std::lock_guard<std::mutex> lock(g_logMutex);
    return g_threshold;
}

LogSink
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(g_logMutex);
    LogSink previous = std::move(g_sink);
    g_sink = std::move(sink);
    return previous;
}

ScopedLogCapture::ScopedLogCapture()
{
    _previousSink = setLogSink(
        [this](LogLevel severity, const std::string &msg) {
            _entries.push_back(Entry{severity, msg});
        });
    _previousThreshold = setLogThreshold(LogLevel::Info);
}

ScopedLogCapture::~ScopedLogCapture()
{
    setLogThreshold(_previousThreshold);
    setLogSink(std::move(_previousSink));
}

size_t
ScopedLogCapture::count(LogLevel severity,
                        const std::string &substring) const
{
    size_t n = 0;
    for (const Entry &e : _entries) {
        if (e.severity != severity)
            continue;
        if (!substring.empty() &&
            e.message.find(substring) == std::string::npos)
            continue;
        ++n;
    }
    return n;
}

} // namespace pdnspot
