#include "common/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <iostream>
#include <vector>

namespace pdnspot
{

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
joinStrings(const std::vector<std::string> &parts,
            const char *separator)
{
    std::string out;
    for (const std::string &part : parts) {
        if (!out.empty())
            out += separator;
        out += part;
    }
    return out;
}

void
fatal(const std::string &msg)
{
    throw ConfigError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw ModelError("panic: " + msg);
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    std::cerr << "info: " << msg << "\n";
}

} // namespace pdnspot
