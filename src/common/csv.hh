/**
 * @file
 * Minimal CSV tokenizing and locale-independent number round-tripping,
 * shared by the sweep and campaign importers/exporters.
 *
 * Our CSV dialect is deliberately tiny: comma-separated fields, no
 * quoting, no escapes (writers reject field values containing commas
 * or newlines instead). Numbers always use the classic "C" locale:
 * '.' decimal point, no digit grouping.
 */

#ifndef PDNSPOT_COMMON_CSV_HH
#define PDNSPOT_COMMON_CSV_HH

#include <string>
#include <vector>

namespace pdnspot
{

/** Split one line on commas. "a,,b" -> {"a", "", "b"}; "" -> {""}. */
std::vector<std::string> splitCsvLine(const std::string &line);

/**
 * Parse a classic-locale floating-point field. The whole field must
 * be consumed; fatal() (ConfigError) on malformed input.
 */
double csvToDouble(const std::string &field);

/**
 * Format a double with the shortest representation that parses back
 * to exactly the same value (std::to_chars round-trip guarantee), so
 * CSV exports can be re-imported bit-identically.
 */
std::string csvExactDouble(double v);

/** True iff the value is safe as an unquoted CSV field. */
bool csvFieldSafe(const std::string &field);

} // namespace pdnspot

#endif // PDNSPOT_COMMON_CSV_HH
