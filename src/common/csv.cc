#include "common/csv.hh"

#include <charconv>
#include <system_error>

#include "common/logging.hh"

namespace pdnspot
{

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    size_t start = 0;
    for (;;) {
        size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

double
csvToDouble(const std::string &field)
{
    // std::from_chars is locale-independent by specification, unlike
    // strtod/istream extraction which honor the global locale.
    double v = 0.0;
    const char *begin = field.data();
    const char *end = begin + field.size();
    auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc() || ptr != end)
        fatal(strprintf("csvToDouble: malformed number \"%s\"",
                        field.c_str()));
    return v;
}

std::string
csvExactDouble(double v)
{
    // Shortest round-trip form; 32 chars covers any double.
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        panic("csvExactDouble: to_chars failed");
    return std::string(buf, ptr);
}

bool
csvFieldSafe(const std::string &field)
{
    return field.find_first_of(",\n\r") == std::string::npos;
}

} // namespace pdnspot
