/**
 * @file
 * Plain-text table and CSV emitters for benchmark/report output.
 *
 * Every bench binary in this repo regenerates one of the paper's tables
 * or figures as rows of numbers; AsciiTable renders them aligned for the
 * console and CsvWriter dumps the same rows for plotting.
 */

#ifndef PDNSPOT_COMMON_TABLE_HH
#define PDNSPOT_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace pdnspot
{

/** Column-aligned plain-text table. */
class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a ratio as a percentage string. */
    static std::string percent(double ratio, int precision = 1);

    /** Render with column alignment and a header underline. */
    void print(std::ostream &os) const;

    size_t rows() const { return _rows.size(); }

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Minimal CSV emitter sharing AsciiTable's row model. */
class CsvWriter
{
  public:
    explicit CsvWriter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Write header plus rows; cells containing commas are quoted. */
    void write(std::ostream &os) const;

  private:
    static std::string escape(const std::string &cell);

    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace pdnspot

#endif // PDNSPOT_COMMON_TABLE_HH
