/**
 * @file
 * Deterministic pseudo-noise for reference-measurement synthesis.
 *
 * The PDNspot validation harness (paper Fig. 4) compares model-predicted
 * ETEE against lab measurements. Without lab hardware, this repo
 * synthesizes the "measured" reference as the model plus a small,
 * reproducible perturbation. HashNoise provides that perturbation:
 * a splitmix64-mixed hash of (seed, key) mapped to [-1, 1], so every
 * (trace, PDN) pair gets the same "measurement noise" on every run.
 */

#ifndef PDNSPOT_COMMON_NOISE_HH
#define PDNSPOT_COMMON_NOISE_HH

#include <cstdint>
#include <string>

namespace pdnspot
{

/** Deterministic keyed noise source. */
class HashNoise
{
  public:
    explicit HashNoise(uint64_t seed) : _seed(seed) {}

    /** Uniform value in [-1, 1] determined by (seed, key). */
    double signedUnit(uint64_t key) const;

    /** Uniform value in [-1, 1] determined by (seed, hash(key)). */
    double signedUnit(const std::string &key) const;

    /** Uniform value in [0, 1). */
    double unit(uint64_t key) const;

    /** splitmix64 finalizer; exposed for tests. */
    static uint64_t mix(uint64_t x);

  private:
    uint64_t _seed;
};

} // namespace pdnspot

#endif // PDNSPOT_COMMON_NOISE_HH
