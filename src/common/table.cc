#include "common/table.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace pdnspot
{

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    if (_headers.empty())
        fatal("AsciiTable: at least one column required");
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _headers.size()) {
        fatal(strprintf("AsciiTable: row has %zu cells, expected %zu",
                        cells.size(), _headers.size()));
    }
    _rows.push_back(std::move(cells));
}

std::string
AsciiTable::num(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

std::string
AsciiTable::percent(double ratio, int precision)
{
    return strprintf("%.*f%%", precision, ratio * 100.0);
}

void
AsciiTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(_headers.size());
    for (size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 < row.size() ? "  " : "");
        }
        os << "\n";
    };

    emit_row(_headers);
    for (size_t c = 0; c < _headers.size(); ++c) {
        os << std::string(widths[c], '-')
           << (c + 1 < _headers.size() ? "  " : "");
    }
    os << "\n";
    for (const auto &row : _rows)
        emit_row(row);
}

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    if (_headers.empty())
        fatal("CsvWriter: at least one column required");
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _headers.size()) {
        fatal(strprintf("CsvWriter: row has %zu cells, expected %zu",
                        cells.size(), _headers.size()));
    }
    _rows.push_back(std::move(cells));
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

void
CsvWriter::write(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << escape(row[c]);
            if (c + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    emit(_headers);
    for (const auto &row : _rows)
        emit(row);
}

} // namespace pdnspot
