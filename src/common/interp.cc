#include "common/interp.hh"

#include <algorithm>
#include <cstddef>

#include "common/logging.hh"

namespace pdnspot
{

LinearTable::LinearTable(std::vector<std::pair<double, double>> points)
    : _points(std::move(points))
{
    if (_points.empty())
        fatal("LinearTable: at least one point required");
    for (size_t i = 1; i < _points.size(); ++i) {
        if (_points[i].first <= _points[i - 1].first) {
            fatal(strprintf("LinearTable: x breakpoints must be strictly "
                            "increasing (x[%zu]=%g <= x[%zu]=%g)",
                            i, _points[i].first, i - 1,
                            _points[i - 1].first));
        }
    }
}

double
LinearTable::at(double x) const
{
    if (_points.size() == 1 || x <= _points.front().first)
        return _points.front().second;
    if (x >= _points.back().first)
        return _points.back().second;

    auto it = std::upper_bound(
        _points.begin(), _points.end(), x,
        [](double v, const std::pair<double, double> &p) {
            return v < p.first;
        });
    const auto &hi = *it;
    const auto &lo = *(it - 1);
    double t = (x - lo.first) / (hi.first - lo.first);
    return lo.second + t * (hi.second - lo.second);
}

double
LinearTable::slopeAt(double x) const
{
    if (_points.size() < 2 || x < _points.front().first ||
        x > _points.back().first) {
        return 0.0;
    }
    auto it = std::upper_bound(
        _points.begin(), _points.end(), x,
        [](double v, const std::pair<double, double> &p) {
            return v < p.first;
        });
    if (it == _points.end())
        it = _points.end() - 1;
    if (it == _points.begin())
        it = _points.begin() + 1;
    const auto &hi = *it;
    const auto &lo = *(it - 1);
    return (hi.second - lo.second) / (hi.first - lo.first);
}

double
LinearTable::minX() const
{
    if (_points.empty())
        panic("LinearTable::minX on empty table");
    return _points.front().first;
}

double
LinearTable::maxX() const
{
    if (_points.empty())
        panic("LinearTable::maxX on empty table");
    return _points.back().first;
}

BilinearGrid::BilinearGrid(std::vector<double> xs, std::vector<double> ys,
                           std::vector<double> zs)
    : _xs(std::move(xs)), _ys(std::move(ys)), _zs(std::move(zs))
{
    if (_xs.empty() || _ys.empty())
        fatal("BilinearGrid: axes must be non-empty");
    if (_zs.size() != _xs.size() * _ys.size()) {
        fatal(strprintf("BilinearGrid: expected %zu values, got %zu",
                        _xs.size() * _ys.size(), _zs.size()));
    }
    for (size_t i = 1; i < _xs.size(); ++i)
        if (_xs[i] <= _xs[i - 1])
            fatal("BilinearGrid: x axis must be strictly increasing");
    for (size_t i = 1; i < _ys.size(); ++i)
        if (_ys[i] <= _ys[i - 1])
            fatal("BilinearGrid: y axis must be strictly increasing");
}

size_t
BilinearGrid::bracket(const std::vector<double> &axis, double v,
                      double &frac)
{
    if (axis.size() == 1 || v <= axis.front()) {
        frac = 0.0;
        return 0;
    }
    if (v >= axis.back()) {
        frac = 1.0;
        return axis.size() - 2;
    }
    auto it = std::upper_bound(axis.begin(), axis.end(), v);
    size_t hi = static_cast<size_t>(it - axis.begin());
    size_t lo = hi - 1;
    frac = (v - axis[lo]) / (axis[hi] - axis[lo]);
    return lo;
}

double
BilinearGrid::at(double x, double y) const
{
    if (_zs.empty())
        panic("BilinearGrid::at on empty grid");

    double fx = 0.0, fy = 0.0;
    size_t ix = bracket(_xs, x, fx);
    size_t iy = bracket(_ys, y, fy);

    size_t ny = _ys.size();
    size_t ix1 = std::min(ix + 1, _xs.size() - 1);
    size_t iy1 = std::min(iy + 1, ny - 1);

    double z00 = _zs[ix * ny + iy];
    double z01 = _zs[ix * ny + iy1];
    double z10 = _zs[ix1 * ny + iy];
    double z11 = _zs[ix1 * ny + iy1];

    double z0 = z00 + fy * (z01 - z00);
    double z1 = z10 + fy * (z11 - z10);
    return z0 + fx * (z1 - z0);
}

} // namespace pdnspot
