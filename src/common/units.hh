/**
 * @file
 * Strong physical-quantity types with compile-time dimensional algebra.
 *
 * PDN modeling mixes voltages, currents, powers, impedances, energies and
 * times in long equation chains (Eq. 2-12 of the FlexWatts paper). Plain
 * doubles make it easy to, e.g., divide a power by a current where a
 * voltage was intended. Quantity<> encodes the SI dimension exponents
 * (mass, length, time, current) in the type so that multiplication and
 * division produce the correctly-dimensioned result and mismatched
 * additions fail to compile.
 *
 * The wrappers are zero-overhead: a Quantity is a single double.
 */

#ifndef PDNSPOT_COMMON_UNITS_HH
#define PDNSPOT_COMMON_UNITS_HH

#include <cmath>
#include <compare>

namespace pdnspot
{

/**
 * A physical quantity carrying SI dimension exponents in its type.
 *
 * @tparam M mass exponent (kg)
 * @tparam L length exponent (m)
 * @tparam T time exponent (s)
 * @tparam I current exponent (A)
 */
template <int M, int L, int T, int I>
class Quantity
{
  public:
    constexpr Quantity() : _value(0.0) {}
    constexpr explicit Quantity(double v) : _value(v) {}

    /** Raw magnitude in base SI units. */
    constexpr double value() const { return _value; }

    constexpr Quantity operator-() const { return Quantity(-_value); }

    constexpr Quantity
    operator+(Quantity other) const
    {
        return Quantity(_value + other._value);
    }

    constexpr Quantity
    operator-(Quantity other) const
    {
        return Quantity(_value - other._value);
    }

    constexpr Quantity &
    operator+=(Quantity other)
    {
        _value += other._value;
        return *this;
    }

    constexpr Quantity &
    operator-=(Quantity other)
    {
        _value -= other._value;
        return *this;
    }

    constexpr Quantity operator*(double s) const { return Quantity(_value * s); }
    constexpr Quantity operator/(double s) const { return Quantity(_value / s); }

    constexpr Quantity &
    operator*=(double s)
    {
        _value *= s;
        return *this;
    }

    constexpr Quantity &
    operator/=(double s)
    {
        _value /= s;
        return *this;
    }

    constexpr auto operator<=>(const Quantity &) const = default;

  private:
    double _value;
};

/** scalar * quantity */
template <int M, int L, int T, int I>
constexpr Quantity<M, L, T, I>
operator*(double s, Quantity<M, L, T, I> q)
{
    return Quantity<M, L, T, I>(s * q.value());
}

/** quantity * quantity: dimensions add */
template <int M1, int L1, int T1, int I1, int M2, int L2, int T2, int I2>
constexpr auto
operator*(Quantity<M1, L1, T1, I1> a, Quantity<M2, L2, T2, I2> b)
{
    if constexpr (M1 + M2 == 0 && L1 + L2 == 0 && T1 + T2 == 0 &&
                  I1 + I2 == 0) {
        return a.value() * b.value();
    } else {
        return Quantity<M1 + M2, L1 + L2, T1 + T2, I1 + I2>(
            a.value() * b.value());
    }
}

/** quantity / quantity: dimensions subtract; same-dim division is a ratio */
template <int M1, int L1, int T1, int I1, int M2, int L2, int T2, int I2>
constexpr auto
operator/(Quantity<M1, L1, T1, I1> a, Quantity<M2, L2, T2, I2> b)
{
    if constexpr (M1 == M2 && L1 == L2 && T1 == T2 && I1 == I2) {
        return a.value() / b.value();
    } else {
        return Quantity<M1 - M2, L1 - L2, T1 - T2, I1 - I2>(
            a.value() / b.value());
    }
}

/** scalar / quantity: dimensions negate */
template <int M, int L, int T, int I>
constexpr Quantity<-M, -L, -T, -I>
operator/(double s, Quantity<M, L, T, I> q)
{
    return Quantity<-M, -L, -T, -I>(s / q.value());
}

// Electrical and mechanical quantities used throughout the PDN models.
using Voltage = Quantity<1, 2, -3, -1>;   ///< volt
using Current = Quantity<0, 0, 0, 1>;     ///< ampere
using Power = Quantity<1, 2, -3, 0>;      ///< watt
using Resistance = Quantity<1, 2, -3, -2>; ///< ohm
using Energy = Quantity<1, 2, -2, 0>;     ///< joule
using Time = Quantity<0, 0, 1, 0>;        ///< second
using Frequency = Quantity<0, 0, -1, 0>;  ///< hertz
using Charge = Quantity<0, 0, 1, 1>;      ///< coulomb
using Area = Quantity<0, 2, 0, 0>;        ///< square metre

// Construction helpers in conventional engineering units.
constexpr Voltage volts(double v) { return Voltage(v); }
constexpr Voltage millivolts(double v) { return Voltage(v * 1e-3); }
constexpr Current amps(double v) { return Current(v); }
constexpr Current milliamps(double v) { return Current(v * 1e-3); }
constexpr Power watts(double v) { return Power(v); }
constexpr Power milliwatts(double v) { return Power(v * 1e-3); }
constexpr Resistance ohms(double v) { return Resistance(v); }
constexpr Resistance milliohms(double v) { return Resistance(v * 1e-3); }
constexpr Energy joules(double v) { return Energy(v); }
constexpr Energy wattHours(double v) { return Energy(v * 3600.0); }
constexpr Time seconds(double v) { return Time(v); }
constexpr Time milliseconds(double v) { return Time(v * 1e-3); }
constexpr Time microseconds(double v) { return Time(v * 1e-6); }
constexpr Frequency hertz(double v) { return Frequency(v); }
constexpr Frequency megahertz(double v) { return Frequency(v * 1e6); }
constexpr Frequency gigahertz(double v) { return Frequency(v * 1e9); }
constexpr Area squareMillimetres(double v) { return Area(v * 1e-6); }

// Readback helpers in conventional engineering units.
constexpr double inVolts(Voltage v) { return v.value(); }
constexpr double inMillivolts(Voltage v) { return v.value() * 1e3; }
constexpr double inAmps(Current i) { return i.value(); }
constexpr double inWatts(Power p) { return p.value(); }
constexpr double inMilliwatts(Power p) { return p.value() * 1e3; }
constexpr double inMilliohms(Resistance r) { return r.value() * 1e3; }
constexpr double inJoules(Energy e) { return e.value(); }
constexpr double inWattHours(Energy e) { return e.value() / 3600.0; }
constexpr double inSeconds(Time t) { return t.value(); }
constexpr double inMilliseconds(Time t) { return t.value() * 1e3; }
constexpr double inMicroseconds(Time t) { return t.value() * 1e6; }
constexpr double inGigahertz(Frequency f) { return f.value() * 1e-9; }
constexpr double inSquareMillimetres(Area a) { return a.value() * 1e6; }

/**
 * Temperature in degrees Celsius. Kept distinct from Quantity because
 * Celsius is an affine scale: products and ratios of temperatures have
 * no physical meaning in our models, only differences do.
 */
class Celsius
{
  public:
    constexpr Celsius() : _value(0.0) {}
    constexpr explicit Celsius(double deg) : _value(deg) {}

    constexpr double degrees() const { return _value; }

    /** Temperature difference in kelvin (== Celsius degrees). */
    constexpr double operator-(Celsius other) const
    {
        return _value - other._value;
    }

    constexpr auto operator<=>(const Celsius &) const = default;

  private:
    double _value;
};

} // namespace pdnspot

#endif // PDNSPOT_COMMON_UNITS_HH
