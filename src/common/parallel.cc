#include "common/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace pdnspot
{

/** One forEach invocation's shared state. */
struct ParallelRunner::Job
{
    std::uint64_t gen = 0;           ///< sequence number of this job
    size_t n = 0;
    const std::function<void(size_t)> *fn = nullptr;
    std::atomic<size_t> next{0};     ///< next index to claim
    size_t finished = 0;             ///< indices completed (under mutex)
    std::exception_ptr error;        ///< first exception thrown by fn
};

namespace
{

unsigned
defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    if (const char *env = std::getenv("PDNSPOT_THREADS"))
        return ParallelRunner::parseThreadCount(env, hw);
    return hw;
}

} // namespace

unsigned
ParallelRunner::parseThreadCount(const char *text, unsigned fallback)
{
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 1) {
        warn(strprintf("PDNSPOT_THREADS=\"%s\" ignored: must be a "
                       "positive integer; using %u threads",
                       text, fallback));
        return fallback;
    }
    if (errno == ERANGE || v > static_cast<long>(maxThreadCount)) {
        warn(strprintf("PDNSPOT_THREADS=\"%s\" capped at %u", text,
                       maxThreadCount));
        v = maxThreadCount;
    }
    return static_cast<unsigned>(v);
}

/**
 * Claim and run indices until none remain; returns how many this
 * thread completed. The first exception is stashed in the job; later
 * indices still run so the finished count always reaches n.
 */
size_t
ParallelRunner::drain(Job &job, std::mutex &mutex)
{
    size_t ran = 0;
    for (;;) {
        size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            return ran;
        try {
            (*job.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex);
            if (!job.error)
                job.error = std::current_exception();
        }
        ++ran;
    }
}

ParallelRunner::ParallelRunner(unsigned threads)
    : _threads(threads > 0 ? threads : defaultThreadCount())
{
    // With one thread forEach runs inline; no workers to spawn.
    for (unsigned t = 1; t < _threads; ++t)
        _workers.emplace_back([this] { workerLoop(); });
}

ParallelRunner::~ParallelRunner()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _wake.notify_all();
    for (std::thread &w : _workers)
        w.join();
}

void
ParallelRunner::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock, [&] {
                return _stop || (_job && _job->gen != seen);
            });
            if (_stop)
                return;
            job = _job;
            seen = job->gen;
        }
        size_t ran = drain(*job, _mutex);
        // Merge this worker's metric buffer before reporting the
        // indices finished: once the caller sees finished == n,
        // every worker's contribution is in the registry.
        MetricsRegistry::flushThread();
        {
            std::lock_guard<std::mutex> lock(_mutex);
            job->finished += ran;
            if (job->finished == job->n)
                _done.notify_all();
        }
    }
}

void
ParallelRunner::forEach(size_t n,
                        const std::function<void(size_t)> &fn) const
{
    auto serial = [&] {
        for (size_t i = 0; i < n; ++i)
            fn(i);
    };

    if (n == 0)
        return;
    metricAdd(Metric::RunnerJobs);
    metricSet(Metric::RunnerThreads, static_cast<double>(_threads));
    if (_workers.empty() || n == 1) {
        serial();
        MetricsRegistry::flushThread();
        return;
    }

    auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &fn;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_job) {
            // Reentrant (nested or concurrent) use: fall back to an
            // inline serial loop instead of deadlocking the pool.
            job.reset();
        } else {
            job->gen = ++_generation;
            _job = job;
        }
    }
    if (!job) {
        serial();
        MetricsRegistry::flushThread();
        return;
    }

    // The calling thread participates too.
    _wake.notify_all();
    size_t ran = drain(*job, _mutex);
    MetricsRegistry::flushThread();
    {
        std::unique_lock<std::mutex> lock(_mutex);
        job->finished += ran;
        _done.wait(lock, [&] { return job->finished == job->n; });
        _job.reset();
    }

    if (job->error)
        std::rethrow_exception(job->error);
}

void
ParallelRunner::forEachChunked(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t)> &fn) const
{
    if (grain == 0)
        fatal("ParallelRunner: chunk grain must be positive");
    if (n == 0)
        return;
    if (grain == 1) {
        forEach(n, [&](size_t i) {
            metricAdd(Metric::RunnerChunksClaimed);
            fn(i, i + 1);
        });
        return;
    }

    // Claim over the chunk index space; the per-index machinery
    // (ordering, reentrancy fallback, exception draining) carries
    // over unchanged.
    size_t chunks = (n + grain - 1) / grain;
    forEach(chunks, [&](size_t c) {
        metricAdd(Metric::RunnerChunksClaimed);
        size_t begin = c * grain;
        fn(begin, std::min(begin + grain, n));
    });
}

size_t
ParallelRunner::suggestedGrain(size_t n, size_t chunksPerThread) const
{
    if (n == 0)
        return 1;
    size_t target = std::max<size_t>(1, chunksPerThread) * _threads;
    return std::clamp<size_t>(n / target, 1, n);
}

const ParallelRunner &
ParallelRunner::global()
{
    static ParallelRunner runner;
    return runner;
}

} // namespace pdnspot
