#include "common/noise.hh"

namespace pdnspot
{

uint64_t
HashNoise::mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double
HashNoise::unit(uint64_t key) const
{
    uint64_t h = mix(mix(_seed) ^ key);
    // 53 significant bits -> double in [0, 1)
    return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

double
HashNoise::signedUnit(uint64_t key) const
{
    return 2.0 * unit(key) - 1.0;
}

double
HashNoise::signedUnit(const std::string &key) const
{
    // FNV-1a over the key bytes, then mix with the seed.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : key) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return signedUnit(h);
}

} // namespace pdnspot
