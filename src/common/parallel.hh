/**
 * @file
 * ParallelRunner: a small fixed-size thread pool with an index-ordered
 * parallel-for, used to fan sweep and experiment evaluations across
 * cores.
 *
 * Determinism contract: forEach(n, fn) invokes fn(i) exactly once for
 * every i in [0, n) and map() stores each result at its own index, so
 * the assembled output is bit-identical to a serial loop regardless of
 * thread count or scheduling. Workers only race on the work counter,
 * never on results.
 */

#ifndef PDNSPOT_COMMON_PARALLEL_HH
#define PDNSPOT_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pdnspot
{

class ParallelRunner
{
  public:
    /**
     * Upper bound on pool size: more threads bring no fan-out
     * benefit for the modeled workloads and risk exhausting OS
     * thread limits. Oversized requests (PDNSPOT_THREADS or CLI
     * flags) clamp here.
     */
    static constexpr unsigned maxThreadCount = 256;

    /**
     * @param threads worker count; 0 picks the value of the
     * PDNSPOT_THREADS environment variable if set, otherwise
     * std::thread::hardware_concurrency(). A count of 1 runs
     * everything inline on the calling thread (no pool).
     */
    explicit ParallelRunner(unsigned threads = 0);
    ~ParallelRunner();

    ParallelRunner(const ParallelRunner &) = delete;
    ParallelRunner &operator=(const ParallelRunner &) = delete;

    unsigned threadCount() const { return _threads; }

    /**
     * Run fn(i) for every i in [0, n); blocks until all complete.
     * The first exception thrown by any fn is rethrown here after
     * the remaining indices have drained. Reentrant calls (fn itself
     * calling forEach, or a second thread while a job is in flight)
     * degrade to an inline serial loop rather than deadlocking.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn) const;

    /**
     * Chunked range-claiming: workers claim contiguous ranges of up
     * to `grain` indices at a time and receive each claimed range as
     * one fn(begin, end) call. Claiming per range instead of per
     * index amortizes the work-counter contention when n is large
     * and fn is cheap; which indices land in which chunk depends
     * only on (n, grain), never on scheduling, so deterministic
     * callers stay deterministic. An exception thrown by fn skips
     * the rest of that chunk only; the first one is rethrown after
     * the job drains (as with forEach).
     */
    void forEachChunked(size_t n, size_t grain,
                        const std::function<void(size_t, size_t)> &fn)
        const;

    /**
     * Parallel map with deterministic ordering: out[i] == fn(i).
     * T must be default-constructible. `grain` sets the range-claim
     * size (see forEachChunked); 1 claims per index.
     */
    template <typename T, typename Fn>
    std::vector<T>
    map(size_t n, Fn &&fn, size_t grain = 1) const
    {
        std::vector<T> out(n);
        forEachChunked(n, grain, [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i)
                out[i] = fn(i);
        });
        return out;
    }

    /**
     * A grain that splits n indices into roughly chunksPerThread
     * claims per worker — enough chunks for load balance, few enough
     * to amortize claiming. Always in [1, n].
     */
    size_t suggestedGrain(size_t n,
                          size_t chunksPerThread = 8) const;

    /** Process-wide shared pool (sized per the default policy). */
    static const ParallelRunner &global();

    /**
     * Parse a PDNSPOT_THREADS value. Non-numeric, zero, negative,
     * empty or trailing-garbage values warn (naming the offending
     * value) and return `fallback`; values above the pool cap warn
     * and clamp. Exposed so the policy is unit-testable without
     * mutating the environment.
     */
    static unsigned parseThreadCount(const char *text,
                                     unsigned fallback);

  private:
    struct Job;

    static size_t drain(Job &job, std::mutex &mutex);
    void workerLoop();

    unsigned _threads;
    std::vector<std::thread> _workers;

    mutable std::mutex _mutex;
    mutable std::condition_variable _wake;     ///< workers wait here
    mutable std::condition_variable _done;     ///< forEach waits here
    mutable std::shared_ptr<Job> _job;         ///< in-flight job
    mutable std::uint64_t _generation = 0;     ///< job sequence number
    bool _stop = false;
};

} // namespace pdnspot

#endif // PDNSPOT_COMMON_PARALLEL_HH
