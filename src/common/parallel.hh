/**
 * @file
 * ParallelRunner: a small fixed-size thread pool with an index-ordered
 * parallel-for, used to fan sweep and experiment evaluations across
 * cores.
 *
 * Determinism contract: forEach(n, fn) invokes fn(i) exactly once for
 * every i in [0, n) and map() stores each result at its own index, so
 * the assembled output is bit-identical to a serial loop regardless of
 * thread count or scheduling. Workers only race on the work counter,
 * never on results.
 */

#ifndef PDNSPOT_COMMON_PARALLEL_HH
#define PDNSPOT_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pdnspot
{

class ParallelRunner
{
  public:
    /**
     * @param threads worker count; 0 picks the value of the
     * PDNSPOT_THREADS environment variable if set, otherwise
     * std::thread::hardware_concurrency(). A count of 1 runs
     * everything inline on the calling thread (no pool).
     */
    explicit ParallelRunner(unsigned threads = 0);
    ~ParallelRunner();

    ParallelRunner(const ParallelRunner &) = delete;
    ParallelRunner &operator=(const ParallelRunner &) = delete;

    unsigned threadCount() const { return _threads; }

    /**
     * Run fn(i) for every i in [0, n); blocks until all complete.
     * The first exception thrown by any fn is rethrown here after
     * the remaining indices have drained. Reentrant calls (fn itself
     * calling forEach, or a second thread while a job is in flight)
     * degrade to an inline serial loop rather than deadlocking.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn) const;

    /**
     * Parallel map with deterministic ordering: out[i] == fn(i).
     * T must be default-constructible.
     */
    template <typename T, typename Fn>
    std::vector<T>
    map(size_t n, Fn &&fn) const
    {
        std::vector<T> out(n);
        forEach(n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Process-wide shared pool (sized per the default policy). */
    static const ParallelRunner &global();

  private:
    struct Job;

    static size_t drain(Job &job, std::mutex &mutex);
    void workerLoop();

    unsigned _threads;
    std::vector<std::thread> _workers;

    mutable std::mutex _mutex;
    mutable std::condition_variable _wake;     ///< workers wait here
    mutable std::condition_variable _done;     ///< forEach waits here
    mutable std::shared_ptr<Job> _job;         ///< in-flight job
    mutable std::uint64_t _generation = 0;     ///< job sequence number
    bool _stop = false;
};

} // namespace pdnspot

#endif // PDNSPOT_COMMON_PARALLEL_HH
