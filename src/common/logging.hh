/**
 * @file
 * Error-reporting and status-message helpers, following the gem5
 * fatal()/panic()/warn()/inform() convention.
 *
 * fatal()  - user-correctable misconfiguration; throws ConfigError so
 *            library callers can recover.
 * panic()  - internal invariant violation (a bug in this library);
 *            throws ModelError.
 * warn()   - suspicious but survivable condition.
 * inform() - plain status message.
 *
 * warn()/inform() route through a process-wide swappable sink
 * (default: stderr with a "warn: "/"info: " prefix) gated by a
 * severity threshold, so CLIs can implement --quiet/--log-level and
 * tests can capture-assert messages (ScopedLogCapture) instead of
 * letting them leak into CTest output.
 */

#ifndef PDNSPOT_COMMON_LOGGING_HH
#define PDNSPOT_COMMON_LOGGING_HH

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdnspot
{

/** Raised by fatal(): bad user input or configuration. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Raised by panic(): internal model invariant violated. */
class ModelError : public std::logic_error
{
  public:
    explicit ModelError(const std::string &what)
        : std::logic_error(what)
    {}
};

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * "a, b, c" joining for error messages that list alternatives
 * (available traces, valid keys, preset names, ...).
 */
std::string joinStrings(const std::vector<std::string> &parts,
                        const char *separator = ", ");

/** Report a user-correctable error. Never returns. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal invariant violation. Never returns. */
[[noreturn]] void panic(const std::string &msg);

/** Report a suspicious but survivable condition. */
void warn(const std::string &msg);

/** Report a status message. */
void inform(const std::string &msg);

/**
 * Message severities, in threshold order: a threshold of Warn drops
 * inform() but keeps warn(); Silent drops both. fatal()/panic()
 * throw and are never filtered.
 */
enum class LogLevel
{
    Info = 0,
    Warn = 1,
    Silent = 2,
};

const char *toString(LogLevel level);

/** Inverse of toString(LogLevel); fatal() on an unknown name. */
LogLevel logLevelFromString(const std::string &name);

/**
 * Messages below `level` are dropped before reaching the sink.
 * Returns the previous threshold. Default: Info (everything).
 */
LogLevel setLogThreshold(LogLevel level);

LogLevel logThreshold();

/**
 * Where surviving messages go. The sink receives the severity and
 * the unprefixed message; the default sink writes
 * "warn: <msg>\n" / "info: <msg>\n" to stderr.
 */
using LogSink =
    std::function<void(LogLevel severity, const std::string &msg)>;

/**
 * Swap the sink; an empty function restores the default stderr
 * sink. Returns the previous sink (empty when the default was
 * active). Sink calls are serialized under an internal mutex.
 */
LogSink setLogSink(LogSink sink);

/**
 * RAII test helper: while alive, warn()/inform() append to this
 * capture (threshold forced to Info) instead of reaching the
 * previous sink; destruction restores both. Not for concurrent use
 * from multiple captures.
 */
class ScopedLogCapture
{
  public:
    struct Entry
    {
        LogLevel severity;
        std::string message; ///< unprefixed
    };

    ScopedLogCapture();
    ~ScopedLogCapture();

    ScopedLogCapture(const ScopedLogCapture &) = delete;
    ScopedLogCapture &operator=(const ScopedLogCapture &) = delete;

    const std::vector<Entry> &entries() const { return _entries; }

    /** Captured messages of `severity` containing `substring`. */
    size_t count(LogLevel severity,
                 const std::string &substring = "") const;

  private:
    std::vector<Entry> _entries;
    LogSink _previousSink;
    LogLevel _previousThreshold;
};

} // namespace pdnspot

#endif // PDNSPOT_COMMON_LOGGING_HH
