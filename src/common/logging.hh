/**
 * @file
 * Error-reporting and status-message helpers, following the gem5
 * fatal()/panic()/warn()/inform() convention.
 *
 * fatal()  - user-correctable misconfiguration; throws ConfigError so
 *            library callers can recover.
 * panic()  - internal invariant violation (a bug in this library);
 *            throws ModelError.
 * warn()   - suspicious but survivable condition, printed to stderr.
 * inform() - plain status message, printed to stderr.
 */

#ifndef PDNSPOT_COMMON_LOGGING_HH
#define PDNSPOT_COMMON_LOGGING_HH

#include <stdexcept>
#include <string>
#include <vector>

namespace pdnspot
{

/** Raised by fatal(): bad user input or configuration. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Raised by panic(): internal model invariant violated. */
class ModelError : public std::logic_error
{
  public:
    explicit ModelError(const std::string &what)
        : std::logic_error(what)
    {}
};

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * "a, b, c" joining for error messages that list alternatives
 * (available traces, valid keys, preset names, ...).
 */
std::string joinStrings(const std::vector<std::string> &parts,
                        const char *separator = ", ");

/** Report a user-correctable error. Never returns. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal invariant violation. Never returns. */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning to stderr. */
void warn(const std::string &msg);

/** Print a status message to stderr. */
void inform(const std::string &msg);

} // namespace pdnspot

#endif // PDNSPOT_COMMON_LOGGING_HH
