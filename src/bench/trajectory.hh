/**
 * @file
 * Benchmark-trajectory records: the stable machine-readable schema
 * the bench binaries emit (`bench_* --json <path>`), scripts/bench.sh
 * merges into `BENCH_<n>.json` snapshots at the repo root, and
 * tools/bench_diff compares run over run so a perf regression is as
 * visible as a test failure.
 *
 * Schema (version "pdnspot-bench-1"): a document is the object
 *
 *   {"schema": "pdnspot-bench-1", "records": [...]}
 *
 * and every record is
 *
 *   {"benchmark": "campaignThroughput/threads:8",
 *    "metric": "cells_per_sec", "value": 1234.5,
 *    "unit": "cells/s", "git_rev": "abc1234", "threads": 8}
 *
 * Regression direction is a pure function of the unit
 * (directionForUnit), so the comparator needs no out-of-band
 * metadata: time-like units (ns, us, ms, s, ns/phase, ...) regress
 * upward, everything else (rates, ratios, counts) regresses
 * downward. Merging snapshots is record concatenation.
 */

#ifndef PDNSPOT_BENCH_TRAJECTORY_HH
#define PDNSPOT_BENCH_TRAJECTORY_HH

#include <string>
#include <vector>

#include "config/json.hh"

namespace pdnspot
{

/** Schema marker every trajectory document carries. */
inline constexpr const char *benchSchemaVersion = "pdnspot-bench-1";

/** One (benchmark, metric) measurement of one snapshot. */
struct BenchRecord
{
    std::string benchmark;
    std::string metric;
    double value = 0.0;
    std::string unit;
    std::string gitRev = "unknown";
    unsigned threads = 1;

    bool operator==(const BenchRecord &) const = default;
};

/**
 * Unit of a well-known counter metric ("count" for anything not in
 * the table). The bench binaries attach counters by metric name;
 * this is the single place that maps those names onto schema units.
 */
std::string benchMetricUnit(const std::string &metric);

/** Serialize records as a schema document (writeJson formatting). */
std::string writeBenchJson(const std::vector<BenchRecord> &records);

/**
 * Parse a schema document; fatal() (ConfigError, with the value's
 * file:line:col position) on a missing/mistyped member or a schema
 * version mismatch.
 */
std::vector<BenchRecord> parseBenchJson(const JsonValue &doc);

/** parseBenchJson over a file's contents; fatal() if unreadable. */
std::vector<BenchRecord> readBenchJsonFile(const std::string &path);

/** Which way a metric gets worse. */
enum class MetricDirection
{
    HigherIsBetter, ///< rates, ratios, counts
    LowerIsBetter,  ///< times (ns, us, ms, s and per-item forms)
};

/**
 * Direction by unit: "ns"/"us"/"ms"/"s" and any "<time>/<item>"
 * form of them (e.g. "ns/phase") are LowerIsBetter; every other
 * unit (e.g. "cells/s", "ratio", "count") is HigherIsBetter.
 */
MetricDirection directionForUnit(const std::string &unit);

/** Outcome of comparing one metric across two snapshots. */
enum class BenchVerdict
{
    Improved,        ///< better by more than the warn threshold
    Flat,            ///< within the warn threshold either way
    SmallRegression, ///< worse by more than warn, at most fail
    BigRegression,   ///< worse by more than the fail threshold
    Missing,         ///< in the old snapshot, absent from the new
};

const char *toString(BenchVerdict verdict);

/** One metric's old-vs-new comparison. */
struct BenchDelta
{
    std::string benchmark;
    std::string metric;
    std::string unit;
    double oldValue = 0.0;
    double newValue = 0.0;

    /**
     * Percent change toward "worse" per the unit's direction:
     * positive = regression, negative = improvement. 0 for Missing.
     */
    double regressionPct = 0.0;

    BenchVerdict verdict = BenchVerdict::Flat;
};

/**
 * Compare `newRecords` against `oldRecords` metric by metric (keyed
 * on (benchmark, metric), old-snapshot order). Metrics only in the
 * new snapshot are first appearances — baselines, not deltas — and
 * are skipped. warnPct/failPct are the SmallRegression/BigRegression
 * thresholds in percent (the trajectory defaults are 5 and 20).
 *
 * Direction is resolved from the metric's *canonical* unit
 * (benchMetricUnit) when the metric is in the unit table, falling
 * back to the record's stored unit otherwise — so snapshots written
 * before a counter entered the table (stored as "count") are still
 * judged the right way round.
 */
std::vector<BenchDelta>
diffBenchRecords(const std::vector<BenchRecord> &oldRecords,
                 const std::vector<BenchRecord> &newRecords,
                 double warnPct, double failPct);

} // namespace pdnspot

#endif // PDNSPOT_BENCH_TRAJECTORY_HH
