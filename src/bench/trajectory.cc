#include "bench/trajectory.hh"

#include <map>
#include <utility>

#include "common/logging.hh"

namespace pdnspot
{

namespace
{

/**
 * Canonical unit for the counter metrics the bench binaries emit
 * today, or nullptr for metrics not named here. A time-per-item
 * counter missing from this table gets stored as "count" and is
 * then judged HigherIsBetter — i.e. a speedup reads as a
 * regression — so every bench_* counter must be listed.
 */
const std::string *
canonicalMetricUnit(const std::string &metric)
{
    static const std::map<std::string, std::string> units = {
        {"cells_per_sec", "cells/s"},
        {"points_per_sec", "points/s"},
        {"sessions_per_sec", "sessions/s"},
        {"ns_per_phase", "ns/phase"},
        {"ns_per_session_bucket", "ns/session"},
        {"memo_hit_rate", "ratio"},
    };
    auto it = units.find(metric);
    return it != units.end() ? &it->second : nullptr;
}

} // namespace

std::string
benchMetricUnit(const std::string &metric)
{
    const std::string *unit = canonicalMetricUnit(metric);
    return unit ? *unit : "count";
}

std::string
writeBenchJson(const std::vector<BenchRecord> &records)
{
    std::vector<JsonValue> items;
    items.reserve(records.size());
    for (const BenchRecord &r : records) {
        items.push_back(JsonValue::makeObject({
            {"benchmark", JsonValue::makeString(r.benchmark)},
            {"metric", JsonValue::makeString(r.metric)},
            {"value", JsonValue::makeNumber(r.value)},
            {"unit", JsonValue::makeString(r.unit)},
            {"git_rev", JsonValue::makeString(r.gitRev)},
            {"threads",
             JsonValue::makeNumber(static_cast<double>(r.threads))},
        }));
    }
    JsonValue doc = JsonValue::makeObject({
        {"schema", JsonValue::makeString(benchSchemaVersion)},
        {"records", JsonValue::makeArray(std::move(items))},
    });
    return writeJson(doc);
}

namespace
{

const JsonValue &
requireMember(const JsonValue &object, const char *key)
{
    const JsonValue *member = object.find(key);
    if (!member)
        object.fail(strprintf("bench record is missing \"%s\"",
                              key));
    return *member;
}

} // namespace

std::vector<BenchRecord>
parseBenchJson(const JsonValue &doc)
{
    const JsonValue &schema = requireMember(doc, "schema");
    if (schema.asString() != benchSchemaVersion)
        schema.fail(strprintf("unsupported bench schema \"%s\" "
                              "(expected \"%s\")",
                              schema.asString().c_str(),
                              benchSchemaVersion));

    std::vector<BenchRecord> records;
    for (const JsonValue &item :
         requireMember(doc, "records").items()) {
        BenchRecord r;
        r.benchmark = requireMember(item, "benchmark").asString();
        r.metric = requireMember(item, "metric").asString();
        r.value = requireMember(item, "value").asNumber();
        r.unit = requireMember(item, "unit").asString();
        r.gitRev = requireMember(item, "git_rev").asString();
        r.threads = static_cast<unsigned>(
            requireMember(item, "threads")
                .asInteger("threads", 1, 1 << 20));
        records.push_back(std::move(r));
    }
    return records;
}

std::vector<BenchRecord>
readBenchJsonFile(const std::string &path)
{
    return parseBenchJson(parseJsonFile(path));
}

MetricDirection
directionForUnit(const std::string &unit)
{
    std::string base = unit.substr(0, unit.find('/'));
    if (base == "ns" || base == "us" || base == "ms" || base == "s")
        return MetricDirection::LowerIsBetter;
    return MetricDirection::HigherIsBetter;
}

const char *
toString(BenchVerdict verdict)
{
    switch (verdict) {
      case BenchVerdict::Improved:
        return "improved";
      case BenchVerdict::Flat:
        return "flat";
      case BenchVerdict::SmallRegression:
        return "SMALL REGRESSION";
      case BenchVerdict::BigRegression:
        return "BIG REGRESSION";
      case BenchVerdict::Missing:
        return "MISSING";
    }
    return "?";
}

std::vector<BenchDelta>
diffBenchRecords(const std::vector<BenchRecord> &oldRecords,
                 const std::vector<BenchRecord> &newRecords,
                 double warnPct, double failPct)
{
    std::map<std::pair<std::string, std::string>,
             const BenchRecord *>
        byKey;
    for (const BenchRecord &r : newRecords)
        byKey.emplace(std::make_pair(r.benchmark, r.metric), &r);

    std::vector<BenchDelta> deltas;
    deltas.reserve(oldRecords.size());
    for (const BenchRecord &old : oldRecords) {
        BenchDelta d;
        d.benchmark = old.benchmark;
        d.metric = old.metric;
        d.unit = old.unit;
        d.oldValue = old.value;

        auto it =
            byKey.find(std::make_pair(old.benchmark, old.metric));
        if (it == byKey.end()) {
            d.verdict = BenchVerdict::Missing;
            deltas.push_back(std::move(d));
            continue;
        }
        d.newValue = it->second->value;

        // Direction comes from the metric's canonical unit when the
        // metric is known, so snapshots written before a counter
        // entered the unit table (stamped "count") are still judged
        // the right way round; the stored unit decides only for
        // metrics the table has never named.
        const std::string *canon = canonicalMetricUnit(old.metric);
        bool higherBetter = directionForUnit(canon ? *canon
                                                   : old.unit) ==
                            MetricDirection::HigherIsBetter;

        // Signed change toward "worse". A zero baseline cannot carry
        // a percentage: any movement off it counts as a full-scale
        // (100%) change in the direction it moved.
        double worse;
        if (old.value != 0.0) {
            worse = (d.newValue - d.oldValue) / old.value * 100.0;
            if (higherBetter)
                worse = -worse;
        } else if (d.newValue == 0.0) {
            worse = 0.0;
        } else {
            bool grew = d.newValue > 0.0;
            worse = grew == higherBetter ? -100.0 : 100.0;
        }
        d.regressionPct = worse;

        if (worse > failPct)
            d.verdict = BenchVerdict::BigRegression;
        else if (worse > warnPct)
            d.verdict = BenchVerdict::SmallRegression;
        else if (worse < -warnPct)
            d.verdict = BenchVerdict::Improved;
        else
            d.verdict = BenchVerdict::Flat;
        deltas.push_back(std::move(d));
    }
    return deltas;
}

} // namespace pdnspot
