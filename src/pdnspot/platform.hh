/**
 * @file
 * The PDNspot platform: one object bundling every model in the
 * framework, configured consistently.
 *
 * This is the main entry point of the library. A Platform owns the
 * operating-point model, all five PDN topologies, the FlexWatts ETEE
 * firmware tables and mode predictor, the performance model and the
 * BOM/area calculator. See examples/quickstart.cc for usage.
 */

#ifndef PDNSPOT_PDNSPOT_PLATFORM_HH
#define PDNSPOT_PDNSPOT_PLATFORM_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cost/board_budget.hh"
#include "flexwatts/etee_table.hh"
#include "flexwatts/flexwatts_pdn.hh"
#include "flexwatts/mode_predictor.hh"
#include "flexwatts/pdn_factory.hh"
#include "pdn/pdn_model.hh"
#include "perf/budget_solver.hh"
#include "perf/perf_model.hh"
#include "power/operating_point.hh"

namespace pdnspot
{

/** Platform-level configuration. */
struct PlatformConfig
{
    /** Identifies this platform in campaign results and CSV rows. */
    std::string name = "custom";

    /**
     * Sustained thermal design power of the modeled system; campaign
     * simulations run the interval simulator at this budget. Must lie
     * in the operating-point model's supported 4-50 W span.
     */
    Power tdp = watts(15.0);

    PdnPlatformParams pdnParams;
    double predictorHysteresis = 0.005; ///< 0.5% absolute ETEE margin
};

/**
 * Named platform presets spanning the paper's client segments
 * (Sec. 7.1 evaluates 4-50 W TDPs). Campaigns sweep these alongside
 * PDN kinds; see src/campaign/.
 */

/** 4 W fan-less tablet: 2S battery pack, passive cooling. */
PlatformConfig fanlessTabletPreset();

/** 15 W ultraportable notebook: the paper's default platform. */
PlatformConfig ultraportablePreset();

/** 45 W H-series performance notebook: 3S pack, active cooling. */
PlatformConfig hSeriesPreset();

/** The three presets above, in ascending-TDP order. */
const std::vector<PlatformConfig> &allPlatformPresets();

/** Look a preset up by its config name; fatal() on an unknown name. */
PlatformConfig platformPresetByName(const std::string &name);

/** Everything PDNspot knows about one modeled client platform. */
class Platform
{
  public:
    explicit Platform(PlatformConfig config = {});

    Platform(const Platform &) = delete;
    Platform &operator=(const Platform &) = delete;

    const OperatingPointModel &
    operatingPoints() const
    {
        return _opm;
    }

    /** Any of the five PDN architectures. */
    const PdnModel &pdn(PdnKind kind) const;

    /** The FlexWatts topology with its mode-level API. */
    const FlexWattsPdn &flexWatts() const { return *_flexwatts; }

    /** Pre-characterized ETEE curves (PMU firmware tables). */
    const EteeTable &eteeTable() const { return *_eteeTable; }

    /** Algorithm 1 over the firmware tables. */
    const ModePredictor &predictor() const { return *_predictor; }

    const PerfModel &perfModel() const { return _perf; }
    const BudgetSolver &budgetSolver() const { return _solver; }
    const BoardCostCalculator &costs() const { return _costs; }

    const PlatformConfig &config() const { return _config; }

  private:
    PlatformConfig _config;
    OperatingPointModel _opm;
    std::array<std::unique_ptr<PdnModel>, allPdnKinds.size()> _pdns;
    const FlexWattsPdn *_flexwatts = nullptr;
    std::unique_ptr<EteeTable> _eteeTable;
    std::unique_ptr<ModePredictor> _predictor;
    PerfModel _perf;
    BudgetSolver _solver;
    BoardCostCalculator _costs;
};

} // namespace pdnspot

#endif // PDNSPOT_PDNSPOT_PLATFORM_HH
