#include "pdnspot/sweep.hh"

#include <istream>
#include <locale>
#include <sstream>
#include <utility>

#include "common/csv.hh"
#include "common/logging.hh"
#include "pdnspot/experiments.hh"

namespace pdnspot
{

void
SweepResult::writeCsv(std::ostream &os) const
{
    // Format through a classic-locale buffer so the CSV always uses
    // '.' decimal points and no digit grouping, regardless of the
    // caller's stream or global locale.
    std::ostringstream buf;
    buf.imbue(std::locale::classic());

    buf << xLabel;
    for (const SweepSeries &s : series)
        buf << "," << s.label;
    buf << "\n";
    if (series.empty()) {
        os << buf.str();
        return;
    }
    size_t n = series.front().points.size();
    for (const SweepSeries &s : series) {
        if (s.points.size() != n)
            panic("SweepResult: ragged series");
    }
    for (size_t i = 0; i < n; ++i) {
        buf << series.front().points[i].first;
        for (const SweepSeries &s : series)
            buf << "," << s.points[i].second;
        buf << "\n";
    }
    os << buf.str();
}

SweepResult
SweepResult::readCsv(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line))
        fatal("SweepResult::readCsv: empty input");

    std::vector<std::string> header = splitCsvLine(line);
    SweepResult r;
    r.xLabel = header.front();
    for (size_t s = 1; s < header.size(); ++s)
        r.series.push_back({header[s], {}});

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> fields = splitCsvLine(line);
        if (fields.size() != header.size())
            fatal(strprintf("SweepResult::readCsv: row has %zu "
                            "columns, header has %zu",
                            fields.size(), header.size()));
        double x = csvToDouble(fields[0]);
        for (size_t s = 1; s < fields.size(); ++s)
            r.series[s - 1].points.emplace_back(
                x, csvToDouble(fields[s]));
    }
    return r;
}

SweepEngine::SweepEngine(const Platform &platform,
                         const ParallelRunner &runner)
    : _platform(platform), _runner(runner)
{}

double
SweepEngine::eteeAt(PdnKind kind, Power tdp, WorkloadType type,
                    double ar, PackageCState cstate) const
{
    OperatingPointModel::Query q;
    q.tdp = tdp;
    q.type = type;
    q.ar = ar;
    q.cstate = cstate;
    return _platform.pdn(kind)
        .evaluate(_platform.operatingPoints().build(q))
        .etee();
}

SweepResult
SweepEngine::sweep(std::string xLabel, std::string yLabel,
                   const std::vector<double> &xs,
                   const std::vector<PdnKind> &kinds,
                   const std::function<double(PdnKind, double)> &eval)
    const
{
    if (xs.empty() || kinds.empty())
        fatal("SweepEngine: empty sweep requested");

    // Flatten kind × point into one task list, claimed in chunked
    // ranges; each result lands at its own index, so assembly order
    // never depends on scheduling or the grain.
    size_t nx = xs.size();
    size_t total = kinds.size() * nx;
    std::vector<double> ys = _runner.map<double>(
        total,
        [&](size_t t) { return eval(kinds[t / nx], xs[t % nx]); },
        _runner.suggestedGrain(total));

    SweepResult r;
    r.xLabel = std::move(xLabel);
    r.yLabel = std::move(yLabel);
    for (size_t k = 0; k < kinds.size(); ++k) {
        SweepSeries s;
        s.label = pdnKindToString(kinds[k]);
        for (size_t i = 0; i < nx; ++i)
            s.points.emplace_back(xs[i], ys[k * nx + i]);
        r.series.push_back(std::move(s));
    }
    return r;
}

SweepResult
SweepEngine::eteeVsAr(Power tdp, WorkloadType type,
                      const std::vector<double> &ars,
                      const std::vector<PdnKind> &kinds) const
{
    return sweep("AR", "ETEE", ars, kinds,
                 [&](PdnKind kind, double ar) {
                     return eteeAt(kind, tdp, type, ar,
                                   PackageCState::C0);
                 });
}

SweepResult
SweepEngine::eteeVsTdp(WorkloadType type, double ar,
                       const std::vector<double> &tdps_w,
                       const std::vector<PdnKind> &kinds) const
{
    return sweep("TDP_W", "ETEE", tdps_w, kinds,
                 [&](PdnKind kind, double tdp) {
                     return eteeAt(kind, watts(tdp), type, ar,
                                   PackageCState::C0);
                 });
}

SweepResult
SweepEngine::eteeVsCState(const std::vector<PdnKind> &kinds) const
{
    std::vector<double> indices;
    for (size_t i = 0; i < batteryLifeCStates.size(); ++i)
        indices.push_back(static_cast<double>(i));
    return sweep("cstate_index", "ETEE", indices, kinds,
                 [&](PdnKind kind, double idx) {
                     return eteeAt(kind, watts(15.0),
                                   WorkloadType::BatteryLife, 0.3,
                                   batteryLifeCStates[static_cast<
                                       size_t>(idx)]);
                 });
}

SweepResult
SweepEngine::bomVsTdp(const std::vector<double> &tdps_w,
                      const std::vector<PdnKind> &kinds) const
{
    return sweep("TDP_W", "BOM_vs_IVR", tdps_w, kinds,
                 [&](PdnKind kind, double tdp) {
                     return normalizedBom(_platform, kind,
                                          watts(tdp));
                 });
}

SweepResult
SweepEngine::areaVsTdp(const std::vector<double> &tdps_w,
                       const std::vector<PdnKind> &kinds) const
{
    return sweep("TDP_W", "area_vs_IVR", tdps_w, kinds,
                 [&](PdnKind kind, double tdp) {
                     return normalizedArea(_platform, kind,
                                           watts(tdp));
                 });
}

} // namespace pdnspot
