#include "pdnspot/sweep.hh"

#include "common/logging.hh"
#include "pdnspot/experiments.hh"

namespace pdnspot
{

void
SweepResult::writeCsv(std::ostream &os) const
{
    os << xLabel;
    for (const SweepSeries &s : series)
        os << "," << s.label;
    os << "\n";
    if (series.empty())
        return;
    size_t n = series.front().points.size();
    for (const SweepSeries &s : series) {
        if (s.points.size() != n)
            panic("SweepResult: ragged series");
    }
    for (size_t i = 0; i < n; ++i) {
        os << series.front().points[i].first;
        for (const SweepSeries &s : series)
            os << "," << s.points[i].second;
        os << "\n";
    }
}

SweepEngine::SweepEngine(const Platform &platform)
    : _platform(platform)
{}

double
SweepEngine::eteeAt(PdnKind kind, Power tdp, WorkloadType type,
                    double ar, PackageCState cstate) const
{
    OperatingPointModel::Query q;
    q.tdp = tdp;
    q.type = type;
    q.ar = ar;
    q.cstate = cstate;
    return _platform.pdn(kind)
        .evaluate(_platform.operatingPoints().build(q))
        .etee();
}

SweepResult
SweepEngine::eteeVsAr(Power tdp, WorkloadType type,
                      const std::vector<double> &ars,
                      const std::vector<PdnKind> &kinds) const
{
    if (ars.empty() || kinds.empty())
        fatal("SweepEngine: empty sweep requested");
    SweepResult r;
    r.xLabel = "AR";
    r.yLabel = "ETEE";
    for (PdnKind kind : kinds) {
        SweepSeries s;
        s.label = toString(kind);
        for (double ar : ars) {
            s.points.emplace_back(
                ar, eteeAt(kind, tdp, type, ar, PackageCState::C0));
        }
        r.series.push_back(std::move(s));
    }
    return r;
}

SweepResult
SweepEngine::eteeVsTdp(WorkloadType type, double ar,
                       const std::vector<double> &tdps_w,
                       const std::vector<PdnKind> &kinds) const
{
    if (tdps_w.empty() || kinds.empty())
        fatal("SweepEngine: empty sweep requested");
    SweepResult r;
    r.xLabel = "TDP_W";
    r.yLabel = "ETEE";
    for (PdnKind kind : kinds) {
        SweepSeries s;
        s.label = toString(kind);
        for (double tdp : tdps_w) {
            s.points.emplace_back(tdp, eteeAt(kind, watts(tdp), type,
                                              ar, PackageCState::C0));
        }
        r.series.push_back(std::move(s));
    }
    return r;
}

SweepResult
SweepEngine::eteeVsCState(const std::vector<PdnKind> &kinds) const
{
    if (kinds.empty())
        fatal("SweepEngine: empty sweep requested");
    SweepResult r;
    r.xLabel = "cstate_index";
    r.yLabel = "ETEE";
    for (PdnKind kind : kinds) {
        SweepSeries s;
        s.label = toString(kind);
        double idx = 0.0;
        for (PackageCState cs : batteryLifeCStates) {
            s.points.emplace_back(
                idx, eteeAt(kind, watts(15.0),
                            WorkloadType::BatteryLife, 0.3, cs));
            idx += 1.0;
        }
        r.series.push_back(std::move(s));
    }
    return r;
}

SweepResult
SweepEngine::bomVsTdp(const std::vector<double> &tdps_w,
                      const std::vector<PdnKind> &kinds) const
{
    if (tdps_w.empty() || kinds.empty())
        fatal("SweepEngine: empty sweep requested");
    SweepResult r;
    r.xLabel = "TDP_W";
    r.yLabel = "BOM_vs_IVR";
    for (PdnKind kind : kinds) {
        SweepSeries s;
        s.label = toString(kind);
        for (double tdp : tdps_w) {
            s.points.emplace_back(
                tdp, normalizedBom(_platform, kind, watts(tdp)));
        }
        r.series.push_back(std::move(s));
    }
    return r;
}

SweepResult
SweepEngine::areaVsTdp(const std::vector<double> &tdps_w,
                       const std::vector<PdnKind> &kinds) const
{
    if (tdps_w.empty() || kinds.empty())
        fatal("SweepEngine: empty sweep requested");
    SweepResult r;
    r.xLabel = "TDP_W";
    r.yLabel = "area_vs_IVR";
    for (PdnKind kind : kinds) {
        SweepSeries s;
        s.label = toString(kind);
        for (double tdp : tdps_w) {
            s.points.emplace_back(
                tdp, normalizedArea(_platform, kind, watts(tdp)));
        }
        r.series.push_back(std::move(s));
    }
    return r;
}

} // namespace pdnspot
