#include "pdnspot/experiments.hh"

#include "common/logging.hh"

namespace pdnspot
{

Power
batteryAveragePower(const Platform &platform, PdnKind kind,
                    const BatteryProfile &profile)
{
    if (!profile.valid())
        fatal("batteryAveragePower: invalid residency profile");

    const PdnModel &pdn = platform.pdn(kind);
    const OperatingPointModel &opm = platform.operatingPoints();

    Power avg;
    for (const auto &[state, share] : profile.residencies) {
        OperatingPointModel::Query q;
        q.tdp = watts(15.0); // battery power is TDP-independent
        q.cstate = state;
        if (state == PackageCState::C0)
            fatal("batteryAveragePower: profiles use C0MIN, not C0");
        avg += pdn.evaluate(opm.build(q)).inputPower * share;
    }
    return avg;
}

std::vector<double>
suiteRelativePerf(const Platform &platform, PdnKind kind, Power tdp,
                  const std::vector<Workload> &suite,
                  const ParallelRunner &runner)
{
    const PdnModel &pdn = platform.pdn(kind);
    const PdnModel &baseline = platform.pdn(PdnKind::IVR);
    const PerfModel &perf = platform.perfModel();

    return runner.map<double>(suite.size(), [&](size_t i) {
        return perf.relativePerformance(pdn, baseline, tdp, suite[i])
            .relativePerf;
    });
}

double
suiteMeanRelativePerf(const Platform &platform, PdnKind kind, Power tdp,
                      const std::vector<Workload> &suite,
                      const ParallelRunner &runner)
{
    if (suite.empty())
        fatal("suiteMeanRelativePerf: empty suite");
    double sum = 0.0;
    for (double r :
         suiteRelativePerf(platform, kind, tdp, suite, runner))
        sum += r;
    return sum / static_cast<double>(suite.size());
}

double
normalizedBom(const Platform &platform, PdnKind kind, Power tdp)
{
    double base = platform.costs()
                      .evaluate(platform.pdn(PdnKind::IVR), tdp)
                      .bomCostUsd;
    double cand =
        platform.costs().evaluate(platform.pdn(kind), tdp).bomCostUsd;
    if (base <= 0.0)
        panic("normalizedBom: non-positive baseline cost");
    return cand / base;
}

double
normalizedArea(const Platform &platform, PdnKind kind, Power tdp)
{
    Area base = platform.costs()
                    .evaluate(platform.pdn(PdnKind::IVR), tdp)
                    .boardArea;
    Area cand =
        platform.costs().evaluate(platform.pdn(kind), tdp).boardArea;
    if (base <= Area())
        panic("normalizedArea: non-positive baseline area");
    return cand / base;
}

} // namespace pdnspot
