/**
 * @file
 * Sweep engine: the "multi-dimensional architecture-space exploration"
 * surface of PDNspot (paper Sec. 3).
 *
 * Produces named series of ETEE (or any per-PDN metric) against a
 * swept axis (AR, TDP, or package power state) for any subset of the
 * PDN architectures, and exports them as CSV for plotting. The bench
 * binaries print tables; this API is for downstream users who want
 * the raw series.
 */

#ifndef PDNSPOT_PDNSPOT_SWEEP_HH
#define PDNSPOT_PDNSPOT_SWEEP_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "pdnspot/platform.hh"

namespace pdnspot
{

/** One swept curve: a label and (x, y) points. */
struct SweepSeries
{
    std::string label;
    std::vector<std::pair<double, double>> points;
};

/** A set of curves sharing an x axis. */
struct SweepResult
{
    std::string xLabel;
    std::string yLabel;
    std::vector<SweepSeries> series;

    /** Emit as CSV: x, series-1, series-2, ... */
    void writeCsv(std::ostream &os) const;

    /**
     * Inverse of writeCsv, so exported figure data round-trips: the
     * header row supplies xLabel and the series labels, every data
     * row one x value and one y per series. The y-axis label is not
     * part of the CSV, so it comes back empty. For any text produced
     * by writeCsv, read-then-write reproduces it exactly (fixpoint).
     * fatal() on malformed input.
     */
    static SweepResult readCsv(std::istream &is);
};

/**
 * Sweeps platform operating points across the PDN architectures.
 *
 * Every PDN-kind × axis-point evaluation is independent, so sweeps
 * fan out across the runner's threads; results land at their own
 * (series, point) index, making the output bit-identical to a serial
 * sweep regardless of thread count.
 */
class SweepEngine
{
  public:
    /**
     * @param runner thread pool to fan evaluations across; defaults
     * to the process-wide pool. Pass a ParallelRunner(1) to force
     * serial evaluation.
     */
    explicit SweepEngine(const Platform &platform,
                         const ParallelRunner &runner =
                             ParallelRunner::global());

    /**
     * The engine keeps a reference to the runner for its lifetime;
     * binding a temporary would dangle after this full expression.
     */
    SweepEngine(const Platform &platform,
                const ParallelRunner &&runner) = delete;

    /** ETEE vs AR at fixed (TDP, workload type) — a Fig. 4 panel. */
    SweepResult eteeVsAr(Power tdp, WorkloadType type,
                         const std::vector<double> &ars,
                         const std::vector<PdnKind> &kinds) const;

    /** ETEE vs TDP at fixed (type, AR) — the crossover view. */
    SweepResult eteeVsTdp(WorkloadType type, double ar,
                          const std::vector<double> &tdps_w,
                          const std::vector<PdnKind> &kinds) const;

    /** ETEE per battery-life power state — Fig. 4(j). */
    SweepResult eteeVsCState(const std::vector<PdnKind> &kinds) const;

    /** Normalized BOM (y) vs TDP (x) — Fig. 8(d). */
    SweepResult bomVsTdp(const std::vector<double> &tdps_w,
                         const std::vector<PdnKind> &kinds) const;

    /** Normalized board area vs TDP — Fig. 8(e). */
    SweepResult areaVsTdp(const std::vector<double> &tdps_w,
                          const std::vector<PdnKind> &kinds) const;

  private:
    double eteeAt(PdnKind kind, Power tdp, WorkloadType type,
                  double ar, PackageCState cstate) const;

    /**
     * Shared fan-out: evaluate eval(kind, x) for every kind × x,
     * in parallel, and assemble one series per kind with points in
     * axis order.
     */
    SweepResult
    sweep(std::string xLabel, std::string yLabel,
          const std::vector<double> &xs,
          const std::vector<PdnKind> &kinds,
          const std::function<double(PdnKind, double)> &eval) const;

    const Platform &_platform;
    const ParallelRunner &_runner;
};

} // namespace pdnspot

#endif // PDNSPOT_PDNSPOT_SWEEP_HH
