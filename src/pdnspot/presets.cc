/**
 * @file
 * Named PlatformConfig presets for the three client power classes the
 * paper evaluates (Sec. 7.1): a 4 W fan-less tablet, the 15 W
 * ultraportable reference platform, and a 45 W H-series performance
 * notebook. Campaigns (src/campaign/) sweep these alongside PDN
 * kinds so one run covers the platform axis of Figs. 7/8.
 */

#include "pdnspot/platform.hh"

#include "common/logging.hh"

namespace pdnspot
{

PlatformConfig
fanlessTabletPreset()
{
    PlatformConfig cfg;
    cfg.name = "fanless-tablet-4w";
    cfg.tdp = watts(4.0);
    // 2S li-ion pack at the nominal 7.2 V the paper's Table 2 uses.
    cfg.pdnParams.supplyVoltage = volts(7.2);
    return cfg;
}

PlatformConfig
ultraportablePreset()
{
    PlatformConfig cfg;
    cfg.name = "ultraportable-15w";
    cfg.tdp = watts(15.0);
    // The paper's reference platform: keep the 7.2 V Table 2 rail so
    // campaigns on this preset reproduce the published figures.
    cfg.pdnParams.supplyVoltage = volts(7.2);
    return cfg;
}

PlatformConfig
hSeriesPreset()
{
    PlatformConfig cfg;
    cfg.name = "h-series-45w";
    cfg.tdp = watts(45.0);
    // 3S pack: higher rail keeps input current manageable at 45 W.
    cfg.pdnParams.supplyVoltage = volts(11.4);
    return cfg;
}

const std::vector<PlatformConfig> &
allPlatformPresets()
{
    static const std::vector<PlatformConfig> presets = {
        fanlessTabletPreset(),
        ultraportablePreset(),
        hSeriesPreset(),
    };
    return presets;
}

PlatformConfig
platformPresetByName(const std::string &name)
{
    for (const PlatformConfig &cfg : allPlatformPresets()) {
        if (cfg.name == name)
            return cfg;
    }
    fatal(strprintf("platformPresetByName: unknown preset \"%s\"",
                    name.c_str()));
}

} // namespace pdnspot
