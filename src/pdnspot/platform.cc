#include "pdnspot/platform.hh"

#include "common/logging.hh"

namespace pdnspot
{

Platform::Platform(PlatformConfig config)
    : _config(config),
      _opm(),
      _perf(_opm),
      _solver(_opm),
      _costs(_opm)
{
    for (size_t i = 0; i < allPdnKinds.size(); ++i)
        _pdns[i] = makePdn(allPdnKinds[i], config.pdnParams);

    _flexwatts = dynamic_cast<const FlexWattsPdn *>(
        &pdn(PdnKind::FlexWatts));
    if (!_flexwatts)
        panic("Platform: FlexWatts factory returned the wrong type");

    _eteeTable = std::make_unique<EteeTable>(*_flexwatts, _opm);
    _predictor = std::make_unique<ModePredictor>(
        *_eteeTable, config.predictorHysteresis);
}

const PdnModel &
Platform::pdn(PdnKind kind) const
{
    for (size_t i = 0; i < allPdnKinds.size(); ++i) {
        if (allPdnKinds[i] == kind)
            return *_pdns[i];
    }
    panic("Platform: unknown PdnKind");
}

} // namespace pdnspot
