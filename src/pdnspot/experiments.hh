/**
 * @file
 * Canned experiment computations behind the paper's tables/figures.
 *
 * Shared by the bench binaries and the integration tests so the
 * numbers reported and the numbers asserted are the same code path.
 */

#ifndef PDNSPOT_PDNSPOT_EXPERIMENTS_HH
#define PDNSPOT_PDNSPOT_EXPERIMENTS_HH

#include <array>
#include <vector>

#include "common/parallel.hh"
#include "pdnspot/platform.hh"
#include "workload/battery_profiles.hh"
#include "workload/workload.hh"

namespace pdnspot
{

/** The seven TDP points of the paper's evaluation. */
inline constexpr std::array<double, 7> evaluationTdpsW = {
    4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0,
};

/**
 * Average power of a battery-life workload on one PDN (Fig. 8c):
 * sum over the profile's states of nominal power / state ETEE,
 * weighted by residency. TDP-independent by construction.
 */
Power batteryAveragePower(const Platform &platform, PdnKind kind,
                          const BatteryProfile &profile);

/**
 * Mean relative performance over a suite (Figs. 7/8a/8b): each
 * workload's performance on `kind` divided by its performance on the
 * IVR baseline, averaged arithmetically as the paper does.
 *
 * Per-workload evaluations fan out across `runner`; the mean is
 * accumulated in suite order, so the result is bit-identical to the
 * serial computation at any thread count.
 */
double suiteMeanRelativePerf(const Platform &platform, PdnKind kind,
                             Power tdp,
                             const std::vector<Workload> &suite,
                             const ParallelRunner &runner =
                                 ParallelRunner::global());

/**
 * Per-benchmark relative performance for Fig. 7's bars, in suite
 * order. Evaluations fan out across `runner`.
 */
std::vector<double> suiteRelativePerf(const Platform &platform,
                                      PdnKind kind, Power tdp,
                                      const std::vector<Workload> &suite,
                                      const ParallelRunner &runner =
                                          ParallelRunner::global());

/** Normalized (to IVR) BOM cost of one PDN at one TDP (Fig. 8d). */
double normalizedBom(const Platform &platform, PdnKind kind, Power tdp);

/** Normalized (to IVR) board area of one PDN at one TDP (Fig. 8e). */
double normalizedArea(const Platform &platform, PdnKind kind,
                      Power tdp);

} // namespace pdnspot

#endif // PDNSPOT_PDNSPOT_EXPERIMENTS_HH
