/**
 * @file
 * Canned experiment computations behind the paper's tables/figures.
 *
 * Shared by the bench binaries and the integration tests so the
 * numbers reported and the numbers asserted are the same code path.
 */

#ifndef PDNSPOT_PDNSPOT_EXPERIMENTS_HH
#define PDNSPOT_PDNSPOT_EXPERIMENTS_HH

#include <vector>

#include "pdnspot/platform.hh"
#include "workload/battery_profiles.hh"
#include "workload/workload.hh"

namespace pdnspot
{

/** The seven TDP points of the paper's evaluation. */
inline constexpr std::array<double, 7> evaluationTdpsW = {
    4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0,
};

/**
 * Average power of a battery-life workload on one PDN (Fig. 8c):
 * sum over the profile's states of nominal power / state ETEE,
 * weighted by residency. TDP-independent by construction.
 */
Power batteryAveragePower(const Platform &platform, PdnKind kind,
                          const BatteryProfile &profile);

/**
 * Mean relative performance over a suite (Figs. 7/8a/8b): each
 * workload's performance on `kind` divided by its performance on the
 * IVR baseline, averaged arithmetically as the paper does.
 */
double suiteMeanRelativePerf(const Platform &platform, PdnKind kind,
                             Power tdp,
                             const std::vector<Workload> &suite);

/** Per-benchmark relative performance for Fig. 7's bars. */
std::vector<double> suiteRelativePerf(const Platform &platform,
                                      PdnKind kind, Power tdp,
                                      const std::vector<Workload> &suite);

/** Normalized (to IVR) BOM cost of one PDN at one TDP (Fig. 8d). */
double normalizedBom(const Platform &platform, PdnKind kind, Power tdp);

/** Normalized (to IVR) board area of one PDN at one TDP (Fig. 8e). */
double normalizedArea(const Platform &platform, PdnKind kind,
                      Power tdp);

} // namespace pdnspot

#endif // PDNSPOT_PDNSPOT_EXPERIMENTS_HH
