/**
 * @file
 * PDNspot validation harness (paper Sec. 4.3, Fig. 4).
 *
 * The paper validates each PDN model by comparing its predicted ETEE
 * against lab measurements over a 200-trace subset, reporting average
 * accuracy above 99%. Without lab hardware, the harness synthesizes
 * the "measured" reference as the model prediction perturbed by a
 * deterministic, trace-keyed error (default amplitude 0.7%) standing
 * in for instrument noise and unmodeled second-order effects; it then
 * exercises the identical compare-and-report pipeline.
 */

#ifndef PDNSPOT_PDNSPOT_VALIDATION_HH
#define PDNSPOT_PDNSPOT_VALIDATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/noise.hh"
#include "common/parallel.hh"
#include "pdn/pdn_model.hh"
#include "pdnspot/platform.hh"
#include "power/package_cstate.hh"
#include "power/workload_type.hh"

namespace pdnspot
{

/** One validation trace's identifying parameters. */
struct ValidationTrace
{
    std::string name;
    WorkloadType type = WorkloadType::SingleThread;
    double ar = 0.56;
    Power tdp = watts(15.0);
    PackageCState cstate = PackageCState::C0;
};

/** Accuracy summary of one PDN model over a trace set. */
struct ValidationStats
{
    double avgAccuracy = 0.0;
    double minAccuracy = 1.0;
    double maxAccuracy = 0.0;
    size_t traces = 0;
};

/** Generates trace sets and reference data; computes accuracy. */
class ValidationHarness
{
  public:
    /**
     * @param platform model under validation
     * @param seed deterministic reference-noise seed
     * @param noise_amplitude relative amplitude of the synthetic
     *        measurement error
     */
    explicit ValidationHarness(const Platform &platform,
                               uint64_t seed = 42,
                               double noise_amplitude = 0.007);

    /**
     * A balanced validation set like the paper's 200-trace subset:
     * single-/multi-thread/graphics traces across the TDP points and
     * the 40-80% AR band, plus the battery-life power states.
     */
    std::vector<ValidationTrace> makeTraceSet(size_t count) const;

    /** Model-predicted ETEE for one trace. */
    double predictedEtee(const PdnModel &pdn,
                         const ValidationTrace &trace) const;

    /** Synthetic "measured" ETEE for one trace. */
    double measuredEtee(const PdnModel &pdn,
                        const ValidationTrace &trace) const;

    /**
     * Accuracy = 1 - |measured - predicted| / measured, aggregated.
     * Per-trace evaluations fan out across `runner`; aggregation
     * walks the per-trace results in set order, so the stats are
     * bit-identical to a serial pass at any thread count.
     */
    ValidationStats validate(const PdnModel &pdn,
                             const std::vector<ValidationTrace> &set,
                             const ParallelRunner &runner =
                                 ParallelRunner::global()) const;

  private:
    const Platform &_platform;
    HashNoise _noise;
    double _noiseAmplitude;
};

} // namespace pdnspot

#endif // PDNSPOT_PDNSPOT_VALIDATION_HH
