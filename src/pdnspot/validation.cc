#include "pdnspot/validation.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pdnspot
{

ValidationHarness::ValidationHarness(const Platform &platform,
                                     uint64_t seed,
                                     double noise_amplitude)
    : _platform(platform), _noise(seed),
      _noiseAmplitude(noise_amplitude)
{
    if (noise_amplitude < 0.0 || noise_amplitude >= 0.2)
        fatal("ValidationHarness: implausible noise amplitude");
}

std::vector<ValidationTrace>
ValidationHarness::makeTraceSet(size_t count) const
{
    if (count == 0)
        fatal("ValidationHarness: empty trace set requested");

    static constexpr std::array<WorkloadType, 3> types = {
        WorkloadType::SingleThread, WorkloadType::MultiThread,
        WorkloadType::Graphics,
    };
    static constexpr std::array<double, 7> tdps = {4, 8, 10, 18,
                                                   25, 36, 50};

    std::vector<ValidationTrace> set;
    set.reserve(count);
    size_t i = 0;
    // ~10% of traces cover the battery-life power states (Fig. 4j).
    size_t cstate_count = std::max<size_t>(1, count / 10);
    while (set.size() + cstate_count < count) {
        ValidationTrace t;
        t.type = types[i % types.size()];
        t.tdp = watts(tdps[(i / types.size()) % tdps.size()]);
        t.ar = 0.40 + 0.40 * _noise.unit(i);
        t.name = strprintf("%s-%.0fW-ar%02.0f-%zu",
                           toString(t.type).c_str(), inWatts(t.tdp),
                           t.ar * 100.0, i);
        set.push_back(std::move(t));
        ++i;
    }
    size_t j = 0;
    while (set.size() < count) {
        ValidationTrace t;
        t.cstate =
            batteryLifeCStates[j % batteryLifeCStates.size()];
        t.type = WorkloadType::BatteryLife;
        t.ar = 0.30;
        t.tdp = watts(tdps[j % tdps.size()]);
        t.name = strprintf("cstate-%s-%zu",
                           toString(t.cstate).c_str(), j);
        set.push_back(std::move(t));
        ++j;
    }
    return set;
}

double
ValidationHarness::predictedEtee(const PdnModel &pdn,
                                 const ValidationTrace &trace) const
{
    OperatingPointModel::Query q;
    q.tdp = trace.tdp;
    q.type = trace.type;
    q.ar = trace.ar;
    q.cstate = trace.cstate;
    return pdn.evaluate(_platform.operatingPoints().build(q)).etee();
}

double
ValidationHarness::measuredEtee(const PdnModel &pdn,
                                const ValidationTrace &trace) const
{
    double predicted = predictedEtee(pdn, trace);
    double eps =
        _noiseAmplitude * _noise.signedUnit(pdn.name() + trace.name);
    return predicted * (1.0 + eps);
}

ValidationStats
ValidationHarness::validate(const PdnModel &pdn,
                            const std::vector<ValidationTrace> &set,
                            const ParallelRunner &runner) const
{
    if (set.empty())
        fatal("ValidationHarness: empty validation set");

    std::vector<double> accuracies =
        runner.map<double>(set.size(), [&](size_t i) {
            double predicted = predictedEtee(pdn, set[i]);
            double measured = measuredEtee(pdn, set[i]);
            return 1.0 - std::abs(measured - predicted) / measured;
        });

    ValidationStats stats;
    double sum = 0.0;
    for (double accuracy : accuracies) {
        sum += accuracy;
        stats.minAccuracy = std::min(stats.minAccuracy, accuracy);
        stats.maxAccuracy = std::max(stats.maxAccuracy, accuracy);
    }
    stats.traces = set.size();
    stats.avgAccuracy = sum / static_cast<double>(set.size());
    return stats;
}

} // namespace pdnspot
