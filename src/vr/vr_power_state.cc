#include "vr/vr_power_state.hh"

#include "common/logging.hh"

namespace pdnspot
{

std::string
toString(VrPowerState ps)
{
    switch (ps) {
      case VrPowerState::PS0:
        return "PS0";
      case VrPowerState::PS1:
        return "PS1";
      case VrPowerState::PS3:
        return "PS3";
      case VrPowerState::PS4:
        return "PS4";
    }
    panic("toString: invalid VrPowerState");
}

} // namespace pdnspot
