/**
 * @file
 * Voltage-regulator power states.
 *
 * Off-chip switching VRs in client platforms implement light-load
 * operating states (phase shedding, pulse skipping, diode emulation)
 * that trade peak-current capability for lower fixed losses. The paper
 * measures the V_IN VR in PS0, PS1, PS3 and PS4 (Sec. 4.2, Fig. 3) and
 * shows that efficiency at a given load current depends strongly on the
 * selected state.
 */

#ifndef PDNSPOT_VR_VR_POWER_STATE_HH
#define PDNSPOT_VR_VR_POWER_STATE_HH

#include <array>
#include <string>

namespace pdnspot
{

/** Switching-VR power state, ordered from full power to deepest idle. */
enum class VrPowerState
{
    PS0, ///< all phases active, full current capability
    PS1, ///< phase shedding: single phase, light-load optimized
    PS3, ///< pulse skipping: very light load
    PS4, ///< deepest: microamp-class standby loads only
};

/** All states in order, for iteration. */
inline constexpr std::array<VrPowerState, 4> allVrPowerStates = {
    VrPowerState::PS0, VrPowerState::PS1, VrPowerState::PS3,
    VrPowerState::PS4,
};

/** Human-readable name ("PS0" ... "PS4"). */
std::string toString(VrPowerState ps);

} // namespace pdnspot

#endif // PDNSPOT_VR_VR_POWER_STATE_HH
