/**
 * @file
 * Fully-integrated voltage regulator (IVR) model.
 *
 * The IVR is an on-die/on-package buck converter (FIVR, Burton et al.,
 * APEC 2014) fed by a ~1.8 V first-stage rail. Compared to a
 * motherboard buck, the IVR switches at much higher frequency (air-core
 * package inductors are small), so switching losses dominate and the
 * measured efficiency band is 81%-88% across the operational range
 * (paper Table 2). At very light load the fixed bridge/control losses
 * dominate and efficiency collapses -- the root cause of the IVR PDN's
 * poor battery-life ETEE (paper Observation 3).
 */

#ifndef PDNSPOT_VR_IVR_HH
#define PDNSPOT_VR_IVR_HH

#include <string>

#include "common/units.hh"

namespace pdnspot
{

/** Loss coefficients of an integrated buck VR. */
struct IvrParams
{
    std::string name;                     ///< rail name, e.g. "V_Core0"
    Power quiescent = milliwatts(18.0);   ///< bridge + PWM control idle
    double switchingCoeff = 0.060;        ///< loss per (Vin * Iout)
    Resistance conduction = milliohms(3.2); ///< bridge + ACI resistance
    Current maxCurrent = amps(45.0);      ///< electrical design limit
    Voltage minHeadroom = volts(0.35);    ///< min Vin - Vout for duty
};

/**
 * An on-die integrated switching VR. Unlike the off-chip BuckVr, an
 * IVR has a single operating state; light-load behaviour is captured
 * by the loss decomposition itself.
 */
class Ivr
{
  public:
    explicit Ivr(IvrParams params);

    const std::string &name() const { return _params.name; }
    const IvrParams &params() const { return _params; }

    /** Conversion loss at an operating point. */
    Power loss(Voltage vin, Voltage vout, Current iout) const;

    /** Eq. 1 efficiency; zero load gives zero. */
    double efficiency(Voltage vin, Voltage vout, Current iout) const;

    /** Input power drawn from the first-stage rail for pout. */
    Power inputPower(Voltage vin, Voltage vout, Power pout) const;

    bool canConvert(Voltage vin, Voltage vout) const;

  private:
    IvrParams _params;
};

} // namespace pdnspot

#endif // PDNSPOT_VR_IVR_HH
