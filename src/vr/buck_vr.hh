/**
 * @file
 * Step-down switching voltage regulator (buck converter) loss model.
 *
 * The paper obtains off-chip VR efficiency curves by measurement
 * (Sec. 4.2, Fig. 3). This repo substitutes the standard buck loss
 * decomposition the measured curves follow:
 *
 *   Ploss(ps) = Pq(ps) + ksw(ps) * Vin * Iout + Rcond(ps) * Iout^2
 *
 * where Pq is the fixed controller/gate-drive loss, the middle term
 * models switching losses (proportional to input voltage and load
 * current), and the last term models conduction losses in the power
 * stage. Each VR power state has its own coefficients: PS0 has high
 * fixed losses but low conduction resistance (all phases conducting);
 * deeper states shed phases, cutting Pq at the cost of higher Rcond
 * and a lower current ceiling. Efficiency is Eq. 1 of the paper:
 * eta = Pout / (Pout + Ploss).
 */

#ifndef PDNSPOT_VR_BUCK_VR_HH
#define PDNSPOT_VR_BUCK_VR_HH

#include <array>
#include <optional>
#include <string>

#include "common/units.hh"
#include "vr/vr_power_state.hh"

namespace pdnspot
{

/** Loss coefficients of one VR power state. */
struct BuckStateParams
{
    Power quiescent;         ///< fixed controller + gate-drive loss
    double switchingCoeff;   ///< loss per (Vin * Iout), dimensionless
    Resistance conduction;   ///< effective power-stage resistance
    Current maxCurrent;      ///< state current ceiling
};

/** Full parameter set for a buck VR: one entry per power state. */
struct BuckParams
{
    std::string name;                          ///< rail name, e.g. "V_IN"
    Voltage minHeadroom = volts(0.6);          ///< min Vin - Vout
    std::array<BuckStateParams, 4> states;     ///< indexed by state order

    /** Coefficients of a typical motherboard buck VR (Fig. 3 shape). */
    static BuckParams motherboard(const std::string &rail_name);
};

/**
 * A buck converter with per-power-state loss coefficients.
 *
 * The converter is stateless: callers pass the full operating point
 * (input voltage, output voltage, load current, power state) and get
 * the efficiency or loss back. State selection can be delegated to
 * bestState(), which mimics the autonomous phase-shedding controller
 * in a real VR by picking the feasible state with the least loss.
 */
class BuckVr
{
  public:
    explicit BuckVr(BuckParams params);

    const std::string &name() const { return _params.name; }

    /** Loss coefficients for one state. */
    const BuckStateParams &stateParams(VrPowerState ps) const;

    /**
     * Conversion loss at an operating point.
     *
     * @param vin input voltage (must exceed vout + minHeadroom)
     * @param iout load current (must be within the state ceiling)
     */
    Power loss(Voltage vin, Voltage vout, Current iout,
               VrPowerState ps) const;

    /** Eq. 1: Pout / (Pout + Ploss). Zero load gives zero. */
    double efficiency(Voltage vin, Voltage vout, Current iout,
                      VrPowerState ps) const;

    /**
     * The feasible power state with the least loss at this operating
     * point, or std::nullopt if the current exceeds even PS0's
     * ceiling.
     */
    std::optional<VrPowerState> bestState(Voltage vin, Voltage vout,
                                          Current iout) const;

    /**
     * Efficiency with autonomous state selection. Current above the
     * PS0 ceiling is a configuration error (the rail was under-sized).
     */
    double efficiencyAuto(Voltage vin, Voltage vout, Current iout) const;

    /** Input power for a given output power with autonomous states. */
    Power inputPower(Voltage vin, Voltage vout, Power pout) const;

    /** Validity check used by callers before requesting conversion. */
    bool canConvert(Voltage vin, Voltage vout) const;

  private:
    static size_t index(VrPowerState ps);

    BuckParams _params;
};

} // namespace pdnspot

#endif // PDNSPOT_VR_BUCK_VR_HH
