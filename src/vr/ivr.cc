#include "vr/ivr.hh"

#include "common/logging.hh"

namespace pdnspot
{

Ivr::Ivr(IvrParams params)
    : _params(std::move(params))
{
    if (_params.quiescent < watts(0.0) || _params.switchingCoeff < 0.0)
        fatal("Ivr: loss coefficients must be non-negative");
}

bool
Ivr::canConvert(Voltage vin, Voltage vout) const
{
    return vin >= vout + _params.minHeadroom;
}

Power
Ivr::loss(Voltage vin, Voltage vout, Current iout) const
{
    if (!canConvert(vin, vout)) {
        fatal(strprintf("Ivr %s: insufficient headroom (Vin=%.3fV, "
                        "Vout=%.3fV)", _params.name.c_str(),
                        inVolts(vin), inVolts(vout)));
    }
    if (iout < amps(0.0))
        fatal(strprintf("Ivr %s: negative load current",
                        _params.name.c_str()));
    if (iout > _params.maxCurrent) {
        fatal(strprintf("Ivr %s: %.2fA exceeds design limit %.2fA",
                        _params.name.c_str(), inAmps(iout),
                        inAmps(_params.maxCurrent)));
    }
    Power switching =
        watts(_params.switchingCoeff * inVolts(vin) * inAmps(iout));
    Power conduction =
        watts(inAmps(iout) * inAmps(iout) * _params.conduction.value());
    return _params.quiescent + switching + conduction;
}

double
Ivr::efficiency(Voltage vin, Voltage vout, Current iout) const
{
    Power pout = vout * iout;
    if (pout <= watts(0.0))
        return 0.0;
    return pout / (pout + loss(vin, vout, iout));
}

Power
Ivr::inputPower(Voltage vin, Voltage vout, Power pout) const
{
    if (pout <= watts(0.0))
        return watts(0.0);
    Current iout = pout / vout;
    double eta = efficiency(vin, vout, iout);
    if (eta <= 0.0) {
        panic(strprintf("Ivr %s: non-positive efficiency at Pout=%.3fW",
                        _params.name.c_str(), inWatts(pout)));
    }
    return pout / eta;
}

} // namespace pdnspot
