#include "vr/power_gate.hh"

#include "common/logging.hh"

namespace pdnspot
{

PowerGate::PowerGate(PowerGateParams params)
    : _params(std::move(params))
{
    if (_params.onResistance < ohms(0.0))
        fatal(strprintf("PowerGate %s: negative on-resistance",
                        _params.name.c_str()));
}

Voltage
PowerGate::drop(Current idomain) const
{
    if (idomain < amps(0.0))
        fatal(strprintf("PowerGate %s: negative current",
                        _params.name.c_str()));
    return idomain * _params.onResistance;
}

} // namespace pdnspot
