#include "vr/ldo_vr.hh"

#include "common/logging.hh"

namespace pdnspot
{

std::string
toString(LdoMode mode)
{
    switch (mode) {
      case LdoMode::Regulation:
        return "regulation";
      case LdoMode::Bypass:
        return "bypass";
      case LdoMode::PowerGate:
        return "power-gate";
    }
    panic("toString: invalid LdoMode");
}

LdoVr::LdoVr(LdoParams params)
    : _params(std::move(params))
{
    if (_params.currentEfficiency <= 0.0 ||
        _params.currentEfficiency > 1.0) {
        fatal(strprintf("LdoVr %s: current efficiency %.3f outside "
                        "(0, 1]", _params.name.c_str(),
                        _params.currentEfficiency));
    }
}

LdoMode
LdoVr::modeFor(Voltage vin, Voltage vout) const
{
    if (vout <= volts(0.0))
        return LdoMode::PowerGate;
    if (vout + _params.dropout <= vin)
        return LdoMode::Regulation;
    // The domain wants (nearly) the input voltage: connect through.
    return LdoMode::Bypass;
}

double
LdoVr::efficiency(Voltage vin, Voltage vout) const
{
    if (vin <= volts(0.0)) {
        fatal(strprintf("LdoVr %s: non-positive input voltage",
                        _params.name.c_str()));
    }
    switch (modeFor(vin, vout)) {
      case LdoMode::PowerGate:
        return 0.0;
      case LdoMode::Bypass:
        return _params.currentEfficiency;
      case LdoMode::Regulation:
        if (vout > vin) {
            fatal(strprintf("LdoVr %s: cannot up-convert %.3fV -> %.3fV",
                            _params.name.c_str(), inVolts(vin),
                            inVolts(vout)));
        }
        return (vout / vin) * _params.currentEfficiency;
    }
    panic("LdoVr::efficiency: invalid mode");
}

Power
LdoVr::inputPower(Voltage vin, Voltage vout, Power pout) const
{
    if (pout <= watts(0.0))
        return watts(0.0);
    double eta = efficiency(vin, vout);
    if (eta <= 0.0) {
        fatal(strprintf("LdoVr %s: power requested through a gated LDO",
                        _params.name.c_str()));
    }
    return pout / eta;
}

Power
LdoVr::loss(Voltage vin, Voltage vout, Power pout) const
{
    return inputPower(vin, vout, pout) - pout;
}

} // namespace pdnspot
