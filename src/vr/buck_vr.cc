#include "vr/buck_vr.hh"

#include <cstddef>

#include "common/logging.hh"

namespace pdnspot
{

BuckParams
BuckParams::motherboard(const std::string &rail_name)
{
    // Coefficients calibrated so the efficiency curves land in the
    // 72%-93% envelope of Table 2 with the Fig. 3 shape: ~90% peak in
    // PS0 at mid current, light-load rolloff in PS0, and a PS1/PS3/PS4
    // ladder that keeps light-load efficiency high.
    BuckParams p;
    p.name = rail_name;
    p.minHeadroom = volts(0.6);
    p.states = {
        // PS0: all phases, full current.
        BuckStateParams{milliwatts(45.0), 0.008, milliohms(8.0),
                        amps(80.0)},
        // PS1: single phase.
        BuckStateParams{milliwatts(4.0), 0.012, milliohms(30.0),
                        amps(3.0)},
        // PS3: pulse skipping.
        BuckStateParams{milliwatts(0.8), 0.020, milliohms(120.0),
                        amps(0.5)},
        // PS4: standby.
        BuckStateParams{milliwatts(0.15), 0.030, milliohms(400.0),
                        amps(0.1)},
    };
    return p;
}

BuckVr::BuckVr(BuckParams params)
    : _params(std::move(params))
{
    Current prev_ceiling = _params.states[0].maxCurrent;
    for (size_t i = 1; i < _params.states.size(); ++i) {
        if (_params.states[i].maxCurrent > prev_ceiling) {
            fatal(strprintf("BuckVr %s: state current ceilings must be "
                            "non-increasing from PS0",
                            _params.name.c_str()));
        }
        prev_ceiling = _params.states[i].maxCurrent;
    }
}

size_t
BuckVr::index(VrPowerState ps)
{
    return static_cast<size_t>(ps);
}

const BuckStateParams &
BuckVr::stateParams(VrPowerState ps) const
{
    return _params.states[index(ps)];
}

bool
BuckVr::canConvert(Voltage vin, Voltage vout) const
{
    return vin >= vout + _params.minHeadroom;
}

Power
BuckVr::loss(Voltage vin, Voltage vout, Current iout,
             VrPowerState ps) const
{
    if (!canConvert(vin, vout)) {
        fatal(strprintf("BuckVr %s: insufficient headroom "
                        "(Vin=%.3fV, Vout=%.3fV, min headroom %.3fV)",
                        _params.name.c_str(), inVolts(vin), inVolts(vout),
                        inVolts(_params.minHeadroom)));
    }
    if (iout < amps(0.0)) {
        fatal(strprintf("BuckVr %s: negative load current",
                        _params.name.c_str()));
    }
    const BuckStateParams &s = stateParams(ps);
    if (iout > s.maxCurrent) {
        fatal(strprintf("BuckVr %s: %.2fA exceeds %s ceiling %.2fA",
                        _params.name.c_str(), inAmps(iout),
                        toString(ps).c_str(), inAmps(s.maxCurrent)));
    }
    Power switching = watts(s.switchingCoeff * inVolts(vin) * inAmps(iout));
    Power conduction = watts(inAmps(iout) * inAmps(iout) *
                             s.conduction.value());
    return s.quiescent + switching + conduction;
}

double
BuckVr::efficiency(Voltage vin, Voltage vout, Current iout,
                   VrPowerState ps) const
{
    Power pout = vout * iout;
    if (pout <= watts(0.0))
        return 0.0;
    return pout / (pout + loss(vin, vout, iout, ps));
}

std::optional<VrPowerState>
BuckVr::bestState(Voltage vin, Voltage vout, Current iout) const
{
    std::optional<VrPowerState> best;
    Power best_loss = watts(0.0);
    for (VrPowerState ps : allVrPowerStates) {
        if (iout > stateParams(ps).maxCurrent)
            continue;
        Power l = loss(vin, vout, iout, ps);
        if (!best || l < best_loss) {
            best = ps;
            best_loss = l;
        }
    }
    return best;
}

double
BuckVr::efficiencyAuto(Voltage vin, Voltage vout, Current iout) const
{
    if (iout <= amps(0.0))
        return 0.0;
    auto ps = bestState(vin, vout, iout);
    if (!ps) {
        fatal(strprintf("BuckVr %s: %.2fA exceeds the PS0 ceiling; "
                        "the rail is under-sized for this load",
                        _params.name.c_str(), inAmps(iout)));
    }
    return efficiency(vin, vout, iout, *ps);
}

Power
BuckVr::inputPower(Voltage vin, Voltage vout, Power pout) const
{
    if (pout <= watts(0.0))
        return watts(0.0);
    Current iout = pout / vout;
    double eta = efficiencyAuto(vin, vout, iout);
    if (eta <= 0.0) {
        panic(strprintf("BuckVr %s: non-positive efficiency at "
                        "Pout=%.3fW", _params.name.c_str(),
                        inWatts(pout)));
    }
    return pout / eta;
}

} // namespace pdnspot
