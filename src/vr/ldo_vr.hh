/**
 * @file
 * Low-dropout (LDO) linear voltage regulator model.
 *
 * The LDO VR of the paper (Sec. 2.2, Eq. 10) is a linear regulator
 * built from a power switch plus an error amplifier, as in AMD Zen
 * (Singh et al., ISSCC 2017) and Intel's dual-mode LDO/power-gate
 * (Luria et al., JSSC 2016). It has three operating modes:
 *
 *  - Regulation: Vout < Vin; efficiency is (Vout/Vin) * Ie where the
 *    current efficiency Ie is ~99.1% (paper Table 2).
 *  - Bypass: the input is connected straight to the output (Vout ==
 *    Vin); only the current-efficiency loss remains.
 *  - PowerGate: the switch is off and the domain is disconnected.
 */

#ifndef PDNSPOT_VR_LDO_VR_HH
#define PDNSPOT_VR_LDO_VR_HH

#include <string>

#include "common/units.hh"

namespace pdnspot
{

/** Operating mode of an LDO VR. */
enum class LdoMode
{
    Regulation, ///< linear down-conversion
    Bypass,     ///< input shorted to output
    PowerGate,  ///< domain disconnected
};

std::string toString(LdoMode mode);

/** Parameters of an LDO VR. */
struct LdoParams
{
    std::string name;               ///< rail name, e.g. "V_GFX"
    double currentEfficiency = 0.991; ///< Iout / Iin (paper Table 2)
    Voltage dropout = millivolts(25.0); ///< min Vin - Vout in regulation
    Current maxCurrent = amps(45.0);  ///< switch design limit
};

/**
 * A low-dropout linear regulator. The efficiency model is exactly the
 * paper's Eq. 10: eta_LDO = (Vout / Vin) * Ie.
 */
class LdoVr
{
  public:
    explicit LdoVr(LdoParams params);

    const std::string &name() const { return _params.name; }
    const LdoParams &params() const { return _params; }

    /** The mode this LDO must use to produce vout from vin. */
    LdoMode modeFor(Voltage vin, Voltage vout) const;

    /** Eq. 10: (Vout/Vin) * Ie. Bypass keeps only the Ie loss. */
    double efficiency(Voltage vin, Voltage vout) const;

    /** Input power for a given output power. */
    Power inputPower(Voltage vin, Voltage vout, Power pout) const;

    /** Conversion loss for a given output power. */
    Power loss(Voltage vin, Voltage vout, Power pout) const;

  private:
    LdoParams _params;
};

} // namespace pdnspot

#endif // PDNSPOT_VR_LDO_VR_HH
