/**
 * @file
 * On-chip power gate model.
 *
 * Power gates disconnect idle domains from their supply rail. When a
 * gated domain is active, the gate's on-resistance (RPG, 1-2 mOhm per
 * paper Table 2) drops voltage across it; the supply must be raised by
 * that drop, which costs extra power (paper Sec. 3.1, the PPG term).
 */

#ifndef PDNSPOT_VR_POWER_GATE_HH
#define PDNSPOT_VR_POWER_GATE_HH

#include <string>

#include "common/units.hh"

namespace pdnspot
{

/** Parameters of an on-chip power gate. */
struct PowerGateParams
{
    std::string name;                      ///< e.g. "PG_Core0"
    Resistance onResistance = milliohms(1.5); ///< RPG (Table 2: 1-2 mOhm)
    Power offLeakage = milliwatts(1.0);    ///< residual leak when gated
};

/** An on-chip power gate in series with a domain. */
class PowerGate
{
  public:
    explicit PowerGate(PowerGateParams params);

    const std::string &name() const { return _params.name; }
    const PowerGateParams &params() const { return _params; }

    /** Voltage dropped across the gate at a given domain current. */
    Voltage drop(Current idomain) const;

    /** Residual leakage power drawn when the domain is gated off. */
    Power offLeakage() const { return _params.offLeakage; }

  private:
    PowerGateParams _params;
};

} // namespace pdnspot

#endif // PDNSPOT_VR_POWER_GATE_HH
