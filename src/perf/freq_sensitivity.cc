#include "perf/freq_sensitivity.hh"

#include "common/logging.hh"

namespace pdnspot
{

FreqSensitivity::FreqSensitivity(const OperatingPointModel &opm)
    : _opm(opm)
{}

Power
FreqSensitivity::clockedDomainSlope(const DomainState &d,
                                    const VfCurve &vf) const
{
    if (!d.active || d.frequency <= hertz(0.0))
        return Power();
    double f_ghz = inGigahertz(d.frequency);
    double v = inVolts(d.voltage);
    double dv_df = vf.slopeAt(d.frequency); // volts per GHz

    Power pdyn = d.nominalPower * (1.0 - d.leakageFraction);
    Power pleak = d.nominalPower * d.leakageFraction;
    double delta = _opm.leakage().voltageExponent();

    // Slope in watts per GHz.
    Power slope = pdyn * (1.0 / f_ghz + 2.0 * dv_df / v) +
                  pleak * (delta * dv_df / v);
    // Watts per 1% of the current frequency.
    return slope * (f_ghz / 100.0);
}

Power
FreqSensitivity::voltageTrackingSlope(const DomainState &d,
                                      const VfCurve &vf,
                                      Frequency fclk) const
{
    if (!d.active)
        return Power();
    double v = inVolts(d.voltage);
    double dv_df = vf.slopeAt(fclk);
    double f_ghz = inGigahertz(fclk);
    double delta = _opm.leakage().voltageExponent();

    Power pdyn = d.nominalPower * (1.0 - d.leakageFraction);
    Power pleak = d.nominalPower * d.leakageFraction;
    Power slope = pdyn * (2.0 * dv_df / v) + pleak * (delta * dv_df / v);
    return slope * (f_ghz / 100.0);
}

Power
FreqSensitivity::nominalPerPercent(Power tdp, WorkloadType type) const
{
    OperatingPointModel::Query q;
    q.tdp = tdp;
    q.type = type;
    PlatformState s = _opm.build(q);

    if (type == WorkloadType::Graphics) {
        return clockedDomainSlope(s.domain(DomainId::GFX),
                                  _opm.gfxVf());
    }

    // Cores only: the LLC/ring clock is managed independently of the
    // core P-state, so a core-clock step does not move the LLC rail.
    // This reproduces the paper's ~9 mW-per-1% anchor at 4 W TDP.
    return clockedDomainSlope(s.domain(DomainId::Core0),
                              _opm.coreVf()) +
           clockedDomainSlope(s.domain(DomainId::Core1),
                              _opm.coreVf());
}

Power
FreqSensitivity::supplyPerPercent(Power tdp, WorkloadType type,
                                  const PdnModel &pdn) const
{
    OperatingPointModel::Query q;
    q.tdp = tdp;
    q.type = type;
    PlatformState s = _opm.build(q);
    double etee = pdn.evaluate(s).etee();
    if (etee <= 0.0)
        panic("FreqSensitivity: non-positive ETEE");
    return nominalPerPercent(tdp, type) / etee;
}

} // namespace pdnspot
