/**
 * @file
 * Nonlinear TDP budget solver (extension beyond the paper's model).
 *
 * The paper's Sec. 3.3 model linearizes the power-frequency curve at
 * the TDP baseline. This solver answers the exact question instead:
 * the highest compute clock a PDN can sustain such that the total
 * supply power stays within the TDP (the paper's Sec. 3.4 assumption
 * that processor and off-chip VRs share one thermal budget). It is
 * used by the ablation bench to quantify how much the linearization
 * flatters or understates each PDN.
 */

#ifndef PDNSPOT_PERF_BUDGET_SOLVER_HH
#define PDNSPOT_PERF_BUDGET_SOLVER_HH

#include "common/units.hh"
#include "pdn/pdn_model.hh"
#include "power/operating_point.hh"
#include "workload/workload.hh"

namespace pdnspot
{

/** Exact sustainable-frequency search under a supply-power TDP. */
class BudgetSolver
{
  public:
    /** Solver outcome. */
    struct Solution
    {
        double freqMultiplier = 1.0; ///< vs. the TDP baseline clock
        Frequency frequency;         ///< achieved compute clock
        Power inputPower;            ///< supply power at the solution
        bool clampedAtFmax = false;  ///< hit the V-f curve ceiling
    };

    explicit BudgetSolver(const OperatingPointModel &opm);

    /**
     * Highest compute-clock multiplier m (relative to the TDP's
     * baseline frequency) such that the PDN's supply power for
     * workload w stays within tdp.
     */
    Solution solve(const PdnModel &pdn, Power tdp,
                   const Workload &w) const;

  private:
    Power inputPowerAt(const PdnModel &pdn, Power tdp,
                       const Workload &w, double multiplier) const;

    const OperatingPointModel &_opm;
};

} // namespace pdnspot

#endif // PDNSPOT_PERF_BUDGET_SOLVER_HH
