#include "perf/budget_solver.hh"

#include "common/logging.hh"

namespace pdnspot
{

BudgetSolver::BudgetSolver(const OperatingPointModel &opm)
    : _opm(opm)
{}

Power
BudgetSolver::inputPowerAt(const PdnModel &pdn, Power tdp,
                           const Workload &w, double multiplier) const
{
    OperatingPointModel::Query q;
    q.tdp = tdp;
    q.type = w.type;
    q.ar = w.ar;
    q.freqMultiplier = multiplier;
    return pdn.evaluate(_opm.build(q)).inputPower;
}

BudgetSolver::Solution
BudgetSolver::solve(const PdnModel &pdn, Power tdp,
                    const Workload &w) const
{
    // Supply power grows monotonically with the clock multiplier until
    // the V-f curve clamps at Fmax, after which it is flat; bisect on
    // the multiplier.
    const bool graphics = w.type == WorkloadType::Graphics;
    const VfCurve &vf = graphics ? _opm.gfxVf() : _opm.coreVf();
    Frequency fbase = graphics ? _opm.gfxBaseFrequency(tdp)
                               : _opm.coreBaseFrequency(tdp);

    double lo = 0.25;
    double hi = (vf.fmax() / fbase) * 1.0001; // just past the clamp

    if (inputPowerAt(pdn, tdp, w, lo) > tdp) {
        fatal(strprintf("BudgetSolver: %s cannot fit %.1fW TDP even at "
                        "a quarter of the baseline clock",
                        pdn.name().c_str(), inWatts(tdp)));
    }

    Solution sol;
    if (inputPowerAt(pdn, tdp, w, hi) <= tdp) {
        // Even Fmax fits: the platform is V-f limited, not PDN limited.
        sol.freqMultiplier = hi;
        sol.clampedAtFmax = true;
    } else {
        for (int iter = 0; iter < 60; ++iter) {
            double mid = 0.5 * (lo + hi);
            if (inputPowerAt(pdn, tdp, w, mid) <= tdp)
                lo = mid;
            else
                hi = mid;
        }
        sol.freqMultiplier = lo;
    }
    sol.frequency = vf.clamp(fbase * sol.freqMultiplier);
    sol.inputPower = inputPowerAt(pdn, tdp, w, sol.freqMultiplier);
    return sol;
}

} // namespace pdnspot
