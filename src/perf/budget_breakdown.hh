/**
 * @file
 * TDP power-budget breakdown (paper Fig. 2b).
 *
 * For a CPU-intensive workload, shows what share of the platform's
 * total power budget goes to SA+IO, the CPU cores, the LLC, and PDN
 * conversion losses. The paper uses, at each TDP, whichever
 * commonly-used PDN maximizes the loss, to illustrate the worst case.
 */

#ifndef PDNSPOT_PERF_BUDGET_BREAKDOWN_HH
#define PDNSPOT_PERF_BUDGET_BREAKDOWN_HH

#include <span>
#include <string>

#include "common/units.hh"
#include "pdn/pdn_model.hh"
#include "power/operating_point.hh"

namespace pdnspot
{

/** Shares of the total supply power, summing to ~1. */
struct BudgetShares
{
    double saIo = 0.0;
    double cpu = 0.0;
    double llc = 0.0;
    double gfx = 0.0;
    double pdnLoss = 0.0;
    std::string worstPdn; ///< which PDN maximized the loss
};

/**
 * Fig. 2b row: evaluate `pdns` at (tdp, type), pick the PDN with the
 * largest conversion loss, and break its supply power down by
 * destination.
 */
BudgetShares budgetBreakdown(const OperatingPointModel &opm,
                             std::span<const PdnModel *const> pdns,
                             Power tdp, WorkloadType type);

} // namespace pdnspot

#endif // PDNSPOT_PERF_BUDGET_BREAKDOWN_HH
