/**
 * @file
 * The paper's performance model (Sec. 3.3, Figs. 7 and 8a/8b).
 *
 * A PDN with a higher end-to-end efficiency leaves supply power on
 * the table at the same TDP; the power-budget manager reallocates the
 * savings to the compute clock. The paper linearizes at the TDP
 * baseline: a PDN that saves dP watts of supply power buys
 * dP / sensitivity percent of extra clock (e.g. 250 mW / 9 mW-per-1%
 * = 28% at 4 W), and a workload converts clock into performance
 * through its performance-scalability.
 */

#ifndef PDNSPOT_PERF_PERF_MODEL_HH
#define PDNSPOT_PERF_PERF_MODEL_HH

#include "common/units.hh"
#include "pdn/pdn_model.hh"
#include "perf/freq_sensitivity.hh"
#include "power/operating_point.hh"
#include "workload/workload.hh"

namespace pdnspot
{

/** Outcome of comparing one PDN against a baseline PDN. */
struct PerfResult
{
    double relativePerf = 1.0;    ///< 1.0 == baseline performance
    double freqGainPercent = 0.0; ///< extra clock the savings buy
    Power savedSupplyPower;       ///< baseline input - PDN input
    double eteePdn = 0.0;
    double eteeBaseline = 0.0;
};

/** The linearized budget-reallocation performance model. */
class PerfModel
{
  public:
    explicit PerfModel(const OperatingPointModel &opm);

    /**
     * Performance of `pdn` relative to `baseline` when running
     * workload `w` on a `tdp` platform.
     */
    PerfResult relativePerformance(const PdnModel &pdn,
                                   const PdnModel &baseline, Power tdp,
                                   const Workload &w) const;

    const FreqSensitivity &sensitivity() const { return _sensitivity; }

  private:
    const OperatingPointModel &_opm;
    FreqSensitivity _sensitivity;
};

} // namespace pdnspot

#endif // PDNSPOT_PERF_PERF_MODEL_HH
