#include "perf/budget_breakdown.hh"

#include "common/logging.hh"

namespace pdnspot
{

BudgetShares
budgetBreakdown(const OperatingPointModel &opm,
                std::span<const PdnModel *const> pdns, Power tdp,
                WorkloadType type)
{
    if (pdns.empty())
        fatal("budgetBreakdown: at least one PDN required");

    OperatingPointModel::Query q;
    q.tdp = tdp;
    q.type = type;
    PlatformState s = opm.build(q);

    const PdnModel *worst = nullptr;
    EteeResult worst_result;
    for (const PdnModel *pdn : pdns) {
        EteeResult r = pdn->evaluate(s);
        if (!worst ||
            r.loss.total() / r.inputPower >
                worst_result.loss.total() / worst_result.inputPower) {
            worst = pdn;
            worst_result = r;
        }
    }

    Power input = worst_result.inputPower;
    BudgetShares shares;
    shares.worstPdn = worst->name();
    shares.pdnLoss = worst_result.loss.total() / input;

    auto nominal = [&](DomainId id) {
        const DomainState &d = s.domain(id);
        return d.active ? d.nominalPower : Power();
    };
    shares.saIo =
        (nominal(DomainId::SA) + nominal(DomainId::IO)) / input;
    shares.cpu =
        (nominal(DomainId::Core0) + nominal(DomainId::Core1)) / input;
    shares.llc = nominal(DomainId::LLC) / input;
    shares.gfx = nominal(DomainId::GFX) / input;
    return shares;
}

} // namespace pdnspot
