#include "perf/perf_model.hh"

#include "common/logging.hh"

namespace pdnspot
{

PerfModel::PerfModel(const OperatingPointModel &opm)
    : _opm(opm), _sensitivity(opm)
{}

PerfResult
PerfModel::relativePerformance(const PdnModel &pdn,
                               const PdnModel &baseline, Power tdp,
                               const Workload &w) const
{
    OperatingPointModel::Query q;
    q.tdp = tdp;
    q.type = w.type;
    q.ar = w.ar;
    PlatformState s = _opm.build(q);

    EteeResult base = baseline.evaluate(s);
    EteeResult cand = pdn.evaluate(s);

    PerfResult r;
    r.eteeBaseline = base.etee();
    r.eteePdn = cand.etee();
    r.savedSupplyPower = base.inputPower - cand.inputPower;

    Power per_percent =
        _sensitivity.supplyPerPercent(tdp, w.type, baseline);
    if (per_percent <= watts(0.0))
        panic("PerfModel: non-positive frequency sensitivity");

    r.freqGainPercent = r.savedSupplyPower / per_percent;
    r.relativePerf = 1.0 + w.scalability * r.freqGainPercent / 100.0;
    return r;
}

} // namespace pdnspot
