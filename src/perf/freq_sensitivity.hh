/**
 * @file
 * Marginal-power-per-frequency model (paper Fig. 2a).
 *
 * The paper builds power-frequency curves empirically by sweeping the
 * compute clock in 100 MHz (50 MHz for GFX) steps and logging the
 * power increase (Sec. 3.3). This model differentiates the same
 * physical relationship analytically at the operating point:
 *
 *   dP/df = Pdyn * (1/f + 2 * (dV/df)/V) + Pleak * delta * (dV/df)/V
 *
 * Dynamic power contributes the f and V^2 terms; leakage contributes
 * through its V^delta voltage dependence. For CPU workloads the LLC
 * shares the core voltage plane, so its voltage-scaling term is
 * included even though its clock is not the core clock.
 */

#ifndef PDNSPOT_PERF_FREQ_SENSITIVITY_HH
#define PDNSPOT_PERF_FREQ_SENSITIVITY_HH

#include "common/units.hh"
#include "pdn/pdn_model.hh"
#include "power/operating_point.hh"

namespace pdnspot
{

/** Power cost of raising the compute clock, per TDP and workload. */
class FreqSensitivity
{
  public:
    explicit FreqSensitivity(const OperatingPointModel &opm);

    /**
     * Additional load-level (nominal) power to raise the compute
     * clock by 1% at this TDP's baseline frequency (Fig. 2a y-axis,
     * before PDN losses).
     */
    Power nominalPerPercent(Power tdp, WorkloadType type) const;

    /**
     * Additional supply-level power for the same 1%: the nominal cost
     * divided by the PDN's ETEE at the operating point.
     */
    Power supplyPerPercent(Power tdp, WorkloadType type,
                           const PdnModel &pdn) const;

  private:
    /** dP/df contribution of one domain whose clock scales. */
    Power clockedDomainSlope(const DomainState &d,
                             const VfCurve &vf) const;

    /** dP/df contribution of a domain that only tracks the voltage. */
    Power voltageTrackingSlope(const DomainState &d, const VfCurve &vf,
                               Frequency fclk) const;

    const OperatingPointModel &_opm;
};

} // namespace pdnspot

#endif // PDNSPOT_PERF_FREQ_SENSITIVITY_HH
