#include "pdn/load_line.hh"

#include "common/logging.hh"

namespace pdnspot
{

LoadLine::LoadLine(Resistance rll)
    : _rll(rll)
{
    if (rll < ohms(0.0))
        fatal("LoadLine: negative impedance");
}

LoadLine::Result
LoadLine::apply(Voltage vd, Power pd, double ar) const
{
    if (vd <= volts(0.0))
        fatal("LoadLine: non-positive rail voltage");
    if (pd < watts(0.0))
        fatal("LoadLine: negative rail power");
    if (ar <= 0.0 || ar > 1.0)
        fatal("LoadLine: AR must be in (0, 1]");

    Result r;
    if (pd == watts(0.0)) {
        r.vLL = vd;
        r.pLL = watts(0.0);
        r.conductionExcess = watts(0.0);
        return r;
    }

    // Eq. 3: VD_LL = VD + (Ppeak / VD) * RLL, with Ppeak = PD / AR.
    Power ppeak = pd / ar;
    Current ipeak = ppeak / vd;
    r.vLL = vd + ipeak * _rll;

    // Eq. 4: PD_LL = VD_LL * ID with ID = PD / VD.
    Current id = pd / vd;
    r.pLL = r.vLL * id;
    r.conductionExcess = r.pLL - pd;
    return r;
}

} // namespace pdnspot
