/**
 * @file
 * Transient (di/dt) voltage-noise model.
 *
 * The paper's background (Sec. 2) notes that a PDN must provide the
 * transient current a domain demands and that the IVR PDN is more
 * sensitive to di/dt noise than the MBVR PDN because little decoupling
 * capacitance fits on die, while MBVR's long delivery path leaves room
 * for board, package and die capacitors. PDNspot's steady-state models
 * assume voltage emergencies are absorbed by decap plus architectural
 * techniques (Sec. 3.4); this module quantifies that assumption with
 * the standard three-level droop estimate: at each hierarchy level
 * (die, package, board) a load step dI across the level's loop
 * inductance L and capacitance C rings with characteristic impedance
 * sqrt(L/C), so
 *
 *   droop(level) = dI * sqrt(L_level / C_level) + dI * R_path
 *
 * and the first (die-level) droop dominates for fast edges. The model
 * answers two questions per PDN: how big is the first droop for a
 * given current step, and does it stay within the tolerance-band +
 * load-line guardband the steady-state model budgeted.
 */

#ifndef PDNSPOT_PDN_TRANSIENT_HH
#define PDNSPOT_PDN_TRANSIENT_HH

#include <array>

#include "common/units.hh"
#include "pdn/pdn_model.hh"

namespace pdnspot
{

/** Decoupling and parasitics of one hierarchy level. */
struct DecapLevel
{
    double capacitanceUf = 0.0;   ///< decoupling capacitance (uF)
    double inductanceNh = 0.0;    ///< loop inductance to the load (nH)
    Resistance pathResistance;    ///< series resistance of the level
};

/** Die / package / board decap stack of one PDN's compute rail. */
struct DecapStack
{
    DecapLevel die;
    DecapLevel package;
    DecapLevel board;

    /** Representative stacks for each topology (see .cc rationale). */
    static DecapStack forPdn(PdnKind kind);
};

/** Per-level droop contributions for one load step. */
struct DroopEstimate
{
    Voltage dieDroop;     ///< first droop (fastest, usually largest)
    Voltage packageDroop; ///< second droop
    Voltage boardDroop;   ///< third droop
    Voltage resistive;    ///< IR drop across the path

    /** Worst single droop plus the resistive floor. */
    Voltage worst() const;
};

/** Transient droop estimator for one PDN compute rail. */
class TransientModel
{
  public:
    explicit TransientModel(DecapStack stack);

    const DecapStack &stack() const { return _stack; }

    /**
     * Droop estimate for a load current step.
     *
     * @param step magnitude of the current step
     * @param rise_time edge rate; slower edges let deeper levels
     *        share the charge and shrink the die-level droop
     */
    DroopEstimate droop(Current step, Time rise_time) const;

    /**
     * True if the worst droop stays within the voltage guardband the
     * steady-state model budgeted (TOB + load-line compensation).
     */
    bool withinGuardband(Current step, Time rise_time,
                         Voltage guardband) const;

    /**
     * The largest current step the rail absorbs within a guardband
     * at a given edge rate (bisection; exposed for sizing studies).
     */
    Current maxStep(Voltage guardband, Time rise_time) const;

  private:
    /** Single-level droop: dI * sqrt(L/C), derated by the edge. */
    Voltage levelDroop(const DecapLevel &level, Current step,
                       Time rise_time) const;

    DecapStack _stack;
};

} // namespace pdnspot

#endif // PDNSPOT_PDN_TRANSIENT_HH
