#include "pdn/ivr_pdn.hh"

#include "pdn/rail_chains.hh"

namespace pdnspot
{

IvrPdn::IvrPdn(PdnPlatformParams platform, IvrPdnParams params)
    : PdnModel(platform),
      _params(params),
      _ivr(IvrParams{.name = "IVR"}),
      _vrIn(BuckParams::motherboard("V_IN")),
      _llIn(params.rllIn)
{}

EteeResult
IvrPdn::evaluate(const PlatformState &state) const
{
    ChainContext ctx{_platform, _guardband};

    // All six domains hang off the single V_IN chain; the input
    // load-line conduction loss is attributed to compute vs uncore
    // by each subset's share of the chain load (Fig. 5 categories).
    ChainResult chain = evalIvrChain(ctx, state, allDomains, _ivr,
                                     _vrIn, _params.tob, _llIn);
    double compute_share = chain.computeShare();

    EteeResult r;
    r.nominalPower = chain.nominalPower;
    r.inputPower = chain.inputPower;
    r.loss.vrLoss = chain.vrLoss;
    r.loss.conductionCompute = chain.conduction * compute_share;
    r.loss.conductionUncore = chain.conduction * (1.0 - compute_share);
    r.loss.other = chain.guardExcess;
    r.chipInputCurrent = chain.chipCurrent;
    r.computeLoadLine = _params.rllIn;
    return r;
}

std::vector<OffChipRail>
IvrPdn::offChipRails(const PlatformState &peak) const
{
    ChainContext ctx{_platform, _guardband};
    return {
        sizeIvrInputRail(ctx, peak, allDomains, _ivr, "V_IN",
                         _params.tob),
    };
}

} // namespace pdnspot
