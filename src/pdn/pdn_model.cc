#include "pdn/pdn_model.hh"

#include "common/logging.hh"

namespace pdnspot
{

std::string
pdnKindToString(PdnKind kind)
{
    switch (kind) {
      case PdnKind::IVR:
        return "IVR";
      case PdnKind::MBVR:
        return "MBVR";
      case PdnKind::LDO:
        return "LDO";
      case PdnKind::IplusMBVR:
        return "I+MBVR";
      case PdnKind::FlexWatts:
        return "FlexWatts";
    }
    panic("pdnKindToString: invalid PdnKind");
}

PdnKind
pdnKindFromString(const std::string &name)
{
    for (PdnKind kind : allPdnKinds) {
        if (pdnKindToString(kind) == name)
            return kind;
    }
    fatal(strprintf("pdnKindFromString: unknown PDN kind \"%s\"",
                    name.c_str()));
}

PdnModel::PdnModel(PdnPlatformParams platform)
    : _platform(platform), _guardband()
{
    if (_platform.supplyVoltage <= volts(0.0))
        fatal("PdnModel: non-positive supply voltage");
}

} // namespace pdnspot
