#include "pdn/imbvr_pdn.hh"

#include "pdn/rail_chains.hh"

namespace pdnspot
{

namespace
{

constexpr std::array<DomainId, 1> saRailDomains = {DomainId::SA};
constexpr std::array<DomainId, 1> ioRailDomains = {DomainId::IO};

} // anonymous namespace

ImbvrPdn::ImbvrPdn(PdnPlatformParams platform, ImbvrParams params)
    : PdnModel(platform),
      _params(params),
      _ivr(IvrParams{.name = "IVR"}),
      _vrIn(BuckParams::motherboard("V_IN")),
      _vrSa(BuckParams::motherboard("V_SA")),
      _vrIo(BuckParams::motherboard("V_IO")),
      _llIn(params.rllIn),
      _llSa(params.rllSa),
      _llIo(params.rllIo)
{}

EteeResult
ImbvrPdn::evaluate(const PlatformState &state) const
{
    ChainContext ctx{_platform, _guardband};

    ChainResult compute = evalIvrChain(ctx, state, computeDomains, _ivr,
                                       _vrIn, _params.tob, _llIn);
    ChainResult sa = evalSharedBoardRail(
        ctx, state, saRailDomains, _vrSa, _params.tob, _llSa, true);
    ChainResult io = evalSharedBoardRail(
        ctx, state, ioRailDomains, _vrIo, _params.tob, _llIo, true);
    ChainResult uncore = sa;
    uncore.accumulate(io);

    EteeResult r;
    r.nominalPower = compute.nominalPower + uncore.nominalPower;
    r.inputPower = compute.inputPower + uncore.inputPower;
    r.loss.vrLoss = compute.vrLoss + uncore.vrLoss;
    r.loss.conductionCompute = compute.conduction;
    r.loss.conductionUncore = uncore.conduction;
    r.loss.other = compute.guardExcess + uncore.guardExcess;
    r.chipInputCurrent = compute.chipCurrent + uncore.chipCurrent;
    r.computeLoadLine = _params.rllIn;
    return r;
}

std::vector<OffChipRail>
ImbvrPdn::offChipRails(const PlatformState &peak) const
{
    ChainContext ctx{_platform, _guardband};
    return {
        sizeIvrInputRail(ctx, peak, computeDomains, _ivr, "V_IN",
                         _params.tob),
        sizeSharedBoardRail(ctx, peak, saRailDomains, "V_SA",
                            _params.tob, true),
        sizeSharedBoardRail(ctx, peak, ioRailDomains, "V_IO",
                            _params.tob, true),
    };
}

} // namespace pdnspot
