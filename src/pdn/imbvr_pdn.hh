/**
 * @file
 * I+MBVR hybrid PDN topology (Intel Skylake-X style, paper Sec. 7).
 *
 * Like the LDO PDN it gives SA and IO dedicated one-stage off-chip
 * VRs; like the IVR PDN it uses integrated buck converters for the
 * compute domains behind a 1.8 V V_IN rail. It removes the IVR PDN's
 * two-stage conversion for the uncore but keeps it for compute.
 */

#ifndef PDNSPOT_PDN_IMBVR_PDN_HH
#define PDNSPOT_PDN_IMBVR_PDN_HH

#include <vector>

#include "pdn/load_line.hh"
#include "pdn/pdn_model.hh"
#include "vr/buck_vr.hh"
#include "vr/ivr.hh"

namespace pdnspot
{

/** Topology parameters of the I+MBVR PDN. */
struct ImbvrParams
{
    Voltage tob = millivolts(20.0);
    Resistance rllIn = milliohms(1.0);
    Resistance rllSa = milliohms(7.0);
    Resistance rllIo = milliohms(4.0);
};

/** IVR for compute, off-chip VRs for the uncore. */
class ImbvrPdn : public PdnModel
{
  public:
    explicit ImbvrPdn(PdnPlatformParams platform = {},
                      ImbvrParams params = {});

    std::string name() const override { return "I+MBVR"; }
    PdnKind kind() const override { return PdnKind::IplusMBVR; }

    EteeResult evaluate(const PlatformState &state) const override;

    std::vector<OffChipRail>
    offChipRails(const PlatformState &peak) const override;

  private:
    ImbvrParams _params;
    Ivr _ivr;
    BuckVr _vrIn;
    BuckVr _vrSa;
    BuckVr _vrIo;
    LoadLine _llIn;
    LoadLine _llSa;
    LoadLine _llIo;
};

} // namespace pdnspot

#endif // PDNSPOT_PDN_IMBVR_PDN_HH
