/**
 * @file
 * Load-line (adaptive voltage positioning) model, paper Eq. 3/4/7/8.
 *
 * The voltage at a load sags with current across the delivery-path
 * impedance RLL. To keep the load above its minimum functional voltage
 * even under the power-virus workload (AR = 1), the VR output setpoint
 * is raised by the worst-case droop, computed at the peak power
 * Ppeak = PD / AR. The raised setpoint costs proportionally more
 * power: PD_LL = VD_LL * (PD / VD).
 */

#ifndef PDNSPOT_PDN_LOAD_LINE_HH
#define PDNSPOT_PDN_LOAD_LINE_HH

#include "common/units.hh"

namespace pdnspot
{

/** One delivery path's load-line impedance and its guardband cost. */
class LoadLine
{
  public:
    explicit LoadLine(Resistance rll);

    Resistance impedance() const { return _rll; }

    /** Outcome of raising the VR setpoint for worst-case droop. */
    struct Result
    {
        Voltage vLL;              ///< raised VR output voltage (Eq. 3)
        Power pLL;                ///< power at the raised voltage (Eq. 4)
        Power conductionExcess;   ///< pLL - pD, the I^2*R guardband cost
    };

    /**
     * Apply Eq. 3/4 to a delivery group.
     *
     * @param vd group nominal rail voltage
     * @param pd group power at vd
     * @param ar group application ratio; Ppeak = pd / ar
     */
    Result apply(Voltage vd, Power pd, double ar) const;

  private:
    Resistance _rll;
};

} // namespace pdnspot

#endif // PDNSPOT_PDN_LOAD_LINE_HH
