#include "pdn/mbvr_pdn.hh"

#include "pdn/rail_chains.hh"

namespace pdnspot
{

namespace
{

constexpr std::array<DomainId, 3> coresRailDomains = {
    DomainId::Core0, DomainId::Core1, DomainId::LLC,
};
constexpr std::array<DomainId, 1> gfxRailDomains = {DomainId::GFX};
constexpr std::array<DomainId, 1> saRailDomains = {DomainId::SA};
constexpr std::array<DomainId, 1> ioRailDomains = {DomainId::IO};

} // anonymous namespace

MbvrPdn::MbvrPdn(PdnPlatformParams platform, MbvrParams params)
    : PdnModel(platform),
      _params(params),
      _vrCores(BuckParams::motherboard("V_Cores")),
      _vrGfx(BuckParams::motherboard("V_GFX")),
      _vrSa(BuckParams::motherboard("V_SA")),
      _vrIo(BuckParams::motherboard("V_IO")),
      _llCores(params.rllCores),
      _llGfx(params.rllGfx),
      _llSa(params.rllSa),
      _llIo(params.rllIo)
{}

EteeResult
MbvrPdn::evaluate(const PlatformState &state) const
{
    ChainContext ctx{_platform, _guardband};

    ChainResult cores = evalSharedBoardRail(
        ctx, state, coresRailDomains, _vrCores, _params.tob, _llCores,
        true);
    ChainResult gfx = evalSharedBoardRail(
        ctx, state, gfxRailDomains, _vrGfx, _params.tob, _llGfx, true);
    ChainResult sa = evalSharedBoardRail(
        ctx, state, saRailDomains, _vrSa, _params.tob, _llSa, true);
    ChainResult io = evalSharedBoardRail(
        ctx, state, ioRailDomains, _vrIo, _params.tob, _llIo, true);

    EteeResult r;
    ChainResult compute = cores;
    compute.accumulate(gfx);
    ChainResult uncore = sa;
    uncore.accumulate(io);

    r.nominalPower = compute.nominalPower + uncore.nominalPower;
    r.inputPower = compute.inputPower + uncore.inputPower;
    r.loss.vrLoss = compute.vrLoss + uncore.vrLoss;
    r.loss.conductionCompute = compute.conduction;
    r.loss.conductionUncore = uncore.conduction;
    r.loss.other = compute.guardExcess + uncore.guardExcess;
    r.chipInputCurrent = compute.chipCurrent + uncore.chipCurrent;
    r.computeLoadLine = _params.rllCores;
    return r;
}

std::vector<OffChipRail>
MbvrPdn::offChipRails(const PlatformState &peak) const
{
    ChainContext ctx{_platform, _guardband};
    return {
        sizeSharedBoardRail(ctx, peak, coresRailDomains, "V_Cores",
                            _params.tob, true),
        sizeSharedBoardRail(ctx, peak, gfxRailDomains, "V_GFX",
                            _params.tob, true),
        sizeSharedBoardRail(ctx, peak, saRailDomains, "V_SA",
                            _params.tob, true),
        sizeSharedBoardRail(ctx, peak, ioRailDomains, "V_IO",
                            _params.tob, true),
    };
}

} // namespace pdnspot
