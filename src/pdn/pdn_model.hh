/**
 * @file
 * Abstract PDN model interface.
 *
 * Every concrete topology (MBVR, IVR, LDO, I+MBVR, FlexWatts) maps a
 * PlatformState to an EteeResult by walking the paper's Sec. 3.1
 * pipeline: nominal power -> tolerance-band guardband (Eq. 2) ->
 * power-gate drop -> load-line (Eq. 3/4) -> VR conversion losses ->
 * supply power. The shared pipeline lives in pdn/rail_chains.hh.
 */

#ifndef PDNSPOT_PDN_PDN_MODEL_HH
#define PDNSPOT_PDN_PDN_MODEL_HH

#include <array>
#include <string>
#include <vector>

#include "common/units.hh"
#include "pdn/etee_result.hh"
#include "power/guardband.hh"
#include "power/platform_state.hh"

namespace pdnspot
{

/** The five PDN architectures evaluated in the paper. */
enum class PdnKind
{
    IVR,       ///< two-stage, integrated second stage (state of the art)
    MBVR,      ///< one-stage motherboard VRs
    LDO,       ///< two-stage with on-die LDO second stage (AMD Zen)
    IplusMBVR, ///< IVR for compute, off-chip VRs for SA/IO (Skylake-X)
    FlexWatts, ///< this paper: hybrid adaptive IVR/LDO
};

inline constexpr std::array<PdnKind, 5> allPdnKinds = {
    PdnKind::IVR, PdnKind::MBVR, PdnKind::LDO, PdnKind::IplusMBVR,
    PdnKind::FlexWatts,
};

/** The three static PDNs the motivation study compares (Fig. 4/5). */
inline constexpr std::array<PdnKind, 3> classicPdnKinds = {
    PdnKind::IVR, PdnKind::MBVR, PdnKind::LDO,
};

/**
 * The canonical spelling of a PDN kind ("IVR", "MBVR", "LDO",
 * "I+MBVR", "FlexWatts") — the single source of truth for every CSV
 * export and spec-file binding, and the exact inverse of
 * pdnKindFromString.
 */
std::string pdnKindToString(PdnKind kind);

/** Inverse of pdnKindToString; fatal() on an unknown name. */
PdnKind pdnKindFromString(const std::string &name);

/** Convenience overload matching toString(SimMode) etc. */
inline std::string
toString(PdnKind kind)
{
    return pdnKindToString(kind);
}

/** An off-chip rail description, consumed by the BOM/area models. */
struct OffChipRail
{
    std::string name;      ///< e.g. "V_Cores", "V_IN"
    Voltage outputVoltage; ///< worst-case (highest) setpoint
    Current iccMax;        ///< maximum design current
};

/** Platform-wide electrical constants shared by all topologies. */
struct PdnPlatformParams
{
    Voltage supplyVoltage = volts(7.2);   ///< PSU/battery rail
    Voltage ivrInputVoltage = volts(1.8); ///< first-stage output (IVR)
    Resistance gateResistance = milliohms(1.5); ///< RPG (Table 2)
    Power gateOffLeakage = milliwatts(1.0); ///< per gated-off domain
};

/** Base class for all PDN topologies. */
class PdnModel
{
  public:
    explicit PdnModel(PdnPlatformParams platform);
    virtual ~PdnModel() = default;

    PdnModel(const PdnModel &) = delete;
    PdnModel &operator=(const PdnModel &) = delete;

    virtual std::string name() const = 0;
    virtual PdnKind kind() const = 0;

    /** Evaluate ETEE and the loss breakdown at one operating point. */
    virtual EteeResult evaluate(const PlatformState &state) const = 0;

    /**
     * The off-chip rails this topology needs, sized for the given
     * platform state's peak (power-virus, AR = 1) demand. Input to
     * the BOM and board-area models; callers merge rail lists over
     * the workloads the platform must support.
     */
    virtual std::vector<OffChipRail>
    offChipRails(const PlatformState &peak) const = 0;

    const PdnPlatformParams &platform() const { return _platform; }
    const GuardbandModel &guardband() const { return _guardband; }

  protected:
    PdnPlatformParams _platform;
    GuardbandModel _guardband;
};

} // namespace pdnspot

#endif // PDNSPOT_PDN_PDN_MODEL_HH
