#include "pdn/rail_chains.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pdnspot
{

namespace
{

/** Power of a domain re-costed at a rail voltage above its own need. */
Power
overvoltToRail(const ChainContext &ctx, const DomainState &d,
               Power domain_power, Voltage domain_supply,
               Voltage rail_voltage)
{
    if (rail_voltage <= domain_supply)
        return domain_power;
    return ctx.guardband.apply(domain_power, domain_supply,
                               rail_voltage - domain_supply,
                               d.leakageFraction);
}

} // anonymous namespace

DomainDraw
guardbandedDraw(const ChainContext &ctx, const DomainState &d,
                Voltage tob, bool through_gate)
{
    DomainDraw draw;

    // Eq. 2: raise the supply by the tolerance band.
    Power pgb = ctx.guardband.apply(d.nominalPower, d.voltage, tob,
                                    d.leakageFraction);
    Voltage vgb = d.voltage + tob;
    draw.guardbandExcess = pgb - d.nominalPower;
    draw.power = pgb;
    draw.supplyVoltage = vgb;

    if (!through_gate)
        return draw;

    // Power-gate step (Sec. 3.1): the gate drop VPG = I * RPG adds a
    // further supply raise, costed with the same Eq. 2 scaling.
    Current id = pgb / vgb;
    Voltage vpg = id * ctx.platform.gateResistance;
    Power ppg = ctx.guardband.apply(pgb, vgb, vpg, d.leakageFraction);
    draw.guardbandExcess += ppg - pgb;
    draw.power = ppg;
    draw.supplyVoltage = vgb + vpg;
    return draw;
}

ChainResult
evalSharedBoardRail(const ChainContext &ctx, const PlatformState &state,
                    std::span<const DomainId> domains,
                    const BuckVr &board, Voltage tob,
                    const LoadLine &rail_ll, bool gated)
{
    ChainResult r;

    // Rail voltage: the highest guardbanded demand among the active
    // domains; the whole rail powers down if nothing is active.
    Voltage rail_v;
    std::vector<std::pair<DomainId, DomainDraw>> active;
    size_t inactive_count = 0;
    for (DomainId id : domains) {
        const DomainState &d = state.domain(id);
        if (!d.active) {
            ++inactive_count;
            continue;
        }
        DomainDraw draw = guardbandedDraw(ctx, d, tob, gated);
        rail_v = std::max(rail_v, draw.supplyVoltage);
        active.emplace_back(id, draw);
    }
    if (active.empty())
        return r;
    r.railOn = true;

    // Domains sharing a rail set above their own requirement pay the
    // over-volt cost (e.g. cores sharing V_Cores with a hotter LLC).
    Power pd;
    for (const auto &[id, draw] : active) {
        const DomainState &d = state.domain(id);
        Power p_at_rail = overvoltToRail(ctx, d, draw.power,
                                         draw.supplyVoltage, rail_v);
        pd += p_at_rail;
        r.domainShare[domainIndex(id)] = p_at_rail;
        r.nominalPower += d.nominalPower;
        r.guardExcess += p_at_rail - d.nominalPower;
    }

    // Gated-off siblings leak through their gates while the rail is on.
    if (gated && inactive_count > 0) {
        Power leak = ctx.platform.gateOffLeakage *
                     static_cast<double>(inactive_count);
        pd += leak;
        r.guardExcess += leak;
    }

    // Eq. 3/4 at the rail, then the off-chip VR (Eq. 5 term).
    LoadLine::Result ll = rail_ll.apply(rail_v, pd, state.ar);
    r.conduction = ll.conductionExcess;
    Power input = board.inputPower(ctx.platform.supplyVoltage, ll.vLL,
                                   ll.pLL);
    r.vrLoss = input - ll.pLL;
    r.inputPower = input;
    r.chipCurrent = pd / rail_v;
    return r;
}

ChainResult
evalIvrChain(const ChainContext &ctx, const PlatformState &state,
             std::span<const DomainId> domains, const Ivr &ivr,
             const BuckVr &board, Voltage tob, const LoadLine &input_ll)
{
    ChainResult r;
    Voltage vin = ctx.platform.ivrInputVoltage;

    // Eq. 2 then Eq. 6 per active domain; idle domains' IVRs are off.
    Power pin;
    for (DomainId id : domains) {
        const DomainState &d = state.domain(id);
        if (!d.active)
            continue;
        DomainDraw draw = guardbandedDraw(ctx, d, tob, false);
        Power p_ivr_d = ivr.inputPower(vin, draw.supplyVoltage,
                                       draw.power);
        pin += p_ivr_d;
        r.domainShare[domainIndex(id)] = p_ivr_d;
        r.nominalPower += d.nominalPower;
        r.guardExcess += draw.guardbandExcess;
        r.vrLoss += p_ivr_d - draw.power;
    }
    if (pin <= watts(0.0))
        return r;
    r.railOn = true;

    // Eq. 7/8 at the chip input, then the V_IN VR (Eq. 9).
    LoadLine::Result ll = input_ll.apply(vin, pin, state.ar);
    r.conduction = ll.conductionExcess;
    Power input = board.inputPower(ctx.platform.supplyVoltage, ll.vLL,
                                   ll.pLL);
    r.vrLoss += input - ll.pLL;
    r.inputPower = input;
    r.chipCurrent = pin / vin;
    return r;
}

ChainResult
evalLdoChain(const ChainContext &ctx, const PlatformState &state,
             std::span<const DomainId> domains, const LdoVr &ldo,
             const BuckVr &board, Voltage tob, const LoadLine &input_ll)
{
    ChainResult r;

    // V_IN is set to the maximum guardbanded voltage among the active
    // LDO domains (Sec. 2.3); that domain's LDO runs in bypass.
    std::vector<std::pair<DomainId, DomainDraw>> active;
    size_t inactive_count = 0;
    Voltage vin;
    for (DomainId id : domains) {
        const DomainState &d = state.domain(id);
        if (!d.active) {
            ++inactive_count;
            continue;
        }
        DomainDraw draw = guardbandedDraw(ctx, d, tob, false);
        vin = std::max(vin, draw.supplyVoltage);
        active.emplace_back(id, draw);
    }
    if (active.empty())
        return r;
    r.railOn = true;

    // Eq. 10/11 per domain.
    Power pin;
    for (const auto &[id, draw] : active) {
        const DomainState &d = state.domain(id);
        double eta = ldo.efficiency(vin, draw.supplyVoltage);
        Power p_ldo_d = draw.power / eta;
        pin += p_ldo_d;
        r.domainShare[domainIndex(id)] = p_ldo_d;
        r.nominalPower += d.nominalPower;
        r.guardExcess += draw.guardbandExcess;
        r.vrLoss += p_ldo_d - draw.power;
    }

    // Idle domains' LDOs act as power gates and leak from V_IN.
    if (inactive_count > 0) {
        Power leak = ctx.platform.gateOffLeakage *
                     static_cast<double>(inactive_count);
        pin += leak;
        r.guardExcess += leak;
    }

    // Input load-line at the (low) V_IN voltage, then the V_IN VR
    // (first term of Eq. 12).
    LoadLine::Result ll = input_ll.apply(vin, pin, state.ar);
    r.conduction = ll.conductionExcess;
    Power input = board.inputPower(ctx.platform.supplyVoltage, ll.vLL,
                                   ll.pLL);
    r.vrLoss += input - ll.pLL;
    r.inputPower = input;
    r.chipCurrent = pin / vin;
    return r;
}

OffChipRail
sizeSharedBoardRail(const ChainContext &ctx, const PlatformState &peak,
                    std::span<const DomainId> domains,
                    const std::string &name, Voltage tob, bool gated)
{
    Voltage rail_v;
    Power pd;
    for (DomainId id : domains) {
        const DomainState &d = peak.domain(id);
        if (!d.active)
            continue;
        DomainDraw draw = guardbandedDraw(ctx, d, tob, gated);
        rail_v = std::max(rail_v, draw.supplyVoltage);
        pd += draw.power;
    }
    OffChipRail rail;
    rail.name = name;
    rail.outputVoltage = rail_v;
    rail.iccMax = rail_v > volts(0.0) ? (pd / peak.ar) / rail_v
                                      : Current();
    return rail;
}

OffChipRail
sizeIvrInputRail(const ChainContext &ctx, const PlatformState &peak,
                 std::span<const DomainId> domains, const Ivr &ivr,
                 const std::string &name, Voltage tob)
{
    Voltage vin = ctx.platform.ivrInputVoltage;
    Power pin;
    for (DomainId id : domains) {
        const DomainState &d = peak.domain(id);
        if (!d.active)
            continue;
        DomainDraw draw = guardbandedDraw(ctx, d, tob, false);
        pin += ivr.inputPower(vin, draw.supplyVoltage, draw.power);
    }
    OffChipRail rail;
    rail.name = name;
    rail.outputVoltage = vin;
    rail.iccMax = (pin / peak.ar) / vin;
    return rail;
}

OffChipRail
sizeLdoInputRail(const ChainContext &ctx, const PlatformState &peak,
                 std::span<const DomainId> domains, const LdoVr &ldo,
                 const std::string &name, Voltage tob)
{
    Voltage vin;
    std::vector<std::pair<DomainId, DomainDraw>> active;
    for (DomainId id : domains) {
        const DomainState &d = peak.domain(id);
        if (!d.active)
            continue;
        DomainDraw draw = guardbandedDraw(ctx, d, tob, false);
        vin = std::max(vin, draw.supplyVoltage);
        active.emplace_back(id, draw);
    }
    Power pin;
    for (const auto &[id, draw] : active)
        pin += draw.power / ldo.efficiency(vin, draw.supplyVoltage);

    OffChipRail rail;
    rail.name = name;
    rail.outputVoltage = vin;
    rail.iccMax = vin > volts(0.0) ? (pin / peak.ar) / vin
                                   : Current();
    return rail;
}

} // namespace pdnspot
