#include "pdn/transient.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pdnspot
{

DecapStack
DecapStack::forPdn(PdnKind kind)
{
    // Rationale (paper Sec. 2.3):
    //  - IVR integrates the second stage on die: the loop inductance
    //    to the load is tiny, but only MIM-cap-class decap fits on
    //    die, so the die-level characteristic impedance is the worst.
    //  - MBVR's VR sits far away (large board loop inductance), but
    //    the long path leaves room for generous board/package decap.
    //  - LDO sits between: on-die regulation with a shared low-voltage
    //    input plane that carries some package decap.
    //  - I+MBVR matches IVR on the compute rail.
    //  - FlexWatts shares the IVR's decap stack across both modes
    //    (Sec. 6: both modes share the package and die capacitors).
    DecapStack s;
    switch (kind) {
      case PdnKind::IVR:
      case PdnKind::IplusMBVR:
      case PdnKind::FlexWatts:
        s.die = {0.08, 0.010, milliohms(0.2)};
        s.package = {18.0, 0.9, milliohms(0.35)};
        s.board = {300.0, 10.0, milliohms(0.6)};
        return s;
      case PdnKind::LDO:
        s.die = {0.14, 0.010, milliohms(0.25)};
        s.package = {30.0, 0.8, milliohms(0.4)};
        s.board = {500.0, 8.0, milliohms(0.8)};
        return s;
      case PdnKind::MBVR:
        s.die = {0.25, 0.010, milliohms(0.3)};
        s.package = {44.0, 0.7, milliohms(0.5)};
        s.board = {900.0, 6.0, milliohms(1.2)};
        return s;
    }
    panic("DecapStack::forPdn: invalid PdnKind");
}

Voltage
DroopEstimate::worst() const
{
    return std::max({dieDroop, packageDroop, boardDroop}) + resistive;
}

TransientModel::TransientModel(DecapStack stack)
    : _stack(stack)
{
    for (const DecapLevel *level :
         {&_stack.die, &_stack.package, &_stack.board}) {
        if (level->capacitanceUf <= 0.0 || level->inductanceNh <= 0.0)
            fatal("TransientModel: non-positive decap parameters");
    }
}

Voltage
TransientModel::levelDroop(const DecapLevel &level, Current step,
                           Time rise_time) const
{
    // Characteristic impedance of the level's LC tank.
    double l_h = level.inductanceNh * 1e-9;
    double c_f = level.capacitanceUf * 1e-6;
    double z0 = std::sqrt(l_h / c_f);

    // Edges slower than the tank's natural period let the level's
    // capacitance recharge mid-edge; derate by tau / trise.
    double tau = std::sqrt(l_h * c_f); // ~1/omega0
    double derate = 1.0;
    double trise = inSeconds(rise_time);
    if (trise > tau && trise > 0.0)
        derate = tau / trise;

    return volts(inAmps(step) * z0 * derate);
}

DroopEstimate
TransientModel::droop(Current step, Time rise_time) const
{
    if (step < amps(0.0))
        fatal("TransientModel: negative current step");
    if (rise_time <= seconds(0.0))
        fatal("TransientModel: non-positive rise time");

    DroopEstimate e;
    e.dieDroop = levelDroop(_stack.die, step, rise_time);
    e.packageDroop = levelDroop(_stack.package, step, rise_time);
    e.boardDroop = levelDroop(_stack.board, step, rise_time);
    Resistance r = _stack.die.pathResistance +
                   _stack.package.pathResistance +
                   _stack.board.pathResistance;
    e.resistive = step * r;
    return e;
}

bool
TransientModel::withinGuardband(Current step, Time rise_time,
                                Voltage guardband) const
{
    return droop(step, rise_time).worst() <= guardband;
}

Current
TransientModel::maxStep(Voltage guardband, Time rise_time) const
{
    if (guardband <= volts(0.0))
        fatal("TransientModel: non-positive guardband");

    // The droop is linear in the step, so solve directly from a
    // unit-step probe (bisection kept as a guard against future
    // nonlinear terms).
    Voltage unit = droop(amps(1.0), rise_time).worst();
    if (unit <= volts(0.0))
        panic("TransientModel: degenerate unit droop");
    double guess = guardband / unit;

    double lo = 0.0, hi = guess * 2.0 + 1.0;
    for (int i = 0; i < 50; ++i) {
        double mid = 0.5 * (lo + hi);
        if (withinGuardband(amps(mid), rise_time, guardband))
            lo = mid;
        else
            hi = mid;
    }
    return amps(lo);
}

} // namespace pdnspot
