/**
 * @file
 * LDO PDN topology, paper Fig. 1(c).
 *
 * The AMD-Zen-style PDN: a shared off-chip V_IN VR set to the maximum
 * compute-domain voltage feeds per-domain on-die LDO VRs (bypass for
 * the max-voltage domain, linear regulation for the rest); SA and IO
 * get dedicated one-stage off-chip VRs behind on-chip power gates.
 * Modeled per Sec. 3.1's "LDO PDN Power Modeling" (Eq. 10-12).
 */

#ifndef PDNSPOT_PDN_LDO_PDN_HH
#define PDNSPOT_PDN_LDO_PDN_HH

#include <vector>

#include "pdn/load_line.hh"
#include "pdn/pdn_model.hh"
#include "vr/buck_vr.hh"
#include "vr/ldo_vr.hh"

namespace pdnspot
{

/** Topology parameters of the LDO PDN (Table 2 column "LDO"). */
struct LdoPdnParams
{
    Voltage tob = millivolts(17.0);       ///< TOB 16-18 mV
    Resistance rllIn = milliohms(1.25);   ///< shared V_IN load-line
    Resistance rllSa = milliohms(7.0);
    Resistance rllIo = milliohms(4.0);
};

/** The two-stage on-die-LDO PDN. */
class LdoPdn : public PdnModel
{
  public:
    explicit LdoPdn(PdnPlatformParams platform = {},
                    LdoPdnParams params = {});

    std::string name() const override { return "LDO"; }
    PdnKind kind() const override { return PdnKind::LDO; }

    EteeResult evaluate(const PlatformState &state) const override;

    std::vector<OffChipRail>
    offChipRails(const PlatformState &peak) const override;

  private:
    LdoPdnParams _params;
    LdoVr _ldo;      ///< coefficients shared by the four on-die LDOs
    BuckVr _vrIn;
    BuckVr _vrSa;
    BuckVr _vrIo;
    LoadLine _llIn;
    LoadLine _llSa;
    LoadLine _llIo;
};

} // namespace pdnspot

#endif // PDNSPOT_PDN_LDO_PDN_HH
