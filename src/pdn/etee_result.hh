/**
 * @file
 * End-to-end power-conversion efficiency (ETEE) evaluation result.
 *
 * ETEE is the ratio of the sum of all loads' nominal power to the
 * effective power drawn from the main supply (paper Sec. 2.4 and 3.1).
 * The loss breakdown follows Fig. 5's categories: VR conversion
 * inefficiencies, conduction (I^2*R) losses split into compute
 * (core/GFX/LLC) and uncore (SA/IO) paths, and "others" (tolerance-band
 * guardband excess, power-gate drops and off-state gate leakage).
 */

#ifndef PDNSPOT_PDN_ETEE_RESULT_HH
#define PDNSPOT_PDN_ETEE_RESULT_HH

#include "common/units.hh"

namespace pdnspot
{

/** Where the conversion losses went (Fig. 5 categories). */
struct LossBreakdown
{
    Power vrLoss;             ///< on-chip + off-chip VR inefficiency
    Power conductionCompute;  ///< I^2*R on core/GFX/LLC delivery paths
    Power conductionUncore;   ///< I^2*R on SA/IO delivery paths
    Power other;              ///< guardband excess, power gates, leaks

    Power
    total() const
    {
        return vrLoss + conductionCompute + conductionUncore + other;
    }
};

/** Result of evaluating one PDN at one platform operating point. */
struct EteeResult
{
    Power nominalPower;        ///< sum of active loads' PNOM
    Power inputPower;          ///< power drawn from PSU/battery
    LossBreakdown loss;
    Current chipInputCurrent;  ///< total current entering the package
    Resistance computeLoadLine; ///< RLL of the compute delivery path

    /** End-to-end power conversion efficiency in (0, 1]. */
    double
    etee() const
    {
        if (inputPower <= watts(0.0))
            return 0.0;
        return nominalPower / inputPower;
    }

    /** A loss category as a fraction of the input power (Fig. 5). */
    double
    lossFraction(Power category) const
    {
        if (inputPower <= watts(0.0))
            return 0.0;
        return category / inputPower;
    }
};

} // namespace pdnspot

#endif // PDNSPOT_PDN_ETEE_RESULT_HH
