/**
 * @file
 * Integrated-VR (IVR) PDN topology, paper Fig. 1(a).
 *
 * Two-stage conversion: a single off-chip V_IN VR at ~1.8 V feeds six
 * per-domain integrated buck converters. The state-of-the-art PDN of
 * Intel's 4th/5th/10th-gen Core parts and the paper's baseline.
 * Modeled per Sec. 3.1's "IVR PDN Power Modeling" (Eq. 6-9).
 */

#ifndef PDNSPOT_PDN_IVR_PDN_HH
#define PDNSPOT_PDN_IVR_PDN_HH

#include <vector>

#include "pdn/load_line.hh"
#include "pdn/pdn_model.hh"
#include "vr/buck_vr.hh"
#include "vr/ivr.hh"

namespace pdnspot
{

/** Topology parameters of the IVR PDN (Table 2 column "IVR"). */
struct IvrPdnParams
{
    Voltage tob = millivolts(20.0);       ///< TOB 18-22 mV
    Resistance rllIn = milliohms(1.0);    ///< input load-line
};

/** The two-stage fully-integrated-VR PDN. */
class IvrPdn : public PdnModel
{
  public:
    explicit IvrPdn(PdnPlatformParams platform = {},
                    IvrPdnParams params = {});

    std::string name() const override { return "IVR"; }
    PdnKind kind() const override { return PdnKind::IVR; }

    EteeResult evaluate(const PlatformState &state) const override;

    std::vector<OffChipRail>
    offChipRails(const PlatformState &peak) const override;

  private:
    IvrPdnParams _params;
    Ivr _ivr;        ///< loss coefficients shared by all six IVRs
    BuckVr _vrIn;    ///< first-stage V_IN VR
    LoadLine _llIn;
};

} // namespace pdnspot

#endif // PDNSPOT_PDN_IVR_PDN_HH
