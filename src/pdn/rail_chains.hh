/**
 * @file
 * Reusable delivery-chain evaluators shared by the PDN topologies.
 *
 * Each of the paper's PDNs is a composition of three chain shapes:
 *
 *  - a shared motherboard rail: one off-chip buck VR feeding one or
 *    more domains (possibly through power gates) at a common voltage
 *    (MBVR's V_Cores/V_GFX/V_SA/V_IO; the SA/IO rails of LDO, I+MBVR
 *    and FlexWatts);
 *  - an IVR chain: an off-chip V_IN VR at ~1.8 V feeding per-domain
 *    integrated buck converters (IVR PDN; compute side of I+MBVR and
 *    of FlexWatts in IVR-Mode);
 *  - an LDO chain: an off-chip V_IN VR at the maximum domain voltage
 *    feeding per-domain LDOs in bypass/regulation (LDO PDN; compute
 *    side of FlexWatts in LDO-Mode).
 *
 * The evaluators implement the paper's Eq. 2-12 pipeline once so all
 * topologies share it.
 */

#ifndef PDNSPOT_PDN_RAIL_CHAINS_HH
#define PDNSPOT_PDN_RAIL_CHAINS_HH

#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "common/units.hh"
#include "pdn/load_line.hh"
#include "pdn/pdn_model.hh"
#include "power/guardband.hh"
#include "power/platform_state.hh"
#include "vr/buck_vr.hh"
#include "vr/ivr.hh"
#include "vr/ldo_vr.hh"

namespace pdnspot
{

/** Aggregate outcome of one delivery chain. */
struct ChainResult
{
    Power nominalPower;    ///< sum of served domains' PNOM
    Power inputPower;      ///< power drawn from PSU for this chain
    Power vrLoss;          ///< on-chip + off-chip conversion loss
    Power conduction;      ///< load-line (I^2*R guardband) excess
    Power guardExcess;     ///< TOB + gate drop + rail over-volt + leaks
    Current chipCurrent;   ///< current entering the package
    bool railOn = false;   ///< false if every served domain was gated

    /** Power each domain pulled from this chain's rail. */
    std::array<Power, numDomains> domainShare{};

    void
    accumulate(const ChainResult &other)
    {
        nominalPower += other.nominalPower;
        inputPower += other.inputPower;
        vrLoss += other.vrLoss;
        conduction += other.conduction;
        guardExcess += other.guardExcess;
        chipCurrent += other.chipCurrent;
        railOn = railOn || other.railOn;
        for (size_t i = 0; i < numDomains; ++i)
            domainShare[i] += other.domainShare[i];
    }

    /** Fraction of the rail load drawn by the compute domains. */
    double
    computeShare() const
    {
        Power total, comp;
        for (size_t i = 0; i < numDomains; ++i) {
            total += domainShare[i];
            if (isComputeDomain(static_cast<DomainId>(i)))
                comp += domainShare[i];
        }
        return total > watts(0.0) ? comp / total : 0.0;
    }
};

/** Context shared by the chain evaluators. */
struct ChainContext
{
    const PdnPlatformParams &platform;
    const GuardbandModel &guardband;
};

/**
 * One domain's draw after Eq. 2 guardbanding and (optionally) the
 * power-gate voltage-drop step.
 */
struct DomainDraw
{
    Power power;            ///< power at the guardbanded voltage
    Voltage supplyVoltage;  ///< voltage the rail must provide
    Power guardbandExcess;  ///< PGB - PNOM plus the gate-drop cost
};

DomainDraw guardbandedDraw(const ChainContext &ctx, const DomainState &d,
                           Voltage tob, bool through_gate);

/**
 * A shared motherboard rail: one off-chip buck, one load-line, one or
 * more domains at the rail's common voltage.
 *
 * @param gated true if domains sit behind on-chip power gates; gated
 *              domains that are inactive leak gateOffLeakage from the
 *              rail while any sibling keeps the rail on.
 */
ChainResult evalSharedBoardRail(const ChainContext &ctx,
                                const PlatformState &state,
                                std::span<const DomainId> domains,
                                const BuckVr &board, Voltage tob,
                                const LoadLine &rail_ll, bool gated);

/**
 * The IVR chain: V_IN at ivrInputVoltage feeding one integrated buck
 * per active domain; the input load-line is applied at V_IN (Eq. 7/8).
 */
ChainResult evalIvrChain(const ChainContext &ctx,
                         const PlatformState &state,
                         std::span<const DomainId> domains,
                         const Ivr &ivr, const BuckVr &board,
                         Voltage tob, const LoadLine &input_ll);

/**
 * The LDO chain: V_IN set to the maximum guardbanded domain voltage;
 * the domain(s) at that voltage run in bypass, the rest regulate down
 * at eta = (Vout/Vin) * Ie (Eq. 10/11); inactive domains' LDOs act as
 * power gates leaking gateOffLeakage while the rail is on.
 */
ChainResult evalLdoChain(const ChainContext &ctx,
                         const PlatformState &state,
                         std::span<const DomainId> domains,
                         const LdoVr &ldo, const BuckVr &board,
                         Voltage tob, const LoadLine &input_ll);

/** Worst-case rail sizing for the BOM/area models. */
OffChipRail sizeSharedBoardRail(const ChainContext &ctx,
                                const PlatformState &peak,
                                std::span<const DomainId> domains,
                                const std::string &name, Voltage tob,
                                bool gated);

OffChipRail sizeIvrInputRail(const ChainContext &ctx,
                             const PlatformState &peak,
                             std::span<const DomainId> domains,
                             const Ivr &ivr, const std::string &name,
                             Voltage tob);

OffChipRail sizeLdoInputRail(const ChainContext &ctx,
                             const PlatformState &peak,
                             std::span<const DomainId> domains,
                             const LdoVr &ldo, const std::string &name,
                             Voltage tob);

} // namespace pdnspot

#endif // PDNSPOT_PDN_RAIL_CHAINS_HH
