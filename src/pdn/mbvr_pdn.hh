/**
 * @file
 * Motherboard-VR (MBVR) PDN topology, paper Fig. 1(b).
 *
 * One-stage conversion: four off-chip buck VRs (V_Cores feeding both
 * cores and the LLC, V_GFX, V_SA, V_IO) and six on-chip power gates.
 * Modeled per Sec. 3.1's "MBVR PDN Power Modeling" (Eq. 2-5).
 */

#ifndef PDNSPOT_PDN_MBVR_PDN_HH
#define PDNSPOT_PDN_MBVR_PDN_HH

#include <vector>

#include "pdn/load_line.hh"
#include "pdn/pdn_model.hh"
#include "vr/buck_vr.hh"

namespace pdnspot
{

/** Topology parameters of the MBVR PDN (Table 2 column "MBVR"). */
struct MbvrParams
{
    Voltage tob = millivolts(19.0);          ///< TOB 18-20 mV
    Resistance rllCores = milliohms(2.5);
    Resistance rllGfx = milliohms(2.5);
    Resistance rllSa = milliohms(7.0);
    Resistance rllIo = milliohms(4.0);
};

/** The traditional one-stage motherboard-VR PDN. */
class MbvrPdn : public PdnModel
{
  public:
    explicit MbvrPdn(PdnPlatformParams platform = {},
                     MbvrParams params = {});

    std::string name() const override { return "MBVR"; }
    PdnKind kind() const override { return PdnKind::MBVR; }

    EteeResult evaluate(const PlatformState &state) const override;

    std::vector<OffChipRail>
    offChipRails(const PlatformState &peak) const override;

  private:
    MbvrParams _params;
    BuckVr _vrCores;
    BuckVr _vrGfx;
    BuckVr _vrSa;
    BuckVr _vrIo;
    LoadLine _llCores;
    LoadLine _llGfx;
    LoadLine _llSa;
    LoadLine _llIo;
};

} // namespace pdnspot

#endif // PDNSPOT_PDN_MBVR_PDN_HH
