/**
 * @file
 * Focused coverage for SweepResult::writeCsv: header layout, column
 * alignment across series, and locale-independent number formatting.
 */

#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "pdnspot/sweep.hh"

namespace pdnspot
{
namespace
{

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

SweepResult
twoSeriesResult()
{
    SweepResult r;
    r.xLabel = "TDP_W";
    r.yLabel = "ETEE";
    r.series.push_back({"IVR", {{4.0, 0.75}, {15.0, 0.8}}});
    r.series.push_back({"FlexWatts", {{4.0, 0.85}, {15.0, 0.82}}});
    return r;
}

TEST(SweepCsvTest, HeaderRowIsXLabelThenSeriesLabels)
{
    std::ostringstream os;
    twoSeriesResult().writeCsv(os);
    auto rows = lines(os.str());
    ASSERT_GE(rows.size(), 1u);
    EXPECT_EQ(rows[0], "TDP_W,IVR,FlexWatts");
}

TEST(SweepCsvTest, EveryRowHasOneColumnPerSeriesPlusX)
{
    std::ostringstream os;
    twoSeriesResult().writeCsv(os);
    auto rows = lines(os.str());
    ASSERT_EQ(rows.size(), 3u); // header + 2 points
    for (const std::string &row : rows) {
        size_t commas = 0;
        for (char c : row)
            commas += c == ',';
        EXPECT_EQ(commas, 2u) << row;
    }
    EXPECT_EQ(rows[1], "4,0.75,0.85");
    EXPECT_EQ(rows[2], "15,0.8,0.82");
}

TEST(SweepCsvTest, EmptySeriesListEmitsHeaderOnly)
{
    SweepResult r;
    r.xLabel = "AR";
    r.yLabel = "ETEE";
    std::ostringstream os;
    r.writeCsv(os);
    EXPECT_EQ(os.str(), "AR\n");
}

TEST(SweepCsvTest, RaggedSeriesIsAnError)
{
    // Series of unequal length cannot be aligned into one x column;
    // writeCsv must refuse rather than emit a misaligned table.
    SweepResult r = twoSeriesResult();
    r.series[1].points.pop_back();
    std::ostringstream os;
    EXPECT_THROW(r.writeCsv(os), ModelError);
}

/** numpunct facet emulating a comma-decimal locale (e.g. de_DE). */
class CommaDecimal : public std::numpunct<char>
{
  protected:
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
};

TEST(SweepCsvTest, FormattingIgnoresStreamLocale)
{
    SweepResult r;
    r.xLabel = "x";
    r.series.push_back({"y", {{1234.5, 0.25}}});

    std::ostringstream os;
    os.imbue(std::locale(os.getloc(), new CommaDecimal));
    r.writeCsv(os);
    auto rows = lines(os.str());
    ASSERT_EQ(rows.size(), 2u);
    // '.' decimal point, no digit grouping, ',' only as separator.
    EXPECT_EQ(rows[1], "1234.5,0.25");
}

TEST(SweepCsvTest, ReadCsvReconstructsSeries)
{
    std::ostringstream os;
    twoSeriesResult().writeCsv(os);
    std::istringstream is(os.str());
    SweepResult r = SweepResult::readCsv(is);

    EXPECT_EQ(r.xLabel, "TDP_W");
    EXPECT_EQ(r.yLabel, ""); // not part of the CSV
    ASSERT_EQ(r.series.size(), 2u);
    EXPECT_EQ(r.series[0].label, "IVR");
    EXPECT_EQ(r.series[1].label, "FlexWatts");
    EXPECT_EQ(r.series[0].points,
              (std::vector<std::pair<double, double>>{{4.0, 0.75},
                                                      {15.0, 0.8}}));
    EXPECT_EQ(r.series[1].points,
              (std::vector<std::pair<double, double>>{{4.0, 0.85},
                                                      {15.0, 0.82}}));
}

TEST(SweepCsvTest, WriteReadWriteIsAFixpoint)
{
    std::ostringstream first;
    twoSeriesResult().writeCsv(first);

    std::istringstream is(first.str());
    SweepResult reread = SweepResult::readCsv(is);
    std::ostringstream second;
    reread.writeCsv(second);
    EXPECT_EQ(second.str(), first.str());
}

TEST(SweepCsvTest, ReadCsvHandlesHeaderOnlyOutput)
{
    std::istringstream is("AR\n");
    SweepResult r = SweepResult::readCsv(is);
    EXPECT_EQ(r.xLabel, "AR");
    EXPECT_TRUE(r.series.empty());

    std::ostringstream os;
    r.writeCsv(os);
    EXPECT_EQ(os.str(), "AR\n");
}

TEST(SweepCsvTest, ReadCsvRejectsMalformedInput)
{
    std::istringstream empty("");
    EXPECT_THROW(SweepResult::readCsv(empty), ConfigError);

    std::istringstream ragged("x,a,b\n1,2\n");
    EXPECT_THROW(SweepResult::readCsv(ragged), ConfigError);

    std::istringstream garbage("x,a\n1,banana\n");
    EXPECT_THROW(SweepResult::readCsv(garbage), ConfigError);
}

TEST(SweepCsvTest, ReadCsvParsingIgnoresGlobalLocale)
{
    std::locale saved = std::locale::global(
        std::locale(std::locale::classic(), new CommaDecimal));
    std::istringstream is("x,y\n1234.5,0.25\n");
    SweepResult r = SweepResult::readCsv(is);
    std::locale::global(saved);

    ASSERT_EQ(r.series.size(), 1u);
    ASSERT_EQ(r.series[0].points.size(), 1u);
    EXPECT_EQ(r.series[0].points[0].first, 1234.5);
    EXPECT_EQ(r.series[0].points[0].second, 0.25);
}

TEST(SweepCsvTest, FormattingIgnoresGlobalLocale)
{
    std::locale saved = std::locale::global(
        std::locale(std::locale::classic(), new CommaDecimal));
    SweepResult r;
    r.xLabel = "x";
    r.series.push_back({"y", {{1234.5, 0.25}}});
    std::ostringstream os;
    r.writeCsv(os);
    std::locale::global(saved);

    auto rows = lines(os.str());
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1], "1234.5,0.25");
}

} // namespace
} // namespace pdnspot
