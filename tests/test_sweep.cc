/**
 * @file
 * Unit tests for the sweep engine and its CSV export.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "pdnspot/sweep.hh"
#include "pmu/pmu.hh"

namespace pdnspot
{
namespace
{

class SweepTest : public ::testing::Test
{
  protected:
    SweepTest() : platform(), engine(platform) {}

    Platform platform;
    SweepEngine engine;
};

TEST_F(SweepTest, EteeVsArShapes)
{
    std::vector<PdnKind> kinds(classicPdnKinds.begin(),
                               classicPdnKinds.end());
    SweepResult r = engine.eteeVsAr(watts(18.0),
                                    WorkloadType::MultiThread,
                                    {0.4, 0.5, 0.6, 0.7, 0.8}, kinds);
    ASSERT_EQ(r.series.size(), 3u);
    for (const SweepSeries &s : r.series) {
        ASSERT_EQ(s.points.size(), 5u);
        for (const auto &[x, y] : s.points) {
            EXPECT_GT(y, 0.5);
            EXPECT_LT(y, 1.0);
        }
    }
    // MBVR rises with AR (Observation 2).
    const SweepSeries &mbvr = r.series[1];
    EXPECT_EQ(mbvr.label, "MBVR");
    EXPECT_GT(mbvr.points.back().second, mbvr.points.front().second);
}

TEST_F(SweepTest, EteeVsTdpShowsCrossover)
{
    SweepResult r = engine.eteeVsTdp(WorkloadType::MultiThread, 0.56,
                                     {4, 10, 18, 25, 36, 50},
                                     {PdnKind::IVR, PdnKind::MBVR});
    const auto &ivr = r.series[0].points;
    const auto &mbvr = r.series[1].points;
    EXPECT_LT(ivr.front().second, mbvr.front().second); // 4 W
    EXPECT_GT(ivr.back().second, mbvr.back().second);   // 50 W
}

TEST_F(SweepTest, EteeVsCStateLadder)
{
    SweepResult r = engine.eteeVsCState({PdnKind::IVR, PdnKind::MBVR});
    ASSERT_EQ(r.series.size(), 2u);
    ASSERT_EQ(r.series[0].points.size(), batteryLifeCStates.size());
    // MBVR above IVR in every idle state.
    for (size_t i = 1; i < r.series[0].points.size(); ++i) {
        EXPECT_GT(r.series[1].points[i].second,
                  r.series[0].points[i].second);
    }
}

TEST_F(SweepTest, BomAndAreaSweeps)
{
    std::vector<PdnKind> kinds = {PdnKind::MBVR, PdnKind::FlexWatts};
    SweepResult bom = engine.bomVsTdp({4, 18, 50}, kinds);
    SweepResult area = engine.areaVsTdp({4, 18, 50}, kinds);
    for (const auto &[x, y] : bom.series[0].points)
        EXPECT_GT(y, 1.5); // MBVR
    for (const auto &[x, y] : bom.series[1].points)
        EXPECT_LT(y, 1.3); // FlexWatts
    for (const auto &[x, y] : area.series[0].points)
        EXPECT_GT(y, 1.5);
}

TEST_F(SweepTest, CsvExportWellFormed)
{
    SweepResult r = engine.eteeVsTdp(WorkloadType::MultiThread, 0.56,
                                     {4, 50},
                                     {PdnKind::IVR, PdnKind::LDO});
    std::ostringstream os;
    r.writeCsv(os);
    std::string out = os.str();
    EXPECT_EQ(out.substr(0, out.find('\n')), "TDP_W,IVR,LDO");
    // Header + two data rows.
    size_t lines = 0;
    for (char c : out)
        if (c == '\n')
            ++lines;
    EXPECT_EQ(lines, 3u);
}

TEST_F(SweepTest, RejectsEmptySweeps)
{
    EXPECT_THROW(engine.eteeVsAr(watts(18.0),
                                 WorkloadType::MultiThread, {},
                                 {PdnKind::IVR}),
                 ConfigError);
    EXPECT_THROW(engine.eteeVsTdp(WorkloadType::MultiThread, 0.5,
                                  {4.0}, {}),
                 ConfigError);
}

TEST_F(SweepTest, PmuCtdpReconfiguration)
{
    // cTDP: reconfiguring the budget flips the mode decision at the
    // next evaluation (4 W -> LDO-Mode, 50 W -> IVR-Mode for heavy
    // multi-thread work).
    PmuConfig cfg;
    cfg.tdp = watts(4.0);
    cfg.initialMode = HybridMode::LdoMode;
    Pmu pmu(cfg, platform.predictor());

    TracePhase heavy;
    heavy.duration = milliseconds(200.0);
    heavy.cstate = PackageCState::C0;
    heavy.type = WorkloadType::MultiThread;
    heavy.ar = 0.8;

    for (double ms = 0.0; ms <= 50.0; ms += 1.0)
        pmu.advanceTo(milliseconds(ms), heavy);
    EXPECT_EQ(pmu.configuredMode(), HybridMode::LdoMode);

    pmu.setTdp(watts(50.0)); // dock with active cooling
    for (double ms = 51.0; ms <= 120.0; ms += 1.0)
        pmu.advanceTo(milliseconds(ms), heavy);
    EXPECT_EQ(pmu.configuredMode(), HybridMode::IvrMode);

    EXPECT_THROW(pmu.setTdp(watts(0.0)), ConfigError);
}

} // anonymous namespace
} // namespace pdnspot
