/**
 * @file
 * The CLI parse helpers shared by every tool (tools/cli_common.hh):
 * strict locale-independent number parsing — including the
 * non-finite rejection every flag relies on — integer range
 * behavior, and the progress-heartbeat line formatting.
 */

#include <gtest/gtest.h>

#include "cli_common.hh"

namespace pdnspot
{
namespace
{

TEST(ParseDouble, AcceptsPlainNumbers)
{
    EXPECT_DOUBLE_EQ(*cli::parseDouble("3.5"), 3.5);
    EXPECT_DOUBLE_EQ(*cli::parseDouble("-0.25"), -0.25);
    EXPECT_DOUBLE_EQ(*cli::parseDouble("50"), 50.0);
    EXPECT_DOUBLE_EQ(*cli::parseDouble("1e3"), 1000.0);
    EXPECT_DOUBLE_EQ(*cli::parseDouble("0"), 0.0);
}

TEST(ParseDouble, RejectsNonFinite)
{
    // std::from_chars happily parses these; a CLI flag must not. A
    // NaN capacity sails through "<= 0" rejection (every NaN
    // comparison is false) and an infinite one passes it outright,
    // so the parse itself is where they die.
    EXPECT_FALSE(cli::parseDouble("nan").has_value());
    EXPECT_FALSE(cli::parseDouble("NaN").has_value());
    EXPECT_FALSE(cli::parseDouble("nan(ind)").has_value());
    EXPECT_FALSE(cli::parseDouble("inf").has_value());
    EXPECT_FALSE(cli::parseDouble("INF").has_value());
    EXPECT_FALSE(cli::parseDouble("-inf").has_value());
    EXPECT_FALSE(cli::parseDouble("infinity").has_value());
    EXPECT_FALSE(cli::parseDouble("1e999").has_value());
    EXPECT_FALSE(cli::parseDouble("-1e999").has_value());
}

TEST(ParseDouble, RejectsPartialAndJunk)
{
    EXPECT_FALSE(cli::parseDouble("").has_value());
    EXPECT_FALSE(cli::parseDouble("3,5").has_value());
    EXPECT_FALSE(cli::parseDouble("50J").has_value());
    EXPECT_FALSE(cli::parseDouble("watts").has_value());
    EXPECT_FALSE(cli::parseDouble(" 1").has_value());
    EXPECT_FALSE(cli::parseDouble("1 ").has_value());
    // from_chars' C grammar has no hex floats without a prefix
    // flag; "0x10" must stop at the 'x' and fail the whole-string
    // requirement rather than parse as 16 (or as 0 + junk).
    EXPECT_FALSE(cli::parseDouble("0x10").has_value());
}

TEST(ParseInt, WholeStringAndRange)
{
    EXPECT_EQ(*cli::parseInt<int>("42"), 42);
    EXPECT_EQ(*cli::parseInt<int>("-7"), -7);
    EXPECT_FALSE(cli::parseInt<int>("4.5").has_value());
    EXPECT_FALSE(cli::parseInt<int>("4x").has_value());
    EXPECT_FALSE(cli::parseInt<int>("").has_value());
    // Out of range is a parse failure, not a clamp or wrap.
    EXPECT_FALSE(cli::parseInt<int8_t>("200").has_value());
    EXPECT_FALSE(cli::parseInt<int>("99999999999999999999")
                     .has_value());
    // Unsigned targets reject signs outright.
    EXPECT_FALSE(cli::parseInt<unsigned>("-1").has_value());
    EXPECT_EQ(*cli::parseInt<uint64_t>("18446744073709551615"),
              UINT64_MAX);
}

TEST(FormatProgressLine, NormalRun)
{
    // 30 of 120 cells after 10 s: 3/s, 90 remaining, ETA 30 s.
    EXPECT_EQ(cli::formatProgressLine("tool", "cells", 30, 120,
                                      10.0),
              "tool: 30/120 cells (25%), 3 cells/s, ETA 30s");
}

TEST(FormatProgressLine, StalledRunShowsNoEta)
{
    // Nothing done yet: the rate is 0 and the ETA unknowable. The
    // old formatter printed "ETA 0s" here — the one message a
    // stalled shard must never show.
    std::string line =
        cli::formatProgressLine("tool", "cells", 0, 120, 10.0);
    EXPECT_NE(line.find("ETA --"), std::string::npos) << line;
    EXPECT_EQ(line.find("ETA 0s"), std::string::npos) << line;
}

TEST(FormatProgressLine, ZeroElapsedShowsNoEta)
{
    std::string line =
        cli::formatProgressLine("tool", "cells", 30, 120, 0.0);
    EXPECT_NE(line.find("ETA --"), std::string::npos) << line;
}

TEST(FormatProgressLine, UnknownTotalShowsPlainCount)
{
    // A zero total used to render "7/0 (100%)"; now it's a count.
    std::string line =
        cli::formatProgressLine("tool", "shards", 7, 0, 2.0);
    EXPECT_NE(line.find("7 shards"), std::string::npos) << line;
    EXPECT_EQ(line.find('%'), std::string::npos) << line;
    EXPECT_EQ(line.find("100"), std::string::npos) << line;
    EXPECT_NE(line.find("ETA --"), std::string::npos) << line;
}

} // namespace
} // namespace pdnspot
