/**
 * @file
 * Unit tests for the workload catalogs, battery profiles, and traces.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/battery_profiles.hh"
#include "workload/gfx_3dmark06.hh"
#include "workload/spec_cpu2006.hh"
#include "workload/trace.hh"
#include "workload/trace_generator.hh"
#include "workload/trace_library.hh"
#include "workload/workload.hh"

namespace pdnspot
{
namespace
{

TEST(SpecCpu2006, HasAll29Benchmarks)
{
    EXPECT_EQ(specCpu2006().size(), 29u);
    std::set<std::string> names;
    for (const Workload &w : specCpu2006())
        names.insert(w.name);
    EXPECT_EQ(names.size(), 29u); // no duplicates
    EXPECT_TRUE(names.count("433.milc"));
    EXPECT_TRUE(names.count("416.gamess"));
    EXPECT_TRUE(names.count("462.libquantum"));
}

TEST(SpecCpu2006, SortedAscendingByScalability)
{
    // Fig. 7 orders the suite by ascending performance-scalability.
    const auto &suite = specCpu2006();
    for (size_t i = 1; i < suite.size(); ++i)
        EXPECT_GE(suite[i].scalability, suite[i - 1].scalability)
            << suite[i].name;
    EXPECT_EQ(suite.front().name, "433.milc");
    EXPECT_EQ(suite.back().name, "416.gamess");
}

TEST(SpecCpu2006, ValuesInModelRanges)
{
    for (const Workload &w : specCpu2006()) {
        EXPECT_EQ(w.type, WorkloadType::SingleThread) << w.name;
        EXPECT_GE(w.ar, 0.40) << w.name;
        EXPECT_LE(w.ar, 0.80) << w.name;
        EXPECT_GT(w.scalability, 0.0) << w.name;
        EXPECT_LE(w.scalability, 1.0) << w.name;
    }
    double mean = specCpu2006MeanScalability();
    EXPECT_GT(mean, 0.6);
    EXPECT_LT(mean, 0.9);
}

TEST(Gfx3dmark06, SuiteShape)
{
    EXPECT_EQ(gfx3dmark06().size(), 6u);
    for (const Workload &w : gfx3dmark06()) {
        EXPECT_EQ(w.type, WorkloadType::Graphics) << w.name;
        EXPECT_GT(w.scalability, 0.0);
        EXPECT_LE(w.scalability, 1.0);
    }
    // The pure-graphics tests scale better than the CPU sub-tests.
    EXPECT_GT(gfx3dmark06()[0].scalability, gfx3dmark06()[4].scalability);
}

TEST(PowerVirus, HasUnitAr)
{
    Workload v = powerVirus(WorkloadType::MultiThread);
    EXPECT_DOUBLE_EQ(v.ar, 1.0);
    EXPECT_EQ(v.type, WorkloadType::MultiThread);
}

TEST(BatteryProfiles, AllValidAndComplete)
{
    EXPECT_EQ(batteryLifeWorkloads().size(), 4u);
    for (const BatteryProfile &p : batteryLifeWorkloads()) {
        EXPECT_TRUE(p.valid()) << p.name;
        EXPECT_GT(p.residency(PackageCState::C0Min), 0.0) << p.name;
    }
}

TEST(BatteryProfiles, VideoPlaybackMatchesPaperExactly)
{
    // Sec. 5: C0MIN 10%, C2 5%, C8 85%.
    BatteryProfile p = videoPlayback();
    EXPECT_DOUBLE_EQ(p.residency(PackageCState::C0Min), 0.10);
    EXPECT_DOUBLE_EQ(p.residency(PackageCState::C2), 0.05);
    EXPECT_DOUBLE_EQ(p.residency(PackageCState::C8), 0.85);
    EXPECT_DOUBLE_EQ(p.residency(PackageCState::C6), 0.0);
}

TEST(BatteryProfiles, ActiveResidencyLadder)
{
    // Sec. 7.1: 10/20/30/40% C0MIN for playback/conf/browsing/gaming.
    EXPECT_DOUBLE_EQ(videoPlayback().residency(PackageCState::C0Min),
                     0.10);
    EXPECT_DOUBLE_EQ(
        videoConferencing().residency(PackageCState::C0Min), 0.20);
    EXPECT_DOUBLE_EQ(webBrowsing().residency(PackageCState::C0Min),
                     0.30);
    EXPECT_DOUBLE_EQ(lightGaming().residency(PackageCState::C0Min),
                     0.40);
}

TEST(PhaseTrace, DurationsAccumulate)
{
    PhaseTrace t("t", {TracePhase{milliseconds(10.0)},
                       TracePhase{milliseconds(20.0)}});
    EXPECT_NEAR(inSeconds(t.totalDuration()), 0.030, 1e-12);
    EXPECT_EQ(t.phases().size(), 2u);
}

TEST(PhaseTrace, RejectsNonPositiveDurations)
{
    EXPECT_THROW(PhaseTrace("bad", {TracePhase{seconds(0.0)}}),
                 ConfigError);
}

TEST(PhaseTrace, FromBatteryProfileHonorsResidencies)
{
    PhaseTrace t = traceFromBatteryProfile(videoPlayback(),
                                           milliseconds(33.3), 10);
    EXPECT_NEAR(inSeconds(t.totalDuration()), 0.333, 1e-9);

    Time c8_time;
    for (const TracePhase &p : t.phases())
        if (p.cstate == PackageCState::C8)
            c8_time += p.duration;
    EXPECT_NEAR(c8_time / t.totalDuration(), 0.85, 1e-9);
}

TEST(TraceGenerator, Deterministic)
{
    TraceGenerator a(7), b(7);
    PhaseTrace ta = a.randomMix(50, milliseconds(5.0));
    PhaseTrace tb = b.randomMix(50, milliseconds(5.0));
    ASSERT_EQ(ta.phases().size(), tb.phases().size());
    for (size_t i = 0; i < ta.phases().size(); ++i) {
        EXPECT_EQ(ta.phases()[i].duration, tb.phases()[i].duration);
        EXPECT_EQ(ta.phases()[i].cstate, tb.phases()[i].cstate);
        EXPECT_EQ(ta.phases()[i].ar, tb.phases()[i].ar);
    }
}

TEST(TraceGenerator, SeedsProduceDifferentTraces)
{
    TraceGenerator a(1), b(2);
    PhaseTrace ta = a.randomMix(50, milliseconds(5.0));
    PhaseTrace tb = b.randomMix(50, milliseconds(5.0));
    bool any_diff = false;
    for (size_t i = 0; i < ta.phases().size(); ++i)
        any_diff |= ta.phases()[i].duration != tb.phases()[i].duration;
    EXPECT_TRUE(any_diff);
}

TEST(TraceGenerator, BurstyAlternatesActiveIdle)
{
    TraceGenerator g(3);
    PhaseTrace t = g.burstyCompute(10, milliseconds(5.0),
                                   milliseconds(20.0));
    ASSERT_EQ(t.phases().size(), 20u);
    for (size_t i = 0; i < t.phases().size(); i += 2) {
        EXPECT_EQ(t.phases()[i].cstate, PackageCState::C0);
        EXPECT_NE(t.phases()[i + 1].cstate, PackageCState::C0);
    }
}

TEST(TraceGenerator, DayInTheLifeCoversAllBehaviours)
{
    TraceGenerator g(5);
    PhaseTrace t = g.dayInTheLife();
    bool has_gfx = false, has_mt = false, has_idle = false;
    for (const TracePhase &p : t.phases()) {
        has_gfx |= p.cstate == PackageCState::C0 &&
                   p.type == WorkloadType::Graphics;
        has_mt |= p.cstate == PackageCState::C0 &&
                  p.type == WorkloadType::MultiThread;
        has_idle |= p.cstate == PackageCState::C8;
    }
    EXPECT_TRUE(has_gfx);
    EXPECT_TRUE(has_mt);
    EXPECT_TRUE(has_idle);
    EXPECT_GT(inSeconds(t.totalDuration()), 1.0);
}

TEST(TraceGenerator, ArsStayInValidBand)
{
    TraceGenerator g(9);
    PhaseTrace trace = g.randomMix(200, milliseconds(2.0));
    for (const TracePhase &p : trace.phases()) {
        EXPECT_GT(p.ar, 0.0);
        EXPECT_LE(p.ar, 1.0);
    }
}

TEST(TraceGenerator, FixedSeedReproducesIdenticalTraces)
{
    // Full-trace equality (name and every phase field) across
    // independently-constructed generators, for each trace family.
    EXPECT_EQ(TraceGenerator(21).burstyCompute(5, milliseconds(4.0),
                                               milliseconds(9.0)),
              TraceGenerator(21).burstyCompute(5, milliseconds(4.0),
                                               milliseconds(9.0)));
    EXPECT_EQ(TraceGenerator(21).dayInTheLife(),
              TraceGenerator(21).dayInTheLife());
    EXPECT_EQ(TraceGenerator(21).randomMix(40, milliseconds(3.0)),
              TraceGenerator(21).randomMix(40, milliseconds(3.0)));
}

TEST(TraceLibrary, RejectsDuplicateAndBadNames)
{
    TraceLibrary lib;
    TracePhase phase;
    phase.duration = milliseconds(1.0);
    lib.add(PhaseTrace("a-trace", {phase}));
    EXPECT_THROW(lib.add(PhaseTrace("a-trace", {phase})),
                 ConfigError);
    EXPECT_THROW(lib.add(PhaseTrace("", {phase})), ConfigError);
    EXPECT_THROW(lib.add(PhaseTrace("bad,name", {phase})),
                 ConfigError);
    EXPECT_EQ(lib.size(), 1u);
}

TEST(TraceLibrary, FindReturnsRegisteredTraces)
{
    TraceLibrary lib;
    TracePhase phase;
    phase.duration = milliseconds(1.0);
    lib.add(PhaseTrace("one", {phase}));
    ASSERT_NE(lib.find("one"), nullptr);
    EXPECT_EQ(lib.find("one")->name(), "one");
    EXPECT_EQ(lib.find("two"), nullptr);
}

TEST(TraceLibrary, GetNamesTheMissingTraceAndTheAlternatives)
{
    TraceLibrary lib;
    TracePhase phase;
    phase.duration = milliseconds(1.0);
    lib.add(PhaseTrace("one", {phase}));
    lib.add(PhaseTrace("two", {phase}));
    EXPECT_EQ(lib.get("one").name(), "one");

    try {
        lib.get("three");
        FAIL() << "lookup of an unregistered trace must throw";
    } catch (const ConfigError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("\"three\""), std::string::npos)
            << what;
        EXPECT_NE(what.find("one, two"), std::string::npos) << what;
    }
    EXPECT_THROW(TraceLibrary().get("any"), ConfigError);
}

TEST(TraceLibrary, StandardCampaignCorpusIsReproducible)
{
    TraceLibrary a = standardCampaignTraces(42);
    TraceLibrary b = standardCampaignTraces(42);

    // The acceptance campaign needs >= 8 uniquely-named traces.
    EXPECT_GE(a.size(), 8u);
    std::set<std::string> names;
    for (const std::string &n : a.names())
        EXPECT_TRUE(names.insert(n).second) << "duplicate " << n;

    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.traces()[i], b.traces()[i]);

    // A different seed must change the generator-derived traces.
    TraceLibrary c = standardCampaignTraces(43);
    EXPECT_NE(a.traces()[0], c.traces()[0]);
}

} // anonymous namespace
} // namespace pdnspot
