/**
 * @file
 * Unit tests for the on-chip regulators: IVR, LDO VR, power gate,
 * and the FlexWatts hybrid VR.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "flexwatts/hybrid_vr.hh"
#include "vr/ivr.hh"
#include "vr/ldo_vr.hh"
#include "vr/power_gate.hh"

namespace pdnspot
{
namespace
{

Ivr
ivr()
{
    return Ivr(IvrParams{.name = "ivr-test"});
}

TEST(Ivr, EfficiencyWithinTable2Band)
{
    // Table 2: measured IVR efficiency 81-88% across the operational
    // range (Vin 1.8 V, Vout 0.6-1.1 V, load currents above ~1 A).
    Ivr v = ivr();
    for (double vout : {0.6, 0.8, 1.0, 1.1}) {
        for (double iout : {1.0, 3.0, 8.0, 20.0}) {
            double eta = v.efficiency(volts(1.8), volts(vout),
                                      amps(iout));
            EXPECT_GT(eta, 0.77) << vout << "V " << iout << "A";
            EXPECT_LT(eta, 0.90) << vout << "V " << iout << "A";
        }
    }
}

TEST(Ivr, LightLoadCollapse)
{
    // The two-stage IVR PDN's battery-life weakness (Observation 3):
    // fixed losses dominate at milliwatt-class loads.
    Ivr v = ivr();
    double at_3a = v.efficiency(volts(1.8), volts(0.75), amps(3.0));
    double at_50ma = v.efficiency(volts(1.8), volts(0.75), amps(0.05));
    EXPECT_GT(at_3a, 0.8);
    EXPECT_LT(at_50ma, 0.7);
}

TEST(Ivr, HeadroomAndLimits)
{
    Ivr v = ivr();
    EXPECT_FALSE(v.canConvert(volts(1.0), volts(0.9)));
    EXPECT_THROW(v.loss(volts(1.0), volts(0.9), amps(1.0)),
                 ConfigError);
    EXPECT_THROW(v.loss(volts(1.8), volts(1.0), amps(100.0)),
                 ConfigError);
    EXPECT_THROW(v.loss(volts(1.8), volts(1.0), amps(-1.0)),
                 ConfigError);
}

TEST(Ivr, ZeroLoadBehaviour)
{
    Ivr v = ivr();
    EXPECT_DOUBLE_EQ(v.efficiency(volts(1.8), volts(1.0), amps(0.0)),
                     0.0);
    EXPECT_DOUBLE_EQ(
        inWatts(v.inputPower(volts(1.8), volts(1.0), watts(0.0))), 0.0);
}

TEST(Ldo, EfficiencyIsEq10)
{
    // Eq. 10: eta = (Vout/Vin) * Ie with Ie = 99.1%.
    LdoVr ldo(LdoParams{.name = "ldo-test"});
    EXPECT_NEAR(ldo.efficiency(volts(0.9), volts(0.5)),
                (0.5 / 0.9) * 0.991, 1e-12);
    EXPECT_NEAR(ldo.efficiency(volts(1.0), volts(0.9)),
                0.9 * 0.991, 1e-12);
}

TEST(Ldo, BypassKeepsOnlyCurrentEfficiencyLoss)
{
    LdoVr ldo(LdoParams{.name = "ldo-test"});
    EXPECT_EQ(ldo.modeFor(volts(0.9), volts(0.9)), LdoMode::Bypass);
    EXPECT_NEAR(ldo.efficiency(volts(0.9), volts(0.9)), 0.991, 1e-12);
}

TEST(Ldo, ModeSelection)
{
    LdoVr ldo(LdoParams{.name = "ldo-test"});
    EXPECT_EQ(ldo.modeFor(volts(1.0), volts(0.5)), LdoMode::Regulation);
    EXPECT_EQ(ldo.modeFor(volts(1.0), volts(0.99)), LdoMode::Bypass);
    EXPECT_EQ(ldo.modeFor(volts(1.0), volts(0.0)), LdoMode::PowerGate);
    EXPECT_EQ(toString(LdoMode::Regulation), "regulation");
    EXPECT_EQ(toString(LdoMode::Bypass), "bypass");
    EXPECT_EQ(toString(LdoMode::PowerGate), "power-gate");
}

TEST(Ldo, GatedDomainDrawsNothingButRejectsLoad)
{
    LdoVr ldo(LdoParams{.name = "ldo-test"});
    EXPECT_DOUBLE_EQ(
        inWatts(ldo.inputPower(volts(1.0), volts(0.0), watts(0.0))),
        0.0);
    EXPECT_THROW(ldo.inputPower(volts(1.0), volts(0.0), watts(1.0)),
                 ConfigError);
}

TEST(Ldo, LossMatchesInputMinusOutput)
{
    LdoVr ldo(LdoParams{.name = "ldo-test"});
    Power pout = watts(2.0);
    Power pin = ldo.inputPower(volts(1.0), volts(0.6), pout);
    EXPECT_NEAR(inWatts(ldo.loss(volts(1.0), volts(0.6), pout)),
                inWatts(pin - pout), 1e-12);
}

TEST(Ldo, RejectsBadCurrentEfficiency)
{
    EXPECT_THROW(LdoVr(LdoParams{.name = "x", .currentEfficiency = 0.0}),
                 ConfigError);
    EXPECT_THROW(LdoVr(LdoParams{.name = "x", .currentEfficiency = 1.5}),
                 ConfigError);
}

TEST(PowerGate, DropFollowsOhm)
{
    PowerGate pg(PowerGateParams{.name = "pg-test",
                                 .onResistance = milliohms(2.0)});
    EXPECT_NEAR(inMillivolts(pg.drop(amps(5.0))), 10.0, 1e-12);
    EXPECT_THROW(pg.drop(amps(-1.0)), ConfigError);
    EXPECT_GT(inWatts(pg.offLeakage()), 0.0);
}

TEST(HybridVr, RejectsModeSwitchUnderLoad)
{
    // The voltage-noise-free invariant (Sec. 6): reconfiguration only
    // while the domain is gated.
    HybridVr h("hybrid-test", IvrParams{.name = "i"},
               LdoParams{.name = "l"});
    EXPECT_EQ(h.mode(), HybridMode::IvrMode);
    EXPECT_THROW(h.setMode(HybridMode::LdoMode, /*domain_active=*/true),
                 ModelError);
    EXPECT_EQ(h.mode(), HybridMode::IvrMode);

    h.setMode(HybridMode::LdoMode, /*domain_active=*/false);
    EXPECT_EQ(h.mode(), HybridMode::LdoMode);

    // Re-setting the same mode under load is a no-op, not an error.
    EXPECT_NO_THROW(h.setMode(HybridMode::LdoMode, true));
}

TEST(HybridVr, ModeSelectsConversionModel)
{
    HybridVr h("hybrid-test", IvrParams{.name = "i"},
               LdoParams{.name = "l"});
    // IVR mode from 1.8 V.
    Power ivr_in = h.inputPower(volts(1.8), volts(0.9), watts(3.0));
    h.setMode(HybridMode::LdoMode, false);
    // LDO mode from a near-bypass input: far less loss.
    Power ldo_in = h.inputPower(volts(0.95), volts(0.9), watts(3.0));
    EXPECT_LT(inWatts(ldo_in), inWatts(ivr_in));
    EXPECT_NEAR(h.efficiency(volts(0.95), volts(0.9), watts(3.0)),
                (0.9 / 0.95) * 0.991, 1e-9);
}

TEST(HybridVr, AreaOverheadMatchesPaper)
{
    // Sec. 6: ~0.041 mm^2 at 14 nm.
    EXPECT_NEAR(inSquareMillimetres(HybridVr::ldoModeAreaOverhead()),
                0.041, 1e-12);
}

} // anonymous namespace
} // namespace pdnspot
