/**
 * @file
 * The "launch" spec block (src/config/launch_config.hh): defaults,
 * overrides, range validation, unknown-key rejection with
 * positions, and the contract that a campaign spec carrying a
 * launch block still binds under the plain campaign loader.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "config/campaign_config.hh"
#include "config/launch_config.hh"

namespace pdnspot
{
namespace
{

LaunchSpec
fromText(const std::string &text)
{
    return launchSpecFromJson(parseJson(text, "launch_test"));
}

TEST(LaunchConfig, DefaultsWhenAbsent)
{
    LaunchSpec spec = fromText("{\"pdns\": \"all\"}");
    EXPECT_EQ(spec.shards, 4u);
    EXPECT_EQ(spec.jobs, 0u);
    EXPECT_DOUBLE_EQ(spec.timeoutS, 0.0);
    EXPECT_EQ(spec.retries, 2u);
    EXPECT_DOUBLE_EQ(spec.backoffMs, 200.0);
    EXPECT_EQ(spec.seed, 0u);
    // A non-object root (hand-built JSON) also means defaults.
    EXPECT_EQ(fromText("[1]").shards, 4u);
}

TEST(LaunchConfig, BindsEveryKnob)
{
    LaunchSpec spec = fromText(R"({"launch": {
        "shards": 8, "jobs": 3, "timeout_s": 90.5,
        "retries": 5, "backoff_ms": 50.0, "seed": 1234}})");
    EXPECT_EQ(spec.shards, 8u);
    EXPECT_EQ(spec.jobs, 3u);
    EXPECT_DOUBLE_EQ(spec.timeoutS, 90.5);
    EXPECT_EQ(spec.retries, 5u);
    EXPECT_DOUBLE_EQ(spec.backoffMs, 50.0);
    EXPECT_EQ(spec.seed, 1234u);
}

TEST(LaunchConfig, RejectsUnknownKeys)
{
    try {
        fromText("{\"launch\": {\"shard\": 4}}");
        FAIL() << "unknown launch key accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "unknown \"launch\" key \"shard\""),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("shards"),
                  std::string::npos)
            << e.what();
    }
}

TEST(LaunchConfig, RejectsOutOfRangeValues)
{
    EXPECT_THROW(fromText("{\"launch\": {\"shards\": 0}}"),
                 ConfigError);
    EXPECT_THROW(fromText("{\"launch\": {\"shards\": 2.5}}"),
                 ConfigError);
    EXPECT_THROW(fromText("{\"launch\": {\"timeout_s\": -1}}"),
                 ConfigError);
    EXPECT_THROW(fromText("{\"launch\": {\"backoff_ms\": -0.5}}"),
                 ConfigError);
    EXPECT_THROW(fromText("{\"launch\": {\"retries\": -1}}"),
                 ConfigError);
}

TEST(LaunchConfig, CampaignLoaderIgnoresLaunchBlock)
{
    // The same annotated spec must still bind as a campaign spec —
    // pdnspot_campaign runs launch-annotated specs unchanged.
    std::string text = R"({
        "traces": [{"library": "bursty-compute", "seed": 7}],
        "platforms": ["fanless-tablet-4w"],
        "pdns": ["IVR"],
        "launch": {"shards": 2, "retries": 1}
    })";
    CampaignSpec campaign = loadCampaignSpec(text, "launch_test");
    EXPECT_EQ(campaign.cellCount(), 1u);
    LaunchSpec launch = fromText(text);
    EXPECT_EQ(launch.shards, 2u);
    EXPECT_EQ(launch.retries, 1u);
}

} // namespace
} // namespace pdnspot
