/**
 * @file
 * Unit and property tests across the five PDN topologies.
 */

#include <memory>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "flexwatts/pdn_factory.hh"
#include "pdn/ivr_pdn.hh"
#include "pdn/ldo_pdn.hh"
#include "pdn/mbvr_pdn.hh"
#include "power/operating_point.hh"

namespace pdnspot
{
namespace
{

class PdnTopologies : public ::testing::Test
{
  protected:
    PlatformState
    state(double tdp_w, WorkloadType type = WorkloadType::MultiThread,
          double ar = 0.56, PackageCState cs = PackageCState::C0)
    {
        OperatingPointModel::Query q;
        q.tdp = watts(tdp_w);
        q.type = type;
        q.ar = ar;
        q.cstate = cs;
        return opm.build(q);
    }

    OperatingPointModel opm;
};

TEST_F(PdnTopologies, FactoryProducesAllKinds)
{
    for (PdnKind kind : allPdnKinds) {
        auto pdn = makePdn(kind);
        ASSERT_NE(pdn, nullptr);
        EXPECT_EQ(pdn->kind(), kind);
        EXPECT_EQ(pdn->name(), toString(kind));
    }
}

TEST_F(PdnTopologies, KindNamesRoundTripFromOneSourceOfTruth)
{
    for (PdnKind kind : allPdnKinds) {
        EXPECT_EQ(pdnKindFromString(pdnKindToString(kind)), kind);
        // The toString overload is an alias, not a second spelling.
        EXPECT_EQ(toString(kind), pdnKindToString(kind));
    }
    EXPECT_THROW(pdnKindFromString("ivr"), ConfigError);
    EXPECT_THROW(pdnKindFromString(""), ConfigError);
}

TEST_F(PdnTopologies, EnergyConservationInvariant)
{
    // input = nominal + sum(losses) must hold exactly for every
    // topology at every operating point.
    for (PdnKind kind : allPdnKinds) {
        auto pdn = makePdn(kind);
        for (double tdp : {4.0, 18.0, 50.0}) {
            for (WorkloadType type :
                 {WorkloadType::SingleThread, WorkloadType::MultiThread,
                  WorkloadType::Graphics}) {
                EteeResult r = pdn->evaluate(state(tdp, type));
                EXPECT_NEAR(inWatts(r.inputPower),
                            inWatts(r.nominalPower + r.loss.total()),
                            1e-9)
                    << toString(kind) << " " << tdp << "W "
                    << toString(type);
            }
        }
    }
}

TEST_F(PdnTopologies, EteeInPlausibleBand)
{
    for (PdnKind kind : allPdnKinds) {
        auto pdn = makePdn(kind);
        for (double tdp : {4.0, 10.0, 25.0, 50.0}) {
            double etee = pdn->evaluate(state(tdp)).etee();
            EXPECT_GT(etee, 0.40) << toString(kind) << " " << tdp;
            EXPECT_LT(etee, 0.95) << toString(kind) << " " << tdp;
        }
    }
}

TEST_F(PdnTopologies, IvrReducesChipInputCurrent)
{
    // Fig. 5: the MBVR PDN's chip input current is ~2x the IVR PDN's
    // because the IVR brings 1.8 V into the package.
    IvrPdn ivr;
    MbvrPdn mbvr;
    PlatformState s = state(18.0);
    double ratio = mbvr.evaluate(s).chipInputCurrent /
                   ivr.evaluate(s).chipInputCurrent;
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.8);
}

TEST_F(PdnTopologies, LoadLineImpedancesMatchTable2)
{
    IvrPdn ivr;
    MbvrPdn mbvr;
    LdoPdn ldo;
    PlatformState s = state(18.0);
    EXPECT_NEAR(inMilliohms(ivr.evaluate(s).computeLoadLine), 1.0,
                1e-9);
    EXPECT_NEAR(inMilliohms(mbvr.evaluate(s).computeLoadLine), 2.5,
                1e-9);
    EXPECT_NEAR(inMilliohms(ldo.evaluate(s).computeLoadLine), 1.25,
                1e-9);
}

TEST_F(PdnTopologies, Observation1LowTdpFavorsMbvrLdo)
{
    // Sec. 5 Observation 1: at 4 W the IVR PDN trails MBVR and LDO;
    // at 50 W it leads both.
    IvrPdn ivr;
    MbvrPdn mbvr;
    LdoPdn ldo;

    PlatformState low = state(4.0);
    EXPECT_LT(ivr.evaluate(low).etee() + 0.04, mbvr.evaluate(low).etee());
    EXPECT_LT(ivr.evaluate(low).etee() + 0.04, ldo.evaluate(low).etee());

    PlatformState high = state(50.0);
    EXPECT_GT(ivr.evaluate(high).etee(), mbvr.evaluate(high).etee());
    EXPECT_GT(ivr.evaluate(high).etee(), ldo.evaluate(high).etee());
}

TEST_F(PdnTopologies, Observation1CrossoverBetween4And50)
{
    // The IVR-vs-MBVR ETEE crossover falls inside the TDP range,
    // near 18 W for CPU workloads.
    IvrPdn ivr;
    MbvrPdn mbvr;
    double prev_gap = 0.0;
    bool crossed = false;
    for (double tdp = 4.0; tdp <= 50.0; tdp += 2.0) {
        PlatformState s = state(tdp);
        double gap = ivr.evaluate(s).etee() - mbvr.evaluate(s).etee();
        if (prev_gap < 0.0 && gap >= 0.0) {
            crossed = true;
            EXPECT_GT(tdp, 10.0);
            EXPECT_LT(tdp, 26.0);
        }
        prev_gap = gap;
    }
    EXPECT_TRUE(crossed);
}

TEST_F(PdnTopologies, Observation2EteeRisesWithArForBoardPdns)
{
    // Fig. 4: MBVR/LDO ETEE increases with AR (load-line guardband
    // shrinks); the effect is most pronounced at high TDP.
    MbvrPdn mbvr;
    LdoPdn ldo;
    for (double tdp : {18.0, 50.0}) {
        double m_lo = mbvr.evaluate(state(tdp, WorkloadType::MultiThread,
                                          0.4))
                          .etee();
        double m_hi = mbvr.evaluate(state(tdp, WorkloadType::MultiThread,
                                          0.8))
                          .etee();
        EXPECT_GT(m_hi, m_lo) << tdp;
        double l_lo = ldo.evaluate(state(tdp, WorkloadType::MultiThread,
                                         0.4))
                          .etee();
        double l_hi = ldo.evaluate(state(tdp, WorkloadType::MultiThread,
                                         0.8))
                          .etee();
        EXPECT_GT(l_hi, l_lo) << tdp;
    }
}

TEST_F(PdnTopologies, Observation2LdoSuffersOnGraphics)
{
    // Sec. 5 Observation 2: the LDO PDN loses efficiency on graphics
    // workloads (core LDOs regulate far below the GFX-driven V_IN),
    // falling below MBVR at mid/high TDPs.
    MbvrPdn mbvr;
    LdoPdn ldo;
    {
        PlatformState gfx = state(18.0, WorkloadType::Graphics);
        EXPECT_LT(ldo.evaluate(gfx).etee(), mbvr.evaluate(gfx).etee());
    }
    // ... while it beats MBVR on CPU-intensive work.
    PlatformState cpu = state(18.0, WorkloadType::MultiThread);
    EXPECT_GT(ldo.evaluate(cpu).etee(), mbvr.evaluate(cpu).etee());
}

TEST_F(PdnTopologies, Observation3IvrCollapsesInIdleStates)
{
    // Fig. 4j: in package C-states the IVR PDN's two-stage conversion
    // is far less efficient than MBVR/LDO.
    IvrPdn ivr;
    MbvrPdn mbvr;
    LdoPdn ldo;
    for (PackageCState cs :
         {PackageCState::C2, PackageCState::C6, PackageCState::C8}) {
        PlatformState s = state(15.0, WorkloadType::BatteryLife, 0.3,
                                cs);
        double e_ivr = ivr.evaluate(s).etee();
        EXPECT_GT(mbvr.evaluate(s).etee(), e_ivr + 0.05)
            << toString(cs);
        EXPECT_GT(ldo.evaluate(s).etee(), e_ivr + 0.05)
            << toString(cs);
    }
}

TEST_F(PdnTopologies, Fig5LossBreakdownShapes)
{
    // At 4 W, VR inefficiency dominates and the IVR PDN pays the
    // two-stage premium; at 50 W, MBVR's compute conduction loss
    // explodes while IVR's stays small.
    IvrPdn ivr;
    MbvrPdn mbvr;

    EteeResult ivr4 = ivr.evaluate(state(4.0));
    EteeResult mbvr4 = mbvr.evaluate(state(4.0));
    EXPECT_GT(ivr4.lossFraction(ivr4.loss.vrLoss),
              mbvr4.lossFraction(mbvr4.loss.vrLoss) + 0.03);

    EteeResult ivr50 = ivr.evaluate(state(50.0));
    EteeResult mbvr50 = mbvr.evaluate(state(50.0));
    EXPECT_GT(mbvr50.lossFraction(mbvr50.loss.conductionCompute),
              3.0 * ivr50.lossFraction(ivr50.loss.conductionCompute));
    // MBVR compute conduction grows steeply with TDP.
    EteeResult mbvr18 = mbvr.evaluate(state(18.0));
    EXPECT_GT(mbvr50.lossFraction(mbvr50.loss.conductionCompute),
              mbvr18.lossFraction(mbvr18.loss.conductionCompute));
}

TEST_F(PdnTopologies, IdleRailsPowerDown)
{
    // In C8 only SA/IO draw; PDNs with dedicated uncore rails shut
    // the compute rail entirely.
    PlatformState s = state(15.0, WorkloadType::BatteryLife, 0.3,
                            PackageCState::C8);
    for (PdnKind kind : allPdnKinds) {
        auto pdn = makePdn(kind);
        EteeResult r = pdn->evaluate(s);
        EXPECT_NEAR(inWatts(r.nominalPower), 0.13, 0.01)
            << toString(kind);
        EXPECT_LT(inWatts(r.inputPower), 0.35) << toString(kind);
    }
}

TEST_F(PdnTopologies, OffChipRailCounts)
{
    // Fig. 1: IVR exposes one off-chip rail (V_IN); MBVR four;
    // LDO three; I+MBVR and FlexWatts three.
    PlatformState peak = state(50.0);
    EXPECT_EQ(makePdn(PdnKind::IVR)->offChipRails(peak).size(), 1u);
    EXPECT_EQ(makePdn(PdnKind::MBVR)->offChipRails(peak).size(), 4u);
    EXPECT_EQ(makePdn(PdnKind::LDO)->offChipRails(peak).size(), 3u);
    EXPECT_EQ(makePdn(PdnKind::IplusMBVR)->offChipRails(peak).size(),
              3u);
    EXPECT_EQ(makePdn(PdnKind::FlexWatts)->offChipRails(peak).size(),
              3u);
}

TEST_F(PdnTopologies, LdoInputRailCarriesMoreCurrentThanIvrs)
{
    // The LDO V_IN runs at ~1 V instead of 1.8 V, so its Iccmax is
    // far higher for the same compute power.
    PlatformState peak = state(50.0);
    auto ldo_rails = makePdn(PdnKind::LDO)->offChipRails(peak);
    auto ivr_rails = makePdn(PdnKind::IVR)->offChipRails(peak);
    EXPECT_GT(inAmps(ldo_rails[0].iccMax),
              1.3 * inAmps(ivr_rails[0].iccMax));
}

/** Property sweep: invariants hold over a broad operating grid. */
struct GridParam
{
    PdnKind kind;
    double tdp;
    WorkloadType type;
    double ar;
};

class PdnGrid : public ::testing::TestWithParam<GridParam>
{
};

TEST_P(PdnGrid, InvariantsHold)
{
    const GridParam &p = GetParam();
    OperatingPointModel opm;
    OperatingPointModel::Query q;
    q.tdp = watts(p.tdp);
    q.type = p.type;
    q.ar = p.ar;
    PlatformState s = opm.build(q);

    auto pdn = makePdn(p.kind);
    EteeResult r = pdn->evaluate(s);

    EXPECT_GT(r.inputPower, r.nominalPower);
    EXPECT_NEAR(inWatts(r.inputPower),
                inWatts(r.nominalPower + r.loss.total()), 1e-9);
    EXPECT_GE(inWatts(r.loss.vrLoss), 0.0);
    EXPECT_GE(inWatts(r.loss.conductionCompute), 0.0);
    EXPECT_GE(inWatts(r.loss.conductionUncore), 0.0);
    EXPECT_GE(inWatts(r.loss.other), 0.0);
    EXPECT_GT(inAmps(r.chipInputCurrent), 0.0);
    EXPECT_GT(r.etee(), 0.3);
    EXPECT_LT(r.etee(), 1.0);
}

std::vector<GridParam>
gridParams()
{
    std::vector<GridParam> params;
    for (PdnKind kind : allPdnKinds)
        for (double tdp : {4.0, 10.0, 25.0, 50.0})
            for (WorkloadType type :
                 {WorkloadType::SingleThread, WorkloadType::MultiThread,
                  WorkloadType::Graphics})
                for (double ar : {0.4, 0.56, 0.8})
                    params.push_back({kind, tdp, type, ar});
    return params;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PdnGrid, ::testing::ValuesIn(gridParams()),
    [](const ::testing::TestParamInfo<GridParam> &info) {
        const GridParam &p = info.param;
        std::string name = toString(p.kind) + "_" +
                           std::to_string(int(p.tdp)) + "W_" +
                           toString(p.type) + "_ar" +
                           std::to_string(int(p.ar * 100));
        for (char &c : name)
            if (c == '+' || c == '-')
                c = '_';
        return name;
    });

} // anonymous namespace
} // namespace pdnspot
