/**
 * @file
 * Tests for the observability layer (src/obs): the metrics registry
 * and its thread-buffer merge protocol, the span recorder's B/E
 * balance guarantees under nesting/drops/open spans, the swappable
 * log sink, and the run-report document (provenance hash and the
 * golden-file canonicalization).
 */

#include <cstdlib>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "campaign/campaign_engine.hh"
#include "common/logging.hh"
#include "config/json.hh"
#include "obs/metrics.hh"
#include "obs/run_report.hh"
#include "obs/span_trace.hh"
#include "pdnspot/platform.hh"
#include "workload/trace_source.hh"

namespace pdnspot
{
namespace
{

JsonValue
parse(const std::string &text)
{
    return parseJson(text, "test document");
}

// ---------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------

TEST(MetricsRegistryTest, WellKnownMetricsPreRegistered)
{
    MetricsRegistry registry;
    EXPECT_EQ(registry.metricCount(),
              static_cast<size_t>(Metric::Count));
    EXPECT_STREQ(metricName(Metric::CampaignCells),
                 "campaign.cells");
    EXPECT_STREQ(metricName(Metric::TraceResolveMicros),
                 "trace.resolve_us");
    EXPECT_EQ(metricKind(Metric::CampaignCells),
              MetricKind::Counter);
    EXPECT_EQ(metricKind(Metric::CampaignCellMicros),
              MetricKind::Histogram);
    EXPECT_EQ(metricKind(Metric::RunnerThreads), MetricKind::Gauge);

    // Registration order is the enum order, so the enum value is
    // the metric id.
    std::vector<MetricSnapshot> snap = registry.snapshot();
    ASSERT_EQ(snap.size(), static_cast<size_t>(Metric::Count));
    EXPECT_EQ(snap[static_cast<size_t>(Metric::MemoHits)].name,
              "memo.hits");
}

TEST(MetricsRegistryTest, CounterAccumulatesThroughHelpers)
{
    MetricsRegistry registry;
    {
        MetricsInstallation install(registry);
        EXPECT_EQ(MetricsRegistry::current(), &registry);
        metricAdd(Metric::CampaignCells);
        metricAdd(Metric::CampaignCells, 4);
        // Buffered: nothing merged until the thread flushes.
        EXPECT_EQ(registry.counterValue(Metric::CampaignCells), 0u);
        MetricsRegistry::flushThread();
        EXPECT_EQ(registry.counterValue(Metric::CampaignCells), 5u);
    }
    EXPECT_EQ(MetricsRegistry::current(), nullptr);
}

TEST(MetricsRegistryTest, HelpersAreNoOpsWhileUninstalled)
{
    MetricsRegistry registry;
    metricAdd(Metric::CampaignCells, 100);
    metricObserve(Metric::CampaignCellMicros, 3.0);
    metricSet(Metric::RunnerThreads, 8.0);
    MetricsRegistry::flushThread();
    {
        MetricsInstallation install(registry);
        MetricsRegistry::flushThread();
    }
    for (const MetricSnapshot &m : registry.snapshot()) {
        EXPECT_EQ(m.count, 0u) << m.name;
        EXPECT_EQ(m.value, 0.0) << m.name;
    }
}

TEST(MetricsRegistryTest, GaugeWritesThroughWithoutFlush)
{
    MetricsRegistry registry;
    MetricsInstallation install(registry);
    metricSet(Metric::RunnerThreads, 6.0);
    MetricSnapshot gauge = registry.snapshot()[static_cast<size_t>(
        Metric::RunnerThreads)];
    EXPECT_EQ(gauge.kind, MetricKind::Gauge);
    EXPECT_EQ(gauge.value, 6.0);
}

TEST(MetricsRegistryTest, HistogramBucketsCountSumMinMax)
{
    MetricsRegistry registry;
    MetricsInstallation install(registry);
    // Bucket 0 is (-inf, 1); bucket i covers [2^(i-1), 2^i).
    metricObserve(Metric::CampaignCellMicros, 0.5);    // bucket 0
    metricObserve(Metric::CampaignCellMicros, 1.0);    // bucket 1
    metricObserve(Metric::CampaignCellMicros, 3.0);    // bucket 2
    metricObserve(Metric::CampaignCellMicros, 1000.0); // bucket 10
    MetricsRegistry::flushThread();

    MetricSnapshot h = registry.snapshot()[static_cast<size_t>(
        Metric::CampaignCellMicros)];
    EXPECT_EQ(h.kind, MetricKind::Histogram);
    EXPECT_EQ(h.count, 4u);
    EXPECT_DOUBLE_EQ(h.value, 1004.5);
    EXPECT_DOUBLE_EQ(h.min, 0.5);
    EXPECT_DOUBLE_EQ(h.max, 1000.0);
    // Trailing zero buckets are trimmed from the snapshot.
    ASSERT_EQ(h.buckets.size(), 11u);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 1u);
    EXPECT_EQ(h.buckets[2], 1u);
    EXPECT_EQ(h.buckets[10], 1u);
    EXPECT_EQ(h.buckets[5], 0u);
}

TEST(MetricsRegistryTest, WorkerThreadBuffersMergeOnFlush)
{
    MetricsRegistry registry;
    MetricsInstallation install(registry);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < 100; ++i)
                metricAdd(Metric::CampaignCells);
            MetricsRegistry::flushThread();
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(registry.counterValue(Metric::CampaignCells), 400u);
}

TEST(MetricsRegistryTest, ReinstallationRetargetsNewIncrements)
{
    MetricsRegistry first;
    MetricsRegistry second;
    {
        MetricsInstallation install(first);
        metricAdd(Metric::CampaignCells, 2);
        MetricsRegistry::flushThread();
        {
            // A newer installation shadows; the inner scope's
            // increments land in `second` only.
            MetricsInstallation shadow(second);
            metricAdd(Metric::CampaignCells, 7);
            MetricsRegistry::flushThread();
        }
        metricAdd(Metric::CampaignCells, 1);
        MetricsRegistry::flushThread();
    }
    EXPECT_EQ(first.counterValue(Metric::CampaignCells), 3u);
    EXPECT_EQ(second.counterValue(Metric::CampaignCells), 7u);
}

TEST(MetricsRegistryTest, RegisterMetricIsIdempotentByName)
{
    MetricsRegistry registry;
    size_t id =
        registry.registerMetric("test.custom", MetricKind::Counter);
    EXPECT_EQ(
        registry.registerMetric("test.custom", MetricKind::Counter),
        id);
    EXPECT_EQ(registry.metricCount(),
              static_cast<size_t>(Metric::Count) + 1);
    // Same name, different kind: caller bug.
    EXPECT_THROW(
        registry.registerMetric("test.custom", MetricKind::Gauge),
        ModelError);
}

TEST(MetricsRegistryTest, KindMismatchPanics)
{
    MetricsRegistry registry;
    MetricsInstallation install(registry);
    EXPECT_THROW(registry.add(static_cast<size_t>(
                     Metric::RunnerThreads)),
                 ModelError);
    EXPECT_THROW(registry.set(static_cast<size_t>(
                                  Metric::CampaignCells),
                              1.0),
                 ModelError);
    EXPECT_THROW(
        registry.counterValue(Metric::CampaignCellMicros),
        ModelError);
}

TEST(MetricsRegistryTest, CampaignStatsSnapshotProjectsCounters)
{
    MetricsRegistry registry;
    MetricsInstallation install(registry);
    metricAdd(Metric::CampaignCells, 12);
    metricAdd(Metric::CampaignPhases, 240);
    metricAdd(Metric::MemoProbes, 100);
    metricAdd(Metric::MemoHits, 75);
    metricAdd(Metric::MemoStateBuilds, 25);
    metricAdd(Metric::MemoPdnEvaluations, 50);
    MetricsRegistry::flushThread();

    CampaignRunStats stats = campaignStatsSnapshot(registry);
    EXPECT_EQ(stats.cells, 12u);
    EXPECT_EQ(stats.phases, 240u);
    EXPECT_EQ(stats.memoProbes, 100u);
    EXPECT_EQ(stats.memoHits, 75u);
    EXPECT_EQ(stats.memoMisses(), 25u);
    EXPECT_EQ(stats.stateBuilds, 25u);
    EXPECT_EQ(stats.pdnEvaluations, 50u);
    EXPECT_DOUBLE_EQ(stats.memoHitRate(), 0.75);
}

// A campaign run with a caller-installed registry banks its activity
// there, and the CSV rows are identical to an uninstrumented run —
// the zero-perturbation half of the observability contract.
TEST(MetricsRegistryTest, EngineReportsIntoInstalledRegistry)
{
    TraceGeneratorSpec mix;
    mix.kind = "random-mix";
    mix.seed = 7;
    mix.phases = 6;
    mix.meanPhaseLen = milliseconds(4.0);

    CampaignSpec spec;
    spec.traces.push_back(TraceSpec::generator(mix));
    spec.platforms = {ultraportablePreset()};
    spec.pdns = {PdnKind::IVR, PdnKind::FlexWatts};
    spec.mode = SimMode::Static;

    ParallelRunner serial(1);
    CampaignEngine engine(serial);

    std::ostringstream plainCsv;
    {
        CampaignCsvSink sink(plainCsv);
        engine.run(spec, sink);
    }

    MetricsRegistry registry;
    std::ostringstream observedCsv;
    CampaignRunStats stats;
    {
        MetricsInstallation install(registry);
        CampaignCsvSink sink(observedCsv);
        engine.run(spec, sink, &stats);
    }

    EXPECT_EQ(observedCsv.str(), plainCsv.str());
    EXPECT_EQ(stats.cells, 2u);
    EXPECT_GT(stats.phases, 0u);
    EXPECT_EQ(registry.counterValue(Metric::CampaignCells), 2u);
    EXPECT_GE(registry.counterValue(Metric::CampaignChunks), 1u);
    EXPECT_EQ(registry.counterValue(Metric::TraceResolves), 1u);
    EXPECT_EQ(registry.counterValue(Metric::SimRunsStatic), 2u);
}

// ---------------------------------------------------------------
// SpanRecorder
// ---------------------------------------------------------------

/** B/E phase counts of a trace-event document. */
std::pair<size_t, size_t>
phaseCounts(const JsonValue &doc)
{
    size_t begins = 0, ends = 0;
    const JsonValue *events = doc.find("traceEvents");
    if (!events)
        return {0, 0};
    for (const JsonValue &e : events->items()) {
        const std::string &ph = e.find("ph")->asString();
        if (ph == "B")
            ++begins;
        else if (ph == "E")
            ++ends;
    }
    return {begins, ends};
}

TEST(SpanRecorderTest, RecordsBalancedNestedSpans)
{
    SpanRecorder recorder;
    {
        SpanInstallation install(recorder);
        SpanScope outer("outer", "test");
        {
            SpanScope inner("inner", "test");
        }
    }
    EXPECT_EQ(recorder.eventCount(), 4u);
    EXPECT_EQ(recorder.droppedSpans(), 0u);

    JsonValue doc = parse(recorder.writeTraceEvents());
    auto [begins, ends] = phaseCounts(doc);
    EXPECT_EQ(begins, 2u);
    EXPECT_EQ(ends, 2u);

    // Inner closes before outer; per-thread timestamps are
    // monotonic.
    const std::vector<JsonValue> &events =
        doc.find("traceEvents")->items();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].find("name")->asString(), "outer");
    EXPECT_EQ(events[1].find("name")->asString(), "inner");
    double ts = -1.0;
    for (const JsonValue &e : events) {
        EXPECT_GE(e.find("ts")->asNumber(), ts);
        ts = e.find("ts")->asNumber();
    }
}

TEST(SpanRecorderTest, ScopesAreNoOpsWhileUninstalled)
{
    SpanRecorder recorder;
    {
        SpanScope scope("ignored", "test");
    }
    EXPECT_EQ(recorder.eventCount(), 0u);
}

TEST(SpanRecorderTest, OpenSpansAreSkippedButNestedOnesKept)
{
    SpanRecorder recorder;
    {
        SpanInstallation install(recorder);
        recorder.begin("left-open", "test");
        {
            SpanScope closed("closed", "test");
        }
        // "left-open" never ends: serialization must skip its B
        // while keeping the closed child pair balanced.
    }
    JsonValue doc = parse(recorder.writeTraceEvents());
    auto [begins, ends] = phaseCounts(doc);
    EXPECT_EQ(begins, 1u);
    EXPECT_EQ(ends, 1u);
    EXPECT_EQ(doc.find("traceEvents")
                  ->items()[0]
                  .find("name")
                  ->asString(),
              "closed");
}

TEST(SpanRecorderTest, FullBufferDropsWholeSpans)
{
    // Capacity 4: two whole spans fit, the rest drop — admission
    // reserves the end slot, so output stays balanced.
    SpanRecorder recorder(4);
    {
        SpanInstallation install(recorder);
        for (int i = 0; i < 10; ++i) {
            SpanScope scope("span", "test");
        }
    }
    EXPECT_EQ(recorder.eventCount(), 4u);
    EXPECT_EQ(recorder.droppedSpans(), 8u);
    auto [begins, ends] =
        phaseCounts(parse(recorder.writeTraceEvents()));
    EXPECT_EQ(begins, 2u);
    EXPECT_EQ(ends, 2u);
}

TEST(SpanRecorderTest, DroppedNestedBeginsSwallowTheirEnds)
{
    // Capacity 4 admits A and B; C drops. C's end must not close B.
    SpanRecorder recorder(4);
    {
        SpanInstallation install(recorder);
        recorder.begin("a", "test");
        recorder.begin("b", "test");
        recorder.begin("c", "test"); // dropped: 2 + 2 + 2 > 4
        recorder.end();              // closes dropped c
        recorder.end();              // closes b
        recorder.end();              // closes a
    }
    EXPECT_EQ(recorder.eventCount(), 4u);
    EXPECT_EQ(recorder.droppedSpans(), 1u);
    auto [begins, ends] =
        phaseCounts(parse(recorder.writeTraceEvents()));
    EXPECT_EQ(begins, 2u);
    EXPECT_EQ(ends, 2u);
}

TEST(SpanRecorderTest, ThreadsGetDenseTids)
{
    SpanRecorder recorder;
    {
        SpanInstallation install(recorder);
        std::thread worker([] {
            SpanScope scope("worker-span", "test");
        });
        worker.join();
        SpanScope scope("main-span", "test");
    }
    JsonValue doc = parse(recorder.writeTraceEvents());
    const std::vector<JsonValue> &events =
        doc.find("traceEvents")->items();
    ASSERT_EQ(events.size(), 4u);
    std::vector<double> tids;
    for (const JsonValue &e : events)
        tids.push_back(e.find("tid")->asNumber());
    EXPECT_NE(tids[0], tids[2]);
    for (double tid : tids)
        EXPECT_GE(tid, 1.0);
}

// ---------------------------------------------------------------
// Logging sink and threshold
// ---------------------------------------------------------------

TEST(LoggingTest, ScopedLogCaptureCollectsBySeverity)
{
    ScopedLogCapture capture;
    warn("memo disabled for this run");
    inform("wrote 10 rows");
    inform("another note");

    ASSERT_EQ(capture.entries().size(), 3u);
    EXPECT_EQ(capture.entries()[0].severity, LogLevel::Warn);
    EXPECT_EQ(capture.entries()[0].message,
              "memo disabled for this run");
    EXPECT_EQ(capture.count(LogLevel::Warn), 1u);
    EXPECT_EQ(capture.count(LogLevel::Info), 2u);
    EXPECT_EQ(capture.count(LogLevel::Info, "rows"), 1u);
    EXPECT_EQ(capture.count(LogLevel::Warn, "rows"), 0u);
}

TEST(LoggingTest, ThresholdFiltersBeforeTheSink)
{
    ScopedLogCapture capture;
    LogLevel previous = setLogThreshold(LogLevel::Warn);
    inform("dropped");
    warn("kept");
    setLogThreshold(LogLevel::Silent);
    warn("also dropped");
    setLogThreshold(previous);

    EXPECT_EQ(capture.count(LogLevel::Info), 0u);
    EXPECT_EQ(capture.count(LogLevel::Warn), 1u);
    EXPECT_EQ(capture.count(LogLevel::Warn, "kept"), 1u);
}

TEST(LoggingTest, LogLevelNamesRoundTrip)
{
    EXPECT_STREQ(toString(LogLevel::Info), "info");
    EXPECT_STREQ(toString(LogLevel::Warn), "warn");
    EXPECT_STREQ(toString(LogLevel::Silent), "silent");
    EXPECT_EQ(logLevelFromString("info"), LogLevel::Info);
    EXPECT_EQ(logLevelFromString("warn"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromString("silent"), LogLevel::Silent);
    EXPECT_THROW(logLevelFromString("debug"), ConfigError);
}

// ---------------------------------------------------------------
// Run reports
// ---------------------------------------------------------------

TEST(RunReportTest, Fnv1a64KnownAnswers)
{
    // FNV-1a 64 test vectors: offset basis for "", and the published
    // hashes of "a" and "foobar".
    EXPECT_EQ(fnv1a64Hex(""), "cbf29ce484222325");
    EXPECT_EQ(fnv1a64Hex("a"), "af63dc4c8601ec8c");
    EXPECT_EQ(fnv1a64Hex("foobar"), "85944171f73967e8");
}

RunReportInputs
sampleInputs(const CampaignSpec &spec,
             const MetricsRegistry &registry)
{
    RunReportInputs in;
    in.specPath = "/tmp/example.json";
    in.specText = "{\"traces\": []}";
    in.specEcho = parse(in.specText);
    in.spec = &spec;
    in.threads = 4;
    in.shardIndex = 2;
    in.shardCount = 3;
    in.firstCell = 10;
    in.endCell = 20;
    in.rows = 10;
    in.wallSeconds = 1.25;
    in.metrics = &registry;
    return in;
}

TEST(RunReportTest, ReportCarriesProvenanceAndMetrics)
{
    CampaignSpec spec;
    spec.traces.push_back(TraceSpec::library("bursty-compute", 3));
    spec.platforms = {ultraportablePreset()};
    spec.pdns = {PdnKind::IVR};

    MetricsRegistry registry;
    {
        MetricsInstallation install(registry);
        metricAdd(Metric::CampaignCells, 10);
        metricObserve(Metric::CampaignCellMicros, 2.0);
        MetricsRegistry::flushThread();
    }

    JsonValue report =
        buildRunReport(sampleInputs(spec, registry));
    EXPECT_EQ(report.find("schema")->asString(),
              "pdnspot-report-1");
    EXPECT_EQ(report.find("tool")->find("name")->asString(),
              "pdnspot_campaign");
    EXPECT_EQ(report.find("spec")->find("content_hash")->asString(),
              "fnv1a64:" + fnv1a64Hex("{\"traces\": []}"));
    EXPECT_EQ(report.find("run")->find("threads")->asNumber(), 4.0);
    EXPECT_EQ(report.find("run")->find("shard_index")->asNumber(),
              2.0);

    const JsonValue *traces = report.find("traces");
    ASSERT_NE(traces, nullptr);
    ASSERT_EQ(traces->items().size(), 1u);
    EXPECT_EQ(traces->items()[0].find("name")->asString(),
              "bursty-compute");
    EXPECT_NE(traces->items()[0].find("provenance")->asString().find(
                  "library"),
              std::string::npos);

    const JsonValue *metrics = report.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->items().size(),
              static_cast<size_t>(Metric::Count));
    // No summaries fed in => member omitted entirely.
    EXPECT_EQ(report.find("summaries"), nullptr);
}

TEST(RunReportTest, CanonicalizationPinsVolatileMembers)
{
    CampaignSpec spec;
    spec.traces.push_back(TraceSpec::library("bursty-compute", 3));
    spec.platforms = {ultraportablePreset()};
    spec.pdns = {PdnKind::IVR};

    MetricsRegistry registry;
    {
        MetricsInstallation install(registry);
        metricAdd(Metric::CampaignCells, 10);
        metricObserve(Metric::CampaignCellMicros, 2.0);
        metricObserve(Metric::CampaignCellMicros, 64.0);
        MetricsRegistry::flushThread();
    }

    JsonValue canon = canonicalizeRunReport(
        buildRunReport(sampleInputs(spec, registry)));
    EXPECT_EQ(canon.find("host")->asString(), "HOST");
    EXPECT_EQ(canon.find("wall_time_s")->asNumber(), 0.0);
    EXPECT_EQ(canon.find("tool")->find("version")->asString(),
              "VERSION");
    EXPECT_EQ(canon.find("tool")->find("git_rev")->asString(),
              "GITREV");
    EXPECT_EQ(canon.find("spec")->find("path")->asString(), "SPEC");
    // Spec hash survives — it is provenance, not volatility.
    EXPECT_EQ(canon.find("spec")->find("content_hash")->asString(),
              "fnv1a64:" + fnv1a64Hex("{\"traces\": []}"));

    for (const JsonValue &m : canon.find("metrics")->items()) {
        if (m.find("kind")->asString() != "histogram")
            continue;
        // Duration sums/extrema are wall-clock noise; the sample
        // *count* is deterministic and survives.
        EXPECT_EQ(m.find("sum")->asNumber(), 0.0);
        EXPECT_EQ(m.find("min")->asNumber(), 0.0);
        EXPECT_EQ(m.find("max")->asNumber(), 0.0);
        EXPECT_TRUE(m.find("buckets")->items().empty());
        if (m.find("name")->asString() == "campaign.cell_us") {
            EXPECT_EQ(m.find("count")->asNumber(), 2.0);
        }
    }
}

TEST(RunReportTest, GitRevisionPrefersEnvironment)
{
    ::setenv("PDNSPOT_GIT_REV", "cafef00d", 1);
    EXPECT_EQ(gitRevision(), "cafef00d");
    ::unsetenv("PDNSPOT_GIT_REV");
    EXPECT_NE(gitRevision(), "cafef00d");
    EXPECT_FALSE(gitRevision().empty());
    EXPECT_FALSE(toolVersion().empty());
}

} // namespace
} // namespace pdnspot
