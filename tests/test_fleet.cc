/**
 * @file
 * Fleet-engine tests: the determinism contract (byte-identical
 * aggregate CSVs at any thread count, reproducible seeded jitter),
 * aggregate conservation across the time series, the storm-detector
 * math, early exit once the whole fleet is dark, the drainTime /
 * BatteryModel::life equivalence, the histogramObserve-vs-registry
 * bucketing identity, and a golden run summary pinning the
 * human-readable surface.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fleet/fleet_engine.hh"
#include "obs/metrics.hh"
#include "sim/battery_model.hh"
#include "workload/trace_source.hh"

namespace pdnspot
{
namespace
{

/**
 * Two heterogeneous cohorts over generated traces — hermetic, fast,
 * and large enough (3.5k sessions) to span several 1024-session
 * chunks so the canonical-order reduction actually merges partials.
 * Oracle mode keeps mode switches in play; the tablet cohort's tiny
 * battery guarantees deaths inside the horizon so both distribution
 * histograms are populated.
 */
FleetSpec
testSpec()
{
    TraceGeneratorSpec mix;
    mix.kind = "random-mix";
    mix.seed = 7;
    mix.phases = 12;

    FleetCohort tablets;
    tablets.name = "tablets";
    tablets.count = 1500;
    tablets.platform = fanlessTabletPreset();
    tablets.pdn = PdnKind::FlexWatts;
    tablets.mode = SimMode::Oracle;
    tablets.trace = TraceSpec::generator(mix);
    tablets.startJitter = seconds(5.0);
    tablets.batteryWh = 0.002;
    tablets.batterySpread = 0.2;

    mix.seed = 8;
    FleetCohort laptops;
    laptops.name = "laptops";
    laptops.count = 2000;
    laptops.platform = ultraportablePreset();
    laptops.pdn = PdnKind::FlexWatts;
    laptops.mode = SimMode::Oracle;
    laptops.trace = TraceSpec::generator(mix);
    laptops.startJitter = seconds(2.0);
    laptops.batteryWh = 50.0;
    laptops.batterySpread = 0.1;

    FleetSpec spec;
    spec.cohorts = {tablets, laptops};
    spec.bucket = seconds(0.5);
    spec.horizon = seconds(8.0);
    spec.seed = 5;
    return spec;
}

FleetResult
runAt(const FleetSpec &spec, unsigned threads)
{
    ParallelRunner pool(threads);
    return FleetEngine(pool).run(spec);
}

std::string
csvOf(const FleetResult &result)
{
    std::ostringstream os;
    result.writeCsv(os);
    return os.str();
}

std::string
summaryOf(const FleetResult &result)
{
    std::ostringstream os;
    result.writeSummary(os);
    return os.str();
}

TEST(FleetEngineTest, ByteIdenticalAcrossThreadCounts)
{
    FleetSpec spec = testSpec();
    FleetResult serial = runAt(spec, 1);
    FleetResult two = runAt(spec, 2);
    FleetResult eight = runAt(spec, 8);

    EXPECT_EQ(csvOf(serial), csvOf(two));
    EXPECT_EQ(csvOf(serial), csvOf(eight));
    EXPECT_EQ(summaryOf(serial), summaryOf(two));
    EXPECT_EQ(summaryOf(serial), summaryOf(eight));
    EXPECT_EQ(serial.buckets, eight.buckets);
    EXPECT_EQ(serial.batteryLifeH, eight.batteryLifeH);
    EXPECT_EQ(serial.timeToEmptyH, eight.timeToEmptyH);
}

TEST(FleetEngineTest, SeededJitterIsReproducible)
{
    FleetSpec spec = testSpec();
    EXPECT_EQ(csvOf(runAt(spec, 4)), csvOf(runAt(spec, 4)));

    FleetSpec reseeded = testSpec();
    reseeded.seed = 6;
    EXPECT_NE(csvOf(runAt(spec, 4)), csvOf(runAt(reseeded, 4)));
}

TEST(FleetEngineTest, StartJitterDesynchronizesTheCohort)
{
    FleetSpec aligned = testSpec();
    for (FleetCohort &cohort : aligned.cohorts)
        cohort.startJitter = seconds(0.0);
    EXPECT_NE(csvOf(runAt(testSpec(), 2)), csvOf(runAt(aligned, 2)));
}

TEST(FleetEngineTest, AggregatesConserveAcrossTheTimeSeries)
{
    FleetResult result = runAt(testSpec(), 8);
    ASSERT_FALSE(result.buckets.empty());
    EXPECT_EQ(result.sessions, 3500u);

    double energy = 0.0;
    uint64_t switches = 0;
    uint64_t deaths = 0;
    uint64_t prevAlive = result.sessions;
    for (const FleetBucketRow &row : result.buckets) {
        energy += row.energyJ;
        switches += row.modeSwitches;
        deaths += row.deaths;
        EXPECT_LE(row.alive, prevAlive);
        prevAlive = row.alive;
        if (row.tEndS > 0.0 && row.energyJ > 0.0) {
            EXPECT_NEAR(row.powerW * result.bucketS, row.energyJ,
                        1e-6 * row.energyJ + 1e-12);
        }
    }
    EXPECT_NEAR(energy, result.totalEnergyJ,
                1e-9 * result.totalEnergyJ);
    EXPECT_EQ(switches, result.totalSwitches);
    EXPECT_EQ(deaths, result.deaths);
    EXPECT_EQ(result.buckets.back().alive,
              result.sessions - result.deaths);

    // The tiny-battery cohort must die inside the horizon, so both
    // distributions carry samples: actual deaths in batteryLifeH,
    // every session in timeToEmptyH.
    EXPECT_GT(result.deaths, 0u);
    EXPECT_EQ(result.batteryLifeH.count, result.deaths);
    EXPECT_EQ(result.timeToEmptyH.count, result.sessions);
    EXPECT_GT(histogramQuantile(result.timeToEmptyH, 0.5),
              histogramQuantile(result.batteryLifeH, 0.5));
}

TEST(FleetEngineTest, StormFlagMatchesItsDefinition)
{
    FleetResult result = runAt(testSpec(), 4);
    ASSERT_FALSE(result.buckets.empty());
    EXPECT_DOUBLE_EQ(result.stormBaseline,
                     static_cast<double>(result.totalSwitches) /
                         static_cast<double>(result.buckets.size()));

    uint64_t storms = 0;
    for (const FleetBucketRow &row : result.buckets) {
        bool expected =
            row.modeSwitches > 0 &&
            static_cast<double>(row.modeSwitches) >
                result.stormK * result.stormBaseline;
        EXPECT_EQ(row.storm, expected) << "bucket " << row.index;
        storms += row.storm ? 1 : 0;
    }
    EXPECT_EQ(storms, result.stormBuckets);
}

TEST(FleetEngineTest, StopsEarlyOnceTheFleetIsDark)
{
    FleetSpec spec = testSpec();
    spec.cohorts.resize(1); // only the 0.002 Wh tablets
    spec.horizon = seconds(3600.0);
    spec.bucket = seconds(1.0);

    FleetResult result = runAt(spec, 4);
    EXPECT_EQ(result.deaths, result.sessions);
    EXPECT_EQ(result.buckets.back().alive, 0u);
    EXPECT_LT(result.simulatedS, result.horizonS);
    EXPECT_LT(result.buckets.size(), spec.bucketCount());
    EXPECT_DOUBLE_EQ(result.simulatedS, result.buckets.back().tEndS);
}

TEST(FleetEngineTest, UniformCohortDiesAsOne)
{
    // Zero jitter and zero spread make every session identical, so
    // the whole cohort must empty at the same instant.
    FleetSpec spec = testSpec();
    spec.cohorts.resize(1);
    spec.cohorts[0].startJitter = seconds(0.0);
    spec.cohorts[0].batterySpread = 0.0;
    spec.horizon = seconds(3600.0);

    FleetResult result = runAt(spec, 4);
    EXPECT_EQ(result.deaths, result.sessions);
    EXPECT_DOUBLE_EQ(result.batteryLifeH.min,
                     result.batteryLifeH.max);
}

TEST(FleetEngineTest, ValidateRejectsUnrunnableSpecs)
{
    FleetSpec spec = testSpec();
    spec.cohorts.clear();
    EXPECT_THROW(spec.validate(), ConfigError);

    spec = testSpec();
    spec.cohorts[1].name = spec.cohorts[0].name;
    EXPECT_THROW(spec.validate(), ConfigError);

    spec = testSpec();
    spec.cohorts[0].count = 0;
    EXPECT_THROW(spec.validate(), ConfigError);

    spec = testSpec();
    spec.cohorts[0].batterySpread = 1.0;
    EXPECT_THROW(spec.validate(), ConfigError);

    spec = testSpec();
    spec.bucket = seconds(10.0);
    spec.horizon = seconds(5.0);
    EXPECT_THROW(spec.validate(), ConfigError);

    spec = testSpec();
    spec.stormK = 0.0;
    EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(FleetEngineTest, ProgressReportsEveryBucketInOrder)
{
    FleetSpec spec = testSpec();
    std::vector<uint64_t> done;
    uint64_t total = 0;
    FleetResult result =
        FleetEngine().run(spec, [&](uint64_t d, uint64_t t) {
            done.push_back(d);
            total = t;
        });
    ASSERT_EQ(done.size(), result.buckets.size());
    EXPECT_EQ(total, spec.bucketCount());
    for (size_t i = 0; i < done.size(); ++i)
        EXPECT_EQ(done[i], i + 1);
}

TEST(FleetBatteryTest, DrainTimeMatchesBatteryModelLife)
{
    // The shared SoC-integration step: at full capacity, drainTime
    // is exactly BatteryModel::life for any draw.
    for (double wh : {0.5, 8.0, 50.0}) {
        BatteryModel model(wattHours(wh));
        for (double w : {0.75, 4.0, 15.0, 45.0}) {
            EXPECT_EQ(inSeconds(model.life(watts(w))),
                      inSeconds(drainTime(model.capacity(), watts(w))))
                << wh << " Wh at " << w << " W";
            EXPECT_EQ(model.lifeHours(watts(w)),
                      drainHours(model.capacity(), watts(w)));
        }
    }
    EXPECT_THROW(drainTime(joules(10.0), watts(0.0)), ConfigError);
    EXPECT_THROW(drainTime(joules(10.0), watts(-1.0)), ConfigError);
}

TEST(FleetBatteryTest, HistogramObserveMatchesTheRegistry)
{
    // The standalone accumulation the fleet distributions use must
    // bucket exactly like a registry-held histogram.
    const std::vector<double> samples = {0.02, 0.9,    1.0,  1.7,
                                         4.0,  1023.0, 77.5, 0.0};

    MetricsRegistry registry;
    size_t id = 0;
    {
        MetricsInstallation install(registry);
        id = registry.registerMetric("test.hist",
                                     MetricKind::Histogram);
        for (double v : samples)
            registry.observe(id, v);
        MetricsRegistry::flushThread();
    }
    MetricSnapshot fromRegistry;
    for (const MetricSnapshot &snap : registry.snapshot())
        if (snap.name == "test.hist")
            fromRegistry = snap;

    MetricSnapshot standalone;
    for (double v : samples)
        histogramObserve(standalone, v);

    EXPECT_EQ(standalone.kind, MetricKind::Histogram);
    EXPECT_EQ(standalone.count, fromRegistry.count);
    EXPECT_DOUBLE_EQ(standalone.value, fromRegistry.value);
    EXPECT_DOUBLE_EQ(standalone.min, fromRegistry.min);
    EXPECT_DOUBLE_EQ(standalone.max, fromRegistry.max);
    EXPECT_EQ(standalone.buckets, fromRegistry.buckets);
    for (double q : {0.0, 0.5, 0.95, 1.0})
        EXPECT_DOUBLE_EQ(histogramQuantile(standalone, q),
                         histogramQuantile(fromRegistry, q));
}

/** Compare against tests/golden/, or rewrite when regenerating. */
void
checkGolden(const std::string &fileName, const std::string &actual)
{
    std::string path =
        std::string(PDNSPOT_GOLDEN_DIR) + "/" + fileName;

    if (std::getenv("PDNSPOT_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        out.close();
        ASSERT_TRUE(out.good()) << "error writing " << path;
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — run scripts/regen_golden.sh";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual, expected.str())
        << "output drifted from " << path
        << "; if the change is intentional, run "
        << "scripts/regen_golden.sh and review the diff";
}

TEST(FleetGoldenTest, RunSummary)
{
    // The full deterministic summary of the small two-cohort fixture
    // — population and cohort shapes, energy/switch/storm verdicts
    // and both distribution quantile lines — pinned byte for byte.
    checkGolden("fleet_summary.txt", summaryOf(runAt(testSpec(), 1)));
}

} // namespace
} // namespace pdnspot
