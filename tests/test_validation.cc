/**
 * @file
 * Tests for the PDNspot validation harness (paper Sec. 4.3, Fig. 4).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "pdnspot/validation.hh"

namespace pdnspot
{
namespace
{

class ValidationTest : public ::testing::Test
{
  protected:
    ValidationTest() : platform(), harness(platform) {}

    Platform platform;
    ValidationHarness harness;
};

TEST_F(ValidationTest, TraceSetHasRequestedSizeAndMix)
{
    auto set = harness.makeTraceSet(200);
    EXPECT_EQ(set.size(), 200u);

    size_t st = 0, mt = 0, gfx = 0, cstates = 0;
    for (const auto &t : set) {
        if (t.cstate != PackageCState::C0) {
            ++cstates;
            continue;
        }
        if (t.type == WorkloadType::SingleThread)
            ++st;
        else if (t.type == WorkloadType::MultiThread)
            ++mt;
        else if (t.type == WorkloadType::Graphics)
            ++gfx;
        EXPECT_GE(t.ar, 0.40);
        EXPECT_LE(t.ar, 0.80);
    }
    EXPECT_GT(st, 40u);
    EXPECT_GT(mt, 40u);
    EXPECT_GT(gfx, 40u);
    EXPECT_GE(cstates, 20u);
}

TEST_F(ValidationTest, AccuracyMatchesPaperBand)
{
    // Sec. 4.3: average accuracy >= 99%, minima around 98.6-98.9%.
    auto set = harness.makeTraceSet(200);
    for (PdnKind kind : classicPdnKinds) {
        ValidationStats s = harness.validate(platform.pdn(kind), set);
        EXPECT_GT(s.avgAccuracy, 0.99) << toString(kind);
        EXPECT_GT(s.minAccuracy, 0.985) << toString(kind);
        EXPECT_LE(s.maxAccuracy, 1.0 + 1e-12) << toString(kind);
        EXPECT_EQ(s.traces, 200u);
    }
}

TEST_F(ValidationTest, MeasuredReferenceIsDeterministic)
{
    auto set = harness.makeTraceSet(10);
    ValidationHarness twin(platform);
    for (const auto &t : set) {
        EXPECT_DOUBLE_EQ(
            harness.measuredEtee(platform.pdn(PdnKind::IVR), t),
            twin.measuredEtee(platform.pdn(PdnKind::IVR), t));
    }
}

TEST_F(ValidationTest, MeasuredDiffersFromPredictedButClose)
{
    auto set = harness.makeTraceSet(50);
    size_t distinct = 0;
    for (const auto &t : set) {
        double p = harness.predictedEtee(platform.pdn(PdnKind::MBVR),
                                         t);
        double m = harness.measuredEtee(platform.pdn(PdnKind::MBVR),
                                        t);
        if (p != m)
            ++distinct;
        EXPECT_NEAR(m, p, p * 0.0071);
    }
    EXPECT_GT(distinct, 45u);
}

TEST_F(ValidationTest, LargerNoiseLowersAccuracy)
{
    ValidationHarness noisy(platform, 42, 0.05);
    auto set = noisy.makeTraceSet(100);
    ValidationStats precise =
        harness.validate(platform.pdn(PdnKind::IVR),
                         harness.makeTraceSet(100));
    ValidationStats loose =
        noisy.validate(platform.pdn(PdnKind::IVR), set);
    EXPECT_LT(loose.avgAccuracy, precise.avgAccuracy);
}

TEST_F(ValidationTest, StatsBitIdenticalAcrossThreadCounts)
{
    auto set = harness.makeTraceSet(200);
    ParallelRunner serial(1);
    ValidationStats ref =
        harness.validate(platform.pdn(PdnKind::FlexWatts), set,
                         serial);
    for (unsigned threads : {2u, 8u}) {
        ParallelRunner pool(threads);
        ValidationStats stats = harness.validate(
            platform.pdn(PdnKind::FlexWatts), set, pool);
        EXPECT_EQ(stats.avgAccuracy, ref.avgAccuracy);
        EXPECT_EQ(stats.minAccuracy, ref.minAccuracy);
        EXPECT_EQ(stats.maxAccuracy, ref.maxAccuracy);
        EXPECT_EQ(stats.traces, ref.traces);
    }
}

TEST_F(ValidationTest, RejectsBadArguments)
{
    EXPECT_THROW(ValidationHarness(platform, 1, 0.5), ConfigError);
    EXPECT_THROW(harness.makeTraceSet(0), ConfigError);
    EXPECT_THROW(
        harness.validate(platform.pdn(PdnKind::IVR), {}),
        ConfigError);
}

} // anonymous namespace
} // namespace pdnspot
