/**
 * @file
 * Unit tests for the interval simulator and battery model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "pdnspot/experiments.hh"
#include "pdnspot/platform.hh"
#include "sim/battery_model.hh"
#include "sim/interval_simulator.hh"
#include "workload/trace_generator.hh"

namespace pdnspot
{
namespace
{

class SimTest : public ::testing::Test
{
  protected:
    SimTest() : platform() {}

    Platform platform;
};

TEST_F(SimTest, StaticRunConservesEnergy)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    PhaseTrace trace = traceFromBatteryProfile(videoPlayback(),
                                               milliseconds(33.3), 5);
    SimResult r = sim.run(trace, platform.pdn(PdnKind::IVR));
    EXPECT_NEAR(inSeconds(r.duration),
                inSeconds(trace.totalDuration()), 1e-9);
    EXPECT_GT(r.supplyEnergy, r.nominalEnergy);
    EXPECT_NEAR(inWatts(r.averagePower()) * inSeconds(r.duration),
                inJoules(r.supplyEnergy), 1e-9);
    EXPECT_GT(r.averageEtee(), 0.3);
    EXPECT_LT(r.averageEtee(), 1.0);
}

TEST_F(SimTest, OracleBeatsOrMatchesStaticFlexModes)
{
    // The oracle picks per phase; it can never do worse than either
    // fixed mode run through the same trace.
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(11);
    PhaseTrace trace = gen.burstyCompute(8, milliseconds(20.0),
                                         milliseconds(40.0));

    SimResult oracle = sim.runOracle(trace, platform.flexWatts());
    SimResult ivr_pdn = sim.run(trace, platform.pdn(PdnKind::IVR));
    EXPECT_LE(inJoules(oracle.supplyEnergy),
              inJoules(ivr_pdn.supplyEnergy) + 1e-9);
}

TEST_F(SimTest, OracleResidencyCoversTrace)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(13);
    PhaseTrace trace = gen.randomMix(40, milliseconds(5.0));
    SimResult r = sim.runOracle(trace, platform.flexWatts());
    EXPECT_NEAR(inSeconds(r.residency(HybridMode::IvrMode) +
                          r.residency(HybridMode::LdoMode)),
                inSeconds(trace.totalDuration()), 1e-9);
}

TEST_F(SimTest, PmuRunSwitchesAndAccountsOverhead)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(17);
    // Long alternating phases force real mode changes.
    PhaseTrace trace = gen.burstyCompute(6, milliseconds(60.0),
                                         milliseconds(80.0));

    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu pmu(cfg, platform.predictor());
    SimResult r = sim.run(trace, platform.flexWatts(), pmu);

    EXPECT_GT(r.modeSwitches, 0u);
    EXPECT_NEAR(inMicroseconds(r.switchOverheadTime),
                94.0 * static_cast<double>(r.modeSwitches), 1e-6);
    EXPECT_NEAR(inSeconds(r.duration),
                inSeconds(trace.totalDuration()), 1e-9);
    EXPECT_GT(r.averageEtee(), 0.3);
}

TEST_F(SimTest, PmuRunCloseToOracleOnSlowTraces)
{
    // With phases much longer than the 10 ms evaluation interval the
    // predictor should capture nearly all of the oracle's benefit.
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(19);
    PhaseTrace trace = gen.burstyCompute(5, milliseconds(200.0),
                                         milliseconds(200.0));

    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu pmu(cfg, platform.predictor());
    SimResult predicted = sim.run(trace, platform.flexWatts(), pmu);
    SimResult oracle = sim.runOracle(trace, platform.flexWatts());

    double overhead = inJoules(predicted.supplyEnergy) /
                      inJoules(oracle.supplyEnergy);
    EXPECT_LT(overhead, 1.03);
    EXPECT_GE(overhead, 0.99);
}

TEST_F(SimTest, RejectsBadTick)
{
    EXPECT_THROW(IntervalSimulator(platform.operatingPoints(),
                                   watts(15.0), seconds(0.0)),
                 ConfigError);
}

TEST_F(SimTest, EmptyTraceYieldsZeroResult)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    PhaseTrace empty("empty", {});

    SimResult s = sim.run(empty, platform.pdn(PdnKind::IVR));
    EXPECT_EQ(inSeconds(s.duration), 0.0);
    EXPECT_EQ(inJoules(s.supplyEnergy), 0.0);
    EXPECT_EQ(inJoules(s.nominalEnergy), 0.0);
    EXPECT_EQ(inWatts(s.averagePower()), 0.0);
    EXPECT_EQ(s.averageEtee(), 0.0);

    SimResult o = sim.runOracle(empty, platform.flexWatts());
    EXPECT_EQ(inSeconds(o.duration), 0.0);
    EXPECT_EQ(inJoules(o.supplyEnergy), 0.0);

    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu pmu(cfg, platform.predictor());
    SimResult p = sim.run(empty, platform.flexWatts(), pmu);
    EXPECT_EQ(inSeconds(p.duration), 0.0);
    EXPECT_EQ(inJoules(p.supplyEnergy), 0.0);
    EXPECT_EQ(p.modeSwitches, 0u);
}

TEST_F(SimTest, SinglePhaseStaticMatchesDirectEvaluation)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TracePhase phase;
    phase.duration = milliseconds(12.5);
    PhaseTrace trace("one", {phase});

    const PdnModel &pdn = platform.pdn(PdnKind::MBVR);
    SimResult r = sim.run(trace, pdn);

    OperatingPointModel::Query q;
    q.tdp = watts(15.0);
    q.cstate = phase.cstate;
    q.type = phase.type;
    q.ar = phase.ar;
    EteeResult e = pdn.evaluate(platform.operatingPoints().build(q));

    EXPECT_NEAR(inSeconds(r.duration), 12.5e-3, 1e-12);
    EXPECT_NEAR(inJoules(r.supplyEnergy),
                inWatts(e.inputPower) * 12.5e-3, 1e-12);
    EXPECT_NEAR(inJoules(r.nominalEnergy),
                inWatts(e.nominalPower) * 12.5e-3, 1e-12);
    EXPECT_NEAR(r.averageEtee(), e.etee(), 1e-12);
}

TEST_F(SimTest, SinglePhasePmuRunCoversTraceWithAtMostOneSwitch)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TracePhase phase;
    phase.duration = milliseconds(50.0);
    PhaseTrace trace("one", {phase});

    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu pmu(cfg, platform.predictor());
    SimResult r = sim.run(trace, platform.flexWatts(), pmu);

    EXPECT_NEAR(inSeconds(r.duration), 50.0e-3, 1e-12);
    EXPECT_NEAR(inSeconds(r.residency(HybridMode::IvrMode) +
                          r.residency(HybridMode::LdoMode)),
                50.0e-3, 1e-12);
    // A homogeneous phase gives the predictor at most one reason to
    // change its mind: the initial configuration.
    EXPECT_LE(r.modeSwitches, 1u);
}

TEST_F(SimTest, SwitchEnergyChargedExactlyOncePerSwitch)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(17);
    PhaseTrace trace = gen.burstyCompute(6, milliseconds(60.0),
                                         milliseconds(80.0));

    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu pmu(cfg, platform.predictor());
    SimResult r = sim.run(trace, platform.flexWatts(), pmu);
    ASSERT_GT(r.modeSwitches, 0u);

    // Each switch idles through one 94 us C6 flow at the flow power
    // -- no more, no less, independent of how many simulator ticks
    // overlap the flow window.
    const ModeSwitchParams &p = pmu.switchFlow().params();
    double n = static_cast<double>(r.modeSwitches);
    EXPECT_NEAR(inMicroseconds(r.switchOverheadTime),
                n * inMicroseconds(p.totalLatency()), 1e-6);
    EXPECT_NEAR(inJoules(r.switchOverheadEnergy),
                n * inWatts(p.flowPower) *
                    inSeconds(p.totalLatency()),
                1e-12);
}

TEST_F(SimTest, SwitchAccountingIsTickResolutionInvariant)
{
    // If the simulator double-charged (or skipped) flow energy at
    // tick boundaries, refining the tick would change the totals.
    // Phase boundaries are multiples of the sensor (1 ms) and eval
    // (10 ms) cadences and of both ticks, so the PMU sees identical
    // sensor histories and makes identical decisions in both runs --
    // any residual difference would come from energy accounting.
    PhaseTrace trace("aligned-bursts", {});
    for (int i = 0; i < 6; ++i) {
        TracePhase work;
        work.duration = milliseconds(60.0);
        work.cstate = PackageCState::C0;
        work.type = WorkloadType::MultiThread;
        work.ar = 0.9;
        trace.append(work);

        TracePhase idle;
        idle.duration = milliseconds(80.0);
        idle.cstate = PackageCState::C8;
        idle.type = WorkloadType::BatteryLife;
        idle.ar = 0.3;
        trace.append(idle);
    }

    auto runWithTick = [&](Time tick) {
        IntervalSimulator sim(platform.operatingPoints(),
                              watts(15.0), tick);
        PmuConfig cfg;
        cfg.tdp = watts(15.0);
        Pmu pmu(cfg, platform.predictor());
        return sim.run(trace, platform.flexWatts(), pmu);
    };

    SimResult coarse = runWithTick(microseconds(500.0));
    SimResult fine = runWithTick(microseconds(10.0));

    ASSERT_GT(coarse.modeSwitches, 0u);
    EXPECT_EQ(coarse.modeSwitches, fine.modeSwitches);
    EXPECT_NEAR(inJoules(coarse.supplyEnergy),
                inJoules(fine.supplyEnergy), 1e-9);
    EXPECT_NEAR(inJoules(coarse.nominalEnergy),
                inJoules(fine.nominalEnergy), 1e-9);
    EXPECT_NEAR(inJoules(coarse.switchOverheadEnergy),
                inJoules(fine.switchOverheadEnergy), 1e-12);
}

TEST(BatteryModelTest, LifeArithmetic)
{
    BatteryModel battery(wattHours(50.0));
    EXPECT_NEAR(battery.lifeHours(watts(5.0)), 10.0, 1e-9);
    EXPECT_NEAR(inSeconds(battery.life(watts(50.0))), 3600.0, 1e-9);
}

TEST(BatteryModelTest, RejectsBadInputs)
{
    EXPECT_THROW(BatteryModel(joules(0.0)), ConfigError);
    BatteryModel battery(wattHours(50.0));
    EXPECT_THROW(battery.life(watts(0.0)), ConfigError);
}

TEST(BatteryModelTest, MoreEfficientPdnLastsLonger)
{
    Platform platform;
    BatteryModel battery(wattHours(50.0));
    Power p_ivr = batteryAveragePower(platform, PdnKind::IVR,
                                      videoPlayback());
    Power p_flex = batteryAveragePower(platform, PdnKind::FlexWatts,
                                       videoPlayback());
    EXPECT_GT(battery.lifeHours(p_flex), battery.lifeHours(p_ivr));
}

} // anonymous namespace
} // namespace pdnspot
