/**
 * @file
 * Unit tests for the interval simulator and battery model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "pdnspot/experiments.hh"
#include "pdnspot/platform.hh"
#include "sim/battery_model.hh"
#include "sim/interval_simulator.hh"
#include "workload/trace_generator.hh"

namespace pdnspot
{
namespace
{

class SimTest : public ::testing::Test
{
  protected:
    SimTest() : platform() {}

    Platform platform;
};

TEST_F(SimTest, StaticRunConservesEnergy)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    PhaseTrace trace = traceFromBatteryProfile(videoPlayback(),
                                               milliseconds(33.3), 5);
    SimResult r = sim.run(trace, platform.pdn(PdnKind::IVR));
    EXPECT_NEAR(inSeconds(r.duration),
                inSeconds(trace.totalDuration()), 1e-9);
    EXPECT_GT(r.supplyEnergy, r.nominalEnergy);
    EXPECT_NEAR(inWatts(r.averagePower()) * inSeconds(r.duration),
                inJoules(r.supplyEnergy), 1e-9);
    EXPECT_GT(r.averageEtee(), 0.3);
    EXPECT_LT(r.averageEtee(), 1.0);
}

TEST_F(SimTest, OracleBeatsOrMatchesStaticFlexModes)
{
    // The oracle picks per phase; it can never do worse than either
    // fixed mode run through the same trace.
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(11);
    PhaseTrace trace = gen.burstyCompute(8, milliseconds(20.0),
                                         milliseconds(40.0));

    SimResult oracle = sim.runOracle(trace, platform.flexWatts());
    SimResult ivr_pdn = sim.run(trace, platform.pdn(PdnKind::IVR));
    EXPECT_LE(inJoules(oracle.supplyEnergy),
              inJoules(ivr_pdn.supplyEnergy) + 1e-9);
}

TEST_F(SimTest, OracleResidencyCoversTrace)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(13);
    PhaseTrace trace = gen.randomMix(40, milliseconds(5.0));
    SimResult r = sim.runOracle(trace, platform.flexWatts());
    EXPECT_NEAR(inSeconds(r.residency(HybridMode::IvrMode) +
                          r.residency(HybridMode::LdoMode)),
                inSeconds(trace.totalDuration()), 1e-9);
}

TEST_F(SimTest, PmuRunSwitchesAndAccountsOverhead)
{
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(17);
    // Long alternating phases force real mode changes.
    PhaseTrace trace = gen.burstyCompute(6, milliseconds(60.0),
                                         milliseconds(80.0));

    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu pmu(cfg, platform.predictor());
    SimResult r = sim.run(trace, platform.flexWatts(), pmu);

    EXPECT_GT(r.modeSwitches, 0u);
    EXPECT_NEAR(inMicroseconds(r.switchOverheadTime),
                94.0 * static_cast<double>(r.modeSwitches), 1e-6);
    EXPECT_NEAR(inSeconds(r.duration),
                inSeconds(trace.totalDuration()), 1e-9);
    EXPECT_GT(r.averageEtee(), 0.3);
}

TEST_F(SimTest, PmuRunCloseToOracleOnSlowTraces)
{
    // With phases much longer than the 10 ms evaluation interval the
    // predictor should capture nearly all of the oracle's benefit.
    IntervalSimulator sim(platform.operatingPoints(), watts(15.0));
    TraceGenerator gen(19);
    PhaseTrace trace = gen.burstyCompute(5, milliseconds(200.0),
                                         milliseconds(200.0));

    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu pmu(cfg, platform.predictor());
    SimResult predicted = sim.run(trace, platform.flexWatts(), pmu);
    SimResult oracle = sim.runOracle(trace, platform.flexWatts());

    double overhead = inJoules(predicted.supplyEnergy) /
                      inJoules(oracle.supplyEnergy);
    EXPECT_LT(overhead, 1.03);
    EXPECT_GE(overhead, 0.99);
}

TEST_F(SimTest, RejectsBadTick)
{
    EXPECT_THROW(IntervalSimulator(platform.operatingPoints(),
                                   watts(15.0), seconds(0.0)),
                 ConfigError);
}

TEST(BatteryModelTest, LifeArithmetic)
{
    BatteryModel battery(wattHours(50.0));
    EXPECT_NEAR(battery.lifeHours(watts(5.0)), 10.0, 1e-9);
    EXPECT_NEAR(inSeconds(battery.life(watts(50.0))), 3600.0, 1e-9);
}

TEST(BatteryModelTest, RejectsBadInputs)
{
    EXPECT_THROW(BatteryModel(joules(0.0)), ConfigError);
    BatteryModel battery(wattHours(50.0));
    EXPECT_THROW(battery.life(watts(0.0)), ConfigError);
}

TEST(BatteryModelTest, MoreEfficientPdnLastsLonger)
{
    Platform platform;
    BatteryModel battery(wattHours(50.0));
    Power p_ivr = batteryAveragePower(platform, PdnKind::IVR,
                                      videoPlayback());
    Power p_flex = batteryAveragePower(platform, PdnKind::FlexWatts,
                                       videoPlayback());
    EXPECT_GT(battery.lifeHours(p_flex), battery.lifeHours(p_ivr));
}

} // anonymous namespace
} // namespace pdnspot
