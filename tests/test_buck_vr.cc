/**
 * @file
 * Unit and property tests for the off-chip buck VR model (Fig. 3).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "vr/buck_vr.hh"

namespace pdnspot
{
namespace
{

BuckVr
mb()
{
    return BuckVr(BuckParams::motherboard("V_test"));
}

TEST(BuckVr, EfficiencyWithinTable2Envelope)
{
    // Table 2: off-chip VR efficiency 72-93% over the operational
    // range (PS0/PS1, realistic per-state load currents).
    BuckVr vr = mb();
    for (double vout : {0.6, 0.7, 1.0, 1.8}) {
        for (double iout : {0.5, 1.0, 3.0, 5.0, 10.0, 20.0}) {
            double eta = vr.efficiencyAuto(volts(7.2), volts(vout),
                                           amps(iout));
            EXPECT_GT(eta, 0.60) << vout << "V " << iout << "A";
            EXPECT_LT(eta, 0.95) << vout << "V " << iout << "A";
        }
    }
    // Mid-current sweet spot reaches the upper envelope.
    EXPECT_GT(vr.efficiencyAuto(volts(7.2), volts(1.8), amps(5.0)),
              0.88);
}

TEST(BuckVr, LightLoadRolloffInPs0)
{
    // Fig. 3: PS0 efficiency collapses at light load (fixed losses).
    BuckVr vr = mb();
    double at_5a = vr.efficiency(volts(7.2), volts(1.0), amps(5.0),
                                 VrPowerState::PS0);
    double at_01a = vr.efficiency(volts(7.2), volts(1.0), amps(0.1),
                                  VrPowerState::PS0);
    EXPECT_GT(at_5a, at_01a + 0.15);
}

TEST(BuckVr, Ps1BeatsPs0AtLightLoad)
{
    // Fig. 3: phase shedding keeps light-load efficiency high.
    BuckVr vr = mb();
    double ps0 = vr.efficiency(volts(7.2), volts(1.0), amps(0.2),
                               VrPowerState::PS0);
    double ps1 = vr.efficiency(volts(7.2), volts(1.0), amps(0.2),
                               VrPowerState::PS1);
    EXPECT_GT(ps1, ps0);
}

TEST(BuckVr, Ps0BeatsPs1AtHeavyLoad)
{
    BuckVr vr = mb();
    double ps0 = vr.efficiency(volts(7.2), volts(1.0), amps(3.0),
                               VrPowerState::PS0);
    double ps1 = vr.efficiency(volts(7.2), volts(1.0), amps(3.0),
                               VrPowerState::PS1);
    EXPECT_GT(ps0, ps1);
}

TEST(BuckVr, BestStateRespectsCeilings)
{
    BuckVr vr = mb();
    auto heavy = vr.bestState(volts(7.2), volts(1.0), amps(10.0));
    ASSERT_TRUE(heavy.has_value());
    EXPECT_EQ(*heavy, VrPowerState::PS0);

    auto light = vr.bestState(volts(7.2), volts(1.0), amps(0.05));
    ASSERT_TRUE(light.has_value());
    EXPECT_NE(*light, VrPowerState::PS0);
}

TEST(BuckVr, BestStateMatchesExhaustiveArgmin)
{
    BuckVr vr = mb();
    for (double iout : {0.02, 0.08, 0.3, 1.0, 2.5, 8.0, 40.0}) {
        auto best = vr.bestState(volts(7.2), volts(1.0), amps(iout));
        ASSERT_TRUE(best.has_value());
        double best_eta = vr.efficiency(volts(7.2), volts(1.0),
                                        amps(iout), *best);
        for (VrPowerState ps : allVrPowerStates) {
            if (amps(iout) > vr.stateParams(ps).maxCurrent)
                continue;
            EXPECT_GE(best_eta + 1e-12,
                      vr.efficiency(volts(7.2), volts(1.0), amps(iout),
                                    ps));
        }
    }
}

TEST(BuckVr, OverCurrentIsFatal)
{
    BuckVr vr = mb();
    EXPECT_THROW(vr.efficiency(volts(7.2), volts(1.0), amps(100.0),
                               VrPowerState::PS0),
                 ConfigError);
    EXPECT_FALSE(
        vr.bestState(volts(7.2), volts(1.0), amps(100.0)).has_value());
    EXPECT_THROW(vr.efficiencyAuto(volts(7.2), volts(1.0), amps(100.0)),
                 ConfigError);
}

TEST(BuckVr, HeadroomViolationIsFatal)
{
    BuckVr vr = mb();
    EXPECT_FALSE(vr.canConvert(volts(1.0), volts(0.9)));
    EXPECT_THROW(vr.loss(volts(1.0), volts(0.9), amps(1.0),
                         VrPowerState::PS0),
                 ConfigError);
}

TEST(BuckVr, NegativeCurrentIsFatal)
{
    BuckVr vr = mb();
    EXPECT_THROW(vr.loss(volts(7.2), volts(1.0), amps(-1.0),
                         VrPowerState::PS0),
                 ConfigError);
}

TEST(BuckVr, ZeroLoadZeroEfficiencyZeroInput)
{
    BuckVr vr = mb();
    EXPECT_DOUBLE_EQ(vr.efficiencyAuto(volts(7.2), volts(1.0),
                                       amps(0.0)),
                     0.0);
    EXPECT_DOUBLE_EQ(inWatts(vr.inputPower(volts(7.2), volts(1.0),
                                           watts(0.0))),
                     0.0);
}

TEST(BuckVr, InputPowerExceedsOutputPower)
{
    BuckVr vr = mb();
    for (double pout : {0.1, 1.0, 5.0, 20.0}) {
        Power pin = vr.inputPower(volts(7.2), volts(1.0), watts(pout));
        EXPECT_GT(inWatts(pin), pout);
    }
}

TEST(BuckVr, NonIncreasingCeilingsEnforced)
{
    BuckParams p = BuckParams::motherboard("bad");
    p.states[1].maxCurrent = amps(200.0); // above PS0's
    EXPECT_THROW(BuckVr{p}, ConfigError);
}

TEST(BuckVr, PowerStateNames)
{
    EXPECT_EQ(toString(VrPowerState::PS0), "PS0");
    EXPECT_EQ(toString(VrPowerState::PS4), "PS4");
}

/** Property: efficiency is continuous-ish and bounded over a sweep. */
class BuckSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(BuckSweep, EfficiencyBoundedAndLossPositive)
{
    auto [vout, iout] = GetParam();
    BuckVr vr = mb();
    double eta = vr.efficiencyAuto(volts(7.2), volts(vout), amps(iout));
    EXPECT_GT(eta, 0.0);
    EXPECT_LT(eta, 1.0);
    auto ps = vr.bestState(volts(7.2), volts(vout), amps(iout));
    ASSERT_TRUE(ps.has_value());
    EXPECT_GT(inWatts(vr.loss(volts(7.2), volts(vout), amps(iout),
                              *ps)),
              0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BuckSweep,
    ::testing::Combine(::testing::Values(0.5, 0.7, 1.0, 1.8),
                       ::testing::Values(0.05, 0.2, 1.0, 4.0, 15.0,
                                         60.0)));

/** Property: higher input voltage costs switching loss. */
TEST(BuckVr, LossGrowsWithInputVoltage)
{
    BuckVr vr = mb();
    Power at_72 = vr.loss(volts(7.2), volts(1.0), amps(2.0),
                          VrPowerState::PS0);
    Power at_12 = vr.loss(volts(12.0), volts(1.0), amps(2.0),
                          VrPowerState::PS0);
    Power at_20 = vr.loss(volts(20.0), volts(1.0), amps(2.0),
                          VrPowerState::PS0);
    EXPECT_LT(at_72, at_12);
    EXPECT_LT(at_12, at_20);
}

} // anonymous namespace
} // namespace pdnspot
