/**
 * @file
 * Spec-file binding tests: a good spec resolves to the same campaign
 * a C++ caller would build, and every malformed input — unknown
 * keys, bad enum values, missing traces or presets — produces a
 * single-line actionable ConfigError carrying file:line:col.
 */

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/campaign_engine.hh"
#include "common/logging.hh"
#include "config/campaign_config.hh"
#include "workload/trace_generator.hh"
#include "workload/trace_io.hh"

namespace pdnspot
{
namespace
{

CampaignSpec
load(const std::string &text)
{
    return loadCampaignSpec(text, "spec.json");
}

/**
 * The satellite error contract: one line, a spec.json:line:col
 * position, and the interesting part of the message.
 */
void
expectSpecError(const std::string &text, const std::string &needle,
                const std::string &position = "spec.json:")
{
    try {
        load(text);
        FAIL() << "no error for: " << text;
    } catch (const ConfigError &e) {
        std::string what = e.what();
        EXPECT_EQ(what.find('\n'), std::string::npos)
            << "multi-line error: " << what;
        EXPECT_NE(what.find(position), std::string::npos)
            << "expected position \"" << position
            << "\" in: " << what;
        EXPECT_NE(what.find(needle), std::string::npos)
            << "expected \"" << needle << "\" in: " << what;
    }
}

const char *const goodSpec = R"({
  "traces": {"library": "standard", "seed": 42},
  "platforms": ["fanless-tablet-4w", "ultraportable-15w",
                "h-series-45w"],
  "pdns": "all",
  "mode": "pmu",
  "tick_us": 50.0
})";

TEST(CampaignConfigTest, GoodSpecMatchesCppConstruction)
{
    CampaignSpec fromFile = load(goodSpec);

    CampaignSpec fromCpp;
    fromCpp.addTraces(standardCampaignTraces(42));
    fromCpp.platforms = allPlatformPresets();
    fromCpp.pdns.assign(allPdnKinds.begin(), allPdnKinds.end());
    fromCpp.mode = SimMode::Pmu;

    // The file binds declarative library references, the C++ spec
    // wraps eager traces — different provenance, but they must
    // address and resolve to the very same traces.
    ASSERT_EQ(fromFile.traces.size(), fromCpp.traces.size());
    for (size_t i = 0; i < fromFile.traces.size(); ++i) {
        EXPECT_EQ(fromFile.traces[i].kind(),
                  TraceSpec::Kind::Library);
        EXPECT_EQ(fromFile.traces[i].name(),
                  fromCpp.traces[i].name());
        EXPECT_EQ(fromFile.traces[i].resolve(),
                  fromCpp.traces[i].resolve());
    }
    ASSERT_EQ(fromFile.platforms.size(), fromCpp.platforms.size());
    for (size_t i = 0; i < fromFile.platforms.size(); ++i) {
        EXPECT_EQ(fromFile.platforms[i].name,
                  fromCpp.platforms[i].name);
        EXPECT_EQ(fromFile.platforms[i].tdp,
                  fromCpp.platforms[i].tdp);
        EXPECT_EQ(fromFile.platforms[i].pdnParams.supplyVoltage,
                  fromCpp.platforms[i].pdnParams.supplyVoltage);
    }
    EXPECT_EQ(fromFile.pdns, fromCpp.pdns);
    EXPECT_EQ(fromFile.mode, fromCpp.mode);
    EXPECT_EQ(fromFile.tick, fromCpp.tick);
}

TEST(CampaignConfigTest, DefaultsModeTickAndSeed)
{
    CampaignSpec spec = load(R"({
      "traces": {},
      "platforms": ["ultraportable-15w"],
      "pdns": ["IVR"]
    })");
    EXPECT_EQ(spec.mode, SimMode::Static);
    EXPECT_EQ(spec.tick, microseconds(50.0));
    const std::vector<PhaseTrace> corpus =
        standardCampaignTraces(42).traces();
    ASSERT_EQ(spec.traces.size(), corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i)
        EXPECT_EQ(spec.traces[i].resolve(), corpus[i]);
}

TEST(CampaignConfigTest, SelectsTraceSubsetInListedOrder)
{
    CampaignSpec spec = load(R"({
      "traces": {"names": ["day-in-the-life", "bursty-compute"]},
      "platforms": ["ultraportable-15w"],
      "pdns": ["IVR", "FlexWatts"]
    })");
    ASSERT_EQ(spec.traces.size(), 2u);
    EXPECT_EQ(spec.traces[0].name(), "day-in-the-life");
    EXPECT_EQ(spec.traces[1].name(), "bursty-compute");
}

TEST(CampaignConfigTest, BindsInlineAndPresetDerivedPlatforms)
{
    CampaignSpec spec = load(R"({
      "traces": {"names": ["bursty-compute"]},
      "platforms": [
        {"preset": "ultraportable-15w", "name": "uv-12w",
         "tdp_w": 12.0},
        {"name": "bare-20w", "tdp_w": 20.0, "supply_v": 8.0,
         "predictor_hysteresis": 0.01}
      ],
      "pdns": ["IVR"]
    })");
    ASSERT_EQ(spec.platforms.size(), 2u);
    EXPECT_EQ(spec.platforms[0].name, "uv-12w");
    EXPECT_EQ(spec.platforms[0].tdp, watts(12.0));
    // Unoverridden preset fields carry through.
    EXPECT_EQ(spec.platforms[0].pdnParams.supplyVoltage,
              ultraportablePreset().pdnParams.supplyVoltage);
    EXPECT_EQ(spec.platforms[1].name, "bare-20w");
    EXPECT_EQ(spec.platforms[1].pdnParams.supplyVoltage, volts(8.0));
    EXPECT_DOUBLE_EQ(spec.platforms[1].predictorHysteresis, 0.01);
}

TEST(CampaignConfigTest, BindsDeclarativeTraceEntries)
{
    std::string path = testing::TempDir() + "cfg_trace.csv";
    {
        std::ofstream out(path, std::ios::binary);
        writeTraceCsv(out, TraceGenerator(3).randomMix(
                               5, milliseconds(4.0)));
    }

    CampaignSpec spec = loadCampaignSpec(
        R"({
      "traces": [
        {"library": "bursty-compute", "seed": 7},
        {"generator": {"kind": "random-mix", "seed": 9,
                       "phases": 6, "mean_phase_ms": 5.0,
                       "ar_min": 0.5, "ar_max": 0.9},
         "tick_us": 20.0},
        {"profile": "web-browsing", "frame_ms": 20.0, "frames": 3},
        {"file": ")" +
            path + R"(", "name": "recorded"}
      ],
      "platforms": ["ultraportable-15w"],
      "pdns": ["IVR"]
    })",
        "spec.json");

    ASSERT_EQ(spec.traces.size(), 4u);
    EXPECT_EQ(spec.traces[0].kind(), TraceSpec::Kind::Library);
    EXPECT_EQ(spec.traces[0].resolve(),
              standardCampaignTraces(7).get("bursty-compute"));

    EXPECT_EQ(spec.traces[1].kind(), TraceSpec::Kind::Generator);
    EXPECT_EQ(spec.traces[1].resolve(),
              TraceGenerator(9).randomMix(6, milliseconds(5.0),
                                          0.5, 0.9));
    ASSERT_TRUE(spec.traces[1].tickOverride());
    EXPECT_EQ(*spec.traces[1].tickOverride(), microseconds(20.0));

    EXPECT_EQ(spec.traces[2].kind(), TraceSpec::Kind::Profile);
    EXPECT_EQ(spec.traces[2].resolve(),
              traceFromBatteryProfile(
                  batteryProfileByName("web-browsing"),
                  milliseconds(20.0), 3));

    EXPECT_EQ(spec.traces[3].kind(), TraceSpec::Kind::File);
    EXPECT_EQ(spec.traces[3].name(), "recorded");
    EXPECT_EQ(spec.traces[3].resolve().phases(),
              TraceGenerator(3).randomMix(5, milliseconds(4.0))
                  .phases());
}

TEST(CampaignConfigTest, ResolvesRelativeTracePathsAgainstTraceDir)
{
    std::string dir = testing::TempDir();
    {
        std::ofstream out(dir + "relative_trace.csv",
                          std::ios::binary);
        out << "duration_s,cstate,type,ar\n"
               "0.1,C0,multi-thread,0.6\n";
    }
    CampaignSpec spec = loadCampaignSpec(
        R"({
      "traces": [{"file": "relative_trace.csv"}],
      "platforms": ["ultraportable-15w"],
      "pdns": ["IVR"]
    })",
        "spec.json", dir);
    ASSERT_EQ(spec.traces.size(), 1u);
    EXPECT_EQ(spec.traces[0].name(), "relative_trace");
    EXPECT_EQ(spec.traces[0].resolve().phases().size(), 1u);
}

TEST(CampaignConfigTest, RejectsBadTraceEntries)
{
    auto wrap = [](const std::string &entry) {
        return R"({"traces": [)" + entry +
               R"(], "platforms": ["ultraportable-15w"],
                  "pdns": ["IVR"]})";
    };
    expectSpecError(wrap(R"({"name": "x"})"),
                    "exactly one source key");
    expectSpecError(
        wrap(R"({"library": "bursty-compute",
                 "profile": "web-browsing"})"),
        "exactly one source key");
    expectSpecError(wrap(R"({"library": "no-such", "seed": 7})"),
                    "no trace \"no-such\"");
    expectSpecError(wrap(R"({"generator": {"bursts": 3}})"),
                    "missing required generator key \"kind\"");
    expectSpecError(
        wrap(R"({"generator": {"kind": "white-noise"}})"),
        "unknown generator kind \"white-noise\"");
    expectSpecError(
        wrap(R"({"generator": {"kind": "random-mix",
                               "bursts": 3}})"),
        "\"bursts\" does not apply");
    expectSpecError(
        wrap(R"({"generator": {"kind": "random-mix",
                               "ar_min": 0.9, "ar_max": 0.4}})"),
        "\"ar_min\" 0.9 exceeds");
    expectSpecError(
        wrap(R"({"generator": {"kind": "day-in-the-life"},
                 "seed": 3})"),
        "put \"seed\" inside");
    expectSpecError(wrap(R"({"profile": "mining"})"),
                    "unknown battery profile \"mining\"");
    expectSpecError(
        wrap(R"({"profile": "web-browsing", "frames": 0})"),
        "\"frames\" must be in [1,");
    expectSpecError(
        wrap(R"({"library": "bursty-compute", "frame_ms": 5.0})"),
        "only applies to \"profile\" entries");
    expectSpecError(wrap(R"({"file": "/no/such/trace.csv"})"),
                    "cannot open trace file");
    expectSpecError(
        wrap(R"({"library": "bursty-compute", "tick_us": 0})"),
        "\"tick_us\" must be positive");
    expectSpecError(
        wrap(R"({"library": "bursty-compute", "name": "a,b"})"),
        "CSV metacharacters");
    expectSpecError(R"({"traces": [],
                        "platforms": ["ultraportable-15w"],
                        "pdns": ["IVR"]})",
                    "at least one trace entry");
    expectSpecError(
        wrap(R"({"library": "bursty-compute"},
                {"library": "bursty-compute", "seed": 9})"),
        "duplicate trace name \"bursty-compute\"");
}

TEST(CampaignConfigTest, BrokenTraceFileFailsAtTheSpecPosition)
{
    std::string path = testing::TempDir() + "bad_cfg_trace.csv";
    {
        std::ofstream out(path, std::ios::binary);
        out << "duration_s,cstate,type,ar\n"
               "-1,C0,multi-thread,0.5\n";
    }
    // The error must carry both the spec position and the nested
    // trace-file position.
    expectSpecError(R"({"traces": [{"file": ")" + path +
                        R"("}], "platforms": ["ultraportable-15w"],
                        "pdns": ["IVR"]})",
                    "duration must be positive", "spec.json:1:");
    expectSpecError(R"({"traces": [{"file": ")" + path +
                        R"("}], "platforms": ["ultraportable-15w"],
                        "pdns": ["IVR"]})",
                    "bad_cfg_trace.csv:2");
}

TEST(CampaignConfigTest, DeclarativeSpecRunsEndToEnd)
{
    CampaignSpec spec = load(R"({
      "traces": [
        {"generator": {"kind": "bursty-compute", "seed": 5,
                       "bursts": 2, "burst_ms": 5.0,
                       "idle_ms": 10.0}},
        {"profile": "video-playback", "frames": 2}
      ],
      "platforms": ["fanless-tablet-4w"],
      "pdns": ["IVR", "FlexWatts"],
      "mode": "pmu"
    })");
    CampaignResult result = CampaignEngine().run(spec);
    ASSERT_EQ(result.cells.size(), 4u);
    EXPECT_EQ(result.cells[0].trace, "bursty-compute");
    EXPECT_EQ(result.cells[2].trace, "video-playback-trace");
    EXPECT_GT(result.cells[0].sim.supplyEnergy, joules(0.0));
}

TEST(CampaignConfigTest, RejectsUnknownKeysEverywhere)
{
    expectSpecError(R"({"traces": {}, "platforms": ["x"],
                        "pdns": "all", "bogus": 1})",
                    "unknown spec key \"bogus\"");
    expectSpecError(R"({"traces": {"frobnicate": 1},
                        "platforms": ["x"], "pdns": "all"})",
                    "unknown \"traces\" key \"frobnicate\"");
    expectSpecError(R"({"traces": {}, "pdns": "all", "platforms":
                        [{"name": "a", "tdp": 15}]})",
                    "unknown platform key \"tdp\"");
}

TEST(CampaignConfigTest, RejectsMissingRequiredKeys)
{
    expectSpecError(R"({"platforms": ["x"], "pdns": "all"})",
                    "missing required key \"traces\"");
    expectSpecError(R"({"traces": {}, "pdns": "all"})",
                    "missing required key \"platforms\"");
    expectSpecError(R"({"traces": {}, "platforms": ["x"]})",
                    "missing required key \"pdns\"");
}

TEST(CampaignConfigTest, RejectsBadEnumValues)
{
    expectSpecError(R"({"traces": {}, "platforms":
                        ["ultraportable-15w"],
                        "pdns": ["IVR", "XVR"]})",
                    "unknown PDN kind \"XVR\"");
    expectSpecError(R"({"traces": {}, "platforms":
                        ["ultraportable-15w"], "pdns": "some"})",
                    "\"all\" or an array");
    expectSpecError(R"({"traces": {}, "platforms":
                        ["ultraportable-15w"], "pdns": ["IVR"],
                        "mode": "turbo"})",
                    "unknown simulation mode \"turbo\"");
    expectSpecError(R"({"traces": {"library": "exotic"},
                        "platforms": ["ultraportable-15w"],
                        "pdns": ["IVR"]})",
                    "unknown trace library \"exotic\"");
}

TEST(CampaignConfigTest, RejectsMissingTracesAndPresets)
{
    expectSpecError(R"({"traces": {"names": ["no-such-trace"]},
                        "platforms": ["ultraportable-15w"],
                        "pdns": ["IVR"]})",
                    "no trace \"no-such-trace\"");
    expectSpecError(R"({"traces": {}, "platforms": ["atx-750w"],
                        "pdns": ["IVR"]})",
                    "unknown platform preset \"atx-750w\"");
    expectSpecError(R"({"traces": {}, "platforms":
                        [{"tdp_w": 15.0}], "pdns": ["IVR"]})",
                    "need a \"name\"");
}

TEST(CampaignConfigTest, RejectsBadScalars)
{
    expectSpecError(R"({"traces": {"seed": 2.5},
                        "platforms": ["ultraportable-15w"],
                        "pdns": ["IVR"]})",
                    "\"seed\" must be an integer");
    expectSpecError(R"({"traces": {}, "platforms":
                        ["ultraportable-15w"], "pdns": ["IVR"],
                        "tick_us": -1})",
                    "\"tick_us\" must be positive");
    expectSpecError(R"({"traces": {}, "platforms":
                        ["ultraportable-15w"], "pdns": []})",
                    "at least one PDN kind");
    expectSpecError(R"({"traces": {"names": []},
                        "platforms": ["ultraportable-15w"],
                        "pdns": ["IVR"]})",
                    "at least one trace");
    expectSpecError(R"({"traces": {}, "platforms":
                        ["ultraportable-15w"],
                        "pdns": {"kind": "IVR"}})",
                    "expected array, got object");
    expectSpecError(R"({"traces": {}, "platforms":
                        [{"preset": "ultraportable-15w",
                          "name": "x", "supply_v": 0.0}],
                        "pdns": ["IVR"]})",
                    "\"supply_v\" must be positive");
    expectSpecError(R"({"traces": {}, "platforms":
                        [{"preset": "ultraportable-15w",
                          "name": "x",
                          "predictor_hysteresis": -0.1}],
                        "pdns": ["IVR"]})",
                    "\"predictor_hysteresis\" must be in [0, 1)");
}

TEST(CampaignConfigTest, MalformedJsonCarriesPosition)
{
    expectSpecError("{\"traces\": {},\n  \"platforms\": [,]}",
                    "unexpected character", "spec.json:2:17");
}

TEST(CampaignConfigTest, DuplicatesFailAtTheOffendingValue)
{
    expectSpecError(R"({"traces": {},
                        "platforms": ["ultraportable-15w"],
                        "pdns": ["IVR", "IVR"]})",
                    "duplicate PDN kind \"IVR\"");
    expectSpecError(R"({"traces": {"names": ["bursty-compute",
                                             "bursty-compute"]},
                        "platforms": ["ultraportable-15w"],
                        "pdns": ["IVR"]})",
                    "selected twice");
    expectSpecError(R"({"traces": {},
                        "platforms": ["ultraportable-15w",
                                      {"preset": "ultraportable-15w"}],
                        "pdns": ["IVR"]})",
                    "duplicate platform name \"ultraportable-15w\"");
    expectSpecError(R"({"traces": {},
                        "platforms": [{"preset": "ultraportable-15w",
                                       "name": "hot", "tdp_w": 90}],
                        "pdns": ["IVR"]})",
                    "\"tdp_w\" must be within");
}

TEST(CampaignConfigTest, BindsTransformChains)
{
    CampaignSpec spec = load(R"({
      "traces": [
        {"library": "bursty-compute", "name": "bursty-variant",
         "transforms": [
           {"repeat": 2},
           {"time_scale": 1.5},
           {"ar_perturb": {"delta": 0.1, "seed": 7}},
           {"concat": {"library": "day-in-the-life"}},
           {"truncate_ms": 900.0}]}
      ],
      "platforms": ["fanless-tablet-4w"],
      "pdns": ["IVR"]
    })");

    TraceSpec byHand =
        TraceSpec::library("bursty-compute", 42)
            .rename("bursty-variant")
            .transform(TraceTransform::repeat(2))
            .transform(TraceTransform::timeScale(1.5))
            .transform(TraceTransform::arPerturb(0.1, 7))
            .transform(TraceTransform::concat(
                TraceSpec::library("day-in-the-life", 42)))
            .transform(TraceTransform::truncate(
                milliseconds(900.0)));
    ASSERT_EQ(spec.traces.size(), 1u);
    EXPECT_EQ(spec.traces[0], byHand);
    EXPECT_EQ(spec.traces[0].resolve(), byHand.resolve());
    EXPECT_EQ(spec.traces[0].transforms().size(), 5u);
}

TEST(CampaignConfigTest, RejectsBadTransformEntries)
{
    auto wrap = [](const std::string &transforms) {
        return std::string(R"({"traces": [
          {"library": "bursty-compute",
           "transforms": )") +
               transforms + R"(}],
          "platforms": ["fanless-tablet-4w"], "pdns": ["IVR"]})";
    };
    expectSpecError(wrap("[]"),
                    "\"transforms\" must hold at least one");
    expectSpecError(wrap("[{}]"), "exactly one of");
    expectSpecError(wrap("[{\"repeat\": 2, \"time_scale\": 1.5}]"),
                    "exactly one of");
    expectSpecError(wrap("[{\"rotate\": 90}]"),
                    "unknown transform key \"rotate\"");
    expectSpecError(wrap("[{\"repeat\": 0}]"),
                    "\"repeat\" must be in [1, 100000]");
    expectSpecError(wrap("[{\"repeat\": 2.5}]"),
                    "\"repeat\" must be an integer");
    expectSpecError(wrap("[{\"time_scale\": 0.0}]"),
                    "\"time_scale\" must be positive");
    expectSpecError(wrap("[{\"time_scale\": -2.0}]"),
                    "\"time_scale\" must be positive");
    expectSpecError(wrap("[{\"truncate_ms\": 0.0}]"),
                    "\"truncate_ms\" must be positive");
    expectSpecError(wrap("[{\"ar_perturb\": {\"seed\": 1}}]"),
                    "missing required ar_perturb key \"delta\"");
    expectSpecError(wrap("[{\"ar_perturb\": {\"delta\": 1.5}}]"),
                    "\"delta\" must be in [0, 1]");
    expectSpecError(
        wrap("[{\"ar_perturb\": {\"delta\": 0.1, \"bias\": 1}}]"),
        "unknown ar_perturb key \"bias\"");
    // Concat operands are full trace entries, validated recursively
    // at their own position.
    expectSpecError(
        wrap("[{\"concat\": {\"library\": \"no-such-trace\"}}]"),
        "no trace \"no-such-trace\"");
    expectSpecError(
        wrap("[{\"concat\": {\"generator\": {\"kind\": "
             "\"perlin\"}}}]"),
        "unknown generator kind \"perlin\"");
}

TEST(CampaignConfigTest, TransformErrorsCarryTheValuePosition)
{
    // The offending scalar — the value 0 — sits at line 4 column
    // 36; the error must point there, not at the "repeat" key, the
    // trace entry or the document.
    expectSpecError(R"({
      "traces": [
        {"library": "bursty-compute",
         "transforms": [{"repeat": 0}]}],
      "platforms": ["fanless-tablet-4w"], "pdns": ["IVR"]})",
                    "must be in [1, 100000]",
                    "spec.json:4:36");
}

TEST(CampaignConfigTest, LoadedSpecRunsEndToEnd)
{
    CampaignSpec spec = load(R"({
      "traces": {"names": ["bursty-compute"]},
      "platforms": [{"preset": "fanless-tablet-4w",
                     "name": "tablet"}],
      "pdns": ["IVR", "FlexWatts"],
      "mode": "oracle"
    })");
    CampaignResult result = CampaignEngine().run(spec);
    ASSERT_EQ(result.cells.size(), 2u);
    EXPECT_EQ(result.cells[0].platform, "tablet");
    EXPECT_GT(result.cells[0].sim.supplyEnergy, joules(0.0));
}

} // namespace
} // namespace pdnspot
