/**
 * @file
 * Trace-transform tests: each derivation step's invariants (phase
 * counts, durations, untouched fields), deterministic double
 * resolution, chain composition, validation, equality — and the
 * campaign-level contract that transformed traces stay bit-identical
 * at any thread count and with the evaluation memo off.
 */

#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/campaign_engine.hh"
#include "common/logging.hh"
#include "workload/trace_generator.hh"
#include "workload/trace_source.hh"
#include "workload/trace_transform.hh"

namespace pdnspot
{
namespace
{

/** A short heterogeneous base: active bursts and deep-idle gaps. */
PhaseTrace
baseTrace()
{
    return TraceGenerator(17).burstyCompute(3, milliseconds(8.0),
                                            milliseconds(20.0));
}

TEST(TraceTransformTest, RepeatMultipliesPhasesAndDuration)
{
    PhaseTrace base = baseTrace();
    PhaseTrace out = TraceTransform::repeat(3).apply(base);

    ASSERT_EQ(out.phases().size(), base.phases().size() * 3);
    for (size_t i = 0; i < out.phases().size(); ++i)
        EXPECT_EQ(out.phases()[i],
                  base.phases()[i % base.phases().size()]);
    EXPECT_DOUBLE_EQ(inSeconds(out.totalDuration()),
                     3.0 * inSeconds(base.totalDuration()));

    // repeat(1) is the identity.
    EXPECT_EQ(TraceTransform::repeat(1).apply(base), base);
}

TEST(TraceTransformTest, TimeScaleStretchesDurationsOnly)
{
    PhaseTrace base = baseTrace();
    PhaseTrace out = TraceTransform::timeScale(1.5).apply(base);

    ASSERT_EQ(out.phases().size(), base.phases().size());
    for (size_t i = 0; i < out.phases().size(); ++i) {
        const TracePhase &was = base.phases()[i];
        const TracePhase &now = out.phases()[i];
        EXPECT_EQ(now.duration, was.duration * 1.5);
        EXPECT_EQ(now.cstate, was.cstate);
        EXPECT_EQ(now.type, was.type);
        EXPECT_EQ(now.ar, was.ar);
    }
}

TEST(TraceTransformTest, TruncateCutsAtTheRequestedDuration)
{
    PhaseTrace base = baseTrace();
    // Cut in the middle of the second phase.
    Time cut = base.phases()[0].duration +
               base.phases()[1].duration * 0.5;
    PhaseTrace out = TraceTransform::truncate(cut).apply(base);

    ASSERT_EQ(out.phases().size(), 2u);
    EXPECT_EQ(out.phases()[0], base.phases()[0]);
    EXPECT_EQ(out.phases()[1].cstate, base.phases()[1].cstate);
    EXPECT_DOUBLE_EQ(inSeconds(out.totalDuration()),
                     inSeconds(cut));

    // A cut exactly on a phase boundary keeps whole phases only.
    PhaseTrace exact =
        TraceTransform::truncate(base.phases()[0].duration)
            .apply(base);
    ASSERT_EQ(exact.phases().size(), 1u);
    EXPECT_EQ(exact.phases()[0], base.phases()[0]);

    // At or past the total duration the transform is a no-op.
    EXPECT_EQ(TraceTransform::truncate(base.totalDuration())
                  .apply(base),
              base);
    EXPECT_EQ(TraceTransform::truncate(base.totalDuration() +
                                       seconds(1.0))
                  .apply(base),
              base);
}

TEST(TraceTransformTest, ArPerturbJittersOnlyActivePhases)
{
    PhaseTrace base = baseTrace();
    PhaseTrace out = TraceTransform::arPerturb(0.1, 7).apply(base);

    ASSERT_EQ(out.phases().size(), base.phases().size());
    bool changed = false;
    for (size_t i = 0; i < out.phases().size(); ++i) {
        const TracePhase &was = base.phases()[i];
        const TracePhase &now = out.phases()[i];
        EXPECT_EQ(now.duration, was.duration);
        EXPECT_EQ(now.cstate, was.cstate);
        EXPECT_EQ(now.type, was.type);
        if (was.cstate != PackageCState::C0) {
            // Idle phases keep their convention AR untouched.
            EXPECT_EQ(now.ar, was.ar);
            continue;
        }
        EXPECT_GE(now.ar, 0.0);
        EXPECT_LE(now.ar, 1.0);
        EXPECT_NEAR(now.ar, was.ar, 0.1 + 1e-12);
        changed = changed || now.ar != was.ar;
    }
    EXPECT_TRUE(changed);

    // Same seed: same jitter. Different seed: a different draw
    // somewhere. Zero delta: identity.
    EXPECT_EQ(TraceTransform::arPerturb(0.1, 7).apply(base), out);
    EXPECT_NE(TraceTransform::arPerturb(0.1, 8).apply(base), out);
    EXPECT_EQ(TraceTransform::arPerturb(0.0, 7).apply(base), base);
}

TEST(TraceTransformTest, ConcatAppendsTheResolvedTail)
{
    PhaseTrace base = baseTrace();
    TraceSpec tail = TraceSpec::library("day-in-the-life", 42);
    PhaseTrace tailTrace = tail.resolve();
    PhaseTrace out = TraceTransform::concat(tail).apply(base);

    ASSERT_EQ(out.phases().size(),
              base.phases().size() + tailTrace.phases().size());
    for (size_t i = 0; i < base.phases().size(); ++i)
        EXPECT_EQ(out.phases()[i], base.phases()[i]);
    for (size_t i = 0; i < tailTrace.phases().size(); ++i)
        EXPECT_EQ(out.phases()[base.phases().size() + i],
                  tailTrace.phases()[i]);
    EXPECT_DOUBLE_EQ(inSeconds(out.totalDuration()),
                     inSeconds(base.totalDuration()) +
                         inSeconds(tailTrace.totalDuration()));
    // The result keeps the carrying trace's name, not the tail's.
    EXPECT_EQ(out.name(), base.name());
}

TEST(TraceTransformTest, ChainsApplyInAppendOrder)
{
    TraceSpec spec(baseTrace());
    spec.transform(TraceTransform::repeat(2))
        .transform(TraceTransform::timeScale(0.5));
    PhaseTrace chained = spec.resolve();

    // repeat-then-scale must equal applying the steps by hand.
    PhaseTrace byHand = TraceTransform::timeScale(0.5).apply(
        TraceTransform::repeat(2).apply(baseTrace()));
    EXPECT_EQ(chained, byHand);

    // The same steps in the other order truncate differently: order
    // matters, so the chain is genuinely sequential.
    TraceSpec reversed(baseTrace());
    reversed.transform(TraceTransform::timeScale(0.5))
        .transform(TraceTransform::truncate(milliseconds(30.0)));
    TraceSpec forward(baseTrace());
    forward.transform(TraceTransform::truncate(milliseconds(30.0)))
        .transform(TraceTransform::timeScale(0.5));
    EXPECT_NE(reversed.resolve(), forward.resolve());
}

TEST(TraceTransformTest, EveryTransformResolvesDeterministically)
{
    TraceGeneratorSpec mix;
    mix.kind = "random-mix";
    mix.seed = 23;
    mix.phases = 12;
    mix.meanPhaseLen = milliseconds(5.0);

    TraceSpec spec = TraceSpec::generator(mix);
    spec.transform(TraceTransform::repeat(2))
        .transform(TraceTransform::timeScale(1.25))
        .transform(TraceTransform::arPerturb(0.08, 5))
        .transform(TraceTransform::concat(
            TraceSpec::library("bursty-compute", 42)))
        .transform(TraceTransform::truncate(milliseconds(400.0)));

    EXPECT_EQ(spec.resolve(), spec.resolve()) << spec.describe();
    // A copied spec resolves to the same trace as the original.
    TraceSpec copy = spec;
    EXPECT_EQ(copy.resolve(), spec.resolve());
}

TEST(TraceTransformTest, RenameAndTransformsCompose)
{
    TraceSpec spec = TraceSpec::library("bursty-compute", 42);
    spec.rename("bursty-slow")
        .transform(TraceTransform::timeScale(2.0));
    EXPECT_EQ(spec.resolve().name(), "bursty-slow");
    EXPECT_EQ(spec.resolve().phases().size(),
              TraceSpec::library("bursty-compute", 42)
                  .resolve()
                  .phases()
                  .size());
}

TEST(TraceTransformTest, ValidateRejectsBadParameters)
{
    TraceSpec good = TraceSpec::library("bursty-compute", 42);
    EXPECT_NO_THROW(good.validate());

    auto with = [](TraceTransform t) {
        return TraceSpec::library("bursty-compute", 42)
            .transform(std::move(t));
    };
    EXPECT_THROW(with(TraceTransform::repeat(0)).validate(),
                 ConfigError);
    EXPECT_THROW(with(TraceTransform::timeScale(0.0)).validate(),
                 ConfigError);
    EXPECT_THROW(with(TraceTransform::timeScale(-1.5)).validate(),
                 ConfigError);
    EXPECT_THROW(
        with(TraceTransform::timeScale(
                 std::numeric_limits<double>::infinity()))
            .validate(),
        ConfigError);
    EXPECT_THROW(with(TraceTransform::truncate(seconds(0.0)))
                     .validate(),
                 ConfigError);
    EXPECT_THROW(with(TraceTransform::arPerturb(1.5, 1)).validate(),
                 ConfigError);
    EXPECT_THROW(with(TraceTransform::arPerturb(-0.1, 1)).validate(),
                 ConfigError);
    // A concat operand is validated recursively.
    EXPECT_THROW(with(TraceTransform::concat(TraceSpec::file("")))
                     .validate(),
                 ConfigError);
}

TEST(TraceTransformTest, EqualityComparesChains)
{
    auto make = [](double delta) {
        return TraceSpec::library("bursty-compute", 42)
            .transform(TraceTransform::arPerturb(delta, 7));
    };
    EXPECT_EQ(make(0.1), make(0.1));
    EXPECT_NE(make(0.1), make(0.2));
    EXPECT_NE(make(0.1),
              TraceSpec::library("bursty-compute", 42));

    // Concat compares the operand spec by value, not by pointer.
    auto concat = [](uint64_t seed) {
        return TraceSpec::library("bursty-compute", 42)
            .transform(TraceTransform::concat(
                TraceSpec::library("day-in-the-life", seed)));
    };
    EXPECT_EQ(concat(42), concat(42));
    EXPECT_NE(concat(42), concat(43));
}

TEST(TraceTransformTest, DescribeListsTheChain)
{
    TraceSpec spec = TraceSpec::library("bursty-compute", 42);
    spec.transform(TraceTransform::repeat(2))
        .transform(TraceTransform::truncate(milliseconds(120.0)));
    std::string d = spec.describe();
    EXPECT_NE(d.find("library \"bursty-compute\""),
              std::string::npos)
        << d;
    EXPECT_NE(d.find("| repeat(2)"), std::string::npos) << d;
    EXPECT_NE(d.find("| truncate(120 ms)"), std::string::npos) << d;
}

/** A campaign whose trace axis is entirely transform-derived. */
CampaignSpec
transformedCampaignSpec()
{
    CampaignSpec spec;
    spec.traces.push_back(
        TraceSpec::library("bursty-compute", 42)
            .rename("bursty-jittered")
            .transform(TraceTransform::arPerturb(0.1, 7)));
    spec.traces.push_back(
        TraceSpec::library("day-in-the-life", 42)
            .rename("day-compressed")
            .transform(TraceTransform::timeScale(0.001))
            .transform(TraceTransform::repeat(2)));
    spec.traces.push_back(
        TraceSpec::library("bursty-compute", 42)
            .rename("bursty-extended")
            .transform(TraceTransform::concat(
                TraceSpec::library("web-browsing-trace", 42)))
            .transform(TraceTransform::truncate(milliseconds(
                250.0))));
    spec.platforms = {fanlessTabletPreset(), ultraportablePreset()};
    spec.pdns = {PdnKind::IVR, PdnKind::FlexWatts};
    spec.mode = SimMode::Pmu;
    return spec;
}

TEST(TraceTransformTest, CampaignsBitIdenticalAcrossThreadCounts)
{
    CampaignSpec spec = transformedCampaignSpec();

    ParallelRunner serial(1);
    CampaignResult baseline = CampaignEngine(serial).run(spec);
    std::ostringstream baselineCsv;
    baseline.writeCsv(baselineCsv);

    for (unsigned threads : {2u, 8u}) {
        ParallelRunner runner(threads);
        CampaignResult parallel = CampaignEngine(runner).run(spec);
        EXPECT_EQ(parallel, baseline) << threads << " threads";
        std::ostringstream csv;
        parallel.writeCsv(csv);
        EXPECT_EQ(csv.str(), baselineCsv.str())
            << threads << " threads";
    }

    // The per-worker evaluation memo must not observe transforms:
    // memo off reproduces the same bytes.
    ParallelRunner runner(8);
    CampaignEngine noMemo(runner);
    noMemo.memoize(false);
    CampaignResult unmemoized = noMemo.run(spec);
    EXPECT_EQ(unmemoized, baseline);
}

} // namespace
} // namespace pdnspot
