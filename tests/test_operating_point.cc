/**
 * @file
 * Unit tests for the per-TDP operating-point builder.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "power/operating_point.hh"

namespace pdnspot
{
namespace
{

class OperatingPointTest : public ::testing::Test
{
  protected:
    OperatingPointModel opm;
};

TEST_F(OperatingPointTest, Table2NominalAnchors)
{
    // Table 2: cores 0.6-30 W, LLC 0.5-4 W, GFX 0.58-29.4 W over
    // the 4-50 W TDP range.
    EXPECT_NEAR(inWatts(opm.coresNominal(watts(4.0))), 0.60, 1e-9);
    EXPECT_NEAR(inWatts(opm.coresNominal(watts(50.0))), 30.0, 1e-9);
    EXPECT_NEAR(inWatts(opm.llcNominal(watts(4.0))), 0.50, 1e-9);
    EXPECT_NEAR(inWatts(opm.llcNominal(watts(50.0))), 4.0, 1e-9);
    EXPECT_NEAR(inWatts(opm.gfxNominal(watts(4.0))), 0.58, 1e-9);
    EXPECT_NEAR(inWatts(opm.gfxNominal(watts(50.0))), 29.4, 1e-9);
}

TEST_F(OperatingPointTest, BaselineFrequencies)
{
    // Sec. 7.1: 0.9 GHz maximum allowed core clock at 4 W TDP;
    // Table 1: up to 4 GHz cores, 1.2 GHz graphics.
    EXPECT_NEAR(inGigahertz(opm.coreBaseFrequency(watts(4.0))), 0.9,
                1e-9);
    EXPECT_NEAR(inGigahertz(opm.coreBaseFrequency(watts(50.0))), 4.0,
                1e-9);
    EXPECT_NEAR(inGigahertz(opm.gfxBaseFrequency(watts(50.0))), 1.2,
                1e-9);
}

TEST_F(OperatingPointTest, TjPolicy)
{
    // Sec. 7.1: Tj 80 C for 4-8 W TDP, 100 C above.
    EXPECT_DOUBLE_EQ(opm.defaultTj(watts(4.0)).degrees(), 80.0);
    EXPECT_DOUBLE_EQ(opm.defaultTj(watts(8.0)).degrees(), 80.0);
    EXPECT_DOUBLE_EQ(opm.defaultTj(watts(10.0)).degrees(), 100.0);
    EXPECT_DOUBLE_EQ(opm.defaultTj(watts(50.0)).degrees(), 100.0);
}

TEST_F(OperatingPointTest, MultiThreadSplitsCoresEvenly)
{
    OperatingPointModel::Query q;
    q.tdp = watts(18.0);
    PlatformState s = opm.build(q);
    const DomainState &c0 = s.domain(DomainId::Core0);
    const DomainState &c1 = s.domain(DomainId::Core1);
    EXPECT_TRUE(c0.active);
    EXPECT_TRUE(c1.active);
    EXPECT_NEAR(inWatts(c0.nominalPower), inWatts(c1.nominalPower),
                1e-12);
    EXPECT_EQ(c0.voltage, c1.voltage);
    EXPECT_FALSE(s.domain(DomainId::GFX).active);
}

TEST_F(OperatingPointTest, SingleThreadGatesSibling)
{
    OperatingPointModel::Query q;
    q.tdp = watts(18.0);
    q.type = WorkloadType::SingleThread;
    PlatformState s = opm.build(q);
    EXPECT_TRUE(s.domain(DomainId::Core0).active);
    EXPECT_FALSE(s.domain(DomainId::Core1).active);
    // The lone core turbos above the multi-thread baseline.
    EXPECT_GT(s.domain(DomainId::Core0).frequency,
              opm.coreBaseFrequency(q.tdp));
}

TEST_F(OperatingPointTest, GraphicsActivatesGfxAtHighVoltage)
{
    OperatingPointModel::Query q;
    q.tdp = watts(18.0);
    q.type = WorkloadType::Graphics;
    PlatformState s = opm.build(q);
    const DomainState &gfx = s.domain(DomainId::GFX);
    EXPECT_TRUE(gfx.active);
    EXPECT_GT(gfx.nominalPower, s.domain(DomainId::Core0).nominalPower);
    // GFX leakage fraction is high (FL = 45%).
    EXPECT_GT(gfx.leakageFraction, 0.3);
    // Cores run low and slow; GFX runs at a higher voltage.
    EXPECT_GT(gfx.voltage, s.domain(DomainId::Core0).voltage);
}

TEST_F(OperatingPointTest, UncoreIsTdpInvariant)
{
    OperatingPointModel::Query q4, q50;
    q4.tdp = watts(4.0);
    q50.tdp = watts(50.0);
    // SA/IO have narrow power ranges; only leakage (via the Tj
    // policy) differs between TDPs.
    PlatformState s4 = opm.build(q4);
    PlatformState s50 = opm.build(q50);
    EXPECT_NEAR(inWatts(s4.domain(DomainId::SA).nominalPower),
                inWatts(s50.domain(DomainId::SA).nominalPower), 0.2);
    EXPECT_NEAR(inWatts(s4.domain(DomainId::IO).nominalPower),
                inWatts(s50.domain(DomainId::IO).nominalPower), 0.2);
}

TEST_F(OperatingPointTest, CStateAnchorsMatchPaper)
{
    // Sec. 5: C0MIN 2.5 W, C2 1.2 W, C8 0.13 W.
    auto total = [&](PackageCState cs) {
        OperatingPointModel::Query q;
        q.tdp = watts(15.0);
        q.cstate = cs;
        return inWatts(opm.build(q).totalNominalPower());
    };
    EXPECT_NEAR(total(PackageCState::C0Min), 2.5, 0.05);
    EXPECT_NEAR(total(PackageCState::C2), 1.2, 0.03);
    EXPECT_NEAR(total(PackageCState::C8), 0.13, 0.01);
}

TEST_F(OperatingPointTest, CStateLadderMonotone)
{
    double prev = 1e9;
    for (PackageCState cs : batteryLifeCStates) {
        OperatingPointModel::Query q;
        q.tdp = watts(15.0);
        q.cstate = cs;
        double p = inWatts(opm.build(q).totalNominalPower());
        EXPECT_LT(p, prev) << toString(cs);
        prev = p;
    }
}

TEST_F(OperatingPointTest, DeepCStatesGateCompute)
{
    OperatingPointModel::Query q;
    q.tdp = watts(15.0);
    q.cstate = PackageCState::C8;
    PlatformState s = opm.build(q);
    for (DomainId id : computeDomains)
        EXPECT_FALSE(s.domain(id).active) << toString(id);
    EXPECT_TRUE(s.domain(DomainId::SA).active);
}

TEST_F(OperatingPointTest, FreqMultiplierScalesSuperlinearly)
{
    OperatingPointModel::Query base, fast;
    base.tdp = fast.tdp = watts(18.0);
    fast.freqMultiplier = 1.2;
    Power p0 = opm.build(base).domain(DomainId::Core0).nominalPower;
    Power p1 = opm.build(fast).domain(DomainId::Core0).nominalPower;
    // +20% clock costs more than +20% power (voltage rises too).
    EXPECT_GT(p1 / p0, 1.25);
}

TEST_F(OperatingPointTest, FreqMultiplierClampsAtFmax)
{
    OperatingPointModel::Query q;
    q.tdp = watts(50.0); // baseline already at 4 GHz
    q.freqMultiplier = 3.0;
    PlatformState s = opm.build(q);
    EXPECT_NEAR(inGigahertz(s.domain(DomainId::Core0).frequency), 4.0,
                1e-9);
}

TEST_F(OperatingPointTest, GraphicsMultiplierTargetsGfx)
{
    OperatingPointModel::Query base, fast;
    base.tdp = fast.tdp = watts(18.0);
    base.type = fast.type = WorkloadType::Graphics;
    fast.freqMultiplier = 1.3;
    PlatformState s0 = opm.build(base);
    PlatformState s1 = opm.build(fast);
    EXPECT_GT(s1.domain(DomainId::GFX).nominalPower,
              s0.domain(DomainId::GFX).nominalPower);
    EXPECT_NEAR(inWatts(s1.domain(DomainId::Core0).nominalPower),
                inWatts(s0.domain(DomainId::Core0).nominalPower),
                1e-9);
}

TEST_F(OperatingPointTest, ColderTjReducesPower)
{
    OperatingPointModel::Query hot, cold;
    hot.tdp = cold.tdp = watts(18.0);
    cold.tj = Celsius(50.0);
    EXPECT_LT(inWatts(opm.build(cold).totalNominalPower()),
              inWatts(opm.build(hot).totalNominalPower()));
}

TEST_F(OperatingPointTest, RejectsOutOfRangeQueries)
{
    OperatingPointModel::Query q;
    q.tdp = watts(2.0);
    EXPECT_THROW(opm.build(q), ConfigError);
    q.tdp = watts(60.0);
    EXPECT_THROW(opm.build(q), ConfigError);
    q.tdp = watts(15.0);
    q.ar = 0.0;
    EXPECT_THROW(opm.build(q), ConfigError);
    q.ar = 0.5;
    q.freqMultiplier = 0.0;
    EXPECT_THROW(opm.build(q), ConfigError);
}

TEST_F(OperatingPointTest, MaxVoltageHelper)
{
    OperatingPointModel::Query q;
    q.tdp = watts(18.0);
    q.type = WorkloadType::Graphics;
    PlatformState s = opm.build(q);
    Voltage vmax = s.maxVoltage(computeDomains);
    EXPECT_EQ(vmax, s.domain(DomainId::GFX).voltage);
}

/** Property: nominal powers interpolate monotonically across TDP. */
class TdpSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(TdpSweep, ComputePowerGrowsWithTdp)
{
    OperatingPointModel opm;
    double t = GetParam();
    OperatingPointModel::Query lo, hi;
    lo.tdp = watts(t);
    hi.tdp = watts(t + 4.0);
    Power plo = opm.build(lo).totalNominalPower();
    Power phi = opm.build(hi).totalNominalPower();
    EXPECT_LT(inWatts(plo), inWatts(phi));
}

INSTANTIATE_TEST_SUITE_P(Grid, TdpSweep,
                         ::testing::Values(4.0, 8.0, 14.0, 22.0, 31.0,
                                           40.0, 46.0));

} // anonymous namespace
} // namespace pdnspot
