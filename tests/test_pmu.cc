/**
 * @file
 * Unit tests for the PMU: activity sensors, workload detection,
 * power-budget management, and the firmware loop.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "pdnspot/platform.hh"
#include "pmu/activity_sensor.hh"
#include "pmu/pmu.hh"
#include "pmu/power_budget.hh"
#include "pmu/workload_detector.hh"

namespace pdnspot
{
namespace
{

TEST(ActivitySensor, ConvergesToTrueAr)
{
    ActivitySensor s(1);
    for (int i = 0; i < 200; ++i)
        s.observe(0.72);
    EXPECT_NEAR(s.estimate(), 0.72, 0.03);
    EXPECT_EQ(s.samples(), 200u);
}

TEST(ActivitySensor, TracksStepChange)
{
    ActivitySensor s(2);
    for (int i = 0; i < 100; ++i)
        s.observe(0.40);
    for (int i = 0; i < 100; ++i)
        s.observe(0.80);
    EXPECT_NEAR(s.estimate(), 0.80, 0.05);
}

TEST(ActivitySensor, EwmaSmoothing)
{
    // A single outlier sample must not yank the estimate.
    ActivitySensor s(3);
    for (int i = 0; i < 100; ++i)
        s.observe(0.50);
    double before = s.estimate();
    s.observe(1.0);
    EXPECT_LT(s.estimate() - before, 0.2);
}

TEST(ActivitySensor, ResetAndValidation)
{
    ActivitySensor s(4);
    s.reset(0.9);
    EXPECT_DOUBLE_EQ(s.estimate(), 0.9);
    EXPECT_THROW(s.observe(0.0), ConfigError);
    EXPECT_THROW(s.observe(1.5), ConfigError);
    EXPECT_THROW(ActivitySensor(1, 0.0), ConfigError);
    EXPECT_THROW(ActivitySensor(1, 0.2, 0.9), ConfigError);
}

TEST(ActivitySensor, DeterministicAcrossRuns)
{
    ActivitySensor a(7), b(7);
    for (int i = 0; i < 50; ++i) {
        a.observe(0.6);
        b.observe(0.6);
    }
    EXPECT_DOUBLE_EQ(a.estimate(), b.estimate());
}

TEST(WorkloadDetector, ClassifiesPerPaper)
{
    EXPECT_EQ(detectWorkloadType(true, 2), WorkloadType::Graphics);
    EXPECT_EQ(detectWorkloadType(true, 0), WorkloadType::Graphics);
    EXPECT_EQ(detectWorkloadType(false, 2), WorkloadType::MultiThread);
    EXPECT_EQ(detectWorkloadType(false, 1), WorkloadType::SingleThread);
    EXPECT_EQ(detectWorkloadType(false, 0), WorkloadType::BatteryLife);
}

TEST(WorkloadDetector, ClassifiesFromPlatformState)
{
    OperatingPointModel opm;
    OperatingPointModel::Query q;
    q.tdp = watts(18.0);
    q.type = WorkloadType::Graphics;
    EXPECT_EQ(detectWorkloadType(opm.build(q)), WorkloadType::Graphics);
    q.type = WorkloadType::SingleThread;
    EXPECT_EQ(detectWorkloadType(opm.build(q)),
              WorkloadType::SingleThread);
    q.type = WorkloadType::MultiThread;
    q.cstate = PackageCState::C8;
    EXPECT_EQ(detectWorkloadType(opm.build(q)),
              WorkloadType::BatteryLife);
}

TEST(PowerBudgetManager, ThrottlesWhenOverBudget)
{
    PowerBudgetManager m(watts(10.0));
    for (int i = 0; i < 200; ++i)
        m.observe(watts(14.0), milliseconds(1.0));
    EXPECT_LT(m.recommendedMultiplier(), 1.0);
    EXPECT_NEAR(inWatts(m.averagePower()), 14.0, 0.5);
}

TEST(PowerBudgetManager, ReleasesWhenUnderBudget)
{
    PowerBudgetManager m(watts(10.0));
    for (int i = 0; i < 200; ++i)
        m.observe(watts(6.0), milliseconds(1.0));
    EXPECT_GT(m.recommendedMultiplier(), 1.0);
    EXPECT_LE(m.recommendedMultiplier(), 2.0);
}

TEST(PowerBudgetManager, RejectsBadConfig)
{
    EXPECT_THROW(PowerBudgetManager(watts(0.0)), ConfigError);
    EXPECT_THROW(PowerBudgetManager(watts(5.0), seconds(0.0)),
                 ConfigError);
    EXPECT_THROW(PowerBudgetManager(watts(5.0), seconds(1.0), 0.5),
                 ConfigError);
    PowerBudgetManager m(watts(10.0));
    EXPECT_THROW(m.observe(watts(5.0), seconds(0.0)), ConfigError);
}

class PmuTest : public ::testing::Test
{
  protected:
    PmuTest() : platform() {}

    TracePhase
    activePhase(WorkloadType type, double ar)
    {
        TracePhase p;
        p.duration = milliseconds(100.0);
        p.cstate = PackageCState::C0;
        p.type = type;
        p.ar = ar;
        return p;
    }

    Platform platform;
};

TEST_F(PmuTest, SwitchesToLdoModeOnIdleWorkload)
{
    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    cfg.initialMode = HybridMode::IvrMode;
    Pmu pmu(cfg, platform.predictor());

    TracePhase idle;
    idle.duration = milliseconds(100.0);
    idle.cstate = PackageCState::C8;
    idle.type = WorkloadType::BatteryLife;
    idle.ar = 0.3;

    for (double ms = 0.0; ms <= 50.0; ms += 1.0)
        pmu.advanceTo(milliseconds(ms), idle);
    EXPECT_EQ(pmu.configuredMode(), HybridMode::LdoMode);
    EXPECT_GE(pmu.switchFlow().switchCount(), 1u);
}

TEST_F(PmuTest, SwitchesToIvrModeOnHeavyHighTdpWork)
{
    PmuConfig cfg;
    cfg.tdp = watts(50.0);
    cfg.initialMode = HybridMode::LdoMode;
    Pmu pmu(cfg, platform.predictor());

    TracePhase heavy = activePhase(WorkloadType::MultiThread, 0.8);
    for (double ms = 0.0; ms <= 50.0; ms += 1.0)
        pmu.advanceTo(milliseconds(ms), heavy);
    EXPECT_EQ(pmu.configuredMode(), HybridMode::IvrMode);
}

TEST_F(PmuTest, StaysInLdoModeAtLowTdp)
{
    PmuConfig cfg;
    cfg.tdp = watts(4.0);
    cfg.initialMode = HybridMode::LdoMode;
    Pmu pmu(cfg, platform.predictor());

    TracePhase heavy = activePhase(WorkloadType::MultiThread, 0.8);
    for (double ms = 0.0; ms <= 100.0; ms += 1.0)
        pmu.advanceTo(milliseconds(ms), heavy);
    EXPECT_EQ(pmu.configuredMode(), HybridMode::LdoMode);
    EXPECT_EQ(pmu.switchFlow().switchCount(), 0u);
}

TEST_F(PmuTest, EvaluatesAtConfiguredCadence)
{
    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu pmu(cfg, platform.predictor());
    TracePhase ph = activePhase(WorkloadType::MultiThread, 0.6);
    pmu.advanceTo(milliseconds(95.0), ph);
    // 10 ms cadence: evaluations at 10, 20, ..., 90.
    EXPECT_EQ(pmu.evaluations(), 9u);
}

TEST_F(PmuTest, ArEstimateFollowsPhase)
{
    PmuConfig cfg;
    cfg.tdp = watts(15.0);
    Pmu pmu(cfg, platform.predictor());
    TracePhase ph = activePhase(WorkloadType::MultiThread, 0.77);
    for (double ms = 0.0; ms <= 60.0; ms += 1.0)
        pmu.advanceTo(milliseconds(ms), ph);
    EXPECT_NEAR(pmu.arEstimate(), 0.77, 0.05);
}

TEST_F(PmuTest, RejectsBadCadence)
{
    PmuConfig cfg;
    cfg.sensorPeriod = milliseconds(20.0);
    cfg.evalInterval = milliseconds(10.0);
    EXPECT_THROW(Pmu(cfg, platform.predictor()), ConfigError);
}

} // anonymous namespace
} // namespace pdnspot
