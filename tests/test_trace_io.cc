/**
 * @file
 * File-backed trace import/export tests: the CSV
 * write -> read -> write byte fixpoint, positional errors from
 * malformed CSV rows and JSON trace documents, and the
 * TracePhase-validity checks at the import boundary.
 */

#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "config/json.hh"
#include "workload/trace_generator.hh"
#include "workload/trace_io.hh"

namespace pdnspot
{
namespace
{

/** One-line ConfigError carrying `position` and `needle`. */
void
expectTraceError(const std::function<void()> &parse,
                 const std::string &needle,
                 const std::string &position)
{
    try {
        parse();
        FAIL() << "no error raised (wanted \"" << needle << "\")";
    } catch (const ConfigError &e) {
        std::string what = e.what();
        EXPECT_EQ(what.find('\n'), std::string::npos)
            << "multi-line error: " << what;
        EXPECT_NE(what.find(position), std::string::npos)
            << "expected position \"" << position
            << "\" in: " << what;
        EXPECT_NE(what.find(needle), std::string::npos)
            << "expected \"" << needle << "\" in: " << what;
    }
}

void
expectCsvError(const std::string &body, const std::string &needle,
               const std::string &position)
{
    expectTraceError(
        [&] {
            std::istringstream is(body);
            readTraceCsv(is, "t", "trace.csv");
        },
        needle, position);
}

void
expectJsonTraceError(const std::string &text,
                     const std::string &needle,
                     const std::string &position = "trace.json:")
{
    expectTraceError(
        [&] {
            traceFromJson(parseJson(text, "trace.json"), "t");
        },
        needle, position);
}

TEST(TraceCsvTest, WriteReadWriteIsAByteFixpoint)
{
    TraceGenerator gen(9);
    for (const PhaseTrace &trace :
         {gen.burstyCompute(5, milliseconds(8.0), milliseconds(20.0)),
          gen.randomMix(40, milliseconds(12.0)),
          gen.dayInTheLife()}) {
        std::stringstream first;
        writeTraceCsv(first, trace);

        PhaseTrace reread = readTraceCsv(first, trace.name(), "mem");
        EXPECT_EQ(reread, trace);

        std::stringstream second;
        writeTraceCsv(second, reread);
        EXPECT_EQ(second.str(), first.str());
    }
}

TEST(TraceCsvTest, FileRoundTripPreservesPhases)
{
    std::string path = testing::TempDir() + "roundtrip_trace.csv";
    PhaseTrace trace =
        TraceGenerator(3).burstyCompute(3, milliseconds(5.0),
                                        milliseconds(10.0));
    {
        std::ofstream out(path, std::ios::binary);
        writeTraceCsv(out, trace);
    }
    PhaseTrace reread = readTraceCsvFile(path, trace.name());
    EXPECT_EQ(reread, trace);
}

TEST(TraceCsvTest, RejectsMalformedInputWithLinePositions)
{
    expectCsvError("nope\n", "unrecognized trace header",
                   "trace.csv:1");
    expectCsvError("duration_s,cstate,type,ar\n", "no phases",
                   "trace.csv:1");
    expectCsvError("duration_s,cstate,type,ar\n0.1,C0\n",
                   "expected 4 columns", "trace.csv:2");
    expectCsvError("duration_s,cstate,type,ar\n"
                   "0.1,C0,multi-thread,0.5\n"
                   "zap,C0,multi-thread,0.5\n",
                   "malformed number \"zap\"", "trace.csv:3");
    expectCsvError("duration_s,cstate,type,ar\n"
                   "0.1,C9,multi-thread,0.5\n",
                   "unknown C-state \"C9\"", "trace.csv:2");
    expectCsvError("duration_s,cstate,type,ar\n"
                   "0.1,C0,turbo,0.5\n",
                   "unknown workload type \"turbo\"", "trace.csv:2");
}

TEST(TraceCsvTest, RejectsInvalidPhaseFieldsWithLinePositions)
{
    expectCsvError("duration_s,cstate,type,ar\n"
                   "-0.1,C0,multi-thread,0.5\n",
                   "duration must be positive", "trace.csv:2");
    expectCsvError("duration_s,cstate,type,ar\n"
                   "0,C0,multi-thread,0.5\n",
                   "duration must be positive", "trace.csv:2");
    expectCsvError("duration_s,cstate,type,ar\n"
                   "0.1,C0,multi-thread,1.5\n",
                   "activity ratio must be in [0, 1]",
                   "trace.csv:2");
}

TEST(TraceJsonTest, BindsActiveAndIdlePhases)
{
    PhaseTrace trace = traceFromJson(
        parseJson(R"({"phases": [
          {"duration_ms": 40.0, "cstate": "C0",
           "type": "single-thread", "ar": 0.45},
          {"duration_ms": 5.0, "cstate": "C0"},
          {"duration_ms": 120.0, "cstate": "C8"}
        ]})",
                  "trace.json"),
        "office");

    ASSERT_EQ(trace.phases().size(), 3u);
    EXPECT_EQ(trace.name(), "office");
    EXPECT_EQ(trace.phases()[0].duration, milliseconds(40.0));
    EXPECT_EQ(trace.phases()[0].type, WorkloadType::SingleThread);
    EXPECT_DOUBLE_EQ(trace.phases()[0].ar, 0.45);
    // C0 without explicit fields keeps the TracePhase defaults.
    EXPECT_EQ(trace.phases()[1].type, TracePhase{}.type);
    EXPECT_DOUBLE_EQ(trace.phases()[1].ar, TracePhase{}.ar);
    // Idle phases follow the battery-life convention.
    EXPECT_EQ(trace.phases()[2].cstate, PackageCState::C8);
    EXPECT_EQ(trace.phases()[2].type, WorkloadType::BatteryLife);
    EXPECT_DOUBLE_EQ(trace.phases()[2].ar, 0.3);
}

TEST(TraceJsonTest, RejectsBadDocumentsWithPositions)
{
    expectJsonTraceError(R"({})", "missing required key \"phases\"");
    expectJsonTraceError(R"({"phases": []})", "at least one phase");
    expectJsonTraceError(R"({"phases": [], "bogus": 1})",
                         "unknown trace key \"bogus\"");
    expectJsonTraceError(
        R"({"phases": [{"cstate": "C0"}]})",
        "missing required phase key \"duration_ms\"");
    expectJsonTraceError(R"({"phases": [{"duration_ms": 5}]})",
                         "missing required phase key \"cstate\"");
    expectJsonTraceError(
        R"({"phases": [{"duration_ms": 5, "cstate": "C0",
                        "freq": 3.0}]})",
        "unknown phase key \"freq\"");
    expectJsonTraceError(
        R"({"phases": [{"duration_ms": 5, "cstate": "C1"}]})",
        "unknown C-state \"C1\"");
}

TEST(TraceJsonTest, RejectsInvalidPhaseValuesWithPositions)
{
    expectJsonTraceError(
        R"({"phases": [{"duration_ms": -5, "cstate": "C0"}]})",
        "duration must be positive");
    expectJsonTraceError(
        R"({"phases": [{"duration_ms": 5, "cstate": "C0",
                        "ar": 1.5}]})",
        "activity ratio must be in [0, 1]");
}

TEST(TraceJsonTest, RejectsC0OnlyFieldsOnIdlePhases)
{
    expectJsonTraceError(
        R"({"phases": [{"duration_ms": 5, "cstate": "C8",
                        "ar": 0.5}]})",
        "\"ar\" is a C0-only field");
    expectJsonTraceError(
        R"({"phases": [{"duration_ms": 5, "cstate": "C6",
                        "type": "graphics"}]})",
        "\"type\" is a C0-only field");
    expectJsonTraceError(
        R"({"phases": [{"duration_ms": 5, "cstate": "C0MIN",
                        "ar": 0.2}]})",
        "C0MIN phases take neither");
}

TEST(TraceFileTest, DispatchesOnExtension)
{
    std::string dir = testing::TempDir();

    std::string csvPath = dir + "dispatch_trace.csv";
    {
        std::ofstream out(csvPath, std::ios::binary);
        out << "duration_s,cstate,type,ar\n"
               "0.25,C0,multi-thread,0.71\n";
    }
    PhaseTrace fromCsv = readTraceFile(csvPath, "by-csv");
    EXPECT_EQ(fromCsv.name(), "by-csv");
    ASSERT_EQ(fromCsv.phases().size(), 1u);
    EXPECT_EQ(fromCsv.phases()[0].type, WorkloadType::MultiThread);

    std::string jsonPath = dir + "dispatch_trace.json";
    {
        std::ofstream out(jsonPath, std::ios::binary);
        out << R"({"phases": [{"duration_ms": 250.0,
                               "cstate": "C0",
                               "type": "multi-thread",
                               "ar": 0.71}]})";
    }
    PhaseTrace fromJson = readTraceFile(jsonPath, "by-json");
    EXPECT_EQ(fromJson.phases(), fromCsv.phases());

    EXPECT_THROW(readTraceFile(dir + "trace.xml", "t"), ConfigError);
    EXPECT_THROW(readTraceFile(dir + "no_such_trace.csv", "t"),
                 ConfigError);
}

TEST(TraceFileTest, FileStemDerivesDefaultNames)
{
    EXPECT_EQ(traceFileStem("traces/office_burst.csv"),
              "office_burst");
    EXPECT_EQ(traceFileStem("/a/b/c.json"), "c");
    EXPECT_EQ(traceFileStem("plain"), "plain");
    EXPECT_EQ(traceFileStem(".hidden"), ".hidden");
}

} // namespace
} // namespace pdnspot
