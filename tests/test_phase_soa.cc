/**
 * @file
 * PhaseSoA tests: trace -> structure-of-arrays resolution (dedup
 * counts, order preservation), signed-zero/NaN canonicalization of
 * the dedup key, bit-identical batched simulation against the
 * phase-by-phase path, and the EteeMemo zero-AR keying regression.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "pdnspot/platform.hh"
#include "sim/etee_memo.hh"
#include "sim/interval_simulator.hh"
#include "workload/phase_soa.hh"
#include "workload/trace_generator.hh"

namespace pdnspot
{
namespace
{

TEST(PhaseSoATest, ResolvesBatteryProfileToFewUniqueStates)
{
    // 64 frames revisit the profile's handful of residency states;
    // the SoA must collapse them while keeping every phase slot.
    PhaseTrace trace = traceFromBatteryProfile(
        videoPlayback(), milliseconds(33.3), 64);
    PhaseSoA soa(trace);

    EXPECT_EQ(soa.phaseCount(), trace.phases().size());
    EXPECT_EQ(soa.durations().size(), soa.phaseCount());
    EXPECT_EQ(soa.uniqueIndex().size(), soa.phaseCount());
    ASSERT_GT(soa.uniqueCount(), 0u);
    // One frame's worth of states, not one per phase.
    EXPECT_LE(soa.uniqueCount(), trace.phases().size() / 32);

    // The SoA must reconstruct the trace: same durations in order,
    // and each phase's state equal to its unique representative
    // (modulo AR canonicalization, identity for this trace).
    for (size_t p = 0; p < soa.phaseCount(); ++p) {
        const TracePhase &phase = trace.phases()[p];
        ASSERT_LT(soa.uniqueIndex()[p], soa.uniqueCount());
        const TracePhase &rep =
            soa.uniquePhases()[soa.uniqueIndex()[p]];
        EXPECT_EQ(soa.durations()[p], phase.duration);
        EXPECT_EQ(rep.cstate, phase.cstate);
        EXPECT_EQ(rep.type, phase.type);
        EXPECT_EQ(rep.ar, canonicalActivityRatio(phase.ar));
    }
}

TEST(PhaseSoATest, SignedZeroArCollapsesToOneState)
{
    // -0.0 == +0.0 numerically, but the bit patterns differ; the
    // dedup key must not split (or order-dependently merge) them.
    TracePhase zero{milliseconds(1.0), PackageCState::C0,
                    WorkloadType::MultiThread, 0.0};
    TracePhase negZero = zero;
    negZero.ar = -0.0;
    TracePhase busy = zero;
    busy.ar = 0.56;

    PhaseSoA soa(
        PhaseTrace("zeros", {negZero, busy, zero, negZero}));
    EXPECT_EQ(soa.phaseCount(), 4u);
    EXPECT_EQ(soa.uniqueCount(), 2u);
    EXPECT_EQ(soa.uniqueIndex()[0], soa.uniqueIndex()[2]);
    EXPECT_EQ(soa.uniqueIndex()[0], soa.uniqueIndex()[3]);
    // The representative never carries the sign bit.
    for (const TracePhase &rep : soa.uniquePhases())
        EXPECT_FALSE(std::signbit(rep.ar)) << rep.ar;
}

TEST(PhaseSoATest, CanonicalActivityRatioNormalizes)
{
    EXPECT_FALSE(std::signbit(canonicalActivityRatio(-0.0)));
    EXPECT_EQ(canonicalActivityRatio(0.0), 0.0);
    EXPECT_EQ(canonicalActivityRatio(0.56), 0.56);
    EXPECT_TRUE(std::isnan(canonicalActivityRatio(
        std::numeric_limits<double>::quiet_NaN())));
}

/**
 * A trace mixing generator phases with idle phases carrying an
 * exactly-zero AR column — the form imported idle phases take (the
 * model ignores AR for gated states, so 0 is a valid value there).
 */
PhaseTrace
mixedZeroTrace()
{
    TraceGenerator gen(13);
    PhaseTrace trace =
        gen.burstyCompute(3, milliseconds(5.0), milliseconds(15.0));
    TracePhase zero{milliseconds(2.0), PackageCState::C8,
                    WorkloadType::MultiThread, 0.0};
    TracePhase negZero = zero;
    negZero.ar = -0.0;
    trace.append(zero);
    trace.append(negZero);
    return trace;
}

TEST(PhaseSoATest, BatchedRunsMatchPerPhaseRunsBitIdentically)
{
    Platform platform(ultraportablePreset());
    IntervalSimulator sim(platform.operatingPoints(),
                          platform.config().tdp);
    PhaseTrace trace = mixedZeroTrace();
    PhaseSoA soa(trace);

    for (PdnKind kind : allPdnKinds) {
        const PdnModel &pdn = platform.pdn(kind);
        EXPECT_EQ(sim.run(soa, pdn), sim.run(trace, pdn))
            << toString(kind);

        EteeMemo memo(platform.operatingPoints(),
                      platform.config().tdp);
        EXPECT_EQ(sim.run(soa, pdn, &memo), sim.run(trace, pdn))
            << toString(kind) << " (memoized)";
    }

    // Oracle path: pinned-mode evaluation plus mode residency.
    EXPECT_EQ(sim.runOracle(soa, platform.flexWatts()),
              sim.runOracle(trace, platform.flexWatts()));
    EteeMemo memo(platform.operatingPoints(),
                  platform.config().tdp);
    EXPECT_EQ(sim.runOracle(soa, platform.flexWatts(), &memo),
              sim.runOracle(trace, platform.flexWatts()));
}

TEST(EteeMemoTest, SignedZeroArSharesOneMemoEntry)
{
    // Regression: StateKey once held the raw double, so a -0.0 and a
    // +0.0 phase compared equal and the stored state kept whichever
    // arrived first — contents (and the stats) depended on
    // evaluation order. The bit-cast canonical key makes the pair
    // one entry with one state build.
    Platform platform(ultraportablePreset());
    IntervalSimulator sim(platform.operatingPoints(),
                          platform.config().tdp);
    TracePhase zero{milliseconds(2.0), PackageCState::C8,
                    WorkloadType::MultiThread, 0.0};
    TracePhase negZero = zero;
    negZero.ar = -0.0;

    for (auto phases :
         {std::vector<TracePhase>{zero, negZero},
          std::vector<TracePhase>{negZero, zero}}) {
        PhaseTrace trace("zero-ar", phases);
        EteeMemo memo(platform.operatingPoints(),
                      platform.config().tdp);
        SimResult memoized =
            sim.run(trace, platform.pdn(PdnKind::IVR), &memo);
        EXPECT_EQ(memoized,
                  sim.run(trace, platform.pdn(PdnKind::IVR)));
        // One logical state: the second phase is a pure hit.
        EXPECT_EQ(memo.stateBuilds(), 1u);
        EXPECT_EQ(memo.pdnEvaluations(), 1u);
        EXPECT_GT(memo.hits(), 0u);
        EXPECT_EQ(memo.probes(), memo.hits() + memo.misses());
    }
}

} // anonymous namespace
} // namespace pdnspot
