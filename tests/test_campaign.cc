/**
 * @file
 * Campaign subsystem tests: spec validation, cross-product coverage
 * and ordering, bit-identical results across thread counts, the CSV
 * write -> read -> write fixpoint, and summary statistics.
 */

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign_engine.hh"
#include "common/logging.hh"
#include "sim/etee_memo.hh"
#include "sim/interval_simulator.hh"
#include "workload/trace_generator.hh"
#include "workload/trace_io.hh"

namespace pdnspot
{
namespace
{

/** A small but heterogeneous spec: 3 traces x 2 platforms x 3 PDNs. */
CampaignSpec
smallSpec(SimMode mode)
{
    CampaignSpec spec;
    TraceGenerator gen(11);
    spec.traces.push_back(gen.burstyCompute(3, milliseconds(5.0),
                                            milliseconds(15.0)));
    spec.traces.push_back(gen.randomMix(12, milliseconds(8.0)));
    spec.traces.push_back(traceFromBatteryProfile(
        videoPlayback(), milliseconds(33.3), 2));
    spec.platforms = {fanlessTabletPreset(), ultraportablePreset()};
    spec.pdns = {PdnKind::IVR, PdnKind::LDO, PdnKind::FlexWatts};
    spec.mode = mode;
    return spec;
}

TEST(CampaignSpecTest, ValidateRejectsEmptyAxes)
{
    CampaignSpec spec = smallSpec(SimMode::Static);
    spec.traces.clear();
    EXPECT_THROW(spec.validate(), ConfigError);

    spec = smallSpec(SimMode::Static);
    spec.platforms.clear();
    EXPECT_THROW(spec.validate(), ConfigError);

    spec = smallSpec(SimMode::Static);
    spec.pdns.clear();
    EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(CampaignSpecTest, ValidateRejectsDuplicateNames)
{
    CampaignSpec spec = smallSpec(SimMode::Static);
    spec.traces.push_back(spec.traces.front());
    EXPECT_THROW(spec.validate(), ConfigError);

    spec = smallSpec(SimMode::Static);
    spec.platforms.push_back(spec.platforms.front());
    EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(CampaignSpecTest, ValidateRejectsDuplicatePdnKinds)
{
    CampaignSpec spec = smallSpec(SimMode::Static);
    spec.pdns.push_back(spec.pdns.front());
    EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(CampaignSpecTest, ValidateRejectsOutOfRangeTdp)
{
    CampaignSpec spec = smallSpec(SimMode::Static);
    spec.platforms[0].tdp = watts(2.0);
    EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(CampaignSpecTest, ValidateRejectsNonPositiveTick)
{
    CampaignSpec spec = smallSpec(SimMode::Static);
    spec.tick = seconds(0.0);
    EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(CampaignSpecTest, SimModeNamesRoundTrip)
{
    for (SimMode mode :
         {SimMode::Static, SimMode::Pmu, SimMode::Oracle})
        EXPECT_EQ(simModeFromString(toString(mode)), mode);
    EXPECT_THROW(simModeFromString("bogus"), ConfigError);
}

/**
 * A spec exercising every TraceSpec provenance kind at once —
 * inline, library, generator, battery profile, and a trace file
 * written into the gtest temp dir — so lazy per-worker resolution
 * is covered end to end.
 */
CampaignSpec
declarativeSpec(SimMode mode)
{
    // Path is per-process: ctest runs each test case as its own
    // process, and a shared fixed name would let one process rewrite
    // the file while another reads it.
    static const std::string path = [] {
        std::string p = testing::TempDir() + "campaign_trace_" +
                        std::to_string(::getpid()) + ".csv";
        std::ofstream out(p, std::ios::binary);
        writeTraceCsv(out,
                      TraceGenerator(21).randomMix(
                          10, milliseconds(6.0)));
        return p;
    }();

    TraceGeneratorSpec mix;
    mix.kind = "random-mix";
    mix.seed = 13;
    mix.phases = 8;
    mix.meanPhaseLen = milliseconds(5.0);

    CampaignSpec spec;
    spec.traces.push_back(TraceGenerator(6).burstyCompute(
        2, milliseconds(4.0), milliseconds(10.0)));
    spec.traces.push_back(TraceSpec::library("day-in-the-life", 42));
    spec.traces.push_back(TraceSpec::generator(mix));
    spec.traces.push_back(
        TraceSpec::profile("video-playback", milliseconds(33.3), 2));
    spec.traces.push_back(TraceSpec::file(path));
    spec.platforms = {fanlessTabletPreset(), ultraportablePreset()};
    spec.pdns = {PdnKind::IVR, PdnKind::FlexWatts};
    spec.mode = mode;
    return spec;
}

TEST(CampaignEngineTest, CoversFullCrossProductInSpecOrder)
{
    CampaignSpec spec = smallSpec(SimMode::Static);
    CampaignResult result = CampaignEngine().run(spec);
    ASSERT_EQ(result.cells.size(), spec.cellCount());

    size_t t = 0;
    for (const PlatformConfig &pf : spec.platforms) {
        for (const TraceSpec &trace : spec.traces) {
            for (PdnKind kind : spec.pdns) {
                const CampaignCellResult &c = result.cells[t++];
                EXPECT_EQ(c.platform, pf.name);
                EXPECT_EQ(c.trace, trace.name());
                EXPECT_EQ(c.pdn, kind);
                EXPECT_EQ(c.mode, SimMode::Static);
                EXPECT_EQ(c.sim.duration,
                          trace.resolve().totalDuration());
                EXPECT_GT(c.sim.supplyEnergy, joules(0.0));
                EXPECT_GT(c.sim.averageEtee(), 0.0);
                EXPECT_LE(c.sim.averageEtee(), 1.0);
            }
        }
    }
}

TEST(CampaignEngineTest, DeterministicAcrossThreadCounts)
{
    for (SimMode mode :
         {SimMode::Static, SimMode::Pmu, SimMode::Oracle}) {
        CampaignSpec spec = smallSpec(mode);
        ParallelRunner serial(1);
        CampaignResult baseline =
            CampaignEngine(serial).run(spec);
        for (unsigned threads : {2u, 8u}) {
            ParallelRunner runner(threads);
            CampaignResult parallel =
                CampaignEngine(runner).run(spec);
            EXPECT_EQ(parallel, baseline)
                << toString(mode) << " mode with " << threads
                << " threads";
        }
    }
}

TEST(CampaignEngineTest, PmuModePaysSwitchOverheads)
{
    CampaignSpec spec = smallSpec(SimMode::Pmu);
    CampaignResult result = CampaignEngine().run(spec);

    // The bursty trace flips between active and deep-idle phases, so
    // the PMU must switch modes at least once somewhere; only
    // FlexWatts cells can ever report switches.
    uint64_t flexSwitches = 0;
    for (const CampaignCellResult &c : result.cells) {
        if (c.pdn == PdnKind::FlexWatts) {
            flexSwitches += c.sim.modeSwitches;
        } else {
            EXPECT_EQ(c.sim.modeSwitches, 0u);
            EXPECT_EQ(c.sim.switchOverheadEnergy, joules(0.0));
        }
    }
    EXPECT_GT(flexSwitches, 0u);
}

TEST(CampaignEngineTest, OracleNeverWorseThanPmu)
{
    CampaignSpec spec = smallSpec(SimMode::Pmu);
    CampaignResult pmu = CampaignEngine().run(spec);
    spec.mode = SimMode::Oracle;
    CampaignResult oracle = CampaignEngine().run(spec);

    for (size_t i = 0; i < pmu.cells.size(); ++i) {
        if (pmu.cells[i].pdn != PdnKind::FlexWatts)
            continue;
        // The oracle switches instantly and for free; realistic PMU
        // control can only add energy.
        EXPECT_LE(inJoules(oracle.cells[i].sim.supplyEnergy),
                  inJoules(pmu.cells[i].sim.supplyEnergy) + 1e-12)
            << pmu.cells[i].trace << " on "
            << pmu.cells[i].platform;
    }
}

TEST(CampaignResultTest, CellLookupFindsEveryCellAndRejectsMisses)
{
    CampaignSpec spec = smallSpec(SimMode::Static);
    CampaignResult result = CampaignEngine().run(spec);
    for (const CampaignCellResult &c : result.cells) {
        EXPECT_EQ(result.cell(c.trace, c.platform, c.pdn), c);
    }
    EXPECT_THROW(result.cell("no-such-trace",
                             spec.platforms.front().name,
                             PdnKind::IVR),
                 ConfigError);
    EXPECT_THROW(result.cell(spec.traces.front().name(),
                             spec.platforms.front().name,
                             PdnKind::MBVR),
                 ConfigError);
}

TEST(CampaignResultTest, CsvRoundTripIsExactAndAFixpoint)
{
    CampaignSpec spec = smallSpec(SimMode::Pmu);
    CampaignResult result = CampaignEngine().run(spec);

    std::stringstream first;
    result.writeCsv(first);
    CampaignResult reread = CampaignResult::readCsv(first);
    EXPECT_EQ(reread, result);

    std::stringstream second;
    reread.writeCsv(second);
    EXPECT_EQ(second.str(), first.str());
}

TEST(CampaignResultTest, ReadCsvRejectsMalformedInput)
{
    std::istringstream noHeader("not,a,campaign\n");
    EXPECT_THROW(CampaignResult::readCsv(noHeader), ConfigError);

    CampaignSpec spec = smallSpec(SimMode::Static);
    CampaignResult result = CampaignEngine().run(spec);
    std::stringstream csv;
    result.writeCsv(csv);

    std::string text = csv.str();
    std::istringstream truncated(
        text.substr(0, text.rfind(',')));
    EXPECT_THROW(CampaignResult::readCsv(truncated), ConfigError);

    std::string bad = text;
    bad.replace(bad.find("IVR"), 3, "XXX");
    std::istringstream badKind(bad);
    EXPECT_THROW(CampaignResult::readCsv(badKind), ConfigError);
}

TEST(CampaignEngineTest, StreamingSinkReceivesCanonicalOrder)
{
    CampaignSpec spec = smallSpec(SimMode::Static);
    CampaignResult batch = CampaignEngine().run(spec);

    /** Records cells and the thread-safety contract violations. */
    class RecordingSink : public CampaignSink
    {
      public:
        void
        consume(CampaignCellResult cell) override
        {
            cells.push_back(std::move(cell));
        }

        std::vector<CampaignCellResult> cells;
    };

    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner runner(threads);
        RecordingSink sink;
        CampaignEngine(runner).run(spec, sink);
        EXPECT_EQ(sink.cells, batch.cells)
            << threads << " threads";
    }
}

TEST(CampaignEngineTest, StreamedCsvMatchesBatchCsvAtAnyThreadCount)
{
    for (SimMode mode :
         {SimMode::Static, SimMode::Pmu, SimMode::Oracle}) {
        CampaignSpec spec = smallSpec(mode);
        std::stringstream batch;
        CampaignEngine().run(spec).writeCsv(batch);

        for (unsigned threads : {1u, 4u}) {
            ParallelRunner runner(threads);
            std::stringstream streamed;
            CampaignCsvSink sink(streamed);
            CampaignEngine(runner).run(spec, sink);
            EXPECT_EQ(streamed.str(), batch.str())
                << toString(mode) << " mode, " << threads
                << " threads";
            EXPECT_EQ(sink.rows(), spec.cellCount());
        }
    }
}

TEST(CampaignEngineTest, LazyResolutionIsDeterministicAcrossThreads)
{
    // The streamed-CSV surface is the binding contract: every
    // provenance kind, serial vs 8 threads, byte-identical.
    for (SimMode mode : {SimMode::Static, SimMode::Pmu}) {
        CampaignSpec spec = declarativeSpec(mode);

        ParallelRunner serial(1);
        std::stringstream baseline;
        CampaignCsvSink base(baseline);
        CampaignEngine(serial).run(spec, base);

        ParallelRunner pooled(8);
        std::stringstream streamed;
        CampaignCsvSink sink(streamed);
        CampaignEngine(pooled).run(spec, sink);

        EXPECT_EQ(streamed.str(), baseline.str())
            << toString(mode) << " mode";
        EXPECT_EQ(sink.rows(), spec.cellCount());
    }
}

TEST(CampaignEngineTest, DeclarativeTracesMemoizeBitIdentically)
{
    CampaignSpec spec = declarativeSpec(SimMode::Oracle);
    ParallelRunner runner(4);
    CampaignResult with =
        CampaignEngine(runner).memoize(true).run(spec);
    CampaignResult without =
        CampaignEngine(runner).memoize(false).run(spec);
    EXPECT_EQ(with, without);
}

TEST(CampaignEngineTest, ShardConcatenationMatchesUnshardedRun)
{
    CampaignSpec spec = declarativeSpec(SimMode::Pmu);
    size_t cells = spec.cellCount();

    ParallelRunner runner(4);
    std::stringstream full;
    CampaignCsvSink fullSink(full);
    CampaignEngine(runner).run(spec, fullSink);

    // Three uneven shards over the canonical cell order; only the
    // first carries the header, so plain concatenation must equal
    // the unsharded stream byte for byte.
    for (size_t shards : {2u, 3u, 5u}) {
        std::string cat;
        for (size_t k = 1; k <= shards; ++k) {
            size_t first = cells * (k - 1) / shards;
            size_t end = cells * k / shards;
            std::stringstream part;
            CampaignCsvSink sink(part, k == 1);
            CampaignEngine(runner).run(spec, sink, first, end);
            EXPECT_EQ(sink.rows(), end - first);
            cat += part.str();
        }
        EXPECT_EQ(cat, full.str()) << shards << " shards";
    }
}

TEST(CampaignEngineTest, RejectsOutOfRangeCellRanges)
{
    CampaignSpec spec = smallSpec(SimMode::Static);
    std::stringstream os;
    CampaignCsvSink sink(os);
    CampaignEngine engine;
    EXPECT_THROW(engine.run(spec, sink, 2, 1), ConfigError);
    EXPECT_THROW(
        engine.run(spec, sink, 0, spec.cellCount() + 1),
        ConfigError);
}

TEST(CampaignEngineTest, PerTraceTickOverrideChangesOnlyThatTrace)
{
    CampaignSpec coarse = smallSpec(SimMode::Pmu);
    CampaignResult base = CampaignEngine().run(coarse);

    CampaignSpec mixed = smallSpec(SimMode::Pmu);
    mixed.traces[0].tick(microseconds(10.0));
    CampaignResult overridden = CampaignEngine().run(mixed);

    // Cells of the other traces are untouched by the override.
    for (size_t i = 0; i < base.cells.size(); ++i) {
        if (base.cells[i].trace != mixed.traces[0].name()) {
            EXPECT_EQ(overridden.cells[i], base.cells[i]);
        }
    }

    // The overridden trace simulates at the per-trace tick: a
    // whole-campaign tick of the same value reproduces it exactly.
    CampaignSpec fine = smallSpec(SimMode::Pmu);
    fine.tick = microseconds(10.0);
    CampaignResult fineAll = CampaignEngine().run(fine);
    for (size_t i = 0; i < fineAll.cells.size(); ++i) {
        if (fineAll.cells[i].trace == mixed.traces[0].name()) {
            EXPECT_EQ(overridden.cells[i], fineAll.cells[i]);
        }
    }
}

TEST(CampaignSpecTest, ValidateRejectsMalformedTraceSpecs)
{
    CampaignSpec spec = smallSpec(SimMode::Static);
    spec.traces.push_back(TraceSpec::file(""));
    EXPECT_THROW(spec.validate(), ConfigError);

    spec = smallSpec(SimMode::Static);
    spec.traces[0].tick(seconds(-1.0));
    EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(CampaignEngineTest, SinkExceptionAbortsTheCampaign)
{
    CampaignSpec spec = smallSpec(SimMode::Static);

    class FailingSink : public CampaignSink
    {
      public:
        void
        consume(CampaignCellResult cell) override
        {
            ++delivered;
            if (cell.pdn == PdnKind::LDO)
                throw std::runtime_error("sink full");
        }

        size_t delivered = 0;
    };

    ParallelRunner runner(4);
    FailingSink sink;
    EXPECT_THROW(CampaignEngine(runner).run(spec, sink),
                 std::runtime_error);
    // Nothing may reach the sink after the failure.
    EXPECT_LE(sink.delivered, 2u);
}

TEST(CampaignEngineTest, MemoizedRunsAreBitIdenticalToUnmemoized)
{
    for (SimMode mode :
         {SimMode::Static, SimMode::Pmu, SimMode::Oracle}) {
        CampaignSpec spec = smallSpec(mode);
        for (unsigned threads : {1u, 4u}) {
            ParallelRunner runner(threads);
            CampaignResult with =
                CampaignEngine(runner).memoize(true).run(spec);
            CampaignResult without =
                CampaignEngine(runner).memoize(false).run(spec);
            EXPECT_EQ(with, without)
                << toString(mode) << " mode, " << threads
                << " threads";
        }
    }
}

TEST(EteeMemoTest, SharesEvaluationsAcrossRepeatedPhases)
{
    // 16 battery-profile frames cycle through the same few states;
    // the memo must collapse them to one evaluation each.
    Platform platform(ultraportablePreset());
    PhaseTrace trace = traceFromBatteryProfile(
        videoPlayback(), milliseconds(33.3), 16);
    IntervalSimulator sim(platform.operatingPoints(),
                          platform.config().tdp);

    EteeMemo memo(platform.operatingPoints(),
                  platform.config().tdp);
    SimResult memoized =
        sim.run(trace, platform.pdn(PdnKind::IVR), &memo);
    SimResult plain = sim.run(trace, platform.pdn(PdnKind::IVR));

    EXPECT_EQ(memoized, plain);
    EXPECT_GT(memo.hits(), 0u);
    EXPECT_LT(memo.pdnEvaluations(), trace.phases().size() / 4);

    // A second PDN kind reuses the memoized platform states.
    size_t builds = memo.stateBuilds();
    SimResult ldoMemoized =
        sim.run(trace, platform.pdn(PdnKind::LDO), &memo);
    EXPECT_EQ(ldoMemoized,
              sim.run(trace, platform.pdn(PdnKind::LDO)));
    EXPECT_EQ(memo.stateBuilds(), builds);
}

TEST(EteeMemoTest, OracleAndPinnedModesMemoizeIndependently)
{
    Platform platform(fanlessTabletPreset());
    TraceGenerator gen(5);
    PhaseTrace trace =
        gen.burstyCompute(4, milliseconds(5.0), milliseconds(15.0));
    IntervalSimulator sim(platform.operatingPoints(),
                          platform.config().tdp);

    EteeMemo memo(platform.operatingPoints(),
                  platform.config().tdp);
    EXPECT_EQ(sim.runOracle(trace, platform.flexWatts(), &memo),
              sim.runOracle(trace, platform.flexWatts()));

    // FlexWatts default evaluation (static mode) must not collide
    // with the pinned-mode entries the oracle run created.
    EXPECT_EQ(sim.run(trace, platform.flexWatts(), &memo),
              sim.run(trace, platform.flexWatts()));
}

TEST(EteeMemoTest, RejectsMismatchedSimulator)
{
    Platform platform(ultraportablePreset());
    TraceGenerator gen(5);
    PhaseTrace trace =
        gen.burstyCompute(2, milliseconds(5.0), milliseconds(5.0));
    EteeMemo memo(platform.operatingPoints(), watts(4.0));
    IntervalSimulator sim(platform.operatingPoints(),
                          platform.config().tdp);
    EXPECT_THROW(sim.run(trace, platform.pdn(PdnKind::IVR), &memo),
                 ModelError);
}

TEST(CampaignEngineTest, RunStatsAreConsistentAndThreadInvariant)
{
    /** Counts what reaches the sink; the cells go to the floor. */
    class CountingSink : public CampaignSink
    {
      public:
        void consume(CampaignCellResult) override { ++delivered; }
        size_t delivered = 0;
    };

    CampaignSpec spec = smallSpec(SimMode::Oracle);
    size_t phaseTotal = 0;
    for (const TraceSpec &t : spec.traces)
        phaseTotal += t.resolve().phases().size();
    phaseTotal *= spec.platforms.size() * spec.pdns.size();

    CampaignRunStats serial;
    {
        ParallelRunner runner(1);
        CountingSink sink;
        CampaignEngine(runner).run(spec, sink, &serial);
        EXPECT_EQ(sink.delivered, spec.cellCount());
    }
    EXPECT_EQ(serial.cells, spec.cellCount());
    EXPECT_EQ(serial.phases, phaseTotal);
    EXPECT_GT(serial.memoProbes, 0u);
    EXPECT_GT(serial.memoHits, 0u);
    EXPECT_EQ(serial.memoProbes,
              serial.memoHits + serial.memoMisses());
    EXPECT_GT(serial.stateBuilds, 0u);
    EXPECT_GT(serial.pdnEvaluations, 0u);
    EXPECT_GT(serial.memoHitRate(), 0.0);
    EXPECT_LT(serial.memoHitRate(), 1.0);

    // Threaded runs keep one memo per worker, so hit totals may
    // differ from serial (each worker pays its own first
    // encounters) — but the work counters and the structural
    // invariants must hold at any thread count, and a worker can
    // never build fewer states than the single serial memo did.
    for (unsigned threads : {2u, 8u}) {
        ParallelRunner runner(threads);
        CountingSink sink;
        CampaignRunStats stats;
        CampaignEngine(runner).run(spec, sink, &stats);
        EXPECT_EQ(stats.cells, serial.cells) << threads;
        EXPECT_EQ(stats.phases, serial.phases) << threads;
        EXPECT_EQ(stats.memoProbes,
                  stats.memoHits + stats.memoMisses())
            << threads;
        EXPECT_GE(stats.stateBuilds, serial.stateBuilds) << threads;
        EXPECT_GE(stats.pdnEvaluations, serial.pdnEvaluations)
            << threads;
    }

    // Memo off: the run happens, the memo counters stay zero.
    ParallelRunner runner(1);
    CountingSink sink;
    CampaignRunStats unmemoized;
    CampaignEngine(runner).memoize(false).run(spec, sink,
                                              &unmemoized);
    EXPECT_EQ(unmemoized.cells, spec.cellCount());
    EXPECT_EQ(unmemoized.phases, phaseTotal);
    EXPECT_EQ(unmemoized.memoProbes, 0u);
    EXPECT_EQ(unmemoized.memoHits, 0u);
    EXPECT_EQ(unmemoized.memoHitRate(), 0.0);
}

TEST(CampaignResultTest, SummaryAggregatesMatchManualTotals)
{
    CampaignSpec spec = smallSpec(SimMode::Pmu);
    CampaignResult result = CampaignEngine().run(spec);
    BatteryModel battery(wattHours(50.0));
    std::vector<CampaignPdnSummary> summaries =
        result.summarizeByPdn(battery);
    ASSERT_EQ(summaries.size(), spec.pdns.size());

    for (const CampaignPdnSummary &s : summaries) {
        Energy supply, nominal;
        size_t cells = 0;
        for (const CampaignCellResult &c : result.cells) {
            if (c.pdn != s.pdn)
                continue;
            ++cells;
            supply += c.sim.supplyEnergy;
            nominal += c.sim.nominalEnergy;
        }
        EXPECT_EQ(s.cells, cells);
        EXPECT_EQ(s.supplyEnergy, supply);
        EXPECT_DOUBLE_EQ(s.meanEtee(), nominal / supply);
        EXPECT_GT(s.batteryLifeHours, 0.0);
    }
}

} // namespace
} // namespace pdnspot
