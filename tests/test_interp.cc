/**
 * @file
 * Unit tests for the interpolation tables.
 */

#include <gtest/gtest.h>

#include "common/interp.hh"
#include "common/logging.hh"

namespace pdnspot
{
namespace
{

TEST(LinearTable, ExactBreakpoints)
{
    LinearTable t({{0.0, 1.0}, {1.0, 3.0}, {2.0, 2.0}});
    EXPECT_DOUBLE_EQ(t.at(0.0), 1.0);
    EXPECT_DOUBLE_EQ(t.at(1.0), 3.0);
    EXPECT_DOUBLE_EQ(t.at(2.0), 2.0);
}

TEST(LinearTable, Interpolates)
{
    LinearTable t({{0.0, 0.0}, {10.0, 100.0}});
    EXPECT_DOUBLE_EQ(t.at(2.5), 25.0);
    EXPECT_DOUBLE_EQ(t.at(7.5), 75.0);
}

TEST(LinearTable, ClampsOutsideDomain)
{
    LinearTable t({{1.0, 5.0}, {2.0, 9.0}});
    EXPECT_DOUBLE_EQ(t.at(0.0), 5.0);
    EXPECT_DOUBLE_EQ(t.at(100.0), 9.0);
}

TEST(LinearTable, SinglePointActsConstant)
{
    LinearTable t({{3.0, 7.0}});
    EXPECT_DOUBLE_EQ(t.at(-1.0), 7.0);
    EXPECT_DOUBLE_EQ(t.at(3.0), 7.0);
    EXPECT_DOUBLE_EQ(t.at(99.0), 7.0);
}

TEST(LinearTable, SlopeAt)
{
    LinearTable t({{0.0, 0.0}, {1.0, 2.0}, {2.0, 2.0}});
    EXPECT_DOUBLE_EQ(t.slopeAt(0.5), 2.0);
    EXPECT_DOUBLE_EQ(t.slopeAt(1.5), 0.0);
    EXPECT_DOUBLE_EQ(t.slopeAt(-1.0), 0.0); // clamped region
}

TEST(LinearTable, MinMaxX)
{
    LinearTable t({{2.0, 0.0}, {8.0, 1.0}});
    EXPECT_DOUBLE_EQ(t.minX(), 2.0);
    EXPECT_DOUBLE_EQ(t.maxX(), 8.0);
}

TEST(LinearTable, RejectsEmptyAndUnsorted)
{
    EXPECT_THROW(LinearTable(std::vector<std::pair<double, double>>{}),
                 ConfigError);
    EXPECT_THROW(LinearTable({{1.0, 0.0}, {1.0, 1.0}}), ConfigError);
    EXPECT_THROW(LinearTable({{2.0, 0.0}, {1.0, 1.0}}), ConfigError);
}

TEST(LinearTable, MonotoneInputStaysWithinHull)
{
    LinearTable t({{0.0, 1.0}, {5.0, 4.0}, {10.0, 2.0}});
    for (double x = -2.0; x <= 12.0; x += 0.37) {
        double y = t.at(x);
        EXPECT_GE(y, 1.0);
        EXPECT_LE(y, 4.0);
    }
}

TEST(BilinearGrid, CornersExact)
{
    BilinearGrid g({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(g.at(0.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(g.at(0.0, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(g.at(1.0, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(g.at(1.0, 1.0), 4.0);
}

TEST(BilinearGrid, CenterIsMean)
{
    BilinearGrid g({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(g.at(0.5, 0.5), 2.5);
}

TEST(BilinearGrid, ClampsBothAxes)
{
    BilinearGrid g({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(g.at(-5.0, -5.0), 1.0);
    EXPECT_DOUBLE_EQ(g.at(9.0, 9.0), 4.0);
    EXPECT_DOUBLE_EQ(g.at(-5.0, 9.0), 2.0);
}

TEST(BilinearGrid, RejectsBadShapes)
{
    EXPECT_THROW(BilinearGrid({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0}),
                 ConfigError);
    EXPECT_THROW(BilinearGrid({1.0, 0.0}, {0.0, 1.0},
                              {1.0, 2.0, 3.0, 4.0}),
                 ConfigError);
    EXPECT_THROW(BilinearGrid({}, {0.0}, {}), ConfigError);
}

TEST(BilinearGrid, ReducesToLinearOnDegenerateAxis)
{
    BilinearGrid g({0.0, 2.0}, {5.0}, {10.0, 20.0});
    EXPECT_DOUBLE_EQ(g.at(1.0, 5.0), 15.0);
    EXPECT_DOUBLE_EQ(g.at(1.0, -3.0), 15.0);
}

/** Property sweep: bilinear interpolation is monotone between rows. */
class BilinearMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(BilinearMonotone, WithinCellHull)
{
    BilinearGrid g({0.0, 1.0, 2.0}, {0.0, 1.0},
                   {0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
    double x = GetParam();
    double lo = g.at(x, 0.0);
    double hi = g.at(x, 1.0);
    double mid = g.at(x, 0.5);
    EXPECT_GE(mid, std::min(lo, hi) - 1e-12);
    EXPECT_LE(mid, std::max(lo, hi) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BilinearMonotone,
                         ::testing::Values(0.0, 0.3, 0.77, 1.2, 1.9,
                                           2.0));

} // anonymous namespace
} // namespace pdnspot
