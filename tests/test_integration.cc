/**
 * @file
 * Integration tests asserting the paper's headline results hold in
 * shape: who wins, by roughly what factor, where crossovers fall
 * (Sec. 7 of the paper).
 */

#include <gtest/gtest.h>

#include "pdnspot/experiments.hh"
#include "pdnspot/platform.hh"
#include "workload/gfx_3dmark06.hh"
#include "workload/spec_cpu2006.hh"

namespace pdnspot
{
namespace
{

class HeadlineResults : public ::testing::Test
{
  protected:
    HeadlineResults() : platform() {}

    Platform platform;
};

TEST_F(HeadlineResults, SpecAt4WGainsRoughly22Percent)
{
    // Paper: FlexWatts improves average SPEC CPU2006 performance at
    // 4 W TDP by ~22% over the IVR PDN.
    double flex = suiteMeanRelativePerf(platform, PdnKind::FlexWatts,
                                        watts(4.0), specCpu2006());
    EXPECT_GT(flex, 1.17);
    EXPECT_LT(flex, 1.32);
}

TEST_F(HeadlineResults, GraphicsAt4WGainsRoughly25Percent)
{
    // Paper: ~25% average 3DMark06 gain at 4 W TDP.
    double flex = suiteMeanRelativePerf(platform, PdnKind::FlexWatts,
                                        watts(4.0), gfx3dmark06());
    EXPECT_GT(flex, 1.19);
    EXPECT_LT(flex, 1.35);
}

TEST_F(HeadlineResults, FlexWattsWithin1PercentOfBestStaticOnSpec)
{
    // Paper Fig. 8a: FlexWatts trails the per-TDP best PDN by <1%.
    for (double tdp : evaluationTdpsW) {
        double best = 0.0;
        for (PdnKind kind : {PdnKind::MBVR, PdnKind::LDO,
                             PdnKind::IplusMBVR}) {
            best = std::max(best,
                            suiteMeanRelativePerf(platform, kind,
                                                  watts(tdp),
                                                  specCpu2006()));
        }
        best = std::max(best, 1.0); // IVR itself
        double flex = suiteMeanRelativePerf(platform,
                                            PdnKind::FlexWatts,
                                            watts(tdp), specCpu2006());
        EXPECT_GT(flex, best - 0.015) << tdp;
    }
}

TEST_F(HeadlineResults, FlexWattsNeverLosesToIvrOnSpec)
{
    for (double tdp : evaluationTdpsW) {
        double flex = suiteMeanRelativePerf(platform,
                                            PdnKind::FlexWatts,
                                            watts(tdp), specCpu2006());
        EXPECT_GE(flex, 0.995) << tdp;
    }
}

TEST_F(HeadlineResults, MbvrLosesAtHighTdpOnSpec)
{
    // Fig. 8a: MBVR falls below the IVR baseline at 36-50 W.
    double mbvr = suiteMeanRelativePerf(platform, PdnKind::MBVR,
                                        watts(50.0), specCpu2006());
    EXPECT_LT(mbvr, 1.0);
}

TEST_F(HeadlineResults, GraphicsCrossoverAbove18W)
{
    // Fig. 8b: MBVR/LDO lead at low TDP; by 25-50 W the IVR-style
    // PDNs (IVR, I+MBVR, FlexWatts in IVR-Mode) win.
    double mbvr_4 = suiteMeanRelativePerf(platform, PdnKind::MBVR,
                                          watts(4.0), gfx3dmark06());
    EXPECT_GT(mbvr_4, 1.1);
    double mbvr_50 = suiteMeanRelativePerf(platform, PdnKind::MBVR,
                                           watts(50.0), gfx3dmark06());
    EXPECT_LT(mbvr_50, 0.95);
    double flex_50 = suiteMeanRelativePerf(platform,
                                           PdnKind::FlexWatts,
                                           watts(50.0), gfx3dmark06());
    EXPECT_GT(flex_50, mbvr_50 + 0.02);
}

TEST_F(HeadlineResults, IplusMbvrModestGainOverIvr)
{
    // Paper: I+MBVR provides up to ~6% over IVR but trails FlexWatts
    // by a wide margin at low TDP.
    double imbvr = suiteMeanRelativePerf(platform, PdnKind::IplusMBVR,
                                         watts(4.0), specCpu2006());
    double flex = suiteMeanRelativePerf(platform, PdnKind::FlexWatts,
                                        watts(4.0), specCpu2006());
    EXPECT_GT(imbvr, 1.02);
    EXPECT_LT(imbvr, 1.15);
    EXPECT_GT(flex, imbvr + 0.08);
}

TEST_F(HeadlineResults, VideoPlaybackPowerReduction)
{
    // Paper: FlexWatts reduces video-playback average power by ~11%
    // vs the IVR PDN (8-12% across battery-life workloads).
    double ivr = inWatts(batteryAveragePower(platform, PdnKind::IVR,
                                             videoPlayback()));
    double flex = inWatts(batteryAveragePower(
        platform, PdnKind::FlexWatts, videoPlayback()));
    double reduction = 1.0 - flex / ivr;
    EXPECT_GT(reduction, 0.07);
    EXPECT_LT(reduction, 0.17);
}

TEST_F(HeadlineResults, BatteryFlexWattsWithin1PercentOfMbvr)
{
    // Paper Fig. 8c: FlexWatts consumes at most ~1% more than MBVR
    // on battery-life workloads.
    for (const BatteryProfile &p : batteryLifeWorkloads()) {
        double mbvr = inWatts(batteryAveragePower(platform,
                                                  PdnKind::MBVR, p));
        double flex = inWatts(batteryAveragePower(
            platform, PdnKind::FlexWatts, p));
        EXPECT_LT(flex / mbvr, 1.012) << p.name;
    }
}

TEST_F(HeadlineResults, BatteryReductionShrinksWithActivity)
{
    // Fig. 8c: the FlexWatts-vs-IVR gap is largest for the most
    // idle-dominated workload (video playback).
    auto reduction = [&](const BatteryProfile &p) {
        double ivr = inWatts(
            batteryAveragePower(platform, PdnKind::IVR, p));
        double flex = inWatts(
            batteryAveragePower(platform, PdnKind::FlexWatts, p));
        return 1.0 - flex / ivr;
    };
    EXPECT_GT(reduction(videoPlayback()),
              reduction(lightGaming()));
}

TEST_F(HeadlineResults, Fig7OrderingTracksScalability)
{
    // Fig. 7: per-benchmark gains grow with performance-scalability;
    // the most scalable benchmark gains the most.
    auto rel = suiteRelativePerf(platform, PdnKind::FlexWatts,
                                 watts(4.0), specCpu2006());
    ASSERT_EQ(rel.size(), 29u);
    EXPECT_GT(rel.back(), rel.front());
    // Sorted input implies (weakly) sorted gains in our model.
    for (size_t i = 1; i < rel.size(); ++i)
        EXPECT_GE(rel[i] + 1e-9, rel[i - 1]) << i;
    // The top benchmark approaches the full frequency gain.
    EXPECT_GT(rel.back(), 1.25);
}

TEST_F(HeadlineResults, BomAndAreaComparableToIvr)
{
    // Paper: "FlexWatts has comparable cost and area overhead to IVR."
    for (double tdp : evaluationTdpsW) {
        EXPECT_LT(normalizedBom(platform, PdnKind::FlexWatts,
                                watts(tdp)),
                  1.25)
            << tdp;
        EXPECT_LT(normalizedArea(platform, PdnKind::FlexWatts,
                                 watts(tdp)),
                  1.40)
            << tdp;
    }
}

TEST_F(HeadlineResults, ModePolicyMatchesPaperNarrative)
{
    // Sec. 7: FlexWatts operates mainly in LDO-Mode below ~18 W and
    // mainly in IVR-Mode at high TDP for CPU workloads.
    const FlexWattsPdn &fw = platform.flexWatts();
    const OperatingPointModel &opm = platform.operatingPoints();

    OperatingPointModel::Query q;
    q.type = WorkloadType::MultiThread;
    q.tdp = watts(4.0);
    EXPECT_EQ(fw.bestMode(opm.build(q)), HybridMode::LdoMode);
    q.tdp = watts(10.0);
    EXPECT_EQ(fw.bestMode(opm.build(q)), HybridMode::LdoMode);
    q.tdp = watts(50.0);
    EXPECT_EQ(fw.bestMode(opm.build(q)), HybridMode::IvrMode);
}

} // anonymous namespace
} // namespace pdnspot
