/**
 * @file
 * Unit tests for the power-side models: V-f curves, leakage scaling,
 * the Eq. 2 guardband, domains, and package C-states.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "power/domain.hh"
#include "power/guardband.hh"
#include "power/leakage.hh"
#include "power/package_cstate.hh"
#include "power/vf_curve.hh"
#include "power/workload_type.hh"

namespace pdnspot
{
namespace
{

TEST(VfCurve, CoresCoverPaperBand)
{
    // Sec. 2.1: domain voltages typically 0.5-1.1 V over 0.8-4 GHz.
    VfCurve c = VfCurve::cores();
    EXPECT_GT(inVolts(c.voltageAt(gigahertz(0.8))), 0.45);
    EXPECT_LT(inVolts(c.voltageAt(gigahertz(0.8))), 0.65);
    EXPECT_GT(inVolts(c.voltageAt(gigahertz(4.0))), 1.0);
    EXPECT_LT(inVolts(c.voltageAt(gigahertz(4.0))), 1.15);
}

TEST(VfCurve, GraphicsCoverPaperBand)
{
    VfCurve g = VfCurve::graphics();
    EXPECT_GT(inVolts(g.voltageAt(gigahertz(0.1))), 0.45);
    EXPECT_LT(inVolts(g.voltageAt(gigahertz(1.2))), 0.95);
}

TEST(VfCurve, MonotoneIncreasing)
{
    VfCurve c = VfCurve::cores();
    Voltage prev;
    for (double f = 0.8; f <= 4.0; f += 0.1) {
        Voltage v = c.voltageAt(gigahertz(f));
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(VfCurve, SlopeIncreasesTowardFmax)
{
    // Quadratic curve: marginal voltage demand grows with frequency.
    VfCurve c = VfCurve::cores();
    EXPECT_GT(c.slopeAt(gigahertz(4.0)), c.slopeAt(gigahertz(0.8)));
}

TEST(VfCurve, ClampsToLegalRange)
{
    VfCurve c = VfCurve::cores();
    EXPECT_EQ(c.clamp(gigahertz(10.0)), gigahertz(4.0));
    EXPECT_EQ(c.clamp(gigahertz(0.1)), gigahertz(0.8));
    EXPECT_EQ(c.voltageAt(gigahertz(10.0)), c.voltageAt(gigahertz(4.0)));
}

TEST(VfCurve, RejectsBadConstruction)
{
    EXPECT_THROW(VfCurve(volts(0.5), 0.1, 0.0, gigahertz(2.0),
                         gigahertz(1.0)),
                 ConfigError);
    EXPECT_THROW(VfCurve(volts(0.0), 0.1, 0.0, gigahertz(1.0),
                         gigahertz(2.0)),
                 ConfigError);
}

TEST(Leakage, VoltageExponentIs2p8)
{
    // Sec. 3.1: leakage scales with V^~2.8 (validated on i7-6600U).
    LeakageModel m;
    EXPECT_DOUBLE_EQ(m.voltageExponent(), 2.8);
    EXPECT_NEAR(m.voltageScale(volts(1.0), volts(1.1)),
                std::pow(1.1, 2.8), 1e-12);
    EXPECT_NEAR(m.voltageScale(volts(1.0), volts(1.0)), 1.0, 1e-12);
}

TEST(Leakage, ThermalScaleExponential)
{
    LeakageModel m;
    double up = m.thermalScale(Celsius(80.0), Celsius(110.0));
    double down = m.thermalScale(Celsius(80.0), Celsius(50.0));
    EXPECT_NEAR(up * down, 1.0, 1e-12); // symmetric exponent
    EXPECT_GT(up, 1.5);
    EXPECT_LT(down, 0.7);
}

TEST(Leakage, DynamicScalesWithVSquared)
{
    EXPECT_NEAR(LeakageModel::dynamicVoltageScale(volts(1.0),
                                                  volts(1.2)),
                1.44, 1e-12);
}

TEST(Leakage, RejectsBadParameters)
{
    EXPECT_THROW(LeakageModel(-1.0), ConfigError);
    EXPECT_THROW(LeakageModel(2.8, 0.0), ConfigError);
    LeakageModel m;
    EXPECT_THROW(m.voltageScale(volts(0.0), volts(1.0)), ConfigError);
}

TEST(Guardband, ZeroGuardbandIsIdentity)
{
    GuardbandModel g;
    Power p = g.apply(watts(2.0), volts(1.0), volts(0.0), 0.22);
    EXPECT_NEAR(inWatts(p), 2.0, 1e-12);
}

TEST(Guardband, MatchesEq2ByHand)
{
    // PGB = PNOM * [FL*(V'/V)^2.8 + (1-FL)*(V'/V)^2].
    GuardbandModel g;
    double ratio = 1.02;
    double expected =
        2.0 * (0.45 * std::pow(ratio, 2.8) + 0.55 * ratio * ratio);
    Power p = g.apply(watts(2.0), volts(1.0), millivolts(20.0), 0.45);
    EXPECT_NEAR(inWatts(p), expected, 1e-9);
}

TEST(Guardband, MonotoneInGuardbandVoltage)
{
    GuardbandModel g;
    Power prev = watts(2.0);
    for (double mv = 5.0; mv <= 50.0; mv += 5.0) {
        Power p = g.apply(watts(2.0), volts(0.8), millivolts(mv), 0.22);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(Guardband, HigherLeakageFractionCostsMore)
{
    // Leakage grows faster than V^2, so high-FL domains pay more.
    GuardbandModel g;
    Power low_fl = g.apply(watts(2.0), volts(0.8), millivolts(30.0),
                           0.22);
    Power high_fl = g.apply(watts(2.0), volts(0.8), millivolts(30.0),
                            0.45);
    EXPECT_GT(high_fl, low_fl);
}

TEST(Guardband, RejectsBadInputs)
{
    GuardbandModel g;
    EXPECT_THROW(g.apply(watts(-1.0), volts(1.0), volts(0.0), 0.2),
                 ConfigError);
    EXPECT_THROW(g.apply(watts(1.0), volts(0.0), volts(0.0), 0.2),
                 ConfigError);
    EXPECT_THROW(g.apply(watts(1.0), volts(1.0), volts(-0.1), 0.2),
                 ConfigError);
    EXPECT_THROW(g.apply(watts(1.0), volts(1.0), volts(0.0), 1.2),
                 ConfigError);
}

TEST(Domain, NamesAndClassification)
{
    EXPECT_EQ(toString(DomainId::Core0), "Core0");
    EXPECT_EQ(toString(DomainId::IO), "IO");
    EXPECT_TRUE(isComputeDomain(DomainId::GFX));
    EXPECT_TRUE(isComputeDomain(DomainId::LLC));
    EXPECT_FALSE(isComputeDomain(DomainId::SA));
    EXPECT_EQ(computeDomains.size() + uncoreDomains.size(),
              numDomains);
}

TEST(PackageCState, NamesAndGating)
{
    EXPECT_EQ(toString(PackageCState::C0Min), "C0MIN");
    EXPECT_EQ(toString(PackageCState::C8), "C8");
    EXPECT_FALSE(computeGated(PackageCState::C0));
    EXPECT_FALSE(computeGated(PackageCState::C0Min));
    EXPECT_TRUE(computeGated(PackageCState::C2));
    EXPECT_TRUE(computeGated(PackageCState::C8));
}

TEST(WorkloadType, Names)
{
    EXPECT_EQ(toString(WorkloadType::SingleThread), "single-thread");
    EXPECT_EQ(toString(WorkloadType::Graphics), "graphics");
}

} // anonymous namespace
} // namespace pdnspot
