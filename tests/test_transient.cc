/**
 * @file
 * Unit tests for the transient (di/dt) voltage-noise model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "pdn/transient.hh"

namespace pdnspot
{
namespace
{

TEST(Transient, DroopGrowsWithStep)
{
    TransientModel m(DecapStack::forPdn(PdnKind::IVR));
    Voltage small = m.droop(amps(5.0), microseconds(0.01)).worst();
    Voltage large = m.droop(amps(20.0), microseconds(0.01)).worst();
    EXPECT_GT(large, small);
    EXPECT_NEAR(inMillivolts(large), 4.0 * inMillivolts(small), 1e-9);
}

TEST(Transient, SlowerEdgesShrinkDieDroop)
{
    TransientModel m(DecapStack::forPdn(PdnKind::IVR));
    DroopEstimate fast = m.droop(amps(10.0), microseconds(0.001));
    DroopEstimate slow = m.droop(amps(10.0), microseconds(1.0));
    EXPECT_GT(fast.dieDroop, slow.dieDroop);
    // The resistive floor does not depend on the edge rate.
    EXPECT_EQ(fast.resistive, slow.resistive);
}

TEST(Transient, IvrMoreDidtSensitiveThanMbvr)
{
    // Paper Sec. 2.3: the IVR PDN has higher di/dt sensitivity than
    // MBVR due to the limited on-die decoupling capacitance.
    TransientModel ivr(DecapStack::forPdn(PdnKind::IVR));
    TransientModel mbvr(DecapStack::forPdn(PdnKind::MBVR));
    Current step = amps(15.0);
    Time edge = microseconds(0.0005); // fast, die-droop dominated
    EXPECT_GT(ivr.droop(step, edge).dieDroop,
              mbvr.droop(step, edge).dieDroop);
    EXPECT_GT(ivr.droop(step, edge).worst(),
              mbvr.droop(step, edge).worst());
}

TEST(Transient, FlexWattsSharesIvrDecapStack)
{
    // Sec. 6: both hybrid modes share the package and die capacitors
    // of the baseline IVR.
    TransientModel flex(DecapStack::forPdn(PdnKind::FlexWatts));
    TransientModel ivr(DecapStack::forPdn(PdnKind::IVR));
    DroopEstimate a = flex.droop(amps(10.0), microseconds(0.01));
    DroopEstimate b = ivr.droop(amps(10.0), microseconds(0.01));
    EXPECT_EQ(inMillivolts(a.worst()), inMillivolts(b.worst()));
}

TEST(Transient, GuardbandCheckConsistentWithMaxStep)
{
    TransientModel m(DecapStack::forPdn(PdnKind::LDO));
    Voltage gb = millivolts(35.0);
    Time edge = microseconds(0.01);
    Current limit = m.maxStep(gb, edge);
    EXPECT_GT(inAmps(limit), 0.0);
    EXPECT_TRUE(m.withinGuardband(limit * 0.99, edge, gb));
    EXPECT_FALSE(m.withinGuardband(limit * 1.05, edge, gb));
}

TEST(Transient, MbvrAbsorbsLargerStepsAtFastEdges)
{
    // More board/package decap -> a bigger absorbable load step at
    // the same guardband.
    TransientModel ivr(DecapStack::forPdn(PdnKind::IVR));
    TransientModel mbvr(DecapStack::forPdn(PdnKind::MBVR));
    Voltage gb = millivolts(30.0);
    Time edge = microseconds(0.002);
    EXPECT_GT(inAmps(mbvr.maxStep(gb, edge)),
              inAmps(ivr.maxStep(gb, edge)));
}

TEST(Transient, DieDroopDominatesFastEdges)
{
    TransientModel m(DecapStack::forPdn(PdnKind::IVR));
    DroopEstimate e = m.droop(amps(10.0), microseconds(0.0005));
    EXPECT_GT(e.dieDroop, e.packageDroop);
    EXPECT_GT(e.packageDroop, e.boardDroop);
}

TEST(Transient, RejectsBadInputs)
{
    TransientModel m(DecapStack::forPdn(PdnKind::IVR));
    EXPECT_THROW(m.droop(amps(-1.0), microseconds(0.01)), ConfigError);
    EXPECT_THROW(m.droop(amps(1.0), seconds(0.0)), ConfigError);
    EXPECT_THROW(m.maxStep(volts(0.0), microseconds(0.01)),
                 ConfigError);

    DecapStack bad = DecapStack::forPdn(PdnKind::IVR);
    bad.die.capacitanceUf = 0.0;
    EXPECT_THROW(TransientModel{bad}, ConfigError);
}

/** Property: worst() is the max level droop plus the IR floor. */
class TransientSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(TransientSweep, WorstIsConsistent)
{
    TransientModel m(DecapStack::forPdn(PdnKind::MBVR));
    DroopEstimate e = m.droop(amps(GetParam()), microseconds(0.01));
    Voltage max_level =
        std::max({e.dieDroop, e.packageDroop, e.boardDroop});
    EXPECT_NEAR(inMillivolts(e.worst()),
                inMillivolts(max_level + e.resistive), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Steps, TransientSweep,
                         ::testing::Values(0.5, 2.0, 8.0, 20.0, 45.0));

} // anonymous namespace
} // namespace pdnspot
