/**
 * @file
 * Unit tests for the ParallelRunner thread pool and the determinism
 * contract of the parallel sweep/experiment paths: results must be
 * bit-identical to the serial computation at any thread count.
 */

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "pdnspot/experiments.hh"
#include "pdnspot/sweep.hh"
#include "workload/spec_cpu2006.hh"

namespace pdnspot
{
namespace
{

TEST(ParallelRunnerTest, ForEachVisitsEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner runner(threads);
        for (size_t n : {size_t(0), size_t(1), size_t(7),
                         size_t(64), size_t(1000)}) {
            std::vector<std::atomic<int>> visits(n);
            runner.forEach(n, [&](size_t i) { visits[i]++; });
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(visits[i].load(), 1)
                    << "index " << i << " with " << threads
                    << " threads";
        }
    }
}

TEST(ParallelRunnerTest, MapStoresResultsAtTheirOwnIndex)
{
    ParallelRunner runner(8);
    std::vector<double> out = runner.map<double>(
        257, [](size_t i) { return static_cast<double>(i) * 1.5; });
    ASSERT_EQ(out.size(), 257u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<double>(i) * 1.5);
}

TEST(ParallelRunnerTest, SingleThreadRunsInline)
{
    ParallelRunner runner(1);
    EXPECT_EQ(runner.threadCount(), 1u);
    std::vector<int> order;
    runner.forEach(5, [&](size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelRunnerTest, PropagatesExceptionsAfterDraining)
{
    ParallelRunner runner(4);
    std::atomic<size_t> ran{0};
    EXPECT_THROW(
        runner.forEach(100,
                       [&](size_t i) {
                           ran++;
                           if (i == 13)
                               throw std::runtime_error("boom");
                       }),
        std::runtime_error);
    // All indices still executed: no index is abandoned mid-job.
    EXPECT_EQ(ran.load(), 100u);
}

TEST(ParallelRunnerTest, NestedForEachFallsBackToSerial)
{
    ParallelRunner runner(4);
    std::vector<std::atomic<int>> visits(6 * 5);
    runner.forEach(6, [&](size_t outer) {
        runner.forEach(5, [&](size_t inner) {
            visits[outer * 5 + inner]++;
        });
    });
    for (auto &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(ParallelRunnerTest, ForEachChunkedCoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner runner(threads);
        for (size_t grain : {size_t(1), size_t(3), size_t(8),
                             size_t(64), size_t(1000)}) {
            size_t n = 100;
            std::vector<std::atomic<int>> visits(n);
            runner.forEachChunked(
                n, grain, [&](size_t begin, size_t end) {
                    ASSERT_LT(begin, end);
                    ASSERT_LE(end, n);
                    ASSERT_LE(end - begin, grain);
                    for (size_t i = begin; i < end; ++i)
                        visits[i]++;
                });
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(visits[i].load(), 1)
                    << "index " << i << " grain " << grain
                    << " threads " << threads;
        }
    }
}

TEST(ParallelRunnerTest, ForEachChunkedRejectsZeroGrain)
{
    ParallelRunner runner(2);
    EXPECT_THROW(
        runner.forEachChunked(10, 0, [](size_t, size_t) {}),
        ConfigError);
}

TEST(ParallelRunnerTest, MapWithGrainMatchesSerialBitExactly)
{
    ParallelRunner serial(1);
    std::vector<double> expected = serial.map<double>(
        513, [](size_t i) { return 1.0 / (1.0 + double(i)); });
    ParallelRunner runner(8);
    for (size_t grain : {size_t(1), size_t(7), size_t(100)}) {
        std::vector<double> got = runner.map<double>(
            513, [](size_t i) { return 1.0 / (1.0 + double(i)); },
            grain);
        EXPECT_EQ(got, expected) << "grain " << grain;
    }
}

TEST(ParallelRunnerTest, SuggestedGrainIsAlwaysUsable)
{
    ParallelRunner runner(4);
    for (size_t n : {size_t(0), size_t(1), size_t(5), size_t(1000),
                     size_t(1000000)}) {
        size_t grain = runner.suggestedGrain(n);
        EXPECT_GE(grain, 1u) << n;
        if (n > 0) {
            EXPECT_LE(grain, n) << n;
        }
    }
    // Large inputs must actually chunk: claims should be far rarer
    // than indices.
    EXPECT_GT(runner.suggestedGrain(1000000), 1000u);
}

TEST(ParallelRunnerTest, ReusableAcrossJobs)
{
    ParallelRunner runner(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<size_t> sum{0};
        runner.forEach(20, [&](size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 190u);
    }
}

TEST(ParallelRunnerTest, HonorsThreadsEnvVar)
{
    ::setenv("PDNSPOT_THREADS", "3", 1);
    ParallelRunner runner;
    EXPECT_EQ(runner.threadCount(), 3u);
    ::unsetenv("PDNSPOT_THREADS");
}

TEST(ParallelRunnerTest, RejectsMalformedThreadsEnvVar)
{
    ::unsetenv("PDNSPOT_THREADS");
    unsigned fallback = ParallelRunner(0).threadCount();
    for (const char *bad : {"8cores", "banana", "-2", "0", ""}) {
        ::setenv("PDNSPOT_THREADS", bad, 1);
        EXPECT_EQ(ParallelRunner(0).threadCount(), fallback)
            << "PDNSPOT_THREADS=" << bad;
    }
    ::unsetenv("PDNSPOT_THREADS");
}

TEST(ParallelRunnerTest, ParseThreadCountPolicy)
{
    // Capture the rejection warnings instead of leaking them into
    // the test output — and assert they actually fire.
    ScopedLogCapture capture;

    // Valid values parse; the fallback is untouched, nothing warns.
    EXPECT_EQ(ParallelRunner::parseThreadCount("1", 5), 1u);
    EXPECT_EQ(ParallelRunner::parseThreadCount("12", 5), 12u);
    EXPECT_EQ(capture.count(LogLevel::Warn), 0u);

    // Non-numeric, zero, negative, fractional, hex, empty and
    // trailing-garbage values all warn and fall back.
    size_t rejected = 0;
    for (const char *bad : {"", " ", "0", "-3", "2.5", "1e3", "4 ",
                            "0x8", "eight", "+"}) {
        EXPECT_EQ(ParallelRunner::parseThreadCount(bad, 7), 7u)
            << "value \"" << bad << "\"";
        ++rejected;
        EXPECT_EQ(capture.count(LogLevel::Warn), rejected)
            << "value \"" << bad << "\" did not warn";
    }

    // Overflowing and absurd values clamp to the pool cap.
    EXPECT_EQ(ParallelRunner::parseThreadCount("9999999999", 7),
              256u);
    EXPECT_EQ(ParallelRunner::parseThreadCount(
                  "99999999999999999999999999", 7),
              256u);
}

TEST(ParallelRunnerTest, CapsAbsurdThreadsEnvVar)
{
    ScopedLogCapture capture;
    ::setenv("PDNSPOT_THREADS", "9999999999", 1);
    ParallelRunner runner;
    EXPECT_EQ(runner.threadCount(), 256u);
    ::unsetenv("PDNSPOT_THREADS");
}

TEST(ParallelRunnerTest, DefaultsToAtLeastOneThread)
{
    ParallelRunner runner;
    EXPECT_GE(runner.threadCount(), 1u);
    EXPECT_GE(ParallelRunner::global().threadCount(), 1u);
}

/** Sweep determinism: the satellite acceptance test of ISSUE 1. */
class SweepDeterminismTest : public ::testing::Test
{
  protected:
    static bool
    identical(const SweepResult &a, const SweepResult &b)
    {
        if (a.xLabel != b.xLabel || a.yLabel != b.yLabel ||
            a.series.size() != b.series.size())
            return false;
        for (size_t s = 0; s < a.series.size(); ++s) {
            if (a.series[s].label != b.series[s].label ||
                a.series[s].points != b.series[s].points)
                return false;
        }
        return true;
    }

    Platform platform;
};

TEST_F(SweepDeterminismTest, SweepsBitIdenticalAcrossThreadCounts)
{
    ParallelRunner serial(1);
    SweepEngine reference(platform, serial);

    std::vector<PdnKind> kinds(allPdnKinds.begin(), allPdnKinds.end());
    std::vector<double> ars = {0.1, 0.3, 0.56, 0.8, 1.0};
    std::vector<double> tdps(evaluationTdpsW.begin(),
                             evaluationTdpsW.end());

    SweepResult ar_ref = reference.eteeVsAr(
        watts(15.0), WorkloadType::MultiThread, ars, kinds);
    SweepResult tdp_ref = reference.eteeVsTdp(
        WorkloadType::SingleThread, 0.56, tdps, kinds);
    SweepResult cs_ref = reference.eteeVsCState(kinds);
    SweepResult bom_ref = reference.bomVsTdp(tdps, kinds);
    SweepResult area_ref = reference.areaVsTdp(tdps, kinds);

    for (unsigned threads : {2u, 8u}) {
        ParallelRunner pool(threads);
        SweepEngine engine(platform, pool);
        EXPECT_TRUE(identical(
            ar_ref, engine.eteeVsAr(watts(15.0),
                                    WorkloadType::MultiThread, ars,
                                    kinds)))
            << threads << " threads";
        EXPECT_TRUE(identical(
            tdp_ref, engine.eteeVsTdp(WorkloadType::SingleThread,
                                      0.56, tdps, kinds)))
            << threads << " threads";
        EXPECT_TRUE(identical(cs_ref, engine.eteeVsCState(kinds)))
            << threads << " threads";
        EXPECT_TRUE(identical(bom_ref, engine.bomVsTdp(tdps, kinds)))
            << threads << " threads";
        EXPECT_TRUE(identical(area_ref,
                              engine.areaVsTdp(tdps, kinds)))
            << threads << " threads";
    }
}

TEST_F(SweepDeterminismTest, SuitePerfBitIdenticalAcrossThreadCounts)
{
    ParallelRunner serial(1);
    const std::vector<Workload> &suite = specCpu2006();

    std::vector<double> ref = suiteRelativePerf(
        platform, PdnKind::FlexWatts, watts(4.0), suite, serial);
    double mean_ref = suiteMeanRelativePerf(
        platform, PdnKind::FlexWatts, watts(4.0), suite, serial);

    for (unsigned threads : {2u, 8u}) {
        ParallelRunner pool(threads);
        EXPECT_EQ(ref, suiteRelativePerf(platform,
                                         PdnKind::FlexWatts,
                                         watts(4.0), suite, pool))
            << threads << " threads";
        EXPECT_EQ(mean_ref,
                  suiteMeanRelativePerf(platform, PdnKind::FlexWatts,
                                        watts(4.0), suite, pool))
            << threads << " threads";
    }
}

TEST_F(SweepDeterminismTest, CsvExportIdenticalAcrossThreadCounts)
{
    std::vector<PdnKind> kinds(allPdnKinds.begin(), allPdnKinds.end());
    std::vector<double> tdps(evaluationTdpsW.begin(),
                             evaluationTdpsW.end());

    auto csv = [&](unsigned threads) {
        ParallelRunner pool(threads);
        SweepEngine engine(platform, pool);
        std::ostringstream os;
        engine.eteeVsTdp(WorkloadType::MultiThread, 0.56, tdps, kinds)
            .writeCsv(os);
        return os.str();
    };

    std::string ref = csv(1);
    EXPECT_EQ(ref, csv(2));
    EXPECT_EQ(ref, csv(8));
}

} // namespace
} // namespace pdnspot
