/**
 * @file
 * Fleet spec-file binding tests: a good spec resolves to the same
 * FleetSpec a C++ caller would build (defaults included), and every
 * malformed input — unknown keys, bad enums, missing required keys,
 * duplicate cohorts, out-of-range values — produces a single-line
 * ConfigError carrying the offending value's file:line:col position.
 */

#include <string>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "config/fleet_config.hh"

namespace pdnspot
{
namespace
{

FleetSpec
load(const std::string &text)
{
    return loadFleetSpec(text, "fleet.json");
}

/**
 * The error contract: one line, a fleet.json:line:col position, and
 * the interesting part of the message.
 */
void
expectSpecError(const std::string &text, const std::string &needle,
                const std::string &position = "fleet.json:")
{
    try {
        load(text);
        FAIL() << "no error for: " << text;
    } catch (const ConfigError &e) {
        std::string what = e.what();
        EXPECT_EQ(what.find('\n'), std::string::npos)
            << "multi-line error: " << what;
        EXPECT_NE(what.find(position), std::string::npos)
            << "expected position \"" << position
            << "\" in: " << what;
        EXPECT_NE(what.find(needle), std::string::npos)
            << "expected \"" << needle << "\" in: " << what;
    }
}

const char *const goodSpec = R"({
  "bucket_ms": 250.0,
  "horizon_s": 120.0,
  "tick_us": 25.0,
  "seed": 9,
  "storm_k": 3.5,
  "cohorts": [
    {"name": "tablets",
     "count": 1000,
     "platform": "fanless-tablet-4w",
     "pdn": "IVR",
     "mode": "oracle",
     "trace": {"library": "web-browsing-trace", "seed": 42},
     "start_jitter_ms": 1500.0,
     "battery_wh": 28.0,
     "battery_spread": 0.15},
    {"name": "laptops",
     "count": 2500,
     "platform": "ultraportable-15w",
     "trace": {"library": "day-in-the-life", "seed": 42}}
  ]
})";

TEST(FleetConfigTest, GoodSpecMatchesCppConstruction)
{
    FleetSpec spec = load(goodSpec);

    EXPECT_EQ(spec.bucket, milliseconds(250.0));
    EXPECT_EQ(spec.horizon, seconds(120.0));
    EXPECT_EQ(spec.tick, microseconds(25.0));
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_DOUBLE_EQ(spec.stormK, 3.5);

    ASSERT_EQ(spec.cohorts.size(), 2u);
    const FleetCohort &tablets = spec.cohorts[0];
    EXPECT_EQ(tablets.name, "tablets");
    EXPECT_EQ(tablets.count, 1000u);
    EXPECT_EQ(tablets.platform.name, fanlessTabletPreset().name);
    EXPECT_EQ(tablets.pdn, PdnKind::IVR);
    EXPECT_EQ(tablets.mode, SimMode::Oracle);
    EXPECT_EQ(tablets.trace.name(), "web-browsing-trace");
    EXPECT_EQ(tablets.trace.resolve(),
              TraceSpec::library("web-browsing-trace", 42).resolve());
    EXPECT_EQ(tablets.startJitter, milliseconds(1500.0));
    EXPECT_DOUBLE_EQ(tablets.batteryWh, 28.0);
    EXPECT_DOUBLE_EQ(tablets.batterySpread, 0.15);
}

TEST(FleetConfigTest, CohortAndClockDefaults)
{
    FleetSpec spec = load(R"({
      "cohorts": [
        {"name": "fleet", "count": 10,
         "platform": "ultraportable-15w",
         "trace": {"library": "bursty-compute", "seed": 42}}
      ]
    })");

    EXPECT_EQ(spec.bucket, seconds(1.0));
    EXPECT_EQ(spec.horizon, seconds(3600.0));
    EXPECT_EQ(spec.tick, microseconds(50.0));
    EXPECT_EQ(spec.seed, 1u);
    EXPECT_DOUBLE_EQ(spec.stormK, 4.0);

    const FleetCohort &cohort = spec.cohorts.at(0);
    EXPECT_EQ(cohort.pdn, PdnKind::FlexWatts);
    EXPECT_EQ(cohort.mode, SimMode::Static);
    EXPECT_EQ(cohort.startJitter, seconds(0.0));
    EXPECT_DOUBLE_EQ(cohort.batteryWh, 50.0);
    EXPECT_DOUBLE_EQ(cohort.batterySpread, 0.0);
}

std::string
cohortSpec(const std::string &cohortBody)
{
    return "{\n  \"cohorts\": [\n    " + cohortBody + "\n  ]\n}";
}

const char *const minimalCohort =
    R"({"name": "a", "count": 5, "platform": "ultraportable-15w",
        "trace": {"library": "bursty-compute", "seed": 42}})";

TEST(FleetConfigTest, RejectsUnknownKeysWithPosition)
{
    expectSpecError(R"({"cohortz": []})",
                    "unknown fleet spec key \"cohortz\"",
                    "fleet.json:1:13");
    expectSpecError(
        cohortSpec(R"({"name": "a", "count": 5,
                       "platform": "ultraportable-15w",
                       "trace": {"library": "bursty-compute"},
                       "jitter_ms": 5})"),
        "unknown cohort key \"jitter_ms\"");
}

TEST(FleetConfigTest, RequiresCohortsAndCohortKeys)
{
    expectSpecError(R"({})", "missing required key \"cohorts\"");
    expectSpecError(R"({"cohorts": []})",
                    "must hold at least one cohort");
    expectSpecError(cohortSpec(R"({"count": 5})"),
                    "missing required cohort key \"name\"");
    expectSpecError(cohortSpec(R"({"name": "a"})"),
                    "missing required cohort key \"count\"");
    expectSpecError(cohortSpec(R"({"name": "a", "count": 5})"),
                    "missing required cohort key \"platform\"");
    expectSpecError(
        cohortSpec(
            R"({"name": "a", "count": 5,
                "platform": "ultraportable-15w"})"),
        "missing required cohort key \"trace\"");
}

TEST(FleetConfigTest, RejectsDuplicateCohortNames)
{
    expectSpecError(
        cohortSpec(std::string(minimalCohort) + ",\n    " +
                   minimalCohort),
        "duplicate cohort name \"a\"");
}

TEST(FleetConfigTest, RejectsBadEnumValues)
{
    expectSpecError(
        cohortSpec(
            R"({"name": "a", "count": 5, "platform": "nope",
                "trace": {"library": "bursty-compute"}})"),
        "unknown platform preset \"nope\"");
    expectSpecError(
        cohortSpec(
            R"({"name": "a", "count": 5,
                "platform": "ultraportable-15w", "pdn": "FancyVR",
                "trace": {"library": "bursty-compute"}})"),
        "unknown PDN kind \"FancyVR\"");
    expectSpecError(
        cohortSpec(
            R"({"name": "a", "count": 5,
                "platform": "ultraportable-15w", "mode": "magic",
                "trace": {"library": "bursty-compute"}})"),
        "unknown simulation mode \"magic\"");
}

TEST(FleetConfigTest, RejectsOutOfRangeValues)
{
    expectSpecError(
        cohortSpec(
            R"({"name": "a", "count": 0,
                "platform": "ultraportable-15w",
                "trace": {"library": "bursty-compute"}})"),
        "\"count\"");
    expectSpecError(
        cohortSpec(
            R"({"name": "a", "count": 5,
                "platform": "ultraportable-15w",
                "trace": {"library": "bursty-compute"},
                "battery_wh": -1})"),
        "\"battery_wh\" must be positive");
    expectSpecError(
        cohortSpec(
            R"({"name": "a", "count": 5,
                "platform": "ultraportable-15w",
                "trace": {"library": "bursty-compute"},
                "battery_spread": 1.0})"),
        "\"battery_spread\" must be in [0, 1)");
    expectSpecError(
        cohortSpec(
            R"({"name": "a", "count": 5,
                "platform": "ultraportable-15w",
                "trace": {"library": "bursty-compute"},
                "start_jitter_ms": -2})"),
        "\"start_jitter_ms\" must be non-negative");
    expectSpecError("{\"cohorts\": [" + std::string(minimalCohort) +
                        "], \"bucket_ms\": 0}",
                    "\"bucket_ms\" must be positive");
    expectSpecError("{\"cohorts\": [" + std::string(minimalCohort) +
                        "], \"seed\": -1}",
                    "\"seed\"");
}

TEST(FleetConfigTest, CrossFieldChecksFailAtTheRoot)
{
    // Bucket longer than the horizon binds per-field but fails
    // FleetSpec::validate; the error lands at the document root.
    expectSpecError("{\"cohorts\": [" + std::string(minimalCohort) +
                        "], \"bucket_ms\": 10000, \"horizon_s\": 5}",
                    "bucket", "fleet.json:1:1");
}

} // namespace
} // namespace pdnspot
