/**
 * @file
 * TraceSpec tests: every provenance kind resolves to the trace its
 * eager counterpart builds, resolution is deterministic, renames and
 * tick overrides stick, and malformed specs fail validation.
 */

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/trace_generator.hh"
#include "workload/trace_io.hh"
#include "workload/trace_library.hh"
#include "workload/trace_source.hh"

namespace pdnspot
{
namespace
{

TEST(TraceSpecTest, InlineWrapsAndConvertsImplicitly)
{
    PhaseTrace eager =
        TraceGenerator(4).burstyCompute(2, milliseconds(5.0),
                                        milliseconds(10.0));
    TraceSpec spec = eager; // implicit compatibility conversion
    EXPECT_EQ(spec.kind(), TraceSpec::Kind::Inline);
    EXPECT_EQ(spec.name(), eager.name());
    EXPECT_EQ(spec.resolve(), eager);
}

TEST(TraceSpecTest, LibraryResolvesToTheCorpusEntry)
{
    TraceSpec spec = TraceSpec::library("random-mix-43", 42);
    EXPECT_EQ(spec.name(), "random-mix-43");
    EXPECT_EQ(spec.resolve(),
              standardCampaignTraces(42).get("random-mix-43"));
    EXPECT_THROW(TraceSpec::library("no-such-trace", 42).resolve(),
                 ConfigError);
}

TEST(TraceSpecTest, GeneratorResolvesToTheGeneratorOutput)
{
    TraceGeneratorSpec params;
    params.kind = "bursty-compute";
    params.seed = 11;
    params.bursts = 3;
    params.burstLen = milliseconds(6.0);
    params.idleLen = milliseconds(18.0);
    params.arMin = 0.5;
    params.arMax = 0.9;
    TraceSpec spec = TraceSpec::generator(params);
    EXPECT_EQ(spec.name(), "bursty-compute");
    EXPECT_EQ(spec.resolve(),
              TraceGenerator(11).burstyCompute(3, milliseconds(6.0),
                                               milliseconds(18.0),
                                               0.5, 0.9));

    TraceGeneratorSpec mix;
    mix.kind = "random-mix";
    mix.seed = 5;
    mix.phases = 10;
    mix.meanPhaseLen = milliseconds(8.0);
    EXPECT_EQ(TraceSpec::generator(mix).name(), "random-mix-5");
    EXPECT_EQ(TraceSpec::generator(mix).resolve(),
              TraceGenerator(5).randomMix(10, milliseconds(8.0)));

    TraceGeneratorSpec day;
    day.kind = "day-in-the-life";
    day.seed = 2;
    EXPECT_EQ(TraceSpec::generator(day).resolve(),
              TraceGenerator(2).dayInTheLife());
}

TEST(TraceSpecTest, ProfileResolvesToTheFrameExpansion)
{
    TraceSpec spec =
        TraceSpec::profile("web-browsing", milliseconds(20.0), 3);
    EXPECT_EQ(spec.name(), "web-browsing-trace");
    EXPECT_EQ(spec.resolve(),
              traceFromBatteryProfile(batteryProfileByName(
                                          "web-browsing"),
                                      milliseconds(20.0), 3));
    EXPECT_THROW(TraceSpec::profile("mining").resolve(),
                 ConfigError);
}

TEST(TraceSpecTest, FileResolvesAndNamesAfterTheStem)
{
    std::string path = testing::TempDir() + "spec_source_trace.csv";
    PhaseTrace eager =
        TraceGenerator(8).randomMix(6, milliseconds(4.0));
    {
        std::ofstream out(path, std::ios::binary);
        writeTraceCsv(out, eager);
    }
    TraceSpec spec = TraceSpec::file(path);
    EXPECT_EQ(spec.kind(), TraceSpec::Kind::File);
    EXPECT_EQ(spec.name(), "spec_source_trace");
    PhaseTrace resolved = spec.resolve();
    EXPECT_EQ(resolved.name(), "spec_source_trace");
    EXPECT_EQ(resolved.phases(), eager.phases());

    EXPECT_THROW(
        TraceSpec::file(testing::TempDir() + "missing.csv")
            .resolve(),
        ConfigError);
}

TEST(TraceSpecTest, RenameAndTickOverrideStick)
{
    TraceSpec spec =
        TraceSpec::library("bursty-compute", 42).rename("spiky");
    EXPECT_EQ(spec.name(), "spiky");
    EXPECT_EQ(spec.resolve().name(), "spiky");
    // Renaming changes only the cell address, not the phases.
    EXPECT_EQ(spec.resolve().phases(),
              standardCampaignTraces(42).get("bursty-compute")
                  .phases());

    EXPECT_FALSE(spec.tickOverride());
    spec.tick(microseconds(25.0));
    ASSERT_TRUE(spec.tickOverride());
    EXPECT_EQ(*spec.tickOverride(), microseconds(25.0));
}

TEST(TraceSpecTest, ResolutionIsDeterministic)
{
    TraceGeneratorSpec mix;
    mix.kind = "random-mix";
    mix.seed = 77;
    for (const TraceSpec &spec :
         {TraceSpec::library("day-in-the-life", 42),
          TraceSpec::generator(mix),
          TraceSpec::profile("light-gaming")}) {
        EXPECT_EQ(spec.resolve(), spec.resolve())
            << spec.describe();
    }
}

TEST(TraceSpecTest, EqualityComparesProvenanceNotPhases)
{
    EXPECT_EQ(TraceSpec::library("bursty-compute", 42),
              TraceSpec::library("bursty-compute", 42));
    EXPECT_NE(TraceSpec::library("bursty-compute", 42),
              TraceSpec::library("bursty-compute", 43));
    // Same resolved trace, different provenance: not equal specs.
    EXPECT_NE(TraceSpec::library("bursty-compute", 42),
              TraceSpec(standardCampaignTraces(42)
                            .get("bursty-compute")));
}

TEST(TraceSpecTest, ValidateRejectsMalformedSpecs)
{
    EXPECT_THROW(TraceSpec().validate(), ConfigError); // unnamed

    TraceGeneratorSpec params;
    params.kind = "perlin";
    EXPECT_THROW(TraceSpec::generator(params).validate(),
                 ConfigError);

    params.kind = "random-mix";
    params.arMin = 0.9;
    params.arMax = 0.4;
    EXPECT_THROW(TraceSpec::generator(params).validate(),
                 ConfigError);

    params.arMin = 0.4;
    params.arMax = 0.8;
    params.phases = 0;
    EXPECT_THROW(TraceSpec::generator(params).validate(),
                 ConfigError);

    EXPECT_THROW(
        TraceSpec::profile("video-playback", milliseconds(33.3), 0)
            .validate(),
        ConfigError);
    EXPECT_THROW(TraceSpec::file("").validate(), ConfigError);
    EXPECT_THROW(TraceSpec::library("a,b", 42).validate(),
                 ConfigError);
    EXPECT_THROW(TraceSpec::library("fine", 42)
                     .tick(seconds(0.0))
                     .validate(),
                 ConfigError);
}

TEST(TraceSpecTest, DescribeNamesTheProvenance)
{
    EXPECT_NE(TraceSpec::library("bursty-compute", 42)
                  .describe()
                  .find("library \"bursty-compute\""),
              std::string::npos);
    EXPECT_NE(TraceSpec::file("a/b.csv").describe().find("a/b.csv"),
              std::string::npos);
}

} // namespace
} // namespace pdnspot
