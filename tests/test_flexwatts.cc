/**
 * @file
 * Unit and property tests for the FlexWatts hybrid PDN, the ETEE
 * firmware tables, the mode predictor, and the switch flow.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "flexwatts/etee_table.hh"
#include "flexwatts/flexwatts_pdn.hh"
#include "flexwatts/mode_predictor.hh"
#include "flexwatts/mode_switch.hh"
#include "pdn/ivr_pdn.hh"
#include "pdn/ldo_pdn.hh"
#include "pdn/mbvr_pdn.hh"
#include "power/operating_point.hh"

namespace pdnspot
{
namespace
{

class FlexWattsTest : public ::testing::Test
{
  protected:
    PlatformState
    state(double tdp_w, WorkloadType type = WorkloadType::MultiThread,
          double ar = 0.56, PackageCState cs = PackageCState::C0)
    {
        OperatingPointModel::Query q;
        q.tdp = watts(tdp_w);
        q.type = type;
        q.ar = ar;
        q.cstate = cs;
        return opm.build(q);
    }

    OperatingPointModel opm;
    FlexWattsPdn fw;
};

TEST_F(FlexWattsTest, OracleEqualsArgmaxOverModes)
{
    for (double tdp : {4.0, 18.0, 50.0}) {
        PlatformState s = state(tdp);
        double best = fw.evaluate(s).etee();
        double ivr_mode = fw.evaluate(s, HybridMode::IvrMode).etee();
        double ldo_mode = fw.evaluate(s, HybridMode::LdoMode).etee();
        EXPECT_DOUBLE_EQ(best, std::max(ivr_mode, ldo_mode)) << tdp;
    }
}

TEST_F(FlexWattsTest, PrefersLdoModeAtLowTdpIvrModeAtHigh)
{
    // Sec. 6: light/low-TDP -> LDO-Mode; heavy/high-TDP -> IVR-Mode.
    EXPECT_EQ(fw.bestMode(state(4.0)), HybridMode::LdoMode);
    EXPECT_EQ(fw.bestMode(state(50.0)), HybridMode::IvrMode);
    EXPECT_EQ(fw.bestMode(state(15.0, WorkloadType::BatteryLife, 0.3,
                                PackageCState::C8)),
              HybridMode::LdoMode);
}

TEST_F(FlexWattsTest, TrailsBestStaticPdnByLessThanOnePercent)
{
    // Sec. 7: FlexWatts performs within ~1% of the best static PDN at
    // every TDP (the resource-sharing load-line penalty).
    IvrPdn ivr;
    MbvrPdn mbvr;
    LdoPdn ldo;
    for (double tdp : {4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0}) {
        PlatformState s = state(tdp);
        double best_static = std::max({ivr.evaluate(s).etee(),
                                       mbvr.evaluate(s).etee(),
                                       ldo.evaluate(s).etee()});
        double flex = fw.evaluate(s).etee();
        EXPECT_GT(flex, best_static - 0.015) << tdp;
    }
}

TEST_F(FlexWattsTest, BeatsIvrAcrossTheBoard)
{
    // The headline: FlexWatts never does worse than the
    // state-of-the-art IVR PDN, and is far better at low TDP.
    IvrPdn ivr;
    for (double tdp : {4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0}) {
        PlatformState s = state(tdp);
        EXPECT_GE(fw.evaluate(s).etee() + 0.005,
                  ivr.evaluate(s).etee())
            << tdp;
    }
    EXPECT_GT(fw.evaluate(state(4.0)).etee(),
              IvrPdn().evaluate(state(4.0)).etee() + 0.05);
}

TEST_F(FlexWattsTest, HigherLoadLineThanPureTopologies)
{
    PlatformState s = state(18.0);
    EteeResult ivr_mode = fw.evaluate(s, HybridMode::IvrMode);
    EteeResult ldo_mode = fw.evaluate(s, HybridMode::LdoMode);
    EXPECT_NEAR(inMilliohms(ivr_mode.computeLoadLine), 1.1, 1e-9);
    EXPECT_NEAR(inMilliohms(ldo_mode.computeLoadLine), 1.4, 1e-9);
}

TEST_F(FlexWattsTest, VinSizedForIvrMode)
{
    // Sec. 7: the shared V_IN carries IVR-Mode-level current (~1.8 V),
    // roughly half of what an LDO-style rail would need.
    PlatformState peak = state(50.0);
    auto rails = fw.offChipRails(peak);
    ASSERT_FALSE(rails.empty());
    EXPECT_EQ(rails[0].name, "V_IN");
    EXPECT_NEAR(inVolts(rails[0].outputVoltage), 1.8, 1e-9);

    LdoPdn ldo;
    auto ldo_rails = ldo.offChipRails(peak);
    EXPECT_LT(inAmps(rails[0].iccMax),
              0.75 * inAmps(ldo_rails[0].iccMax));
}

TEST_F(FlexWattsTest, EteeTableMatchesDirectEvaluationOnGrid)
{
    EteeTable table(fw, opm);
    for (double tdp : {4.0, 18.0, 50.0}) {
        for (double ar : {0.4, 0.6, 0.8}) {
            for (HybridMode m : allHybridModes) {
                double direct =
                    fw.evaluate(state(tdp, WorkloadType::MultiThread,
                                      ar),
                                m)
                        .etee();
                double looked = table.lookupActive(
                    m, WorkloadType::MultiThread, watts(tdp), ar);
                EXPECT_NEAR(looked, direct, 1e-9)
                    << tdp << " " << ar << " " << toString(m);
            }
        }
    }
}

TEST_F(FlexWattsTest, EteeTableInterpolatesBetweenGridPoints)
{
    EteeTable table(fw, opm);
    double mid = table.lookupActive(
        HybridMode::IvrMode, WorkloadType::MultiThread, watts(21.5),
        0.55);
    double lo = table.lookupActive(HybridMode::IvrMode,
                                   WorkloadType::MultiThread,
                                   watts(18.0), 0.55);
    double hi = table.lookupActive(HybridMode::IvrMode,
                                   WorkloadType::MultiThread,
                                   watts(25.0), 0.55);
    EXPECT_GE(mid, std::min(lo, hi) - 1e-12);
    EXPECT_LE(mid, std::max(lo, hi) + 1e-12);
}

TEST_F(FlexWattsTest, EteeTableCStateRows)
{
    EteeTable table(fw, opm);
    for (PackageCState cs : batteryLifeCStates) {
        double ivr_mode =
            table.lookupCState(HybridMode::IvrMode, cs);
        double ldo_mode =
            table.lookupCState(HybridMode::LdoMode, cs);
        EXPECT_GT(ivr_mode, 0.2) << toString(cs);
        EXPECT_GT(ldo_mode, 0.2) << toString(cs);
        // Idle states always favor LDO-Mode (one-stage-like path).
        EXPECT_GT(ldo_mode, ivr_mode) << toString(cs);
    }
}

TEST_F(FlexWattsTest, EteeTableBitIdenticalAcrossThreadCounts)
{
    ParallelRunner serial(1);
    ParallelRunner pool(8);
    EteeTable ref(fw, opm, EteeTable::GridSpec(), serial);
    EteeTable par(fw, opm, EteeTable::GridSpec(), pool);

    for (HybridMode mode : allHybridModes) {
        for (double tdp : {4.0, 11.0, 27.0, 50.0}) {
            for (double ar : {0.3, 0.47, 0.71, 0.9}) {
                EXPECT_EQ(ref.lookupActive(mode,
                                           WorkloadType::MultiThread,
                                           watts(tdp), ar),
                          par.lookupActive(mode,
                                           WorkloadType::MultiThread,
                                           watts(tdp), ar));
            }
        }
        for (PackageCState cs : batteryLifeCStates) {
            EXPECT_EQ(ref.lookupCState(mode, cs),
                      par.lookupCState(mode, cs));
        }
    }
}

TEST_F(FlexWattsTest, PredictorImplementsAlgorithm1)
{
    // Algorithm 1: pick the mode with the higher stored ETEE; the
    // prediction must agree with the oracle on grid points.
    EteeTable table(fw, opm);
    ModePredictor predictor(table);
    for (double tdp : {4.0, 10.0, 18.0, 36.0, 50.0}) {
        for (WorkloadType type :
             {WorkloadType::SingleThread, WorkloadType::MultiThread,
              WorkloadType::Graphics}) {
            for (double ar : {0.4, 0.6, 0.8}) {
                PredictorInputs in;
                in.tdp = watts(tdp);
                in.ar = ar;
                in.workloadType = type;
                EXPECT_EQ(predictor.predict(in),
                          fw.bestMode(state(tdp, type, ar)))
                    << tdp << " " << toString(type) << " " << ar;
            }
        }
    }
}

TEST_F(FlexWattsTest, PredictorHysteresisSticksToCurrentMode)
{
    EteeTable table(fw, opm);
    // A huge margin should never advise a switch.
    ModePredictor sticky(table, 0.5);
    PredictorInputs in;
    in.tdp = watts(4.0); // strongly LDO-favored
    EXPECT_EQ(sticky.decide(in, HybridMode::IvrMode),
              HybridMode::IvrMode);
    // Zero margin follows Algorithm 1 exactly.
    ModePredictor bare(table, 0.0);
    EXPECT_EQ(bare.decide(in, HybridMode::IvrMode),
              HybridMode::LdoMode);
}

TEST_F(FlexWattsTest, PredictorRejectsBadHysteresis)
{
    EteeTable table(fw, opm);
    EXPECT_THROW(ModePredictor(table, -0.1), ConfigError);
    EXPECT_THROW(ModePredictor(table, 1.0), ConfigError);
}

TEST(ModeSwitchFlowTest, TotalLatencyMatchesPaper)
{
    // Sec. 6: 45 + 19 + 30 = 94 us.
    ModeSwitchParams p;
    EXPECT_NEAR(inMicroseconds(p.totalLatency()), 94.0, 1e-9);
}

TEST(ModeSwitchFlowTest, SwitchLifecycle)
{
    ModeSwitchFlow flow(HybridMode::IvrMode);
    EXPECT_FALSE(flow.switching(seconds(0.0)));

    EXPECT_TRUE(flow.requestSwitch(milliseconds(1.0),
                                   HybridMode::LdoMode));
    EXPECT_EQ(flow.mode(), HybridMode::LdoMode);
    EXPECT_TRUE(flow.switching(milliseconds(1.05)));
    EXPECT_FALSE(flow.switching(milliseconds(1.1)));
    EXPECT_EQ(flow.switchCount(), 1u);

    // Same-mode requests and in-flight requests are rejected.
    EXPECT_FALSE(flow.requestSwitch(milliseconds(2.0),
                                    HybridMode::LdoMode));
    EXPECT_TRUE(flow.requestSwitch(milliseconds(3.0),
                                   HybridMode::IvrMode));
    EXPECT_FALSE(flow.requestSwitch(milliseconds(3.00005),
                                    HybridMode::LdoMode));
    EXPECT_EQ(flow.switchCount(), 2u);
}

TEST(ModeSwitchFlowTest, OverheadAccounting)
{
    ModeSwitchFlow flow(HybridMode::IvrMode);
    flow.requestSwitch(milliseconds(1.0), HybridMode::LdoMode);
    flow.requestSwitch(milliseconds(2.0), HybridMode::IvrMode);
    EXPECT_NEAR(inMicroseconds(flow.totalOverheadTime()), 188.0, 1e-9);
    // Energy = flow power * overhead time.
    EXPECT_NEAR(inJoules(flow.totalOverheadEnergy()),
                inWatts(flow.params().flowPower) * 188e-6, 1e-12);
}

TEST(ModeSwitchFlowTest, WellBelowDvfsLatency)
{
    // Sec. 6 argues 94 us is acceptable because DVFS transitions can
    // take up to 500 us.
    ModeSwitchParams p;
    EXPECT_LT(inMicroseconds(p.totalLatency()), 500.0);
}

} // anonymous namespace
} // namespace pdnspot
