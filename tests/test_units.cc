/**
 * @file
 * Unit tests for the dimensional-quantity types.
 */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace pdnspot
{
namespace
{

TEST(Units, ConstructionAndReadback)
{
    EXPECT_DOUBLE_EQ(inVolts(volts(1.8)), 1.8);
    EXPECT_DOUBLE_EQ(inMillivolts(millivolts(25.0)), 25.0);
    EXPECT_DOUBLE_EQ(inVolts(millivolts(500.0)), 0.5);
    EXPECT_DOUBLE_EQ(inAmps(milliamps(250.0)), 0.25);
    EXPECT_DOUBLE_EQ(inWatts(milliwatts(4500.0)), 4.5);
    EXPECT_DOUBLE_EQ(inMilliohms(milliohms(2.5)), 2.5);
    EXPECT_DOUBLE_EQ(inSeconds(microseconds(94.0)), 94e-6);
    EXPECT_DOUBLE_EQ(inGigahertz(gigahertz(4.0)), 4.0);
    EXPECT_DOUBLE_EQ(inGigahertz(megahertz(900.0)), 0.9);
    EXPECT_DOUBLE_EQ(inWattHours(wattHours(50.0)), 50.0);
    EXPECT_DOUBLE_EQ(inJoules(wattHours(1.0)), 3600.0);
    EXPECT_DOUBLE_EQ(inSquareMillimetres(squareMillimetres(41.0)), 41.0);
}

TEST(Units, DefaultIsZero)
{
    EXPECT_DOUBLE_EQ(Power().value(), 0.0);
    EXPECT_DOUBLE_EQ(Voltage().value(), 0.0);
    EXPECT_DOUBLE_EQ(Time().value(), 0.0);
}

TEST(Units, AdditionSubtraction)
{
    Power p = watts(3.0) + watts(1.5);
    EXPECT_DOUBLE_EQ(inWatts(p), 4.5);
    p -= watts(0.5);
    EXPECT_DOUBLE_EQ(inWatts(p), 4.0);
    p += watts(1.0);
    EXPECT_DOUBLE_EQ(inWatts(p), 5.0);
    EXPECT_DOUBLE_EQ(inWatts(-p), -5.0);
    EXPECT_DOUBLE_EQ(inWatts(watts(3.0) - watts(5.0)), -2.0);
}

TEST(Units, ScalarScaling)
{
    EXPECT_DOUBLE_EQ(inWatts(watts(2.0) * 3.0), 6.0);
    EXPECT_DOUBLE_EQ(inWatts(3.0 * watts(2.0)), 6.0);
    EXPECT_DOUBLE_EQ(inWatts(watts(6.0) / 3.0), 2.0);
    Power p = watts(2.0);
    p *= 2.0;
    EXPECT_DOUBLE_EQ(inWatts(p), 4.0);
    p /= 4.0;
    EXPECT_DOUBLE_EQ(inWatts(p), 1.0);
}

TEST(Units, OhmsLawAlgebra)
{
    // V = I * R, P = V * I, I = P / V, R = V / I.
    Voltage v = amps(2.0) * ohms(0.5);
    EXPECT_DOUBLE_EQ(inVolts(v), 1.0);

    Power p = volts(1.0) * amps(3.0);
    EXPECT_DOUBLE_EQ(inWatts(p), 3.0);

    Current i = watts(9.0) / volts(3.0);
    EXPECT_DOUBLE_EQ(inAmps(i), 3.0);

    Resistance r = volts(1.0) / amps(4.0);
    EXPECT_DOUBLE_EQ(inMilliohms(r), 250.0);
}

TEST(Units, EnergyTimeAlgebra)
{
    Energy e = watts(2.0) * seconds(3.0);
    EXPECT_DOUBLE_EQ(inJoules(e), 6.0);

    Power p = joules(6.0) / seconds(2.0);
    EXPECT_DOUBLE_EQ(inWatts(p), 3.0);

    Time t = joules(10.0) / watts(5.0);
    EXPECT_DOUBLE_EQ(inSeconds(t), 2.0);
}

TEST(Units, SameDimensionDivisionIsScalar)
{
    double ratio = watts(3.0) / watts(4.0);
    EXPECT_DOUBLE_EQ(ratio, 0.75);
    double vr = volts(0.9) / volts(1.8);
    EXPECT_DOUBLE_EQ(vr, 0.5);
}

TEST(Units, DimensionlessProductCollapsesToDouble)
{
    Frequency f = gigahertz(2.0);
    Time t = seconds(1e-9);
    double cycles = f * t;
    EXPECT_DOUBLE_EQ(cycles, 2.0);
}

TEST(Units, ScalarOverQuantityInvertsDimension)
{
    Frequency f = 1.0 / seconds(0.5);
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
    Time t = 1.0 / hertz(4.0);
    EXPECT_DOUBLE_EQ(inSeconds(t), 0.25);
}

TEST(Units, Comparisons)
{
    EXPECT_LT(watts(1.0), watts(2.0));
    EXPECT_GT(volts(1.8), volts(1.1));
    EXPECT_EQ(watts(1.0), watts(1.0));
    EXPECT_LE(amps(1.0), amps(1.0));
    EXPECT_GE(ohms(2.0), ohms(1.0));
}

TEST(Units, CelsiusDifferences)
{
    Celsius a(100.0), b(80.0);
    EXPECT_DOUBLE_EQ(a - b, 20.0);
    EXPECT_DOUBLE_EQ(b - a, -20.0);
    EXPECT_LT(b, a);
    EXPECT_DOUBLE_EQ(Celsius(50.0).degrees(), 50.0);
}

TEST(Units, ChainedPdnExpression)
{
    // A miniature Eq. 3/4 chain exercising mixed algebra.
    Voltage vd = volts(1.0);
    Power pd = watts(10.0);
    double ar = 0.5;
    Resistance rll = milliohms(2.5);
    Power ppeak = pd / ar;
    Voltage vll = vd + (ppeak / vd) * rll;
    EXPECT_NEAR(inVolts(vll), 1.05, 1e-12);
    Power pll = vll * (pd / vd);
    EXPECT_NEAR(inWatts(pll), 10.5, 1e-12);
}

} // anonymous namespace
} // namespace pdnspot
