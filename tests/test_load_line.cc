/**
 * @file
 * Unit tests for the load-line model (Eq. 3/4/7/8).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "pdn/load_line.hh"

namespace pdnspot
{
namespace
{

TEST(LoadLine, MatchesEq3And4ByHand)
{
    // VD = 1 V, PD = 10 W, AR = 0.5, RLL = 2.5 mOhm.
    // Ppeak = 20 W -> Ipeak = 20 A -> droop compensation = 50 mV.
    // PD_LL = 1.05 V * 10 A = 10.5 W.
    LoadLine ll(milliohms(2.5));
    auto r = ll.apply(volts(1.0), watts(10.0), 0.5);
    EXPECT_NEAR(inVolts(r.vLL), 1.05, 1e-12);
    EXPECT_NEAR(inWatts(r.pLL), 10.5, 1e-12);
    EXPECT_NEAR(inWatts(r.conductionExcess), 0.5, 1e-12);
}

TEST(LoadLine, ZeroImpedanceIsFree)
{
    LoadLine ll(ohms(0.0));
    auto r = ll.apply(volts(1.0), watts(10.0), 0.5);
    EXPECT_DOUBLE_EQ(inWatts(r.conductionExcess), 0.0);
    EXPECT_DOUBLE_EQ(inVolts(r.vLL), 1.0);
}

TEST(LoadLine, ZeroPowerIsFree)
{
    LoadLine ll(milliohms(2.5));
    auto r = ll.apply(volts(1.0), watts(0.0), 0.5);
    EXPECT_DOUBLE_EQ(inWatts(r.pLL), 0.0);
    EXPECT_DOUBLE_EQ(inWatts(r.conductionExcess), 0.0);
}

TEST(LoadLine, LowerArCostsMore)
{
    // Observation 2: low-AR workloads need a larger Ppeak guardband,
    // degrading efficiency.
    LoadLine ll(milliohms(2.5));
    auto low_ar = ll.apply(volts(1.0), watts(10.0), 0.4);
    auto high_ar = ll.apply(volts(1.0), watts(10.0), 0.8);
    EXPECT_GT(low_ar.conductionExcess, high_ar.conductionExcess);
}

TEST(LoadLine, HigherVoltageRailSuffersLess)
{
    // The IVR PDN's key advantage: delivering the same power at
    // 1.8 V instead of ~1 V quarters the relative I^2*R cost.
    LoadLine ll(milliohms(1.0));
    auto low_v = ll.apply(volts(1.0), watts(20.0), 0.56);
    auto high_v = ll.apply(volts(1.8), watts(20.0), 0.56);
    EXPECT_GT(low_v.conductionExcess / watts(20.0),
              2.5 * (high_v.conductionExcess / watts(20.0)));
}

TEST(LoadLine, ExcessQuadraticInPower)
{
    LoadLine ll(milliohms(2.0));
    auto p1 = ll.apply(volts(1.0), watts(5.0), 0.56);
    auto p2 = ll.apply(volts(1.0), watts(10.0), 0.56);
    EXPECT_NEAR(inWatts(p2.conductionExcess),
                4.0 * inWatts(p1.conductionExcess), 1e-9);
}

TEST(LoadLine, RejectsBadInputs)
{
    EXPECT_THROW(LoadLine(ohms(-1.0)), ConfigError);
    LoadLine ll(milliohms(1.0));
    EXPECT_THROW(ll.apply(volts(0.0), watts(1.0), 0.5), ConfigError);
    EXPECT_THROW(ll.apply(volts(1.0), watts(-1.0), 0.5), ConfigError);
    EXPECT_THROW(ll.apply(volts(1.0), watts(1.0), 0.0), ConfigError);
    EXPECT_THROW(ll.apply(volts(1.0), watts(1.0), 1.5), ConfigError);
}

/** Property sweep over AR: excess is strictly decreasing in AR. */
class ArSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ArSweep, MonotoneInAr)
{
    LoadLine ll(milliohms(2.5));
    double ar = GetParam();
    auto a = ll.apply(volts(1.0), watts(10.0), ar);
    auto b = ll.apply(volts(1.0), watts(10.0), ar + 0.05);
    EXPECT_GT(a.conductionExcess, b.conductionExcess);
}

INSTANTIATE_TEST_SUITE_P(Grid, ArSweep,
                         ::testing::Values(0.3, 0.4, 0.5, 0.6, 0.7,
                                           0.8, 0.9));

} // anonymous namespace
} // namespace pdnspot
