/**
 * @file
 * Unit tests for logging, noise, and the table/CSV emitters.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/noise.hh"
#include "common/table.hh"

namespace pdnspot
{
namespace
{

TEST(Logging, StrprintfFormats)
{
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Logging, FatalThrowsConfigError)
{
    EXPECT_THROW(fatal("bad config"), ConfigError);
    try {
        fatal("bad config");
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("bad config"),
                  std::string::npos);
    }
}

TEST(Logging, PanicThrowsModelError)
{
    EXPECT_THROW(panic("impossible"), ModelError);
}

TEST(Noise, DeterministicAcrossInstances)
{
    HashNoise a(7), b(7);
    for (uint64_t k = 0; k < 50; ++k)
        EXPECT_DOUBLE_EQ(a.signedUnit(k), b.signedUnit(k));
}

TEST(Noise, SeedsDiffer)
{
    HashNoise a(1), b(2);
    int same = 0;
    for (uint64_t k = 0; k < 100; ++k)
        if (a.signedUnit(k) == b.signedUnit(k))
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Noise, SignedUnitBounded)
{
    HashNoise n(99);
    double sum = 0.0;
    for (uint64_t k = 0; k < 1000; ++k) {
        double v = n.signedUnit(k);
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
        sum += v;
    }
    // A fair generator averages near zero.
    EXPECT_NEAR(sum / 1000.0, 0.0, 0.08);
}

TEST(Noise, UnitInHalfOpenRange)
{
    HashNoise n(5);
    for (uint64_t k = 0; k < 1000; ++k) {
        double v = n.unit(k);
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Noise, StringKeysStable)
{
    HashNoise n(11);
    EXPECT_DOUBLE_EQ(n.signedUnit("IVR-trace-3"),
                     n.signedUnit("IVR-trace-3"));
    EXPECT_NE(n.signedUnit("IVR-trace-3"), n.signedUnit("IVR-trace-4"));
}

TEST(AsciiTable, AlignsAndCounts)
{
    AsciiTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "23456"});
    EXPECT_EQ(t.rows(), 2u);

    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_NE(out.find("23456"), std::string::npos);
}

TEST(AsciiTable, RejectsRaggedRows)
{
    AsciiTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), ConfigError);
}

TEST(AsciiTable, NumberFormatting)
{
    EXPECT_EQ(AsciiTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
    EXPECT_EQ(AsciiTable::percent(0.224, 1), "22.4%");
}

TEST(CsvWriter, EscapesSpecials)
{
    CsvWriter w({"k", "v"});
    w.addRow({"a,b", "say \"hi\""});
    std::ostringstream os;
    w.write(os);
    EXPECT_EQ(os.str(), "k,v\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, PlainRows)
{
    CsvWriter w({"x"});
    w.addRow({"1"});
    w.addRow({"2"});
    std::ostringstream os;
    w.write(os);
    EXPECT_EQ(os.str(), "x\n1\n2\n");
}

} // anonymous namespace
} // namespace pdnspot
