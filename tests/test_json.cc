/**
 * @file
 * JSON-subset parser/serializer tests: value coverage, position
 * tracking, the single-line file:line:col error contract, and the
 * write -> parse round-trip.
 */

#include <string>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "config/json.hh"

namespace pdnspot
{
namespace
{

/** Parse with a fixed source label. */
JsonValue
parse(const std::string &text)
{
    return parseJson(text, "test.json");
}

/**
 * The error contract: parsing must throw a ConfigError whose message
 * is a single line containing `needle` and a test.json:line:col
 * position.
 */
void
expectParseError(const std::string &text, const std::string &needle)
{
    try {
        parse(text);
        FAIL() << "no error for: " << text;
    } catch (const ConfigError &e) {
        std::string what = e.what();
        EXPECT_EQ(what.find('\n'), std::string::npos)
            << "multi-line error: " << what;
        EXPECT_NE(what.find("test.json:"), std::string::npos)
            << "no position in: " << what;
        EXPECT_NE(what.find(needle), std::string::npos)
            << "expected \"" << needle << "\" in: " << what;
    }
}

TEST(JsonParserTest, ParsesScalars)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_EQ(parse("true").asBool(), true);
    EXPECT_EQ(parse("false").asBool(), false);
    EXPECT_DOUBLE_EQ(parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parse("-2.5e3").asNumber(), -2500.0);
    EXPECT_DOUBLE_EQ(parse("0.125").asNumber(), 0.125);
    EXPECT_EQ(parse("\"hello\"").asString(), "hello");
}

TEST(JsonParserTest, ParsesStringEscapes)
{
    EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").asString(),
              "a\"b\\c/d\n\t");
    EXPECT_EQ(parse(R"("\u0041\u00e9")").asString(), "A\xc3\xa9");
}

TEST(JsonParserTest, ParsesNestedContainers)
{
    JsonValue v = parse(R"({"a": [1, 2, {"b": true}], "c": {}})");
    ASSERT_EQ(v.kind(), JsonValue::Kind::Object);
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[0].asNumber(), 1.0);
    EXPECT_EQ(a->items()[2].find("b")->asBool(), true);
    EXPECT_TRUE(v.find("c")->members().empty());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParserTest, PreservesMemberOrder)
{
    JsonValue v = parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");
}

TEST(JsonParserTest, TracksPositions)
{
    JsonValue v = parse("{\n  \"a\": [10,\n        20]\n}");
    EXPECT_EQ(v.where(), "test.json:1:1");
    const JsonValue &arr = *v.find("a");
    EXPECT_EQ(arr.where(), "test.json:2:8");
    EXPECT_EQ(arr.items()[0].where(), "test.json:2:9");
    EXPECT_EQ(arr.items()[1].where(), "test.json:3:9");
}

TEST(JsonParserTest, RejectsMalformedDocuments)
{
    expectParseError("", "expected a value");
    expectParseError("{", "end of input");
    expectParseError("[1, 2", "end of input");
    expectParseError("{\"a\" 1}", "expected ':'");
    expectParseError("{\"a\": 1,}", "string object key");
    expectParseError("[1, 2,]", "unexpected character");
    expectParseError("tru", "keyword");
    expectParseError("01", "leading zeros");
    expectParseError("1.e3", "malformed number");
    expectParseError("\"abc", "unterminated string");
    expectParseError("\"a\\q\"", "unknown escape");
    expectParseError("\"\\ud800x\"", "surrogate");
    expectParseError("{} extra", "trailing characters");
    expectParseError("{\"a\": 1, \"a\": 2}", "duplicate object key");
}

TEST(JsonParserTest, ErrorsPointAtTheOffendingLine)
{
    try {
        parse("{\n  \"ok\": 1,\n  \"bad\": bogus\n}");
        FAIL();
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("test.json:3:10"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JsonParserTest, RejectsRunawayNesting)
{
    std::string deep(100, '[');
    expectParseError(deep, "nesting");
}

TEST(JsonValueTest, TypeMismatchErrorsNameBothKinds)
{
    try {
        parse("{\"a\": \"text\"}").find("a")->asNumber();
        FAIL();
    } catch (const ConfigError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("expected number, got string"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("test.json:1:7"), std::string::npos)
            << what;
    }
}

TEST(JsonValueTest, AsIntegerRejectsFractionsAndRange)
{
    EXPECT_EQ(parse("42").asInteger("x", 0, 100), 42);
    EXPECT_THROW(parse("2.5").asInteger("x", 0, 100), ConfigError);
    EXPECT_THROW(parse("101").asInteger("x", 0, 100), ConfigError);
    EXPECT_THROW(parse("-1").asInteger("x", 0, 100), ConfigError);
}

TEST(JsonWriterTest, RoundTripsThroughTheParser)
{
    const std::string text =
        R"({"name": "spec", "n": 3.25, "flags": [true, false, null],)"
        R"( "nested": {"empty": [], "s": "a\nb"}})";
    JsonValue v = parse(text);
    JsonValue reparsed = parseJson(writeJson(v), "round.json");
    EXPECT_EQ(writeJson(reparsed), writeJson(v));
    EXPECT_EQ(reparsed.find("n")->asNumber(), 3.25);
    EXPECT_EQ(reparsed.find("nested")->find("s")->asString(),
              "a\nb");
}

TEST(JsonWriterTest, SerializesConstructedValues)
{
    JsonValue v = JsonValue::makeObject(
        {{"a", JsonValue::makeNumber(1.5)},
         {"b", JsonValue::makeArray({JsonValue::makeString("x"),
                                     JsonValue::makeBool(true)})}});
    EXPECT_EQ(writeJson(v), "{\n  \"a\": 1.5,\n  \"b\": [\n    "
                            "\"x\",\n    true\n  ]\n}\n");
}

} // namespace
} // namespace pdnspot
