/**
 * @file
 * JSON-subset parser/serializer tests: value coverage, position
 * tracking, the single-line file:line:col error contract, and the
 * write -> parse round-trip.
 */

#include <cmath>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/noise.hh"
#include "config/json.hh"

namespace pdnspot
{
namespace
{

/** Parse with a fixed source label. */
JsonValue
parse(const std::string &text)
{
    return parseJson(text, "test.json");
}

/**
 * The error contract: parsing must throw a ConfigError whose message
 * is a single line containing `needle` and a test.json:line:col
 * position.
 */
void
expectParseError(const std::string &text, const std::string &needle)
{
    try {
        parse(text);
        FAIL() << "no error for: " << text;
    } catch (const ConfigError &e) {
        std::string what = e.what();
        EXPECT_EQ(what.find('\n'), std::string::npos)
            << "multi-line error: " << what;
        EXPECT_NE(what.find("test.json:"), std::string::npos)
            << "no position in: " << what;
        EXPECT_NE(what.find(needle), std::string::npos)
            << "expected \"" << needle << "\" in: " << what;
    }
}

TEST(JsonParserTest, ParsesScalars)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_EQ(parse("true").asBool(), true);
    EXPECT_EQ(parse("false").asBool(), false);
    EXPECT_DOUBLE_EQ(parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parse("-2.5e3").asNumber(), -2500.0);
    EXPECT_DOUBLE_EQ(parse("0.125").asNumber(), 0.125);
    EXPECT_EQ(parse("\"hello\"").asString(), "hello");
}

TEST(JsonParserTest, ParsesStringEscapes)
{
    EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").asString(),
              "a\"b\\c/d\n\t");
    EXPECT_EQ(parse(R"("\u0041\u00e9")").asString(), "A\xc3\xa9");
}

TEST(JsonParserTest, ParsesNestedContainers)
{
    JsonValue v = parse(R"({"a": [1, 2, {"b": true}], "c": {}})");
    ASSERT_EQ(v.kind(), JsonValue::Kind::Object);
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[0].asNumber(), 1.0);
    EXPECT_EQ(a->items()[2].find("b")->asBool(), true);
    EXPECT_TRUE(v.find("c")->members().empty());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParserTest, PreservesMemberOrder)
{
    JsonValue v = parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");
}

TEST(JsonParserTest, TracksPositions)
{
    JsonValue v = parse("{\n  \"a\": [10,\n        20]\n}");
    EXPECT_EQ(v.where(), "test.json:1:1");
    const JsonValue &arr = *v.find("a");
    EXPECT_EQ(arr.where(), "test.json:2:8");
    EXPECT_EQ(arr.items()[0].where(), "test.json:2:9");
    EXPECT_EQ(arr.items()[1].where(), "test.json:3:9");
}

TEST(JsonParserTest, RejectsMalformedDocuments)
{
    expectParseError("", "expected a value");
    expectParseError("{", "end of input");
    expectParseError("[1, 2", "end of input");
    expectParseError("{\"a\" 1}", "expected ':'");
    expectParseError("{\"a\": 1,}", "string object key");
    expectParseError("[1, 2,]", "unexpected character");
    expectParseError("tru", "keyword");
    expectParseError("01", "leading zeros");
    expectParseError("1.e3", "malformed number");
    expectParseError("\"abc", "unterminated string");
    expectParseError("\"a\\q\"", "unknown escape");
    expectParseError("\"\\ud800x\"", "surrogate");
    expectParseError("{} extra", "trailing characters");
    expectParseError("{\"a\": 1, \"a\": 2}", "duplicate object key");
}

TEST(JsonParserTest, ErrorsPointAtTheOffendingLine)
{
    try {
        parse("{\n  \"ok\": 1,\n  \"bad\": bogus\n}");
        FAIL();
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("test.json:3:10"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JsonParserTest, RejectsRunawayNesting)
{
    std::string deep(100, '[');
    expectParseError(deep, "nesting");
}

TEST(JsonValueTest, TypeMismatchErrorsNameBothKinds)
{
    try {
        parse("{\"a\": \"text\"}").find("a")->asNumber();
        FAIL();
    } catch (const ConfigError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("expected number, got string"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("test.json:1:7"), std::string::npos)
            << what;
    }
}

TEST(JsonValueTest, AsIntegerRejectsFractionsAndRange)
{
    EXPECT_EQ(parse("42").asInteger("x", 0, 100), 42);
    EXPECT_THROW(parse("2.5").asInteger("x", 0, 100), ConfigError);
    EXPECT_THROW(parse("101").asInteger("x", 0, 100), ConfigError);
    EXPECT_THROW(parse("-1").asInteger("x", 0, 100), ConfigError);
}

TEST(JsonWriterTest, RoundTripsThroughTheParser)
{
    const std::string text =
        R"({"name": "spec", "n": 3.25, "flags": [true, false, null],)"
        R"( "nested": {"empty": [], "s": "a\nb"}})";
    JsonValue v = parse(text);
    JsonValue reparsed = parseJson(writeJson(v), "round.json");
    EXPECT_EQ(writeJson(reparsed), writeJson(v));
    EXPECT_EQ(reparsed.find("n")->asNumber(), 3.25);
    EXPECT_EQ(reparsed.find("nested")->find("s")->asString(),
              "a\nb");
}

/**
 * Property-style coverage: seeded random value trees must
 * serialize -> parse -> serialize to a fixpoint. The generator draws
 * every choice from HashNoise, so each seed is one reproducible
 * pseudo-random document and a failure names the seed that broke.
 */
class RandomJson
{
  public:
    explicit RandomJson(uint64_t seed) : _noise(seed) {}

    JsonValue
    value(int depth = 0)
    {
        // Leaves only at the bottom; containers get rarer with
        // depth so trees stay small but varied.
        double pick = draw();
        if (depth >= 4 || pick < 0.55)
            return scalar();
        if (pick < 0.8)
            return array(depth);
        return object(depth);
    }

  private:
    double draw() { return _noise.unit(_next++); }

    JsonValue
    scalar()
    {
        double pick = draw();
        if (pick < 0.15)
            return JsonValue::makeNull();
        if (pick < 0.3)
            return JsonValue::makeBool(draw() < 0.5);
        if (pick < 0.65)
            return JsonValue::makeNumber(number());
        return JsonValue::makeString(string());
    }

    /**
     * Numbers spanning magnitudes, signs, integers and awkward
     * fractions; shortest-round-trip formatting must reproduce
     * every one exactly.
     */
    double
    number()
    {
        double magnitude = draw();
        double v;
        if (magnitude < 0.3)
            v = std::floor(draw() * 2000.0) - 1000.0;
        else if (magnitude < 0.6)
            v = draw() * 1e-6;
        else if (magnitude < 0.9)
            v = (draw() - 0.5) * 1e12;
        else
            v = draw() / 3.0; // a non-terminating binary fraction
        return v;
    }

    /** Strings mixing plain text with every escape class. */
    std::string
    string()
    {
        static const char *const pieces[] = {
            "plain", "sp ace", "q\"uote", "back\\slash", "sl/ash",
            "new\nline", "tab\tstop", "\xc3\xa9",
            "ctrl\x01\x1f",  "", "0123456789",
        };
        std::string s;
        size_t n = static_cast<size_t>(draw() * 3.0);
        for (size_t i = 0; i <= n; ++i)
            s += pieces[static_cast<size_t>(
                draw() * (std::size(pieces) - 0.001))];
        return s;
    }

    JsonValue
    array(int depth)
    {
        std::vector<JsonValue> items;
        size_t n = static_cast<size_t>(draw() * 4.0);
        for (size_t i = 0; i < n; ++i)
            items.push_back(value(depth + 1));
        return JsonValue::makeArray(std::move(items));
    }

    JsonValue
    object(int depth)
    {
        std::vector<JsonValue::Member> members;
        size_t n = static_cast<size_t>(draw() * 4.0);
        for (size_t i = 0; i < n; ++i) {
            // Unique keys by construction: duplicate keys are a
            // parse error, not a round-trip case.
            members.emplace_back("k" + std::to_string(i) + string(),
                                 value(depth + 1));
        }
        return JsonValue::makeObject(std::move(members));
    }

    HashNoise _noise;
    uint64_t _next = 0;
};

TEST(JsonPropertyTest, RandomTreesSerializeToAFixpoint)
{
    for (uint64_t seed = 0; seed < 50; ++seed) {
        JsonValue tree = RandomJson(seed).value();
        std::string once = writeJson(tree);
        JsonValue reparsed =
            parseJson(once, "prop" + std::to_string(seed) + ".json");
        std::string twice = writeJson(reparsed);
        EXPECT_EQ(twice, once) << "seed " << seed;
        // And the fixpoint really is fixed: a third pass agrees.
        EXPECT_EQ(writeJson(parseJson(twice, "again.json")), twice)
            << "seed " << seed;
    }
}

TEST(JsonPropertyTest, RandomNumbersSurviveExactly)
{
    // The number path in isolation, many draws per seed: an array
    // of doubles spanning magnitudes, signs, integers and awkward
    // fractions must re-parse to the identical serialized bits.
    for (uint64_t seed = 100; seed < 110; ++seed) {
        HashNoise noise(seed);
        std::vector<JsonValue> items;
        for (uint64_t k = 0; k < 200; ++k) {
            double u = noise.unit(3 * k);
            double v = noise.signedUnit(3 * k + 1);
            double w;
            switch (k % 5) {
              case 0: // integers, both signs
                w = std::floor(v * 1e6);
                break;
              case 1: // tiny magnitudes
                w = v * 1e-12;
                break;
              case 2: // huge magnitudes
                w = v * 1e15;
                break;
              case 3: // non-terminating binary fractions
                w = u / 3.0;
                break;
              default: // plain unit-range values
                w = v;
            }
            items.push_back(JsonValue::makeNumber(w));
        }
        std::string text =
            writeJson(JsonValue::makeArray(std::move(items)));
        EXPECT_EQ(writeJson(parseJson(text, "num.json")), text)
            << "seed " << seed;
    }
}

TEST(JsonPropertyTest, MalformedInputsFailAtTheExactPosition)
{
    // Each case pins the exact file:line:col the parser reports
    // (the offending character, or where detection happens for
    // scan-ahead errors) — a weaker "some position" check would let
    // error positions silently drift off by a token.
    struct Case
    {
        const char *text;
        const char *position;
    };
    const Case cases[] = {
        {"{\"a\": }", "test.json:1:7"},           // missing value
        {"[1, 2\n   4]", "test.json:2:4"},        // missing comma
        {"{\"a\": 1\n \"b\": 2}", "test.json:2:2"}, // missing comma
        {"[1, 02]", "test.json:1:7"},             // leading zero
        {"{\"a\": tru}", "test.json:1:7"},        // bad keyword
        {"\n\n  \"abc", "test.json:3:7"},         // unterminated
        {"[1] []", "test.json:1:5"},              // trailing doc
        {"{\"a\": 1, \"a\": 2}", "test.json:1:10"}, // duplicate key
    };
    for (const Case &c : cases) {
        try {
            parse(c.text);
            FAIL() << "no error for: " << c.text;
        } catch (const ConfigError &e) {
            EXPECT_NE(std::string(e.what()).find(c.position),
                      std::string::npos)
                << "expected " << c.position
                << " in: " << e.what();
        }
    }
}

TEST(JsonWriterTest, SerializesConstructedValues)
{
    JsonValue v = JsonValue::makeObject(
        {{"a", JsonValue::makeNumber(1.5)},
         {"b", JsonValue::makeArray({JsonValue::makeString("x"),
                                     JsonValue::makeBool(true)})}});
    EXPECT_EQ(writeJson(v), "{\n  \"a\": 1.5,\n  \"b\": [\n    "
                            "\"x\",\n    true\n  ]\n}\n");
}

} // namespace
} // namespace pdnspot
