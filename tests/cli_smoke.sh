#!/usr/bin/env bash
# Script-driven smoke tests for the pdnspot_campaign,
# pdnspot_fleet, pdnspot_launch and pdnspot_query CLIs, registered
# one case per CTest test (tests/CMakeLists.txt). Each case asserts
# the exit code and the relevant stdout/stderr fragment for a CLI
# surface the GoogleTest suites cannot reach: argv parsing, usage
# errors, spec-error reporting, the listing commands, --dry-run
# provenance, and the launcher's retry/archive round trips. The
# fleet_* cases expect the pdnspot_fleet binary as the tool under
# test, launch_* pdnspot_launch and query_* pdnspot_query;
# everything else expects pdnspot_campaign. The optional fourth
# argument is a second binary the case needs: bench_diff for the
# version case, pdnspot_campaign for the launch_*/query_* cases
# that compare against (or generate) a direct campaign run.
#
# Usage: cli_smoke.sh <tool-binary> <case> <spec-dir> \
#            [extra-binary]

set -u

tool="$1"
case_name="$2"
spec_dir="$3"
bench_diff="${4:-}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail()
{
    echo "cli_smoke $case_name: $1" >&2
    echo "--- stdout ---" >&2
    cat "$tmp/out" >&2
    echo "--- stderr ---" >&2
    cat "$tmp/err" >&2
    exit 1
}

# run <expected-exit> <args...>: invoke the tool, capture both
# streams, and assert the exit code.
run()
{
    local expected="$1"
    shift
    local status=0
    "$tool" "$@" >"$tmp/out" 2>"$tmp/err" || status=$?
    if [ "$status" -ne "$expected" ]; then
        fail "expected exit $expected, got $status"
    fi
}

expect_err() { grep -qF -- "$1" "$tmp/err" || fail "stderr lacks \"$1\""; }
expect_out() { grep -qF -- "$1" "$tmp/out" || fail "stdout lacks \"$1\""; }

case "$case_name" in
  usage_no_spec)
    run 2
    expect_err "missing spec file"
    expect_err "usage: pdnspot_campaign"
    ;;
  usage_bad_shard)
    run 2 "$spec_dir/paper_campaign.json" --shard 0/2
    expect_err "--shard must be k/n with 1 <= k <= n"
    run 2 "$spec_dir/paper_campaign.json" --shard 3/2
    expect_err "--shard must be k/n with 1 <= k <= n"
    run 2 "$spec_dir/paper_campaign.json" --shard -1/2
    expect_err "--shard must be k/n with 1 <= k <= n"
    ;;
  usage_bad_threads)
    run 2 "$spec_dir/paper_campaign.json" --threads zero
    expect_err "--threads must be a positive integer"
    run 2 "$spec_dir/paper_campaign.json" --threads 0
    expect_err "--threads must be a positive integer"
    ;;
  usage_bad_battery_wh)
    # Locale-proof parse: "3,5" is 3.5 under a comma-decimal locale
    # and std::stod would have accepted the "3" prefix of it; the
    # std::from_chars parse must reject it whole, along with
    # non-positive and non-finite capacities.
    run 2 "$spec_dir/paper_campaign.json" --battery-wh 3,5
    expect_err "--battery-wh must be a positive number"
    run 2 "$spec_dir/paper_campaign.json" --battery-wh -5
    expect_err "--battery-wh must be a positive number"
    run 2 "$spec_dir/paper_campaign.json" --battery-wh 0
    expect_err "--battery-wh must be a positive number"
    run 2 "$spec_dir/paper_campaign.json" --battery-wh nan
    expect_err "--battery-wh must be a positive number"
    run 2 "$spec_dir/paper_campaign.json" --battery-wh inf
    expect_err "--battery-wh must be a positive number"
    run 2 "$spec_dir/paper_campaign.json" --battery-wh 50J
    expect_err "--battery-wh must be a positive number"
    ;;
  summary_memo_stats)
    # --summary reports the memo counters harvested from the run;
    # --no-memo switches the line rather than printing zeros.
    run 0 "$spec_dir/paper_campaign.json" --summary -o "$tmp/c.csv"
    expect_err "memo: "
    expect_err " probes, "
    expect_err "hit rate"
    run 0 "$spec_dir/paper_campaign.json" --summary --no-memo \
        -o "$tmp/c.csv"
    expect_err "memo: disabled (--no-memo)"
    ;;
  usage_unknown_option)
    run 2 "$spec_dir/paper_campaign.json" --frobnicate
    expect_err 'unknown option "--frobnicate"'
    ;;
  missing_spec_file)
    run 1 "$tmp/no_such_spec.json"
    expect_err "no_such_spec.json"
    ;;
  bad_spec_position)
    # A spec whose only problem sits at line 3: the error must carry
    # the file:line:col position of the offending value.
    cat >"$tmp/bad_spec.json" <<'EOF'
{
  "traces": [
    {"generator": {"kind": "perlin"}}],
  "platforms": ["ultraportable-15w"],
  "pdns": "all"
}
EOF
    run 1 "$tmp/bad_spec.json"
    expect_err "bad_spec.json:3:"
    expect_err 'unknown generator kind "perlin"'
    ;;
  list_traces)
    run 0 --list-traces
    expect_out "day-in-the-life"
    expect_out "spec reference"
    expect_out "Battery profiles"
    ;;
  list_presets)
    run 0 --list-presets
    expect_out "ultraportable-15w"
    expect_out "fanless-tablet-4w"
    ;;
  dry_run_provenance)
    run 0 "$spec_dir/sensitivity_campaign.json" --dry-run
    expect_err 'file "'
    expect_err "time-scale(x1.5)"
    expect_err "ar-perturb(0.1, seed 7)"
    expect_err "repeat(3) | truncate(2500 ms)"
    expect_err 'concat(generator "bursty-compute" (seed 7))'
    ;;
  version)
    # Both CLIs stamp the same version + git revision, and the
    # PDNSPOT_GIT_REV environment variable overrides the baked-in
    # revision (the CI convention for bench JSON).
    run 0 --version
    expect_out "pdnspot_campaign "
    expect_out "(git "
    PDNSPOT_GIT_REV=cafef00d "$tool" --version \
        >"$tmp/out" 2>"$tmp/err" || fail "--version failed"
    expect_out "(git cafef00d)"
    if [ -n "$bench_diff" ]; then
        "$bench_diff" --version >"$tmp/out" 2>"$tmp/err" \
            || fail "bench_diff --version failed"
        expect_out "bench_diff "
        expect_out "(git "
    fi
    ;;
  report_unwritable)
    # Exporter paths are opened before the campaign runs, so a bad
    # path fails fast with the path in the message.
    run 1 "$spec_dir/paper_campaign.json" -o "$tmp/c.csv" \
        --report "$tmp/no_such_dir/r.json"
    expect_err 'cannot open report file'
    expect_err "$tmp/no_such_dir/r.json"
    ;;
  trace_events_unwritable)
    run 1 "$spec_dir/paper_campaign.json" -o "$tmp/c.csv" \
        --trace-events "$tmp/no_such_dir/t.json"
    expect_err 'cannot open trace-events file'
    expect_err "$tmp/no_such_dir/t.json"
    ;;
  progress_off_tty)
    # stderr is a file here, not a TTY: the heartbeat must stay
    # silent (no cells/s lines, no carriage-return rewrites).
    run 0 "$spec_dir/paper_campaign.json" -o "$tmp/c.csv" --progress
    if grep -q "cells/s" "$tmp/err"; then
        fail "--progress wrote a heartbeat to a non-TTY stderr"
    fi
    if tr -d '\r' <"$tmp/err" | cmp -s - "$tmp/err"; then :; else
        fail "--progress wrote carriage returns to a non-TTY stderr"
    fi
    ;;
  report_and_trace_outputs)
    # The exporters produce well-formed documents and do not perturb
    # the campaign CSV (byte-identical to an uninstrumented run).
    run 0 "$spec_dir/paper_campaign.json" -o "$tmp/a.csv" \
        --threads 2 --report "$tmp/r.json" \
        --trace-events "$tmp/t.json"
    grep -qF '"schema": "pdnspot-report-1"' "$tmp/r.json" \
        || fail "report lacks the pdnspot-report-1 schema stamp"
    grep -qF '"content_hash": "fnv1a64:' "$tmp/r.json" \
        || fail "report lacks the spec content hash"
    begins=$(grep -c '"ph": "B"' "$tmp/t.json")
    ends=$(grep -c '"ph": "E"' "$tmp/t.json")
    if [ "$begins" -eq 0 ] || [ "$begins" -ne "$ends" ]; then
        fail "trace events unbalanced: $begins B vs $ends E"
    fi
    run 0 "$spec_dir/paper_campaign.json" -o "$tmp/b.csv"
    cmp -s "$tmp/a.csv" "$tmp/b.csv" \
        || fail "observability flags perturbed the campaign CSV"
    ;;
  probe_out_waveforms)
    # --probe-out exports one waveform CSV per probed cell plus the
    # Perfetto counter-track document, byte-identical at 1 and 8
    # threads, without perturbing the campaign CSV.
    run 0 "$spec_dir/paper_campaign.json" -o "$tmp/a.csv" \
        --threads 1 --probe-out "$tmp/probes1"
    expect_err "wrote 4 waveforms"
    run 0 "$spec_dir/paper_campaign.json" -o "$tmp/b.csv" \
        --threads 8 --probe-out "$tmp/probes8"
    ls "$tmp/probes1"/*.csv >/dev/null 2>&1 \
        || fail "--probe-out produced no waveform CSVs"
    [ -s "$tmp/probes1/counters.json" ] \
        || fail "--probe-out produced no counters.json"
    grep -qF '"ph": "C"' "$tmp/probes1/counters.json" \
        || fail "counters.json carries no counter events"
    diff -r "$tmp/probes1" "$tmp/probes8" >/dev/null \
        || fail "probe outputs differ between 1 and 8 threads"
    run 0 "$spec_dir/paper_campaign.json" -o "$tmp/c.csv"
    cmp -s "$tmp/a.csv" "$tmp/c.csv" \
        || fail "--probe-out perturbed the campaign CSV"
    ;;
  probe_out_no_probes)
    # A spec with no probes section gets a warning, not an error.
    run 0 "$spec_dir/sensitivity_campaign.json" -o "$tmp/c.csv" \
        --probe-out "$tmp/probes"
    expect_err "binds no probes"
    ;;
  probe_out_unwritable)
    touch "$tmp/blocker"
    run 1 "$spec_dir/paper_campaign.json" -o "$tmp/c.csv" \
        --probe-out "$tmp/blocker/probes"
    expect_err "cannot create probe directory"
    ;;
  quiet_log_level)
    run 0 "$spec_dir/paper_campaign.json" -o "$tmp/c.csv"
    expect_err "info: wrote"
    run 0 "$spec_dir/paper_campaign.json" -o "$tmp/c.csv" --quiet
    if grep -q "info:" "$tmp/err"; then
        fail "--quiet let an info-level message through"
    fi
    run 0 "$spec_dir/paper_campaign.json" -o "$tmp/c.csv" \
        --log-level silent
    if [ -s "$tmp/err" ]; then
        fail "--log-level silent left stderr non-empty"
    fi
    run 2 "$spec_dir/paper_campaign.json" --log-level verbose
    expect_err "--log-level must be info, warn or silent"
    ;;
  fleet_usage)
    run 2
    expect_err "missing spec file"
    expect_err "usage: pdnspot_fleet"
    ;;
  fleet_usage_bad_option)
    run 2 "$spec_dir/fleet_study.json" --frobnicate
    expect_err 'unknown option "--frobnicate"'
    ;;
  fleet_bad_spec_position)
    # A fleet spec whose only problem sits at line 3: the error must
    # carry the file:line:col position of the offending value.
    cat >"$tmp/bad_fleet.json" <<'EOF'
{
  "cohorts": [
    {"name": "a", "count": 5, "platform": "nope",
     "trace": {"library": "bursty-compute", "seed": 42}}]
}
EOF
    run 1 "$tmp/bad_fleet.json"
    expect_err "bad_fleet.json:3:"
    expect_err 'unknown platform preset "nope"'
    ;;
  fleet_summary)
    # The example study end to end: population + cohort shape lines,
    # death counts, the distribution quantiles, and the promised
    # aggregate-CSV header.
    run 0 "$spec_dir/fleet_study.json" --summary -o "$tmp/f.csv"
    expect_err "fleet: 4000 sessions in 2 cohorts"
    expect_err 'cohort "tablets"'
    expect_err "deaths: "
    expect_err "battery life (h): "
    expect_err "time to empty (h): "
    head -n 1 "$tmp/f.csv" | grep -qF \
        "bucket,t_s,sessions_alive,supply_power_w,energy_j,mode_switches,deaths,storm" \
        || fail "aggregate CSV header drifted"
    ;;
  launch_usage)
    run 2
    expect_err "missing spec file"
    expect_err "usage: pdnspot_launch"
    run 2 "$spec_dir/measured_campaign.json" --shards 0
    expect_err "--shards must be a positive integer"
    run 2 "$spec_dir/measured_campaign.json" --timeout nan
    expect_err "--timeout must be a non-negative number"
    run 2 "$spec_dir/measured_campaign.json" --frobnicate
    expect_err 'unknown option "--frobnicate"'
    ;;
  launch_dry_run)
    run 0 "$spec_dir/measured_campaign.json" -n 3 --dry-run
    expect_err "cells over 3 shards"
    expect_err "shard 1/3: cells [0, "
    expect_err "shard 3/3: cells ["
    ;;
  launch_retry_after_kill)
    # Shard 1's first attempt is killed by the injection hook; the
    # launcher must retry it and still concatenate a CSV
    # byte-identical to a direct unsharded campaign run.
    campaign="$bench_diff"
    "$campaign" "$spec_dir/measured_campaign.json" \
        -o "$tmp/direct.csv" --quiet \
        || fail "direct campaign run failed"
    PDNSPOT_LAUNCH_INJECT=kill:1:1 \
        run 0 "$spec_dir/measured_campaign.json" -n 2 \
        --backoff-ms 0 -o "$tmp/sharded.csv" \
        --campaign-bin "$campaign"
    expect_err "shard 1/2 attempt 1/3 failed (killed by signal 9)"
    expect_err "retrying in 0 ms"
    cmp -s "$tmp/direct.csv" "$tmp/sharded.csv" \
        || fail "retried launch CSV differs from the direct run"
    ;;
  launch_exhausted_retries)
    # More injected failures than retries: the launcher must exit
    # non-zero naming the shard that gave up and its log.
    campaign="$bench_diff"
    PDNSPOT_LAUNCH_INJECT=fail:2:9 \
        run 1 "$spec_dir/measured_campaign.json" -n 2 --jobs 2 \
        --retries 1 --backoff-ms 0 -o "$tmp/never.csv" \
        --campaign-bin "$campaign" --work-dir "$tmp/work"
    expect_err "shard 2/2 failed after 2 attempts"
    expect_err "shard_2.log"
    ;;
  query_usage)
    run 2
    expect_err "missing archive directory"
    expect_err "usage: pdnspot_query"
    run 2 "$tmp/arch" frobnicate
    expect_err 'unknown command "frobnicate"'
    run 2 "$tmp/arch" list --where "battery_life_h"
    expect_err "--where expects <metric><op><value>"
    run 2 "$tmp/arch" list --where "bogus>1"
    expect_err 'unknown --where metric "bogus"'
    ;;
  query_hash)
    run 0 hash "$spec_dir/measured_campaign.json"
    expect_out "fnv1a64:"
    run 1 hash "$tmp/no_such_file.json"
    expect_err "no_such_file.json"
    ;;
  query_roundtrip)
    # The archive round trip: a reported campaign run ingests, is
    # findable by its spec content hash, and its payload reads back
    # byte-identical; rebuild-index regenerates the same answers.
    campaign="$bench_diff"
    "$campaign" "$spec_dir/measured_campaign.json" \
        -o "$tmp/run.csv" --report "$tmp/run.report.json" --quiet \
        || fail "reported campaign run failed"
    run 0 "$tmp/arch" ingest "$tmp/run.report.json" \
        --csv-file "$tmp/run.csv"
    id="$(cat "$tmp/out")"
    [ -n "$id" ] || fail "ingest printed no run id"
    "$tool" hash "$spec_dir/measured_campaign.json" \
        >"$tmp/out" 2>"$tmp/err" || fail "hash failed"
    hash="$(cat "$tmp/out")"
    run 0 "$tmp/arch" list --spec-hash "$hash" --format csv
    expect_out "$id"
    expect_out "pdnspot_campaign"
    run 0 "$tmp/arch" csv --spec-hash "$hash" -o "$tmp/back.csv"
    cmp -s "$tmp/run.csv" "$tmp/back.csv" \
        || fail "archived payload differs from the original CSV"
    run 0 "$tmp/arch" show "$id"
    expect_out '"schema": "pdnspot-report-1"'
    rm "$tmp/arch/index.jsonl"
    run 0 "$tmp/arch" rebuild-index
    run 0 "$tmp/arch" csv "$id" -o "$tmp/back2.csv"
    cmp -s "$tmp/run.csv" "$tmp/back2.csv" \
        || fail "rebuilt index lost the payload association"
    run 0 "$tmp/arch" summaries --where "battery_life_h>0"
    expect_out "FlexWatts"
    run 1 "$tmp/arch" show ffffnotanid
    expect_err 'no archived run matches id prefix'
    ;;
  *)
    echo "cli_smoke: unknown case \"$case_name\"" >&2
    exit 1
    ;;
esac

echo "cli_smoke $case_name: ok"
