#!/usr/bin/env bash
# Script-driven smoke tests for the pdnspot_campaign CLI, registered
# one case per CTest test (tests/CMakeLists.txt). Each case asserts
# the exit code and the relevant stdout/stderr fragment for a CLI
# surface the GoogleTest suites cannot reach: argv parsing, usage
# errors, spec-error reporting, the listing commands, and --dry-run
# transform provenance.
#
# Usage: cli_smoke.sh <pdnspot_campaign-binary> <case> <spec-dir>

set -u

tool="$1"
case_name="$2"
spec_dir="$3"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail()
{
    echo "cli_smoke $case_name: $1" >&2
    echo "--- stdout ---" >&2
    cat "$tmp/out" >&2
    echo "--- stderr ---" >&2
    cat "$tmp/err" >&2
    exit 1
}

# run <expected-exit> <args...>: invoke the tool, capture both
# streams, and assert the exit code.
run()
{
    local expected="$1"
    shift
    local status=0
    "$tool" "$@" >"$tmp/out" 2>"$tmp/err" || status=$?
    if [ "$status" -ne "$expected" ]; then
        fail "expected exit $expected, got $status"
    fi
}

expect_err() { grep -qF -- "$1" "$tmp/err" || fail "stderr lacks \"$1\""; }
expect_out() { grep -qF -- "$1" "$tmp/out" || fail "stdout lacks \"$1\""; }

case "$case_name" in
  usage_no_spec)
    run 2
    expect_err "missing spec file"
    expect_err "usage: pdnspot_campaign"
    ;;
  usage_bad_shard)
    run 2 "$spec_dir/paper_campaign.json" --shard 0/2
    expect_err "--shard must be k/n with 1 <= k <= n"
    run 2 "$spec_dir/paper_campaign.json" --shard 3/2
    expect_err "--shard must be k/n with 1 <= k <= n"
    run 2 "$spec_dir/paper_campaign.json" --shard -1/2
    expect_err "--shard must be k/n with 1 <= k <= n"
    ;;
  usage_bad_threads)
    run 2 "$spec_dir/paper_campaign.json" --threads zero
    expect_err "--threads must be a positive integer"
    run 2 "$spec_dir/paper_campaign.json" --threads 0
    expect_err "--threads must be a positive integer"
    ;;
  usage_bad_battery_wh)
    # Locale-proof parse: "3,5" is 3.5 under a comma-decimal locale
    # and std::stod would have accepted the "3" prefix of it; the
    # std::from_chars parse must reject it whole, along with
    # non-positive and non-finite capacities.
    run 2 "$spec_dir/paper_campaign.json" --battery-wh 3,5
    expect_err "--battery-wh must be a positive number"
    run 2 "$spec_dir/paper_campaign.json" --battery-wh -5
    expect_err "--battery-wh must be a positive number"
    run 2 "$spec_dir/paper_campaign.json" --battery-wh 0
    expect_err "--battery-wh must be a positive number"
    run 2 "$spec_dir/paper_campaign.json" --battery-wh nan
    expect_err "--battery-wh must be a positive number"
    run 2 "$spec_dir/paper_campaign.json" --battery-wh inf
    expect_err "--battery-wh must be a positive number"
    run 2 "$spec_dir/paper_campaign.json" --battery-wh 50J
    expect_err "--battery-wh must be a positive number"
    ;;
  summary_memo_stats)
    # --summary reports the memo counters harvested from the run;
    # --no-memo switches the line rather than printing zeros.
    run 0 "$spec_dir/paper_campaign.json" --summary -o "$tmp/c.csv"
    expect_err "memo: "
    expect_err " probes, "
    expect_err "hit rate"
    run 0 "$spec_dir/paper_campaign.json" --summary --no-memo \
        -o "$tmp/c.csv"
    expect_err "memo: disabled (--no-memo)"
    ;;
  usage_unknown_option)
    run 2 "$spec_dir/paper_campaign.json" --frobnicate
    expect_err 'unknown option "--frobnicate"'
    ;;
  missing_spec_file)
    run 1 "$tmp/no_such_spec.json"
    expect_err "no_such_spec.json"
    ;;
  bad_spec_position)
    # A spec whose only problem sits at line 3: the error must carry
    # the file:line:col position of the offending value.
    cat >"$tmp/bad_spec.json" <<'EOF'
{
  "traces": [
    {"generator": {"kind": "perlin"}}],
  "platforms": ["ultraportable-15w"],
  "pdns": "all"
}
EOF
    run 1 "$tmp/bad_spec.json"
    expect_err "bad_spec.json:3:"
    expect_err 'unknown generator kind "perlin"'
    ;;
  list_traces)
    run 0 --list-traces
    expect_out "day-in-the-life"
    expect_out "spec reference"
    expect_out "Battery profiles"
    ;;
  list_presets)
    run 0 --list-presets
    expect_out "ultraportable-15w"
    expect_out "fanless-tablet-4w"
    ;;
  dry_run_provenance)
    run 0 "$spec_dir/sensitivity_campaign.json" --dry-run
    expect_err 'file "'
    expect_err "time-scale(x1.5)"
    expect_err "ar-perturb(0.1, seed 7)"
    expect_err "repeat(3) | truncate(2500 ms)"
    expect_err 'concat(generator "bursty-compute" (seed 7))'
    ;;
  *)
    echo "cli_smoke: unknown case \"$case_name\"" >&2
    exit 1
    ;;
esac

echo "cli_smoke $case_name: ok"
