/**
 * @file
 * Unit tests for the performance models: frequency sensitivity
 * (Fig. 2a), the linearized perf model, the budget breakdown
 * (Fig. 2b), and the exact budget solver.
 */

#include <gtest/gtest.h>

#include "pdnspot/experiments.hh"
#include "pdnspot/platform.hh"
#include "perf/budget_breakdown.hh"
#include "perf/budget_solver.hh"
#include "perf/freq_sensitivity.hh"
#include "perf/perf_model.hh"
#include "workload/spec_cpu2006.hh"

namespace pdnspot
{
namespace
{

class PerfTest : public ::testing::Test
{
  protected:
    PerfTest() : platform() {}

    Platform platform;
};

TEST_F(PerfTest, Fig2aSensitivityAnchors)
{
    // Sec. 3.3: ~9 mW of supply power buys +1% core clock at 4 W TDP;
    // at 50 W the figure rises to hundreds of mW (log-scale Fig. 2a).
    const FreqSensitivity &s = platform.perfModel().sensitivity();
    const PdnModel &ivr = platform.pdn(PdnKind::IVR);

    double at_4w = inMilliwatts(s.supplyPerPercent(
        watts(4.0), WorkloadType::MultiThread, ivr));
    EXPECT_GT(at_4w, 5.0);
    EXPECT_LT(at_4w, 14.0);

    double at_50w = inMilliwatts(s.supplyPerPercent(
        watts(50.0), WorkloadType::MultiThread, ivr));
    EXPECT_GT(at_50w, 300.0);
    EXPECT_LT(at_50w, 1100.0);
}

TEST_F(PerfTest, Fig2aSensitivityMonotoneInTdp)
{
    const FreqSensitivity &s = platform.perfModel().sensitivity();
    double prev = 0.0;
    for (double tdp : evaluationTdpsW) {
        double v = inMilliwatts(s.nominalPerPercent(
            watts(tdp), WorkloadType::MultiThread));
        EXPECT_GT(v, prev) << tdp;
        prev = v;
    }
}

TEST_F(PerfTest, GraphicsSensitivityCheaperThanCpuAtLowTdp)
{
    // Fig. 2a: the GFX curve sits below the CPU curve.
    const FreqSensitivity &s = platform.perfModel().sensitivity();
    for (double tdp : {4.0, 18.0, 50.0}) {
        double cpu = inMilliwatts(s.nominalPerPercent(
            watts(tdp), WorkloadType::MultiThread));
        double gfx = inMilliwatts(s.nominalPerPercent(
            watts(tdp), WorkloadType::Graphics));
        EXPECT_LT(gfx, cpu) << tdp;
    }
}

TEST_F(PerfTest, PaperWorkedExample)
{
    // Sec. 3.3: at 4 W, a 5-point ETEE advantage (~250 mW) converts
    // to roughly +28% clock for a fully-scalable workload.
    Workload ideal;
    ideal.name = "ideal";
    ideal.type = WorkloadType::MultiThread;
    ideal.ar = 0.56;
    ideal.scalability = 1.0;

    PerfResult r = platform.perfModel().relativePerformance(
        platform.pdn(PdnKind::LDO), platform.pdn(PdnKind::IVR),
        watts(4.0), ideal);
    EXPECT_GT(r.freqGainPercent, 18.0);
    EXPECT_LT(r.freqGainPercent, 42.0);
    EXPECT_NEAR(r.relativePerf, 1.0 + r.freqGainPercent / 100.0,
                1e-12);
}

TEST_F(PerfTest, ScalabilityGatesTheGain)
{
    Workload poor = specCpu2006().front();  // 433.milc
    Workload good = specCpu2006().back();   // 416.gamess
    auto r_poor = platform.perfModel().relativePerformance(
        platform.pdn(PdnKind::LDO), platform.pdn(PdnKind::IVR),
        watts(4.0), poor);
    auto r_good = platform.perfModel().relativePerformance(
        platform.pdn(PdnKind::LDO), platform.pdn(PdnKind::IVR),
        watts(4.0), good);
    EXPECT_GT(r_good.relativePerf, r_poor.relativePerf);
}

TEST_F(PerfTest, SelfComparisonIsUnity)
{
    Workload w = specCpu2006()[10];
    auto r = platform.perfModel().relativePerformance(
        platform.pdn(PdnKind::IVR), platform.pdn(PdnKind::IVR),
        watts(18.0), w);
    EXPECT_NEAR(r.relativePerf, 1.0, 1e-12);
    EXPECT_NEAR(inWatts(r.savedSupplyPower), 0.0, 1e-12);
}

TEST_F(PerfTest, Fig2bBreakdownShapes)
{
    // Fig. 2b: CPU share of the budget grows from ~13% at 4 W toward
    // ~50% at 50 W; PDN loss is substantial everywhere; shares sum
    // to ~1.
    std::array<const PdnModel *, 3> pdns = {
        &platform.pdn(PdnKind::IVR), &platform.pdn(PdnKind::MBVR),
        &platform.pdn(PdnKind::LDO)};

    BudgetShares low = budgetBreakdown(platform.operatingPoints(),
                                       pdns, watts(4.0),
                                       WorkloadType::MultiThread);
    BudgetShares high = budgetBreakdown(platform.operatingPoints(),
                                        pdns, watts(50.0),
                                        WorkloadType::MultiThread);

    EXPECT_LT(low.cpu, 0.25);
    EXPECT_GT(high.cpu, 0.45);
    EXPECT_GT(low.pdnLoss, 0.15);
    EXPECT_GT(high.pdnLoss, 0.2);
    EXPECT_GT(low.saIo, high.saIo);
    EXPECT_NEAR(low.saIo + low.cpu + low.llc + low.gfx + low.pdnLoss,
                1.0, 1e-9);
    EXPECT_NEAR(high.saIo + high.cpu + high.llc + high.gfx +
                    high.pdnLoss,
                1.0, 1e-9);
}

TEST_F(PerfTest, Fig2bPicksWorstPdn)
{
    std::array<const PdnModel *, 3> pdns = {
        &platform.pdn(PdnKind::IVR), &platform.pdn(PdnKind::MBVR),
        &platform.pdn(PdnKind::LDO)};
    // At 4 W the worst (highest-loss) PDN is IVR; at 50 W it is MBVR.
    EXPECT_EQ(budgetBreakdown(platform.operatingPoints(), pdns,
                              watts(4.0), WorkloadType::MultiThread)
                  .worstPdn,
              "IVR");
    EXPECT_EQ(budgetBreakdown(platform.operatingPoints(), pdns,
                              watts(50.0), WorkloadType::MultiThread)
                  .worstPdn,
              "MBVR");
}

TEST_F(PerfTest, BudgetSolverFindsTdpBoundedClock)
{
    BudgetSolver solver(platform.operatingPoints());
    Workload w = powerVirus(WorkloadType::MultiThread);
    w.ar = 0.56;

    auto sol = solver.solve(platform.pdn(PdnKind::IVR), watts(10.0),
                            w);
    if (!sol.clampedAtFmax) {
        EXPECT_NEAR(inWatts(sol.inputPower), 10.0, 0.05);
    }
    EXPECT_GT(sol.freqMultiplier, 0.25);
}

TEST_F(PerfTest, BudgetSolverRanksPdnsLikeEtee)
{
    // A more efficient PDN sustains a higher clock at the same TDP.
    BudgetSolver solver(platform.operatingPoints());
    Workload w;
    w.type = WorkloadType::MultiThread;
    w.ar = 0.56;
    w.scalability = 1.0;

    auto ivr = solver.solve(platform.pdn(PdnKind::IVR), watts(6.0), w);
    auto ldo = solver.solve(platform.pdn(PdnKind::LDO), watts(6.0), w);
    EXPECT_GT(ldo.freqMultiplier, ivr.freqMultiplier);
}

TEST_F(PerfTest, BudgetSolverReportsFmaxClamp)
{
    // With a huge budget relative to the baseline the solver clamps
    // at the V-f ceiling.
    BudgetSolver solver(platform.operatingPoints());
    Workload w;
    w.type = WorkloadType::MultiThread;
    w.ar = 0.56;
    auto sol = solver.solve(platform.pdn(PdnKind::LDO), watts(50.0),
                            w);
    // The 50 W baseline already runs at 4 GHz.
    EXPECT_TRUE(sol.clampedAtFmax);
    EXPECT_NEAR(inGigahertz(sol.frequency), 4.0, 1e-9);
}

} // anonymous namespace
} // namespace pdnspot
