/**
 * @file
 * The indexed result archive (src/store/result_archive.hh): ingest
 * idempotence and crash-safe layout, index round trips, torn-line
 * tolerance, rebuildIndex() as the recovery path, shard-set
 * ordering, and the report view / trace-chain digests it is keyed
 * on.
 */

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "config/json.hh"
#include "obs/run_report.hh"
#include "store/result_archive.hh"

namespace pdnspot
{
namespace
{

namespace fs = std::filesystem;

/** Fresh temp directory per test, removed on teardown. */
class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _root = fs::temp_directory_path() /
                ("pdnspot_store_test_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
        fs::remove_all(_root);
    }

    void
    TearDown() override
    {
        fs::remove_all(_root);
    }

    std::string
    root() const
    {
        return _root.string();
    }

  private:
    fs::path _root;
};

/**
 * A minimal but schema-complete pdnspot-report-1 document — the
 * same member shape buildRunReport emits, small enough to vary per
 * test. `shard`/`count` set run.shard_index/shard_count.
 */
std::string
reportText(size_t shard, size_t count,
           const std::string &specHash = "fnv1a64:00000000000000aa",
           const std::string &trace = "day-in-the-life")
{
    return strprintf(
        R"json({
  "schema": "pdnspot-report-1",
  "tool": {"name": "pdnspot_campaign", "version": "0.1.0",
           "git_rev": "abc1234"},
  "host": "testhost",
  "wall_time_s": 0.25,
  "run": {"threads": 2, "shard_index": %zu, "shard_count": %zu,
          "first_cell": 0, "end_cell": 4, "rows": 4,
          "memo": true},
  "spec": {"path": "spec.json", "content_hash": "%s",
           "echo": {"platforms": ["fanless-tablet-4w",
                                  {"preset": "ultraportable-15w",
                                   "name": "tweaked"}]}},
  "traces": [{"name": "%s",
              "provenance": "library \"%s\" (seed 42)"}],
  "summaries": {
    "battery_wh": 50,
    "per_pdn": [
      {"pdn": "IVR", "cells": 2, "supply_energy_j": 3.5,
       "nominal_energy_j": 2.8, "mean_etee": 0.8,
       "mode_switches": 0, "mean_power_w": 1.25,
       "battery_life_h": 40.0},
      {"pdn": "FlexWatts", "cells": 2, "supply_energy_j": 3.0,
       "nominal_energy_j": 2.8, "mean_etee": 0.93,
       "mode_switches": 5, "mean_power_w": 1.0,
       "battery_life_h": 50.0}]}
})json",
        shard, count, specHash.c_str(), trace.c_str(),
        trace.c_str());
}

TEST_F(StoreTest, IngestAndReadBack)
{
    ResultArchive archive(root());
    std::string report = reportText(1, 1);
    std::string id = archive.ingest(report, "header\nrow\n");
    EXPECT_EQ(id, fnv1a64Hex(report));

    std::vector<ArchiveEntry> entries = archive.entries();
    ASSERT_EQ(entries.size(), 1u);
    const ArchiveEntry &e = entries[0];
    EXPECT_EQ(e.id, id);
    EXPECT_EQ(e.tool, "pdnspot_campaign");
    EXPECT_EQ(e.gitRev, "abc1234");
    EXPECT_EQ(e.specHash, "fnv1a64:00000000000000aa");
    EXPECT_EQ(e.threads, 2u);
    EXPECT_EQ(e.shardIndex, 1u);
    EXPECT_EQ(e.shardCount, 1u);
    EXPECT_EQ(e.rows, 4u);
    EXPECT_DOUBLE_EQ(e.wallSeconds, 0.25);
    ASSERT_EQ(e.traces.size(), 1u);
    EXPECT_EQ(e.traces[0], "day-in-the-life");
    // Platform names: preset strings verbatim, objects by "name".
    ASSERT_EQ(e.platforms.size(), 2u);
    EXPECT_EQ(e.platforms[0], "fanless-tablet-4w");
    EXPECT_EQ(e.platforms[1], "tweaked");
    ASSERT_EQ(e.summaries.size(), 2u);
    EXPECT_EQ(e.summaries[1].pdn, "FlexWatts");
    EXPECT_DOUBLE_EQ(e.summaries[1].batteryLifeHours, 50.0);
    EXPECT_EQ(e.summaries[1].modeSwitches, 5u);

    EXPECT_EQ(archive.readCsv(e), "header\nrow\n");
    EXPECT_EQ(archive.readReportText(id), report);
    EXPECT_EQ(archive.readReport(id)
                  .find("schema")
                  ->asString(),
              "pdnspot-report-1");
}

TEST_F(StoreTest, IngestIsIdempotent)
{
    ResultArchive archive(root());
    std::string report = reportText(1, 1);
    std::string id1 = archive.ingest(report, "csv-a\n");
    // Re-ingesting the same report — even claiming different CSV
    // bytes — changes nothing: the first payload association wins.
    std::string id2 = archive.ingest(report, "csv-b\n");
    EXPECT_EQ(id1, id2);
    std::vector<ArchiveEntry> entries = archive.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(archive.readCsv(entries[0]), "csv-a\n");
}

TEST_F(StoreTest, IdenticalPayloadsStoredOnce)
{
    ResultArchive archive(root());
    archive.ingest(reportText(1, 2), "same bytes\n");
    archive.ingest(reportText(2, 2), "same bytes\n");
    size_t payloads = 0;
    for (const auto &entry :
         fs::directory_iterator(root() + "/payloads"))
        payloads += entry.is_regular_file() ? 1 : 0;
    EXPECT_EQ(payloads, 1u);
    EXPECT_EQ(archive.entries().size(), 2u);
}

TEST_F(StoreTest, RejectsNonReportDocuments)
{
    ResultArchive archive(root());
    EXPECT_THROW(archive.ingest("{\"schema\": \"other-1\"}", ""),
                 ConfigError);
    EXPECT_THROW(archive.ingest("not json at all", ""),
                 ConfigError);
    EXPECT_TRUE(archive.entries().empty());
}

TEST_F(StoreTest, FindRunByPrefix)
{
    ResultArchive archive(root());
    std::string id = archive.ingest(reportText(1, 1), "x\n");
    ASSERT_GE(id.size(), 4u);
    std::optional<ArchiveEntry> hit =
        archive.findRun(id.substr(0, 4));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->id, id);
    EXPECT_FALSE(archive.findRun("zzzz").has_value());
}

TEST_F(StoreTest, TornIndexLinesAreSkipped)
{
    ResultArchive archive(root());
    std::string id = archive.ingest(reportText(1, 1), "x\n");
    {
        // Simulate an append cut off mid-write plus stray junk.
        std::ofstream index(archive.indexPath(),
                            std::ios::app | std::ios::binary);
        index << "{\"id\": \"torn-li";
    }
    std::vector<ArchiveEntry> entries = archive.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].id, id);
}

TEST_F(StoreTest, RebuildIndexRecoversEverything)
{
    ResultArchive archive(root());
    std::string idA = archive.ingest(reportText(1, 2), "a\n");
    std::string idB = archive.ingest(reportText(2, 2), "b\n");
    fs::remove(archive.indexPath());
    EXPECT_TRUE(archive.entries().empty());

    archive.rebuildIndex();
    std::vector<ArchiveEntry> entries = archive.entries();
    ASSERT_EQ(entries.size(), 2u);
    for (const ArchiveEntry &e : entries) {
        EXPECT_TRUE(e.id == idA || e.id == idB);
        // The payload association survives via the csv.ref
        // sidecar, not the (deleted) index.
        EXPECT_EQ(archive.readCsv(e),
                  e.id == idA ? "a\n" : "b\n");
    }
}

TEST_F(StoreTest, EntryJsonRoundTrip)
{
    ResultArchive archive(root());
    archive.ingest(reportText(2, 4), "payload\n");
    ArchiveEntry before = archive.entries()[0];
    std::optional<ArchiveEntry> after = ResultArchive::entryFromJson(
        ResultArchive::entryToJson(before));
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->id, before.id);
    EXPECT_EQ(after->specHash, before.specHash);
    EXPECT_EQ(after->traceChain, before.traceChain);
    EXPECT_EQ(after->shardIndex, 2u);
    EXPECT_EQ(after->shardCount, 4u);
    EXPECT_EQ(after->csvHash, before.csvHash);
    ASSERT_EQ(after->summaries.size(), before.summaries.size());
    EXPECT_DOUBLE_EQ(after->summaries[0].supplyEnergyJ,
                     before.summaries[0].supplyEnergyJ);
}

TEST_F(StoreTest, OrderShardSetSortsAndValidates)
{
    ResultArchive archive(root());
    // Ingest out of order; orderShardSet must sort 1..3.
    archive.ingest(reportText(3, 3), "c\n");
    archive.ingest(reportText(1, 3), "a\n");
    archive.ingest(reportText(2, 3), "b\n");
    std::vector<ArchiveEntry> ordered =
        orderShardSet(archive.entries());
    ASSERT_EQ(ordered.size(), 3u);
    EXPECT_EQ(ordered[0].shardIndex, 1u);
    EXPECT_EQ(ordered[1].shardIndex, 2u);
    EXPECT_EQ(ordered[2].shardIndex, 3u);

    // A missing shard is an error naming the gap, not silence.
    std::vector<ArchiveEntry> gappy = {ordered[0], ordered[2]};
    EXPECT_THROW(orderShardSet(gappy), ConfigError);
    // So is a duplicate shard index.
    std::vector<ArchiveEntry> doubled = {ordered[0], ordered[0],
                                         ordered[1], ordered[2]};
    EXPECT_THROW(orderShardSet(doubled), ConfigError);
    EXPECT_THROW(orderShardSet({}), ConfigError);
}

TEST(TraceChainHash, KeyedOnNamesAndProvenance)
{
    auto view = [](const std::string &text) {
        return viewRunReport(parseJson(text, "test"));
    };
    std::string a = reportText(1, 2);
    std::string b = reportText(2, 2); // same traces, other shard
    std::string c = reportText(1, 2, "fnv1a64:00000000000000aa",
                               "bursty-compute");
    EXPECT_EQ(traceChainHash(view(a)), traceChainHash(view(b)));
    EXPECT_NE(traceChainHash(view(a)), traceChainHash(view(c)));
}

TEST(RunReportView, RejectsWrongSchema)
{
    EXPECT_THROW(
        viewRunReport(parseJson("{\"schema\": \"bogus\"}", "t")),
        ConfigError);
    EXPECT_THROW(viewRunReport(parseJson("[1, 2]", "t")),
                 ConfigError);
}

} // namespace
} // namespace pdnspot
