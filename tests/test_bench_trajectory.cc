/**
 * @file
 * Benchmark-trajectory schema tests: the --json document the bench
 * binaries emit (write -> parse round trip, required members, unit
 * table), the unit-derived regression direction, and the bench_diff
 * verdict ladder (improve / flat / small / big regression / missing).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/trajectory.hh"
#include "common/logging.hh"
#include "config/json.hh"

namespace pdnspot
{
namespace
{

std::vector<BenchRecord>
sampleRecords()
{
    return {
        {"campaignThroughput/threads:1", "cells_per_sec", 65000.0,
         "cells/s", "abc1234", 1},
        {"campaignThroughput/threads:1", "ns_per_phase", 17.5,
         "ns/phase", "abc1234", 1},
        {"campaignMemo/memo:1", "memo_hit_rate", 0.74, "ratio",
         "abc1234", 1},
        {"sweepParallel/threads:8", "real_time", 0.85, "ms",
         "abc1234", 8},
    };
}

TEST(BenchTrajectoryTest, WriteParseRoundTrip)
{
    std::vector<BenchRecord> records = sampleRecords();
    std::string text = writeBenchJson(records);
    EXPECT_EQ(parseBenchJson(parseJson(text, "round-trip")),
              records);
}

TEST(BenchTrajectoryTest, DocumentCarriesRequiredMembers)
{
    // The schema contract scripts/bench.sh and CI artifacts rely on:
    // a top-level schema marker and the six per-record members.
    JsonValue doc =
        parseJson(writeBenchJson(sampleRecords()), "doc");
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->asString(), benchSchemaVersion);
    const JsonValue *records = doc.find("records");
    ASSERT_NE(records, nullptr);
    ASSERT_EQ(records->items().size(), sampleRecords().size());
    for (const JsonValue &record : records->items()) {
        for (const char *member :
             {"benchmark", "metric", "value", "unit", "git_rev",
              "threads"})
            EXPECT_NE(record.find(member), nullptr)
                << "record lacks \"" << member << "\"";
    }
}

TEST(BenchTrajectoryTest, ParseRejectsBadDocuments)
{
    auto parse = [](const std::string &text) {
        return parseBenchJson(parseJson(text, "bad-doc"));
    };
    // Wrong schema marker.
    EXPECT_THROW(
        parse("{\"schema\": \"pdnspot-bench-0\", \"records\": []}"),
        ConfigError);
    // Missing members: no records, then a record with no value.
    EXPECT_THROW(parse("{\"schema\": \"pdnspot-bench-1\"}"),
                 ConfigError);
    EXPECT_THROW(
        parse("{\"schema\": \"pdnspot-bench-1\", \"records\": "
              "[{\"benchmark\": \"b\", \"metric\": \"m\", "
              "\"unit\": \"count\", \"git_rev\": \"x\", "
              "\"threads\": 1}]}"),
        ConfigError);
}

TEST(BenchTrajectoryTest, MetricUnitTable)
{
    EXPECT_EQ(benchMetricUnit("cells_per_sec"), "cells/s");
    EXPECT_EQ(benchMetricUnit("points_per_sec"), "points/s");
    EXPECT_EQ(benchMetricUnit("sessions_per_sec"), "sessions/s");
    EXPECT_EQ(benchMetricUnit("ns_per_phase"), "ns/phase");
    EXPECT_EQ(benchMetricUnit("ns_per_session_bucket"),
              "ns/session");
    EXPECT_EQ(benchMetricUnit("memo_hit_rate"), "ratio");
    EXPECT_EQ(benchMetricUnit("anything_else"), "count");
}

TEST(BenchTrajectoryTest, DirectionFollowsUnit)
{
    for (const char *unit : {"ns", "us", "ms", "s", "ns/phase"})
        EXPECT_EQ(directionForUnit(unit),
                  MetricDirection::LowerIsBetter)
            << unit;
    for (const char *unit : {"cells/s", "points/s", "ratio", "count"})
        EXPECT_EQ(directionForUnit(unit),
                  MetricDirection::HigherIsBetter)
            << unit;
}

BenchRecord
rate(const std::string &benchmark, double value)
{
    return {benchmark, "cells_per_sec", value, "cells/s", "r", 1};
}

TEST(BenchTrajectoryTest, DiffVerdictLadder)
{
    std::vector<BenchRecord> oldRecords = {
        rate("improved", 100.0), rate("flat", 100.0),
        rate("small", 100.0),    rate("big", 100.0),
        rate("gone", 100.0)};
    std::vector<BenchRecord> newRecords = {
        rate("improved", 120.0), rate("flat", 99.0),
        rate("small", 90.0),     rate("big", 70.0),
        rate("fresh-baseline", 50.0)};

    std::vector<BenchDelta> deltas =
        diffBenchRecords(oldRecords, newRecords, 5.0, 20.0);
    ASSERT_EQ(deltas.size(), oldRecords.size());
    EXPECT_EQ(deltas[0].verdict, BenchVerdict::Improved);
    EXPECT_EQ(deltas[1].verdict, BenchVerdict::Flat);
    EXPECT_EQ(deltas[2].verdict, BenchVerdict::SmallRegression);
    EXPECT_EQ(deltas[3].verdict, BenchVerdict::BigRegression);
    EXPECT_EQ(deltas[4].verdict, BenchVerdict::Missing);

    // A 30% rate drop is a 30% regression, reported as such.
    EXPECT_NEAR(deltas[3].regressionPct, 30.0, 1e-9);
    // Metrics only in the new snapshot are baselines, not deltas.
    for (const BenchDelta &d : deltas)
        EXPECT_NE(d.benchmark, "fresh-baseline");
}

TEST(BenchTrajectoryTest, DiffInvertsForTimeUnits)
{
    // ns/phase grows -> slower -> regression; shrinks -> improved.
    BenchRecord oldNs{"bench", "ns_per_phase", 20.0, "ns/phase", "r",
                      1};
    BenchRecord slower = oldNs, faster = oldNs;
    slower.value = 26.0; // +30%
    faster.value = 14.0; // -30%

    std::vector<BenchDelta> up =
        diffBenchRecords({oldNs}, {slower}, 5.0, 20.0);
    ASSERT_EQ(up.size(), 1u);
    EXPECT_EQ(up[0].verdict, BenchVerdict::BigRegression);
    EXPECT_NEAR(up[0].regressionPct, 30.0, 1e-9);

    std::vector<BenchDelta> down =
        diffBenchRecords({oldNs}, {faster}, 5.0, 20.0);
    ASSERT_EQ(down.size(), 1u);
    EXPECT_EQ(down[0].verdict, BenchVerdict::Improved);
}

TEST(BenchTrajectoryTest, DiffUsesCanonicalUnitForLegacyRecords)
{
    // Snapshots written before ns_per_session_bucket entered the
    // unit table stored it as "count" (HigherIsBetter); the diff
    // must still judge it by its canonical time-per-item direction,
    // so a big drop is an improvement, not a failed gate.
    BenchRecord old{"fleet", "ns_per_session_bucket", 74.0, "count",
                    "r", 1};
    BenchRecord faster = old, slower = old;
    faster.value = 49.0; // -33.8%: sped up
    slower.value = 96.2; // +30%: slowed down

    std::vector<BenchDelta> down =
        diffBenchRecords({old}, {faster}, 5.0, 20.0);
    ASSERT_EQ(down.size(), 1u);
    EXPECT_EQ(down[0].verdict, BenchVerdict::Improved);

    std::vector<BenchDelta> up =
        diffBenchRecords({old}, {slower}, 5.0, 20.0);
    ASSERT_EQ(up.size(), 1u);
    EXPECT_EQ(up[0].verdict, BenchVerdict::BigRegression);
    EXPECT_NEAR(up[0].regressionPct, 30.0, 1e-9);

    // A metric the table has never named keeps its stored unit's
    // direction: "count" shrinking is a regression.
    BenchRecord unknown{"b", "widgets_seen", 100.0, "count", "r", 1};
    BenchRecord fewer = unknown;
    fewer.value = 70.0;
    std::vector<BenchDelta> d =
        diffBenchRecords({unknown}, {fewer}, 5.0, 20.0);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].verdict, BenchVerdict::BigRegression);
}

} // anonymous namespace
} // namespace pdnspot
