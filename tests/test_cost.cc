/**
 * @file
 * Unit tests for the BOM-cost and board-area models (Fig. 8d/8e).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "cost/board_budget.hh"
#include "cost/vr_cost_model.hh"
#include "pdnspot/experiments.hh"
#include "pdnspot/platform.hh"

namespace pdnspot
{
namespace
{

TEST(VrCostModelTest, MonotoneInIccmax)
{
    VrCostModel m;
    double prev_cost = 0.0;
    double prev_area = 0.0;
    for (double i : {0.5, 1.0, 3.0, 10.0, 30.0, 80.0}) {
        double c = m.railCost(amps(i));
        double a = inSquareMillimetres(m.railArea(amps(i)));
        EXPECT_GT(c, prev_cost) << i;
        EXPECT_GT(a, prev_area) << i;
        prev_cost = c;
        prev_area = a;
    }
}

TEST(VrCostModelTest, ZeroCurrentIsFree)
{
    VrCostModel m;
    EXPECT_DOUBLE_EQ(m.railCost(amps(0.0)), 0.0);
    EXPECT_DOUBLE_EQ(inSquareMillimetres(m.railArea(amps(0.0))), 0.0);
    EXPECT_THROW(m.railCost(amps(-1.0)), ConfigError);
}

TEST(VrCostModelTest, CostSuperlinearAreaSublinear)
{
    VrCostModel m;
    // Cost: doubling current more than doubles the variable cost.
    double c10 = m.railCost(amps(10.0)) - m.params().costBaseUsd;
    double c20 = m.railCost(amps(20.0)) - m.params().costBaseUsd;
    EXPECT_GT(c20, 2.0 * c10);
    // Area: inductor volume amortizes.
    double a10 = inSquareMillimetres(m.railArea(amps(10.0))) -
                 m.params().areaBaseMm2;
    double a20 = inSquareMillimetres(m.railArea(amps(20.0))) -
                 m.params().areaBaseMm2;
    EXPECT_LT(a20, 2.0 * a10);
}

class CostTest : public ::testing::Test
{
  protected:
    CostTest() : platform() {}

    Platform platform;
};

TEST_F(CostTest, PmicVrmBoundaryAt18W)
{
    const auto &calc = platform.costs();
    EXPECT_TRUE(
        calc.evaluate(platform.pdn(PdnKind::IVR), watts(18.0))
            .usesPmic);
    EXPECT_FALSE(
        calc.evaluate(platform.pdn(PdnKind::IVR), watts(25.0))
            .usesPmic);
}

TEST_F(CostTest, Fig8dBomOrdering)
{
    // Fig. 8d: MBVR most expensive, then LDO; FlexWatts and I+MBVR
    // comparable to IVR.
    for (double tdp : evaluationTdpsW) {
        double mbvr = normalizedBom(platform, PdnKind::MBVR,
                                    watts(tdp));
        double ldo = normalizedBom(platform, PdnKind::LDO, watts(tdp));
        double flex = normalizedBom(platform, PdnKind::FlexWatts,
                                    watts(tdp));
        double imbvr = normalizedBom(platform, PdnKind::IplusMBVR,
                                     watts(tdp));
        EXPECT_GT(mbvr, ldo) << tdp;
        EXPECT_GT(ldo, flex) << tdp;
        EXPECT_LT(flex, 1.25) << tdp; // "comparable cost to IVR"
        EXPECT_LT(imbvr, 1.25) << tdp;
        EXPECT_GT(mbvr, 1.7) << tdp;  // paper band: 2.1x-4.2x
        EXPECT_LT(mbvr, 4.5) << tdp;
        EXPECT_GT(ldo, 1.35) << tdp;  // paper band: 1.6x-3.1x
        EXPECT_LT(ldo, 3.3) << tdp;
    }
}

TEST_F(CostTest, Fig8eAreaOrdering)
{
    // Fig. 8e: MBVR 1.5x-4.5x, LDO 1.1x-3.3x; FlexWatts/I+MBVR
    // comparable to IVR.
    for (double tdp : evaluationTdpsW) {
        double mbvr = normalizedArea(platform, PdnKind::MBVR,
                                     watts(tdp));
        double ldo = normalizedArea(platform, PdnKind::LDO,
                                    watts(tdp));
        double flex = normalizedArea(platform, PdnKind::FlexWatts,
                                     watts(tdp));
        EXPECT_GT(mbvr, 1.5) << tdp;
        EXPECT_LT(mbvr, 4.5) << tdp;
        EXPECT_GT(ldo, 1.1) << tdp;
        EXPECT_LT(ldo, 3.3) << tdp;
        EXPECT_GT(mbvr, ldo) << tdp;
        EXPECT_LT(flex, 1.4) << tdp;
    }
}

TEST_F(CostTest, RailMergeTakesWorstCase)
{
    // The GFX rail of MBVR must be sized by the graphics corner even
    // though the CPU corner leaves GFX gated.
    auto rails = platform.costs().worstCaseRails(
        platform.pdn(PdnKind::MBVR), watts(25.0));
    bool found_gfx = false;
    for (const OffChipRail &r : rails) {
        if (r.name == "V_GFX") {
            found_gfx = true;
            EXPECT_GT(inAmps(r.iccMax), 5.0);
        }
    }
    EXPECT_TRUE(found_gfx);
}

TEST_F(CostTest, AbsoluteCostGrowsWithTdp)
{
    const auto &calc = platform.costs();
    double prev = 0.0;
    for (double tdp : {25.0, 36.0, 50.0}) { // within the VRM regime
        double c = calc.evaluate(platform.pdn(PdnKind::IVR),
                                 watts(tdp))
                       .bomCostUsd;
        EXPECT_GT(c, prev) << tdp;
        prev = c;
    }
}

TEST_F(CostTest, FlexWattsVinCheaperThanLdoVin)
{
    // The reason FlexWatts wins BOM (Sec. 7): its shared V_IN is
    // sized for IVR-Mode current.
    auto flex = platform.costs().worstCaseRails(
        platform.pdn(PdnKind::FlexWatts), watts(50.0));
    auto ldo = platform.costs().worstCaseRails(
        platform.pdn(PdnKind::LDO), watts(50.0));
    Current flex_vin, ldo_vin;
    for (const auto &r : flex)
        if (r.name == "V_IN")
            flex_vin = r.iccMax;
    for (const auto &r : ldo)
        if (r.name == "V_IN")
            ldo_vin = r.iccMax;
    EXPECT_LT(inAmps(flex_vin), 0.75 * inAmps(ldo_vin));
}

} // anonymous namespace
} // namespace pdnspot
